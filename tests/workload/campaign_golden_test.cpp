// Golden bit-identity tests for the calibrated paper testbed.
//
// The grid-scale refactor (indexed event core, incremental max-min
// allocation, spec-driven testbed construction) must not perturb the
// calibrated three-site world: the ULM transfer logs of short
// controlled campaigns must reproduce the pre-refactor bytes exactly.
// The fingerprints below were captured from `wadp campaign --seed 42
// --days 3` after the testbed started sampling disk throughput and the
// network probe (DISK=/PROBE= keys); any drift in event ordering,
// float accumulation, or load-seed draws changes them.  Stripping the
// two sampled keys must reproduce the pre-sampling log byte for byte —
// that is the proof that instrumentation changed only what the records
// *carry*, never when or how the transfers ran.
#include <gtest/gtest.h>

#include <cstdint>
#include <regex>
#include <string>

#include "workload/campaign.hpp"
#include "workload/testbed.hpp"

namespace wadp::workload {
namespace {

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// The log with the sampled regressor keys removed: what the same
/// campaign logged before disk/probe sampling existed.
std::string without_sampled_keys(const std::string& text) {
  static const std::regex keys(" (DISK|PROBE)=[^ \n]*");
  return std::regex_replace(text, keys, "");
}

TEST(CampaignGoldenTest, AugustCampaignReproducesPreRefactorRecords) {
  CampaignConfig config;
  config.days = 3;
  const auto result =
      run_paper_campaign(Campaign::kAugust2001, 42, config);
  const auto lbl = result.testbed->server("lbl").log().to_ulm_text();
  const auto isi = result.testbed->server("isi").log().to_ulm_text();
  EXPECT_EQ(lbl.size(), 26912u);
  EXPECT_EQ(fnv1a64(lbl), 0xa2c46ffe7ec79b3fULL);
  EXPECT_EQ(isi.size(), 29289u);
  EXPECT_EQ(fnv1a64(isi), 0xf887be392ad05291ULL);
  // Disk/probe sampling is additive: minus the two keys, the logs are
  // the pre-sampling goldens exactly.
  const auto lbl_stripped = without_sampled_keys(lbl);
  const auto isi_stripped = without_sampled_keys(isi);
  EXPECT_EQ(lbl_stripped.size(), 24069u);
  EXPECT_EQ(fnv1a64(lbl_stripped), 0x7c3ee85edcaa54d2ULL);
  EXPECT_EQ(isi_stripped.size(), 26140u);
  EXPECT_EQ(fnv1a64(isi_stripped), 0x3e828f8883e020dcULL);
}

TEST(CampaignGoldenTest, DecemberCampaignReproducesPreRefactorRecords) {
  CampaignConfig config;
  config.days = 3;
  const auto result =
      run_paper_campaign(Campaign::kDecember2001, 42, config);
  const auto lbl = result.testbed->server("lbl").log().to_ulm_text();
  const auto isi = result.testbed->server("isi").log().to_ulm_text();
  EXPECT_EQ(lbl.size(), 32922u);
  EXPECT_EQ(fnv1a64(lbl), 0xc27fa95aec9bdfc3ULL);
  EXPECT_EQ(isi.size(), 17323u);
  EXPECT_EQ(fnv1a64(isi), 0xf10b50e3270397faULL);
  const auto lbl_stripped = without_sampled_keys(lbl);
  const auto isi_stripped = without_sampled_keys(isi);
  EXPECT_EQ(lbl_stripped.size(), 29446u);
  EXPECT_EQ(fnv1a64(lbl_stripped), 0xa9608bd02ce298c0ULL);
  EXPECT_EQ(isi_stripped.size(), 15467u);
  EXPECT_EQ(fnv1a64(isi_stripped), 0x478617a863392265ULL);
}

TEST(TestbedSpecTest, PaperSpecIsTheDefault) {
  const auto& spec = paper_testbed_spec();
  ASSERT_EQ(spec.sites.size(), 3u);
  EXPECT_EQ(spec.sites[0].site, "anl");
  EXPECT_EQ(spec.sites[1].site, "isi");
  EXPECT_EQ(spec.sites[2].site, "lbl");
  ASSERT_EQ(spec.links.size(), 3u);
  EXPECT_DOUBLE_EQ(spec.links[0].rtt, 0.055);
  EXPECT_DOUBLE_EQ(spec.links[2].bottleneck, 11'000'000.0);
}

TEST(TestbedSpecTest, CustomSpecBuildsAWorkingWorld) {
  TestbedSpec spec;
  spec.sites = {{"east", "east.example.org", "10.0.0.1"},
                {"west", "west.example.org", "10.0.0.2"}};
  spec.links = {{"east", "west", 0.080, 10'000'000.0}};
  Testbed testbed(Campaign::kAugust2001, 7, {}, spec);

  ASSERT_EQ(testbed.sites().size(), 2u);
  EXPECT_NE(testbed.topology().find("east", "west"), nullptr);
  EXPECT_NE(testbed.topology().find("west", "east"), nullptr);

  bool done = false;
  testbed.client("west").get(
      testbed.server("east"), paper_file_path(10 * kMB), {},
      [&](const gridftp::TransferOutcome& outcome) {
        done = true;
        EXPECT_TRUE(outcome.ok) << outcome.error;
        EXPECT_EQ(outcome.record.file_size, 10 * kMB);
      });
  testbed.sim().run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace wadp::workload
