#include "workload/campaign.hpp"

#include <gtest/gtest.h>

#include <set>

#include "history/adapter.hpp"
#include "workload/trace.hpp"

namespace wadp::workload {
namespace {

using history::SeriesFilter;
using history::observations_from_records;

TEST(SleepDistributionTest, StaysInPaperRange) {
  SleepDistribution sleeps;
  util::Rng rng(1);
  for (int i = 0; i < 10'000; ++i) {
    const auto s = sleeps.sample(rng);
    EXPECT_GE(s, 60.0);        // 1 minute
    EXPECT_LT(s, 36'000.0);    // 10 hours
  }
}

TEST(SleepDistributionTest, ShortBiasShapesTheMixture) {
  SleepDistribution sleeps;
  util::Rng rng(2);
  int below_cap = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (sleeps.sample(rng) < sleeps.short_cap) ++below_cap;
  }
  EXPECT_NEAR(static_cast<double>(below_cap) / n, sleeps.short_bias, 0.02);
}

struct CampaignFixture : ::testing::Test {
  // A short 3-day campaign keeps the test quick while exercising the
  // whole pipeline.
  CampaignConfig config;
  void SetUp() override { config.days = 3; }
};

TEST_F(CampaignFixture, TransfersStayInsideNightlyWindow) {
  auto result = run_paper_campaign(Campaign::kAugust2001, 11, config);
  const auto& outcomes = result.lbl_to_anl->outcomes();
  ASSERT_FALSE(outcomes.empty());
  for (const auto& outcome : outcomes) {
    // The *request* is issued in-window; the logged window opens after
    // the control phase, so rewind by the measured control overhead.
    // +1 ms absorbs float rounding for requests issued exactly at the
    // 18:00 window edge.
    const auto issued = outcome.record.start_time - outcome.control_overhead;
    EXPECT_TRUE(util::in_daily_window(issued + 0.001, util::kCdt, 18, 8))
        << util::format_time(issued, util::kCdt);
  }
}

TEST_F(CampaignFixture, SizesComeFromThePaperSet) {
  auto result = run_paper_campaign(Campaign::kAugust2001, 12, config);
  std::set<Bytes> sizes(paper_file_sizes().begin(), paper_file_sizes().end());
  for (const auto& outcome : result.isi_to_anl->outcomes()) {
    EXPECT_TRUE(sizes.contains(outcome.record.file_size))
        << outcome.record.file_size;
  }
}

TEST_F(CampaignFixture, NoFailuresOnHealthyTestbed) {
  auto result = run_paper_campaign(Campaign::kAugust2001, 13, config);
  EXPECT_EQ(result.lbl_to_anl->failed(), 0u);
  EXPECT_EQ(result.isi_to_anl->failed(), 0u);
  EXPECT_TRUE(result.lbl_to_anl->finished());
  EXPECT_TRUE(result.isi_to_anl->finished());
}

TEST_F(CampaignFixture, LogsMatchOutcomes) {
  auto result = run_paper_campaign(Campaign::kAugust2001, 14, config);
  EXPECT_EQ(result.testbed->server("lbl").log().size(),
            result.lbl_to_anl->completed());
  EXPECT_EQ(result.testbed->server("isi").log().size(),
            result.isi_to_anl->completed());
}

TEST_F(CampaignFixture, ReproducibleForSameSeed) {
  auto a = run_paper_campaign(Campaign::kAugust2001, 15, config);
  auto b = run_paper_campaign(Campaign::kAugust2001, 15, config);
  ASSERT_EQ(a.lbl_to_anl->completed(), b.lbl_to_anl->completed());
  for (std::size_t i = 0; i < a.lbl_to_anl->outcomes().size(); ++i) {
    EXPECT_EQ(a.lbl_to_anl->outcomes()[i].record,
              b.lbl_to_anl->outcomes()[i].record);
  }
}

TEST_F(CampaignFixture, DifferentSeedsDiffer) {
  auto a = run_paper_campaign(Campaign::kAugust2001, 16, config);
  auto b = run_paper_campaign(Campaign::kAugust2001, 17, config);
  // Counts or contents must differ somewhere.
  bool different =
      a.lbl_to_anl->completed() != b.lbl_to_anl->completed();
  if (!different) {
    for (std::size_t i = 0; i < a.lbl_to_anl->outcomes().size(); ++i) {
      if (!(a.lbl_to_anl->outcomes()[i].record ==
            b.lbl_to_anl->outcomes()[i].record)) {
        different = true;
        break;
      }
    }
  }
  EXPECT_TRUE(different);
}

TEST(CampaignTest, FullCampaignHitsPaperTransferCounts) {
  // Section 6.1: "Each log file contains approximately 350 to 450
  // transfers" over two weeks.
  auto result = run_paper_campaign(Campaign::kAugust2001, 42, {});
  for (const auto* driver :
       {result.lbl_to_anl.get(), result.isi_to_anl.get()}) {
    EXPECT_GE(driver->completed(), 300u) << driver->server_site();
    EXPECT_LE(driver->completed(), 500u) << driver->server_site();
  }
}

TEST(CampaignTest, BandwidthsLandInPaperBand) {
  // Figs. 1-2: GridFTP transfers between ~1.5 and ~10.2 MB/s.
  auto result = run_paper_campaign(Campaign::kAugust2001, 42, {});
  for (const auto& outcome : result.lbl_to_anl->outcomes()) {
    const auto bw = outcome.record.bandwidth();
    EXPECT_GT(bw, 1.0e6);
    EXPECT_LT(bw, 12.5e6);
  }
}

TEST(CampaignTest, ClassCountsShapeMatchesFig7) {
  // Fig. 7 partition: {6,3,3,1}/13 of draws land in the four classes,
  // so expect roughly 46%/23%/23%/8% with sampling noise.
  auto result = run_paper_campaign(Campaign::kAugust2001, 42, {});
  const auto series = observations_from_records(
      result.testbed->server("lbl").log().records(), {});
  const auto classifier = predict::SizeClassifier::paper_classes();
  const auto counts = count_by_class(series, classifier);
  ASSERT_EQ(counts.per_class.size(), 4u);
  const double total = static_cast<double>(counts.total);
  EXPECT_NEAR(counts.per_class[0] / total, 6.0 / 13.0, 0.08);
  EXPECT_NEAR(counts.per_class[1] / total, 3.0 / 13.0, 0.07);
  EXPECT_NEAR(counts.per_class[2] / total, 3.0 / 13.0, 0.07);
  EXPECT_NEAR(counts.per_class[3] / total, 1.0 / 13.0, 0.05);
}

TEST(CampaignTest, DecemberCampaignAlsoRuns) {
  CampaignConfig config;
  config.days = 3;
  auto result = run_paper_campaign(Campaign::kDecember2001, 9, config);
  EXPECT_GT(result.lbl_to_anl->completed(), 20u);
  // Window is in CST for December.
  const auto start = result.lbl_to_anl->outcomes().front().record.start_time;
  EXPECT_TRUE(util::in_daily_window(start - 10.0, util::kCst, 18, 8));
}

TEST(TraceTest, ObservationsFilterByRemoteAndOp) {
  std::vector<gridftp::TransferRecord> records;
  gridftp::TransferRecord r;
  r.host = "h";
  r.file_name = "/v/f";
  r.file_size = kMB;
  r.volume = "/v";
  r.streams = 8;
  r.tcp_buffer = 1'000'000;
  r.start_time = 0.0;
  r.end_time = 1.0;
  r.source_ip = "1.1.1.1";
  r.op = gridftp::Operation::kRead;
  records.push_back(r);
  r.source_ip = "2.2.2.2";
  records.push_back(r);
  r.op = gridftp::Operation::kWrite;
  records.push_back(r);

  EXPECT_EQ(observations_from_records(records, {}).size(), 2u);  // reads only
  EXPECT_EQ(observations_from_records(records, {.remote_ip = "1.1.1.1"}).size(),
            1u);
  EXPECT_EQ(observations_from_records(records,
                                      {.op = gridftp::Operation::kWrite})
                .size(),
            1u);
  SeriesFilter everything;
  everything.op.reset();
  EXPECT_EQ(observations_from_records(records, everything).size(), 3u);
}

TEST(TraceTest, ObservationCarriesBandwidthAndSize) {
  gridftp::TransferRecord r;
  r.host = "h";
  r.source_ip = "1.1.1.1";
  r.file_name = "/v/f";
  r.file_size = 10 * kMB;
  r.volume = "/v";
  r.start_time = 100.0;
  r.end_time = 105.0;
  r.op = gridftp::Operation::kRead;
  r.streams = 8;
  r.tcp_buffer = 1'000'000;
  const auto series = observations_from_records({&r, 1}, {});
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0].time, 105.0);
  EXPECT_DOUBLE_EQ(series[0].value, 2'000'000.0);
  EXPECT_EQ(series[0].file_size, 10 * kMB);
}

}  // namespace
}  // namespace wadp::workload
