#include "workload/prober.hpp"

#include <gtest/gtest.h>

#include "workload/campaign.hpp"

namespace wadp::workload {
namespace {

TEST(ActiveProberTest, ProbesIdleLinkRegularly) {
  Testbed testbed(Campaign::kAugust2001, 5);
  ActiveProbeConfig config;
  config.check_period = 1800.0;
  config.staleness = 7200.0;
  ActiveProber prober(testbed, "anl", "lbl", config);
  testbed.sim().run_until(testbed.start_time() + 86400.0);
  prober.stop();
  // Roughly one probe per staleness interval on a quiet link.
  EXPECT_GE(prober.probes_issued(), 10u);
  EXPECT_LE(prober.probes_issued(), 14u);
  EXPECT_EQ(prober.failures(), 0u);
  EXPECT_EQ(testbed.server("lbl").log().size(), prober.probes_issued());
}

TEST(ActiveProberTest, ProbesCarryTheProbeSize) {
  Testbed testbed(Campaign::kAugust2001, 6);
  ActiveProbeConfig config;
  config.probe_size = 25 * kMB;
  ActiveProber prober(testbed, "anl", "lbl", config);
  testbed.sim().run_until(testbed.start_time() + 6 * 3600.0);
  prober.stop();
  ASSERT_FALSE(testbed.server("lbl").log().empty());
  for (const auto& record : testbed.server("lbl").log().records()) {
    EXPECT_EQ(record.file_size, 25 * kMB);
    EXPECT_EQ(record.op, gridftp::Operation::kRead);
  }
}

TEST(ActiveProberTest, SkipsWhenWorkloadKeepsLogFresh) {
  Testbed testbed(Campaign::kAugust2001, 7);
  CampaignConfig campaign;
  campaign.days = 2;
  // Dense workload: transfers every few minutes all night.
  campaign.sleeps.short_bias = 1.0 - 1e-12;
  campaign.sleeps.short_cap = 600.0;
  CampaignDriver driver(testbed, "anl", "lbl", campaign, 9);
  driver.start();
  ActiveProbeConfig config;
  config.check_period = 1800.0;
  config.staleness = 4 * 3600.0;
  ActiveProber prober(testbed, "anl", "lbl", config);
  testbed.sim().run_until(testbed.start_time() + 2 * 86400.0);
  prober.stop();
  // Nightly transfers keep the log fresh; probes only fill the daytime
  // gap (10 h window / 4 h staleness -> a couple per day).
  EXPECT_GT(prober.checks_skipped(), 30u);
  EXPECT_LE(prober.probes_issued(), 8u);
}

TEST(ActiveProberTest, CountsFailuresWhenServerDown) {
  Testbed testbed(Campaign::kAugust2001, 8);
  testbed.server("lbl").set_accepting(false);
  ActiveProbeConfig config;
  config.check_period = 3600.0;
  config.staleness = 1800.0;
  ActiveProber prober(testbed, "anl", "lbl", config);
  testbed.sim().run_until(testbed.start_time() + 6 * 3600.0);
  prober.stop();
  // Drain the last probe's control-channel rejection.
  testbed.sim().run_until(testbed.sim().now() + 3600.0);
  EXPECT_GT(prober.failures(), 0u);
  EXPECT_EQ(prober.failures(), prober.probes_issued());
  EXPECT_TRUE(testbed.server("lbl").log().empty());
}

TEST(ActiveProberDeathTest, MissingProbeFileAborts) {
  Testbed testbed(Campaign::kAugust2001, 9);
  ActiveProbeConfig config;
  config.probe_size = 123456;  // not a staged paper size
  EXPECT_DEATH(ActiveProber(testbed, "anl", "lbl", config), "probe file");
}

}  // namespace
}  // namespace wadp::workload
