#include "workload/gridworld.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace wadp::workload {
namespace {

TEST(TopologyBuilderTest, RandomGridIsConnectedWithRequestedShape) {
  GridSpec spec;
  spec.sites = 40;
  spec.links = 90;
  const auto topo = TopologyBuilder().random_grid(spec, 5).build(5, 0.0);
  EXPECT_EQ(topo->site_count(), 40u);
  EXPECT_EQ(topo->link_count(), 90u);
  EXPECT_TRUE(topo->frozen());
  EXPECT_TRUE(topo->connected());
  // No self-loops, no duplicate undirected pairs.
  std::set<std::pair<std::string, std::string>> pairs;
  for (const auto& link : topo->links()) {
    EXPECT_NE(link->site_a(), link->site_b());
    const auto key = link->site_a() < link->site_b()
                         ? std::make_pair(link->site_a(), link->site_b())
                         : std::make_pair(link->site_b(), link->site_a());
    EXPECT_TRUE(pairs.insert(key).second)
        << "duplicate link " << key.first << "<->" << key.second;
  }
}

TEST(TopologyBuilderTest, SameSeedReproducesTheSameGrid) {
  GridSpec spec;
  spec.sites = 25;
  spec.links = 60;
  const auto one = TopologyBuilder().random_grid(spec, 9).build(9, 0.0);
  const auto two = TopologyBuilder().random_grid(spec, 9).build(9, 0.0);
  ASSERT_EQ(one->link_count(), two->link_count());
  for (std::size_t i = 0; i < one->link_count(); ++i) {
    const auto& a = *one->links()[i];
    const auto& b = *two->links()[i];
    EXPECT_EQ(a.site_a(), b.site_a());
    EXPECT_EQ(a.site_b(), b.site_b());
    EXPECT_DOUBLE_EQ(a.capacity(), b.capacity());
    EXPECT_DOUBLE_EQ(a.rtt(), b.rtt());
    // Same load seeds too: capacities agree at a later instant.
    EXPECT_DOUBLE_EQ(a.capacity_at(3'600.0), b.capacity_at(3'600.0));
  }
  const auto other = TopologyBuilder().random_grid(spec, 10).build(10, 0.0);
  bool differs = one->link_count() != other->link_count();
  for (std::size_t i = 0; !differs && i < one->link_count(); ++i) {
    differs = one->links()[i]->site_a() != other->links()[i]->site_a() ||
              one->links()[i]->site_b() != other->links()[i]->site_b() ||
              one->links()[i]->capacity() != other->links()[i]->capacity();
  }
  EXPECT_TRUE(differs) << "different seeds produced identical grids";
}

TEST(TopologyBuilderTest, LinkBudgetIsCappedAtCompleteGraph) {
  GridSpec spec;
  spec.sites = 5;
  spec.links = 1000;  // far beyond 5*4/2
  const auto topo = TopologyBuilder().random_grid(spec, 1).build(1, 0.0);
  EXPECT_EQ(topo->link_count(), 10u);
  EXPECT_TRUE(topo->connected());
}

TEST(TopologyBuilderTest, ManualLayoutBuilds) {
  net::LinkParams params;
  params.capacity = 10e6;
  params.rtt = 0.02;
  const auto topo = TopologyBuilder()
                        .add_site("x")
                        .add_site("y")
                        .add_link("x", "y", params)
                        .build(1, 0.0);
  EXPECT_EQ(topo->site_count(), 2u);
  ASSERT_NE(topo->route("x", "y"), nullptr);
}

TEST(ScenarioTest, NamesRoundTrip) {
  for (const Scenario s :
       {Scenario::kUniform, Scenario::kFlashCrowd, Scenario::kDiurnal}) {
    const auto parsed = parse_scenario(scenario_name(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(parse_scenario("tsunami").has_value());
}

TEST(GridWorldTest, UniformScenarioMovesTraffic) {
  GridSpec spec;
  spec.sites = 10;
  spec.links = 20;
  GridWorld world(spec, 42);
  ScenarioConfig scenario;
  scenario.duration = 120.0;
  scenario.arrivals_per_second = 5.0;
  scenario.max_size = 50 * kMB;
  const auto summary = world.run(scenario, 42);

  EXPECT_GT(summary.flows_started, 0u);
  EXPECT_GT(summary.flows_completed, 0u);
  EXPECT_GT(summary.bytes_moved, 0.0);
  EXPECT_GE(summary.peak_concurrent, 1u);
  EXPECT_DOUBLE_EQ(summary.sim_elapsed, 120.0);
  EXPECT_EQ(summary.flows_started,
            summary.flows_completed + summary.active_at_end);
  EXPECT_GT(summary.alloc.reallocs, 0u);
  EXPECT_GT(summary.utilization.max, 0.0);
}

TEST(GridWorldTest, FlashCrowdSpikesConcurrency) {
  GridSpec spec;
  spec.sites = 10;
  spec.links = 20;
  GridWorld uniform_world(spec, 42);
  GridWorld flash_world(spec, 42);

  ScenarioConfig base;
  base.duration = 120.0;
  base.arrivals_per_second = 3.0;
  base.max_size = 100 * kMB;
  ScenarioConfig flash = base;
  flash.scenario = Scenario::kFlashCrowd;
  flash.flash_after = 30.0;
  flash.flash_duration = 30.0;
  flash.flash_multiplier = 12.0;

  const auto quiet = uniform_world.run(base, 7);
  const auto crowd = flash_world.run(flash, 7);
  EXPECT_GT(crowd.flows_started, quiet.flows_started);
  EXPECT_GT(crowd.peak_concurrent, quiet.peak_concurrent);
}

TEST(GridWorldTest, DiurnalScenarioRuns) {
  GridSpec spec;
  spec.sites = 8;
  spec.links = 14;
  GridWorld world(spec, 4);
  ScenarioConfig scenario;
  scenario.scenario = Scenario::kDiurnal;
  scenario.duration = 100.0;
  scenario.arrivals_per_second = 4.0;
  scenario.max_size = 25 * kMB;
  const auto summary = world.run(scenario, 4);
  EXPECT_GT(summary.flows_started, 0u);
}

TEST(GridWorldTest, MaxConcurrentShedsArrivals) {
  GridSpec spec;
  spec.sites = 6;
  spec.links = 10;
  GridWorld world(spec, 8);
  ScenarioConfig scenario;
  scenario.duration = 60.0;
  scenario.arrivals_per_second = 30.0;
  scenario.min_size = 500 * kMB;  // long flows pile up fast
  scenario.max_size = 1000 * kMB;
  scenario.max_concurrent = 10;
  const auto summary = world.run(scenario, 8);
  EXPECT_GT(summary.flows_shed, 0u);
  EXPECT_LE(summary.peak_concurrent, 10u);
}

TEST(GridWorldTest, SameSeedsReproduceTheSameSummary) {
  GridSpec spec;
  spec.sites = 9;
  spec.links = 18;
  ScenarioConfig scenario;
  scenario.duration = 80.0;
  scenario.arrivals_per_second = 4.0;
  scenario.max_size = 50 * kMB;

  GridWorld one(spec, 21);
  GridWorld two(spec, 21);
  const auto a = one.run(scenario, 5);
  const auto b = two.run(scenario, 5);
  EXPECT_EQ(a.flows_started, b.flows_started);
  EXPECT_EQ(a.flows_completed, b.flows_completed);
  EXPECT_DOUBLE_EQ(a.bytes_moved, b.bytes_moved);
  EXPECT_EQ(a.peak_concurrent, b.peak_concurrent);
}

}  // namespace
}  // namespace wadp::workload
