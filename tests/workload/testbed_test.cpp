#include "workload/testbed.hpp"

#include <gtest/gtest.h>

namespace wadp::workload {
namespace {

TEST(CampaignMetaTest, StartTimesAnchorToLocalMidnight) {
  const auto aug = campaign_start(Campaign::kAugust2001);
  const auto aug_civil =
      util::to_civil(static_cast<std::int64_t>(aug), util::kCdt);
  EXPECT_EQ(aug_civil.year, 2001);
  EXPECT_EQ(aug_civil.month, 8);
  EXPECT_EQ(aug_civil.hour, 0);

  const auto dec = campaign_start(Campaign::kDecember2001);
  const auto dec_civil =
      util::to_civil(static_cast<std::int64_t>(dec), util::kCst);
  EXPECT_EQ(dec_civil.month, 12);
  EXPECT_EQ(dec_civil.hour, 0);
}

TEST(CampaignMetaTest, ZonesMatchSeason) {
  EXPECT_EQ(campaign_zone(Campaign::kAugust2001).offset_seconds(), -5 * 3600);
  EXPECT_EQ(campaign_zone(Campaign::kDecember2001).offset_seconds(),
            -6 * 3600);
  EXPECT_STREQ(campaign_name(Campaign::kAugust2001), "August 2001");
}

TEST(PaperFileSizesTest, ThirteenSizesFromPaper) {
  const auto& sizes = paper_file_sizes();
  ASSERT_EQ(sizes.size(), 13u);
  EXPECT_EQ(sizes.front(), 1 * kMB);
  EXPECT_EQ(sizes.back(), 1000 * kMB);
  // Ascending and distinct.
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_LT(sizes[i - 1], sizes[i]);
  }
}

TEST(PaperFilePathTest, MatchesFig3Naming) {
  EXPECT_EQ(paper_file_path(10 * kMB), "/home/ftp/vazhkuda/10 MB");
  EXPECT_EQ(paper_file_path(1000 * kMB), "/home/ftp/vazhkuda/1 GB");
}

TEST(TestbedTest, ThreeSitesExist) {
  Testbed testbed(Campaign::kAugust2001, 1);
  EXPECT_EQ(testbed.sites().size(), 3u);
  for (const auto& site : {"anl", "isi", "lbl"}) {
    EXPECT_EQ(testbed.server(site).site(), site);
    EXPECT_EQ(testbed.client(site).site(), site);
    EXPECT_EQ(testbed.storage(site).site(), site);
  }
}

TEST(TestbedTest, PaperLinksRegisteredBothDirections) {
  Testbed testbed(Campaign::kAugust2001, 1);
  EXPECT_NE(testbed.topology().find("lbl", "anl"), nullptr);
  EXPECT_NE(testbed.topology().find("anl", "lbl"), nullptr);
  EXPECT_NE(testbed.topology().find("isi", "anl"), nullptr);
  EXPECT_NE(testbed.topology().find("anl", "isi"), nullptr);
  EXPECT_NE(testbed.topology().find("lbl", "isi"), nullptr);
  EXPECT_EQ(testbed.topology().size(), 6u);
}

TEST(TestbedTest, FilesStagedOnEveryServer) {
  Testbed testbed(Campaign::kAugust2001, 1);
  for (const auto& site : testbed.sites()) {
    for (const Bytes size : paper_file_sizes()) {
      EXPECT_EQ(*testbed.server(site).fs().file_size(paper_file_path(size)),
                size);
    }
  }
}

TEST(TestbedTest, SimulatorStartsAtCampaignStart) {
  Testbed testbed(Campaign::kDecember2001, 1);
  EXPECT_DOUBLE_EQ(testbed.sim().now(),
                   campaign_start(Campaign::kDecember2001));
}

TEST(TestbedTest, PathCapacitiesStayInCalibratedBand) {
  // DESIGN.md Section 5: available capacity must keep tuned transfers
  // between ~1.5 and ~10.7 MB/s.
  Testbed testbed(Campaign::kAugust2001, 3);
  const auto* path = testbed.topology().find("lbl", "anl");
  ASSERT_NE(path, nullptr);
  const SimTime start = testbed.start_time();
  for (double t = 0.0; t < 14 * 86400.0; t += 1800.0) {
    const auto capacity = path->capacity_at(start + t);
    EXPECT_GE(capacity, 1.5e6);
    EXPECT_LE(capacity, 11.0e6);
  }
}

TEST(TestbedTest, DifferentSeedsGiveDifferentLoads) {
  Testbed a(Campaign::kAugust2001, 1);
  Testbed b(Campaign::kAugust2001, 2);
  const auto* pa = a.topology().find("lbl", "anl");
  const auto* pb = b.topology().find("lbl", "anl");
  bool diverged = false;
  for (double t = 0.0; t < 86400.0 && !diverged; t += 60.0) {
    if (pa->capacity_at(a.start_time() + t) !=
        pb->capacity_at(b.start_time() + t)) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(TestbedTest, SameSeedIsReproducible) {
  Testbed a(Campaign::kAugust2001, 5);
  Testbed b(Campaign::kAugust2001, 5);
  const auto* pa = a.topology().find("isi", "anl");
  const auto* pb = b.topology().find("isi", "anl");
  for (double t = 0.0; t < 86400.0; t += 3600.0) {
    EXPECT_DOUBLE_EQ(pa->capacity_at(a.start_time() + t),
                     pb->capacity_at(b.start_time() + t));
  }
}

TEST(TestbedTest, UnknownSiteAborts) {
  Testbed testbed(Campaign::kAugust2001, 1);
  EXPECT_DEATH(testbed.server("cern"), "unknown site");
}

}  // namespace
}  // namespace wadp::workload
