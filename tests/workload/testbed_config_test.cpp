// TestbedConfig overrides: the heterogeneity knobs used by the replica
// and sensitivity studies.
#include <gtest/gtest.h>

#include "workload/testbed.hpp"

namespace wadp::workload {
namespace {

TEST(TestbedConfigTest, BottleneckOverrideAppliesToOneDirection) {
  TestbedConfig config;
  config.bottleneck_overrides["isi->anl"] = 7'000'000.0;
  Testbed testbed(Campaign::kAugust2001, 1, config);
  EXPECT_DOUBLE_EQ(testbed.topology().find("isi", "anl")->bottleneck(),
                   7'000'000.0);
  // The reverse direction and other links keep the calibrated value.
  EXPECT_DOUBLE_EQ(testbed.topology().find("anl", "isi")->bottleneck(),
                   12'500'000.0);
  EXPECT_DOUBLE_EQ(testbed.topology().find("lbl", "anl")->bottleneck(),
                   12'500'000.0);
}

TEST(TestbedConfigTest, StorageOverrideAppliesToOneSite) {
  TestbedConfig config;
  storage::StorageParams slow;
  slow.read_rate = 5'000'000.0;
  slow.write_rate = 4'000'000.0;
  slow.local_load.reset();
  config.storage_overrides["isi"] = slow;
  Testbed testbed(Campaign::kAugust2001, 1, config);
  EXPECT_DOUBLE_EQ(testbed.storage("isi").read_port().capacity_at(0.0),
                   5'000'000.0);
  // Other sites keep the calibrated storage (60 MB/s nominal, loaded).
  EXPECT_GT(testbed.storage("lbl").read_port().capacity_at(
                testbed.start_time()),
            10'000'000.0);
}

TEST(TestbedConfigTest, WanLoadOverrideReplacesEveryLink) {
  TestbedConfig config;
  net::LoadParams flat;
  flat.base = 0.5;
  flat.diurnal_amplitude = 0.0;
  flat.ar_sigma = 0.0;
  flat.episode_rate_per_hour = 0.0;
  config.wan_load_override = flat;
  Testbed testbed(Campaign::kAugust2001, 1, config);
  for (const auto* path : testbed.topology().paths()) {
    EXPECT_NEAR(path->capacity_at(testbed.start_time() + 3600.0),
                path->bottleneck() * 0.5, 1.0)
        << path->resource_name();
  }
}

TEST(TestbedConfigTest, DefaultConfigMatchesPlainConstructor) {
  Testbed plain(Campaign::kAugust2001, 4);
  Testbed configured(Campaign::kAugust2001, 4, TestbedConfig{});
  const auto* a = plain.topology().find("lbl", "anl");
  const auto* b = configured.topology().find("lbl", "anl");
  for (double t = 0.0; t < 86400.0; t += 3600.0) {
    EXPECT_DOUBLE_EQ(a->capacity_at(plain.start_time() + t),
                     b->capacity_at(configured.start_time() + t));
  }
}

}  // namespace
}  // namespace wadp::workload
