// End-to-end failover: broker ranking -> client transfer -> fall
// through to the next-best replica, with cooldown feedback in between.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "mds/gridftp_provider.hpp"
#include "net/fabric.hpp"
#include "replica/fetcher.hpp"

namespace wadp::replica {
namespace {

using gridftp::GridFtpServer;
using gridftp::Operation;

storage::StorageParams dedicated() {
  storage::StorageParams p;
  p.local_load.reset();
  return p;
}

net::PathParams quiet(Bandwidth bottleneck) {
  net::PathParams p;
  p.bottleneck = bottleneck;
  p.rtt = 0.05;
  p.load.base = 0.0;
  p.load.diurnal_amplitude = 0.0;
  p.load.ar_sigma = 0.0;
  p.load.episode_rate_per_hour = 0.0;
  return p;
}

/// Client at ANL choosing between an LBL replica (fast: 8 MB/s
/// published, 10 MB/s path) and an ISI one (slow: 2 MB/s published,
/// 5 MB/s path).
struct FetcherFixture : ::testing::Test {
  const std::string client_ip = "140.221.65.69";
  const Bytes file_size = 10 * kMB;
  sim::Simulator sim{0.0};
  net::FluidEngine engine{sim};
  net::Topology topology;
  storage::StorageSystem anl_store{"anl", dedicated(), 1, 0.0};
  storage::StorageSystem lbl_store{"lbl", dedicated(), 2, 0.0};
  storage::StorageSystem isi_store{"isi", dedicated(), 3, 0.0};
  GridFtpServer lbl{{.site = "lbl", .host = "dpsslx04.lbl.gov",
                     .ip = "131.243.2.91"},
                    lbl_store};
  GridFtpServer isi{{.site = "isi", .host = "jet.isi.edu",
                     .ip = "128.9.160.100"},
                    isi_store};
  mds::GridFtpInfoProvider lbl_provider{
      lbl,
      {.base = *mds::Dn::parse("hostname=dpsslx04.lbl.gov, dc=lbl, o=grid")}};
  mds::GridFtpInfoProvider isi_provider{
      isi, {.base = *mds::Dn::parse("hostname=jet.isi.edu, dc=isi, o=grid")}};
  mds::Gris lbl_gris{"lbl-gris", *mds::Dn::parse("dc=lbl, o=grid")};
  mds::Gris isi_gris{"isi-gris", *mds::Dn::parse("dc=isi, o=grid")};
  mds::Giis giis{"top"};
  ReplicaCatalog catalog;
  gridftp::GridFtpClient client{sim,   engine,    topology,
                                "anl", client_ip, &anl_store};
  ReplicaBroker broker{catalog, giis, SelectionPolicy::kPredictedBest};
  bool lbl_resolvable = true;
  FailoverFetcher fetcher{sim, broker, client,
                          [this](const PhysicalReplica& replica) {
                            return resolve(replica);
                          }};

  GridFtpServer* resolve(const PhysicalReplica& replica) {
    if (replica.site == "lbl") return lbl_resolvable ? &lbl : nullptr;
    if (replica.site == "isi") return &isi;
    return nullptr;
  }

  void SetUp() override {
    topology.add_path("lbl", "anl", quiet(10'000'000.0), 1, 0.0);
    topology.add_path("anl", "lbl", quiet(10'000'000.0), 2, 0.0);
    topology.add_path("isi", "anl", quiet(5'000'000.0), 3, 0.0);
    topology.add_path("anl", "isi", quiet(5'000'000.0), 4, 0.0);
    for (GridFtpServer* s : {&lbl, &isi}) {
      s->fs().add_volume("/data");
      s->fs().add_file("/data/run42", file_size);
    }
    // Published history: LBL 8 MB/s to the client, ISI 2 MB/s.
    for (int i = 0; i < 5; ++i) {
      const double t = 100.0 * i;
      lbl.record_transfer(client_ip, "/data/run42", file_size, t, t + 1.25,
                          Operation::kRead, 8, 1'000'000);
      isi.record_transfer(client_ip, "/data/run42", file_size, t, t + 5.0,
                          Operation::kRead, 8, 1'000'000);
    }
    lbl_gris.register_provider(&lbl_provider, 300.0);
    isi_gris.register_provider(&isi_provider, 300.0);
    giis.register_gris(lbl_gris, 0.0, 1e6);
    giis.register_gris(isi_gris, 0.0, 1e6);
    catalog.add_replica("lfn://run42",
                        {.site = "lbl", .server_host = "dpsslx04.lbl.gov",
                         .path = "/data/run42"});
    catalog.add_replica("lfn://run42",
                        {.site = "isi", .server_host = "jet.isi.edu",
                         .path = "/data/run42"});
  }

  std::optional<FetchOutcome> fetch_at(SimTime when, FetchOptions options = {}) {
    std::optional<FetchOutcome> outcome;
    sim.schedule_at(when, [this, options, &outcome] {
      fetcher.fetch("lfn://run42", file_size, options,
                    [&outcome](const FetchOutcome& o) { outcome = o; });
    });
    sim.run();
    return outcome;
  }
};

TEST_F(FetcherFixture, FetchesFromThePredictedBestReplica) {
  const auto outcome = fetch_at(0.0);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->ok) << outcome->error;
  EXPECT_EQ(outcome->failovers, 0);
  ASSERT_TRUE(outcome->selection.has_value());
  EXPECT_EQ(outcome->selection->replica.site, "lbl");
  EXPECT_TRUE(outcome->selection->informed);
}

TEST_F(FetcherFixture, FailsOverToTheNextBestReplica) {
  lbl.set_accepting(false);
  const auto outcome = fetch_at(0.0);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->ok) << outcome->error;
  EXPECT_EQ(outcome->failovers, 1);
  ASSERT_EQ(outcome->failed.size(), 1u);
  EXPECT_EQ(outcome->failed[0].site, "lbl");
  ASSERT_TRUE(outcome->selection.has_value());
  EXPECT_EQ(outcome->selection->replica.site, "isi");
  EXPECT_TRUE(outcome->transfer.ok);
  // The failure opened a cooldown window for the dead server.
  EXPECT_EQ(broker.cooldowns().consecutive_failures("dpsslx04.lbl.gov"), 1);
}

TEST_F(FetcherFixture, CooldownShieldsARecoveredServerUntilExpiry) {
  lbl.set_accepting(false);
  ASSERT_TRUE(fetch_at(0.0)->ok);  // failover; LBL enters cooldown
  lbl.set_accepting(true);

  // LBL is back but still cooling: the broker routes around it without
  // spending a failover.
  const auto during = fetch_at(10.0);
  ASSERT_TRUE(during.has_value());
  EXPECT_TRUE(during->ok) << during->error;
  EXPECT_EQ(during->failovers, 0);
  EXPECT_EQ(during->selection->replica.site, "isi");

  const SimTime expiry = broker.cooldowns().available_at("dpsslx04.lbl.gov");
  const auto after = fetch_at(std::max(expiry, sim.now()) + 1.0);
  ASSERT_TRUE(after.has_value());
  EXPECT_TRUE(after->ok) << after->error;
  EXPECT_EQ(after->selection->replica.site, "lbl");
}

TEST_F(FetcherFixture, ExhaustionReportsEveryFailedReplica) {
  lbl.set_accepting(false);
  isi.set_accepting(false);
  const auto outcome = fetch_at(0.0);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
  EXPECT_EQ(outcome->failovers, 2);
  ASSERT_EQ(outcome->failed.size(), 2u);
  EXPECT_EQ(outcome->failed[0].site, "lbl");
  EXPECT_EQ(outcome->failed[1].site, "isi");
  EXPECT_FALSE(outcome->error.empty());
}

TEST_F(FetcherFixture, ReplicaBudgetCapsTheLoop) {
  lbl.set_accepting(false);
  isi.set_accepting(false);
  FetchOptions options;
  options.max_replicas = 1;
  const auto outcome = fetch_at(0.0, options);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
  EXPECT_EQ(outcome->failovers, 1);
  ASSERT_EQ(outcome->failed.size(), 1u);
  EXPECT_EQ(outcome->failed[0].site, "lbl");
}

TEST_F(FetcherFixture, UnresolvableReplicaCountsAsAFailover) {
  // Catalog/deployment mismatch: the replica exists on paper only.
  lbl_resolvable = false;
  const auto outcome = fetch_at(0.0);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->ok) << outcome->error;
  EXPECT_EQ(outcome->failovers, 1);
  ASSERT_EQ(outcome->failed.size(), 1u);
  EXPECT_EQ(outcome->failed[0].site, "lbl");
  EXPECT_EQ(outcome->selection->replica.site, "isi");
}

}  // namespace
}  // namespace wadp::replica
