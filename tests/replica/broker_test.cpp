#include "replica/broker.hpp"

#include <gtest/gtest.h>

#include <set>

#include "mds/gridftp_provider.hpp"

namespace wadp::replica {
namespace {

using gridftp::GridFtpServer;
using gridftp::Operation;

storage::StorageParams dedicated() {
  storage::StorageParams p;
  p.local_load.reset();
  return p;
}

/// Two replica sites publishing real log-derived performance into a
/// GIIS: LBL is consistently fast to the client, ISI slow.
struct BrokerFixture : ::testing::Test {
  const std::string client_ip = "140.221.65.69";
  storage::StorageSystem lbl_store{"lbl", dedicated(), 1, 0.0};
  storage::StorageSystem isi_store{"isi", dedicated(), 2, 0.0};
  GridFtpServer lbl{{.site = "lbl", .host = "dpsslx04.lbl.gov",
                     .ip = "131.243.2.91"},
                    lbl_store};
  GridFtpServer isi{{.site = "isi", .host = "jet.isi.edu",
                     .ip = "128.9.160.100"},
                    isi_store};
  mds::GridFtpInfoProvider lbl_provider{
      lbl, {.base = *mds::Dn::parse("hostname=dpsslx04.lbl.gov, dc=lbl, o=grid")}};
  mds::GridFtpInfoProvider isi_provider{
      isi, {.base = *mds::Dn::parse("hostname=jet.isi.edu, dc=isi, o=grid")}};
  mds::Gris lbl_gris{"lbl-gris", *mds::Dn::parse("dc=lbl, o=grid")};
  mds::Gris isi_gris{"isi-gris", *mds::Dn::parse("dc=isi, o=grid")};
  mds::Giis giis{"top"};
  ReplicaCatalog catalog;

  void SetUp() override {
    for (GridFtpServer* s : {&lbl, &isi}) {
      s->fs().add_volume("/data");
      s->fs().add_file("/data/run42", 500 * kMB);
    }
    // LBL history: 8 MB/s reads of a 500 MB-class file to the client.
    double t = 1000.0;
    for (int i = 0; i < 5; ++i) {
      lbl.record_transfer(client_ip, "/data/run42", 500 * kMB, t, t + 62.5,
                          Operation::kRead, 8, 1'000'000);
      t += 500.0;
    }
    // ISI history: 2 MB/s.
    t = 1200.0;
    for (int i = 0; i < 5; ++i) {
      isi.record_transfer(client_ip, "/data/run42", 500 * kMB, t, t + 250.0,
                          Operation::kRead, 8, 1'000'000);
      t += 500.0;
    }
    lbl_gris.register_provider(&lbl_provider, 300.0);
    isi_gris.register_provider(&isi_provider, 300.0);
    giis.register_gris(lbl_gris, 0.0, 1e6);
    giis.register_gris(isi_gris, 0.0, 1e6);
    catalog.add_replica("lfn://run42",
                        {.site = "lbl", .server_host = "dpsslx04.lbl.gov",
                         .path = "/data/run42"});
    catalog.add_replica("lfn://run42",
                        {.site = "isi", .server_host = "jet.isi.edu",
                         .path = "/data/run42"});
  }
};

TEST_F(BrokerFixture, PredictedBestPicksFasterSite) {
  ReplicaBroker broker(catalog, giis, SelectionPolicy::kPredictedBest);
  const auto selection =
      broker.select("lfn://run42", client_ip, 500 * kMB, 5000.0);
  ASSERT_TRUE(selection.has_value());
  EXPECT_TRUE(selection->informed);
  EXPECT_EQ(selection->replica.site, "lbl");
  ASSERT_TRUE(selection->predicted_bandwidth.has_value());
  EXPECT_NEAR(*selection->predicted_bandwidth, 8'000'000.0, 100'000.0);
}

TEST_F(BrokerFixture, UnknownLogicalNameIsNullopt) {
  ReplicaBroker broker(catalog, giis, SelectionPolicy::kPredictedBest);
  EXPECT_FALSE(broker.select("lfn://nope", client_ip, kMB, 0.0).has_value());
}

TEST_F(BrokerFixture, UnknownClientFallsBackUninformed) {
  ReplicaBroker broker(catalog, giis, SelectionPolicy::kPredictedBest);
  const auto selection =
      broker.select("lfn://run42", "9.9.9.9", 500 * kMB, 5000.0);
  ASSERT_TRUE(selection.has_value());
  EXPECT_FALSE(selection->informed);
  EXPECT_EQ(selection->replica.site, "lbl");  // first registered
}

TEST_F(BrokerFixture, ClassFallsBackToOverallAverage) {
  // No 10MB-class history exists; prediction falls back to the overall
  // read average, which still favours LBL.
  ReplicaBroker broker(catalog, giis, SelectionPolicy::kPredictedBest);
  const auto selection =
      broker.select("lfn://run42", client_ip, 10 * kMB, 5000.0);
  ASSERT_TRUE(selection.has_value());
  EXPECT_TRUE(selection->informed);
  EXPECT_EQ(selection->replica.site, "lbl");
}

TEST_F(BrokerFixture, HistoryFallbackAnswersWhenGiisIsEmpty) {
  // Provider never refreshed / registration lapsed: an empty GIIS has
  // nothing published.  With the history plane bound, the broker reads
  // store snapshots directly and still makes an informed choice.
  mds::Giis empty_giis{"empty"};
  history::HistoryStore store(
      history::StoreConfig{.instrumented = false});
  store.ingest_log(lbl.log());
  store.ingest_log(isi.log());

  ReplicaBroker blind(catalog, empty_giis, SelectionPolicy::kPredictedBest);
  const auto uninformed =
      blind.select("lfn://run42", client_ip, 500 * kMB, 5000.0);
  ASSERT_TRUE(uninformed.has_value());
  EXPECT_FALSE(uninformed->informed);

  ReplicaBroker broker(catalog, empty_giis, SelectionPolicy::kPredictedBest);
  broker.bind_history(&store);
  const auto selection =
      broker.select("lfn://run42", client_ip, 500 * kMB, 5000.0);
  ASSERT_TRUE(selection.has_value());
  EXPECT_TRUE(selection->informed);
  EXPECT_EQ(selection->replica.site, "lbl");
  ASSERT_TRUE(selection->predicted_bandwidth.has_value());
  EXPECT_NEAR(*selection->predicted_bandwidth, 8'000'000.0, 100'000.0);
}

TEST_F(BrokerFixture, HistoryFallbackIgnoresTheFuture) {
  // Replayed logs can hold transfers timestamped after `now`; only the
  // past may inform the choice, so at t=0 nothing has happened yet.
  mds::Giis empty_giis{"empty"};
  history::HistoryStore store(
      history::StoreConfig{.instrumented = false});
  store.ingest_log(lbl.log());
  ReplicaBroker broker(catalog, empty_giis, SelectionPolicy::kPredictedBest);
  broker.bind_history(&store);
  const auto selection = broker.select("lfn://run42", client_ip, 500 * kMB,
                                       /*now=*/0.0);
  ASSERT_TRUE(selection.has_value());
  EXPECT_FALSE(selection->informed);
}

TEST_F(BrokerFixture, RoundRobinRotates) {
  ReplicaBroker broker(catalog, giis, SelectionPolicy::kRoundRobin);
  const auto first = broker.select("lfn://run42", client_ip, kMB, 0.0);
  const auto second = broker.select("lfn://run42", client_ip, kMB, 0.0);
  const auto third = broker.select("lfn://run42", client_ip, kMB, 0.0);
  ASSERT_TRUE(first && second && third);
  EXPECT_EQ(first->replica.site, "lbl");
  EXPECT_EQ(second->replica.site, "isi");
  EXPECT_EQ(third->replica.site, "lbl");
}

TEST_F(BrokerFixture, RandomEventuallyPicksBoth) {
  ReplicaBroker broker(catalog, giis, SelectionPolicy::kRandom, /*seed=*/7);
  std::set<std::string> seen;
  for (int i = 0; i < 50; ++i) {
    seen.insert(broker.select("lfn://run42", client_ip, kMB, 0.0)->replica.site);
  }
  EXPECT_EQ(seen.size(), 2u);
}

TEST_F(BrokerFixture, FirstPolicyIsDeterministic) {
  ReplicaBroker broker(catalog, giis, SelectionPolicy::kFirst);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(broker.select("lfn://run42", client_ip, kMB, 0.0)->replica.site,
              "lbl");
  }
}

TEST(SelectionPolicyTest, Names) {
  EXPECT_STREQ(to_string(SelectionPolicy::kPredictedBest), "predicted-best");
  EXPECT_STREQ(to_string(SelectionPolicy::kRandom), "random");
  EXPECT_STREQ(to_string(SelectionPolicy::kRoundRobin), "round-robin");
  EXPECT_STREQ(to_string(SelectionPolicy::kFirst), "first");
}

}  // namespace
}  // namespace wadp::replica
