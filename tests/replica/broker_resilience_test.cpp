// Failure-path regressions for the broker: LDAP filter metacharacters
// in externally-sourced strings (RFC 4515 escaping), stale-vs-fresh
// GIIS entries, and cooldown-aware selection.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "mds/gris.hpp"
#include "obs/metrics.hpp"
#include "replica/broker.hpp"
#include "util/strings.hpp"

namespace wadp::replica {
namespace {

/// Minimal InformationProvider publishing a fixed entry set — the GIIS
/// contents are the test input, no servers involved.
struct StaticProvider final : mds::InformationProvider {
  std::string name;
  std::vector<mds::Entry> entries;

  StaticProvider(std::string n, std::vector<mds::Entry> e)
      : name(std::move(n)), entries(std::move(e)) {}

  std::string provider_name() const override { return name; }
  std::vector<mds::Entry> provide(SimTime) override { return entries; }
};

mds::Entry perf_entry(const std::string& dn, const std::string& cn,
                      const std::string& hostname, double avg_rd_kb,
                      double history_epoch, double last_update) {
  mds::Entry entry(*mds::Dn::parse(dn));
  entry.add("objectclass", "GridFTPPerfInfo");
  entry.set("cn", cn);
  entry.set("hostname", hostname);
  entry.set("avgrdbandwidth", util::format("%.0f", avg_rd_kb));
  entry.set("historyepoch", util::format("%.0f", history_epoch));
  entry.set("lastupdate", util::format("%.0f", last_update));
  return entry;
}

/// One catalog entry backed by a hand-built GIIS.
struct StaticGiisFixture : ::testing::Test {
  const std::string client_ip = "140.221.65.69";
  mds::Gris gris{"gris", *mds::Dn::parse("o=grid")};
  mds::Giis giis{"top"};
  ReplicaCatalog catalog;

  void publish(std::vector<mds::Entry> entries) {
    providers_.push_back(std::make_unique<StaticProvider>(
        "static-" + std::to_string(providers_.size()), std::move(entries)));
    gris.register_provider(providers_.back().get(), 300.0);
  }

  void finish_setup() { giis.register_gris(gris, 0.0, 1e6); }

  std::vector<std::unique_ptr<StaticProvider>> providers_;
};

TEST_F(StaticGiisFixture, MetacharClientIpFallsBackInsteadOfAborting) {
  // A client address carrying every RFC 4515 metacharacter.  Before
  // escaping, interpolating it produced an unparsable (or worse,
  // reshaped) filter and the broker aborted; now it degrades to an
  // uninformed first-replica fallback.
  catalog.add_replica("lfn://f", {.site = "a", .server_host = "ftp.a.org",
                                  .path = "/data/f"});
  publish({perf_entry("cn=a, o=grid", client_ip, "ftp.a.org", 5000, 1, 10)});
  finish_setup();
  ReplicaBroker broker(catalog, giis, SelectionPolicy::kPredictedBest);

  const auto selection =
      broker.select("lfn://f", "*)(cn=*)(\\", kMB, 100.0);
  ASSERT_TRUE(selection.has_value());
  EXPECT_FALSE(selection->informed);
  EXPECT_EQ(selection->replica.site, "a");
}

TEST_F(StaticGiisFixture, MetacharHostnameMatchesLiterally) {
  // A registered server host containing ( ) * must match its own GIIS
  // entry literally — the escaped filter treats them as characters,
  // not grouping or wildcards.
  const std::string odd_host = "weird(host)*.example.org";
  catalog.add_replica("lfn://f", {.site = "odd", .server_host = odd_host,
                                  .path = "/data/f"});
  publish({perf_entry("cn=odd, o=grid", client_ip, odd_host, 4000, 1, 10)});
  finish_setup();
  ReplicaBroker broker(catalog, giis, SelectionPolicy::kPredictedBest);

  const auto selection = broker.select("lfn://f", client_ip, kMB, 100.0);
  ASSERT_TRUE(selection.has_value());
  EXPECT_TRUE(selection->informed);
  EXPECT_EQ(selection->replica.server_host, odd_host);
  ASSERT_TRUE(selection->predicted_bandwidth.has_value());
  EXPECT_NEAR(*selection->predicted_bandwidth, 4000.0 * kKB, 1.0);
}

TEST_F(StaticGiisFixture, FreshnessPrefersTheNewestHistoryEpoch) {
  // Two entries for the same (client, host) pair — a lapsed
  // registration next to a fresh one.  First-wins used to return
  // whichever the GIIS listed first; the broker must read the entry
  // with the newest historyepoch regardless of listing order.
  catalog.add_replica("lfn://f", {.site = "a", .server_host = "ftp.a.org",
                                  .path = "/data/f"});
  publish({perf_entry("cn=stale, o=grid", client_ip, "ftp.a.org",
                      /*avg_rd_kb=*/2000, /*history_epoch=*/1,
                      /*last_update=*/50)});
  publish({perf_entry("cn=fresh, o=grid", client_ip, "ftp.a.org",
                      /*avg_rd_kb=*/8000, /*history_epoch=*/7,
                      /*last_update=*/40)});
  finish_setup();
  ReplicaBroker broker(catalog, giis, SelectionPolicy::kPredictedBest);

  const auto selection = broker.select("lfn://f", client_ip, kMB, 100.0);
  ASSERT_TRUE(selection.has_value());
  ASSERT_TRUE(selection->predicted_bandwidth.has_value());
  EXPECT_NEAR(*selection->predicted_bandwidth, 8000.0 * kKB, 1.0);
}

TEST_F(StaticGiisFixture, FreshnessTieBreaksOnLastUpdate) {
  catalog.add_replica("lfn://f", {.site = "a", .server_host = "ftp.a.org",
                                  .path = "/data/f"});
  publish({perf_entry("cn=old, o=grid", client_ip, "ftp.a.org",
                      /*avg_rd_kb=*/2000, /*history_epoch=*/3,
                      /*last_update=*/50)});
  publish({perf_entry("cn=new, o=grid", client_ip, "ftp.a.org",
                      /*avg_rd_kb=*/6000, /*history_epoch=*/3,
                      /*last_update=*/90)});
  finish_setup();
  ReplicaBroker broker(catalog, giis, SelectionPolicy::kPredictedBest);

  const auto selection = broker.select("lfn://f", client_ip, kMB, 100.0);
  ASSERT_TRUE(selection.has_value());
  ASSERT_TRUE(selection->predicted_bandwidth.has_value());
  EXPECT_NEAR(*selection->predicted_bandwidth, 6000.0 * kKB, 1.0);
}

/// Two replicas with published performance: "fast" predicts 8 MB/s to
/// the client, "slow" 2 MB/s.
struct CooldownFixture : StaticGiisFixture {
  const PhysicalReplica fast{.site = "fast", .server_host = "ftp.fast.org",
                             .path = "/data/f"};
  const PhysicalReplica slow{.site = "slow", .server_host = "ftp.slow.org",
                             .path = "/data/f"};

  void SetUp() override {
    catalog.add_replica("lfn://f", fast);
    catalog.add_replica("lfn://f", slow);
    publish({perf_entry("cn=fast, o=grid", client_ip, fast.server_host, 8000,
                        1, 10),
             perf_entry("cn=slow, o=grid", client_ip, slow.server_host, 2000,
                        1, 10)});
    finish_setup();
  }
};

TEST_F(CooldownFixture, FailedReplicaIsSkippedUntilTheCooldownExpires) {
  ReplicaBroker broker(catalog, giis, SelectionPolicy::kPredictedBest);
  ASSERT_EQ(broker.select("lfn://f", client_ip, kMB, 100.0)->replica.site,
            "fast");

  broker.record_failure(fast, 100.0);
  const auto during = broker.select("lfn://f", client_ip, kMB, 101.0);
  ASSERT_TRUE(during.has_value());
  EXPECT_EQ(during->replica.site, "slow");
  EXPECT_TRUE(during->informed);

  const SimTime expiry = broker.cooldowns().available_at(fast.server_host);
  EXPECT_GT(expiry, 100.0);
  const auto after = broker.select("lfn://f", client_ip, kMB, expiry);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->replica.site, "fast");
}

TEST_F(CooldownFixture, SuccessClearsTheCooldownStreak) {
  ReplicaBroker broker(catalog, giis, SelectionPolicy::kPredictedBest);
  broker.record_failure(fast, 100.0);
  broker.record_success(fast);
  EXPECT_EQ(broker.select("lfn://f", client_ip, kMB, 100.0)->replica.site,
            "fast");
}

TEST_F(CooldownFixture, AllCoolingStillYieldsASelection) {
  // When every candidate is cooling, trying one beats answering "no
  // replica": the cooldown is overridden and the override counted.
  ReplicaBroker broker(catalog, giis, SelectionPolicy::kPredictedBest);
  broker.record_failure(fast, 100.0);
  broker.record_failure(slow, 100.0);

  auto& overrides = obs::Registry::global().counter(
      "wadp_resilience_cooldown_overrides_total", {},
      "Selections forced to use a cooling replica");
  const std::uint64_t before = overrides.value();
  const auto selection = broker.select("lfn://f", client_ip, kMB, 101.0);
  ASSERT_TRUE(selection.has_value());
  EXPECT_EQ(selection->replica.site, "fast");  // still ranked by prediction
  EXPECT_EQ(overrides.value(), before + 1);
}

}  // namespace
}  // namespace wadp::replica
