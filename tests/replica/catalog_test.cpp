#include "replica/catalog.hpp"

#include <gtest/gtest.h>

namespace wadp::replica {
namespace {

PhysicalReplica at(const std::string& site, const std::string& path) {
  return {.site = site, .server_host = site + ".example.org", .path = path};
}

TEST(ReplicaCatalogTest, AddAndLookup) {
  ReplicaCatalog catalog;
  catalog.add_replica("lfn://higgs/run42", at("lbl", "/data/run42"));
  catalog.add_replica("lfn://higgs/run42", at("isi", "/mirror/run42"));
  const auto replicas = catalog.replicas("lfn://higgs/run42");
  ASSERT_EQ(replicas.size(), 2u);
  EXPECT_EQ(replicas[0].site, "lbl");
  EXPECT_EQ(replicas[1].site, "isi");
}

TEST(ReplicaCatalogTest, UnknownNameIsEmpty) {
  ReplicaCatalog catalog;
  EXPECT_TRUE(catalog.replicas("lfn://nothing").empty());
}

TEST(ReplicaCatalogTest, DuplicateRegistrationIgnored) {
  ReplicaCatalog catalog;
  catalog.add_replica("f", at("lbl", "/a"));
  catalog.add_replica("f", at("lbl", "/a"));
  EXPECT_EQ(catalog.replicas("f").size(), 1u);
}

TEST(ReplicaCatalogTest, SameSiteDifferentPathAllowed) {
  ReplicaCatalog catalog;
  catalog.add_replica("f", at("lbl", "/a"));
  catalog.add_replica("f", at("lbl", "/b"));
  EXPECT_EQ(catalog.replicas("f").size(), 2u);
}

TEST(ReplicaCatalogTest, RemoveReplica) {
  ReplicaCatalog catalog;
  catalog.add_replica("f", at("lbl", "/a"));
  catalog.add_replica("f", at("isi", "/b"));
  EXPECT_TRUE(catalog.remove_replica("f", at("lbl", "/a")));
  EXPECT_FALSE(catalog.remove_replica("f", at("lbl", "/a")));
  EXPECT_EQ(catalog.replicas("f").size(), 1u);
}

TEST(ReplicaCatalogTest, RemovingLastReplicaDropsName) {
  ReplicaCatalog catalog;
  catalog.add_replica("f", at("lbl", "/a"));
  EXPECT_TRUE(catalog.remove_replica("f", at("lbl", "/a")));
  EXPECT_EQ(catalog.size(), 0u);
  EXPECT_TRUE(catalog.logical_names().empty());
}

TEST(ReplicaCatalogTest, LogicalNamesListed) {
  ReplicaCatalog catalog;
  catalog.add_replica("b", at("lbl", "/b"));
  catalog.add_replica("a", at("isi", "/a"));
  const auto names = catalog.logical_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");  // map order
  EXPECT_EQ(names[1], "b");
}

}  // namespace
}  // namespace wadp::replica
