// Multi-threaded ingest-while-query stress for the history plane.
// These tests are in the TSan CI job's filter (names contain "Thread"):
// the assertions here are secondary to the data-race coverage.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/prediction_service.hpp"
#include "history/store.hpp"

namespace wadp::history {
namespace {

using predict::Observation;

SeriesKey key_for(int i) {
  return {.host = "host" + std::to_string(i), .remote_ip = "10.0.0.1",
          .op = gridftp::Operation::kRead};
}

bool time_sorted(const std::vector<Observation>& series) {
  return std::is_sorted(
      series.begin(), series.end(),
      [](const Observation& a, const Observation& b) { return a.time < b.time; });
}

TEST(HistoryStoreThreadStressTest, ConcurrentIngestAndSnapshotQueries) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kSharedKeys = 4;
  constexpr int kAppendsPerWriter = 3000;

  HistoryStore store(StoreConfig{.shard_count = 8, .instrumented = false});
  std::atomic<bool> done{false};
  std::atomic<std::size_t> snapshots_checked{0};

  // Writers interleave on a small shared key set with per-writer time
  // bases, so out-of-order inserts (and, with snapshots outstanding,
  // copy-on-write) happen constantly.
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store, w] {
      for (int i = 0; i < kAppendsPerWriter; ++i) {
        const Observation obs{.time = 1000.0 + i * 10.0 + w,
                              .value = 1e6 * (1 + w),
                              .file_size = 10 * kMB};
        store.append(key_for((w + i) % kSharedKeys), obs);
      }
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&store, &done, &snapshots_checked, r] {
      std::size_t checked = 0;
      while (!done.load(std::memory_order_acquire)) {
        const auto snap = store.snapshot(key_for(r % kSharedKeys));
        if (snap) {
          // A snapshot must be internally consistent no matter what the
          // writers are doing: time-ordered, stable size, readable end
          // to end.
          ASSERT_TRUE(time_sorted(snap.observations()));
          ASSERT_EQ(snap.size(), snap.observations().size());
          ++checked;
        }
        // Cross-shard reads race the appends too.
        const auto keys = store.keys();
        ASSERT_LE(keys.size(), static_cast<std::size_t>(kSharedKeys));
        store.total_observations();
        store.shard_stats();
      }
      snapshots_checked.fetch_add(checked, std::memory_order_relaxed);
    });
  }

  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(store.total_observations(),
            static_cast<std::size_t>(kWriters) * kAppendsPerWriter);
  EXPECT_EQ(store.series_count(), static_cast<std::size_t>(kSharedKeys));
  for (int k = 0; k < kSharedKeys; ++k) {
    EXPECT_TRUE(time_sorted(store.snapshot(key_for(k)).observations()));
  }
  EXPECT_GT(snapshots_checked.load(), 0u);
}

TEST(HistoryStoreThreadStressTest, RetentionUnderConcurrentIngest) {
  constexpr int kWriters = 4;
  constexpr int kAppendsPerWriter = 2000;
  static constexpr std::size_t kCap = 128;

  HistoryStore store(StoreConfig{.shard_count = 4,
                                 .max_observations_per_series = kCap,
                                 .instrumented = false});
  const SeriesKey key = key_for(0);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store, &key, w] {
      for (int i = 0; i < kAppendsPerWriter; ++i) {
        store.append(key, Observation{.time = i * 5.0 + w, .value = 1e6,
                                      .file_size = kMB});
      }
    });
  }
  std::atomic<bool> done{false};
  std::thread reader([&store, &key, &done] {
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = store.snapshot(key);
      if (snap) {
        ASSERT_LE(snap.size(), kCap);
        ASSERT_TRUE(time_sorted(snap.observations()));
      }
    }
  });
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  // Batch eviction trims below the cap, never above it; every append
  // is either retained or accounted for in the evicted counter.
  const auto snap = store.snapshot(key);
  EXPECT_LE(snap.size(), kCap);
  EXPECT_GT(snap.size(), kCap - kCap / 4);
  EXPECT_EQ(snap.size() + snap.evicted(),
            static_cast<std::uint64_t>(kWriters) * kAppendsPerWriter);
}

TEST(ServiceThreadStressTest, PredictWhileIngesting) {
  constexpr int kIngestThreads = 4;
  constexpr int kQueryThreads = 4;
  constexpr int kRecordsPerThread = 400;

  auto store = std::make_shared<HistoryStore>(
      StoreConfig{.shard_count = 8, .instrumented = false});
  core::PredictionService service(store);
  const core::SeriesKey key{.host = "h", .remote_ip = "r",
                            .op = gridftp::Operation::kRead};

  std::vector<std::thread> producers;
  for (int t = 0; t < kIngestThreads; ++t) {
    producers.emplace_back([&service, t] {
      for (int i = 0; i < kRecordsPerThread; ++i) {
        gridftp::TransferRecord r;
        r.host = "h";
        r.source_ip = "r";
        r.file_name = "/v/f";
        r.file_size = 100 * kMB;
        r.volume = "/v";
        r.end_time = 1000.0 + i * 20.0 + t;
        r.start_time = r.end_time - 10.0;
        r.op = gridftp::Operation::kRead;
        r.streams = 8;
        r.tcp_buffer = 1'000'000;
        service.ingest(r);
      }
    });
  }

  std::atomic<bool> done{false};
  std::atomic<std::size_t> answered{0};
  std::vector<std::thread> consumers;
  for (int t = 0; t < kQueryThreads; ++t) {
    consumers.emplace_back([&service, &key, &done, &answered] {
      while (!done.load(std::memory_order_acquire)) {
        const auto snapshot = service.series(key);
        const SimTime now = snapshot ? snapshot.back().time + 1.0 : 1.0;
        if (service.predict(key, 100 * kMB, now)) {
          answered.fetch_add(1, std::memory_order_relaxed);
        }
        service.series_keys();
      }
    });
  }

  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  for (auto& t : consumers) t.join();

  EXPECT_EQ(service.total_observations(),
            static_cast<std::size_t>(kIngestThreads) * kRecordsPerThread);
  const auto snapshot = service.series(key);
  ASSERT_TRUE(snapshot.valid());
  EXPECT_TRUE(time_sorted(snapshot.observations()));
  // The final, quiescent query must answer.
  EXPECT_TRUE(
      service.predict(key, 100 * kMB, snapshot.back().time + 1.0).has_value());
}

}  // namespace
}  // namespace wadp::history
