// Satellite: out-of-order ingest correctness end to end.  Merged logs
// interleave, so records reach the store out of time order; the series
// must come out time-ordered and the streaming battery must answer
// exactly what a stateless evaluation over the sorted series would.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/prediction_service.hpp"
#include "history/store.hpp"
#include "predict/suite.hpp"

namespace wadp::core {
namespace {

using gridftp::Operation;
using gridftp::TransferRecord;

TransferRecord record(double end, double bw_mb, Bytes size) {
  TransferRecord r;
  r.host = "dpsslx04.lbl.gov";
  r.source_ip = "140.221.65.69";
  r.file_name = "/v/f";
  r.file_size = size;
  r.volume = "/v";
  const double duration = static_cast<double>(size) / (bw_mb * 1e6);
  r.start_time = end - duration;
  r.end_time = end;
  r.op = Operation::kRead;
  r.streams = 8;
  r.tcp_buffer = 1'000'000;
  return r;
}

SeriesKey lbl_to_anl() {
  return {.host = "dpsslx04.lbl.gov",
          .remote_ip = "140.221.65.69",
          .op = Operation::kRead};
}

/// A varied 40-transfer series, deterministically shuffled.
std::vector<TransferRecord> shuffled_records() {
  std::vector<TransferRecord> records;
  const Bytes sizes[] = {10 * kMB, 100 * kMB, 500 * kMB, 1000 * kMB};
  for (int i = 0; i < 40; ++i) {
    records.push_back(record(1000.0 + i * 600.0, 2.0 + (i % 7) * 0.8,
                             sizes[i % 4]));
  }
  std::mt19937 rng(7);
  std::shuffle(records.begin(), records.end(), rng);
  return records;
}

TEST(OutOfOrderIngestTest, SeriesComesOutTimeOrdered) {
  PredictionService service;
  for (const auto& r : shuffled_records()) service.ingest(r);
  const auto series = service.series(lbl_to_anl());
  ASSERT_EQ(series.size(), 40u);
  EXPECT_TRUE(std::is_sorted(
      series.observations().begin(), series.observations().end(),
      [](const auto& a, const auto& b) { return a.time < b.time; }));
  EXPECT_GT(series.generation(), 0u);  // shuffle guaranteed inserts
}

TEST(OutOfOrderIngestTest, StreamingAgreesWithStatelessAfterShuffle) {
  PredictionService service;
  const auto records = shuffled_records();
  // Interleave predictions with ingest so the battery is built mid-way
  // and must replay when later out-of-order records invalidate it.
  const SeriesKey key = lbl_to_anl();
  for (std::size_t i = 0; i < records.size(); ++i) {
    service.ingest(records[i]);
    if (i % 10 == 9) service.predict(key, 100 * kMB, 1000.0 + 40 * 600.0);
  }

  const auto snapshot = service.series(key);
  const predict::Query query{.time = snapshot.back().time + 1.0,
                             .file_size = 500 * kMB};
  const auto streamed = service.predict_all(key, query.file_size, query.time);
  ASSERT_EQ(streamed.size(), service.suite().size());
  for (std::size_t p = 0; p < service.suite().size(); ++p) {
    const auto& predictor = *service.suite().predictors()[p];
    const auto stateless = predictor.predict(snapshot.span(), query);
    ASSERT_EQ(streamed[p].second.has_value(), stateless.has_value())
        << predictor.name();
    if (stateless) {
      EXPECT_NEAR(*streamed[p].second, *stateless,
                  1e-6 * std::max(1.0, std::abs(*stateless)))
          << predictor.name();
    }
  }
}

TEST(OutOfOrderIngestTest, TwoInterleavedLogsMatchOneSortedLog) {
  // The merged-logs scenario the store exists for: even/odd halves of
  // one series arriving as two bursts must converge to the same state
  // as a single ordered feed.
  std::vector<TransferRecord> ordered;
  for (int i = 0; i < 30; ++i) {
    ordered.push_back(record(100.0 + i * 50.0, 3.0 + (i % 5) * 0.5,
                             100 * kMB));
  }

  PredictionService split;
  for (std::size_t i = 0; i < ordered.size(); i += 2) split.ingest(ordered[i]);
  for (std::size_t i = 1; i < ordered.size(); i += 2) split.ingest(ordered[i]);

  PredictionService sequential;
  for (const auto& r : ordered) sequential.ingest(r);

  const auto a = split.series(lbl_to_anl());
  const auto b = sequential.series(lbl_to_anl());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.observations()[i].time, b.observations()[i].time);
    EXPECT_DOUBLE_EQ(a.observations()[i].value, b.observations()[i].value);
  }

  const SimTime now = ordered.back().end_time + 1.0;
  const auto pa = split.predict(lbl_to_anl(), 100 * kMB, now);
  const auto pb = sequential.predict(lbl_to_anl(), 100 * kMB, now);
  ASSERT_EQ(pa.has_value(), pb.has_value());
  if (pa) {
    EXPECT_DOUBLE_EQ(*pa, *pb);
  }
}

}  // namespace
}  // namespace wadp::core
