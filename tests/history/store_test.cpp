#include "history/store.hpp"

#include <gtest/gtest.h>

#include "history/adapter.hpp"
#include "obs/metrics.hpp"

namespace wadp::history {
namespace {

using predict::Observation;

StoreConfig quiet(std::size_t shards = 4,
                  std::size_t retention = 0) {
  return StoreConfig{.shard_count = shards,
                     .max_observations_per_series = retention,
                     .instrumented = false};
}

SeriesKey key_a() {
  return {.host = "dpsslx04.lbl.gov",
          .remote_ip = "140.221.65.69",
          .op = gridftp::Operation::kRead};
}

Observation obs(double time, double value = 5e6, Bytes size = 10 * kMB) {
  return Observation{.time = time, .value = value, .file_size = size};
}

gridftp::TransferRecord record(double end, Bytes size,
                               const std::string& remote = "140.221.65.69") {
  gridftp::TransferRecord r;
  r.host = "dpsslx04.lbl.gov";
  r.source_ip = remote;
  r.file_name = "/v/f";
  r.file_size = size;
  r.volume = "/v";
  r.start_time = end - 10.0;
  r.end_time = end;
  r.op = gridftp::Operation::kRead;
  r.streams = 8;
  r.tcp_buffer = 1'000'000;
  return r;
}

TEST(HistoryStoreTest, UnknownKeySnapshotsInvalid) {
  HistoryStore store(quiet());
  const auto snap = store.snapshot(key_a());
  EXPECT_FALSE(snap.valid());
  EXPECT_FALSE(snap);
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.size(), 0u);
  EXPECT_EQ(store.epoch(key_a()), 0u);
}

TEST(HistoryStoreTest, AppendsAccumulateInOrder) {
  HistoryStore store(quiet());
  EXPECT_EQ(store.append(key_a(), obs(100.0)), 1u);
  EXPECT_EQ(store.append(key_a(), obs(200.0)), 2u);
  const auto snap = store.snapshot(key_a());
  ASSERT_TRUE(snap.valid());
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_DOUBLE_EQ(snap.observations()[0].time, 100.0);
  EXPECT_DOUBLE_EQ(snap.observations()[1].time, 200.0);
  EXPECT_EQ(snap.epoch(), 2u);
  EXPECT_EQ(snap.generation(), 0u);  // never out of order
  EXPECT_EQ(store.series_count(), 1u);
  EXPECT_EQ(store.total_observations(), 2u);
}

TEST(HistoryStoreTest, SnapshotIsImmuneToLaterAppends) {
  HistoryStore store(quiet());
  store.append(key_a(), obs(100.0));
  const auto before = store.snapshot(key_a());
  ASSERT_EQ(before.size(), 1u);

  // This append must copy-on-write: `before` is still outstanding.
  store.append(key_a(), obs(200.0));
  store.append(key_a(), obs(50.0));  // even an out-of-order insert
  EXPECT_EQ(before.size(), 1u);
  EXPECT_DOUBLE_EQ(before.observations()[0].time, 100.0);

  const auto after = store.snapshot(key_a());
  ASSERT_EQ(after.size(), 3u);
  EXPECT_DOUBLE_EQ(after.observations()[0].time, 50.0);
}

TEST(HistoryStoreTest, OutOfOrderInsertsKeepTimeOrderAndBumpGeneration) {
  HistoryStore store(quiet());
  store.append(key_a(), obs(300.0));
  store.append(key_a(), obs(100.0));
  store.append(key_a(), obs(200.0));
  const auto snap = store.snapshot(key_a());
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_DOUBLE_EQ(snap.observations()[0].time, 100.0);
  EXPECT_DOUBLE_EQ(snap.observations()[1].time, 200.0);
  EXPECT_DOUBLE_EQ(snap.observations()[2].time, 300.0);
  EXPECT_EQ(snap.epoch(), 3u);
  EXPECT_EQ(snap.generation(), 2u);  // two prefix-invalidating inserts
}

TEST(HistoryStoreTest, EqualTimestampsAppendStably) {
  HistoryStore store(quiet());
  store.append(key_a(), obs(100.0, 1.0));
  store.append(key_a(), obs(100.0, 2.0));
  const auto snap = store.snapshot(key_a());
  ASSERT_EQ(snap.size(), 2u);
  // Ties extend the tail (no generation bump, first-come order kept).
  EXPECT_DOUBLE_EQ(snap.observations()[0].value, 1.0);
  EXPECT_DOUBLE_EQ(snap.observations()[1].value, 2.0);
  EXPECT_EQ(snap.generation(), 0u);
}

TEST(HistoryStoreTest, RetentionCapEvictsOldest) {
  HistoryStore store(quiet(1, /*retention=*/5));
  for (int i = 0; i < 8; ++i) {
    store.append(key_a(), obs(100.0 + i));
  }
  const auto snap = store.snapshot(key_a());
  ASSERT_EQ(snap.size(), 5u);
  EXPECT_DOUBLE_EQ(snap.observations().front().time, 103.0);
  EXPECT_DOUBLE_EQ(snap.back().time, 107.0);
  EXPECT_EQ(snap.evicted(), 3u);
  // Every eviction invalidated the prefix.
  EXPECT_EQ(snap.generation(), 3u);
}

TEST(HistoryStoreTest, RecordsRouteThroughTheAdapter) {
  HistoryStore store(quiet());
  store.append(record(1000.0, 20 * kMB));
  const auto snap = store.snapshot(key_a());
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.back().time, 1000.0);
  EXPECT_DOUBLE_EQ(snap.back().value, 20.0 * kMB / 10.0);
  EXPECT_EQ(snap.back().file_size, 20 * kMB);
}

TEST(HistoryStoreTest, AttachBackfillsAndMirrorsLiveAppends) {
  gridftp::TransferLog log;
  log.append(record(100.0, kMB));
  log.append(record(200.0, kMB));

  HistoryStore store(quiet());
  EXPECT_EQ(store.attach(log), 2u);
  EXPECT_EQ(store.total_observations(), 2u);

  // Live path: appends to the log flow into the store automatically.
  log.append(record(300.0, kMB));
  EXPECT_EQ(store.total_observations(), 3u);
  EXPECT_DOUBLE_EQ(store.snapshot(key_a()).back().time, 300.0);
}

TEST(HistoryStoreTest, IngestLogPullsEveryRecord) {
  gridftp::TransferLog log;
  for (int i = 0; i < 5; ++i) log.append(record(100.0 + i, kMB));
  HistoryStore store(quiet());
  EXPECT_EQ(store.ingest_log(log), 5u);
  EXPECT_EQ(store.total_observations(), 5u);
}

TEST(HistoryStoreTest, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(HistoryStore(quiet(3)).shard_count(), 4u);
  EXPECT_EQ(HistoryStore(quiet(1)).shard_count(), 1u);
  EXPECT_EQ(HistoryStore(quiet(16)).shard_count(), 16u);
  EXPECT_EQ(HistoryStore(quiet(0)).shard_count(), 1u);
  EXPECT_EQ(HistoryStore(quiet(1000)).shard_count(), 64u);  // clamped
}

TEST(HistoryStoreTest, KeysAreSortedAndFilterableByHost) {
  HistoryStore store(quiet());
  store.append({.host = "b", .remote_ip = "1", .op = gridftp::Operation::kRead},
               obs(1.0));
  store.append({.host = "a", .remote_ip = "2", .op = gridftp::Operation::kRead},
               obs(1.0));
  store.append({.host = "a", .remote_ip = "1", .op = gridftp::Operation::kRead},
               obs(1.0));
  const auto keys = store.keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0].host, "a");
  EXPECT_EQ(keys[0].remote_ip, "1");
  EXPECT_EQ(keys[1].host, "a");
  EXPECT_EQ(keys[1].remote_ip, "2");
  EXPECT_EQ(keys[2].host, "b");
  EXPECT_EQ(store.keys_for_host("a").size(), 2u);
  EXPECT_TRUE(store.keys_for_host("c").empty());
}

TEST(HistoryStoreTest, ShardStatsAccountForEverySeries) {
  HistoryStore store(quiet(4));
  for (int s = 0; s < 10; ++s) {
    const SeriesKey key{.host = "h" + std::to_string(s), .remote_ip = "r",
                        .op = gridftp::Operation::kRead};
    store.append(key, obs(1.0));
    store.append(key, obs(2.0));
  }
  const auto stats = store.shard_stats();
  ASSERT_EQ(stats.size(), 4u);
  std::size_t series = 0, observations = 0;
  std::uint64_t appends = 0;
  for (const auto& shard : stats) {
    series += shard.series_count;
    observations += shard.observation_count;
    appends += shard.appends;
  }
  EXPECT_EQ(series, 10u);
  EXPECT_EQ(observations, 20u);
  EXPECT_EQ(appends, 20u);
}

TEST(HistoryStoreTest, SeriesInfoReportsPerSeriesWatermarks) {
  HistoryStore store(quiet());
  store.append(key_a(), obs(200.0));
  store.append(key_a(), obs(100.0));  // generation bump
  const auto info = store.series_info();
  ASSERT_EQ(info.size(), 1u);
  EXPECT_EQ(info[0].key, key_a());
  EXPECT_EQ(info[0].observations, 2u);
  EXPECT_EQ(info[0].epoch, 2u);
  EXPECT_EQ(info[0].generation, 1u);
  EXPECT_EQ(info[0].evicted, 0u);
}

TEST(HistoryStoreTest, HashSeparatesFieldBoundaries) {
  // FNV-1a with separators: ("ab","c") and ("a","bc") must not collide
  // by construction (regression guard on the mixing scheme).
  const SeriesKey ab_c{.host = "ab", .remote_ip = "c",
                       .op = gridftp::Operation::kRead};
  const SeriesKey a_bc{.host = "a", .remote_ip = "bc",
                       .op = gridftp::Operation::kRead};
  EXPECT_NE(hash_of(ab_c), hash_of(a_bc));
  const SeriesKey write = {.host = "ab", .remote_ip = "c",
                           .op = gridftp::Operation::kWrite};
  EXPECT_NE(hash_of(ab_c), hash_of(write));
}

TEST(HistoryStoreTest, InstrumentedStoreCountsIntoGlobalRegistry) {
  auto& registry = obs::Registry::global();
  auto& ooo = registry.counter("wadp_history_out_of_order_total");
  auto& evicted = registry.counter("wadp_history_evicted_total");
  auto& snapshots = registry.counter("wadp_history_snapshots_total");
  auto& cow = registry.counter("wadp_history_cow_copies_total");
  const auto ooo0 = ooo.value();
  const auto evicted0 = evicted.value();
  const auto snapshots0 = snapshots.value();
  const auto cow0 = cow.value();

  HistoryStore store(
      StoreConfig{.shard_count = 2, .max_observations_per_series = 3,
                  .instrumented = true});
  store.append(key_a(), obs(100.0));
  const auto held = store.snapshot(key_a());   // forces COW on next append
  store.append(key_a(), obs(50.0));            // out of order
  for (int i = 0; i < 4; ++i) store.append(key_a(), obs(200.0 + i));

  EXPECT_EQ(ooo.value(), ooo0 + 1);
  EXPECT_GE(evicted.value(), evicted0 + 3);
  EXPECT_EQ(snapshots.value(), snapshots0 + 1);
  EXPECT_GE(cow.value(), cow0 + 1);
  EXPECT_GE(registry.counter("wadp_history_appends_total",
                             {{"shard", "0"}})
                    .value() +
                registry.counter("wadp_history_appends_total",
                                 {{"shard", "1"}})
                    .value(),
            6u);
}

}  // namespace
}  // namespace wadp::history
