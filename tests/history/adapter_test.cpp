#include "history/adapter.hpp"

#include <gtest/gtest.h>

namespace wadp::history {
namespace {

gridftp::TransferRecord record() {
  gridftp::TransferRecord r;
  r.host = "dpsslx04.lbl.gov";
  r.source_ip = "140.221.65.69";
  r.file_name = "/v/f";
  r.file_size = 10 * kMB;
  r.volume = "/v";
  r.start_time = 100.0;
  r.end_time = 105.0;
  r.op = gridftp::Operation::kRead;
  r.streams = 8;
  r.tcp_buffer = 1'000'000;
  return r;
}

TEST(AdapterTest, SeriesKeyNamesHostRemoteAndDirection) {
  const auto key = series_key_for(record());
  EXPECT_EQ(key.host, "dpsslx04.lbl.gov");
  EXPECT_EQ(key.remote_ip, "140.221.65.69");
  EXPECT_EQ(key.op, gridftp::Operation::kRead);
  EXPECT_EQ(key.to_string(), "dpsslx04.lbl.gov/140.221.65.69/read");
}

TEST(AdapterTest, ObservationIsCompletionTimeBandwidthAndSize) {
  const auto obs = to_observation(record());
  EXPECT_DOUBLE_EQ(obs.time, 105.0);
  EXPECT_DOUBLE_EQ(obs.value, 2'000'000.0);  // 10 MB over 5 s
  EXPECT_EQ(obs.file_size, 10 * kMB);
}

TEST(AdapterTest, FilterDefaultsToReadsOnly) {
  auto r = record();
  SeriesFilter filter;
  EXPECT_TRUE(filter.matches(r));
  r.op = gridftp::Operation::kWrite;
  EXPECT_FALSE(filter.matches(r));
  filter.op.reset();
  EXPECT_TRUE(filter.matches(r));
}

TEST(AdapterTest, FilterByRemoteEndpoint) {
  const auto r = record();
  EXPECT_TRUE(SeriesFilter{.remote_ip = "140.221.65.69"}.matches(r));
  EXPECT_FALSE(SeriesFilter{.remote_ip = "1.2.3.4"}.matches(r));
  EXPECT_TRUE(SeriesFilter{}.matches(r));  // empty = all
}

TEST(AdapterTest, ObservationsFromRecordsAppliesFilter) {
  std::vector<gridftp::TransferRecord> records;
  records.push_back(record());
  auto writes = record();
  writes.op = gridftp::Operation::kWrite;
  records.push_back(writes);
  auto other = record();
  other.source_ip = "1.2.3.4";
  records.push_back(other);

  EXPECT_EQ(observations_from_records(records).size(), 2u);  // reads only
  EXPECT_EQ(observations_from_records(records, {.remote_ip = "140.221.65.69"})
                .size(),
            1u);
  SeriesFilter everything;
  everything.op.reset();
  EXPECT_EQ(observations_from_records(records, everything).size(), 3u);
}

}  // namespace
}  // namespace wadp::history
