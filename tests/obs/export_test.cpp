#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/ulm.hpp"

namespace wadp::obs {
namespace {

/// One registry covering all three kinds, with values chosen so every
/// derived statistic is exact (all histogram samples identical).
void fill_demo(Registry& registry) {
  registry
      .counter("demo_transfers_total", {{"op", "read"}}, "Transfers by op")
      .inc(3);
  registry.counter("demo_transfers_total", {{"op", "write"}}).inc(1);
  registry.gauge("demo_queue_depth", {}, "Queue depth").set(2.5);
  Histogram& h = registry.histogram("demo_latency_seconds", {}, "Latency");
  for (int i = 0; i < 4; ++i) h.record(2.0);
}

TEST(ExportTest, PrometheusGolden) {
  Registry registry;
  fill_demo(registry);
  EXPECT_EQ(to_prometheus(registry),
            "# HELP demo_latency_seconds Latency\n"
            "# TYPE demo_latency_seconds histogram\n"
            "demo_latency_seconds_bucket{le=\"2.125\"} 4\n"
            "demo_latency_seconds_bucket{le=\"+Inf\"} 4\n"
            "demo_latency_seconds{quantile=\"0.5\"} 2\n"
            "demo_latency_seconds{quantile=\"0.9\"} 2\n"
            "demo_latency_seconds{quantile=\"0.99\"} 2\n"
            "demo_latency_seconds_sum 8\n"
            "demo_latency_seconds_count 4\n"
            "# HELP demo_queue_depth Queue depth\n"
            "# TYPE demo_queue_depth gauge\n"
            "demo_queue_depth 2.5\n"
            "# HELP demo_transfers_total Transfers by op\n"
            "# TYPE demo_transfers_total counter\n"
            "demo_transfers_total{op=\"read\"} 3\n"
            "demo_transfers_total{op=\"write\"} 1\n");
}

TEST(ExportTest, PrometheusEscapesHostileLabelValues) {
  // Exposition format 0.0.4: backslash, double-quote, and line-feed
  // must be escaped inside a quoted label value; HELP text escapes
  // backslash and line-feed but keeps quotes.
  Registry registry;
  registry
      .counter("demo_paths_total",
               {{"path", "C:\\data\\new"},
                {"note", "say \"hi\""},
                {"multi", "line1\nline2"}},
               "Help with \\ and\nnewline")
      .inc(1);
  // Labels are stored name-sorted, so the golden lists them that way.
  EXPECT_EQ(to_prometheus(registry),
            "# HELP demo_paths_total Help with \\\\ and\\nnewline\n"
            "# TYPE demo_paths_total counter\n"
            "demo_paths_total{multi=\"line1\\nline2\","
            "note=\"say \\\"hi\\\"\",path=\"C:\\\\data\\\\new\"} 1\n");
}

TEST(ExportTest, BuildInfoGaugeVisibleInEveryFormat) {
  // The info-metric idiom: Registry::global() self-registers a constant
  // 1-valued wadp_build_info gauge whose labels carry the identity, so
  // all three export formats surface it without call-site wiring.
  Registry& registry = Registry::global();
  const std::string prometheus = to_prometheus(registry);
  EXPECT_NE(prometheus.find("# TYPE wadp_build_info gauge"),
            std::string::npos);
  EXPECT_NE(prometheus.find("wadp_build_info{build_type=\""),
            std::string::npos);
  EXPECT_NE(prometheus.find("git_sha=\""), std::string::npos);
  EXPECT_NE(prometheus.find("version=\""), std::string::npos);
  EXPECT_NE(prometheus.find("} 1\n"), std::string::npos);

  const std::string json = to_json(registry);
  EXPECT_NE(json.find("wadp_build_info"), std::string::npos);

  const std::string ulm = metrics_to_ulm(registry);
  EXPECT_NE(ulm.find("NAME=wadp_build_info TYPE=gauge VALUE=1.000000"),
            std::string::npos);
}

TEST(ExportTest, MetricsUlmGolden) {
  Registry registry;
  fill_demo(registry);
  EXPECT_EQ(
      metrics_to_ulm(registry),
      "EVNT=metric PROG=wadp.obs NAME=demo_latency_seconds TYPE=histogram "
      "COUNT=4 SUM=8.000000 MIN=2.000000 MAX=2.000000 P50=2.000000 "
      "P90=2.000000 P99=2.000000\n"
      "EVNT=metric PROG=wadp.obs NAME=demo_queue_depth TYPE=gauge "
      "VALUE=2.500000\n"
      "EVNT=metric PROG=wadp.obs NAME=demo_transfers_total TYPE=counter "
      "VALUE=3 L.OP=read\n"
      "EVNT=metric PROG=wadp.obs NAME=demo_transfers_total TYPE=counter "
      "VALUE=1 L.OP=write\n");
}

TEST(ExportTest, JsonGolden) {
  Registry registry;
  fill_demo(registry);
  EXPECT_EQ(to_json(registry),
            "{\"counters\": {\"demo_transfers_total{op=\\\"read\\\"}\": 3, "
            "\"demo_transfers_total{op=\\\"write\\\"}\": 1}, "
            "\"gauges\": {\"demo_queue_depth\": 2.5}, "
            "\"histograms\": {\"demo_latency_seconds\": {\"count\": 4, "
            "\"sum\": 8, \"min\": 2, \"max\": 2, \"mean\": 2, \"p50\": 2, "
            "\"p90\": 2, \"p99\": 2}}}");
}

TEST(ExportTest, SpansUlmGolden) {
  std::uint64_t now = 0;
  Tracer tracer(8, [&now] { return now += 100; });
  auto root = tracer.start("transfer");
  root.set_attr("OP", "read");
  {
    auto child = root.child("stream");
    child.set_attr("BYTES", std::int64_t{1000});
  }
  root.end();
  EXPECT_EQ(spans_to_ulm(tracer),
            "EVNT=span PROG=wadp.obs NAME=stream SPAN=2 PARENT=1 "
            "START.NS=200 DUR.NS=100 BYTES=1000\n"
            "EVNT=span PROG=wadp.obs NAME=transfer SPAN=1 PARENT=0 "
            "START.NS=100 DUR.NS=300 OP=read\n");
}

TEST(ExportTest, UlmLinesRoundTripThroughTheSharedParser) {
  // The point of reusing ULM: the same codec that reads transfer logs
  // must read framework self-events.
  Registry registry;
  fill_demo(registry);
  std::istringstream lines(metrics_to_ulm(registry));
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(lines, line)) {
    const auto record = util::UlmRecord::parse(line);
    ASSERT_TRUE(record.has_value()) << line;
    EXPECT_EQ(record->get("EVNT"), "metric");
    EXPECT_TRUE(record->has("NAME"));
    ++parsed;
  }
  EXPECT_EQ(parsed, 4u);
}

TEST(ExportTest, EventSinkEmitsParseableUlm) {
  EventSink sink(4);
  util::UlmRecord extra;
  extra.set("REASON", "no_stream");
  sink.emit("predict.fallback", "wadp.core", std::move(extra));
  EXPECT_EQ(sink.to_text(),
            "EVNT=predict.fallback PROG=wadp.core REASON=no_stream\n");
  EXPECT_EQ(sink.emitted_total(), 1u);
}

TEST(ExportTest, WriteBenchJsonWrapsMetrics) {
  Registry registry;
  registry.counter("x_total").inc(7);
  const auto path =
      (std::filesystem::temp_directory_path() / "wadp_bench_export_test.json")
          .string();
  const auto written = write_bench_json(path, "obs_overhead", registry);
  ASSERT_TRUE(written.ok()) << written.error();
  std::ifstream in(path);
  std::stringstream body;
  body << in.rdbuf();
  EXPECT_EQ(body.str(),
            "{\"bench\": \"obs_overhead\", \"metrics\": "
            "{\"counters\": {\"x_total\": 7}, \"gauges\": {}, "
            "\"histograms\": {}}}\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wadp::obs
