#include "obs/flight.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "util/ulm.hpp"

namespace wadp::obs {
namespace {

namespace fs = std::filesystem;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

/// Registry + recorder with a few scraped series, a fake-clock tracer,
/// and an event sink — enough state for a bundle with every section.
class FlightTest : public ::testing::Test {
 protected:
  FlightTest()
      : recorder_([this] {
          RecorderConfig config;
          config.registry = &registry_;
          return config;
        }()),
        tracer_(/*capacity=*/4, [this] { return clock_ns_ += 1000; }) {
    // Keyed by test name: ctest runs cases as parallel processes, so a
    // shared directory would let one case's teardown race another.
    dir_ = (fs::temp_directory_path() /
            (std::string("wadp_flight_test_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);

    Counter& c = registry_.counter("wadp_x_total");
    for (int i = 0; i < 10; ++i) {
      c.inc(5);
      recorder_.scrape(static_cast<double>(i + 1));
    }
    for (int i = 0; i < 3; ++i) tracer_.start("phase").end();
    events_.emit("test.event", "wadp.test");
  }

  ~FlightTest() override { fs::remove_all(dir_); }

  FlightConfig flight_config() {
    FlightConfig config;
    config.dir = dir_;
    config.registry = &registry_;
    return config;
  }

  Registry registry_;
  MetricsRecorder recorder_;
  std::uint64_t clock_ns_ = 0;
  Tracer tracer_;
  EventSink events_;
  std::string dir_;
};

TEST_F(FlightTest, CaptureWritesJsonAndUlmHalves) {
  FlightRecorder flight(&recorder_, &tracer_, &events_, flight_config());
  const auto bundle = flight.capture("manual", 10.0);
  ASSERT_TRUE(bundle.ok()) << bundle.error();

  EXPECT_TRUE(fs::exists(bundle.value().json_path));
  EXPECT_TRUE(fs::exists(bundle.value().ulm_path));
  EXPECT_GT(bundle.value().series, 0u);
  EXPECT_GT(bundle.value().points, 0u);
  EXPECT_EQ(bundle.value().spans, 3u);
  EXPECT_GE(bundle.value().events, 1u);
  EXPECT_EQ(bundle.value().json_bytes,
            read_file(bundle.value().json_path).size());
  EXPECT_EQ(flight.captures(), 1u);
}

TEST_F(FlightTest, UlmHalfRoundTripsThroughTheSharedParser) {
  FlightRecorder flight(&recorder_, &tracer_, &events_, flight_config());
  const auto bundle = flight.capture("manual", 10.0);
  ASSERT_TRUE(bundle.ok()) << bundle.error();

  const auto parsed = util::parse_ulm_log(read_file(bundle.value().ulm_path));
  EXPECT_EQ(parsed.skipped_lines, 0u);
  EXPECT_FALSE(parsed.records.empty());
}

TEST_F(FlightTest, BundlePointsAreBoundedPerSeries) {
  FlightConfig config = flight_config();
  config.max_points_per_series = 3;
  FlightRecorder flight(&recorder_, &tracer_, &events_, config);
  const auto bundle = flight.capture("manual", 10.0);
  ASSERT_TRUE(bundle.ok()) << bundle.error();
  EXPECT_LE(bundle.value().points, bundle.value().series * 3);
}

TEST_F(FlightTest, CaptureStatesTracerEvictionsForCompleteness) {
  // Overflow the 4-slot span ring: the silent evictions must surface
  // both on the tracer and in the bundle's completeness meta.
  for (int i = 0; i < 6; ++i) tracer_.start("extra").end();
  EXPECT_EQ(tracer_.dropped_total(), 5u);  // 9 finished, 4 kept

  FlightRecorder flight(&recorder_, &tracer_, &events_, flight_config());
  const auto bundle = flight.capture("manual", 10.0);
  ASSERT_TRUE(bundle.ok()) << bundle.error();
  EXPECT_EQ(bundle.value().dropped_spans, 5u);
  EXPECT_EQ(bundle.value().spans, 4u);
}

TEST_F(FlightTest, AtomicRenameLeavesNoTempFiles) {
  FlightRecorder flight(&recorder_, &tracer_, &events_, flight_config());
  ASSERT_TRUE(flight.capture("manual", 10.0).ok());
  ASSERT_TRUE(flight.capture("manual", 11.0).ok());

  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    EXPECT_TRUE(name.rfind("flight-", 0) == 0 &&
                (name.ends_with(".json") || name.ends_with(".ulm")))
        << "stray file in bundle dir: " << name;
  }
}

TEST_F(FlightTest, SequenceNumbersAdvanceAcrossCaptures) {
  FlightRecorder flight(&recorder_, &tracer_, &events_, flight_config());
  const auto first = flight.capture("manual", 10.0);
  const auto second = flight.capture("alert.test", 11.0);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_LT(first.value().seq, second.value().seq);
  EXPECT_NE(first.value().json_path, second.value().json_path);
  EXPECT_EQ(flight.captures(), 2u);
  EXPECT_EQ(registry_.counter("wadp_flight_captures_total").value(), 2u);
}

TEST_F(FlightTest, NullSourcesJustOmitTheirSections) {
  FlightRecorder flight(nullptr, nullptr, nullptr, flight_config());
  const auto bundle = flight.capture("manual", 10.0);
  ASSERT_TRUE(bundle.ok()) << bundle.error();
  EXPECT_EQ(bundle.value().series, 0u);
  EXPECT_EQ(bundle.value().spans, 0u);
  EXPECT_EQ(bundle.value().events, 0u);
  const auto parsed = util::parse_ulm_log(read_file(bundle.value().ulm_path));
  EXPECT_EQ(parsed.skipped_lines, 0u);
}

}  // namespace
}  // namespace wadp::obs
