#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace wadp::obs {
namespace {

RecorderConfig with(Registry* registry, std::size_t ring_capacity = 512,
                    std::size_t max_series = 8192) {
  RecorderConfig config;
  config.registry = registry;
  config.ring_capacity = ring_capacity;
  config.max_series = max_series;
  return config;
}

TEST(TimeseriesTest, CounterYieldsCumulativeAndRateSeries) {
  Registry registry;
  MetricsRecorder recorder(with(&registry));
  Counter& c = registry.counter("wadp_x_total");

  c.inc(10);
  recorder.scrape(1.0);
  c.inc(30);
  recorder.scrape(5.0);

  const auto raw = recorder.samples("wadp_x_total");
  ASSERT_EQ(raw.size(), 2u);
  EXPECT_DOUBLE_EQ(raw[0].value, 10.0);
  EXPECT_DOUBLE_EQ(raw[1].value, 40.0);

  const auto latest =
      recorder.latest(MetricsRecorder::rate_series("wadp_x_total"));
  ASSERT_TRUE(latest.has_value());
  EXPECT_DOUBLE_EQ(latest->time, 5.0);
  EXPECT_DOUBLE_EQ(latest->value, 30.0 / 4.0);
}

TEST(TimeseriesTest, CounterBornAfterFirstScrapeRatesImmediately) {
  Registry registry;
  MetricsRecorder recorder(with(&registry));
  recorder.scrape(10.0);

  // A counter first seen mid-run implicitly sat at zero before it
  // registered; its rate series must carry a sample on the very first
  // scrape that sees it, or SLO detection pays an extra interval.
  Counter& c = registry.counter("wadp_late_total");
  c.inc(6);
  recorder.scrape(13.0);

  const auto rate =
      recorder.latest(MetricsRecorder::rate_series("wadp_late_total"));
  ASSERT_TRUE(rate.has_value());
  EXPECT_DOUBLE_EQ(rate->value, 2.0);
}

TEST(TimeseriesTest, LabeledCounterFamilyGetsAggregateRate) {
  Registry registry;
  MetricsRecorder recorder(with(&registry));
  Counter& read = registry.counter("wadp_ops_total", {{"op", "read"}});
  Counter& write = registry.counter("wadp_ops_total", {{"op", "write"}});

  recorder.scrape(0.0);
  read.inc(4);
  write.inc(6);
  recorder.scrape(2.0);

  const auto family =
      recorder.latest(MetricsRecorder::rate_series("wadp_ops_total"));
  ASSERT_TRUE(family.has_value());
  EXPECT_DOUBLE_EQ(family->value, 5.0);

  const auto cell = recorder.latest(
      MetricsRecorder::rate_series("wadp_ops_total{op=\"read\"}"));
  ASSERT_TRUE(cell.has_value());
  EXPECT_DOUBLE_EQ(cell->value, 2.0);
}

TEST(TimeseriesTest, HistogramYieldsQuantilesAndSampleRate) {
  Registry registry;
  MetricsRecorder recorder(with(&registry));
  Histogram& h = registry.histogram("wadp_latency_seconds");

  recorder.scrape(0.0);
  for (int i = 0; i < 100; ++i) h.record(0.01 * (i + 1));
  recorder.scrape(10.0);

  const auto p50 =
      recorder.latest(MetricsRecorder::p50_series("wadp_latency_seconds"));
  const auto p99 =
      recorder.latest(MetricsRecorder::p99_series("wadp_latency_seconds"));
  const auto rate =
      recorder.latest(MetricsRecorder::rate_series("wadp_latency_seconds"));
  ASSERT_TRUE(p50.has_value());
  ASSERT_TRUE(p99.has_value());
  ASSERT_TRUE(rate.has_value());
  EXPECT_NEAR(p50->value, 0.5, 0.1);
  EXPECT_GT(p99->value, p50->value);
  EXPECT_DOUBLE_EQ(rate->value, 10.0);
}

TEST(TimeseriesTest, NonAdvancingScrapeIsSkippedAndCounted) {
  Registry registry;
  MetricsRecorder recorder(with(&registry));
  registry.counter("wadp_x_total").inc();

  EXPECT_GT(recorder.scrape(1.0), 0u);
  EXPECT_EQ(recorder.scrape(1.0), 0u);  // same instant: double-wired tick
  EXPECT_EQ(recorder.scrape(0.5), 0u);  // time went backwards
  EXPECT_EQ(recorder.scrapes(), 1u);
  EXPECT_EQ(recorder.skipped_scrapes(), 2u);
  EXPECT_DOUBLE_EQ(recorder.last_scrape_time(), 1.0);
}

TEST(TimeseriesTest, ScrapeTalliesAreLocalToEachRecorder) {
  // Two recorders over one registry share the wadp_ts_* self-metrics
  // (wadp serve runs a wall-clock and a query-time recorder in one
  // process); the accessors must report each recorder's own work.
  Registry registry;
  MetricsRecorder a(with(&registry));
  MetricsRecorder b(with(&registry));

  a.scrape(1.0);
  a.scrape(2.0);
  b.scrape(1.0);

  EXPECT_EQ(a.scrapes(), 2u);
  EXPECT_EQ(b.scrapes(), 1u);
  EXPECT_EQ(registry.counter("wadp_ts_scrapes_total").value(), 3u);
}

TEST(TimeseriesTest, RingEvictsOldestFirst) {
  Registry registry;
  MetricsRecorder recorder(with(&registry, /*ring_capacity=*/4));
  Gauge& g = registry.gauge("wadp_depth_ratio");

  for (int i = 0; i < 10; ++i) {
    g.set(static_cast<double>(i));
    recorder.scrape(static_cast<double>(i));
  }

  const auto samples = recorder.samples("wadp_depth_ratio");
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_DOUBLE_EQ(samples.front().value, 6.0);
  EXPECT_DOUBLE_EQ(samples.back().value, 9.0);
}

TEST(TimeseriesTest, SeriesBeyondTheCapAreDroppedAndCounted) {
  Registry registry;
  // The recorder's own self-metrics claim some of the budget; a tiny
  // cap guarantees the user gauges overflow it.
  MetricsRecorder recorder(with(&registry, 512, /*max_series=*/4));
  for (int i = 0; i < 16; ++i) {
    registry.gauge("wadp_g" + std::to_string(i) + "_ratio").set(1.0);
  }
  recorder.scrape(1.0);

  EXPECT_EQ(recorder.series_count(), 4u);
  EXPECT_GT(recorder.dropped_series(), 0u);
}

TEST(TimeseriesTest, WindowAggregatesOnlySamplesInsideIt) {
  Registry registry;
  MetricsRecorder recorder(with(&registry));
  Gauge& g = registry.gauge("wadp_load_ratio");

  const double values[] = {1.0, 2.0, 3.0, 10.0, 20.0};
  for (int i = 0; i < 5; ++i) {
    g.set(values[i]);
    recorder.scrape(static_cast<double>(i + 1));
  }

  const TsWindow recent = recorder.window("wadp_load_ratio", 2.0, 5.0);
  EXPECT_EQ(recent.samples, 2u);
  EXPECT_DOUBLE_EQ(recent.mean, 15.0);
  EXPECT_DOUBLE_EQ(recent.min, 10.0);
  EXPECT_DOUBLE_EQ(recent.max, 20.0);
  EXPECT_DOUBLE_EQ(recent.last, 20.0);

  const TsWindow all = recorder.window("wadp_load_ratio", 100.0, 5.0);
  EXPECT_EQ(all.samples, 5u);
  EXPECT_TRUE(recorder.window("wadp_absent", 100.0, 5.0).empty());
}

TEST(TimeseriesTest, HottestRanksRateSeriesByWindowedMean) {
  Registry registry;
  MetricsRecorder recorder(with(&registry));
  Counter& hot = registry.counter("wadp_hot_total");
  Counter& cold = registry.counter("wadp_cold_total");

  recorder.scrape(0.0);
  hot.inc(1000);
  cold.inc(10);
  recorder.scrape(1.0);

  const auto ranked = recorder.hottest(2, 10.0, 1.0);
  ASSERT_GE(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].name, MetricsRecorder::rate_series("wadp_hot_total"));
  EXPECT_DOUBLE_EQ(ranked[0].mean, 1000.0);
  EXPECT_GE(ranked[0].mean, ranked[1].mean);
  for (const auto& row : ranked) {
    EXPECT_NE(row.name.find(":rate"), std::string::npos);
  }
}

}  // namespace
}  // namespace wadp::obs
