// Exporter-under-mutation stress: the registry's concurrency contract
// says exporters and the MetricsRecorder read instruments with relaxed
// loads while writers keep writing.  Four writer threads hammer a
// shared registry while the main thread exports every wire format and
// scrapes rings; TSan (the CI job's '*Thread*' filter picks this suite
// up) proves the data-race freedom, and the final assertions prove no
// increment was lost.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace wadp::obs {
namespace {

TEST(ExportThreadStressTest, ExportersAndRecorderUnderFourWriters) {
  constexpr int kWriters = 4;
  constexpr std::uint64_t kIncrementsPerWriter = 20000;

  Registry registry;
  RecorderConfig config;
  config.registry = &registry;
  MetricsRecorder recorder(config);

  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry, &go, w] {
      // Each writer owns one label cell of a shared family plus the
      // shared unlabeled instruments — both registration-under-write
      // and value-under-write paths stay hot.
      Counter& own = registry.counter("wadp_stress_ops_total",
                                      {{"writer", std::to_string(w)}});
      Gauge& depth = registry.gauge("wadp_stress_depth_ratio");
      Histogram& lat = registry.histogram("wadp_stress_latency_seconds");
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < kIncrementsPerWriter; ++i) {
        own.inc();
        depth.set(static_cast<double>(i));
        lat.record(1e-6 * static_cast<double>(i % 1000 + 1));
      }
    });
  }

  go.store(true, std::memory_order_release);
  double now = 0.0;
  for (int round = 0; round < 50; ++round) {
    EXPECT_FALSE(to_prometheus(registry).empty());
    EXPECT_FALSE(to_json(registry).empty());
    EXPECT_FALSE(metrics_to_ulm(registry).empty());
    now += 1.0;
    recorder.scrape(now);
  }
  for (auto& writer : writers) writer.join();

  // Quiescent state: every increment must be visible in both the
  // instruments and a final scrape's cumulative series.
  recorder.scrape(now + 1.0);
  std::uint64_t total = 0;
  for (int w = 0; w < kWriters; ++w) {
    total += registry
                 .counter("wadp_stress_ops_total",
                          {{"writer", std::to_string(w)}})
                 .value();
  }
  EXPECT_EQ(total, kWriters * kIncrementsPerWriter);
  const auto cell = recorder.latest("wadp_stress_ops_total{writer=\"0\"}");
  ASSERT_TRUE(cell.has_value());
  EXPECT_DOUBLE_EQ(cell->value,
                   static_cast<double>(kIncrementsPerWriter));
  EXPECT_EQ(recorder.scrapes(), 51u);
}

}  // namespace
}  // namespace wadp::obs
