#include "obs/quality.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "core/prediction_service.hpp"
#include "gridftp/record.hpp"
#include "history/store.hpp"
#include "obs/context.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace wadp::obs {
namespace {

constexpr Bytes kSize = 10'000'000;  // one size class throughout

/// Tracker wired to a private registry/sink so counter values are this
/// test's alone (the global registry accumulates across instances).
struct Fixture {
  Registry registry;
  EventSink events{64};
  QualityConfig config;
  std::unique_ptr<QualityTracker> tracker;

  explicit Fixture(QualityConfig base = {}) : config(std::move(base)) {
    config.registry = &registry;
    config.events = &events;
    tracker = std::make_unique<QualityTracker>(config);
  }
};

ServedPrediction prediction_for(std::uint64_t trace, const std::string& site,
                                double time, const std::string& predictor,
                                double value) {
  return ServedPrediction{.trace_id = trace,
                          .site = site,
                          .file_size = kSize,
                          .time = time,
                          .predictor = predictor,
                          .value = value};
}

gridftp::TransferRecord record_for(const std::string& site, double start,
                                   double duration, std::uint64_t trace) {
  gridftp::TransferRecord record;
  record.host = site;
  record.source_ip = "140.221.65.69";
  record.file_name = "/data/x";
  record.file_size = kSize;
  record.start_time = start;
  record.end_time = start + duration;
  record.trace_id = trace;
  return record;
}

TEST(QualityTest, TraceJoinClaimsEveryPredictionOfTheTrace) {
  Fixture f;
  f.tracker->record_prediction(prediction_for(500, "lbl", 99.0, "AVG", 5e6));
  f.tracker->record_prediction(prediction_for(500, "lbl", 99.0, "MED", 4e6));
  // Same trace, different site: not claimed by lbl's transfer.
  f.tracker->record_prediction(prediction_for(500, "isi", 99.0, "AVG", 2e6));

  f.tracker->observe_transfer(record_for("lbl", 100.0, 2.0, 500));

  const auto report = f.tracker->report();
  EXPECT_EQ(report.predictions, 3u);
  EXPECT_EQ(report.joins_trace, 1u);  // one joined transfer, not one per match
  EXPECT_EQ(report.joins_fallback, 0u);
  EXPECT_EQ(report.join_misses, 0u);
  ASSERT_EQ(report.cells.size(), 2u);  // AVG + MED on lbl
  for (const auto& cell : report.cells) {
    EXPECT_EQ(cell.site, "lbl");
    EXPECT_EQ(cell.count, 1u);
  }
  EXPECT_DOUBLE_EQ(report.join_rate(), 1.0);
}

TEST(QualityTest, FallbackJoinPicksNearestUntracedPrediction) {
  Fixture f;
  f.tracker->record_prediction(prediction_for(0, "lbl", 100.0, "far", 5e6));
  f.tracker->record_prediction(prediction_for(0, "lbl", 280.0, "near", 5e6));

  f.tracker->observe_transfer(record_for("lbl", 290.0, 2.0, 0));

  const auto report = f.tracker->report();
  EXPECT_EQ(report.joins_fallback, 1u);
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_EQ(report.cells[0].predictor, "near");

  // The claimed prediction is consumed; the stale one still matches a
  // later transfer inside the window.
  f.tracker->observe_transfer(record_for("lbl", 300.0, 2.0, 0));
  EXPECT_EQ(f.tracker->report().joins_fallback, 2u);
}

TEST(QualityTest, NoCandidateInsideWindowCountsAsMiss) {
  QualityConfig config;
  config.fallback_window = 50.0;
  Fixture f(config);
  f.tracker->record_prediction(prediction_for(0, "lbl", 100.0, "AVG", 5e6));

  f.tracker->observe_transfer(record_for("lbl", 200.0, 2.0, 0));   // too far
  f.tracker->observe_transfer(record_for("isi", 110.0, 2.0, 0));   // wrong site
  f.tracker->observe_transfer(record_for("lbl", 110.0, 2.0, 777));  // unknown
  // trace, but falls back and still matches the untraced prediction.

  const auto report = f.tracker->report();
  EXPECT_EQ(report.join_misses, 2u);
  EXPECT_EQ(report.joins_fallback, 1u);
  EXPECT_DOUBLE_EQ(report.join_rate(), 1.0 / 3.0);
}

TEST(QualityTest, FailedAndDegenerateTransfersAreSkippedNotScored) {
  Fixture f;
  f.tracker->record_prediction(prediction_for(9, "lbl", 99.0, "AVG", 5e6));

  auto failed = record_for("lbl", 100.0, 2.0, 9);
  failed.ok = false;
  f.tracker->observe_transfer(failed);
  f.tracker->observe_transfer(record_for("lbl", 100.0, 0.0, 9));  // no duration
  auto empty = record_for("lbl", 100.0, 2.0, 9);
  empty.file_size = 0;
  f.tracker->observe_transfer(empty);

  const auto report = f.tracker->report();
  EXPECT_EQ(report.skipped, 3u);
  EXPECT_EQ(report.joins(), 0u);
  EXPECT_EQ(report.join_misses, 0u);
  EXPECT_TRUE(report.cells.empty());
  // The prediction is still pending, so a later good transfer joins.
  f.tracker->observe_transfer(record_for("lbl", 101.0, 2.0, 9));
  EXPECT_EQ(f.tracker->report().joins_trace, 1u);
}

/// Drives `joins` accurate-then-shifted joins through the tracker: the
/// prediction always says 5 MB/s, the measured bandwidth is 5 MB/s for
/// the first `accurate` transfers and 0.5 MB/s afterwards.
void drive(Fixture& f, int accurate, int total) {
  std::uint64_t trace = 1000;
  for (int i = 0; i < total; ++i) {
    const double start = 100.0 * i;
    const double duration = i < accurate ? 2.0 : 20.0;  // 10x slowdown
    f.tracker->record_prediction(
        prediction_for(++trace, "lbl", start - 1.0, "AVG15/fs", 5e6));
    f.tracker->observe_transfer(record_for("lbl", start, duration, trace));
  }
}

TEST(QualityTest, DriftAlarmRaisedWithin25JoinsOfShift) {
  Fixture f;  // paper-ish defaults: delta 2, lambda 30, min_obs 8
  drive(f, /*accurate=*/10, /*total=*/10);
  EXPECT_FALSE(f.tracker->drifting("lbl", "AVG15/fs"));
  EXPECT_EQ(f.tracker->report().drift_events, 0u);

  // The 900% post-shift error overwhelms lambda immediately: the alarm
  // fires on the very first degraded join — well inside the 25-join
  // acceptance bound.
  drive(f, 0, 1);
  EXPECT_TRUE(f.tracker->drifting("lbl", "AVG15/fs"));
  EXPECT_TRUE(f.tracker->site_drifting("lbl"));
  EXPECT_FALSE(f.tracker->site_drifting("isi"));
  EXPECT_EQ(f.tracker->report().drift_events, 1u);

  const auto report = f.tracker->report();
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_TRUE(report.cells[0].drifting);
  // The ULM self-event carries the alarm's context.
  EXPECT_NE(f.events.to_text().find("EVNT=quality.drift"), std::string::npos);
  EXPECT_NE(f.events.to_text().find("SITE=lbl"), std::string::npos);
}

TEST(QualityTest, DriftCooldownClearsAfterConfiguredJoins) {
  QualityConfig config;
  config.drift_cooldown = 3;
  Fixture f(config);
  drive(f, 10, 11);  // warmup + one degraded join -> alarm
  ASSERT_TRUE(f.tracker->drifting("lbl", "AVG15/fs"));

  drive(f, 0, 2);  // two joins into the cooldown: still demoted
  EXPECT_TRUE(f.tracker->drifting("lbl", "AVG15/fs"));
  drive(f, 0, 1);  // third join retires the cooldown
  EXPECT_FALSE(f.tracker->drifting("lbl", "AVG15/fs"));
  // Only the original alarm fired; the detector restarted clean.
  EXPECT_EQ(f.tracker->report().drift_events, 1u);
}

// The acceptance criterion for the online plane: the rolling error it
// maintains at serving time must equal what the paper's offline
// evaluator computes from the finished log.  Same series, same battery,
// same training prefix -- the tracker's per-predictor mean/count must
// match predict::Evaluator exactly.
TEST(QualityTest, OnlineErrorsMatchOfflineEvaluator) {
  auto store = std::make_shared<history::HistoryStore>();
  Fixture f;

  core::ServiceConfig service_config;
  service_config.training_count = 15;
  core::PredictionService service(store, service_config);
  service.bind_quality(f.tracker.get());

  const history::SeriesKey key{"dpsslx04.lbl.gov", "131.243.2.91",
                               gridftp::Operation::kRead};
  constexpr int kTransfers = 40;
  bool observing = false;
  for (int i = 0; i < kTransfers; ++i) {
    auto record = record_for(key.host, 100.0 * i,
                             1.0 + 0.3 * static_cast<double>((i * 7) % 5), 0);
    record.source_ip = key.remote_ip;
    if (i >= static_cast<int>(service_config.training_count)) {
      if (!observing) {
        // The tracker watches only the scored region: the training
        // prefix predates any served prediction (the evaluator skips it
        // too) and would count as joinless misses.
        store->add_record_observer(
            [&f](const gridftp::TransferRecord& observed) {
              f.tracker->observe_transfer(observed);
            });
        observing = true;
      }
      record.trace_id = TraceContext::mint();
      const ScopedTraceContext scope(record.trace_id, 0);
      // Query at the observation's own completion time -- the instant
      // the evaluator replays -- so windowed predictors see the same
      // history cut.
      (void)service.predict_all(key, record.file_size, record.end_time);
    }
    service.ingest(record);
  }

  const auto offline = service.evaluate(key);
  ASSERT_TRUE(offline.has_value());
  const auto online = f.tracker->report();
  EXPECT_EQ(online.join_misses, 0u);
  EXPECT_EQ(online.joins_trace,
            kTransfers - service_config.training_count);

  std::size_t compared = 0;
  for (const auto& cell : online.cells) {
    const auto index = offline->index_of(cell.predictor);
    ASSERT_TRUE(index.has_value()) << cell.predictor;
    const auto& expected = offline->errors(*index);
    EXPECT_EQ(cell.count, expected.count()) << cell.predictor;
    EXPECT_DOUBLE_EQ(cell.mean_error_pct, expected.mean()) << cell.predictor;
    EXPECT_DOUBLE_EQ(cell.stddev_error_pct, expected.stddev())
        << cell.predictor;
    ++compared;
  }
  // Every predictor that answered online has an offline column; the
  // paper's battery yields plenty of them after 15 training transfers.
  EXPECT_GE(compared, 10u);
}

}  // namespace
}  // namespace wadp::obs
