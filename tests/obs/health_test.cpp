#include "obs/health.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace wadp::obs {
namespace {

/// One registry + recorder + monitor with a private event sink, plus a
/// gauge the rules watch — the common stage for every scenario below.
struct HealthStage {
  Registry registry;
  EventSink events;
  MetricsRecorder recorder;
  HealthMonitor monitor;
  Gauge& signal;
  double now = 0.0;

  HealthStage()
      : recorder([this] {
          RecorderConfig config;
          config.registry = &registry;
          return config;
        }()),
        monitor(recorder, HealthConfig{&registry, &events}),
        signal(registry.gauge("wadp_signal_ratio")) {}

  /// Scrapes `signal` at `value` then evaluates, advancing time by 1 s.
  std::size_t step(double value) {
    signal.set(value);
    now += 1.0;
    recorder.scrape(now);
    return monitor.evaluate(now);
  }
};

SloRule gauge_rule(std::size_t clear_after = 3) {
  SloRule rule;
  rule.name = "test.signal";
  rule.description = "test gauge stays low";
  rule.series = "wadp_signal_ratio";
  rule.direction = SloDirection::kAbove;
  rule.threshold = 5.0;
  rule.fast_window = 2.0;
  rule.slow_window = 10.0;
  rule.min_samples = 2;
  rule.clear_after = clear_after;
  return rule;
}

TEST(HealthTest, FiresOnlyWhenBothWindowsViolate) {
  HealthStage stage;
  stage.monitor.add_rule(gauge_rule());

  // Ten healthy samples fill the slow window before the fault.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(stage.step(0.0), 0u);

  // Two hot samples violate the fast window, but the slow-window mean
  // (2 of 10 samples at 10.0) is still below threshold: no alert yet.
  stage.step(10.0);
  EXPECT_EQ(stage.step(10.0), 0u);
  {
    const auto status = stage.monitor.status();
    ASSERT_EQ(status.size(), 1u);
    EXPECT_FALSE(status[0].firing);
    EXPECT_GT(status[0].fast_value, status[0].rule.threshold);
  }

  // Sustained violation pushes the slow window over too: one fire.
  std::size_t transitions = 0;
  for (int i = 0; i < 10; ++i) transitions += stage.step(10.0);
  EXPECT_EQ(transitions, 1u);
  EXPECT_EQ(stage.monitor.firing_count(), 1u);
}

TEST(HealthTest, ColdRingsAreHealthyNotFiring) {
  HealthStage stage;
  stage.monitor.add_rule(gauge_rule());

  // One sample is below min_samples for both windows: absence of
  // evidence, even though the lone value screams violation.
  EXPECT_EQ(stage.step(100.0), 0u);
  EXPECT_EQ(stage.monitor.firing_count(), 0u);

  // A rule over a series nobody records stays healthy forever.
  SloRule absent = gauge_rule();
  absent.name = "test.absent";
  absent.series = "wadp_never_recorded";
  stage.monitor.add_rule(absent);
  for (int i = 0; i < 20; ++i) stage.step(0.0);
  EXPECT_EQ(stage.monitor.firing_count(), 0u);
}

TEST(HealthTest, HysteresisHoldsTheAlertUntilTheStreakCompletes) {
  HealthStage stage;
  stage.monitor.add_rule(gauge_rule(/*clear_after=*/3));
  for (int i = 0; i < 20; ++i) stage.step(10.0);
  ASSERT_EQ(stage.monitor.firing_count(), 1u);

  // Recovery: both windows drain below threshold, yet the rule keeps
  // firing until clear_after consecutive healthy evaluations pass.
  int steps_to_clear = 0;
  while (stage.monitor.firing_count() > 0) {
    stage.step(0.0);
    ++steps_to_clear;
    ASSERT_LE(steps_to_clear, 40) << "rule never cleared";
  }
  EXPECT_GE(steps_to_clear, 3);

  const auto status = stage.monitor.status();
  EXPECT_FALSE(status[0].firing);
  EXPECT_EQ(status[0].alerts, 1u);  // clearing is not a new alert
}

TEST(HealthTest, RatioWithZeroDenominatorIsNoDataNotOutage) {
  HealthStage stage;
  // Idle-serving shape: zero hits over zero queries must not read as a
  // 0% hit rate.
  stage.registry.counter("wadp_hits_total");
  stage.registry.counter("wadp_queries_total");
  SloRule rule = gauge_rule();
  rule.name = "test.hit_rate";
  rule.direction = SloDirection::kBelow;
  rule.threshold = 0.5;
  rule.series = MetricsRecorder::rate_series("wadp_hits_total");
  rule.denominator = MetricsRecorder::rate_series("wadp_queries_total");
  stage.monitor.add_rule(rule);

  for (int i = 0; i < 20; ++i) EXPECT_EQ(stage.step(0.0), 0u);
  EXPECT_EQ(stage.monitor.firing_count(), 0u);
}

TEST(HealthTest, AlertEmitsUlmEventAndBumpsMetrics) {
  HealthStage stage;
  stage.monitor.add_rule(gauge_rule());

  int alerts_seen = 0;
  std::string alerted_rule;
  stage.monitor.set_on_alert([&](const SloStatus& status, double) {
    ++alerts_seen;
    alerted_rule = status.rule.name;
  });

  for (int i = 0; i < 25; ++i) stage.step(10.0);

  // The callback runs on the fire transition only — not per evaluation.
  EXPECT_EQ(alerts_seen, 1);
  EXPECT_EQ(alerted_rule, "test.signal");
  EXPECT_EQ(stage.registry
                .counter("wadp_health_alerts_total", {{"rule", "test.signal"}})
                .value(),
            1u);
  EXPECT_DOUBLE_EQ(stage.registry.gauge("wadp_health_rules_firing").value(),
                   1.0);

  bool saw_alert_event = false;
  for (const auto& record : stage.events.events()) {
    if (record.get("EVNT") == "health.alert") saw_alert_event = true;
  }
  EXPECT_TRUE(saw_alert_event);
}

TEST(HealthTest, EvaluationsCountRoundsNotRules) {
  HealthStage stage;
  stage.monitor.add_rules({gauge_rule(), [] {
                             SloRule r = gauge_rule();
                             r.name = "test.signal2";
                             return r;
                           }()});
  for (int i = 0; i < 5; ++i) stage.step(0.0);
  EXPECT_EQ(stage.monitor.evaluations(), 5u);
}

TEST(HealthTest, BuiltinCatalogScalesWindowsFromTheScrapeInterval) {
  const double interval = 30.0;
  const auto rules = HealthMonitor::builtin_rules(interval);
  ASSERT_GE(rules.size(), 8u);

  bool saw_hit_rate = false, saw_fsync = false, saw_retry = false;
  for (const auto& rule : rules) {
    EXPECT_FALSE(rule.name.empty());
    EXPECT_FALSE(rule.description.empty());
    EXPECT_FALSE(rule.series.empty());
    EXPECT_DOUBLE_EQ(rule.fast_window, 2.0 * interval);
    EXPECT_DOUBLE_EQ(rule.slow_window, 10.0 * interval);
    if (rule.name == "serving.hit_rate") {
      saw_hit_rate = true;
      EXPECT_EQ(rule.direction, SloDirection::kBelow);
      EXPECT_FALSE(rule.denominator.empty());
    }
    if (rule.name == "wal.fsync_p99") {
      saw_fsync = true;
      EXPECT_EQ(rule.direction, SloDirection::kAbove);
    }
    if (rule.name == "resilience.retry_exhaustion") saw_retry = true;
  }
  EXPECT_TRUE(saw_hit_rate);
  EXPECT_TRUE(saw_fsync);
  EXPECT_TRUE(saw_retry);
}

}  // namespace
}  // namespace wadp::obs
