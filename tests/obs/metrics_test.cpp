#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace wadp::obs {
namespace {

TEST(RegistryTest, SameNameAndLabelsResolveToSameInstrument) {
  Registry registry;
  Counter& a = registry.counter("requests_total", {{"op", "read"}});
  Counter& b = registry.counter("requests_total", {{"op", "read"}});
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(RegistryTest, LabelOrderDoesNotSplitInstruments) {
  Registry registry;
  Counter& a =
      registry.counter("t_total", {{"op", "read"}, {"site", "lbl"}});
  Counter& b =
      registry.counter("t_total", {{"site", "lbl"}, {"op", "read"}});
  EXPECT_EQ(&a, &b);
}

TEST(RegistryTest, DifferentLabelsSplitInstruments) {
  Registry registry;
  Counter& read = registry.counter("t_total", {{"op", "read"}});
  Counter& write = registry.counter("t_total", {{"op", "write"}});
  EXPECT_NE(&read, &write);
  read.inc();
  EXPECT_EQ(write.value(), 0u);
}

TEST(RegistryTest, KindMismatchAborts) {
  Registry registry;
  registry.counter("x_total");
  EXPECT_DEATH(registry.gauge("x_total"), "WADP_CHECK");
}

TEST(RegistryTest, FamiliesAreNameSorted) {
  Registry registry;
  registry.counter("zz_total");
  registry.gauge("aa_depth");
  registry.histogram("mm_seconds");
  const auto families = registry.families();
  ASSERT_EQ(families.size(), 3u);
  EXPECT_EQ(families[0].name, "aa_depth");
  EXPECT_EQ(families[1].name, "mm_seconds");
  EXPECT_EQ(families[2].name, "zz_total");
}

TEST(RegistryTest, HelpKeptFromFirstRegistration) {
  Registry registry;
  registry.counter("x_total", {}, "first help");
  registry.counter("x_total", {}, "");
  const auto families = registry.families();
  ASSERT_EQ(families.size(), 1u);
  EXPECT_EQ(families[0].help, "first help");
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.set(4.0);
  gauge.add(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 6.5);
}

TEST(RegistryConcurrencyTest, ThreadsHammeringOneHistogramReconcile) {
  // The registry's concurrency contract: registration can race with
  // recording, and every sample lands exactly once.
  Registry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&registry, t] {
      // Resolve inside the thread so registration itself races too.
      Histogram& histogram = registry.histogram("latency_seconds");
      Counter& counter = registry.counter("ops_total");
      for (int i = 0; i < kPerThread; ++i) {
        histogram.record(static_cast<double>(t * kPerThread + i + 1));
        counter.inc();
      }
    });
  }
  for (auto& thread : pool) thread.join();

  constexpr std::size_t kTotal =
      static_cast<std::size_t>(kThreads) * kPerThread;
  Histogram& histogram = registry.histogram("latency_seconds");
  EXPECT_EQ(histogram.count(), kTotal);
  EXPECT_DOUBLE_EQ(histogram.min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.max(), static_cast<double>(kTotal));
  // Sum of 1..kTotal is exact in double for these magnitudes.
  EXPECT_DOUBLE_EQ(histogram.sum(),
                   static_cast<double>(kTotal) * (kTotal + 1) / 2.0);
  EXPECT_EQ(registry.counter("ops_total").value(), kTotal);
}

}  // namespace
}  // namespace wadp::obs
