#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace wadp::obs {
namespace {

/// Tracer with an injected deterministic clock: each query advances
/// time by 10 ns, so span geometry is exact.
struct FakeClockTracer {
  std::uint64_t now = 0;
  Tracer tracer{16, [this] { return now += 10; }};
};

TEST(TraceTest, RaiiSpanRecordsOnDestruction) {
  FakeClockTracer fake;
  {
    auto span = fake.tracer.start("connect");
    span.set_attr("HOST", "lbl");
  }
  const auto spans = fake.tracer.finished();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "connect");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[0].start_ns, 10u);
  EXPECT_EQ(spans[0].end_ns, 20u);
  ASSERT_EQ(spans[0].attrs.size(), 1u);
  EXPECT_EQ(spans[0].attrs[0].first, "HOST");
  EXPECT_EQ(spans[0].attrs[0].second, "lbl");
}

TEST(TraceTest, EndIsIdempotent) {
  FakeClockTracer fake;
  auto span = fake.tracer.start("x");
  span.end();
  span.end();
  EXPECT_FALSE(span.active());
  EXPECT_EQ(fake.tracer.finished().size(), 1u);
}

TEST(TraceTest, ChildLinksToParentAndFinishesFirst) {
  FakeClockTracer fake;
  auto parent = fake.tracer.start("transfer");
  const SpanId parent_id = parent.id();
  {
    auto child = parent.child("stream");
    EXPECT_NE(child.id(), parent_id);
  }
  parent.end();

  const auto spans = fake.tracer.finished();
  ASSERT_EQ(spans.size(), 2u);
  // Children finish before parents, so they land first in the ring.
  EXPECT_EQ(spans[0].name, "stream");
  EXPECT_EQ(spans[0].parent, parent_id);
  EXPECT_EQ(spans[1].name, "transfer");
  // Parent's window contains the child's.
  EXPECT_LE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_GE(spans[1].end_ns, spans[0].end_ns);
}

TEST(TraceTest, ExplicitRecordKeepsCallerInstants) {
  Tracer tracer(8);
  const SpanId root = tracer.record("transfer", 0, sim_ns(100.0),
                                    sim_ns(110.5), {{"OP", "read"}});
  tracer.record("stream", root, sim_ns(101.0), sim_ns(110.0));
  const auto spans = tracer.finished();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].start_ns, 100'000'000'000ull);
  EXPECT_EQ(spans[0].duration_ns(), 10'500'000'000ull);
  EXPECT_EQ(spans[1].parent, root);
}

TEST(TraceTest, MoveTransfersOwnership) {
  FakeClockTracer fake;
  auto a = fake.tracer.start("x");
  Span b = std::move(a);
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): contract
  EXPECT_TRUE(b.active());
  b.end();
  EXPECT_EQ(fake.tracer.finished().size(), 1u);
}

TEST(TraceTest, RingEvictsOldestButCountsAll) {
  Tracer tracer(4);
  for (int i = 0; i < 10; ++i) {
    tracer.record("s" + std::to_string(i), 0, 0, 1);
  }
  const auto spans = tracer.finished();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().name, "s6");
  EXPECT_EQ(spans.back().name, "s9");
  EXPECT_EQ(tracer.recorded_total(), 10u);
}

TEST(TraceTest, SimNsConversion) {
  EXPECT_EQ(sim_ns(0.0), 0u);
  EXPECT_EQ(sim_ns(-5.0), 0u);
  EXPECT_EQ(sim_ns(1.5), 1'500'000'000ull);
}

}  // namespace
}  // namespace wadp::obs
