#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace wadp::obs {
namespace {

/// Exact quantile by sort, nearest-rank with interpolation disabled —
/// the histogram only promises to land within one bucket of this.
double exact_quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

TEST(HistogramTest, EmptyIsAllZero) {
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 0.0);
}

TEST(HistogramTest, MomentsAreExact) {
  // min/max/mean come from RunningStats, not buckets, so they are exact
  // even though quantiles are approximate.
  Histogram histogram;
  for (const double v : {3.0, 1.0, 4.0, 1.5, 9.25}) histogram.record(v);
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 9.25);
  EXPECT_DOUBLE_EQ(histogram.sum(), 18.75);
  EXPECT_DOUBLE_EQ(histogram.mean(), 3.75);
}

TEST(HistogramTest, BucketIndexIsMonotone) {
  std::size_t last = 0;
  for (double v = 1e-6; v < 1e9; v *= 1.37) {
    const std::size_t index = Histogram::bucket_index(v);
    EXPECT_GE(index, last) << "at value " << v;
    last = index;
  }
}

TEST(HistogramTest, ValueFallsWithinItsBucketBounds) {
  for (const double v : {0.001, 0.7, 1.0, 1.5, 17.0, 1234.5, 9.9e8}) {
    const std::size_t index = Histogram::bucket_index(v);
    EXPECT_LE(v, Histogram::bucket_upper_bound(index)) << "at value " << v;
    if (index > 0) {
      // Buckets are lower-inclusive: a value exactly on a boundary
      // belongs to the bucket above it.
      EXPECT_GE(v, Histogram::bucket_upper_bound(index - 1))
          << "at value " << v;
    }
  }
}

TEST(HistogramTest, NonPositiveSamplesUnderflowButFeedMoments) {
  Histogram histogram;
  histogram.record(-2.0);
  histogram.record(0.0);
  histogram.record(8.0);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_DOUBLE_EQ(histogram.min(), -2.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 8.0);
  // Two of three samples sit in the underflow bucket -> p50 is 0.
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantilesClampToObservedRange) {
  Histogram histogram;
  for (const double v : {5.0, 6.0, 7.0}) histogram.record(v);
  EXPECT_GE(histogram.quantile(0.0), 5.0);
  EXPECT_LE(histogram.quantile(1.0), 7.0);
}

TEST(HistogramAccuracyTest, QuantilesWithinLogLinearBoundVsExactSort) {
  // 16 sub-buckets per octave bound the relative width of any bucket by
  // 1/16 of its octave => <= ~6-7% relative error on any quantile.
  constexpr double kRelativeBound = 0.07;
  // Deterministic LCG: a spread of magnitudes across several octaves.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 33) / 4294967296.0;  // [0,1)
  };
  Histogram histogram;
  std::vector<double> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double v = std::exp(next() * 8.0 - 2.0);  // ~[0.14, 400)
    values.push_back(v);
    histogram.record(v);
  }
  for (const double q : {0.5, 0.9, 0.99}) {
    const double exact = exact_quantile(values, q);
    const double approx = histogram.quantile(q);
    EXPECT_NEAR(approx, exact, kRelativeBound * exact) << "at q=" << q;
  }
}

}  // namespace
}  // namespace wadp::obs
