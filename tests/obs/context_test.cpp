#include "obs/context.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>

#include "obs/trace.hpp"

namespace wadp::obs {
namespace {

TEST(ContextTest, InactiveByDefault) {
  const auto ctx = TraceContext::current();
  EXPECT_FALSE(ctx.active());
  EXPECT_EQ(ctx.trace_id, 0u);
  EXPECT_EQ(ctx.parent, 0u);
}

TEST(ContextTest, MintIsMonotonic) {
  const auto a = TraceContext::mint();
  const auto b = TraceContext::mint();
  EXPECT_GT(a, 0u);
  EXPECT_EQ(b, a + 1);
}

TEST(ContextTest, ScopedInstallAndRestore) {
  {
    const ScopedTraceContext outer(7, 100);
    EXPECT_EQ(TraceContext::current().trace_id, 7u);
    EXPECT_EQ(TraceContext::current().parent, 100u);
    {
      const ScopedTraceContext inner(7, 200);
      EXPECT_EQ(TraceContext::current().parent, 200u);
    }
    // Inner scope restored the outer context, not the empty one.
    EXPECT_EQ(TraceContext::current().trace_id, 7u);
    EXPECT_EQ(TraceContext::current().parent, 100u);
  }
  EXPECT_FALSE(TraceContext::current().active());
}

TEST(ContextTest, ConditionalScopeViaOptional) {
  // The pattern call sites use when the context is only sometimes
  // re-installed (scheduled callbacks): emplace into an optional.
  std::optional<ScopedTraceContext> scope;
  EXPECT_FALSE(TraceContext::current().active());
  scope.emplace(std::uint64_t{9}, SpanId{1});
  EXPECT_EQ(TraceContext::current().trace_id, 9u);
  scope.reset();
  EXPECT_FALSE(TraceContext::current().active());
}

TEST(ContextTest, TracerStartAdoptsAmbientContext) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  const ScopedTraceContext scope(11, 42);
  { auto span = tracer.start("work"); }
  const auto spans = tracer.finished();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_id, 11u);
  EXPECT_EQ(spans[0].parent, 42u);
  tracer.clear();
}

TEST(ContextTest, TracerStartKeepsExplicitParent) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  const ScopedTraceContext scope(11, 42);
  { auto span = tracer.start("work", 99); }
  const auto spans = tracer.finished();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_id, 11u);  // trace id adopted regardless
  EXPECT_EQ(spans[0].parent, 99u);    // explicit parent wins
  tracer.clear();
}

TEST(ContextTest, SimSpanScopeIsNoOpWithoutTrace) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  {
    SimSpanScope scope("mds.search", 5.0);
    EXPECT_FALSE(scope.active());
    EXPECT_EQ(scope.id(), 0u);
    scope.set_attr("HOST", "lbl");  // ignored, must not crash
  }
  EXPECT_TRUE(tracer.finished().empty());
}

TEST(ContextTest, SimSpanScopeRecordsInstantUnderAmbientParent) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  const std::uint64_t trace = TraceContext::mint();
  {
    const ScopedTraceContext root(trace, 0);
    SimSpanScope outer("broker.select", 12.5, {{"POLICY", "predicted"}});
    ASSERT_TRUE(outer.active());
    // Nested scope parents under the outer one via the thread-local.
    { SimSpanScope inner("mds.search", 12.5); }
    outer.set_attr("CHOSEN", "lbl");
  }
  const auto spans = tracer.finished();
  ASSERT_EQ(spans.size(), 2u);
  // Inner finishes (records) first.
  EXPECT_EQ(spans[0].name, "mds.search");
  EXPECT_EQ(spans[1].name, "broker.select");
  EXPECT_EQ(spans[0].trace_id, trace);
  EXPECT_EQ(spans[1].trace_id, trace);
  EXPECT_EQ(spans[0].parent, spans[1].id);
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[1].start_ns, sim_ns(12.5));
  EXPECT_EQ(spans[1].end_ns, sim_ns(12.5));
  ASSERT_EQ(spans[1].attrs.size(), 2u);
  EXPECT_EQ(spans[1].attrs[1].first, "CHOSEN");
  tracer.clear();
}

}  // namespace
}  // namespace wadp::obs
