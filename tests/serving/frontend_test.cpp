// ServingFrontend: agreement with ReplicaBroker::select, epoch
// invalidation end-to-end, shed/reject determinism, and a
// multi-threaded serve-while-ingest stress (TSan filter: "Thread").
#include "serving/frontend.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "history/store.hpp"
#include "mds/giis.hpp"
#include "replica/broker.hpp"
#include "replica/catalog.hpp"

namespace wadp::serving {
namespace {

constexpr const char* kHostA = "dpsslx04.lbl.gov";
constexpr const char* kHostB = "jet.isi.edu";
constexpr const char* kClient = "140.221.65.69";
constexpr Bytes kSize = 10 * kMB;
constexpr SimTime kNow = 3600.0;

history::SeriesKey series_for(const char* host) {
  return {.host = host, .remote_ip = kClient,
          .op = gridftp::Operation::kRead};
}

/// A minimal serving stack: two replicas of one logical file, history
/// seeded so kHostB ranks higher, an empty GIIS (fills flow through the
/// broker's history fallback), and a frontend with the given admission.
struct Stack {
  explicit Stack(AdmissionConfig admission = {},
                 double value_a = 1e6, double value_b = 2e6)
      : store(std::make_shared<history::HistoryStore>(
            history::StoreConfig{.instrumented = false})),
        giis("top"),
        broker(catalog_init(), giis,
               replica::SelectionPolicy::kPredictedBest, /*seed=*/1) {
    for (int i = 0; i < 20; ++i) {
      store->append(series_for(kHostA),
                    predict::Observation{.time = 60.0 * i,
                                         .value = value_a,
                                         .file_size = kSize});
      store->append(series_for(kHostB),
                    predict::Observation{.time = 60.0 * i,
                                         .value = value_b,
                                         .file_size = kSize});
    }
    broker.bind_history(store.get());
    ServingConfig config;
    config.admission = admission;
    frontend = std::make_unique<ServingFrontend>(broker, catalog, store,
                                                 config);
  }

  const replica::ReplicaCatalog& catalog_init() {
    catalog.add_replica("lfn://demo", {.site = "lbl",
                                       .server_host = kHostA,
                                       .path = "/data/demo"});
    catalog.add_replica("lfn://demo", {.site = "isi",
                                       .server_host = kHostB,
                                       .path = "/data/demo"});
    return catalog;
  }

  Query query() const {
    return Query{.logical_name = "lfn://demo",
                 .client_ip = kClient,
                 .size = kSize};
  }

  std::shared_ptr<history::HistoryStore> store;
  replica::ReplicaCatalog catalog;
  mds::Giis giis;
  replica::ReplicaBroker broker;
  std::unique_ptr<ServingFrontend> frontend;
};

TEST(ServingFrontendTest, AgreesWithBrokerSelect) {
  Stack stack;
  const Answer answer = stack.frontend->select_one(stack.query(), kNow);
  ASSERT_NE(answer.replica, nullptr);
  EXPECT_TRUE(answer.informed);

  const auto selection =
      stack.broker.select("lfn://demo", kClient, kSize, kNow);
  ASSERT_TRUE(selection.has_value());
  EXPECT_EQ(answer.replica->server_host, selection->replica.server_host);
  ASSERT_TRUE(selection->predicted_bandwidth.has_value());
  ASSERT_TRUE(answer.predicted_bandwidth.has_value());
  // Same code path computed both (broker::predict_candidate), so the
  // doubles are bit-identical, not merely close.
  EXPECT_EQ(*answer.predicted_bandwidth, *selection->predicted_bandwidth);
  EXPECT_EQ(answer.replica->server_host, kHostB);  // higher seeded mean
}

TEST(ServingFrontendTest, SteadyStateServesFromCache) {
  Stack stack;
  const Answer first = stack.frontend->select_one(stack.query(), kNow);
  EXPECT_EQ(first.path, AnswerPath::kFilled);
  for (int i = 0; i < 5; ++i) {
    const Answer again = stack.frontend->select_one(stack.query(), kNow);
    EXPECT_EQ(again.path, AnswerPath::kCached);
    EXPECT_EQ(again.predicted_bandwidth, first.predicted_bandwidth);
    EXPECT_EQ(again.replica, first.replica);
  }
}

TEST(ServingFrontendTest, WatermarkBumpInvalidatesAndRefills) {
  Stack stack;
  const Answer before = stack.frontend->select_one(stack.query(), kNow);
  EXPECT_EQ(before.replica->server_host, kHostB);
  ASSERT_EQ(stack.frontend->select_one(stack.query(), kNow).path,
            AnswerPath::kCached);

  // One enormous observation flips the ranking to kHostA; the append
  // bumps the series watermark, so the cached entry must not be served
  // as fresh.
  stack.store->append(series_for(kHostA),
                      predict::Observation{.time = kNow - 1.0,
                                           .value = 1e9,
                                           .file_size = kSize});
  const Answer after = stack.frontend->select_one(stack.query(), kNow);
  EXPECT_EQ(after.path, AnswerPath::kFilled);  // stale never served fresh
  EXPECT_EQ(after.replica->server_host, kHostA);

  const auto selection =
      stack.broker.select("lfn://demo", kClient, kSize, kNow);
  ASSERT_TRUE(selection.has_value());
  EXPECT_EQ(after.replica->server_host, selection->replica.server_host);
  EXPECT_EQ(*after.predicted_bandwidth, *selection->predicted_bandwidth);
}

TEST(ServingFrontendTest, ShedServesStaleAnswersWithoutRecompute) {
  AdmissionConfig admission;
  admission.admit_rate = 1000.0;
  admission.admit_burst = 10.0;
  admission.shed_rate_multiple = 2.0;
  Stack stack(admission);

  // Warm the cache with the first (admitted) batch, draining the admit
  // bucket.
  std::vector<Query> warm(10, stack.query());
  const auto warmed = stack.frontend->select_many(warm, kNow);
  ASSERT_EQ(warmed.front().path, AnswerPath::kFilled);
  const double warm_value = *warmed.front().predicted_bandwidth;

  // Advance the watermark: fresh answers would now differ...
  stack.store->append(series_for(kHostA),
                      predict::Observation{.time = kNow - 1.0,
                                           .value = 1e9,
                                           .file_size = kSize});
  // ...but this batch arrives with the admit bucket empty (same virtual
  // instant), so it is shed to the stale fast path: old value, old
  // ranking, no recompute.
  const auto shed = stack.frontend->select_many(warm, kNow);
  for (const Answer& answer : shed) {
    EXPECT_EQ(answer.path, AnswerPath::kShed);
    EXPECT_TRUE(answer.informed);
    EXPECT_EQ(*answer.predicted_bandwidth, warm_value);
    EXPECT_EQ(answer.replica->server_host, kHostB);
  }
}

TEST(ServingFrontendTest, RejectsOnlyPastTheShedTier) {
  AdmissionConfig admission;
  admission.admit_rate = 1000.0;
  admission.admit_burst = 10.0;
  admission.shed_rate_multiple = 2.0;  // shed bucket starts at 20
  Stack stack(admission);

  std::vector<Query> burst(40, stack.query());
  const auto answers = stack.frontend->select_many(burst, kNow);
  std::size_t admitted = 0, shed = 0, rejected = 0;
  for (const Answer& answer : answers) {
    switch (answer.path) {
      case AnswerPath::kCached:
      case AnswerPath::kFilled:
        ++admitted;
        break;
      case AnswerPath::kShed:
        ++shed;
        break;
      case AnswerPath::kRejected:
        ++rejected;
        EXPECT_EQ(answer.replica, nullptr);
        break;
    }
  }
  EXPECT_EQ(admitted, 10u);
  EXPECT_EQ(shed, 20u);
  EXPECT_EQ(rejected, 10u);
}

TEST(ServingFrontendTest, ShedSplitIsDeterministicUnderSeededBurst) {
  // Two identical stacks fed the identical burst schedule must produce
  // the identical per-query path sequence — admission runs on virtual
  // time, so there is nothing wall-clock-dependent to drift.
  AdmissionConfig admission;
  admission.admit_rate = 500.0;
  admission.admit_burst = 16.0;
  admission.shed_rate_multiple = 4.0;

  const auto run = [&](Stack& stack) {
    std::vector<AnswerPath> paths;
    double now = kNow;
    for (int round = 0; round < 12; ++round) {
      std::vector<Query> batch(17 + (round % 3) * 7, stack.query());
      for (const Answer& answer : stack.frontend->select_many(batch, now)) {
        paths.push_back(answer.path);
      }
      if (round == 5) {
        stack.store->append(series_for(kHostB),
                            predict::Observation{.time = now,
                                                 .value = 3e6,
                                                 .file_size = kSize});
      }
      now += 0.01 * (1 + round % 4);
    }
    return paths;
  };

  Stack first(admission);
  Stack second(admission);
  EXPECT_EQ(run(first), run(second));
}

TEST(ServingFrontendTest, UnknownLogicalNameAnswersUninformed) {
  Stack stack;
  const Answer answer = stack.frontend->select_one(
      Query{.logical_name = "lfn://nope", .client_ip = kClient,
            .size = kSize},
      kNow);
  EXPECT_EQ(answer.replica, nullptr);
  EXPECT_FALSE(answer.informed);
}

TEST(ServingThreadStressTest, ConcurrentServeAndIngest) {
  // 8 serving threads over the lock-free read path while an ingest
  // thread keeps bumping both series' watermarks: exercises cache
  // seqlock reads vs fills, the watermark cells, and the plan/intern
  // maps under contention.  Run under TSan in CI.
  constexpr int kThreads = 8;
  constexpr int kBatches = 200;
  constexpr std::size_t kBatch = 16;

  Stack stack;  // admission disabled: every query takes the full path
  std::atomic<bool> stop{false};
  std::thread ingester([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const char* host = (i % 2 == 0) ? kHostA : kHostB;
      stack.store->append(
          series_for(host),
          predict::Observation{.time = kNow + i,
                               .value = 1e6 + 1e4 * (i % 100),
                               .file_size = kSize});
      ++i;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> servers;
  std::atomic<std::size_t> informed{0};
  for (int t = 0; t < kThreads; ++t) {
    servers.emplace_back([&] {
      std::vector<Query> batch(kBatch, stack.query());
      for (int b = 0; b < kBatches; ++b) {
        const auto answers =
            stack.frontend->select_many(batch, kNow + 1e6 + b);
        ASSERT_EQ(answers.size(), kBatch);
        for (const Answer& answer : answers) {
          ASSERT_NE(answer.replica, nullptr);
          if (answer.informed) {
            ASSERT_TRUE(answer.predicted_bandwidth.has_value());
            ASSERT_GT(*answer.predicted_bandwidth, 0.0);
          }
          informed.fetch_add(answer.informed ? 1 : 0,
                             std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : servers) thread.join();
  stop.store(true);
  ingester.join();
  // The series always have >= 20 observations, so every answer should
  // have been informed.
  EXPECT_EQ(informed.load(), static_cast<std::size_t>(kThreads) * kBatches * kBatch);
}

}  // namespace
}  // namespace wadp::serving
