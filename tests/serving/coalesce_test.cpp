// Single-flight coalescing: role assignment, bounded table, and the
// exactly-once fill contract under an 8-key x 8-thread stress (the
// latter runs in the TSan CI filter — names contain "Thread").
#include "serving/coalesce.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>
#include <vector>

#include "serving/cache.hpp"

namespace wadp::serving {
namespace {

TEST(SingleFlightTest, FirstCallerLeadsAndDoneRetiresTheFlight) {
  SingleFlight flight;
  const auto ticket = flight.join(pack_key(1, 0, 0));
  EXPECT_EQ(ticket.role, SingleFlight::Role::kLeader);
  EXPECT_EQ(flight.in_flight(), 1u);
  flight.done(pack_key(1, 0, 0), 42.0);
  EXPECT_EQ(flight.in_flight(), 0u);
  // The flight is gone: the next caller for the same key leads afresh
  // (it must re-check the cache, not inherit the old answer).
  EXPECT_EQ(flight.join(pack_key(1, 0, 0)).role, SingleFlight::Role::kLeader);
  flight.done(pack_key(1, 0, 0), 43.0);
}

TEST(SingleFlightTest, TableBoundOverflowsNewKeys) {
  SingleFlight flight(/*max_in_flight=*/2);
  ASSERT_EQ(flight.join(pack_key(1, 0, 0)).role, SingleFlight::Role::kLeader);
  ASSERT_EQ(flight.join(pack_key(2, 0, 0)).role, SingleFlight::Role::kLeader);
  // Third distinct key: table full, caller computes privately.
  EXPECT_EQ(flight.join(pack_key(3, 0, 0)).role, SingleFlight::Role::kOverflow);
  flight.done(pack_key(1, 0, 0), 1.0);
  // A slot freed up; new keys lead again.
  EXPECT_EQ(flight.join(pack_key(4, 0, 0)).role, SingleFlight::Role::kLeader);
  flight.done(pack_key(2, 0, 0), 2.0);
  flight.done(pack_key(4, 0, 0), 4.0);
  EXPECT_EQ(flight.in_flight(), 0u);
}

TEST(SingleFlightTest, FollowersReceiveTheLeadersAnswer) {
  SingleFlight flight;
  PredictionCache cache;
  const CacheKey key = pack_key(5, 0, 1);
  std::atomic<int> computes{0};

  std::atomic<bool> leader_in{false};
  std::thread leader([&] {
    auto [value, ran] = coalesced_fill(cache, flight, key, 1,
                                       [&]() -> std::optional<double> {
                                         leader_in.store(true);
                                         ++computes;
                                         // Hold the flight open long
                                         // enough for followers to join.
                                         std::this_thread::sleep_for(
                                             std::chrono::milliseconds(50));
                                         return 77.0;
                                       });
    EXPECT_TRUE(ran);
    EXPECT_EQ(value, 77.0);
  });
  while (!leader_in.load()) std::this_thread::yield();

  std::vector<std::thread> followers;
  for (int i = 0; i < 4; ++i) {
    followers.emplace_back([&] {
      auto [value, ran] = coalesced_fill(cache, flight, key, 1,
                                         [&]() -> std::optional<double> {
                                           ++computes;
                                           return -1.0;  // must never run
                                         });
      EXPECT_FALSE(ran);
      EXPECT_EQ(value, 77.0);
    });
  }
  leader.join();
  for (auto& t : followers) t.join();
  EXPECT_EQ(computes.load(), 1);
}

TEST(SingleFlightThreadStressTest, ExactlyOneFillPerKeyPerGeneration) {
  // 8 threads race 8 keys across 4 generations.  Every thread attempts
  // every (key, generation) once; the cache + single-flight pair must
  // let exactly one compute through per (key, generation).
  constexpr int kThreads = 8;
  constexpr int kKeys = 8;
  constexpr int kGenerations = 4;

  PredictionCache cache;  // ample: no probe overflow in this test
  SingleFlight flight;
  std::array<std::array<std::atomic<int>, kKeys>, kGenerations> computes{};

  for (int gen = 0; gen < kGenerations; ++gen) {
    std::atomic<int> ready{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, gen, t] {
        ++ready;
        while (ready.load() < kThreads) std::this_thread::yield();
        for (int k = 0; k < kKeys; ++k) {
          // Stagger key order per thread so every key sees contention.
          const int key_index = (k + t) % kKeys;
          const CacheKey key =
              pack_key(static_cast<std::uint32_t>(key_index + 1), 0, 0);
          const auto watermark = static_cast<std::uint64_t>(gen);
          const double expected = 1000.0 * (key_index + 1) + gen;
          auto [value, ran] = coalesced_fill(
              cache, flight, key, watermark, [&]() -> std::optional<double> {
                computes[gen][key_index]++;
                return expected;
              });
          // Whether leader, follower, or cache hit: the answer is this
          // generation's (monotone freshness allows a *newer* value,
          // but no generation beyond `gen` exists yet).
          ASSERT_TRUE(value.has_value());
          EXPECT_EQ(*value, expected);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    for (int k = 0; k < kKeys; ++k) {
      EXPECT_EQ(computes[gen][k].load(), 1)
          << "generation " << gen << " key " << k;
    }
  }
}

}  // namespace
}  // namespace wadp::serving
