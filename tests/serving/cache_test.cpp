// Epoch-keyed prediction cache: keying, watermark validation, the
// no-eviction overflow contract, and the stale-after-ingest invariant
// against a real HistoryStore.
#include "serving/cache.hpp"

#include <gtest/gtest.h>

#include "history/store.hpp"

namespace wadp::serving {
namespace {

using Outcome = PredictionCache::Outcome;

TEST(PredictionCacheTest, PackKeyLayoutIsDisjoint) {
  const CacheKey key = pack_key(0x12345678u, 0xabcdu, 0x9876u);
  EXPECT_EQ(key >> 32, 0x12345678u);
  EXPECT_EQ((key >> 16) & 0xffff, 0xabcdu);
  EXPECT_EQ(key & 0xffff, 0x9876u);
  // Series ids are 1-based precisely so this cannot collide with the
  // empty-slot sentinel.
  EXPECT_NE(pack_key(1, 0, 0), 0u);
}

TEST(PredictionCacheTest, MissThenStoreThenHit) {
  PredictionCache cache;
  const CacheKey key = pack_key(1, 0, 2);
  EXPECT_EQ(cache.lookup(key, 5).outcome, Outcome::kMiss);
  EXPECT_TRUE(cache.store(key, 5, 123.5));
  const auto hit = cache.lookup(key, 5);
  EXPECT_EQ(hit.outcome, Outcome::kHit);
  EXPECT_EQ(hit.value, 123.5);
  EXPECT_EQ(hit.computed_at, 5u);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(PredictionCacheTest, WatermarkZeroEntriesAreValid) {
  // Epoch 0 (series exists but has no observations) is a legal stamp:
  // "no data → no prediction" is itself cacheable.
  PredictionCache cache;
  const CacheKey key = pack_key(1, 0, 0);
  EXPECT_TRUE(cache.store(key, 0, std::nullopt));
  const auto hit = cache.lookup(key, 0);
  EXPECT_EQ(hit.outcome, Outcome::kHit);
  EXPECT_EQ(hit.value, std::nullopt);
}

TEST(PredictionCacheTest, NulloptAnswersAreCachedDistinctFromMiss) {
  PredictionCache cache;
  const CacheKey key = pack_key(2, 1, 0);
  EXPECT_TRUE(cache.store(key, 3, std::nullopt));
  const auto hit = cache.lookup(key, 3);
  EXPECT_EQ(hit.outcome, Outcome::kHit);
  EXPECT_FALSE(hit.value.has_value());
}

TEST(PredictionCacheTest, AdvancedWatermarkTurnsHitIntoStale) {
  PredictionCache cache;
  const CacheKey key = pack_key(7, 0, 1);
  ASSERT_TRUE(cache.store(key, 4, 80.0));
  EXPECT_EQ(cache.lookup(key, 4).outcome, Outcome::kHit);
  const auto stale = cache.lookup(key, 5);
  EXPECT_EQ(stale.outcome, Outcome::kStale);
  EXPECT_EQ(stale.value, 80.0);  // shed fast path serves exactly this
  EXPECT_EQ(stale.computed_at, 4u);
  // A refill at the new epoch restores hits.
  ASSERT_TRUE(cache.store(key, 5, 90.0));
  const auto fresh = cache.lookup(key, 5);
  EXPECT_EQ(fresh.outcome, Outcome::kHit);
  EXPECT_EQ(fresh.value, 90.0);
}

TEST(PredictionCacheTest, DelayedOlderFillNeverOverwritesNewer) {
  PredictionCache cache;
  const CacheKey key = pack_key(9, 0, 0);
  ASSERT_TRUE(cache.store(key, 8, 200.0));
  // A laggard writer finishing a fill computed at epoch 6 must not
  // publish backwards — and must be told its publish was suppressed.
  EXPECT_FALSE(cache.store(key, 6, 100.0));
  const auto hit = cache.lookup(key, 8);
  EXPECT_EQ(hit.outcome, Outcome::kHit);
  EXPECT_EQ(hit.value, 200.0);
}

TEST(PredictionCacheTest, ProbeOverflowBypassesInsteadOfEvicting) {
  // One shard of 8 slots, probe window 4: the 5th key hashing anywhere
  // is fine, but once 8 distinct keys land the table is full and new
  // stores must report bypass while old keys stay intact.
  PredictionCache cache(
      CacheConfig{.capacity = 8, .shard_count = 1, .probe_limit = 8});
  std::vector<CacheKey> stored;
  std::size_t bypassed = 0;
  for (std::uint32_t i = 1; i <= 64 && bypassed == 0; ++i) {
    const CacheKey key = pack_key(i, 0, 0);
    if (cache.store(key, 1, static_cast<double>(i))) {
      stored.push_back(key);
    } else {
      ++bypassed;
    }
  }
  ASSERT_EQ(bypassed, 1u);  // table filled, never evicted
  EXPECT_LE(stored.size(), 8u);
  for (std::size_t i = 0; i < stored.size(); ++i) {
    const auto hit = cache.lookup(stored[i], 1);
    EXPECT_EQ(hit.outcome, Outcome::kHit) << "key " << stored[i];
  }
}

TEST(PredictionCacheTest, StaleNeverServedAsHitAfterStoreIngest) {
  // The end-to-end invalidation contract against a real store: fill at
  // the current watermark, ingest, and the very next validated read
  // must not be a hit.
  history::HistoryStore store(
      history::StoreConfig{.instrumented = false});
  const history::SeriesKey series{.host = "dpsslx04.lbl.gov",
                                  .remote_ip = "140.221.65.69",
                                  .op = gridftp::Operation::kRead};
  const auto cell = store.watermark(series);

  PredictionCache cache;
  const CacheKey key = pack_key(1, 0, 2);
  std::uint64_t wm = cell->load(std::memory_order_acquire);
  EXPECT_EQ(wm, 0u);
  ASSERT_TRUE(cache.store(key, wm, 55.0));
  EXPECT_EQ(cache.lookup(key, cell->load(std::memory_order_acquire)).outcome,
            Outcome::kHit);

  for (int i = 0; i < 3; ++i) {
    store.append(series, predict::Observation{.time = 10.0 * (i + 1),
                                              .value = 1e6,
                                              .file_size = 10 * kMB});
    wm = cell->load(std::memory_order_acquire);
    EXPECT_EQ(wm, static_cast<std::uint64_t>(i + 1));
    const auto after = cache.lookup(key, wm);
    EXPECT_NE(after.outcome, Outcome::kHit)
        << "stale entry served as fresh after ingest " << i;
    // Refill at the new watermark; valid until the next append.
    ASSERT_TRUE(cache.store(key, wm, 55.0 + i));
    EXPECT_EQ(cache.lookup(key, wm).outcome, Outcome::kHit);
  }
}

}  // namespace
}  // namespace wadp::serving
