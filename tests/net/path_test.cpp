#include "net/path.hpp"

#include <gtest/gtest.h>

namespace wadp::net {
namespace {

PathParams flat(Bandwidth bottleneck, double base_load) {
  PathParams p;
  p.bottleneck = bottleneck;
  p.load.base = base_load;
  p.load.diurnal_amplitude = 0.0;
  p.load.ar_sigma = 0.0;
  p.load.episode_rate_per_hour = 0.0;
  return p;
}

TEST(PathModelTest, CapacityIsBottleneckMinusLoad) {
  PathModel path("a", "b", flat(10'000'000.0, 0.3), 1, 0.0);
  EXPECT_NEAR(path.capacity_at(0.0), 7'000'000.0, 1.0);
}

TEST(PathModelTest, NamesAndAccessors) {
  PathModel path("lbl", "anl", flat(12'500'000.0, 0.0), 1, 0.0);
  EXPECT_EQ(path.source_site(), "lbl");
  EXPECT_EQ(path.sink_site(), "anl");
  EXPECT_EQ(path.resource_name(), "path:lbl->anl");
  EXPECT_DOUBLE_EQ(path.bottleneck(), 12'500'000.0);
}

TEST(PathModelTest, NextChangeFollowsLoadGrid) {
  PathModel path("a", "b", flat(1e7, 0.1), 1, 1000.0);
  EXPECT_DOUBLE_EQ(path.next_change_after(1000.0), 1060.0);
}

TEST(TopologyTest, FindReturnsRegisteredPath) {
  Topology topo;
  topo.add_path("lbl", "anl", flat(1e7, 0.0), 1, 0.0);
  ASSERT_NE(topo.find("lbl", "anl"), nullptr);
  EXPECT_EQ(topo.find("anl", "lbl"), nullptr);  // directed
  EXPECT_EQ(topo.find("isi", "anl"), nullptr);
}

TEST(TopologyTest, BothDirectionsAreIndependentPaths) {
  Topology topo;
  auto& fwd = topo.add_path("a", "b", flat(1e7, 0.0), 1, 0.0);
  auto& rev = topo.add_path("b", "a", flat(2e7, 0.0), 2, 0.0);
  EXPECT_NE(&fwd, &rev);
  EXPECT_DOUBLE_EQ(topo.find("a", "b")->bottleneck(), 1e7);
  EXPECT_DOUBLE_EQ(topo.find("b", "a")->bottleneck(), 2e7);
}

TEST(TopologyTest, PathsListsAll) {
  Topology topo;
  topo.add_path("a", "b", flat(1e7, 0.0), 1, 0.0);
  topo.add_path("b", "c", flat(1e7, 0.0), 2, 0.0);
  EXPECT_EQ(topo.paths().size(), 2u);
  EXPECT_EQ(topo.size(), 2u);
}

TEST(TopologyTest, ConstFindWorks) {
  Topology topo;
  topo.add_path("a", "b", flat(1e7, 0.0), 1, 0.0);
  const Topology& ctopo = topo;
  EXPECT_NE(ctopo.find("a", "b"), nullptr);
}

TEST(TopologyDeathTest, DuplicatePathAborts) {
  Topology topo;
  topo.add_path("a", "b", flat(1e7, 0.0), 1, 0.0);
  EXPECT_DEATH(topo.add_path("a", "b", flat(1e7, 0.0), 2, 0.0),
               "duplicate path");
}

TEST(TopologyDeathTest, PipeInSiteNameAborts) {
  Topology topo;
  EXPECT_DEATH(topo.add_path("a|x", "b", flat(1e7, 0.0), 1, 0.0),
               "site names");
}

}  // namespace
}  // namespace wadp::net
