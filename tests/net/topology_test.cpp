#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wadp::net {
namespace {

/// A load process that never carries background traffic, so capacities
/// and routes are exact.
LoadParams quiet_load() {
  LoadParams load;
  load.base = 0.0;
  load.diurnal_amplitude = 0.0;
  load.ar_sigma = 0.0;
  load.episode_rate_per_hour = 0.0;
  load.min_utilization = 0.0;
  load.max_utilization = 0.5;  // clamp ceiling (never reached: base 0)
  return load;
}

LinkParams link_params(Bandwidth capacity, Duration rtt) {
  LinkParams params;
  params.capacity = capacity;
  params.rtt = rtt;
  params.load = quiet_load();
  return params;
}

TEST(GridTopologyTest, RoutesFollowShortestTotalRtt) {
  GridTopology topo;
  topo.add_site("a");
  topo.add_site("b");
  topo.add_site("c");
  // Direct a<->c is slower than the two-hop route through b.
  topo.add_link("a", "c", link_params(10e6, 0.100), 1, 0.0);
  topo.add_link("a", "b", link_params(20e6, 0.020), 2, 0.0);
  topo.add_link("b", "c", link_params(15e6, 0.030), 3, 0.0);
  topo.freeze();

  const GridRoute* route = topo.route("a", "c");
  ASSERT_NE(route, nullptr);
  ASSERT_EQ(route->links.size(), 2u);
  EXPECT_DOUBLE_EQ(route->rtt, 0.050);
  EXPECT_DOUBLE_EQ(route->bottleneck, 15e6);
  EXPECT_EQ(route->links[0]->site_a(), "a");
  EXPECT_EQ(route->links[1]->site_b(), "c");
}

TEST(GridTopologyTest, TiesBreakOnFewerHopsThenInsertionOrder) {
  GridTopology topo;
  topo.add_site("a");
  topo.add_site("b");
  topo.add_site("c");
  // Two-hop route with total RTT 0.050 equals the direct link's RTT;
  // the direct (fewer-hop) route must win.
  topo.add_link("a", "b", link_params(10e6, 0.020), 1, 0.0);
  topo.add_link("b", "c", link_params(10e6, 0.030), 2, 0.0);
  Link& direct = topo.add_link("a", "c", link_params(10e6, 0.050), 3, 0.0);
  topo.freeze();

  const GridRoute* route = topo.route("a", "c");
  ASSERT_NE(route, nullptr);
  ASSERT_EQ(route->links.size(), 1u);
  EXPECT_EQ(route->links[0], &direct);
}

TEST(GridTopologyTest, DisconnectedPairsHaveNoRoute) {
  GridTopology topo;
  topo.add_site("a");
  topo.add_site("b");
  topo.add_site("island");
  topo.add_link("a", "b", link_params(10e6, 0.010), 1, 0.0);
  topo.freeze();

  EXPECT_FALSE(topo.connected());
  EXPECT_EQ(topo.route("a", "island"), nullptr);
  EXPECT_FALSE(topo.resolve("a", "island").has_value());
  EXPECT_NE(topo.route("a", "b"), nullptr);
}

TEST(GridTopologyTest, ResolveCarriesLinksRttAndTcp) {
  GridTopology topo;
  topo.add_site("a");
  topo.add_site("b");
  topo.add_link("a", "b", link_params(10e6, 0.025), 1, 0.0);
  TcpParams tcp;
  tcp.mss = 9000;
  topo.set_tcp(tcp);
  topo.freeze();

  const auto route = topo.resolve("a", "b");
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->path, nullptr);
  ASSERT_EQ(route->links.size(), 1u);
  EXPECT_DOUBLE_EQ(route->rtt, 0.025);
  EXPECT_DOUBLE_EQ(route->bottleneck, 10e6);
  EXPECT_EQ(route->tcp.mss, 9000);
  // Self-routes and unknown sites resolve to nothing.
  EXPECT_FALSE(topo.resolve("a", "a").has_value());
  EXPECT_FALSE(topo.resolve("a", "nowhere").has_value());
}

TEST(GridTopologyTest, LinkRecordsBoundedUtilizationSeries) {
  Link link("a", "b", link_params(10e6, 0.010), 1, 0.0);
  EXPECT_EQ(link.resource_name(), "link:a<->b");
  EXPECT_DOUBLE_EQ(link.last_utilization().allocated, 0.0);

  // Overfill the ring; the series must stay bounded and oldest-first.
  const int kSamples = 1500;
  for (int i = 0; i < kSamples; ++i) {
    link.on_allocation(static_cast<SimTime>(i), 1e6 + i);
  }
  const auto series = link.utilization_series();
  ASSERT_LE(series.size(), 1024u);
  ASSERT_GE(series.size(), 2u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_LT(series[i - 1].t, series[i].t);
  }
  EXPECT_DOUBLE_EQ(series.back().t, static_cast<SimTime>(kSamples - 1));
  const auto last = link.last_utilization();
  EXPECT_DOUBLE_EQ(last.allocated, 1e6 + kSamples - 1);
  EXPECT_NEAR(last.utilization(), last.allocated / 10e6, 1e-12);
}

TEST(GridTopologyTest, UtilizationSummaryAggregatesLinks) {
  GridTopology topo;
  topo.add_site("a");
  topo.add_site("b");
  topo.add_site("c");
  Link& ab = topo.add_link("a", "b", link_params(10e6, 0.010), 1, 0.0);
  Link& bc = topo.add_link("b", "c", link_params(10e6, 0.010), 2, 0.0);
  topo.freeze();

  ab.on_allocation(1.0, 8e6);  // 80%
  bc.on_allocation(1.0, 2e6);  // 20%
  const auto summary = topo.utilization_summary();
  EXPECT_NEAR(summary.max, 0.8, 1e-12);
  EXPECT_NEAR(summary.mean, 0.5, 1e-12);
}

}  // namespace
}  // namespace wadp::net
