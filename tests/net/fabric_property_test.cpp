// Property tests for the fluid engine: invariants that must hold for
// ANY flow mix, checked over randomized scenarios.
#include <gtest/gtest.h>

#include <optional>

#include "net/fabric.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace wadp::net {
namespace {

PathParams random_path(util::Rng& rng) {
  PathParams p;
  p.bottleneck = rng.uniform(2e6, 50e6);
  p.rtt = rng.uniform(0.01, 0.2);
  p.load.base = rng.uniform(0.0, 0.5);
  p.load.diurnal_amplitude = rng.uniform(0.0, 0.2);
  p.load.ar_sigma = rng.uniform(0.0, 0.05);
  p.load.episode_rate_per_hour = rng.uniform(0.0, 0.3);
  p.load.max_utilization = 0.9;
  return p;
}

class FabricPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FabricPropertyTest, AllBytesDeliveredExactlyOnce) {
  util::Rng rng(GetParam());
  sim::Simulator sim(1'000'000'000.0);
  FluidEngine engine(sim);
  Topology topology;
  auto& path = topology.add_path("a", "b", random_path(rng), rng.next_u64(),
                                 sim.now());

  const int flows = static_cast<int>(rng.uniform_int(1, 12));
  Bytes requested = 0;
  Bytes delivered = 0;
  std::size_t completions = 0;
  for (int i = 0; i < flows; ++i) {
    const Bytes size = static_cast<Bytes>(rng.uniform(1e5, 2e8));
    requested += size;
    const Duration start_delay = rng.uniform(0.0, 300.0);
    sim.schedule_after(start_delay, [&, size] {
      engine.start_flow({.path = &path,
                         .streams = static_cast<int>(rng.uniform_int(1, 8)),
                         .buffer = static_cast<Bytes>(rng.uniform(3e4, 2e6)),
                         .size = size,
                         .on_complete = [&](const FlowStats& stats) {
                           delivered += stats.bytes;
                           ++completions;
                         }});
    });
  }
  sim.run();
  EXPECT_EQ(delivered, requested);
  EXPECT_EQ(completions, static_cast<std::size_t>(flows));
  EXPECT_EQ(engine.active_flows(), 0u);
}

TEST_P(FabricPropertyTest, NoFlowExceedsItsWindowCap) {
  util::Rng rng(GetParam() ^ 0xbeef);
  sim::Simulator sim(1'000'000'000.0);
  FluidEngine engine(sim);
  Topology topology;
  PathParams params = random_path(rng);
  params.queueing_rtt_factor = 0.0;  // fixed RTT: the cap is exact
  auto& path = topology.add_path("a", "b", params, rng.next_u64(), sim.now());

  const int streams = static_cast<int>(rng.uniform_int(1, 8));
  const Bytes buffer = static_cast<Bytes>(rng.uniform(3e4, 2e6));
  const Bytes size = static_cast<Bytes>(rng.uniform(1e6, 1e8));
  std::optional<FlowStats> stats;
  engine.start_flow({.path = &path,
                     .streams = streams,
                     .buffer = buffer,
                     .size = size,
                     .on_complete = [&](const FlowStats& s) { stats = s; }});
  sim.run();
  ASSERT_TRUE(stats.has_value());
  const double window_cap =
      static_cast<double>(streams) * window_limited_rate(buffer, path.rtt());
  EXPECT_LE(stats->bandwidth(), window_cap * (1.0 + 1e-9));
}

TEST_P(FabricPropertyTest, AggregateNeverExceedsBottleneck) {
  util::Rng rng(GetParam() ^ 0xcafe);
  sim::Simulator sim(1'000'000'000.0);
  FluidEngine engine(sim);
  Topology topology;
  PathParams params = random_path(rng);
  params.load.base = 0.0;  // full bottleneck available
  params.load.diurnal_amplitude = 0.0;
  params.load.ar_sigma = 0.0;
  params.load.episode_rate_per_hour = 0.0;
  auto& path = topology.add_path("a", "b", params, 1, sim.now());

  const Bytes each = 20'000'000;
  const int flows = static_cast<int>(rng.uniform_int(2, 10));
  SimTime first_end = kNeverTime;
  for (int i = 0; i < flows; ++i) {
    engine.start_flow({.path = &path,
                       .streams = 8,
                       .buffer = 1'000'000,
                       .size = each,
                       .on_complete = [&](const FlowStats& s) {
                         first_end = std::min(first_end, s.end);
                       }});
  }
  sim.run();
  // Until the first completion every flow was concurrent: total bytes
  // moved by then cannot exceed bottleneck * elapsed (plus ramp slack).
  const double elapsed = first_end - 1'000'000'000.0;
  EXPECT_GE(elapsed, static_cast<double>(each) * flows /
                         path.bottleneck() * 0.99 / flows);
  // Stronger global check: total time >= total bytes / bottleneck.
  // (All flows finished by sim.now() == last completion.)
  const double total_elapsed = sim.now() - 1'000'000'000.0;
  EXPECT_GE(total_elapsed * path.bottleneck() * (1.0 + 1e-9),
            static_cast<double>(each) * flows);
}

TEST_P(FabricPropertyTest, EqualFlowsFinishTogether) {
  util::Rng rng(GetParam() ^ 0xfeed);
  sim::Simulator sim(1'000'000'000.0);
  FluidEngine engine(sim);
  Topology topology;
  PathParams params = random_path(rng);
  auto& path = topology.add_path("a", "b", params, rng.next_u64(), sim.now());

  // Identical flows started at the same instant must complete at the
  // same instant (max-min fairness with equal weights and demands).
  std::vector<SimTime> ends;
  for (int i = 0; i < 4; ++i) {
    engine.start_flow({.path = &path,
                       .streams = 4,
                       .buffer = 500'000,
                       .size = 30'000'000,
                       .on_complete = [&](const FlowStats& s) {
                         ends.push_back(s.end);
                       }});
  }
  sim.run();
  ASSERT_EQ(ends.size(), 4u);
  for (const SimTime end : ends) {
    EXPECT_NEAR(end, ends.front(), 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, FabricPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace wadp::net
