#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "sim/simulator.hpp"

namespace wadp::net {
namespace {

/// A flat, dedicated path: no background load, so expectations are
/// closed-form.
PathParams quiet_path(Bandwidth bottleneck = 10'000'000.0,
                      Duration rtt = 0.05) {
  PathParams p;
  p.bottleneck = bottleneck;
  p.rtt = rtt;
  p.load.base = 0.0;
  p.load.diurnal_amplitude = 0.0;
  p.load.ar_sigma = 0.0;
  p.load.episode_rate_per_hour = 0.0;
  p.load.max_utilization = 0.95;
  return p;
}

/// A constant-capacity resource for storage-style caps in tests.
class FixedResource final : public CapacityProvider {
 public:
  explicit FixedResource(Bandwidth capacity) : capacity_(capacity) {}
  Bandwidth capacity_at(SimTime) const override { return capacity_; }
  SimTime next_change_after(SimTime) const override { return kNeverTime; }
  std::string_view resource_name() const override { return "fixed"; }

 private:
  Bandwidth capacity_;
};

struct Harness {
  sim::Simulator sim{1'000'000'000.0};  // epoch-magnitude start (regression)
  FluidEngine engine{sim};
  Topology topology;
  PathModel* path = nullptr;

  explicit Harness(PathParams params = quiet_path()) {
    path = &topology.add_path("src", "dst", params, 1, sim.now());
  }

  std::optional<FlowStats> run_one(FlowSpec spec) {
    std::optional<FlowStats> result;
    spec.path = path;
    spec.on_complete = [&](const FlowStats& s) { result = s; };
    engine.start_flow(std::move(spec));
    sim.run();
    return result;
  }
};

TEST(FluidEngineTest, SingleFlowMatchesAnalyticTransferTime) {
  Harness h;
  const Bytes size = 50'000'000;
  const Bytes buffer = 1'000'000;
  const auto stats = h.run_one({.streams = 1, .buffer = buffer, .size = size});
  ASSERT_TRUE(stats.has_value());
  // Single stream, window 1 MB / 50 ms = 20 MB/s > bottleneck 10 MB/s:
  // bottleneck-limited after the ramp.  Sanity band around the analytic
  // unconstrained time (which ignores the bottleneck -> lower bound).
  const auto lower =
      unconstrained_transfer_time(h.path->tcp(), size, buffer, h.path->rtt());
  EXPECT_GE(stats->duration(), lower * 0.99);
  EXPECT_LT(stats->duration(), lower * 3.0);
  EXPECT_NEAR(stats->bandwidth(), 10'000'000.0, 1'500'000.0);
}

TEST(FluidEngineTest, WindowLimitedFlowUsesBufferOverRtt) {
  Harness h(quiet_path(100'000'000.0, 0.1));  // fat link, window binds
  const Bytes buffer = 100'000;               // 100 KB / 0.1 s = 1 MB/s
  const auto stats =
      h.run_one({.streams = 1, .buffer = buffer, .size = 10'000'000});
  ASSERT_TRUE(stats.has_value());
  EXPECT_NEAR(stats->bandwidth(), 1'000'000.0, 100'000.0);
}

TEST(FluidEngineTest, ParallelStreamsBeatSingleStreamWhenWindowBound) {
  Harness h(quiet_path(100'000'000.0, 0.1));
  const Bytes buffer = 100'000;
  const auto one =
      h.run_one({.streams = 1, .buffer = buffer, .size = 10'000'000});
  Harness h2(quiet_path(100'000'000.0, 0.1));
  const auto eight =
      h2.run_one({.streams = 8, .buffer = buffer, .size = 10'000'000});
  ASSERT_TRUE(one && eight);
  EXPECT_GT(eight->bandwidth(), 6.0 * one->bandwidth());
}

TEST(FluidEngineTest, SmallTransfersAchieveLowerBandwidth) {
  // Slow-start effect end to end (paper Section 4.3).
  double last_bw = 0.0;
  for (const Bytes size :
       {1'000'000ull, 10'000'000ull, 100'000'000ull, 1'000'000'000ull}) {
    Harness h;
    const auto stats = h.run_one({.streams = 8, .buffer = 1'000'000, .size = size});
    ASSERT_TRUE(stats.has_value());
    EXPECT_GT(stats->bandwidth(), last_bw) << "size=" << size;
    last_bw = stats->bandwidth();
  }
}

TEST(FluidEngineTest, TwoFlowsShareBottleneckFairly) {
  Harness h;
  std::optional<FlowStats> a, b;
  FlowSpec spec_a{.path = h.path, .streams = 1, .buffer = 1'000'000,
                  .size = 40'000'000,
                  .on_complete = [&](const FlowStats& s) { a = s; }};
  FlowSpec spec_b = spec_a;
  spec_b.on_complete = [&](const FlowStats& s) { b = s; };
  h.engine.start_flow(std::move(spec_a));
  h.engine.start_flow(std::move(spec_b));
  h.sim.run();
  ASSERT_TRUE(a && b);
  // Equal demands, equal weights: both should finish together at half
  // the bottleneck each.
  EXPECT_NEAR(a->bandwidth(), 5'000'000.0, 750'000.0);
  EXPECT_NEAR(a->end, b->end, 0.5);
}

TEST(FluidEngineTest, StreamsActAsWeightsUnderContention) {
  Harness h;
  std::optional<FlowStats> heavy, light;
  // Both large enough that they overlap for most of their lifetime.
  h.engine.start_flow({.path = h.path, .streams = 8, .buffer = 1'000'000,
                       .size = 80'000'000,
                       .on_complete = [&](const FlowStats& s) { heavy = s; }});
  h.engine.start_flow({.path = h.path, .streams = 1, .buffer = 1'000'000,
                       .size = 80'000'000,
                       .on_complete = [&](const FlowStats& s) { light = s; }});
  h.sim.run();
  ASSERT_TRUE(heavy && light);
  // During the overlap the 8-stream flow gets ~8/9 of the link, so it
  // finishes well first; the 1-stream flow then speeds up, which caps
  // its *average* disadvantage below the instantaneous 8x.
  EXPECT_LT(heavy->end, light->end);
  EXPECT_GT(heavy->bandwidth(), 1.5 * light->bandwidth());
}

TEST(FluidEngineTest, ExtraResourceCapsFlow) {
  Harness h;  // 10 MB/s bottleneck
  FixedResource slow_disk(2'000'000.0);
  FlowSpec spec{.streams = 8, .buffer = 1'000'000, .size = 20'000'000};
  spec.extra_resources.push_back(&slow_disk);
  const auto stats = h.run_one(std::move(spec));
  ASSERT_TRUE(stats.has_value());
  EXPECT_NEAR(stats->bandwidth(), 2'000'000.0, 300'000.0);
}

TEST(FluidEngineTest, CancelPreventsCompletionCallback) {
  Harness h;
  bool completed = false;
  const auto id = h.engine.start_flow(
      {.path = h.path, .streams = 1, .buffer = 1'000'000, .size = 100'000'000,
       .on_complete = [&](const FlowStats&) { completed = true; }});
  h.sim.run_until(h.sim.now() + 0.5);
  EXPECT_TRUE(h.engine.cancel_flow(id));
  h.sim.run();
  EXPECT_FALSE(completed);
  EXPECT_EQ(h.engine.active_flows(), 0u);
}

TEST(FluidEngineTest, CancelUnknownFlowReturnsFalse) {
  Harness h;
  EXPECT_FALSE(h.engine.cancel_flow(12345));
}

TEST(FluidEngineTest, CompletionCallbackCanStartNextFlow) {
  Harness h;
  std::optional<FlowStats> second;
  h.engine.start_flow(
      {.path = h.path, .streams = 1, .buffer = 1'000'000, .size = 1'000'000,
       .on_complete = [&](const FlowStats&) {
         h.engine.start_flow({.path = h.path, .streams = 1,
                              .buffer = 1'000'000, .size = 1'000'000,
                              .on_complete =
                                  [&](const FlowStats& s) { second = s; }});
       }});
  h.sim.run();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(h.engine.completed_flows(), 2u);
}

TEST(FluidEngineTest, CurrentRateVisibleWhileActive) {
  Harness h;
  const auto id = h.engine.start_flow(
      {.path = h.path, .streams = 8, .buffer = 1'000'000, .size = 100'000'000});
  h.sim.run_until(h.sim.now() + 2.0);
  EXPECT_GT(h.engine.current_rate(id), 0.0);
  h.sim.run();
  EXPECT_DOUBLE_EQ(h.engine.current_rate(id), 0.0);  // finished
}

TEST(FluidEngineTest, ByteConservationAcrossManyFlows) {
  // All bytes asked for are delivered exactly once.
  Harness h;
  Bytes delivered = 0;
  const Bytes each = 3'000'000;
  for (int i = 0; i < 20; ++i) {
    h.engine.start_flow({.path = h.path, .streams = 2, .buffer = 500'000,
                         .size = each,
                         .on_complete = [&](const FlowStats& s) {
                           delivered += s.bytes;
                         }});
  }
  h.sim.run();
  EXPECT_EQ(delivered, 20 * each);
  EXPECT_EQ(h.engine.active_flows(), 0u);
}

TEST(FluidEngineTest, LoadedPathSlowsTransfers) {
  PathParams loaded = quiet_path();
  loaded.load.base = 0.6;
  Harness quiet_h;
  Harness loaded_h(loaded);
  const FlowSpec spec{.streams = 8, .buffer = 1'000'000, .size = 50'000'000};
  const auto fast = quiet_h.run_one(spec);
  const auto slow = loaded_h.run_one(spec);
  ASSERT_TRUE(fast && slow);
  EXPECT_GT(fast->bandwidth(), 1.9 * slow->bandwidth());
}

}  // namespace
}  // namespace wadp::net
