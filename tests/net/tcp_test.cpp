#include "net/tcp.hpp"

#include <gtest/gtest.h>

namespace wadp::net {
namespace {

TEST(CwndTest, StartsAtInitialWindow) {
  TcpParams tcp;
  EXPECT_EQ(cwnd_after_rtts(tcp, 1'000'000, 0), tcp.initial_window);
}

TEST(CwndTest, DoublesPerRtt) {
  TcpParams tcp;
  EXPECT_EQ(cwnd_after_rtts(tcp, 1'000'000, 1), 2 * tcp.initial_window);
  EXPECT_EQ(cwnd_after_rtts(tcp, 1'000'000, 3), 8 * tcp.initial_window);
}

TEST(CwndTest, CapsAtBuffer) {
  TcpParams tcp;
  EXPECT_EQ(cwnd_after_rtts(tcp, 10'000, 100), 10'000u);
}

TEST(CwndTest, SmallBufferCapsImmediately) {
  TcpParams tcp;
  EXPECT_EQ(cwnd_after_rtts(tcp, 1000, 0), 1000u);
}

TEST(RttsToFillTest, ZeroWhenInitialWindowSuffices) {
  TcpParams tcp;
  EXPECT_EQ(rtts_to_fill_window(tcp, tcp.initial_window), 0);
  EXPECT_EQ(rtts_to_fill_window(tcp, 1), 0);
}

TEST(RttsToFillTest, LogarithmicGrowth) {
  TcpParams tcp{.mss = 1000, .initial_window = 1000};
  EXPECT_EQ(rtts_to_fill_window(tcp, 8000), 3);   // 1k->2k->4k->8k
  EXPECT_EQ(rtts_to_fill_window(tcp, 8001), 4);   // one more doubling
}

TEST(RttsToFillTest, PaperTunedBufferTakesAboutNineRtts) {
  TcpParams tcp;  // init 2920
  const int rtts = rtts_to_fill_window(tcp, kTunedTcpBuffer);
  EXPECT_GE(rtts, 8);
  EXPECT_LE(rtts, 10);
}

TEST(WindowLimitedRateTest, BufferOverRtt) {
  EXPECT_DOUBLE_EQ(window_limited_rate(1'000'000, 0.05), 20'000'000.0);
}

TEST(RampRateCapTest, GrowsThenSaturates) {
  TcpParams tcp;
  const Bytes buffer = 1'000'000;
  const Duration rtt = 0.05;
  const auto r0 = ramp_rate_cap(tcp, buffer, rtt, 0.0);
  const auto r1 = ramp_rate_cap(tcp, buffer, rtt, rtt);
  const auto r_late = ramp_rate_cap(tcp, buffer, rtt, 100.0);
  EXPECT_DOUBLE_EQ(r0, tcp.initial_window / rtt);
  EXPECT_DOUBLE_EQ(r1, 2 * tcp.initial_window / rtt);
  EXPECT_DOUBLE_EQ(r_late, window_limited_rate(buffer, rtt));
}

TEST(RampRateCapTest, NegativeElapsedClampsToStart) {
  TcpParams tcp;
  EXPECT_DOUBLE_EQ(ramp_rate_cap(tcp, 1'000'000, 0.05, -1.0),
                   tcp.initial_window / 0.05);
}

TEST(ElapsedRttsTest, ToleratesEpochFloatRounding) {
  // The regression that stalled every transfer at its initial window:
  // elapsed computed as k*rtt minus one ulp must still count k rounds.
  const Duration rtt = 0.055;
  const SimTime start = 998'956'965.0;
  const SimTime wake = start + rtt;  // rounded at 1e9 magnitude
  EXPECT_EQ(elapsed_rtts(rtt, wake - start), 1);
  EXPECT_EQ(elapsed_rtts(rtt, (start + 5 * rtt) - start), 5);
}

TEST(ElapsedRttsTest, BasicCounts) {
  EXPECT_EQ(elapsed_rtts(0.05, 0.0), 0);
  EXPECT_EQ(elapsed_rtts(0.05, 0.049), 0);
  EXPECT_EQ(elapsed_rtts(0.05, 0.051), 1);
  EXPECT_EQ(elapsed_rtts(0.05, -5.0), 0);
}

TEST(UnconstrainedTransferTimeTest, ZeroBytesZeroTime) {
  TcpParams tcp;
  EXPECT_DOUBLE_EQ(unconstrained_transfer_time(tcp, 0, 1'000'000, 0.05), 0.0);
}

TEST(UnconstrainedTransferTimeTest, TinyTransferFractionOfRtt) {
  TcpParams tcp{.mss = 1000, .initial_window = 2000};
  // 1000 bytes with a 2000-byte window: half an RTT.
  EXPECT_DOUBLE_EQ(unconstrained_transfer_time(tcp, 1000, 1'000'000, 0.1),
                   0.05);
}

TEST(UnconstrainedTransferTimeTest, SlowStartAccounting) {
  TcpParams tcp{.mss = 1000, .initial_window = 1000};
  const Bytes buffer = 4000;
  const Duration rtt = 0.1;
  // Rounds move 1000, 2000 bytes; then window-limited at 40 KB/s.
  // 7000 bytes: 2 rounds (3000 B) + 4000 B at 40 KB/s = 0.2 + 0.1.
  EXPECT_NEAR(unconstrained_transfer_time(tcp, 7000, buffer, rtt), 0.3, 1e-12);
}

TEST(UnconstrainedTransferTimeTest, LargeTransferApproachesWindowRate) {
  TcpParams tcp;
  const Bytes size = 1'000'000'000;  // 1 GB
  const Bytes buffer = 1'000'000;
  const Duration rtt = 0.055;
  const auto t = unconstrained_transfer_time(tcp, size, buffer, rtt);
  const auto bw = achieved_bandwidth(size, t);
  EXPECT_NEAR(bw, window_limited_rate(buffer, rtt), 0.01 * bw);
}

TEST(UnconstrainedTransferTimeTest, SmallFilesGetLowerBandwidth) {
  // The paper's Section 4.3 phenomenon, in its purest form.
  TcpParams tcp;
  const Bytes buffer = kTunedTcpBuffer;
  const Duration rtt = 0.055;
  double last_bw = 0.0;
  for (const Bytes size : {1'000'000ull, 10'000'000ull, 100'000'000ull,
                           1'000'000'000ull}) {
    const auto t = unconstrained_transfer_time(tcp, size, buffer, rtt);
    const auto bw = achieved_bandwidth(size, t);
    EXPECT_GT(bw, last_bw) << "size=" << size;
    last_bw = bw;
  }
}

TEST(NwsProbeTheoryTest, DefaultProbeStaysInSlowStart) {
  // A 64 KB probe with standard buffers never exits slow start on a
  // wide-area RTT -> measured bandwidth far below the window rate.
  TcpParams tcp;
  const Duration rtt = 0.055;
  const auto t = unconstrained_transfer_time(tcp, 64 * kKiB,
                                             kDefaultTcpBuffer, rtt);
  const auto bw = achieved_bandwidth(64 * kKiB, t);
  EXPECT_LT(bw, 300'000.0);  // the paper's "< 0.3 MB/sec" observation
}

TEST(AchievedBandwidthTest, PaperFormula) {
  // BW = file size / transfer time (Fig. 3 caption).
  EXPECT_DOUBLE_EQ(achieved_bandwidth(10'240'000, 4.0), 2'560'000.0);
}

}  // namespace
}  // namespace wadp::net
