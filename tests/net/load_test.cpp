#include "net/load.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wadp::net {
namespace {

LoadParams default_params() {
  LoadParams p;
  p.base = 0.4;
  p.diurnal_amplitude = 0.2;
  p.zone = util::kCdt;
  return p;
}

TEST(LoadProcessTest, UtilizationWithinBounds) {
  LoadProcess load(default_params(), 1, 0.0);
  for (double t = 0.0; t < 7 * 86400.0; t += 137.0) {
    const double u = load.utilization(t);
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, default_params().max_utilization);
  }
}

TEST(LoadProcessTest, MinUtilizationClampApplies) {
  LoadParams p = default_params();
  p.base = 0.0;
  p.diurnal_amplitude = 0.0;
  p.ar_sigma = 0.001;
  p.min_utilization = 0.25;
  LoadProcess load(p, 2, 0.0);
  for (double t = 0.0; t < 86400.0; t += 600.0) {
    EXPECT_GE(load.utilization(t), 0.25);
  }
}

TEST(LoadProcessTest, DeterministicForSameSeed) {
  LoadProcess a(default_params(), 7, 0.0);
  LoadProcess b(default_params(), 7, 0.0);
  for (double t = 0.0; t < 86400.0; t += 61.0) {
    EXPECT_DOUBLE_EQ(a.utilization(t), b.utilization(t));
  }
}

TEST(LoadProcessTest, QueryOrderDoesNotChangeValues) {
  LoadProcess forward(default_params(), 9, 0.0);
  LoadProcess backward(default_params(), 9, 0.0);
  std::vector<double> fwd;
  for (double t = 0.0; t <= 3600.0; t += 60.0) {
    fwd.push_back(forward.utilization(t));
  }
  // Query the second instance newest-first; values must match exactly.
  std::vector<double> bwd;
  for (double t = 3600.0; t >= 0.0; t -= 60.0) {
    bwd.push_back(backward.utilization(t));
  }
  for (std::size_t i = 0; i < fwd.size(); ++i) {
    EXPECT_DOUBLE_EQ(fwd[i], bwd[bwd.size() - 1 - i]);
  }
}

TEST(LoadProcessTest, ConstantWithinGridStep) {
  LoadProcess load(default_params(), 11, 0.0);
  const double u = load.utilization(120.0);
  EXPECT_DOUBLE_EQ(load.utilization(120.0 + 30.0), u);
  EXPECT_DOUBLE_EQ(load.utilization(120.0 + 59.9), u);
}

TEST(LoadProcessTest, QueriesBeforeOriginClampToFirstValue) {
  LoadProcess load(default_params(), 13, 1000.0);
  EXPECT_DOUBLE_EQ(load.utilization(0.0), load.utilization(1000.0));
}

TEST(LoadProcessTest, NextChangeIsGridAligned) {
  LoadProcess load(default_params(), 17, 1000.0);
  EXPECT_DOUBLE_EQ(load.next_change_after(1000.0), 1060.0);
  EXPECT_DOUBLE_EQ(load.next_change_after(1059.0), 1060.0);
  EXPECT_DOUBLE_EQ(load.next_change_after(1060.0), 1120.0);
  EXPECT_DOUBLE_EQ(load.next_change_after(500.0), 1000.0);
}

TEST(LoadProcessTest, AvailabilityComplementsUtilization) {
  LoadProcess load(default_params(), 19, 0.0);
  for (double t = 0.0; t < 3600.0; t += 60.0) {
    EXPECT_DOUBLE_EQ(load.availability(t), 1.0 - load.utilization(t));
  }
}

TEST(LoadProcessTest, DiurnalPeakIsLoadedThanTrough) {
  // Average over many days: local 14:00 (peak) must exceed local 02:00.
  LoadParams p = default_params();
  p.ar_sigma = 0.01;  // suppress noise so the cycle dominates
  p.episode_rate_per_hour = 0.0;
  LoadProcess load(p, 23, 0.0);
  double peak_sum = 0.0, trough_sum = 0.0;
  const double cdt_offset = 5 * 3600.0;  // kCdt is UTC-5
  for (int day = 0; day < 20; ++day) {
    const double midnight_local = day * 86400.0 + cdt_offset;
    peak_sum += load.utilization(midnight_local + 14 * 3600.0);
    trough_sum += load.utilization(midnight_local + 2 * 3600.0);
  }
  EXPECT_GT(peak_sum, trough_sum + 0.1 * 20);
}

TEST(LoadProcessTest, EpisodesRaiseLoad) {
  // With huge episode probability, mean load must exceed the no-episode
  // configuration's mean.
  LoadParams base = default_params();
  base.episode_rate_per_hour = 0.0;
  LoadParams episodic = base;
  episodic.episode_rate_per_hour = 20.0;
  episodic.episode_utilization = 0.3;
  LoadProcess quiet(base, 31, 0.0);
  LoadProcess busy(episodic, 31, 0.0);
  double quiet_sum = 0.0, busy_sum = 0.0;
  for (double t = 0.0; t < 86400.0; t += 60.0) {
    quiet_sum += quiet.utilization(t);
    busy_sum += busy.utilization(t);
  }
  EXPECT_GT(busy_sum, quiet_sum);
}

TEST(LoadProcessTest, ArPersistenceCreatesAutocorrelation) {
  // Adjacent steps should correlate far more than steps a day apart.
  LoadParams p = default_params();
  p.diurnal_amplitude = 0.0;  // isolate the AR component
  p.episode_rate_per_hour = 0.0;
  LoadProcess load(p, 37, 0.0);
  double adjacent = 0.0, distant = 0.0;
  int n = 0;
  for (double t = 0.0; t < 5 * 86400.0; t += 60.0) {
    const double a = load.utilization(t) - p.base;
    adjacent += a * (load.utilization(t + 60.0) - p.base);
    distant += a * (load.utilization(t + 86400.0) - p.base);
    ++n;
  }
  EXPECT_GT(adjacent / n, distant / n);
}

}  // namespace
}  // namespace wadp::net
