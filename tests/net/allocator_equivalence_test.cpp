// Property tests for the incremental max-min allocator: under ANY
// randomized mix of flow arrivals, cancellations, and background-load
// steps on the paper's three-site topology, the dirty-component
// allocator must produce rates bit-identical to the retained reference
// global recompute.  Weighted max-min decomposes exactly across
// connected components, so any divergence is a bug, not float noise.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/fabric.hpp"
#include "net/path.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace wadp::net {
namespace {

/// The paper testbed's wide-area geometry with a lively load process
/// (small grid step => frequent capacity steps during the horizon).
void add_paper_paths(Topology& topology, util::Rng& seeder, SimTime origin) {
  struct Wan {
    const char* a;
    const char* b;
    Duration rtt;
    Bandwidth bottleneck;
  };
  const Wan wans[] = {
      {"lbl", "anl", 0.055, 12'500'000.0},
      {"isi", "anl", 0.065, 12'500'000.0},
      {"lbl", "isi", 0.075, 11'000'000.0},
  };
  for (const Wan& wan : wans) {
    PathParams params;
    params.bottleneck = wan.bottleneck;
    params.rtt = wan.rtt;
    params.load.base = 0.38;
    params.load.ar_sigma = 0.05;
    params.load.episode_rate_per_hour = 2.0;
    params.load.episode_mean_minutes = 2.0;
    params.load.max_utilization = 0.82;
    params.load.grid_step = 10.0;  // step capacities often
    topology.add_path(wan.a, wan.b, params, seeder.next_u64(), origin);
    topology.add_path(wan.b, wan.a, params, seeder.next_u64(), origin);
  }
}

struct Completion {
  SimTime at = 0.0;
  Bytes bytes = 0;
};

/// Runs one randomized churn scenario and returns completions keyed by
/// arrival index.  The schedule (arrival times, sizes, streams, cancel
/// times) depends only on `seed`, so two engine configurations see the
/// same offered load.
std::map<int, Completion> run_churn(std::uint64_t seed, EngineConfig config,
                                    FluidEngine::AllocStats* stats_out,
                                    std::string* mismatch_out) {
  const SimTime origin = 1'000'000'000.0;
  sim::Simulator sim(origin);
  FluidEngine engine(sim, config);
  Topology topology;
  util::Rng seeder(seed);
  add_paper_paths(topology, seeder, origin);

  std::vector<PathModel*> paths;
  for (const char* src : {"lbl", "isi", "anl"}) {
    for (const char* dst : {"lbl", "isi", "anl"}) {
      if (PathModel* p = topology.find(src, dst)) paths.push_back(p);
    }
  }

  util::Rng rng(seed ^ 0xc4u);
  std::map<int, Completion> completions;
  const int kFlows = 48;
  for (int i = 0; i < kFlows; ++i) {
    PathModel* path = paths[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(paths.size()) - 1))];
    const auto size = static_cast<Bytes>(rng.uniform(5e5, 1.5e8));
    const auto streams = static_cast<int>(rng.uniform_int(1, 8));
    const Duration start = rng.uniform(0.0, 400.0);
    const bool cancel = rng.uniform() < 0.25;
    const Duration cancel_after = rng.uniform(0.5, 40.0);
    sim.schedule_after(start, [&, i, path, size, streams, cancel,
                               cancel_after] {
      const FlowId id =
          engine.start_flow({.path = path,
                             .streams = streams,
                             .size = size,
                             .on_complete = [&completions, i](
                                                const FlowStats& stats) {
                               completions[i] = {stats.end, stats.bytes};
                             }});
      if (cancel) {
        sim.schedule_after(cancel_after, [&engine, id] {
          engine.cancel_flow(id);  // no-op if already complete
        });
      }
    });
  }
  sim.run();
  if (stats_out != nullptr) *stats_out = engine.alloc_stats();
  if (mismatch_out != nullptr) *mismatch_out = engine.first_mismatch();
  EXPECT_EQ(engine.compare_with_reference(), 0u);
  return completions;
}

class AllocatorEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorEquivalenceTest, ShadowVerifyFindsNoMismatch) {
  EngineConfig config;
  config.allocator = AllocatorKind::kIncremental;
  config.verify_allocator = true;
  FluidEngine::AllocStats stats;
  std::string mismatch;
  run_churn(GetParam(), config, &stats, &mismatch);
  EXPECT_EQ(stats.verify_mismatches, 0u) << mismatch;
  EXPECT_GT(stats.reallocs, 0u);
}

TEST_P(AllocatorEquivalenceTest, IncrementalMatchesReferenceEndToEnd) {
  EngineConfig incremental;
  incremental.allocator = AllocatorKind::kIncremental;
  EngineConfig reference;
  reference.allocator = AllocatorKind::kReference;

  const auto inc = run_churn(GetParam(), incremental, nullptr, nullptr);
  const auto ref = run_churn(GetParam(), reference, nullptr, nullptr);
  ASSERT_EQ(inc.size(), ref.size());
  for (const auto& [index, completion] : inc) {
    const auto it = ref.find(index);
    ASSERT_NE(it, ref.end()) << "flow " << index;
    EXPECT_DOUBLE_EQ(completion.at, it->second.at) << "flow " << index;
    EXPECT_EQ(completion.bytes, it->second.bytes) << "flow " << index;
  }
}

TEST_P(AllocatorEquivalenceTest, LazyProgressMatchesEagerEndToEnd) {
  EngineConfig eager;
  EngineConfig lazy;
  lazy.lazy_progress = true;
  lazy.verify_allocator = true;

  const auto eager_done = run_churn(GetParam(), eager, nullptr, nullptr);
  FluidEngine::AllocStats stats;
  std::string mismatch;
  const auto lazy_done = run_churn(GetParam(), lazy, &stats, &mismatch);
  EXPECT_EQ(stats.verify_mismatches, 0u) << mismatch;
  ASSERT_EQ(lazy_done.size(), eager_done.size());
  for (const auto& [index, completion] : lazy_done) {
    const auto it = eager_done.find(index);
    ASSERT_NE(it, eager_done.end()) << "flow " << index;
    // Lazy mode re-times wakeups but must move the same bytes at the
    // same rates: completions land within a time quantum.
    EXPECT_NEAR(completion.at, it->second.at, 1e-5) << "flow " << index;
    EXPECT_EQ(completion.bytes, it->second.bytes) << "flow " << index;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorEquivalenceTest,
                         ::testing::Values(1u, 7u, 42u, 1337u, 0xfeedu));

}  // namespace
}  // namespace wadp::net
