// Whole-system integration tests: the paper's pipeline from controlled
// campaign through instrumented logs, predictors, the MDS delivery
// infrastructure, and replica selection.
#include <gtest/gtest.h>

#include "core/wadp.hpp"
#include "util/stats.hpp"

namespace wadp {
namespace {

using workload::Campaign;

/// One shared 14-day August campaign for the expensive assertions.
class PaperCampaignTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    result_ = new workload::CampaignResult(
        workload::run_paper_campaign(Campaign::kAugust2001, 42, {}));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }

  static std::vector<predict::Observation> series(const std::string& site) {
    return history::observations_from_records(
        result_->testbed->server(site).log().records(),
        {.remote_ip = result_->testbed->client("anl").ip()});
  }

  static workload::CampaignResult* result_;
};

workload::CampaignResult* PaperCampaignTest::result_ = nullptr;

TEST_F(PaperCampaignTest, HeadlineErrorBand) {
  // Section 6.2: "even simple techniques are 'at worst' off by about
  // 25%" for the >= 100 MB classes (large files are more predictable).
  const auto suite = predict::PredictorSuite::context_sensitive();
  const predict::Evaluator evaluator;
  for (const auto& site : {"lbl", "isi"}) {
    const auto evaluation = evaluator.run(series(site), suite.pointers());
    for (std::size_t p = 0; p < suite.size(); ++p) {
      for (int cls = 1; cls < 4; ++cls) {
        if (evaluation.errors(p, cls).count() < 10) continue;
        EXPECT_LT(evaluation.errors(p, cls).mean(), 40.0)
            << site << " " << evaluation.predictor_names()[p] << " class "
            << cls;
      }
    }
  }
}

TEST_F(PaperCampaignTest, LargeFilesMorePredictableThanSmall) {
  const auto suite = predict::PredictorSuite::context_sensitive();
  const predict::Evaluator evaluator;
  const auto evaluation = evaluator.run(series("lbl"), suite.pointers());
  const auto avg15 = *evaluation.index_of("AVG15/fs");
  EXPECT_GT(evaluation.errors(avg15, 0).mean(),
            evaluation.errors(avg15, 3).mean());
}

TEST_F(PaperCampaignTest, ClassificationImprovesPredictions) {
  // Figs. 12-13: context-sensitive filtering reduces mean error.
  const auto suite = predict::PredictorSuite::paper_suite();
  const predict::Evaluator evaluator;
  for (const auto& site : {"lbl", "isi"}) {
    const auto evaluation = evaluator.run(series(site), suite.pointers());
    double plain_total = 0.0, classified_total = 0.0;
    int compared = 0;
    for (const auto& name : predict::PredictorSuite::figure4_names()) {
      const auto plain = evaluation.index_of(name);
      const auto classified = evaluation.index_of(name + "/fs");
      ASSERT_TRUE(plain && classified);
      plain_total += evaluation.errors(*plain).mean();
      classified_total += evaluation.errors(*classified).mean();
      ++compared;
    }
    EXPECT_GT(plain_total / compared, classified_total / compared + 3.0)
        << site;
  }
}

TEST_F(PaperCampaignTest, NwsProbesQualitativelyDifferent) {
  // Figs. 1-2 on a fresh testbed: probe bandwidth sits far below GridFTP
  // bandwidth on the same link at the same time.
  workload::Testbed testbed(Campaign::kAugust2001, 7);
  auto* path = testbed.topology().find("lbl", "anl");
  ASSERT_NE(path, nullptr);
  nws::NwsSensor sensor(testbed.sim(), testbed.engine(), *path, {});
  workload::CampaignConfig config;
  config.days = 2;
  workload::CampaignDriver driver(testbed, "anl", "lbl", config, 99);
  driver.start();
  testbed.sim().run_until(testbed.start_time() + 2.5 * 86400.0);

  ASSERT_GT(sensor.series().size(), 500u);  // ~every 5 minutes
  ASSERT_GT(driver.completed(), 20u);
  util::RunningStats probe_bw, gridftp_bw;
  for (const auto& m : sensor.series()) probe_bw.add(m.value);
  for (const auto& o : driver.outcomes()) {
    gridftp_bw.add(o.record.bandwidth());
  }
  EXPECT_LT(probe_bw.max(), 300'000.0);       // "< 0.3 MB/sec"
  EXPECT_GT(gridftp_bw.mean(), 3'000'000.0);  // tuned transfers: MB/s
  EXPECT_GT(gridftp_bw.min(), probe_bw.max());
}

TEST_F(PaperCampaignTest, ProviderPublishesCampaignStatistics) {
  auto& server = result_->testbed->server("lbl");
  mds::GridFtpInfoProvider provider(
      server,
      {.base = *mds::Dn::parse("hostname=dpsslx04.lbl.gov, dc=lbl, o=grid")});
  const auto entries =
      provider.provide(result_->testbed->sim().now());
  ASSERT_GE(entries.size(), 2u);
  const mds::Entry* anl = nullptr;
  for (const auto& e : entries) {
    if (e.get("cn")) anl = &e;
  }
  ASSERT_NE(anl, nullptr);
  // Published statistics reflect the calibrated band (KB/s).
  EXPECT_GT(*anl->get_double("minrdbandwidth"), 1000.0);
  EXPECT_LT(*anl->get_double("maxrdbandwidth"), 12'500.0);
  EXPECT_TRUE(anl->has("predictedrdbandwidthonegbrange"));
}

TEST_F(PaperCampaignTest, BrokerPrefersFasterReplicaEndToEnd) {
  // Build the full delivery stack over the campaign's logs and ask the
  // broker to choose between LBL and ISI for the ANL client.  Which
  // site is faster is an empirical property of this seed, so assert
  // consistency with the logs rather than a fixed site.
  auto& lbl = result_->testbed->server("lbl");
  auto& isi = result_->testbed->server("isi");
  mds::GridFtpInfoProvider lbl_provider(
      lbl,
      {.base = *mds::Dn::parse("hostname=dpsslx04.lbl.gov, dc=lbl, o=grid")});
  mds::GridFtpInfoProvider isi_provider(
      isi, {.base = *mds::Dn::parse("hostname=jet.isi.edu, dc=isi, o=grid")});
  mds::Gris lbl_gris("lbl-gris", *mds::Dn::parse("dc=lbl, o=grid"));
  mds::Gris isi_gris("isi-gris", *mds::Dn::parse("dc=isi, o=grid"));
  lbl_gris.register_provider(&lbl_provider, 300.0);
  isi_gris.register_provider(&isi_provider, 300.0);
  const SimTime now = result_->testbed->sim().now();
  mds::Giis giis("top");
  giis.register_gris(lbl_gris, now, 1e6);
  giis.register_gris(isi_gris, now, 1e6);

  replica::ReplicaCatalog catalog;
  const auto path = workload::paper_file_path(500 * kMB);
  catalog.add_replica("lfn://500mb", {.site = "lbl",
                                      .server_host = "dpsslx04.lbl.gov",
                                      .path = path});
  catalog.add_replica("lfn://500mb", {.site = "isi",
                                      .server_host = "jet.isi.edu",
                                      .path = path});

  replica::ReplicaBroker broker(catalog, giis,
                                replica::SelectionPolicy::kPredictedBest);
  const auto client_ip = result_->testbed->client("anl").ip();
  const auto selection =
      broker.select("lfn://500mb", client_ip, 500 * kMB, now);
  ASSERT_TRUE(selection.has_value());
  EXPECT_TRUE(selection->informed);

  // Consistency: the chosen site's recent 500MB-class mean beats the
  // other's.
  const auto mean_recent = [&](const std::string& site) {
    const auto obs = series(site);
    const auto classifier = predict::SizeClassifier::paper_classes();
    std::vector<double> in_class;
    for (const auto& o : obs) {
      if (classifier.classify(o.file_size) == 2) in_class.push_back(o.value);
    }
    const std::size_t n = std::min<std::size_t>(15, in_class.size());
    double sum = 0.0;
    for (std::size_t i = in_class.size() - n; i < in_class.size(); ++i) {
      sum += in_class[i];
    }
    return sum / static_cast<double>(n);
  };
  const auto lbl_mean = mean_recent("lbl");
  const auto isi_mean = mean_recent("isi");
  const auto expected = lbl_mean >= isi_mean ? "lbl" : "isi";
  EXPECT_EQ(selection->replica.site, expected);
}

TEST_F(PaperCampaignTest, ServiceIngestsBothCampaignLogs) {
  core::PredictionService service;
  service.ingest_log(result_->testbed->server("lbl").log());
  service.ingest_log(result_->testbed->server("isi").log());
  EXPECT_EQ(service.total_observations(),
            result_->lbl_to_anl->completed() + result_->isi_to_anl->completed());
  const core::SeriesKey key{.host = "dpsslx04.lbl.gov",
                            .remote_ip =
                                result_->testbed->client("anl").ip(),
                            .op = gridftp::Operation::kRead};
  const auto prediction = service.predict(
      key, 500 * kMB, result_->testbed->sim().now());
  ASSERT_TRUE(prediction.has_value());
  EXPECT_GT(*prediction, 1.5e6);
  EXPECT_LT(*prediction, 11e6);
}

TEST_F(PaperCampaignTest, LogsRoundTripThroughUlmFiles) {
  auto& server = result_->testbed->server("lbl");
  const std::string path = ::testing::TempDir() + "/campaign_lbl.ulm";
  ASSERT_TRUE(server.log().save(path).ok());
  const auto loaded = gridftp::TransferLog::load(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), server.log().size());
  // Timestamps are serialized at millisecond precision, so compare
  // fields rather than bit-exact records.
  const auto& a = loaded.value().records().back();
  const auto& b = server.log().records().back();
  EXPECT_EQ(a.file_name, b.file_name);
  EXPECT_EQ(a.file_size, b.file_size);
  EXPECT_EQ(a.source_ip, b.source_ip);
  EXPECT_EQ(a.streams, b.streams);
  EXPECT_NEAR(a.start_time, b.start_time, 0.001);
  EXPECT_NEAR(a.end_time, b.end_time, 0.001);
  EXPECT_NEAR(a.bandwidth(), b.bandwidth(), 0.01 * b.bandwidth());
  std::remove(path.c_str());
}

TEST_F(PaperCampaignTest, DynamicSelectorCompetitiveWithBestFixed) {
  // Paper Section 7 future work: NWS-style dynamic selection.  It must
  // end within a few points of the best fixed predictor's mean error.
  const auto obs = series("lbl");
  const auto battery = predict::PredictorSuite::context_sensitive();
  const predict::Evaluator evaluator;
  const auto fixed = evaluator.run(obs, battery.pointers());
  double best_fixed = 1e9;
  for (std::size_t p = 0; p < battery.size(); ++p) {
    best_fixed = std::min(best_fixed, fixed.errors(p).mean());
  }

  predict::DynamicSelector selector("DYN", battery.predictors());
  double error_sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < obs.size(); ++i) {
    if (i >= 15) {
      const auto p = selector.predict(
          {.time = obs[i].time, .file_size = obs[i].file_size});
      if (p) {
        error_sum += util::percent_error(obs[i].value, *p);
        ++count;
      }
    }
    selector.observe(obs[i]);
  }
  ASSERT_GT(count, 100u);
  EXPECT_LT(error_sum / static_cast<double>(count), best_fixed + 10.0);
}

}  // namespace
}  // namespace wadp
