// Concurrency stress for the grid network fabric: one thread drives a
// grid-scale scenario on the fluid engine while reader threads poll
// per-link utilization series and the metrics registry — the
// dashboards-and-probes pattern.  Named *Thread* so the TSan CI job
// picks it up.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "net/topology.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "workload/gridworld.hpp"

namespace wadp::workload {
namespace {

TEST(NetSimThreadStressTest, ReadersPollLinksWhileScenarioRuns) {
  GridSpec spec;
  spec.sites = 12;
  spec.links = 30;
  GridWorld world(spec, 99);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> samples_seen{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t local = 0;
      while (!done.load(std::memory_order_acquire)) {
        for (const auto& link : world.topology().links()) {
          const auto series = link->utilization_series();
          local += series.size();
          const auto last = link->last_utilization();
          ASSERT_GE(last.allocated, 0.0);
        }
        if (r == 0) {
          // One reader also exercises the registry export path.
          const auto text = obs::to_prometheus(obs::Registry::global());
          ASSERT_FALSE(text.empty());
        }
      }
      samples_seen.fetch_add(local, std::memory_order_relaxed);
    });
  }

  ScenarioConfig scenario;
  scenario.duration = 90.0;
  scenario.arrivals_per_second = 8.0;
  scenario.max_size = 50 * kMB;
  const auto summary = world.run(scenario, 7);
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  EXPECT_GT(summary.flows_started, 0u);
  EXPECT_GT(summary.flows_completed, 0u);
  EXPECT_GT(samples_seen.load(), 0u);
}

TEST(NetSimThreadStressTest, UtilizationSummaryRacesScenario) {
  GridSpec spec;
  spec.sites = 8;
  spec.links = 16;
  GridWorld world(spec, 3);

  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const auto summary = world.topology().utilization_summary();
      ASSERT_GE(summary.max, summary.mean - 1e-12);
    }
  });

  ScenarioConfig scenario;
  scenario.scenario = Scenario::kFlashCrowd;
  scenario.duration = 60.0;
  scenario.flash_after = 10.0;
  scenario.flash_duration = 20.0;
  scenario.arrivals_per_second = 6.0;
  scenario.max_size = 25 * kMB;
  const auto summary = world.run(scenario, 11);
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_GT(summary.flows_started, 0u);
}

}  // namespace
}  // namespace wadp::workload
