// Whole-system determinism: identical seeds must reproduce campaigns
// bit-for-bit, down to the serialized ULM log text.  This is the
// property every reproduction claim in EXPERIMENTS.md rests on.
#include <gtest/gtest.h>

#include "core/wadp.hpp"

namespace wadp {
namespace {

TEST(DeterminismTest, CampaignLogsSerializeIdentically) {
  workload::CampaignConfig config;
  config.days = 4;
  auto a = workload::run_paper_campaign(workload::Campaign::kAugust2001, 77,
                                        config);
  auto b = workload::run_paper_campaign(workload::Campaign::kAugust2001, 77,
                                        config);
  for (const char* site : {"lbl", "isi"}) {
    EXPECT_EQ(a.testbed->server(site).log().to_ulm_text(),
              b.testbed->server(site).log().to_ulm_text())
        << site;
  }
}

TEST(DeterminismTest, NwsPlaneReproduces) {
  const auto run_once = [](std::uint64_t seed) {
    workload::Testbed testbed(workload::Campaign::kAugust2001, seed);
    core::FabricConfig config;
    config.deploy_nws = true;
    core::InformationFabric fabric(testbed, config);
    testbed.sim().run_until(testbed.start_time() + 86400.0);
    fabric.absorb_probes();
    std::string out;
    for (const auto& site : {"anl", "isi", "lbl"}) {
      for (const auto& experiment :
           fabric.probe_memory(site).experiments()) {
        out += fabric.probe_memory(site).to_trace_text(experiment);
      }
    }
    return out;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

TEST(DeterminismTest, EvaluationIsPureGivenTheSeries) {
  workload::CampaignConfig config;
  config.days = 4;
  auto campaign = workload::run_paper_campaign(
      workload::Campaign::kAugust2001, 9, config);
  core::PredictionService x, y;
  x.ingest_log(campaign.testbed->server("lbl").log());
  y.ingest_log(campaign.testbed->server("lbl").log());
  const core::SeriesKey key{
      .host = campaign.testbed->server("lbl").config().host,
      .remote_ip = campaign.testbed->client("anl").ip(),
      .op = gridftp::Operation::kRead};
  const auto ex = x.evaluate(key);
  const auto ey = y.evaluate(key);
  ASSERT_TRUE(ex && ey);
  for (std::size_t p = 0; p < ex->predictor_names().size(); ++p) {
    EXPECT_DOUBLE_EQ(ex->errors(p).mean(), ey->errors(p).mean());
    EXPECT_EQ(ex->relative(p).best, ey->relative(p).best);
  }
}

}  // namespace
}  // namespace wadp
