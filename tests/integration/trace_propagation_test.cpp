// Satellite of the quality plane: one request = one trace.  The broker
// query, every client attempt (retries included), the failover to the
// second replica, and the history ingest must all carry the trace id
// minted at the entry point, and the recorded spans must form a valid
// tree (every parent resolvable, no cycles).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/quality_demo.hpp"
#include "gridftp/client.hpp"
#include "gridftp/server.hpp"
#include "history/store.hpp"
#include "mds/giis.hpp"
#include "mds/gridftp_provider.hpp"
#include "mds/gris.hpp"
#include "net/fabric.hpp"
#include "net/path.hpp"
#include "obs/context.hpp"
#include "obs/trace.hpp"
#include "replica/broker.hpp"
#include "replica/catalog.hpp"
#include "replica/fetcher.hpp"
#include "sim/simulator.hpp"
#include "storage/storage.hpp"

namespace wadp {
namespace {

std::vector<obs::SpanRecord> spans_of(std::uint64_t trace) {
  std::vector<obs::SpanRecord> out;
  for (auto& span : obs::Tracer::global().finished()) {
    if (span.trace_id == trace) out.push_back(std::move(span));
  }
  return out;
}

std::map<std::string, int> names_of(const std::vector<obs::SpanRecord>& spans) {
  std::map<std::string, int> counts;
  for (const auto& span : spans) ++counts[span.name];
  return counts;
}

/// Every parent id resolves inside the trace (or is 0 = root) and
/// walking parent links always terminates at a root.
void expect_valid_tree(const std::vector<obs::SpanRecord>& spans) {
  std::map<obs::SpanId, obs::SpanId> parent_of;
  for (const auto& span : spans) {
    EXPECT_NE(span.id, 0u);
    // Span ids are unique within the trace.
    EXPECT_TRUE(parent_of.emplace(span.id, span.parent).second)
        << "duplicate span id " << span.id;
  }
  for (const auto& span : spans) {
    if (span.parent != 0) {
      EXPECT_TRUE(parent_of.count(span.parent))
          << "orphan: span " << span.id << " (" << span.name
          << ") parents under unknown id " << span.parent;
    }
    // Follow the chain to a root; a cycle would outlast the span count.
    obs::SpanId cursor = span.id;
    std::size_t hops = 0;
    while (cursor != 0 && hops <= spans.size()) {
      const auto it = parent_of.find(cursor);
      if (it == parent_of.end()) break;  // reported as orphan above
      cursor = it->second;
      ++hops;
    }
    EXPECT_LE(hops, spans.size()) << "cycle through span " << span.id;
  }
}

TEST(TracePropagationTest, RetriesAndFailoverShareTheRequestTrace) {
  obs::Tracer::global().clear();

  sim::Simulator sim(0.0);
  net::FluidEngine engine(sim);
  net::Topology topology;
  net::PathParams fast, slow;
  fast.bottleneck = 10'000'000.0;
  slow.bottleneck = 5'000'000.0;
  for (net::PathParams* p : {&fast, &slow}) {
    p->rtt = 0.05;
    p->load.base = 0.0;
    p->load.diurnal_amplitude = 0.0;
    p->load.ar_sigma = 0.0;
    p->load.episode_rate_per_hour = 0.0;
  }
  topology.add_path("lbl", "anl", fast, 1, 0.0);
  topology.add_path("anl", "lbl", fast, 2, 0.0);
  topology.add_path("isi", "anl", slow, 3, 0.0);
  topology.add_path("anl", "isi", slow, 4, 0.0);

  storage::StorageParams quiet;
  quiet.local_load.reset();
  storage::StorageSystem anl_store("anl", quiet, 1, 0.0);
  storage::StorageSystem lbl_store("lbl", quiet, 2, 0.0);
  storage::StorageSystem isi_store("isi", quiet, 3, 0.0);
  gridftp::GridFtpServer lbl(
      {.site = "lbl", .host = "dpsslx04.lbl.gov", .ip = "131.243.2.91"},
      lbl_store);
  gridftp::GridFtpServer isi(
      {.site = "isi", .host = "jet.isi.edu", .ip = "128.9.160.100"},
      isi_store);
  constexpr Bytes kFileSize = 10 * kMB;
  for (gridftp::GridFtpServer* s : {&lbl, &isi}) {
    s->fs().add_volume("/data");
    s->fs().add_file("/data/demo", kFileSize);
  }
  // Warmup makes LBL the predicted-best replica -- which is exactly the
  // one we then take down, forcing retries there and a failover to ISI.
  const std::string client_ip = "140.221.65.69";
  for (int i = 0; i < 5; ++i) {
    const double t = 100.0 * i;
    lbl.record_transfer(client_ip, "/data/demo", kFileSize, t, t + 1.25,
                        gridftp::Operation::kRead, 8, 1'000'000);
    isi.record_transfer(client_ip, "/data/demo", kFileSize, t, t + 5.0,
                        gridftp::Operation::kRead, 8, 1'000'000);
  }
  lbl.set_accepting(false);

  auto store = std::make_shared<history::HistoryStore>();
  store->attach(lbl.log());
  store->attach(isi.log());

  mds::GridFtpInfoProvider lbl_provider(
      lbl,
      {.base = *mds::Dn::parse("hostname=dpsslx04.lbl.gov, dc=lbl, o=grid")});
  mds::GridFtpInfoProvider isi_provider(
      isi, {.base = *mds::Dn::parse("hostname=jet.isi.edu, dc=isi, o=grid")});
  mds::Gris lbl_gris("lbl-gris", *mds::Dn::parse("dc=lbl, o=grid"));
  mds::Gris isi_gris("isi-gris", *mds::Dn::parse("dc=isi, o=grid"));
  lbl_gris.register_provider(&lbl_provider, 300.0);
  isi_gris.register_provider(&isi_provider, 300.0);
  mds::Giis giis("top");
  giis.register_gris(lbl_gris, 0.0, 1e9);
  giis.register_gris(isi_gris, 0.0, 1e9);
  replica::ReplicaCatalog catalog;
  catalog.add_replica("lfn://demo", {.site = "lbl",
                                     .server_host = "dpsslx04.lbl.gov",
                                     .path = "/data/demo"});
  catalog.add_replica("lfn://demo", {.site = "isi",
                                     .server_host = "jet.isi.edu",
                                     .path = "/data/demo"});

  gridftp::GridFtpClient client(sim, engine, topology, "anl", client_ip,
                                &anl_store);
  resilience::RetryPolicy policy;
  policy.max_attempts = 2;
  policy.base_backoff = 1.0;
  policy.jitter = 0.0;
  client.set_retry_policy(policy);
  replica::ReplicaBroker broker(catalog, giis,
                                replica::SelectionPolicy::kPredictedBest, 42);
  replica::FailoverFetcher fetcher(
      sim, broker, client, [&](const replica::PhysicalReplica& replica) {
        return replica.site == "lbl" ? &lbl : &isi;
      });

  replica::FetchOutcome outcome;
  bool delivered = false;
  sim.schedule_at(600.0, [&] {
    fetcher.fetch("lfn://demo", kFileSize, {},
                  [&](const replica::FetchOutcome& result) {
                    outcome = result;
                    delivered = true;
                  });
  });
  sim.run();

  ASSERT_TRUE(delivered);
  EXPECT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.failovers, 1);
  ASSERT_NE(outcome.trace_id, 0u);

  const auto spans = spans_of(outcome.trace_id);
  const auto names = names_of(spans);
  // Two rejected attempts on LBL, the successful one on ISI.
  EXPECT_EQ(names.at("client.attempt"), 3);
  EXPECT_EQ(names.at("client.op"), 2);        // one per replica tried
  EXPECT_GE(names.at("broker.select"), 2);    // re-ranked after the failure
  EXPECT_GE(names.at("mds.search"), 2);       // giis + gris per selection
  EXPECT_EQ(names.at("fetch"), 1);
  EXPECT_EQ(names.at("transfer"), 1);         // only ISI moved bytes
  EXPECT_GE(names.at("history.ingest"), 1);   // the completed transfer
  expect_valid_tree(spans);

  // Nothing from this request leaked into an untraced span.
  for (const auto& span : obs::Tracer::global().finished()) {
    if (span.name == "client.attempt" || span.name == "fetch") {
      EXPECT_EQ(span.trace_id, outcome.trace_id);
    }
  }
  obs::Tracer::global().clear();
}

// The ISSUE's e2e acceptance demo: a mid-run bandwidth shift must leave
// a joined, drift-alarmed, demotion-bearing quality report, and every
// fetch's trace must cover query -> selection -> transfer -> ingest.
TEST(TracePropagationTest, QualityDemoClosesTheLoop) {
  obs::Tracer::global().clear();
  const auto demo = core::run_quality_demo({});
  const auto report = demo.tracker->report();

  EXPECT_EQ(demo.ok, 40);
  EXPECT_EQ(demo.failed, 0);
  EXPECT_GE(report.join_rate(), 0.99);
  EXPECT_EQ(report.join_misses, 0u);
  EXPECT_GT(report.drift_events, 0u);
  EXPECT_GE(demo.completions_to_drift, 0);
  EXPECT_LE(demo.completions_to_drift, 25);
  EXPECT_GE(demo.drift_demotions, 1);

  ASSERT_EQ(demo.trace_ids.size(), 40u);
  const auto spans = spans_of(demo.trace_ids.back());
  const auto names = names_of(spans);
  for (const char* required :
       {"predict.query", "fetch", "broker.select", "mds.search", "client.op",
        "client.attempt", "transfer", "history.ingest"}) {
    EXPECT_TRUE(names.count(required)) << required;
  }
  expect_valid_tree(spans);

  // Each fetch ran under its own trace id.
  const std::set<std::uint64_t> unique(demo.trace_ids.begin(),
                                       demo.trace_ids.end());
  EXPECT_EQ(unique.size(), demo.trace_ids.size());
  obs::Tracer::global().clear();
}

}  // namespace
}  // namespace wadp
