#include "nws/sensor.hpp"

#include <gtest/gtest.h>

namespace wadp::nws {
namespace {

net::PathParams quiet_path() {
  net::PathParams p;
  p.bottleneck = 12'500'000.0;
  p.rtt = 0.055;
  p.load.base = 0.0;
  p.load.diurnal_amplitude = 0.0;
  p.load.ar_sigma = 0.0;
  p.load.episode_rate_per_hour = 0.0;
  return p;
}

struct Harness {
  sim::Simulator sim{998'000'000.0};
  net::FluidEngine engine{sim};
  net::Topology topology;
  net::PathModel* path;

  explicit Harness(net::PathParams params = quiet_path()) {
    path = &topology.add_path("a", "b", params, 1, sim.now());
  }
};

TEST(NwsSensorTest, ProbesEveryPeriod) {
  Harness h;
  NwsSensor sensor(h.sim, h.engine, *h.path, {.period = 300.0});
  h.sim.run_until(h.sim.now() + 3600.0);
  sensor.stop();
  // Immediate probe + one each 300 s: 13 received within the hour.
  EXPECT_GE(sensor.series().size(), 12u);
  EXPECT_LE(sensor.series().size(), 13u);
}

TEST(NwsSensorTest, ProbeBandwidthFarBelowSteadyRate) {
  // The Figs. 1-2 phenomenon: a 64 KB probe with a default buffer never
  // exits slow start and reads out well under 0.3 MB/s while the link
  // itself can carry 12.5 MB/s.
  Harness h;
  NwsSensor sensor(h.sim, h.engine, *h.path, {});
  h.sim.run_until(h.sim.now() + 1800.0);
  sensor.stop();
  ASSERT_FALSE(sensor.series().empty());
  for (const auto& m : sensor.series()) {
    EXPECT_LT(m.value, 300'000.0);
    EXPECT_GT(m.value, 10'000.0);
  }
}

TEST(NwsSensorTest, MeasurementMatchesClosedForm) {
  Harness h;
  const ProbeConfig config;
  NwsSensor sensor(h.sim, h.engine, *h.path, config);
  h.sim.run_until(h.sim.now() + 400.0);
  sensor.stop();
  ASSERT_FALSE(sensor.series().empty());
  const auto theoretical =
      NwsSensor::theoretical_idle_probe_bandwidth(*h.path, config);
  // Idle quiet path: the fluid engine should land near the analytic
  // slow-start value (it discretizes the ramp identically).
  EXPECT_NEAR(sensor.series().front().value, theoretical, 0.2 * theoretical);
}

TEST(NwsSensorTest, SeriesTimesAreMonotone) {
  Harness h;
  NwsSensor sensor(h.sim, h.engine, *h.path, {.period = 100.0});
  h.sim.run_until(h.sim.now() + 2000.0);
  sensor.stop();
  const auto& series = sensor.series();
  ASSERT_GE(series.size(), 2u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].time, series[i - 1].time);
  }
}

TEST(NwsSensorTest, StopEndsProbing) {
  Harness h;
  NwsSensor sensor(h.sim, h.engine, *h.path, {.period = 100.0});
  h.sim.run_until(h.sim.now() + 500.0);
  sensor.stop();
  // A probe already in flight may still complete and be recorded, but
  // no new probes launch after stop().
  h.sim.run_until(h.sim.now() + 5000.0);
  const auto count = sensor.series().size();
  h.sim.run_until(h.sim.now() + 5000.0);
  EXPECT_EQ(sensor.series().size(), count);
  EXPECT_LE(count, 7u);  // ~6 ticks before stop, plus at most one tail
}

TEST(NwsSensorTest, LoadedPathLowersProbeBandwidth) {
  net::PathParams loaded = quiet_path();
  loaded.load.base = 0.6;
  Harness quiet_h;
  Harness loaded_h(loaded);
  NwsSensor quiet_sensor(quiet_h.sim, quiet_h.engine, *quiet_h.path, {});
  NwsSensor loaded_sensor(loaded_h.sim, loaded_h.engine, *loaded_h.path, {});
  quiet_h.sim.run_until(quiet_h.sim.now() + 600.0);
  loaded_h.sim.run_until(loaded_h.sim.now() + 600.0);
  ASSERT_FALSE(quiet_sensor.series().empty());
  ASSERT_FALSE(loaded_sensor.series().empty());
  // Slow-start-bound probes react to load only mildly, but the loaded
  // value must not exceed the idle value.
  EXPECT_LE(loaded_sensor.series().front().value,
            quiet_sensor.series().front().value + 1.0);
}

TEST(NwsSensorTest, ProbeDurationRecorded) {
  Harness h;
  NwsSensor sensor(h.sim, h.engine, *h.path, {});
  h.sim.run_until(h.sim.now() + 400.0);
  sensor.stop();
  ASSERT_FALSE(sensor.series().empty());
  const auto& m = sensor.series().front();
  EXPECT_GT(m.duration, 0.0);
  EXPECT_NEAR(m.value, 64.0 * 1024.0 / m.duration, 1.0);
}

}  // namespace
}  // namespace wadp::nws
