#include "nws/memory.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "net/fabric.hpp"
#include "sim/simulator.hpp"

namespace wadp::nws {
namespace {

ProbeMeasurement probe(double t, double value) {
  return {.time = t, .value = value, .duration = 0.3};
}

TEST(NwsMemoryTest, StoreAndLookup) {
  NwsMemory memory;
  memory.store("bandwidth.lbl.anl", probe(1.0, 2e5));
  memory.store("bandwidth.lbl.anl", probe(2.0, 3e5));
  memory.store("bandwidth.isi.anl", probe(1.5, 1e5));
  EXPECT_EQ(memory.series("bandwidth.lbl.anl").size(), 2u);
  EXPECT_EQ(memory.series("bandwidth.isi.anl").size(), 1u);
  EXPECT_TRUE(memory.series("bandwidth.unknown").empty());
  EXPECT_EQ(memory.total_measurements(), 3u);
  EXPECT_EQ(memory.experiments().size(), 2u);
}

TEST(NwsMemoryTest, BoundedRetentionDropsOldest) {
  NwsMemory memory(/*max_measurements=*/3);
  for (int i = 0; i < 6; ++i) {
    memory.store("x", probe(static_cast<double>(i), 1e5 + i));
  }
  const auto series = memory.series("x");
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series.front().time, 3.0);
  EXPECT_DOUBLE_EQ(series.back().time, 5.0);
}

TEST(NwsMemoryTest, UnboundedWhenZero) {
  NwsMemory memory(0);
  for (int i = 0; i < 5000; ++i) {
    memory.store("x", probe(static_cast<double>(i), 1e5));
  }
  EXPECT_EQ(memory.series("x").size(), 5000u);
}

TEST(NwsMemoryTest, OutOfOrderStoreAborts) {
  NwsMemory memory;
  memory.store("x", probe(10.0, 1e5));
  EXPECT_DEATH(memory.store("x", probe(5.0, 1e5)), "time order");
}

TEST(NwsMemoryTest, AbsorbIsIncremental) {
  sim::Simulator sim(0.0);
  net::FluidEngine engine(sim);
  net::Topology topology;
  net::PathParams params;
  params.load.base = 0.0;
  params.load.diurnal_amplitude = 0.0;
  params.load.ar_sigma = 0.0;
  params.load.episode_rate_per_hour = 0.0;
  auto& path = topology.add_path("a", "b", params, 1, 0.0);
  NwsSensor sensor(sim, engine, path, {.period = 100.0});
  NwsMemory memory;

  sim.run_until(350.0);
  memory.absorb("bandwidth.a.b", sensor);
  const auto first_count = memory.series("bandwidth.a.b").size();
  EXPECT_GE(first_count, 3u);

  sim.run_until(700.0);
  memory.absorb("bandwidth.a.b", sensor);
  EXPECT_GT(memory.series("bandwidth.a.b").size(), first_count);
  // Absorbing again without new probes adds nothing.
  const auto count = memory.series("bandwidth.a.b").size();
  memory.absorb("bandwidth.a.b", sensor);
  EXPECT_EQ(memory.series("bandwidth.a.b").size(), count);
}

TEST(NwsMemoryTest, TraceTextRoundTrip) {
  NwsMemory memory;
  memory.store("x", probe(100.5, 212'345.678));
  memory.store("x", probe(400.25, 190'000.0));
  const auto text = memory.to_trace_text("x");
  const auto parsed = NwsMemory::parse_trace_text(text);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_NEAR(parsed[0].time, 100.5, 1e-3);
  EXPECT_NEAR(parsed[0].value, 212'345.678, 1e-2);
}

TEST(NwsMemoryTest, ParseSkipsGarbage) {
  const auto parsed = NwsMemory::parse_trace_text(
      "100 2e5\nnot a line\n200\n300 1e5\n");
  EXPECT_EQ(parsed.size(), 2u);
}

TEST(NwsMemoryTest, FileRoundTripPreservesExperiments) {
  NwsMemory memory;
  memory.store("bandwidth.lbl.anl", probe(1.0, 2e5));
  memory.store("bandwidth.lbl.anl", probe(2.0, 2.1e5));
  memory.store("bandwidth.isi.anl", probe(1.0, 1.5e5));
  const std::string path = ::testing::TempDir() + "/nws_memory_test.txt";
  ASSERT_TRUE(memory.save(path).ok());
  const auto loaded = NwsMemory::load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_EQ(loaded.value().series("bandwidth.lbl.anl").size(), 2u);
  EXPECT_EQ(loaded.value().series("bandwidth.isi.anl").size(), 1u);
  std::remove(path.c_str());
}

TEST(NwsMemoryTest, LoadMissingFileFails) {
  EXPECT_FALSE(NwsMemory::load("/no/such/file").ok());
}

}  // namespace
}  // namespace wadp::nws
