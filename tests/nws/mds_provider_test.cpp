#include "nws/mds_provider.hpp"

#include <gtest/gtest.h>

#include "mds/giis.hpp"

namespace wadp::nws {
namespace {

ProbeMeasurement probe(double t, double value) {
  return {.time = t, .value = value, .duration = 0.3};
}

NwsProviderConfig config() {
  return {.base = *mds::Dn::parse("hostname=nws.lbl.gov, dc=lbl, o=grid")};
}

TEST(NwsInfoProviderTest, PublishesOneEntryPerExperiment) {
  NwsMemory memory;
  for (int i = 0; i < 10; ++i) {
    memory.store("bandwidth.lbl.anl", probe(i * 300.0, 2e5));
    memory.store("bandwidth.isi.anl", probe(i * 300.0 + 1, 1.5e5));
  }
  NwsInfoProvider provider(memory, config());
  const auto entries = provider.provide(3000.0);
  ASSERT_EQ(entries.size(), 2u);
  for (const auto& entry : entries) {
    EXPECT_EQ(entry.object_classes().front(), "nwsNetwork");
    EXPECT_TRUE(entry.has("latestbandwidth"));
    EXPECT_TRUE(entry.has("forecastbandwidth"));
  }
}

TEST(NwsInfoProviderTest, ForecastMatchesConstantSeries) {
  NwsMemory memory;
  for (int i = 0; i < 20; ++i) {
    memory.store("bandwidth.lbl.anl", probe(i * 300.0, 200'000.0));
  }
  NwsInfoProvider provider(memory, config());
  const auto entries = provider.provide(6300.0);
  ASSERT_EQ(entries.size(), 1u);
  // 200000 B/s = 200 KB/s.
  EXPECT_NEAR(*entries[0].get_double("forecastbandwidth"), 200.0, 0.5);
  EXPECT_NEAR(*entries[0].get_double("latestbandwidth"), 200.0, 0.5);
  EXPECT_EQ(*entries[0].get("measurements"), "20");
}

TEST(NwsInfoProviderTest, EntriesValidateAgainstSchema) {
  NwsMemory memory;
  memory.store("bandwidth.lbl.anl", probe(0.0, 2e5));
  NwsInfoProvider provider(memory, config());
  const auto schema = NwsInfoProvider::schema();
  for (const auto& entry : provider.provide(100.0)) {
    EXPECT_EQ(schema.validate(entry), "") << entry.to_ldif();
  }
}

TEST(NwsInfoProviderTest, WorksThroughGrisInquiry) {
  NwsMemory memory;
  for (int i = 0; i < 5; ++i) {
    memory.store("bandwidth.lbl.anl", probe(i * 300.0, 2.5e5));
  }
  NwsInfoProvider provider(memory, config());
  mds::Gris gris("lbl-gris", *mds::Dn::parse("dc=lbl, o=grid"));
  gris.register_provider(&provider, 300.0);
  const auto results = gris.search(
      1500.0, *mds::Filter::parse(
                  "(&(objectclass=nwsNetwork)(latestbandwidth>=200))"));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(*results[0].get("experiment"), "bandwidth.lbl.anl");
}

TEST(NwsInfoProviderTest, EmptyMemoryPublishesNothing) {
  NwsMemory memory;
  NwsInfoProvider provider(memory, config());
  EXPECT_TRUE(provider.provide(0.0).empty());
}

}  // namespace
}  // namespace wadp::nws
