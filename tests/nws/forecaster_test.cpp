#include "nws/forecaster.hpp"

#include <gtest/gtest.h>

namespace wadp::nws {
namespace {

ProbeMeasurement probe(double t, double value) {
  return {.time = t, .value = value, .duration = 0.3};
}

TEST(NwsForecasterBatteryTest, HasClassicMembers) {
  const auto battery = nws_forecaster_battery();
  EXPECT_GE(battery.size(), 5u);
  EXPECT_NE(battery.find("nws.LV"), nullptr);
  EXPECT_NE(battery.find("nws.MED10"), nullptr);
  EXPECT_NE(battery.find("nws.AVG"), nullptr);
}

TEST(NwsForecasterTest, EmptyHasNoForecast) {
  NwsForecaster forecaster;
  EXPECT_FALSE(forecaster.forecast(0.0).has_value());
}

TEST(NwsForecasterTest, ForecastsConstantSeriesExactly) {
  NwsForecaster forecaster;
  for (int i = 0; i < 20; ++i) forecaster.observe(probe(i * 300.0, 250'000.0));
  const auto f = forecaster.forecast(6300.0);
  ASSERT_TRUE(f.has_value());
  EXPECT_NEAR(*f, 250'000.0, 1.0);
}

TEST(NwsForecasterTest, DynamicSelectionAdapts) {
  // Jumpy series with a persistent level change: windowed forecasters
  // beat the all-history mean; the forecaster must not stay glued to it.
  NwsForecaster forecaster;
  for (int i = 0; i < 30; ++i) forecaster.observe(probe(i * 300.0, 100'000.0));
  for (int i = 30; i < 60; ++i) forecaster.observe(probe(i * 300.0, 220'000.0));
  const auto f = forecaster.forecast(60 * 300.0);
  ASSERT_TRUE(f.has_value());
  // A pure all-history mean would sit at 160k; adaptation pulls higher.
  EXPECT_GT(*f, 180'000.0);
}

TEST(HybridNwsPredictorTest, ScalesNwsLevelByObservedRatio) {
  // Probes tick at a level of 200 KB/s while GridFTP transfers achieve
  // 8 MB/s (a 40x ratio); when the probe level halves, the hybrid
  // prediction should halve too.
  std::vector<ProbeMeasurement> probes;
  for (int i = 0; i < 50; ++i) probes.push_back(probe(i * 300.0, 200'000.0));
  for (int i = 50; i < 100; ++i) probes.push_back(probe(i * 300.0, 100'000.0));

  std::vector<predict::Observation> gridftp;
  for (int i = 0; i < 10; ++i) {
    gridftp.push_back({.time = 3000.0 + i * 900.0,
                       .value = 8'000'000.0,
                       .file_size = 500 * kMB});
  }

  HybridNwsPredictor hybrid("HYB", &probes);
  const auto late = hybrid.predict(
      gridftp, {.time = 90 * 300.0, .file_size = 500 * kMB});
  ASSERT_TRUE(late.has_value());
  EXPECT_NEAR(*late, 4'000'000.0, 400'000.0);  // half the old level
}

TEST(HybridNwsPredictorTest, NoProbesMeansNoPrediction) {
  std::vector<ProbeMeasurement> probes;
  std::vector<predict::Observation> gridftp = {
      {.time = 100.0, .value = 5e6, .file_size = kMB}};
  HybridNwsPredictor hybrid("HYB", &probes);
  EXPECT_FALSE(hybrid.predict(gridftp, {.time = 200.0, .file_size = kMB})
                   .has_value());
}

TEST(HybridNwsPredictorTest, NoGridFtpHistoryMeansNoPrediction) {
  std::vector<ProbeMeasurement> probes = {probe(0.0, 1e5), probe(300.0, 1e5)};
  HybridNwsPredictor hybrid("HYB", &probes);
  EXPECT_FALSE(
      hybrid.predict({}, {.time = 400.0, .file_size = kMB}).has_value());
}

TEST(HybridNwsPredictorTest, NoLookaheadIntoFutureProbes) {
  // Query at t=1000 must ignore probes after t=1000.
  std::vector<ProbeMeasurement> probes = {probe(500.0, 1e5),
                                          probe(2000.0, 9e9)};
  std::vector<predict::Observation> gridftp = {
      {.time = 600.0, .value = 4e6, .file_size = kMB},
      {.time = 700.0, .value = 4e6, .file_size = kMB}};
  HybridNwsPredictor hybrid("HYB", &probes);
  const auto p = hybrid.predict(gridftp, {.time = 1000.0, .file_size = kMB});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(*p, 4e6, 1e5);  // ratio 40x against the 1e5 level
}

TEST(HybridNwsPredictorTest, MedianRatioRejectsOneOffOutlier) {
  std::vector<ProbeMeasurement> probes;
  for (int i = 0; i < 40; ++i) probes.push_back(probe(i * 100.0, 1e5));
  std::vector<predict::Observation> gridftp;
  for (int i = 0; i < 9; ++i) {
    gridftp.push_back({.time = 500.0 + i * 300.0,
                       .value = 4e6,
                       .file_size = kMB});
  }
  // One transfer that raced a congestion episode the probes missed.
  gridftp.push_back({.time = 3300.0, .value = 4e4, .file_size = kMB});
  HybridNwsPredictor hybrid("HYB", &probes);
  const auto p = hybrid.predict(gridftp, {.time = 3900.0, .file_size = kMB});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(*p, 4e6, 2e5);
}

}  // namespace
}  // namespace wadp::nws
