#include "mds/filter.hpp"

#include <gtest/gtest.h>

namespace wadp::mds {
namespace {

Entry perf_entry() {
  Entry e(*Dn::parse("cn=140.221.65.69, hostname=dpsslx04.lbl.gov, o=grid"));
  e.add("objectclass", "GridFTPPerfInfo");
  e.set("cn", "140.221.65.69");
  e.set("hostname", "dpsslx04.lbl.gov");
  e.set("avgrdbandwidth", "6062");
  e.set("minrdbandwidth", "1462");
  return e;
}

bool matches(const std::string& filter_text, const Entry& entry) {
  const auto filter = Filter::parse(filter_text);
  EXPECT_TRUE(filter.has_value()) << filter_text;
  return filter && filter->matches(entry);
}

TEST(FilterTest, SimpleEquality) {
  EXPECT_TRUE(matches("(cn=140.221.65.69)", perf_entry()));
  EXPECT_FALSE(matches("(cn=1.1.1.1)", perf_entry()));
}

TEST(FilterTest, EqualityIsCaseInsensitive) {
  EXPECT_TRUE(matches("(hostname=DPSSLX04.LBL.GOV)", perf_entry()));
  EXPECT_TRUE(matches("(OBJECTCLASS=gridftpperfinfo)", perf_entry()));
}

TEST(FilterTest, Presence) {
  EXPECT_TRUE(matches("(avgrdbandwidth=*)", perf_entry()));
  EXPECT_FALSE(matches("(maxwrbandwidth=*)", perf_entry()));
}

TEST(FilterTest, WildcardMatching) {
  EXPECT_TRUE(matches("(hostname=*.lbl.gov)", perf_entry()));
  EXPECT_TRUE(matches("(hostname=dpsslx*)", perf_entry()));
  EXPECT_TRUE(matches("(hostname=*lbl*)", perf_entry()));
  EXPECT_FALSE(matches("(hostname=*.anl.gov)", perf_entry()));
  EXPECT_TRUE(matches("(cn=140.*.65.*)", perf_entry()));
}

TEST(FilterTest, NumericComparisons) {
  EXPECT_TRUE(matches("(avgrdbandwidth>=5000)", perf_entry()));
  EXPECT_FALSE(matches("(avgrdbandwidth>=7000)", perf_entry()));
  EXPECT_TRUE(matches("(avgrdbandwidth<=7000)", perf_entry()));
  EXPECT_TRUE(matches("(avgrdbandwidth>=6062)", perf_entry()));  // inclusive
}

TEST(FilterTest, LexicographicComparisonFallback) {
  Entry e;
  e.set("name", "beta");
  EXPECT_TRUE(matches("(name>=alpha)", e));
  EXPECT_FALSE(matches("(name>=gamma)", e));
}

TEST(FilterTest, AndComposite) {
  EXPECT_TRUE(matches(
      "(&(objectclass=GridFTPPerfInfo)(avgrdbandwidth>=5000))", perf_entry()));
  EXPECT_FALSE(matches(
      "(&(objectclass=GridFTPPerfInfo)(avgrdbandwidth>=9000))", perf_entry()));
}

TEST(FilterTest, OrComposite) {
  EXPECT_TRUE(matches("(|(cn=wrong)(hostname=dpsslx04.lbl.gov))", perf_entry()));
  EXPECT_FALSE(matches("(|(cn=wrong)(hostname=wrong))", perf_entry()));
}

TEST(FilterTest, NotComposite) {
  EXPECT_TRUE(matches("(!(cn=1.1.1.1))", perf_entry()));
  EXPECT_FALSE(matches("(!(cn=140.221.65.69))", perf_entry()));
}

TEST(FilterTest, NestedComposites) {
  EXPECT_TRUE(matches(
      "(&(objectclass=*)(|(hostname=*.anl.gov)(hostname=*.lbl.gov))"
      "(!(avgrdbandwidth<=1000)))",
      perf_entry()));
}

TEST(FilterTest, MultiValuedAttributeAnyMatch) {
  Entry e;
  e.add("volumes", "/home/ftp");
  e.add("volumes", "/data");
  EXPECT_TRUE(matches("(volumes=/data)", e));
  EXPECT_TRUE(matches("(volumes=/home/*)", e));
  EXPECT_FALSE(matches("(volumes=/tmp)", e));
}

TEST(FilterTest, MissingAttributeNeverMatches) {
  Entry e;
  EXPECT_FALSE(matches("(anything=x)", e));
  EXPECT_FALSE(matches("(anything>=1)", e));
}

TEST(FilterTest, MatchAllMatchesAnyEntryWithObjectClass) {
  const auto all = Filter::match_all();
  EXPECT_TRUE(all.matches(perf_entry()));
  Entry classless;
  classless.set("x", "1");
  EXPECT_FALSE(all.matches(classless));
}

TEST(FilterTest, ParseErrors) {
  EXPECT_FALSE(Filter::parse("").has_value());
  EXPECT_FALSE(Filter::parse("cn=x").has_value());        // no parens
  EXPECT_FALSE(Filter::parse("(cn=x").has_value());       // unbalanced
  EXPECT_FALSE(Filter::parse("(&)").has_value());         // empty composite
  EXPECT_FALSE(Filter::parse("(cn)").has_value());        // no operator
  EXPECT_FALSE(Filter::parse("(cn=)").has_value());       // empty value
  EXPECT_FALSE(Filter::parse("(>=5)").has_value());       // no attribute
  EXPECT_FALSE(Filter::parse("(cn=x))").has_value());     // trailing junk
  EXPECT_FALSE(Filter::parse("(cn>5)").has_value());      // bare '>'
}

TEST(FilterTest, ToStringRoundTrip) {
  const std::string text = "(&(objectclass=GridFTPPerfInfo)(!(cn=x))"
                           "(|(a>=1)(b<=2)(c=*)))";
  const auto filter = Filter::parse(text);
  ASSERT_TRUE(filter.has_value());
  const auto reparsed = Filter::parse(filter->to_string());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(filter->to_string(), reparsed->to_string());
}

TEST(FilterTest, WhitespaceTolerated) {
  EXPECT_TRUE(matches("( & ( cn=140.221.65.69 ) ( hostname=* ) )",
                      perf_entry()));
}

}  // namespace
}  // namespace wadp::mds
