#include "mds/directory.hpp"

#include <gtest/gtest.h>

namespace wadp::mds {
namespace {

Entry make_entry(const std::string& dn_text, const std::string& cn) {
  Entry e(*Dn::parse(dn_text));
  e.add("objectclass", "Thing");
  e.set("cn", cn);
  return e;
}

struct DirectoryFixture : ::testing::Test {
  Directory dir;
  void SetUp() override {
    dir.upsert(make_entry("o=grid", "root"));
    dir.upsert(make_entry("dc=lbl, o=grid", "lbl"));
    dir.upsert(make_entry("cn=a, dc=lbl, o=grid", "a"));
    dir.upsert(make_entry("cn=b, dc=lbl, o=grid", "b"));
    dir.upsert(make_entry("dc=anl, o=grid", "anl"));
    dir.upsert(make_entry("cn=c, dc=anl, o=grid", "c"));
  }
};

TEST_F(DirectoryFixture, LookupByDn) {
  const auto* e = dir.lookup(*Dn::parse("cn=a, dc=lbl, o=grid"));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(*e->get("cn"), "a");
  EXPECT_EQ(dir.lookup(*Dn::parse("cn=zz, o=grid")), nullptr);
}

TEST_F(DirectoryFixture, LookupIsCaseInsensitive) {
  EXPECT_NE(dir.lookup(*Dn::parse("CN=A, DC=LBL, O=GRID")), nullptr);
}

TEST_F(DirectoryFixture, UpsertReplaces) {
  auto e = make_entry("cn=a, dc=lbl, o=grid", "replaced");
  dir.upsert(e);
  EXPECT_EQ(dir.size(), 6u);
  EXPECT_EQ(*dir.lookup(e.dn())->get("cn"), "replaced");
}

TEST_F(DirectoryFixture, BaseScopeReturnsOnlyBase) {
  const auto results = dir.search(*Dn::parse("dc=lbl, o=grid"),
                                  Directory::Scope::kBase, Filter::match_all());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(*results[0].get("cn"), "lbl");
}

TEST_F(DirectoryFixture, OneLevelScopeReturnsDirectChildren) {
  const auto results =
      dir.search(*Dn::parse("dc=lbl, o=grid"), Directory::Scope::kOneLevel,
                 Filter::match_all());
  EXPECT_EQ(results.size(), 2u);  // cn=a and cn=b, not dc=lbl itself
}

TEST_F(DirectoryFixture, SubtreeScopeIncludesBaseAndDescendants) {
  const auto results = dir.search(*Dn::parse("dc=lbl, o=grid"),
                                  Directory::Scope::kSubtree,
                                  Filter::match_all());
  EXPECT_EQ(results.size(), 3u);
  const auto all = dir.search(*Dn::parse("o=grid"),
                              Directory::Scope::kSubtree, Filter::match_all());
  EXPECT_EQ(all.size(), 6u);
}

TEST_F(DirectoryFixture, SearchAppliesFilter) {
  const auto filter = Filter::parse("(cn=b)");
  const auto results = dir.search(*Dn::parse("o=grid"),
                                  Directory::Scope::kSubtree, *filter);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].dn().to_string(), "cn=b, dc=lbl, o=grid");
}

TEST_F(DirectoryFixture, RemoveSingle) {
  EXPECT_TRUE(dir.remove(*Dn::parse("cn=a, dc=lbl, o=grid")));
  EXPECT_FALSE(dir.remove(*Dn::parse("cn=a, dc=lbl, o=grid")));
  EXPECT_EQ(dir.size(), 5u);
}

TEST_F(DirectoryFixture, RemoveSubtree) {
  EXPECT_EQ(dir.remove_subtree(*Dn::parse("dc=lbl, o=grid")), 3u);
  EXPECT_EQ(dir.size(), 3u);
  EXPECT_EQ(dir.lookup(*Dn::parse("cn=a, dc=lbl, o=grid")), nullptr);
  EXPECT_NE(dir.lookup(*Dn::parse("cn=c, dc=anl, o=grid")), nullptr);
}

TEST(DirectoryTest, EmptyDirectory) {
  Directory dir;
  EXPECT_TRUE(dir.empty());
  EXPECT_TRUE(dir.search(*Dn::parse("o=grid"), Directory::Scope::kSubtree,
                         Filter::match_all())
                  .empty());
}

}  // namespace
}  // namespace wadp::mds
