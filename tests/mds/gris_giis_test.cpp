#include <gtest/gtest.h>

#include "mds/giis.hpp"
#include "mds/gris.hpp"

namespace wadp::mds {
namespace {

/// Scriptable provider: counts provide() calls and serves entries under
/// a fixed base.
class FakeProvider final : public InformationProvider {
 public:
  FakeProvider(std::string name, Dn base)
      : name_(std::move(name)), base_(std::move(base)) {}

  std::string provider_name() const override { return name_; }

  std::vector<Entry> provide(SimTime now) override {
    ++calls_;
    std::vector<Entry> out;
    for (int i = 0; i < entry_count_; ++i) {
      Entry e(base_.child({"cn", name_ + std::to_string(i)}));
      e.add("objectclass", "Fake");
      e.set("cn", name_ + std::to_string(i));
      e.set("generation", std::to_string(calls_));
      e.set("asof", std::to_string(now));
      out.push_back(std::move(e));
    }
    return out;
  }

  int calls() const { return calls_; }
  void set_entry_count(int n) { entry_count_ = n; }

 private:
  std::string name_;
  Dn base_;
  int calls_ = 0;
  int entry_count_ = 2;
};

Dn lbl_suffix() { return *Dn::parse("dc=lbl, dc=gov, o=grid"); }
Dn anl_suffix() { return *Dn::parse("dc=anl, dc=gov, o=grid"); }

TEST(GrisTest, LazyRefreshOnFirstSearch) {
  Gris gris("lbl-gris", lbl_suffix());
  FakeProvider provider("p", lbl_suffix());
  gris.register_provider(&provider, 60.0);
  EXPECT_EQ(provider.calls(), 0);
  const auto results = gris.search(100.0, Filter::match_all());
  EXPECT_EQ(provider.calls(), 1);
  EXPECT_EQ(results.size(), 2u);
}

TEST(GrisTest, CacheServesWithinTtl) {
  Gris gris("g", lbl_suffix());
  FakeProvider provider("p", lbl_suffix());
  gris.register_provider(&provider, 60.0);
  gris.search(100.0, Filter::match_all());
  gris.search(130.0, Filter::match_all());  // within TTL
  EXPECT_EQ(provider.calls(), 1);
  gris.search(161.0, Filter::match_all());  // expired
  EXPECT_EQ(provider.calls(), 2);
}

TEST(GrisTest, RefreshReplacesStaleEntries) {
  Gris gris("g", lbl_suffix());
  FakeProvider provider("p", lbl_suffix());
  gris.register_provider(&provider, 10.0);
  auto first = gris.search(0.0, Filter::match_all());
  EXPECT_EQ(*first[0].get("generation"), "1");
  provider.set_entry_count(1);  // provider now publishes fewer entries
  auto second = gris.search(20.0, Filter::match_all());
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(*second[0].get("generation"), "2");
  EXPECT_EQ(gris.entry_count(), 1u);  // the dropped DN is gone
}

TEST(GrisTest, MultipleProvidersMerge) {
  Gris gris("g", lbl_suffix());
  FakeProvider a("a", lbl_suffix());
  FakeProvider b("b", lbl_suffix());
  gris.register_provider(&a, 60.0);
  gris.register_provider(&b, 60.0);
  EXPECT_EQ(gris.provider_count(), 2u);
  EXPECT_EQ(gris.search(0.0, Filter::match_all()).size(), 4u);
}

TEST(GrisTest, SearchWithFilterAndScope) {
  Gris gris("g", lbl_suffix());
  FakeProvider provider("p", lbl_suffix());
  gris.register_provider(&provider, 60.0);
  const auto filter = Filter::parse("(cn=p1)");
  const auto results = gris.search(0.0, lbl_suffix(),
                                   Directory::Scope::kSubtree, *filter);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(*results[0].get("cn"), "p1");
}

TEST(GiisTest, SoftStateRegistrationExpires) {
  Giis giis("top");
  Gris gris("g", lbl_suffix());
  FakeProvider provider("p", lbl_suffix());
  gris.register_provider(&provider, 60.0);
  giis.register_gris(gris, /*now=*/0.0, /*ttl=*/100.0);
  EXPECT_EQ(giis.live_registrations(50.0), 1u);
  EXPECT_EQ(giis.search(50.0, Filter::match_all()).size(), 2u);
  // Registration lapses without renewal.
  EXPECT_EQ(giis.live_registrations(150.0), 0u);
  EXPECT_TRUE(giis.search(150.0, Filter::match_all()).empty());
}

TEST(GiisTest, RenewalExtendsRegistration) {
  Giis giis("top");
  Gris gris("g", lbl_suffix());
  giis.register_gris(gris, 0.0, 100.0);
  giis.register_gris(gris, 90.0, 100.0);  // renewal, not duplicate
  EXPECT_EQ(giis.live_registrations(150.0), 1u);
  EXPECT_EQ(giis.live_registrations(250.0), 0u);
}

TEST(GiisTest, ExplicitDeregistration) {
  Giis giis("top");
  Gris gris("g", lbl_suffix());
  giis.register_gris(gris, 0.0, 1000.0);
  EXPECT_TRUE(giis.deregister_gris(gris));
  EXPECT_FALSE(giis.deregister_gris(gris));
  EXPECT_EQ(giis.live_registrations(1.0), 0u);
}

TEST(GiisTest, MergesAcrossSites) {
  Giis giis("top");
  Gris lbl("lbl-gris", lbl_suffix());
  Gris anl("anl-gris", anl_suffix());
  FakeProvider lbl_p("lbl", lbl_suffix());
  FakeProvider anl_p("anl", anl_suffix());
  lbl.register_provider(&lbl_p, 60.0);
  anl.register_provider(&anl_p, 60.0);
  giis.register_gris(lbl, 0.0);
  giis.register_gris(anl, 0.0);
  EXPECT_EQ(giis.search(1.0, Filter::match_all()).size(), 4u);
}

TEST(GiisTest, ScopedInquiryRoutesToMatchingSuffix) {
  Giis giis("top");
  Gris lbl("lbl-gris", lbl_suffix());
  Gris anl("anl-gris", anl_suffix());
  FakeProvider lbl_p("lbl", lbl_suffix());
  FakeProvider anl_p("anl", anl_suffix());
  lbl.register_provider(&lbl_p, 60.0);
  anl.register_provider(&anl_p, 60.0);
  giis.register_gris(lbl, 0.0);
  giis.register_gris(anl, 0.0);
  const auto results = giis.search(1.0, lbl_suffix(),
                                   Directory::Scope::kSubtree,
                                   Filter::match_all());
  EXPECT_EQ(results.size(), 2u);
  // Only the LBL provider should have been consulted.
  EXPECT_EQ(lbl_p.calls(), 1);
  EXPECT_EQ(anl_p.calls(), 0);
}

TEST(GiisTest, DefaultTtlApplies) {
  Giis giis("top", 600.0);
  Gris gris("g", lbl_suffix());
  giis.register_gris(gris, 0.0);  // ttl = default 600
  EXPECT_EQ(giis.live_registrations(599.0), 1u);
  EXPECT_EQ(giis.live_registrations(601.0), 0u);
}

}  // namespace
}  // namespace wadp::mds
