#include <gtest/gtest.h>

#include "mds/ldap.hpp"

namespace wadp::mds {
namespace {

Entry sample_entry() {
  Entry e(*Dn::parse("cn=140.221.65.69, hostname=dpsslx04.lbl.gov, o=grid"));
  e.add("objectclass", "GridFTPPerfInfo");
  e.set("cn", "140.221.65.69");
  e.set("avgrdbandwidth", "6062");
  e.add("volumes", "/home/ftp");
  e.add("volumes", "/data");
  return e;
}

TEST(LdifTest, RoundTripPreservesEverything) {
  const auto original = sample_entry();
  const auto parsed = Entry::from_ldif(original.to_ldif());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dn(), original.dn());
  EXPECT_EQ(*parsed->get("cn"), "140.221.65.69");
  EXPECT_EQ(*parsed->get_double("avgrdbandwidth"), 6062.0);
  ASSERT_EQ(parsed->get_all("volumes").size(), 2u);
  EXPECT_EQ(parsed->get_all("volumes")[1], "/data");
  EXPECT_EQ(parsed->object_classes().size(), 1u);
}

TEST(LdifTest, RejectsMalformedBlocks) {
  EXPECT_FALSE(Entry::from_ldif("").has_value());
  EXPECT_FALSE(Entry::from_ldif("cn: x\n").has_value());       // no dn first
  EXPECT_FALSE(Entry::from_ldif("dn: \n").has_value());        // empty dn
  EXPECT_FALSE(Entry::from_ldif("dn: notadn\n").has_value());  // bad dn
  EXPECT_FALSE(Entry::from_ldif("dn: cn=x\nnocolon\n").has_value());
  EXPECT_FALSE(
      Entry::from_ldif("dn: cn=x\ndn: cn=y\n").has_value());   // dup dn
}

TEST(LdifTest, ValuesMayContainColons) {
  const auto parsed =
      Entry::from_ldif("dn: cn=x\ngridftpurl: gsiftp://h:2811\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed->get("gridftpurl"), "gsiftp://h:2811");
}

TEST(LdifTest, ParseMultiEntryBody) {
  const std::string body =
      "dn: cn=a, o=grid\n"
      "objectclass: T\n"
      "\n"
      "garbage block without dn\n"
      "\n"
      "dn: cn=b, o=grid\n"
      "objectclass: T\n";
  const auto result = parse_ldif(body);
  EXPECT_EQ(result.entries.size(), 2u);
  EXPECT_EQ(result.skipped_blocks, 1u);
  EXPECT_EQ(*result.entries[1].get("objectclass"), "T");
}

TEST(LdifTest, EmptyBody) {
  const auto result = parse_ldif("\n\n   \n");
  EXPECT_TRUE(result.entries.empty());
  EXPECT_EQ(result.skipped_blocks, 0u);
}

TEST(LdifTest, ProviderOutputStyleRoundTrip) {
  // Multi-entry rendering concatenated with blank lines parses back.
  Entry a = sample_entry();
  Entry b(*Dn::parse("cn=other, o=grid"));
  b.add("objectclass", "GridFTPPerfInfo");
  b.set("cn", "other");
  const auto body = a.to_ldif() + "\n" + b.to_ldif();
  const auto result = parse_ldif(body);
  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_EQ(result.entries[0].dn(), a.dn());
  EXPECT_EQ(result.entries[1].dn(), b.dn());
}

}  // namespace
}  // namespace wadp::mds
