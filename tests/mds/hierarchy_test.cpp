// Hierarchical GIIS tests: GIIS-into-GIIS registration (Fig. 5's tiered
// index servers) and cycle safety.
#include <gtest/gtest.h>

#include "mds/giis.hpp"

namespace wadp::mds {
namespace {

class CountingProvider final : public InformationProvider {
 public:
  CountingProvider(std::string name, Dn base)
      : name_(std::move(name)), base_(std::move(base)) {}
  std::string provider_name() const override { return name_; }
  std::vector<Entry> provide(SimTime) override {
    Entry e(base_.child({"cn", name_}));
    e.add("objectclass", "Thing");
    e.set("cn", name_);
    return {e};
  }

 private:
  std::string name_;
  Dn base_;
};

struct Hierarchy {
  // site GRIS -> regional GIIS -> top GIIS, two regions.
  Gris lbl_gris{"lbl-gris", *Dn::parse("dc=lbl, dc=gov, o=grid")};
  Gris anl_gris{"anl-gris", *Dn::parse("dc=anl, dc=gov, o=grid")};
  Gris isi_gris{"isi-gris", *Dn::parse("dc=isi, dc=edu, o=grid")};
  CountingProvider lbl_p{"lbl", *Dn::parse("dc=lbl, dc=gov, o=grid")};
  CountingProvider anl_p{"anl", *Dn::parse("dc=anl, dc=gov, o=grid")};
  CountingProvider isi_p{"isi", *Dn::parse("dc=isi, dc=edu, o=grid")};
  Giis doe{"doe-giis"};   // region 1: lbl + anl
  Giis edu{"edu-giis"};   // region 2: isi
  Giis top{"top-giis"};

  Hierarchy() {
    lbl_gris.register_provider(&lbl_p, 60.0);
    anl_gris.register_provider(&anl_p, 60.0);
    isi_gris.register_provider(&isi_p, 60.0);
    // Leaf registrations are long-lived; only doe's registration at the
    // top has the short TTL that MidTierExpiryDropsItsBranch exercises.
    doe.register_gris(lbl_gris, 0.0, 10'000.0);
    doe.register_gris(anl_gris, 0.0, 10'000.0);
    edu.register_gris(isi_gris, 0.0, 10'000.0);
    top.register_giis(doe, 0.0, 1000.0);
    top.register_giis(edu, 0.0, 10'000.0);
  }
};

TEST(GiisHierarchyTest, TopLevelSeesEverything) {
  Hierarchy h;
  EXPECT_EQ(h.top.search(1.0, Filter::match_all()).size(), 3u);
}

TEST(GiisHierarchyTest, ScopedInquiryRoutesThroughTheRightBranch) {
  Hierarchy h;
  const auto results = h.top.search(1.0, *Dn::parse("dc=isi, dc=edu, o=grid"),
                                    Directory::Scope::kSubtree,
                                    Filter::match_all());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(*results[0].get("cn"), "isi");
}

TEST(GiisHierarchyTest, CoversDelegatesThroughTheTree) {
  Hierarchy h;
  EXPECT_TRUE(h.top.covers(*Dn::parse("dc=lbl, dc=gov, o=grid")));
  EXPECT_TRUE(h.doe.covers(*Dn::parse("dc=anl, dc=gov, o=grid")));
  EXPECT_FALSE(h.doe.covers(*Dn::parse("dc=isi, dc=edu, o=grid")));
}

TEST(GiisHierarchyTest, MidTierExpiryDropsItsBranch) {
  Hierarchy h;
  // doe's registration at top lapses at t=1000; its sites disappear
  // from the top-level view while edu's remain.
  EXPECT_EQ(h.top.search(1500.0, Filter::match_all()).size(), 1u);
  // Re-registering restores the branch.
  h.top.register_giis(h.doe, 1500.0, 1000.0);
  EXPECT_EQ(h.top.search(1501.0, Filter::match_all()).size(), 3u);
}

TEST(GiisHierarchyTest, RegistrationCycleTerminates) {
  Giis a{"a"};
  Giis b{"b"};
  Gris gris{"g", *Dn::parse("dc=x, o=grid")};
  CountingProvider p{"x", *Dn::parse("dc=x, o=grid")};
  gris.register_provider(&p, 60.0);
  a.register_gris(gris, 0.0, 1000.0);
  a.register_giis(b, 0.0, 1000.0);
  b.register_giis(a, 0.0, 1000.0);  // cycle!
  // Must terminate and still return the real entries exactly once from
  // a's own perspective.
  const auto results = a.search(1.0, Filter::match_all());
  EXPECT_EQ(results.size(), 1u);
  EXPECT_TRUE(a.covers(*Dn::parse("dc=x, o=grid")));
}

TEST(GiisHierarchyTest, SelfRegistrationAborts) {
  Giis a{"a"};
  EXPECT_DEATH(a.register_giis(a, 0.0), "itself");
}

TEST(GiisHierarchyTest, ThreeLevelChain) {
  Gris gris{"g", *Dn::parse("dc=x, o=grid")};
  CountingProvider p{"x", *Dn::parse("dc=x, o=grid")};
  gris.register_provider(&p, 60.0);
  Giis site{"site"};
  Giis region{"region"};
  Giis root{"root"};
  site.register_gris(gris, 0.0, 1000.0);
  region.register_giis(site, 0.0, 1000.0);
  root.register_giis(region, 0.0, 1000.0);
  const auto results = root.search(1.0, *Dn::parse("dc=x, o=grid"),
                                   Directory::Scope::kSubtree,
                                   Filter::match_all());
  EXPECT_EQ(results.size(), 1u);
}

}  // namespace
}  // namespace wadp::mds
