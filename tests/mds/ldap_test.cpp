#include "mds/ldap.hpp"

#include <gtest/gtest.h>

namespace wadp::mds {
namespace {

TEST(DnTest, ParseSimple) {
  const auto dn = Dn::parse("cn=x, dc=lbl, dc=gov, o=grid");
  ASSERT_TRUE(dn.has_value());
  EXPECT_EQ(dn->depth(), 4u);
  EXPECT_EQ(dn->rdns()[0].attr, "cn");
  EXPECT_EQ(dn->rdns()[0].value, "x");
  EXPECT_EQ(dn->rdns()[3].attr, "o");
}

TEST(DnTest, ParseToleratesWhitespace) {
  const auto dn = Dn::parse("  cn = x ,dc=gov ");
  ASSERT_TRUE(dn.has_value());
  EXPECT_EQ(dn->rdns()[0].value, "x");
}

TEST(DnTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Dn::parse("").has_value());
  EXPECT_FALSE(Dn::parse("noequals").has_value());
  EXPECT_FALSE(Dn::parse("cn=x,,dc=gov").has_value());
  EXPECT_FALSE(Dn::parse("=x").has_value());
  EXPECT_FALSE(Dn::parse("cn=").has_value());
}

TEST(DnTest, ToStringRoundTrip) {
  const auto dn = Dn::parse("cn=a, dc=b");
  EXPECT_EQ(dn->to_string(), "cn=a, dc=b");
  EXPECT_EQ(Dn::parse(dn->to_string()), *dn);
}

TEST(DnTest, ParentDropsMostSpecific) {
  const auto dn = *Dn::parse("cn=x, dc=gov");
  EXPECT_EQ(dn.parent().to_string(), "dc=gov");
  EXPECT_TRUE(dn.parent().parent().empty());
}

TEST(DnTest, ChildPrepends) {
  const auto base = *Dn::parse("dc=lbl, o=grid");
  const auto child = base.child({"cn", "1.2.3.4"});
  EXPECT_EQ(child.to_string(), "cn=1.2.3.4, dc=lbl, o=grid");
  EXPECT_EQ(child.parent(), base);
}

TEST(DnTest, UnderIsSuffixMatch) {
  const auto root = *Dn::parse("o=grid");
  const auto mid = *Dn::parse("dc=lbl, o=grid");
  const auto leaf = *Dn::parse("cn=x, dc=lbl, o=grid");
  EXPECT_TRUE(leaf.under(root));
  EXPECT_TRUE(leaf.under(mid));
  EXPECT_TRUE(leaf.under(leaf));
  EXPECT_FALSE(mid.under(leaf));
  EXPECT_FALSE(leaf.under(*Dn::parse("dc=anl, o=grid")));
}

TEST(DnTest, ComparisonIsCaseInsensitive) {
  EXPECT_EQ(*Dn::parse("CN=X, O=Grid"), *Dn::parse("cn=x, o=grid"));
}

TEST(DnTest, EmptyDnIsAncestorOfAll) {
  EXPECT_TRUE(Dn::parse("cn=x")->under(Dn{}));
}

TEST(EntryTest, AddAndGet) {
  Entry e(*Dn::parse("cn=x"));
  e.add("objectclass", "GridFTPPerfInfo");
  e.add("cn", "x");
  EXPECT_TRUE(e.has("CN"));  // case-insensitive
  EXPECT_EQ(*e.get("cn"), "x");
  EXPECT_FALSE(e.get("missing").has_value());
}

TEST(EntryTest, MultiValuedAttributes) {
  Entry e;
  e.add("volumes", "/home/ftp");
  e.add("volumes", "/data");
  const auto all = e.get_all("volumes");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], "/home/ftp");
  EXPECT_EQ(*e.get("volumes"), "/home/ftp");  // first value
}

TEST(EntryTest, SetReplacesValues) {
  Entry e;
  e.add("a", "1");
  e.add("a", "2");
  e.set("a", "3");
  EXPECT_EQ(e.get_all("a").size(), 1u);
  EXPECT_EQ(*e.get("a"), "3");
}

TEST(EntryTest, GetDouble) {
  Entry e;
  e.set("avgrdbandwidth", "6062");
  e.set("hostname", "x.gov");
  EXPECT_DOUBLE_EQ(*e.get_double("avgrdbandwidth"), 6062.0);
  EXPECT_FALSE(e.get_double("hostname").has_value());
  EXPECT_FALSE(e.get_double("missing").has_value());
}

TEST(EntryTest, ObjectClasses) {
  Entry e;
  e.add("objectclass", "A");
  e.add("ObjectClass", "B");  // case-insensitive merge
  EXPECT_EQ(e.object_classes().size(), 2u);
}

TEST(EntryTest, LdifRendering) {
  Entry e(*Dn::parse("cn=x, o=grid"));
  e.add("cn", "x");
  const auto ldif = e.to_ldif();
  EXPECT_NE(ldif.find("dn: cn=x, o=grid"), std::string::npos);
  EXPECT_NE(ldif.find("cn: x"), std::string::npos);
}

TEST(SchemaTest, ValidatesRequiredAttributes) {
  Schema schema;
  schema.define({.name = "PerfInfo",
                 .required = {"cn", "hostname"},
                 .optional = {"avgrdbandwidth"}});
  Entry good;
  good.add("objectclass", "PerfInfo");
  good.set("cn", "x");
  good.set("hostname", "h");
  EXPECT_EQ(schema.validate(good), "");

  Entry missing;
  missing.add("objectclass", "PerfInfo");
  missing.set("cn", "x");
  EXPECT_NE(schema.validate(missing).find("hostname"), std::string::npos);
}

TEST(SchemaTest, RejectsUnknownClassAndMissingClass) {
  Schema schema;
  Entry no_class;
  EXPECT_NE(schema.validate(no_class), "");
  Entry unknown;
  unknown.add("objectclass", "Mystery");
  EXPECT_NE(schema.validate(unknown).find("Mystery"), std::string::npos);
}

TEST(SchemaTest, LookupIsCaseInsensitive) {
  Schema schema;
  schema.define({.name = "PerfInfo"});
  EXPECT_NE(schema.find("perfinfo"), nullptr);
  EXPECT_EQ(schema.find("other"), nullptr);
}

}  // namespace
}  // namespace wadp::mds
