// Filter::equals / all_of: direct AST construction must behave exactly
// like the escape-format-parse round trip it replaces on the broker's
// inquiry hot path — including for values full of metacharacters.
#include <gtest/gtest.h>

#include "mds/filter.hpp"
#include "mds/ldap.hpp"
#include "util/strings.hpp"

namespace wadp::mds {
namespace {

Entry perf_entry(const std::string& cn, const std::string& hostname) {
  Entry entry;
  entry.add("objectclass", "GridFTPPerfInfo");
  entry.add("cn", cn);
  entry.add("hostname", hostname);
  return entry;
}

Filter inquiry(const std::string& cn, const std::string& hostname) {
  std::vector<Filter> terms;
  terms.push_back(Filter::equals("objectclass", "GridFTPPerfInfo"));
  terms.push_back(Filter::equals("cn", cn));
  terms.push_back(Filter::equals("hostname", hostname));
  return Filter::all_of(std::move(terms));
}

TEST(FilterBuilderTest, EqualsMatchesLikeParsedEquality) {
  const Filter built = Filter::equals("hostname", "jet.isi.edu");
  const auto parsed = Filter::parse("(hostname=jet.isi.edu)");
  ASSERT_TRUE(parsed.has_value());
  const Entry yes = perf_entry("c", "jet.isi.edu");
  const Entry no = perf_entry("c", "other.isi.edu");
  EXPECT_TRUE(built.matches(yes));
  EXPECT_TRUE(parsed->matches(yes));
  EXPECT_FALSE(built.matches(no));
  EXPECT_FALSE(parsed->matches(no));
  // Equality stays case-insensitive, like the parsed form.
  EXPECT_TRUE(built.matches(perf_entry("c", "JET.ISI.EDU")));
}

TEST(FilterBuilderTest, EqualsTreatsMetacharactersAsLiterals) {
  // The exact hazard the old format-then-parse path escaped against: a
  // value containing ( ) * \ must match itself, and only itself.
  const std::string evil = "a*b\\c(d)e";
  const Filter built = Filter::equals("cn", evil);
  EXPECT_TRUE(built.matches(perf_entry(evil, "h")));
  // '*' is NOT a wildcard here: "aXb..." must not match.
  EXPECT_FALSE(built.matches(perf_entry("aXb\\c(d)e", "h")));
  EXPECT_FALSE(built.matches(perf_entry("ab\\c(d)e", "h")));

  // And it agrees with the escaped round trip.
  const auto parsed =
      Filter::parse("(cn=" + Filter::escape(evil) + ")");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->matches(perf_entry(evil, "h")));
  EXPECT_FALSE(parsed->matches(perf_entry("aXb\\c(d)e", "h")));
}

TEST(FilterBuilderTest, BuiltInquiryEqualsRoundTripInquiry) {
  for (const auto& [cn, host] :
       {std::pair<std::string, std::string>{"140.221.65.69",
                                            "dpsslx04.lbl.gov"},
        {"evil)(objectclass=*", "host*with\\meta"}}) {
    const Filter built = inquiry(cn, host);
    const auto parsed = Filter::parse(util::format(
        "(&(objectclass=GridFTPPerfInfo)(cn=%s)(hostname=%s))",
        Filter::escape(cn).c_str(), Filter::escape(host).c_str()));
    ASSERT_TRUE(parsed.has_value());
    // Identical textual form (the builder escapes on render)...
    EXPECT_EQ(built.to_string(), parsed->to_string());
    // ...and identical matching on the match/near-miss pairs.
    for (const Entry& entry :
         {perf_entry(cn, host), perf_entry(cn, "elsewhere"),
          perf_entry("someone", host), perf_entry(cn + "x", host)}) {
      EXPECT_EQ(built.matches(entry), parsed->matches(entry))
          << built.to_string();
    }
    EXPECT_TRUE(built.matches(perf_entry(cn, host)));
  }
}

TEST(FilterBuilderTest, AllOfRequiresEveryTerm) {
  const Filter built = inquiry("140.221.65.69", "jet.isi.edu");
  EXPECT_TRUE(built.matches(perf_entry("140.221.65.69", "jet.isi.edu")));
  Entry wrong_class = perf_entry("140.221.65.69", "jet.isi.edu");
  wrong_class.set("objectclass", "GridFTPServer");
  EXPECT_FALSE(built.matches(wrong_class));
  EXPECT_FALSE(
      built.matches(perf_entry("140.221.65.69", "dpsslx04.lbl.gov")));
}

TEST(FilterBuilderTest, EmptyAllOfMatchesEverything) {
  const Filter built = Filter::all_of({});
  EXPECT_TRUE(built.matches(perf_entry("anyone", "anywhere")));
  EXPECT_EQ(built.to_string(), Filter::match_all().to_string());
}

}  // namespace
}  // namespace wadp::mds
