#include "mds/gridftp_provider.hpp"

#include <gtest/gtest.h>

#include "mds/giis.hpp"

namespace wadp::mds {
namespace {

using gridftp::GridFtpServer;
using gridftp::Operation;

storage::StorageParams dedicated() {
  storage::StorageParams p;
  p.local_load.reset();
  return p;
}

/// Server with a hand-written log: reads to ANL at known bandwidths in
/// two size classes, plus one write.
struct ProviderFixture : ::testing::Test {
  storage::StorageSystem store{"lbl", dedicated(), 1, 0.0};
  GridFtpServer server{
      {.site = "lbl", .host = "dpsslx04.lbl.gov", .ip = "131.243.2.91",
       .port = 61000},
      store};
  const std::string anl_ip = "140.221.65.69";

  void SetUp() override {
    server.fs().add_volume("/home/ftp");
    server.fs().add_file("/home/ftp/vazhkuda/10 MB", 10 * kMB);
    server.fs().add_file("/home/ftp/vazhkuda/1 GB", 1000 * kMB);
    double t = 1000.0;
    // 10 MB reads at 2 MB/s (class 0): sizes 10 MB / 2 MB/s = 5 s.
    for (int i = 0; i < 4; ++i) {
      server.record_transfer(anl_ip, "/home/ftp/vazhkuda/10 MB", 10 * kMB, t,
                             t + 5.0, Operation::kRead, 8, 1'000'000);
      t += 100.0;
    }
    // 1 GB reads at 8 MB/s (class 3): 125 s.
    for (int i = 0; i < 3; ++i) {
      server.record_transfer(anl_ip, "/home/ftp/vazhkuda/1 GB", 1000 * kMB, t,
                             t + 125.0, Operation::kRead, 8, 1'000'000);
      t += 300.0;
    }
    // One write from another host.
    server.record_transfer("128.9.160.100", "/home/ftp/up", 50 * kMB, t,
                           t + 10.0, Operation::kWrite, 8, 1'000'000);
  }

  GridFtpProviderConfig config() {
    return {.base = *Dn::parse(
                "hostname=dpsslx04.lbl.gov, dc=lbl, dc=gov, o=grid")};
  }
};

TEST_F(ProviderFixture, PublishesServerAndEndpointEntries) {
  GridFtpInfoProvider provider(server, config());
  const auto entries = provider.provide(5000.0);
  // Server summary + ANL endpoint + ISI endpoint.
  ASSERT_EQ(entries.size(), 3u);
}

TEST_F(ProviderFixture, Figure6AttributesPresent) {
  GridFtpInfoProvider provider(server, config());
  const auto entries = provider.provide(5000.0);
  const Entry* anl = nullptr;
  for (const auto& e : entries) {
    if (e.get("cn") && *e.get("cn") == anl_ip) anl = &e;
  }
  ASSERT_NE(anl, nullptr);
  EXPECT_EQ(*anl->get("hostname"), "dpsslx04.lbl.gov");
  EXPECT_EQ(*anl->get("gridftpurl"), "gsiftp://dpsslx04.lbl.gov:61000");
  // 10 MB at 2 MB/s = 2000 KB/s; 1 GB at 8 MB/s = 8000 KB/s.
  EXPECT_DOUBLE_EQ(*anl->get_double("minrdbandwidth"), 2000.0);
  EXPECT_DOUBLE_EQ(*anl->get_double("maxrdbandwidth"), 8000.0);
  // Mean of {2000 x4, 8000 x3} = (8000 + 24000) / 7.
  EXPECT_NEAR(*anl->get_double("avgrdbandwidth"), 32000.0 / 7.0, 1.0);
  // Per-class attributes use Fig. 6 naming.
  EXPECT_DOUBLE_EQ(*anl->get_double("avgrdbandwidthtenmbrange"), 2000.0);
  EXPECT_DOUBLE_EQ(*anl->get_double("avgrdbandwidthonegbrange"), 8000.0);
  EXPECT_FALSE(anl->has("avgrdbandwidthhundredmbrange"));  // no such data
  // Predictions are published per class.
  EXPECT_DOUBLE_EQ(*anl->get_double("predictedrdbandwidthtenmbrange"), 2000.0);
  EXPECT_DOUBLE_EQ(*anl->get_double("predictedrdbandwidthonegbrange"), 8000.0);
  EXPECT_EQ(*anl->get("numrdtransfers"), "7");
}

TEST_F(ProviderFixture, WriteDirectionPublishedSeparately) {
  GridFtpInfoProvider provider(server, config());
  const auto entries = provider.provide(5000.0);
  const Entry* isi = nullptr;
  for (const auto& e : entries) {
    if (e.get("cn") && *e.get("cn") == "128.9.160.100") isi = &e;
  }
  ASSERT_NE(isi, nullptr);
  EXPECT_TRUE(isi->has("avgwrbandwidth"));
  EXPECT_FALSE(isi->has("avgrdbandwidth"));  // never read toward ISI
  EXPECT_DOUBLE_EQ(*isi->get_double("avgwrbandwidth"), 5000.0);
}

TEST_F(ProviderFixture, EntriesValidateAgainstSchema) {
  GridFtpInfoProvider provider(server, config());
  const auto schema = GridFtpInfoProvider::schema();
  for (const auto& entry : provider.provide(5000.0)) {
    EXPECT_EQ(schema.validate(entry), "") << entry.to_ldif();
  }
}

TEST_F(ProviderFixture, DnsLieUnderConfiguredBase) {
  GridFtpInfoProvider provider(server, config());
  const auto base = config().base;
  for (const auto& entry : provider.provide(5000.0)) {
    EXPECT_TRUE(entry.dn().under(base)) << entry.dn().to_string();
  }
}

TEST_F(ProviderFixture, WorksEndToEndThroughGrisAndGiis) {
  GridFtpInfoProvider provider(server, config());
  Gris gris("lbl-gris", *Dn::parse("dc=lbl, dc=gov, o=grid"));
  gris.register_provider(&provider, 300.0);
  Giis giis("top");
  giis.register_gris(gris, 0.0, 3600.0);

  const auto filter = Filter::parse(
      "(&(objectclass=GridFTPPerfInfo)(cn=140.221.65.69))");
  const auto results = giis.search(10.0, *filter);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_DOUBLE_EQ(*results[0].get_double("maxrdbandwidth"), 8000.0);
}

TEST(ProviderTest, EmptyLogPublishesOnlyServerEntry) {
  storage::StorageSystem store{"x", dedicated(), 1, 0.0};
  GridFtpServer server{{.site = "x", .host = "h.x.org", .ip = "1.1.1.1"},
                       store};
  GridFtpInfoProvider provider(server,
                               {.base = *Dn::parse("hostname=h.x.org, o=grid")});
  const auto entries = provider.provide(0.0);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(*entries[0].get("numtransfers"), "0");
}

TEST(ProviderTest, RangeFragmentsMatchFig6Vocabulary) {
  const auto classifier = predict::SizeClassifier::paper_classes();
  EXPECT_EQ(GridFtpInfoProvider::range_fragment(classifier, 0), "tenmbrange");
  EXPECT_EQ(GridFtpInfoProvider::range_fragment(classifier, 1),
            "hundredmbrange");
  EXPECT_EQ(GridFtpInfoProvider::range_fragment(classifier, 2),
            "fivehundredmbrange");
  EXPECT_EQ(GridFtpInfoProvider::range_fragment(classifier, 3), "onegbrange");
  const predict::SizeClassifier custom({10 * kMB});
  EXPECT_EQ(GridFtpInfoProvider::range_fragment(custom, 1), "class1range");
}

}  // namespace
}  // namespace wadp::mds
