#include "util/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace wadp::util {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const auto out = t.render();
  // Header, underline, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
}

TEST(TextTableTest, NumbersRightAlignedByDefault) {
  TextTable t({"k", "num"});
  t.add_row({"x", "5"});
  t.add_row({"y", "123"});
  const auto out = t.render();
  // "5" must be padded to align with "123"'s right edge.
  EXPECT_NE(out.find("  5"), std::string::npos);
}

TEST(TextTableTest, RowCountTracksRows) {
  TextTable t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTableTest, SetAlignLeftKeepsTextFlush) {
  TextTable t({"a", "b"});
  t.set_align(1, TextTable::Align::Left);
  t.add_row({"x", "val"});
  const auto out = t.render();
  EXPECT_NE(out.find("x  val"), std::string::npos);
}

TEST(StripChartTest, EmptyDataHandled) {
  const auto out = render_log_strip_chart({}, "a", {}, "b");
  EXPECT_EQ(out, "(no data)\n");
}

TEST(StripChartTest, PlotsBothSeries) {
  std::vector<SeriesPoint> a, b;
  for (int i = 0; i < 50; ++i) {
    a.push_back({static_cast<double>(i), 8.0});
    b.push_back({static_cast<double>(i), 0.2});
  }
  const auto out = render_log_strip_chart(a, "gridftp", b, "nws", 60, 10);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find("gridftp"), std::string::npos);
  EXPECT_NE(out.find("nws"), std::string::npos);
}

TEST(StripChartTest, IgnoresNonPositiveValuesOnLogAxis) {
  std::vector<SeriesPoint> a = {{0.0, 1.0}, {1.0, -5.0}, {2.0, 2.0}};
  const auto out = render_log_strip_chart(a, "a", {}, "b", 40, 8);
  EXPECT_NE(out.find("1 .. 2"), std::string::npos);
}

}  // namespace
}  // namespace wadp::util
