#include "util/error.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace wadp {
namespace {

Expected<int> parse_positive(int x) {
  if (x > 0) return x;
  return Expected<int>::failure("not positive: " + std::to_string(x));
}

TEST(ExpectedTest, ValueCase) {
  const auto result = parse_positive(5);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(static_cast<bool>(result));
  EXPECT_EQ(result.value(), 5);
}

TEST(ExpectedTest, FailureCase) {
  const auto result = parse_positive(-1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error(), "not positive: -1");
}

TEST(ExpectedTest, MoveOutValue) {
  Expected<std::vector<int>> result = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(result.ok());
  const auto moved = std::move(result).value();
  EXPECT_EQ(moved.size(), 3u);
}

TEST(ExpectedTest, MutableValueAccess) {
  Expected<std::string> result = std::string("abc");
  result.value() += "d";
  EXPECT_EQ(result.value(), "abcd");
}

TEST(ExpectedTest, WorksWithMoveOnlyFlavouredTypes) {
  Expected<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result.value(), 7);
}

TEST(WadpCheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(WADP_CHECK(1 == 2), "WADP_CHECK failed");
  EXPECT_DEATH(WADP_CHECK_MSG(false, "context here"), "context here");
}

TEST(WadpCheckTest, PassingCheckIsSilent) {
  WADP_CHECK(true);
  WADP_CHECK_MSG(1 + 1 == 2, "arithmetic broke");
}

}  // namespace
}  // namespace wadp
