#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace wadp::util {
namespace {

TEST(AutocorrelationTest, LagZeroIsOne) {
  const std::vector<double> xs = {1.0, 4.0, 2.0, 8.0, 5.0};
  EXPECT_NEAR(*autocorrelation(xs, 0), 1.0, 1e-12);
}

TEST(AutocorrelationTest, AlternatingSeriesIsNegativeAtLagOne) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(i % 2 ? 1.0 : -1.0);
  EXPECT_LT(*autocorrelation(xs, 1), -0.9);
  EXPECT_GT(*autocorrelation(xs, 2), 0.9);
}

TEST(AutocorrelationTest, WhiteNoiseNearZero) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.normal());
  EXPECT_NEAR(*autocorrelation(xs, 1), 0.0, 0.05);
  EXPECT_NEAR(*autocorrelation(xs, 10), 0.0, 0.05);
}

TEST(AutocorrelationTest, Ar1ProcessDecaysGeometrically) {
  Rng rng(5);
  const double phi = 0.8;
  std::vector<double> xs = {0.0};
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(phi * xs.back() + rng.normal());
  }
  EXPECT_NEAR(*autocorrelation(xs, 1), phi, 0.03);
  EXPECT_NEAR(*autocorrelation(xs, 2), phi * phi, 0.04);
}

TEST(AutocorrelationTest, ConstantSeriesIsNullopt) {
  const std::vector<double> xs = {5.0, 5.0, 5.0, 5.0};
  EXPECT_FALSE(autocorrelation(xs, 1).has_value());
}

TEST(AutocorrelationTest, TooShortSeriesIsNullopt) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_FALSE(autocorrelation(xs, 1).has_value());
  EXPECT_FALSE(autocorrelation(xs, 5).has_value());
  EXPECT_FALSE(autocorrelation({}, 0).has_value());
}

}  // namespace
}  // namespace wadp::util
