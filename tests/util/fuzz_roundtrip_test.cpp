// Randomized round-trip properties for the text codecs: ULM records and
// LDAP filters survive encode/parse cycles for arbitrary content.
#include <gtest/gtest.h>

#include <string>

#include "mds/filter.hpp"
#include "util/rng.hpp"
#include "util/ulm.hpp"

namespace wadp {
namespace {

std::string random_text(util::Rng& rng, std::size_t max_len,
                        bool printable_only) {
  const std::size_t len = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(max_len)));
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    if (printable_only) {
      out += static_cast<char>(rng.uniform_int(0x20, 0x7e));
    } else {
      // Any byte except NUL and newline (records are line-oriented).
      char c;
      do {
        c = static_cast<char>(rng.uniform_int(1, 255));
      } while (c == '\n' || c == '\r');
      out += c;
    }
  }
  return out;
}

std::string random_key(util::Rng& rng) {
  // Keys: non-empty, no whitespace, no '='.
  static const char kAlphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789._-";
  const std::size_t len = static_cast<std::size_t>(rng.uniform_int(1, 12));
  std::string out;
  for (std::size_t i = 0; i < len; ++i) {
    out += kAlphabet[static_cast<std::size_t>(
        rng.uniform_int(0, sizeof(kAlphabet) - 2))];
  }
  return out;
}

class UlmFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UlmFuzzTest, ArbitraryValuesRoundTrip) {
  util::Rng rng(GetParam());
  util::UlmRecord record;
  const int fields = static_cast<int>(rng.uniform_int(1, 10));
  std::map<std::string, std::string> expected;
  for (int i = 0; i < fields; ++i) {
    const auto key = random_key(rng);
    const auto value = random_text(rng, 40, /*printable_only=*/false);
    record.set(key, value);
    expected[key] = value;
  }
  const auto line = record.to_line();
  const auto parsed = util::UlmRecord::parse(line);
  ASSERT_TRUE(parsed.has_value()) << line;
  for (const auto& [key, value] : expected) {
    const auto got = parsed->get(key);
    ASSERT_TRUE(got.has_value()) << key;
    EXPECT_EQ(*got, value) << key;
  }
}

TEST_P(UlmFuzzTest, ParserNeverCrashesOnGarbage) {
  util::Rng rng(GetParam() ^ 0x5a5a);
  for (int i = 0; i < 50; ++i) {
    const auto garbage = random_text(rng, 120, /*printable_only=*/false);
    // Must not crash; any parse result is acceptable.
    (void)util::UlmRecord::parse(garbage);
    (void)util::parse_ulm_log(garbage + "\n" + garbage);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UlmFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 26));

class FilterFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

std::string random_filter(util::Rng& rng, int depth) {
  if (depth <= 0 || rng.uniform() < 0.5) {
    const auto attr = random_key(rng);
    switch (rng.uniform_int(0, 3)) {
      case 0:
        return "(" + attr + "=" + random_key(rng) + ")";
      case 1:
        return "(" + attr + "=*)";
      case 2:
        return "(" + attr + ">=" + std::to_string(rng.uniform_int(0, 9999)) +
               ")";
      default:
        return "(" + attr + "<=" + std::to_string(rng.uniform_int(0, 9999)) +
               ")";
    }
  }
  switch (rng.uniform_int(0, 2)) {
    case 0: {
      std::string out = "(&";
      const int kids = static_cast<int>(rng.uniform_int(1, 3));
      for (int i = 0; i < kids; ++i) out += random_filter(rng, depth - 1);
      return out + ")";
    }
    case 1: {
      std::string out = "(|";
      const int kids = static_cast<int>(rng.uniform_int(1, 3));
      for (int i = 0; i < kids; ++i) out += random_filter(rng, depth - 1);
      return out + ")";
    }
    default:
      return "(!" + random_filter(rng, depth - 1) + ")";
  }
}

TEST_P(FilterFuzzTest, ToStringParseFixpoint) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    const auto text = random_filter(rng, 3);
    const auto filter = mds::Filter::parse(text);
    ASSERT_TRUE(filter.has_value()) << text;
    const auto printed = filter->to_string();
    const auto reparsed = mds::Filter::parse(printed);
    ASSERT_TRUE(reparsed.has_value()) << printed;
    EXPECT_EQ(reparsed->to_string(), printed);
  }
}

TEST_P(FilterFuzzTest, SemanticsPreservedByRoundTrip) {
  util::Rng rng(GetParam() ^ 0x77);
  // Random entries with attributes drawn from the same key space.
  for (int i = 0; i < 10; ++i) {
    const auto text = random_filter(rng, 2);
    const auto filter = mds::Filter::parse(text);
    ASSERT_TRUE(filter.has_value());
    const auto reparsed = mds::Filter::parse(filter->to_string());
    ASSERT_TRUE(reparsed.has_value());
    for (int e = 0; e < 10; ++e) {
      mds::Entry entry;
      const int attrs = static_cast<int>(rng.uniform_int(0, 5));
      for (int a = 0; a < attrs; ++a) {
        entry.add(random_key(rng), std::to_string(rng.uniform_int(0, 9999)));
      }
      EXPECT_EQ(filter->matches(entry), reparsed->matches(entry)) << text;
    }
  }
}

TEST_P(FilterFuzzTest, ParserNeverCrashesOnGarbage) {
  util::Rng rng(GetParam() ^ 0x99);
  for (int i = 0; i < 50; ++i) {
    (void)mds::Filter::parse(random_text(rng, 80, /*printable_only=*/true));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace wadp
