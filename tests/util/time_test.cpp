#include "util/time.hpp"

#include <gtest/gtest.h>

namespace wadp::util {
namespace {

TEST(CivilTimeTest, EpochRoundTripUtc) {
  const CivilTime ct{.year = 2001, .month = 8, .day = 13,
                     .hour = 18, .minute = 30, .second = 15};
  const auto epoch = to_epoch(ct, kUtc);
  EXPECT_EQ(to_civil(epoch, kUtc), ct);
}

TEST(CivilTimeTest, KnownEpochValue) {
  // 2001-08-28 00:02:45 UTC = 998956965 (cross-checked externally).
  const CivilTime ct{.year = 2001, .month = 8, .day = 28,
                     .hour = 0, .minute = 2, .second = 45};
  EXPECT_EQ(to_epoch(ct, kUtc), 998956965);
}

TEST(CivilTimeTest, UnixEpochIsZero) {
  EXPECT_EQ(to_epoch({.year = 1970, .month = 1, .day = 1}, kUtc), 0);
}

TEST(CivilTimeTest, CdtOffsetApplies) {
  // Midnight CDT is 05:00 UTC.
  const auto epoch = to_epoch({.year = 2001, .month = 8, .day = 13}, kCdt);
  const auto utc = to_civil(epoch, kUtc);
  EXPECT_EQ(utc.hour, 5);
  EXPECT_EQ(utc.day, 13);
}

TEST(CivilTimeTest, LeapYearFebruary) {
  const CivilTime ct{.year = 2000, .month = 2, .day = 29, .hour = 12};
  const auto epoch = to_epoch(ct, kUtc);
  EXPECT_EQ(to_civil(epoch, kUtc), ct);
}

TEST(CivilTimeTest, DayBoundariesAcrossZones) {
  // 2001-12-03 23:30 CST = 2001-12-04 05:30 UTC.
  const auto epoch = to_epoch(
      {.year = 2001, .month = 12, .day = 3, .hour = 23, .minute = 30}, kCst);
  const auto utc = to_civil(epoch, kUtc);
  EXPECT_EQ(utc.day, 4);
  EXPECT_EQ(utc.hour, 5);
}

TEST(DaysFromCivilTest, InverseOfCivilFromDays) {
  for (const std::int64_t days : {-1000L, -1L, 0L, 1L, 11551L, 20000L}) {
    int y, m, d;
    civil_from_days(days, y, m, d);
    EXPECT_EQ(days_from_civil(y, m, d), days);
  }
}

TEST(SecondsIntoLocalDayTest, MidnightIsZero) {
  const auto epoch = to_epoch({.year = 2001, .month = 8, .day = 14}, kCdt);
  EXPECT_DOUBLE_EQ(seconds_into_local_day(static_cast<SimTime>(epoch), kCdt),
                   0.0);
}

TEST(SecondsIntoLocalDayTest, NoonIsHalfDay) {
  const auto epoch =
      to_epoch({.year = 2001, .month = 8, .day = 14, .hour = 12}, kCdt);
  EXPECT_DOUBLE_EQ(seconds_into_local_day(static_cast<SimTime>(epoch), kCdt),
                   12 * 3600.0);
}

class DailyWindowTest : public ::testing::TestWithParam<int> {};

TEST_P(DailyWindowTest, PaperWindowCoversNightOnly) {
  // The paper's window: 18:00 -> 08:00 local.
  const int hour = GetParam();
  const auto epoch = to_epoch(
      {.year = 2001, .month = 8, .day = 14, .hour = hour, .minute = 30}, kCdt);
  const bool expected = hour >= 18 || hour < 8;
  EXPECT_EQ(in_daily_window(static_cast<SimTime>(epoch), kCdt, 18, 8),
            expected)
      << "hour=" << hour;
}

INSTANTIATE_TEST_SUITE_P(AllHours, DailyWindowTest,
                         ::testing::Range(0, 24));

TEST(DailyWindowTest, NonWrappingWindow) {
  const auto at = [](int h) {
    return static_cast<SimTime>(
        to_epoch({.year = 2001, .month = 8, .day = 14, .hour = h}, kUtc));
  };
  EXPECT_TRUE(in_daily_window(at(10), kUtc, 9, 17));
  EXPECT_FALSE(in_daily_window(at(8), kUtc, 9, 17));
  EXPECT_FALSE(in_daily_window(at(17), kUtc, 9, 17));  // end exclusive
  EXPECT_TRUE(in_daily_window(at(9), kUtc, 9, 17));    // start inclusive
}

TEST(DailyWindowTest, DegenerateFullDayWindow) {
  const auto epoch = static_cast<SimTime>(
      to_epoch({.year = 2001, .month = 8, .day = 14, .hour = 3}, kUtc));
  EXPECT_TRUE(in_daily_window(epoch, kUtc, 6, 6));
}

TEST(NextLocalHourTest, SameDayWhenAhead) {
  const auto now = static_cast<SimTime>(
      to_epoch({.year = 2001, .month = 8, .day = 14, .hour = 10}, kCdt));
  const auto next = next_local_hour(now, kCdt, 18);
  const auto civil = to_civil(static_cast<std::int64_t>(next), kCdt);
  EXPECT_EQ(civil.day, 14);
  EXPECT_EQ(civil.hour, 18);
  EXPECT_EQ(civil.minute, 0);
}

TEST(NextLocalHourTest, NextDayWhenPassed) {
  const auto now = static_cast<SimTime>(
      to_epoch({.year = 2001, .month = 8, .day = 14, .hour = 20}, kCdt));
  const auto next = next_local_hour(now, kCdt, 18);
  const auto civil = to_civil(static_cast<std::int64_t>(next), kCdt);
  EXPECT_EQ(civil.day, 15);
  EXPECT_EQ(civil.hour, 18);
}

TEST(NextLocalHourTest, ExactHourReturnsNow) {
  const auto now = static_cast<SimTime>(
      to_epoch({.year = 2001, .month = 8, .day = 14, .hour = 18}, kCdt));
  EXPECT_DOUBLE_EQ(next_local_hour(now, kCdt, 18), now);
}

TEST(FormatTimeTest, RendersZoneName) {
  const auto epoch = static_cast<SimTime>(to_epoch(
      {.year = 2001, .month = 8, .day = 13, .hour = 18, .minute = 5}, kCdt));
  EXPECT_EQ(format_time(epoch, kCdt), "2001-08-13 18:05:00 CDT");
}

TEST(FormatUlmDateTest, CompactUtcForm) {
  const auto epoch = static_cast<SimTime>(to_epoch(
      {.year = 2001, .month = 12, .day = 3, .hour = 7, .minute = 8,
       .second = 9},
      kUtc));
  EXPECT_EQ(format_ulm_date(epoch), "20011203070809");
}

}  // namespace
}  // namespace wadp::util
