#include "util/ulm.hpp"

#include <gtest/gtest.h>

namespace wadp::util {
namespace {

TEST(UlmRecordTest, SetAndGet) {
  UlmRecord r;
  r.set("HOST", "dpsslx04.lbl.gov");
  r.set_int("SIZE", 10240000);
  r.set_double("BW", 2560.5, 1);
  EXPECT_EQ(*r.get("HOST"), "dpsslx04.lbl.gov");
  EXPECT_EQ(*r.get_int("SIZE"), 10240000);
  EXPECT_DOUBLE_EQ(*r.get_double("BW"), 2560.5);
  EXPECT_FALSE(r.get("MISSING").has_value());
}

TEST(UlmRecordTest, SetOverwritesInPlace) {
  UlmRecord r;
  r.set("A", "1");
  r.set("B", "2");
  r.set("A", "3");
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(*r.get("A"), "3");
  EXPECT_EQ(r.fields()[0].first, "A");  // order preserved
}

TEST(UlmRecordTest, SimpleLineRoundTrip) {
  UlmRecord r;
  r.set("DATE", "20010828000245");
  r.set("HOST", "mirage.anl.gov");
  r.set_int("NBYTES", 512000);
  const auto parsed = UlmRecord::parse(r.to_line());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed->get("DATE"), "20010828000245");
  EXPECT_EQ(*parsed->get_int("NBYTES"), 512000);
}

TEST(UlmRecordTest, QuotesValuesWithSpaces) {
  // Fig. 3 file names contain spaces: "/home/ftp/vazhkuda/10 MB".
  UlmRecord r;
  r.set("FILE", "/home/ftp/vazhkuda/10 MB");
  const auto line = r.to_line();
  EXPECT_NE(line.find('"'), std::string::npos);
  const auto parsed = UlmRecord::parse(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed->get("FILE"), "/home/ftp/vazhkuda/10 MB");
}

TEST(UlmRecordTest, EscapesQuotesAndBackslashes) {
  UlmRecord r;
  r.set("X", "a\"b\\c");
  const auto parsed = UlmRecord::parse(r.to_line());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed->get("X"), "a\"b\\c");
}

TEST(UlmRecordTest, EmptyValueQuoted) {
  UlmRecord r;
  r.set("EMPTY", "");
  const auto parsed = UlmRecord::parse(r.to_line());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed->get("EMPTY"), "");
}

TEST(UlmRecordTest, ParseRejectsMissingEquals) {
  EXPECT_FALSE(UlmRecord::parse("KEYONLY").has_value());
}

TEST(UlmRecordTest, ParseRejectsUnterminatedQuote) {
  EXPECT_FALSE(UlmRecord::parse("K=\"unterminated").has_value());
}

TEST(UlmRecordTest, ParseRejectsDanglingEscape) {
  EXPECT_FALSE(UlmRecord::parse("K=\"x\\").has_value());
}

TEST(UlmRecordTest, ParseRejectsEmptyKey) {
  EXPECT_FALSE(UlmRecord::parse("=value").has_value());
}

TEST(UlmRecordTest, BlankLineParsesEmpty) {
  const auto parsed = UlmRecord::parse("   ");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(UlmRecordTest, DuplicateKeysLastWins) {
  const auto parsed = UlmRecord::parse("A=1 A=2");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed->get("A"), "2");
}

TEST(UlmRecordTest, GetIntRejectsNonNumeric) {
  const auto parsed = UlmRecord::parse("A=xyz");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->get_int("A").has_value());
}

TEST(ParseUlmLogTest, MultiLineWithSkips) {
  const std::string body =
      "A=1 B=2\n"
      "\n"
      "garbage without equals\n"
      "C=3\n";
  const auto result = parse_ulm_log(body);
  EXPECT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.skipped_lines, 1u);
  EXPECT_EQ(*result.records[1].get("C"), "3");
}

TEST(ParseUlmLogTest, EmptyBody) {
  const auto result = parse_ulm_log("");
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.skipped_lines, 0u);
}

TEST(UlmRecordTest, EntryStaysUnderPaperSizeBound) {
  // Section 3: "Each log entry is well under 512 bytes."  Build a
  // maximal realistic transfer entry and check ours is too.
  UlmRecord r;
  r.set("DATE", "20010828000245");
  r.set("HOST", "dpsslx04.lbl.gov");
  r.set("PROG", "wadp-gridftp");
  r.set("NL.EVNT", "FTP_INFO");
  r.set("SOURCE", "140.221.65.69");
  r.set("FILE", "/home/ftp/vazhkuda/some/deeply/nested/path/1000 MB");
  r.set_int("SIZE", 1024000000);
  r.set("VOLUME", "/home/ftp");
  r.set_double("START", 998988428.123, 3);
  r.set_double("END", 998988554.456, 3);
  r.set_double("TIME", 126.333, 3);
  r.set_double("BW", 8126.0, 3);
  r.set("OP", "read");
  r.set_int("STREAMS", 8);
  r.set_int("BUFFER", 1000000);
  EXPECT_LT(r.to_line().size(), 512u);
}

}  // namespace
}  // namespace wadp::util
