#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace wadp::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(-5.0, 3.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, UniformIntCoversAllValuesInclusive) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.uniform_int(0, 5));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(19);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(RngTest, UniformIntNegativeRange) {
  Rng rng(23);
  for (int i = 0; i < 1'000; ++i) {
    const auto v = rng.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(RngTest, LogUniformStaysInRange) {
  Rng rng(29);
  for (int i = 0; i < 1'000; ++i) {
    const double v = rng.log_uniform(60.0, 36'000.0);
    EXPECT_GE(v, 60.0);
    EXPECT_LT(v, 36'000.0);
  }
}

TEST(RngTest, LogUniformIsUniformInLogSpace) {
  // Equal probability mass per decade: P(v < 600) should be ~ log(10)/log(600).
  Rng rng(31);
  const int n = 50'000;
  int below = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.log_uniform(60.0, 36'000.0) < 600.0) ++below;
  }
  const double expected = std::log(10.0) / std::log(600.0);
  EXPECT_NEAR(static_cast<double>(below) / n, expected, 0.02);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(37);
  const int n = 100'000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParamsShiftsAndScales) {
  Rng rng(41);
  const int n = 50'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(43);
  const int n = 100'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(RngTest, ExponentialNonNegative) {
  Rng rng(47);
  for (int i = 0; i < 1'000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(RngTest, SplitStreamsAreDecorrelated) {
  Rng parent(53);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  // Crude decorrelation check: no matching outputs at the same index.
  int matches = 0;
  for (int i = 0; i < 256; ++i) {
    if (child1.next_u64() == child2.next_u64()) ++matches;
  }
  EXPECT_EQ(matches, 0);
}

TEST(RngTest, PickSelectsAllChoices) {
  Rng rng(59);
  const std::vector<int> choices = {1, 2, 3};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.pick(std::span<const int>(choices)));
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(61);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  shuffle(shuffled, rng);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(67);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  shuffle(shuffled, rng);
  EXPECT_NE(shuffled, v);
}

}  // namespace
}  // namespace wadp::util
