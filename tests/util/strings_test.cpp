#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace wadp::util {
namespace {

TEST(SplitTest, BasicSplit) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, AdjacentDelimitersYieldEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitTest, TrailingDelimiter) {
  const auto parts = split("a,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(SplitWhitespaceTest, CollapsesRuns) {
  const auto parts = split_whitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(SplitWhitespaceTest, EmptyAndBlank) {
  EXPECT_TRUE(split_whitespace("").empty());
  EXPECT_TRUE(split_whitespace("   \t\n").empty());
}

TEST(TrimTest, TrimsBothEnds) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("  "), "");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(starts_with("gridftp://host", "gridftp://"));
  EXPECT_FALSE(starts_with("grid", "gridftp"));
  EXPECT_TRUE(ends_with("file.log", ".log"));
  EXPECT_FALSE(ends_with("log", "file.log"));
}

TEST(IequalsTest, CaseInsensitive) {
  EXPECT_TRUE(iequals("ObjectClass", "objectclass"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_FALSE(iequals("abc", "ab"));
}

TEST(ToLowerTest, Lowercases) { EXPECT_EQ(to_lower("AbC-12"), "abc-12"); }

TEST(ParseIntTest, ValidAndInvalid) {
  EXPECT_EQ(*parse_int("42"), 42);
  EXPECT_EQ(*parse_int("-7"), -7);
  EXPECT_EQ(*parse_int("  10 "), 10);  // trimmed
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("12x").has_value());
  EXPECT_FALSE(parse_int("x12").has_value());
  EXPECT_FALSE(parse_int("1.5").has_value());
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(*parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*parse_double("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*parse_double("10"), 10.0);
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("2.5MB").has_value());
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(FormatTest, PrintfStyle) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(format("plain"), "plain");
}

TEST(FormatBytesTest, PaperUnits) {
  EXPECT_EQ(format_bytes(10'000'000), "10 MB");
  EXPECT_EQ(format_bytes(1'000'000'000), "1 GB");
  EXPECT_EQ(format_bytes(512'000), "512 KB");
  EXPECT_EQ(format_bytes(999), "999 B");
  EXPECT_EQ(format_bytes(1'500'000), "1500 KB");  // not a whole MB
}

TEST(JsonEscapeTest, PassesCleanStringsThrough) {
  EXPECT_EQ(json_escape("dpsslx04.lbl.gov"), "dpsslx04.lbl.gov");
  EXPECT_EQ(json_escape(""), "");
  EXPECT_EQ(json_escape("/home/ftp/vazhkuda/10 MB"),
            "/home/ftp/vazhkuda/10 MB");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndShortEscapes) {
  EXPECT_EQ(json_escape("he said \"hi\""), "he said \\\"hi\\\"");
  EXPECT_EQ(json_escape("C:\\data\\log"), "C:\\\\data\\\\log");
  EXPECT_EQ(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(json_escape(std::string("x\by\fz")), "x\\by\\fz");
}

TEST(JsonEscapeTest, ControlCharactersBecomeUnicodeEscapes) {
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(json_escape(std::string_view("\x1f", 1)), "\\u001f");
  // NUL embedded mid-string must not truncate the output.
  EXPECT_EQ(json_escape(std::string_view("a\0b", 3)), "a\\u0000b");
}

TEST(JsonEscapeTest, HostileHostNameYieldsValidJsonFragment) {
  // The shape of the original bug: a host name with a quote spliced
  // raw into a hand-rolled --json emitter broke the document.
  const std::string hostile = "evil\"host\\.example\n.org";
  EXPECT_EQ(json_escape(hostile), "evil\\\"host\\\\.example\\n.org");
}

}  // namespace
}  // namespace wadp::util
