#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace wadp::util {
namespace {

TEST(StatsTest, MeanEmptyIsNullopt) {
  EXPECT_FALSE(mean({}).has_value());
}

TEST(StatsTest, MeanSingle) { EXPECT_DOUBLE_EQ(*mean(std::vector{4.0}), 4.0); }

TEST(StatsTest, MeanSimple) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(*mean(xs), 2.5);
}

TEST(StatsTest, MedianEmptyIsNullopt) {
  EXPECT_FALSE(median({}).has_value());
}

TEST(StatsTest, MedianOddTakesMiddle) {
  // Paper Section 4.1: odd t -> the (t+1)/2-th value.
  const std::vector<double> xs = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(*median(xs), 3.0);
}

TEST(StatsTest, MedianEvenAveragesMiddleTwo) {
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(*median(xs), 2.5);
}

TEST(StatsTest, MedianRobustToAsymmetricOutlier) {
  // The property the paper cites for median-based predictors.
  const std::vector<double> xs = {5.0, 5.1, 4.9, 5.0, 1000.0};
  EXPECT_DOUBLE_EQ(*median(xs), 5.0);
  EXPECT_GT(*mean(xs), 100.0);
}

TEST(StatsTest, MedianDoesNotMutateInput) {
  const std::vector<double> xs = {3.0, 1.0, 2.0};
  auto copy = xs;
  (void)median(copy);
  EXPECT_EQ(copy, xs);
}

TEST(StatsTest, VarianceOfConstantIsZero) {
  const std::vector<double> xs = {2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(*variance(xs), 0.0);
}

TEST(StatsTest, VarianceKnownValue) {
  const std::vector<double> xs = {1.0, 3.0};  // mean 2, deviations +-1
  EXPECT_DOUBLE_EQ(*variance(xs), 1.0);
  EXPECT_DOUBLE_EQ(*stddev(xs), 1.0);
}

TEST(StatsTest, QuantileEndpoints) {
  const std::vector<double> xs = {10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(*quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(*quantile(xs, 1.0), 30.0);
  EXPECT_DOUBLE_EQ(*quantile(xs, 0.5), 20.0);
}

TEST(StatsTest, QuantileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(*quantile(xs, 0.25), 2.5);
}

TEST(StatsTest, MinMax) {
  const std::vector<double> xs = {3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(*min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(*max_value(xs), 7.0);
  EXPECT_FALSE(min_value({}).has_value());
  EXPECT_FALSE(max_value({}).has_value());
}

TEST(StatsTest, LinearFitRecoversExactLine) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.0 + 3.0 * x);
  const auto fit = linear_fit(xs, ys);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->intercept, 2.0, 1e-12);
  EXPECT_NEAR(fit->slope, 3.0, 1e-12);
  EXPECT_NEAR(fit->r2, 1.0, 1e-12);
}

TEST(StatsTest, LinearFitRejectsConstantRegressor) {
  const std::vector<double> xs = {2.0, 2.0, 2.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  EXPECT_FALSE(linear_fit(xs, ys).has_value());
}

TEST(StatsTest, LinearFitRejectsTooFewPoints) {
  EXPECT_FALSE(linear_fit(std::vector{1.0}, std::vector{2.0}).has_value());
}

TEST(StatsTest, Ar1FitRecoversRecurrence) {
  // Y_t = 1 + 0.5 * Y_{t-1}, started at 10: 10, 6, 4, 3, 2.5, ...
  std::vector<double> series = {10.0};
  for (int i = 0; i < 10; ++i) series.push_back(1.0 + 0.5 * series.back());
  const auto fit = ar1_fit(series);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit->slope, 0.5, 1e-9);
}

TEST(StatsTest, Ar1FitConstantSeriesCollapsesToIntercept) {
  const std::vector<double> series = {5.0, 5.0, 5.0, 5.0};
  const auto fit = ar1_fit(series);
  ASSERT_TRUE(fit.has_value());
  EXPECT_DOUBLE_EQ(fit->intercept, 5.0);
  EXPECT_DOUBLE_EQ(fit->slope, 0.0);
}

TEST(StatsTest, Ar1FitNeedsThreeSamples) {
  EXPECT_FALSE(ar1_fit(std::vector{1.0, 2.0}).has_value());
  EXPECT_TRUE(ar1_fit(std::vector{1.0, 2.0, 3.0}).has_value());
}

TEST(StatsTest, RunningStatsMatchesBatch) {
  const std::vector<double> xs = {4.0, 8.0, 6.0, 2.0, 10.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_DOUBLE_EQ(rs.mean(), *mean(xs));
  EXPECT_NEAR(rs.variance(), *variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 10.0);
}

TEST(StatsTest, RunningStatsSingleValue) {
  RunningStats rs;
  rs.add(3.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 3.0);
  EXPECT_DOUBLE_EQ(rs.max(), 3.0);
}

TEST(StatsTest, PercentErrorMatchesPaperFormula) {
  // ((|measured - predicted|) / measured) * 100  (Section 6.2)
  EXPECT_DOUBLE_EQ(percent_error(10.0, 8.0), 20.0);
  EXPECT_DOUBLE_EQ(percent_error(10.0, 12.5), 25.0);
  EXPECT_DOUBLE_EQ(percent_error(10.0, 10.0), 0.0);
}

TEST(StatsTest, PercentErrorCanExceedHundred) {
  EXPECT_DOUBLE_EQ(percent_error(2.0, 8.0), 300.0);
}

}  // namespace
}  // namespace wadp::util
