#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace wadp::util {
namespace {

RunningStats sample(Rng& rng, double mean, double stddev, int n) {
  RunningStats stats;
  for (int i = 0; i < n; ++i) stats.add(rng.normal(mean, stddev));
  return stats;
}

TEST(TwoSampleZTest, SameDistributionIsInsignificant) {
  Rng rng(1);
  const auto a = sample(rng, 7.0, 2.0, 400);
  const auto b = sample(rng, 7.0, 2.0, 400);
  EXPECT_LT(two_sample_z(a, b), 2.5);  // occasionally ~2; never large
}

TEST(TwoSampleZTest, ShiftedMeansAreSignificant) {
  Rng rng(2);
  const auto a = sample(rng, 7.0, 2.0, 400);
  const auto b = sample(rng, 8.0, 2.0, 400);
  EXPECT_GT(two_sample_z(a, b), 4.0);
}

TEST(TwoSampleZTest, SymmetricInArguments) {
  Rng rng(3);
  const auto a = sample(rng, 5.0, 1.0, 100);
  const auto b = sample(rng, 6.0, 1.5, 150);
  EXPECT_DOUBLE_EQ(two_sample_z(a, b), two_sample_z(b, a));
}

TEST(TwoSampleZTest, KnownValue) {
  // Means 0 and 1, variances 1, n=100 each: se = sqrt(2/100), z = 1/se.
  RunningStats a, b;
  for (int i = 0; i < 50; ++i) {
    a.add(-1.0);
    a.add(1.0);
    b.add(0.0);
    b.add(2.0);
  }
  EXPECT_NEAR(two_sample_z(a, b), 1.0 / std::sqrt(2.0 / 100.0), 1e-9);
}

TEST(TwoSampleZDeathTest, EmptySampleAborts) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  EXPECT_DEATH(two_sample_z(a, empty), "");
}

}  // namespace
}  // namespace wadp::util
