#include "util/args.hpp"

#include <gtest/gtest.h>

namespace wadp::util {
namespace {

ArgParser standard_parser() {
  ArgParser parser;
  parser.add_option("seed");
  parser.add_option("out");
  parser.add_option("verbose", /*is_boolean=*/true);
  return parser;
}

TEST(ArgParserTest, PositionalsAndOptionsInterleave) {
  auto parser = standard_parser();
  ASSERT_TRUE(parser.parse({"analyze", "--seed", "7", "log.ulm"}).ok());
  ASSERT_EQ(parser.positionals().size(), 2u);
  EXPECT_EQ(parser.positionals()[0], "analyze");
  EXPECT_EQ(parser.positionals()[1], "log.ulm");
  EXPECT_EQ(*parser.get_int("seed"), 7);
}

TEST(ArgParserTest, EqualsSyntax) {
  auto parser = standard_parser();
  ASSERT_TRUE(parser.parse({"--seed=42", "--out=dir"}).ok());
  EXPECT_EQ(*parser.get("out"), "dir");
  EXPECT_EQ(*parser.get_int("seed"), 42);
}

TEST(ArgParserTest, BooleanOption) {
  auto parser = standard_parser();
  ASSERT_TRUE(parser.parse({"--verbose"}).ok());
  EXPECT_TRUE(parser.has("verbose"));
  EXPECT_FALSE(parser.has("seed"));
}

TEST(ArgParserTest, BooleanRejectsValue) {
  auto parser = standard_parser();
  const auto result = parser.parse({"--verbose=yes"});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("takes no value"), std::string::npos);
}

TEST(ArgParserTest, UnknownOptionFails) {
  auto parser = standard_parser();
  const auto result = parser.parse({"--sede", "7"});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("unknown option"), std::string::npos);
}

TEST(ArgParserTest, MissingValueFails) {
  auto parser = standard_parser();
  const auto result = parser.parse({"--seed"});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("needs a value"), std::string::npos);
}

TEST(ArgParserTest, DuplicateOptionFails) {
  auto parser = standard_parser();
  EXPECT_FALSE(parser.parse({"--seed", "1", "--seed", "2"}).ok());
}

TEST(ArgParserTest, DoubleDashEndsOptions) {
  auto parser = standard_parser();
  ASSERT_TRUE(parser.parse({"--seed", "1", "--", "--out"}).ok());
  ASSERT_EQ(parser.positionals().size(), 1u);
  EXPECT_EQ(parser.positionals()[0], "--out");
}

TEST(ArgParserTest, GettersHandleAbsence) {
  auto parser = standard_parser();
  ASSERT_TRUE(parser.parse({}).ok());
  EXPECT_FALSE(parser.get("seed").has_value());
  EXPECT_FALSE(parser.get_int("seed").has_value());
  EXPECT_FALSE(parser.get_double("seed").has_value());
  EXPECT_EQ(parser.get_or("out", "default"), "default");
}

TEST(ArgParserTest, GetIntRejectsNonNumeric) {
  auto parser = standard_parser();
  ASSERT_TRUE(parser.parse({"--seed", "abc"}).ok());
  EXPECT_FALSE(parser.get_int("seed").has_value());
  EXPECT_EQ(*parser.get("seed"), "abc");
}

TEST(ArgParserTest, GetDoubleParses) {
  auto parser = standard_parser();
  ASSERT_TRUE(parser.parse({"--seed", "2.5"}).ok());
  EXPECT_DOUBLE_EQ(*parser.get_double("seed"), 2.5);
}

TEST(ArgParserDeathTest, DeclaringDashedNameAborts) {
  ArgParser parser;
  EXPECT_DEATH(parser.add_option("--seed"), "without dashes");
}

}  // namespace
}  // namespace wadp::util
