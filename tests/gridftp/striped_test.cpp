// Striped transfers: multiple data movers at one site serving slices of
// one file (the GridFTP striping extension of the paper's ref [2]).
#include <gtest/gtest.h>

#include <optional>

#include "gridftp/client.hpp"
#include "gridftp/server.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"
#include "storage/storage.hpp"

namespace wadp::gridftp {
namespace {

storage::StorageParams slow_disk(Bandwidth read_rate) {
  storage::StorageParams p;
  p.read_rate = read_rate;
  p.write_rate = read_rate;
  p.local_load.reset();
  return p;
}

net::PathParams fat_quiet_path() {
  net::PathParams p;
  p.bottleneck = 80'000'000.0;  // OC-12-class: storage becomes the binder
  p.rtt = 0.05;
  p.load.base = 0.0;
  p.load.diurnal_amplitude = 0.0;
  p.load.ar_sigma = 0.0;
  p.load.episode_rate_per_hour = 0.0;
  return p;
}

/// A striped site: N movers, each with a slow disk, plus a client site.
struct StripedWorld {
  sim::Simulator sim{998'000'000.0};
  net::FluidEngine engine{sim};
  net::Topology topology;
  storage::StorageSystem client_store{"dst", slow_disk(200e6), 99,
                                      998'000'000.0};
  std::vector<std::unique_ptr<storage::StorageSystem>> stores;
  std::vector<std::unique_ptr<GridFtpServer>> movers;
  GridFtpClient client{sim, engine, topology, "dst", "10.0.0.9",
                       &client_store};

  explicit StripedWorld(int stripe_count, Bandwidth disk_rate = 10e6) {
    topology.add_path("src", "dst", fat_quiet_path(), 1, sim.now());
    topology.add_path("dst", "src", fat_quiet_path(), 2, sim.now());
    for (int i = 0; i < stripe_count; ++i) {
      stores.push_back(std::make_unique<storage::StorageSystem>(
          "src", slow_disk(disk_rate), static_cast<std::uint64_t>(i) + 1,
          sim.now()));
      ServerConfig config;
      config.site = "src";
      config.host = "mover" + std::to_string(i) + ".src.org";
      config.ip = "10.0.0." + std::to_string(i + 1);
      movers.push_back(
          std::make_unique<GridFtpServer>(config, *stores.back()));
      movers.back()->fs().add_volume("/data");
      movers.back()->fs().add_file("/data/big", 200'000'000);
    }
  }

  std::vector<GridFtpServer*> stripes() {
    std::vector<GridFtpServer*> out;
    for (auto& mover : movers) out.push_back(mover.get());
    return out;
  }
};

TEST(StripedGetTest, DeliversWholeFileAndLogsSlices) {
  StripedWorld world(4);
  std::optional<TransferOutcome> outcome;
  world.client.striped_get(world.stripes(), "/data/big", {},
                           [&](const TransferOutcome& o) { outcome = o; });
  world.sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->ok) << outcome->error;
  EXPECT_EQ(outcome->record.file_size, 200'000'000u);
  // Each mover logged exactly its slice.
  Bytes logged = 0;
  for (const auto* mover : world.stripes()) {
    ASSERT_EQ(mover->log().size(), 1u);
    logged += mover->log().records().front().file_size;
  }
  EXPECT_EQ(logged, 200'000'000u);
}

TEST(StripedGetTest, StripingAggregatesStorageBandwidth) {
  // Disks cap at 10 MB/s each on an 80 MB/s path: one mover ~10 MB/s,
  // four movers ~40 MB/s.
  StripedWorld one(1);
  StripedWorld four(4);
  std::optional<TransferOutcome> single, striped;
  one.client.striped_get(one.stripes(), "/data/big", {},
                         [&](const TransferOutcome& o) { single = o; });
  four.client.striped_get(four.stripes(), "/data/big", {},
                          [&](const TransferOutcome& o) { striped = o; });
  one.sim.run();
  four.sim.run();
  ASSERT_TRUE(single && single->ok);
  ASSERT_TRUE(striped && striped->ok);
  EXPECT_NEAR(single->record.bandwidth(), 10e6, 1.5e6);
  EXPECT_GT(striped->record.bandwidth(), 3.0 * single->record.bandwidth());
}

TEST(StripedGetTest, UnevenSizeDistributesRemainder) {
  StripedWorld world(3);
  for (auto* mover : world.stripes()) {
    mover->fs().add_file("/data/odd", 100'000'001);  // not divisible by 3
  }
  std::optional<TransferOutcome> outcome;
  world.client.striped_get(world.stripes(), "/data/odd", {},
                           [&](const TransferOutcome& o) { outcome = o; });
  world.sim.run();
  ASSERT_TRUE(outcome && outcome->ok);
  Bytes logged = 0;
  for (const auto* mover : world.stripes()) {
    for (const auto& r : mover->log().records()) {
      if (r.file_name == "/data/odd") logged += r.file_size;
    }
  }
  EXPECT_EQ(logged, 100'000'001u);
}

TEST(StripedGetTest, SingleStripeDegeneratesToPlainGet) {
  StripedWorld world(1);
  std::optional<TransferOutcome> outcome;
  world.client.striped_get(world.stripes(), "/data/big", {},
                           [&](const TransferOutcome& o) { outcome = o; });
  world.sim.run();
  ASSERT_TRUE(outcome && outcome->ok);
  EXPECT_EQ(outcome->record.file_size, 200'000'000u);
}

TEST(StripedGetTest, MissingFileOnAnyStripeFails) {
  StripedWorld world(3);
  world.movers[1]->fs().remove_file("/data/big");
  std::optional<TransferOutcome> outcome;
  world.client.striped_get(world.stripes(), "/data/big", {},
                           [&](const TransferOutcome& o) { outcome = o; });
  world.sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
  EXPECT_NE(outcome->error.find("550"), std::string::npos);
}

TEST(StripedGetTest, SizeMismatchAcrossStripesFails) {
  StripedWorld world(2);
  world.movers[1]->fs().add_file("/data/big", 100);  // inconsistent replica
  std::optional<TransferOutcome> outcome;
  world.client.striped_get(world.stripes(), "/data/big", {},
                           [&](const TransferOutcome& o) { outcome = o; });
  world.sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
  EXPECT_NE(outcome->error.find("551"), std::string::npos);
}

TEST(StripedGetTest, EmptyStripeListFails) {
  StripedWorld world(1);
  std::optional<TransferOutcome> outcome;
  world.client.striped_get({}, "/data/big", {},
                           [&](const TransferOutcome& o) { outcome = o; });
  world.sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
}

TEST(StripedGetTest, DrainedMoverFailsWith421) {
  StripedWorld world(3);
  world.movers[2]->set_accepting(false);
  std::optional<TransferOutcome> outcome;
  world.client.striped_get(world.stripes(), "/data/big", {},
                           [&](const TransferOutcome& o) { outcome = o; });
  world.sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
  EXPECT_NE(outcome->error.find("421"), std::string::npos);
}

}  // namespace
}  // namespace wadp::gridftp
