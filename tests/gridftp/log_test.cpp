#include "gridftp/log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace wadp::gridftp {
namespace {

TransferRecord record_at(SimTime end, Bytes size = 10'000'000) {
  TransferRecord r;
  r.host = "h";
  r.source_ip = "1.2.3.4";
  r.file_name = "/v/f";
  r.file_size = size;
  r.volume = "/v";
  r.start_time = end - 10.0;
  r.end_time = end;
  r.op = Operation::kRead;
  r.streams = 8;
  r.tcp_buffer = 1'000'000;
  return r;
}

TEST(TransferLogTest, UnboundedKeepsEverything) {
  TransferLog log;
  for (int i = 0; i < 100; ++i) log.append(record_at(1000.0 + i));
  EXPECT_EQ(log.size(), 100u);
  EXPECT_TRUE(log.archived().empty());
}

TEST(TransferLogTest, RunningWindowByCount) {
  TransferLog log({.policy = TrimPolicy::kRunningWindow, .max_entries = 10});
  for (int i = 0; i < 25; ++i) log.append(record_at(1000.0 + i));
  EXPECT_EQ(log.size(), 10u);
  // Oldest retained entry is #15 (0-indexed).
  EXPECT_DOUBLE_EQ(log.records().front().end_time, 1015.0);
}

TEST(TransferLogTest, RunningWindowByAge) {
  TransferLog log({.policy = TrimPolicy::kRunningWindow,
                   .max_entries = 1000,
                   .max_age = 50.0});
  for (int i = 0; i < 100; ++i) log.append(record_at(1000.0 + i));
  // Newest is 1099; horizon 1049; entries 1049..1099 remain.
  EXPECT_EQ(log.size(), 51u);
  EXPECT_GE(log.records().front().end_time, 1049.0);
}

TEST(TransferLogTest, FlushRestartArchivesWholeLog) {
  TransferLog log({.policy = TrimPolicy::kFlushRestart, .max_entries = 10});
  for (int i = 0; i < 25; ++i) log.append(record_at(1000.0 + i));
  // Flushes at 10 and 20; 5 live entries remain.
  EXPECT_EQ(log.size(), 5u);
  EXPECT_EQ(log.archived().size(), 20u);
  // Archive preserves order.
  EXPECT_DOUBLE_EQ(log.archived().front().end_time, 1000.0);
  EXPECT_DOUBLE_EQ(log.archived().back().end_time, 1019.0);
}

TEST(TransferLogTest, UlmTextRoundTrip) {
  TransferLog log;
  log.append(record_at(1000.0, 5'000'000));
  log.append(record_at(1010.0, 25'000'000));
  const auto text = log.to_ulm_text();
  const auto parsed = TransferLog::parse_ulm_text(text);
  EXPECT_EQ(parsed.skipped, 0u);
  ASSERT_EQ(parsed.records.size(), 2u);
  EXPECT_EQ(parsed.records[0], log.records()[0]);
  EXPECT_EQ(parsed.records[1], log.records()[1]);
}

TEST(TransferLogTest, ParseSkipsGarbageLines) {
  const auto parsed = TransferLog::parse_ulm_text(
      "not a ulm line\nDATE=x HOST=h\n");
  EXPECT_EQ(parsed.records.size(), 0u);
  EXPECT_EQ(parsed.skipped, 2u);  // malformed + non-transfer record
}

TEST(TransferLogTest, SaveAndLoadRoundTrip) {
  TransferLog log;
  for (int i = 0; i < 5; ++i) log.append(record_at(2000.0 + i * 7));
  const std::string path = ::testing::TempDir() + "/wadp_log_test.ulm";
  const auto saved = log.save(path);
  ASSERT_TRUE(saved.ok()) << saved.error();
  const auto loaded = TransferLog::load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  ASSERT_EQ(loaded.value().size(), 5u);
  EXPECT_EQ(loaded.value().records()[3], log.records()[3]);
  std::remove(path.c_str());
}

TEST(TransferLogTest, LoadMissingFileFails) {
  const auto loaded = TransferLog::load("/nonexistent/dir/x.ulm");
  EXPECT_FALSE(loaded.ok());
}

TEST(TransferLogTest, LoadAppliesTrimPolicy) {
  TransferLog log;
  for (int i = 0; i < 30; ++i) log.append(record_at(1000.0 + i));
  const std::string path = ::testing::TempDir() + "/wadp_log_trim_test.ulm";
  ASSERT_TRUE(log.save(path).ok());
  const auto loaded = TransferLog::load(
      path, {.policy = TrimPolicy::kRunningWindow, .max_entries = 5});
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 5u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wadp::gridftp
