#include "gridftp/record.hpp"

#include <gtest/gtest.h>

namespace wadp::gridftp {
namespace {

TransferRecord sample_record() {
  // The first row of Fig. 3.
  TransferRecord r;
  r.host = "dpsslx04.lbl.gov";
  r.source_ip = "140.221.65.69";
  r.file_name = "/home/ftp/vazhkuda/10 MB";
  r.file_size = 10'240'000;
  r.volume = "/home/ftp";
  r.start_time = 998'988'165.0;
  r.end_time = 998'988'169.0;
  r.op = Operation::kRead;
  r.streams = 8;
  r.tcp_buffer = 1'000'000;
  return r;
}

TEST(OperationTest, StringRoundTrip) {
  EXPECT_STREQ(to_string(Operation::kRead), "read");
  EXPECT_STREQ(to_string(Operation::kWrite), "write");
  EXPECT_EQ(*operation_from_string("read"), Operation::kRead);
  EXPECT_EQ(*operation_from_string("WRITE"), Operation::kWrite);
  EXPECT_FALSE(operation_from_string("append").has_value());
}

TEST(TransferRecordTest, BandwidthUsesPaperFormula) {
  // Fig. 3 row 1: 10240000 bytes / 4 s = 2560 KB/s.
  const auto r = sample_record();
  EXPECT_DOUBLE_EQ(r.total_time(), 4.0);
  EXPECT_DOUBLE_EQ(r.bandwidth_kb_per_sec(), 2560.0);
  EXPECT_DOUBLE_EQ(r.bandwidth(), 2'560'000.0);
}

TEST(TransferRecordTest, UlmRoundTrip) {
  const auto original = sample_record();
  const auto parsed = TransferRecord::from_ulm(original.to_ulm());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, original);
}

TEST(TransferRecordTest, UlmCarriesFig3Fields) {
  const auto ulm = sample_record().to_ulm();
  EXPECT_EQ(*ulm.get("SOURCE"), "140.221.65.69");
  EXPECT_EQ(*ulm.get("FILE"), "/home/ftp/vazhkuda/10 MB");
  EXPECT_EQ(*ulm.get_int("SIZE"), 10'240'000);
  EXPECT_EQ(*ulm.get("VOLUME"), "/home/ftp");
  EXPECT_EQ(*ulm.get("OP"), "read");
  EXPECT_EQ(*ulm.get_int("STREAMS"), 8);
  EXPECT_EQ(*ulm.get_int("BUFFER"), 1'000'000);
  EXPECT_DOUBLE_EQ(*ulm.get_double("TIME"), 4.0);
  EXPECT_DOUBLE_EQ(*ulm.get_double("BW"), 2560.0);
}

TEST(TransferRecordTest, DiskAndProbeRoundTripWhenSampled) {
  auto r = sample_record();
  r.disk_throughput = 37'500'000.0;  // 37500.000 KB/s, exact in 3 decimals
  r.net_probe = 6'250'000.0;         // 6250.000 KB/s
  const auto ulm = r.to_ulm();
  EXPECT_DOUBLE_EQ(*ulm.get_double("DISK"), 37'500.0);
  EXPECT_DOUBLE_EQ(*ulm.get_double("PROBE"), 6'250.0);
  const auto parsed = TransferRecord::from_ulm(ulm);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, r);
}

TEST(TransferRecordTest, UnsampledRecordsOmitDiskAndProbeKeys) {
  // Records from servers that never sampled (disk/probe 0) must log
  // byte-identically to the pre-instrumentation format: no new keys.
  const auto ulm = sample_record().to_ulm();
  EXPECT_FALSE(ulm.get("DISK").has_value());
  EXPECT_FALSE(ulm.get("PROBE").has_value());
  // And a key-free line parses with both fields defaulted.
  const auto parsed = TransferRecord::from_ulm(ulm);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->disk_throughput, 0.0);
  EXPECT_EQ(parsed->net_probe, 0.0);
}

TEST(TransferRecordTest, FromUlmRejectsCorruptDiskOrProbe) {
  {
    auto ulm = sample_record().to_ulm();
    ulm.set_double("DISK", -100.0, 3);
    EXPECT_FALSE(TransferRecord::from_ulm(ulm).has_value());
  }
  {
    auto ulm = sample_record().to_ulm();
    ulm.set("PROBE", "inf");
    EXPECT_FALSE(TransferRecord::from_ulm(ulm).has_value());
  }
  {
    auto ulm = sample_record().to_ulm();
    ulm.set("DISK", "nan");
    EXPECT_FALSE(TransferRecord::from_ulm(ulm).has_value());
  }
  {
    auto ulm = sample_record().to_ulm();
    ulm.set("DISK", "fast");  // present but unparseable
    EXPECT_FALSE(TransferRecord::from_ulm(ulm).has_value());
  }
}

TEST(TransferRecordTest, FromUlmRejectsMissingFields) {
  auto ulm = sample_record().to_ulm();
  util::UlmRecord incomplete;
  for (const auto& [k, v] : ulm.fields()) {
    if (k != "SIZE") incomplete.set(k, v);
  }
  EXPECT_FALSE(TransferRecord::from_ulm(incomplete).has_value());
}

TEST(TransferRecordTest, FromUlmRejectsInvertedTimes) {
  auto ulm = sample_record().to_ulm();
  ulm.set_double("END", sample_record().start_time - 1.0, 3);
  EXPECT_FALSE(TransferRecord::from_ulm(ulm).has_value());
}

TEST(TransferRecordTest, FromUlmRejectsZeroSize) {
  auto ulm = sample_record().to_ulm();
  ulm.set_int("SIZE", 0);
  EXPECT_FALSE(TransferRecord::from_ulm(ulm).has_value());
}

TEST(TransferRecordTest, FromUlmRejectsBadStreams) {
  auto ulm = sample_record().to_ulm();
  ulm.set_int("STREAMS", 0);
  EXPECT_FALSE(TransferRecord::from_ulm(ulm).has_value());
}

TEST(TransferRecordTest, FromUlmRejectsUnknownOperation) {
  auto ulm = sample_record().to_ulm();
  ulm.set("OP", "mkdir");
  EXPECT_FALSE(TransferRecord::from_ulm(ulm).has_value());
}

}  // namespace
}  // namespace wadp::gridftp
