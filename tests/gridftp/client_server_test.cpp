#include <gtest/gtest.h>

#include <optional>

#include "gridftp/client.hpp"
#include "gridftp/server.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"
#include "storage/storage.hpp"

namespace wadp::gridftp {
namespace {

/// Two-site world with quiet, deterministic paths.
struct World {
  sim::Simulator sim{998'000'000.0};
  net::FluidEngine engine{sim};
  net::Topology topology;
  storage::StorageSystem src_storage{"src", dedicated(), 1, 998'000'000.0};
  storage::StorageSystem dst_storage{"dst", dedicated(), 2, 998'000'000.0};
  GridFtpServer server;
  GridFtpServer dst_server;
  GridFtpClient client;

  static storage::StorageParams dedicated() {
    storage::StorageParams p;
    p.local_load.reset();
    return p;
  }

  static net::PathParams quiet() {
    net::PathParams p;
    p.bottleneck = 10'000'000.0;
    p.rtt = 0.05;
    p.load.base = 0.0;
    p.load.diurnal_amplitude = 0.0;
    p.load.ar_sigma = 0.0;
    p.load.episode_rate_per_hour = 0.0;
    return p;
  }

  World()
      : server({.site = "src", .host = "ftp.src.org", .ip = "10.0.0.1"},
               src_storage),
        dst_server({.site = "dst", .host = "ftp.dst.org", .ip = "10.0.0.2"},
                   dst_storage),
        client(sim, engine, topology, "dst", "10.0.0.2", &dst_storage) {
    topology.add_path("src", "dst", quiet(), 1, sim.now());
    topology.add_path("dst", "src", quiet(), 2, sim.now());
    server.fs().add_volume("/home/ftp");
    server.fs().add_file("/home/ftp/data/100 MB", 100'000'000);
    dst_server.fs().add_volume("/home/ftp");
  }
};

TEST(ClientServerTest, GetTransfersAndLogs) {
  World w;
  std::optional<TransferOutcome> outcome;
  w.client.get(w.server, "/home/ftp/data/100 MB", {},
               [&](const TransferOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->ok) << outcome->error;
  EXPECT_EQ(w.server.log().size(), 1u);
  const auto& record = w.server.log().records().front();
  EXPECT_EQ(record, outcome->record);
  EXPECT_EQ(record.file_size, 100'000'000u);
  EXPECT_EQ(record.source_ip, "10.0.0.2");
  EXPECT_EQ(record.host, "ftp.src.org");
  EXPECT_EQ(record.volume, "/home/ftp");
  EXPECT_EQ(record.op, Operation::kRead);
  EXPECT_EQ(record.streams, 8);
  EXPECT_EQ(record.tcp_buffer, net::kTunedTcpBuffer);
  // ~10 MB/s quiet path: 100 MB in a bit over 10 s.
  EXPECT_GT(record.total_time(), 9.0);
  EXPECT_LT(record.total_time(), 14.0);
}

TEST(ClientServerTest, ControlOverheadExcludedFromTimedWindow) {
  World w;
  std::optional<TransferOutcome> outcome;
  const SimTime issued = w.sim.now();
  w.client.get(w.server, "/home/ftp/data/100 MB", {},
               [&](const TransferOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome && outcome->ok);
  EXPECT_GT(outcome->control_overhead, 0.0);
  // Auth happened before the logged window opened.
  EXPECT_GE(outcome->record.start_time, issued + outcome->control_overhead);
}

TEST(ClientServerTest, GetMissingFileFails) {
  World w;
  std::optional<TransferOutcome> outcome;
  w.client.get(w.server, "/home/ftp/none", {},
               [&](const TransferOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
  EXPECT_NE(outcome->error.find("550"), std::string::npos);
  EXPECT_TRUE(w.server.log().empty());  // nothing to instrument
}

TEST(ClientServerTest, PartialTransferLogsBytesMoved) {
  World w;
  std::optional<TransferOutcome> outcome;
  w.client.get_partial(w.server, "/home/ftp/data/100 MB", 10'000'000,
                       5'000'000, {},
                       [&](const TransferOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome && outcome->ok);
  EXPECT_EQ(outcome->record.file_size, 5'000'000u);
}

TEST(ClientServerTest, PartialRangeValidation) {
  World w;
  std::optional<TransferOutcome> outcome;
  w.client.get_partial(w.server, "/home/ftp/data/100 MB", 99'000'000,
                       5'000'000, {},
                       [&](const TransferOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
  EXPECT_NE(outcome->error.find("551"), std::string::npos);
}

TEST(ClientServerTest, PutCreatesFileAndLogsWrite) {
  World w;
  std::optional<TransferOutcome> outcome;
  w.client.put(w.server, "/home/ftp/upload/new", 30'000'000, {},
               [&](const TransferOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome && outcome->ok);
  EXPECT_EQ(outcome->record.op, Operation::kWrite);
  EXPECT_EQ(*w.server.fs().file_size("/home/ftp/upload/new"), 30'000'000u);
}

TEST(ClientServerTest, PutOutsideVolumeFails) {
  World w;
  std::optional<TransferOutcome> outcome;
  w.client.put(w.server, "/etc/passwd", 1000, {},
               [&](const TransferOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
  EXPECT_NE(outcome->error.find("553"), std::string::npos);
}

TEST(ClientServerTest, PutZeroBytesFails) {
  World w;
  std::optional<TransferOutcome> outcome;
  w.client.put(w.server, "/home/ftp/zero", 0, {},
               [&](const TransferOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
}

TEST(ClientServerTest, ThirdPartyLogsAtBothEnds) {
  World w;
  std::optional<TransferOutcome> outcome;
  w.client.third_party(w.server, w.dst_server, "/home/ftp/data/100 MB",
                       "/home/ftp/copy", {},
                       [&](const TransferOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome && outcome->ok);
  EXPECT_EQ(w.server.log().size(), 1u);
  EXPECT_EQ(w.dst_server.log().size(), 1u);
  EXPECT_EQ(w.server.log().records().front().op, Operation::kRead);
  EXPECT_EQ(w.dst_server.log().records().front().op, Operation::kWrite);
  // The read record names the destination server as the remote peer.
  EXPECT_EQ(w.server.log().records().front().source_ip, "10.0.0.2");
  EXPECT_TRUE(w.dst_server.fs().exists("/home/ftp/copy"));
}

TEST(ClientServerTest, TransferOptionsReachTheLog) {
  World w;
  TransferOptions options{.streams = 4, .buffer = 256 * 1024};
  std::optional<TransferOutcome> outcome;
  w.client.get(w.server, "/home/ftp/data/100 MB", options,
               [&](const TransferOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome && outcome->ok);
  EXPECT_EQ(outcome->record.streams, 4);
  EXPECT_EQ(outcome->record.tcp_buffer, 256u * 1024u);
}

TEST(ClientServerTest, SequentialTransfersAccumulateInLog) {
  World w;
  int done = 0;
  const TransferCallback next = [&](const TransferOutcome& o) {
    ASSERT_TRUE(o.ok);
    ++done;
  };
  w.client.get(w.server, "/home/ftp/data/100 MB", {},
               [&](const TransferOutcome& o) {
                 next(o);
                 w.client.get(w.server, "/home/ftp/data/100 MB", {}, next);
               });
  w.sim.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(w.server.log().size(), 2u);
  // Entries are time-ordered.
  const auto records = w.server.log().records();
  EXPECT_LE(records[0].end_time, records[1].start_time);
}

TEST(ClientServerTest, ServerUrlFormat) {
  World w;
  EXPECT_EQ(w.server.url(), "gsiftp://ftp.src.org:2811");
}

TEST(ClientServerTest, ThirdPartySourceMissingFileFails) {
  World w;
  std::optional<TransferOutcome> outcome;
  w.client.third_party(w.server, w.dst_server, "/home/ftp/none", "/home/ftp/c",
                       {}, [&](const TransferOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
}

}  // namespace
}  // namespace wadp::gridftp
