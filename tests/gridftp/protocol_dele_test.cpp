#include <gtest/gtest.h>

#include "gridftp/protocol.hpp"

namespace wadp::gridftp {
namespace {

storage::StorageParams dedicated() {
  storage::StorageParams p;
  p.local_load.reset();
  return p;
}

TEST(ProtocolDeleTest, DeletesThroughTheControlChannel) {
  storage::StorageSystem store{"s", dedicated(), 1, 0.0};
  GridFtpServer server{{.site = "s", .host = "h", .ip = "1.1.1.1"}, store};
  server.fs().add_volume("/v");
  server.fs().add_file("/v/doomed", kMB);

  ServerSession session(server);
  session.handle_line("AUTH GSSAPI");
  session.handle_line("ADAT x");
  session.handle_line("USER u");
  session.handle_line("PASS p");

  EXPECT_EQ(session.handle_line("DELE /v/doomed").code, 250);
  EXPECT_FALSE(server.fs().exists("/v/doomed"));
  EXPECT_EQ(session.handle_line("DELE /v/doomed").code, 550);
  EXPECT_EQ(session.handle_line("RETR /v/doomed").code, 550);
}

}  // namespace
}  // namespace wadp::gridftp
