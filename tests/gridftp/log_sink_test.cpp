// Streaming and flush sinks: the Section 3 persistence strategies
// ("log data to a standard location in the file system" and NetLogger's
// "flush the logs to persistent storage and restart logging").
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "gridftp/log.hpp"

namespace wadp::gridftp {
namespace {

TransferRecord record_at(SimTime end) {
  TransferRecord r;
  r.host = "h";
  r.source_ip = "1.2.3.4";
  r.file_name = "/v/f";
  r.file_size = 10 * kMB;
  r.volume = "/v";
  r.start_time = end - 5.0;
  r.end_time = end;
  r.op = Operation::kRead;
  r.streams = 8;
  r.tcp_buffer = 1'000'000;
  return r;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

TEST(LogStreamTest, EveryAppendReachesTheFile) {
  const std::string path = ::testing::TempDir() + "/wadp_stream_test.ulm";
  std::remove(path.c_str());
  TransferLog log;
  ASSERT_TRUE(log.stream_to(path).ok());
  EXPECT_TRUE(log.streaming());
  for (int i = 0; i < 5; ++i) log.append(record_at(1000.0 + i));

  const auto parsed = TransferLog::parse_ulm_text(slurp(path));
  EXPECT_EQ(parsed.records.size(), 5u);
  EXPECT_EQ(parsed.skipped, 0u);
  EXPECT_EQ(parsed.records[2], log.records()[2]);
  std::remove(path.c_str());
}

TEST(LogStreamTest, StreamSurvivesTrimming) {
  // The on-disk stream keeps everything even when the in-memory window
  // trims — the whole point of the standard-location log file.
  const std::string path = ::testing::TempDir() + "/wadp_stream_trim_test.ulm";
  std::remove(path.c_str());
  TransferLog log({.policy = TrimPolicy::kRunningWindow, .max_entries = 3});
  ASSERT_TRUE(log.stream_to(path).ok());
  for (int i = 0; i < 10; ++i) log.append(record_at(1000.0 + i));
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(TransferLog::parse_ulm_text(slurp(path)).records.size(), 10u);
  std::remove(path.c_str());
}

TEST(LogStreamTest, EmptyPathStopsStreaming) {
  const std::string path = ::testing::TempDir() + "/wadp_stream_stop_test.ulm";
  std::remove(path.c_str());
  TransferLog log;
  ASSERT_TRUE(log.stream_to(path).ok());
  log.append(record_at(1000.0));
  ASSERT_TRUE(log.stream_to("").ok());
  EXPECT_FALSE(log.streaming());
  log.append(record_at(1001.0));
  EXPECT_EQ(TransferLog::parse_ulm_text(slurp(path)).records.size(), 1u);
  std::remove(path.c_str());
}

TEST(LogStreamTest, UnwritablePathFails) {
  TransferLog log;
  EXPECT_FALSE(log.stream_to("/no/such/dir/x.ulm").ok());
  EXPECT_FALSE(log.streaming());
}

TEST(FlushSinkTest, FlushedBatchesGoToSinkNotArchive) {
  TransferLog log({.policy = TrimPolicy::kFlushRestart, .max_entries = 4});
  std::size_t flushed = 0;
  std::size_t batches = 0;
  log.set_flush_sink([&](std::span<const TransferRecord> batch) {
    flushed += batch.size();
    ++batches;
  });
  for (int i = 0; i < 10; ++i) log.append(record_at(1000.0 + i));
  EXPECT_EQ(batches, 2u);
  EXPECT_EQ(flushed, 8u);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_TRUE(log.archived().empty());
}

TEST(FlushSinkTest, FlushToFileAccumulatesUlm) {
  const std::string path = ::testing::TempDir() + "/wadp_flush_test.ulm";
  std::remove(path.c_str());
  TransferLog log({.policy = TrimPolicy::kFlushRestart, .max_entries = 3});
  ASSERT_TRUE(log.flush_to_file(path).ok());
  for (int i = 0; i < 7; ++i) log.append(record_at(1000.0 + i));
  // Two flushes of 3; one live entry remains in memory.
  EXPECT_EQ(TransferLog::parse_ulm_text(slurp(path)).records.size(), 6u);
  EXPECT_EQ(log.size(), 1u);
  std::remove(path.c_str());
}

TEST(FlushSinkTest, FlushToUnwritableFileFailsEagerly) {
  TransferLog log({.policy = TrimPolicy::kFlushRestart, .max_entries = 3});
  EXPECT_FALSE(log.flush_to_file("/no/such/dir/x.ulm").ok());
}

}  // namespace
}  // namespace wadp::gridftp
