// Failure injection: server availability and broker failover.
#include <gtest/gtest.h>

#include "mds/gridftp_provider.hpp"
#include "replica/broker.hpp"
#include "workload/testbed.hpp"

namespace wadp::gridftp {
namespace {

TEST(AvailabilityTest, RejectedWithFourTwentyOneWhileDown) {
  workload::Testbed testbed(workload::Campaign::kAugust2001, 1);
  auto& server = testbed.server("lbl");
  server.set_accepting(false);

  std::optional<TransferOutcome> outcome;
  testbed.client("anl").get(server, workload::paper_file_path(10 * kMB), {},
                            [&](const TransferOutcome& o) { outcome = o; });
  testbed.sim().run_until(testbed.start_time() + 3600.0);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
  EXPECT_NE(outcome->error.find("421"), std::string::npos);
  EXPECT_TRUE(server.log().empty());
}

TEST(AvailabilityTest, RecoversAfterMaintenance) {
  workload::Testbed testbed(workload::Campaign::kAugust2001, 2);
  auto& server = testbed.server("lbl");
  server.set_accepting(false);
  server.set_accepting(true);

  std::optional<TransferOutcome> outcome;
  testbed.client("anl").get(server, workload::paper_file_path(10 * kMB), {},
                            [&](const TransferOutcome& o) { outcome = o; });
  testbed.sim().run_until(testbed.start_time() + 3600.0);
  ASSERT_TRUE(outcome && outcome->ok);
}

TEST(AvailabilityTest, PutAndPartialAndThirdPartyAlsoRejected) {
  workload::Testbed testbed(workload::Campaign::kAugust2001, 3);
  auto& lbl = testbed.server("lbl");
  auto& isi = testbed.server("isi");
  lbl.set_accepting(false);
  auto& client = testbed.client("anl");

  int rejected = 0;
  const auto expect_421 = [&](const TransferOutcome& o) {
    EXPECT_FALSE(o.ok);
    EXPECT_NE(o.error.find("421"), std::string::npos);
    ++rejected;
  };
  client.put(lbl, "/home/ftp/up", 1000, {}, expect_421);
  client.get_partial(lbl, workload::paper_file_path(10 * kMB), 0, 100, {},
                     expect_421);
  client.third_party(lbl, isi, workload::paper_file_path(10 * kMB),
                     "/home/ftp/c", {}, expect_421);
  client.third_party(isi, lbl, workload::paper_file_path(10 * kMB),
                     "/home/ftp/c", {}, expect_421);
  testbed.sim().run_until(testbed.start_time() + 3600.0);
  EXPECT_EQ(rejected, 4);
}

TEST(AvailabilityTest, BrokerFailoverViaExcludeList) {
  workload::Testbed testbed(workload::Campaign::kAugust2001, 4);
  // Minimal delivery stack with no history: broker falls back to the
  // first non-excluded replica.
  mds::Giis giis("top");
  replica::ReplicaCatalog catalog;
  const replica::PhysicalReplica lbl{.site = "lbl",
                                     .server_host = "dpsslx04.lbl.gov",
                                     .path = "/p"};
  const replica::PhysicalReplica isi{.site = "isi",
                                     .server_host = "jet.isi.edu",
                                     .path = "/p"};
  catalog.add_replica("f", lbl);
  catalog.add_replica("f", isi);
  replica::ReplicaBroker broker(catalog, giis,
                                replica::SelectionPolicy::kPredictedBest);

  const auto first_try = broker.select("f", "1.2.3.4", kMB, 0.0);
  ASSERT_TRUE(first_try.has_value());
  EXPECT_EQ(first_try->replica, lbl);

  // LBL returned 421: retry excluding it.
  const std::vector<replica::PhysicalReplica> exclude = {lbl};
  const auto second_try = broker.select("f", "1.2.3.4", kMB, 0.0, exclude);
  ASSERT_TRUE(second_try.has_value());
  EXPECT_EQ(second_try->replica, isi);

  // Everything excluded: no selection.
  const std::vector<replica::PhysicalReplica> all = {lbl, isi};
  EXPECT_FALSE(broker.select("f", "1.2.3.4", kMB, 0.0, all).has_value());
}

TEST(AvailabilityTest, EndToEndFailoverFetchSucceeds) {
  workload::Testbed testbed(workload::Campaign::kAugust2001, 5);
  testbed.server("lbl").set_accepting(false);

  mds::Giis giis("top");
  replica::ReplicaCatalog catalog;
  const auto path = workload::paper_file_path(10 * kMB);
  catalog.add_replica("f", {.site = "lbl", .server_host = "dpsslx04.lbl.gov",
                            .path = path});
  catalog.add_replica("f", {.site = "isi", .server_host = "jet.isi.edu",
                            .path = path});
  replica::ReplicaBroker broker(catalog, giis,
                                replica::SelectionPolicy::kFirst);

  auto& client = testbed.client("anl");
  std::optional<TransferOutcome> final_outcome;
  std::vector<replica::PhysicalReplica> tried;

  // Select -> fetch -> on 421 retry with the failed replica excluded.
  std::function<void()> attempt = [&] {
    const auto selection = broker.select("f", client.ip(), 10 * kMB,
                                         testbed.sim().now(), tried);
    ASSERT_TRUE(selection.has_value());
    tried.push_back(selection->replica);
    client.get(testbed.server(selection->replica.site),
               selection->replica.path, {},
               [&](const TransferOutcome& outcome) {
                 if (!outcome.ok &&
                     outcome.error.find("421") != std::string::npos &&
                     tried.size() < 2) {
                   attempt();
                   return;
                 }
                 final_outcome = outcome;
               });
  };
  attempt();
  testbed.sim().run_until(testbed.start_time() + 7200.0);
  ASSERT_TRUE(final_outcome.has_value());
  EXPECT_TRUE(final_outcome->ok) << final_outcome->error;
  EXPECT_EQ(tried.size(), 2u);
  EXPECT_EQ(tried[0].site, "lbl");
  EXPECT_EQ(tried[1].site, "isi");
}

}  // namespace
}  // namespace wadp::gridftp
