#include "gridftp/protocol.hpp"

#include <gtest/gtest.h>

namespace wadp::gridftp {
namespace {

// --- codecs -----------------------------------------------------------------

TEST(CommandMessageTest, ParseBasics) {
  const auto c = CommandMessage::parse("RETR /home/ftp/vazhkuda/10 MB");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->verb, "RETR");
  EXPECT_EQ(c->argument, "/home/ftp/vazhkuda/10 MB");  // spaces preserved
}

TEST(CommandMessageTest, VerbUppercased) {
  const auto c = CommandMessage::parse("retr /x");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->verb, "RETR");
}

TEST(CommandMessageTest, NoArgument) {
  const auto c = CommandMessage::parse("PASV");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->verb, "PASV");
  EXPECT_TRUE(c->argument.empty());
}

TEST(CommandMessageTest, RejectsMalformed) {
  EXPECT_FALSE(CommandMessage::parse("").has_value());
  EXPECT_FALSE(CommandMessage::parse("   ").has_value());
  EXPECT_FALSE(CommandMessage::parse("AB x").has_value());      // too short
  EXPECT_FALSE(CommandMessage::parse("TOOLONG x").has_value()); // too long
  EXPECT_FALSE(CommandMessage::parse("R2TR /x").has_value());   // non-alpha
}

TEST(CommandMessageTest, LineRoundTrip) {
  const CommandMessage c{.verb = "ERET", .argument = "P 0 100 /a b"};
  EXPECT_EQ(*CommandMessage::parse(c.to_line()), c);
  const CommandMessage bare{.verb = "QUIT", .argument = ""};
  EXPECT_EQ(bare.to_line(), "QUIT");
}

TEST(ReplyTest, ParseAndFormat) {
  const auto r = Reply::parse("226 transfer complete");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->code, 226);
  EXPECT_EQ(r->text, "transfer complete");
  EXPECT_EQ(r->to_line(), "226 transfer complete");
}

TEST(ReplyTest, CodeClasses) {
  EXPECT_TRUE((Reply{150, ""}).positive_preliminary());
  EXPECT_TRUE((Reply{226, ""}).positive_completion());
  EXPECT_TRUE((Reply{350, ""}).positive_intermediate());
  EXPECT_TRUE((Reply{421, ""}).transient_error());
  EXPECT_TRUE((Reply{550, ""}).permanent_error());
  EXPECT_TRUE((Reply{150, ""}).ok());
  EXPECT_FALSE((Reply{550, ""}).ok());
}

TEST(ReplyTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Reply::parse("").has_value());
  EXPECT_FALSE(Reply::parse("ok").has_value());
  EXPECT_FALSE(Reply::parse("22").has_value());
  EXPECT_FALSE(Reply::parse("226transfer").has_value());  // no space
  EXPECT_FALSE(Reply::parse("2a6 x").has_value());
}

// --- session fixture ---------------------------------------------------------

storage::StorageParams dedicated() {
  storage::StorageParams p;
  p.local_load.reset();
  return p;
}

struct SessionFixture : ::testing::Test {
  storage::StorageSystem store{"lbl", dedicated(), 1, 0.0};
  GridFtpServer server{
      {.site = "lbl", .host = "dpsslx04.lbl.gov", .ip = "1.1.1.1"}, store};
  ServerSession session{server};

  void SetUp() override {
    server.fs().add_volume("/home/ftp");
    server.fs().add_file("/home/ftp/vazhkuda/10 MB", 10 * kMB);
  }

  void login() {
    EXPECT_EQ(session.handle_line("AUTH GSSAPI").code, 334);
    EXPECT_EQ(session.handle_line("ADAT dG9rZW4=").code, 235);
    EXPECT_EQ(session.handle_line("USER alice").code, 331);
    EXPECT_EQ(session.handle_line("PASS x").code, 230);
    EXPECT_EQ(session.state(), SessionState::kReady);
  }
};

TEST_F(SessionFixture, FullLoginSequence) {
  EXPECT_EQ(session.state(), SessionState::kAwaitingAuth);
  login();
  EXPECT_EQ(session.authenticated_user(), "alice");
}

TEST_F(SessionFixture, CommandsBeforeAuthRejected) {
  EXPECT_EQ(session.handle_line("RETR /home/ftp/vazhkuda/10 MB").code, 530);
  EXPECT_EQ(session.handle_line("USER alice").code, 530);
}

TEST_F(SessionFixture, OnlyGssapiAccepted) {
  EXPECT_EQ(session.handle_line("AUTH TLS").code, 504);
  EXPECT_EQ(session.handle_line("AUTH GSSAPI").code, 334);
}

TEST_F(SessionFixture, BadSequenceDuringLogin) {
  session.handle_line("AUTH GSSAPI");
  EXPECT_EQ(session.handle_line("USER alice").code, 503);  // ADAT expected
  session.handle_line("ADAT x");
  EXPECT_EQ(session.handle_line("PASS x").code, 503);  // USER expected
}

TEST_F(SessionFixture, EmptyAdatRejected) {
  session.handle_line("AUTH GSSAPI");
  EXPECT_EQ(session.handle_line("ADAT").code, 535);
}

TEST_F(SessionFixture, NegotiationUpdatesOptions) {
  login();
  EXPECT_EQ(session.handle_line("TYPE I").code, 200);
  EXPECT_EQ(session.handle_line("MODE E").code, 200);
  EXPECT_EQ(session.handle_line("SBUF 1000000").code, 200);
  EXPECT_EQ(session.handle_line("OPTS RETR Parallelism=8;").code, 200);
  EXPECT_EQ(session.handle_line("PASV").code, 227);
  EXPECT_EQ(session.options().type, 'I');
  EXPECT_EQ(session.options().mode, 'E');
  EXPECT_EQ(session.options().buffer, 1'000'000u);
  EXPECT_EQ(session.options().parallelism, 8);
  EXPECT_TRUE(session.options().passive);
}

TEST_F(SessionFixture, BadNegotiationArguments) {
  login();
  EXPECT_EQ(session.handle_line("TYPE X").code, 504);
  EXPECT_EQ(session.handle_line("MODE Q").code, 504);
  EXPECT_EQ(session.handle_line("SBUF -5").code, 501);
  EXPECT_EQ(session.handle_line("SBUF lots").code, 501);
  EXPECT_EQ(session.handle_line("OPTS RETR Parallelism=0;").code, 501);
  EXPECT_EQ(session.handle_line("OPTS PASV Weird=1;").code, 501);
}

TEST_F(SessionFixture, SizeQuery) {
  login();
  const auto reply = session.handle_line("SIZE /home/ftp/vazhkuda/10 MB");
  EXPECT_EQ(reply.code, 213);
  EXPECT_EQ(reply.text, std::to_string(10 * kMB));
  EXPECT_EQ(session.handle_line("SIZE /nope").code, 550);
}

TEST_F(SessionFixture, RetrArmsDataCommand) {
  login();
  session.handle_line("SBUF 1000000");
  session.handle_line("OPTS RETR Parallelism=8;");
  const auto reply = session.handle_line("RETR /home/ftp/vazhkuda/10 MB");
  EXPECT_EQ(reply.code, 150);
  EXPECT_EQ(session.state(), SessionState::kTransferring);
  const auto data = session.take_pending_data();
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->kind, DataCommand::Kind::kRetrieve);
  EXPECT_EQ(data->path, "/home/ftp/vazhkuda/10 MB");
  EXPECT_EQ(data->offset, 0u);
  EXPECT_EQ(*data->length, 10 * kMB);
  EXPECT_EQ(data->streams, 8);
  EXPECT_EQ(data->buffer, 1'000'000u);
  EXPECT_EQ(session.complete_transfer(true).code, 226);
  EXPECT_EQ(session.state(), SessionState::kReady);
}

TEST_F(SessionFixture, RetrMissingFile) {
  login();
  EXPECT_EQ(session.handle_line("RETR /home/ftp/none").code, 550);
  EXPECT_EQ(session.state(), SessionState::kReady);
  EXPECT_FALSE(session.take_pending_data().has_value());
}

TEST_F(SessionFixture, RestOffsetsRetrieve) {
  login();
  EXPECT_EQ(session.handle_line("REST 4000000").code, 350);
  session.handle_line("RETR /home/ftp/vazhkuda/10 MB");
  const auto data = session.take_pending_data();
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->offset, 4'000'000u);
  EXPECT_EQ(*data->length, 6'000'000u);
  // REST is one-shot: the next RETR starts from zero.
  session.complete_transfer(true);
  session.handle_line("RETR /home/ftp/vazhkuda/10 MB");
  EXPECT_EQ(session.take_pending_data()->offset, 0u);
}

TEST_F(SessionFixture, RestBeyondEndRejected) {
  login();
  session.handle_line("REST 99000000");
  EXPECT_EQ(session.handle_line("RETR /home/ftp/vazhkuda/10 MB").code, 551);
}

TEST_F(SessionFixture, EretPartialRetrieve) {
  login();
  const auto reply =
      session.handle_line("ERET P 1000000 2000000 /home/ftp/vazhkuda/10 MB");
  EXPECT_EQ(reply.code, 150);
  const auto data = session.take_pending_data();
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->offset, 1'000'000u);
  EXPECT_EQ(*data->length, 2'000'000u);
  EXPECT_EQ(data->path, "/home/ftp/vazhkuda/10 MB");  // spaces rejoined
}

TEST_F(SessionFixture, EretValidation) {
  login();
  EXPECT_EQ(session.handle_line("ERET P 9000000 2000000 "
                                "/home/ftp/vazhkuda/10 MB").code, 551);
  EXPECT_EQ(session.handle_line("ERET P 0 0 /x").code, 501);
  EXPECT_EQ(session.handle_line("ERET X 0 10 /x").code, 501);
  EXPECT_EQ(session.handle_line("ERET P 0").code, 501);
}

TEST_F(SessionFixture, StorValidatesVolume) {
  login();
  EXPECT_EQ(session.handle_line("STOR /etc/passwd").code, 553);
  session.handle_line("ALLO 5000000");
  const auto reply = session.handle_line("STOR /home/ftp/upload");
  EXPECT_EQ(reply.code, 150);
  const auto data = session.take_pending_data();
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->kind, DataCommand::Kind::kStore);
  EXPECT_EQ(*data->store_size, 5'000'000u);
}

TEST_F(SessionFixture, CommandsDuringTransferRejected) {
  login();
  session.handle_line("RETR /home/ftp/vazhkuda/10 MB");
  EXPECT_EQ(session.handle_line("RETR /home/ftp/vazhkuda/10 MB").code, 503);
  EXPECT_EQ(session.handle_line("SIZE /home/ftp/vazhkuda/10 MB").code, 503);
}

TEST_F(SessionFixture, FailedTransferEmits426) {
  login();
  session.handle_line("RETR /home/ftp/vazhkuda/10 MB");
  (void)session.take_pending_data();
  EXPECT_EQ(session.complete_transfer(false).code, 426);
  EXPECT_EQ(session.state(), SessionState::kReady);
}

TEST_F(SessionFixture, QuitClosesSession) {
  login();
  EXPECT_EQ(session.handle_line("QUIT").code, 221);
  EXPECT_EQ(session.state(), SessionState::kClosed);
  EXPECT_EQ(session.handle_line("NOOP").code, 421);
}

TEST_F(SessionFixture, DrainedServerReturns421) {
  server.set_accepting(false);
  EXPECT_EQ(session.handle_line("AUTH GSSAPI").code, 421);
  EXPECT_EQ(session.state(), SessionState::kClosed);
}

TEST_F(SessionFixture, UnknownCommandIs502) {
  login();
  EXPECT_EQ(session.handle_line("MKD /x").code, 502);
}

TEST_F(SessionFixture, GarbageLineIs500) {
  EXPECT_EQ(session.handle_line("!!!").code, 500);
}

TEST_F(SessionFixture, SystFeatPwdInformational) {
  login();
  EXPECT_EQ(session.handle_line("SYST").code, 215);
  EXPECT_EQ(session.handle_line("FEAT").code, 211);
  EXPECT_EQ(session.handle_line("PWD").code, 257);
}

TEST_F(SessionFixture, NoopAndQuitWorkBeforeAuth) {
  EXPECT_EQ(session.handle_line("NOOP").code, 200);
  EXPECT_EQ(session.handle_line("QUIT").code, 221);
}

}  // namespace
}  // namespace wadp::gridftp
