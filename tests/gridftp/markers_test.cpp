// Performance markers (GridFTP's 112 replies) and the engine progress
// API beneath them.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "gridftp/client.hpp"
#include "gridftp/server.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"
#include "storage/storage.hpp"

namespace wadp::gridftp {
namespace {

storage::StorageParams dedicated() {
  storage::StorageParams p;
  p.local_load.reset();
  return p;
}

net::PathParams quiet() {
  net::PathParams p;
  p.bottleneck = 10e6;
  p.rtt = 0.05;
  p.load.base = 0.0;
  p.load.diurnal_amplitude = 0.0;
  p.load.ar_sigma = 0.0;
  p.load.episode_rate_per_hour = 0.0;
  return p;
}

struct World {
  sim::Simulator sim{1'000'000'000.0};
  net::FluidEngine engine{sim};
  net::Topology topology;
  storage::StorageSystem store{"src", dedicated(), 1, 1'000'000'000.0};
  GridFtpServer server{{.site = "src", .host = "h", .ip = "1.1.1.1"}, store};
  GridFtpClient client{sim, engine, topology, "dst", "2.2.2.2"};

  World() {
    topology.add_path("src", "dst", quiet(), 1, sim.now());
    topology.add_path("dst", "src", quiet(), 2, sim.now());
    server.fs().add_volume("/v");
    server.fs().add_file("/v/big", 100'000'000);
  }
};

TEST(EngineProgressTest, TracksBytesMoved) {
  World w;
  const auto id = w.engine.start_flow(
      {.path = w.topology.find("src", "dst"), .streams = 8,
       .buffer = 1'000'000, .size = 50'000'000});
  w.sim.run_until(w.sim.now() + 2.0);
  const auto p = w.engine.progress(id);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->total, 50'000'000u);
  EXPECT_GT(p->moved, 5'000'000u);   // ~10 MB/s for 2 s, minus ramp
  EXPECT_LT(p->moved, 25'000'000u);
  EXPECT_GT(p->rate, 0.0);
  w.sim.run();
  EXPECT_FALSE(w.engine.progress(id).has_value());  // completed
}

TEST(EngineProgressTest, UnknownFlowIsNullopt) {
  World w;
  EXPECT_FALSE(w.engine.progress(4242).has_value());
}

TEST(MarkerTest, MarkersArriveOnCadenceAndAreMonotone) {
  World w;
  std::vector<std::pair<SimTime, Bytes>> markers;
  TransferOptions options;
  options.marker_interval = 2.0;
  options.on_marker = [&](Bytes moved, Bytes total, SimTime at) {
    EXPECT_EQ(total, 100'000'000u);
    markers.emplace_back(at, moved);
  };
  std::optional<TransferOutcome> outcome;
  w.client.get(w.server, "/v/big", options,
               [&](const TransferOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome && outcome->ok);

  // ~10 s transfer at 2 s cadence: several markers, strictly increasing
  // bytes, spaced by the interval, none after the end of the transfer.
  ASSERT_GE(markers.size(), 3u);
  ASSERT_LE(markers.size(), 7u);
  for (std::size_t i = 1; i < markers.size(); ++i) {
    EXPECT_GT(markers[i].second, markers[i - 1].second);
    EXPECT_NEAR(markers[i].first - markers[i - 1].first, 2.0, 1e-6);
  }
  EXPECT_LE(markers.back().second, 100'000'000u);
  EXPECT_LE(markers.back().first, outcome->record.end_time + 1e-6);
}

TEST(MarkerTest, NoMarkersWhenDisabled) {
  World w;
  int calls = 0;
  TransferOptions options;  // marker_interval stays 0
  options.on_marker = [&](Bytes, Bytes, SimTime) { ++calls; };
  std::optional<TransferOutcome> outcome;
  w.client.get(w.server, "/v/big", options,
               [&](const TransferOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome && outcome->ok);
  EXPECT_EQ(calls, 0);
}

TEST(MarkerTest, LoopEndsAfterCompletion) {
  // No stray events should keep firing after the transfer finishes.
  World w;
  TransferOptions options;
  options.marker_interval = 1.0;
  options.on_marker = [](Bytes, Bytes, SimTime) {};
  bool done = false;
  w.client.get(w.server, "/v/big", options,
               [&](const TransferOutcome&) { done = true; });
  w.sim.run();  // must terminate (a live marker loop would never drain)
  EXPECT_TRUE(done);
  EXPECT_EQ(w.sim.pending_events(), 0u);
}

TEST(MarkerTest, WorksForPutAndThirdParty) {
  World w;
  storage::StorageSystem dst_store{"dst2", dedicated(), 3, w.sim.now()};
  GridFtpServer dst_server{{.site = "dst", .host = "h2", .ip = "3.3.3.3"},
                           dst_store};
  dst_server.fs().add_volume("/v");

  int markers = 0;
  TransferOptions options;
  options.marker_interval = 2.0;
  options.on_marker = [&](Bytes, Bytes, SimTime) { ++markers; };
  bool done = false;
  w.client.third_party(w.server, dst_server, "/v/big", "/v/copy", options,
                       [&](const TransferOutcome& o) {
                         EXPECT_TRUE(o.ok) << o.error;
                         done = true;
                       });
  w.sim.run();
  EXPECT_TRUE(done);
  EXPECT_GT(markers, 2);
}

}  // namespace
}  // namespace wadp::gridftp
