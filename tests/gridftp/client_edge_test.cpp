// Client edge cases: missing topology entries, control-RTT fallback,
// and option plumbing through the protocol layer.
#include <gtest/gtest.h>

#include <optional>

#include "gridftp/client.hpp"
#include "gridftp/server.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"
#include "storage/storage.hpp"

namespace wadp::gridftp {
namespace {

storage::StorageParams dedicated() {
  storage::StorageParams p;
  p.local_load.reset();
  return p;
}

net::PathParams quiet() {
  net::PathParams p;
  p.bottleneck = 10e6;
  p.rtt = 0.05;
  p.load.base = 0.0;
  p.load.diurnal_amplitude = 0.0;
  p.load.ar_sigma = 0.0;
  p.load.episode_rate_per_hour = 0.0;
  return p;
}

TEST(ClientEdgeTest, MissingDataPathReportsTopologyError) {
  sim::Simulator sim(0.0);
  net::FluidEngine engine(sim);
  net::Topology topology;
  // Only the control direction exists; data (src->dst) is missing.
  topology.add_path("dst", "src", quiet(), 1, 0.0);
  storage::StorageSystem store("src", dedicated(), 1, 0.0);
  GridFtpServer server({.site = "src", .host = "h", .ip = "1.1.1.1"}, store);
  server.fs().add_volume("/v");
  server.fs().add_file("/v/f", kMB);
  GridFtpClient client(sim, engine, topology, "dst", "2.2.2.2");

  std::optional<TransferOutcome> outcome;
  client.get(server, "/v/f", {}, [&](const TransferOutcome& o) { outcome = o; });
  sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
  EXPECT_NE(outcome->error.find("no path"), std::string::npos);
}

TEST(ClientEdgeTest, ControlRttFallsBackToReverseDirection) {
  // Only src->dst exists: the client's control channel (dst->src)
  // borrows the reverse path's RTT; the transfer still completes.
  sim::Simulator sim(0.0);
  net::FluidEngine engine(sim);
  net::Topology topology;
  topology.add_path("src", "dst", quiet(), 1, 0.0);
  storage::StorageSystem store("src", dedicated(), 1, 0.0);
  GridFtpServer server({.site = "src", .host = "h", .ip = "1.1.1.1"}, store);
  server.fs().add_volume("/v");
  server.fs().add_file("/v/f", 5 * kMB);
  GridFtpClient client(sim, engine, topology, "dst", "2.2.2.2");

  std::optional<TransferOutcome> outcome;
  client.get(server, "/v/f", {}, [&](const TransferOutcome& o) { outcome = o; });
  sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->ok) << outcome->error;
}

TEST(ClientEdgeTest, NoPathsAtAllStillGetsDefaultControlRtt) {
  // Neither direction registered: control overhead uses the 50 ms
  // default; the data phase then fails with the topology error.
  sim::Simulator sim(0.0);
  net::FluidEngine engine(sim);
  net::Topology topology;
  storage::StorageSystem store("src", dedicated(), 1, 0.0);
  GridFtpServer server({.site = "src", .host = "h", .ip = "1.1.1.1"}, store);
  server.fs().add_volume("/v");
  server.fs().add_file("/v/f", kMB);
  GridFtpClient client(sim, engine, topology, "dst", "2.2.2.2");

  std::optional<TransferOutcome> outcome;
  client.get(server, "/v/f", {}, [&](const TransferOutcome& o) { outcome = o; });
  sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
  EXPECT_GT(outcome->control_overhead, 0.0);
}

TEST(ClientEdgeTest, CustomProtocolCostsShiftControlOverhead) {
  sim::Simulator sim(0.0);
  net::FluidEngine engine(sim);
  net::Topology topology;
  topology.add_path("src", "dst", quiet(), 1, 0.0);
  topology.add_path("dst", "src", quiet(), 2, 0.0);
  storage::StorageSystem store("src", dedicated(), 1, 0.0);
  GridFtpServer server({.site = "src", .host = "h", .ip = "1.1.1.1"}, store);
  server.fs().add_volume("/v");
  server.fs().add_file("/v/f", kMB);

  ProtocolCosts slow;
  slow.control_setup_rtts = 10;
  slow.auth_cpu = 2.0;
  GridFtpClient client(sim, engine, topology, "dst", "2.2.2.2", nullptr, slow);
  std::optional<TransferOutcome> outcome;
  client.get(server, "/v/f", {}, [&](const TransferOutcome& o) { outcome = o; });
  sim.run();
  ASSERT_TRUE(outcome && outcome->ok);
  EXPECT_NEAR(outcome->control_overhead, 10 * 0.05 + 2.0, 1e-9);
}

TEST(ClientEdgeTest, ClientWithoutLocalStorageStillTransfers) {
  sim::Simulator sim(0.0);
  net::FluidEngine engine(sim);
  net::Topology topology;
  topology.add_path("src", "dst", quiet(), 1, 0.0);
  topology.add_path("dst", "src", quiet(), 2, 0.0);
  storage::StorageSystem store("src", dedicated(), 1, 0.0);
  GridFtpServer server({.site = "src", .host = "h", .ip = "1.1.1.1"}, store);
  server.fs().add_volume("/v");
  server.fs().add_file("/v/f", 10 * kMB);
  GridFtpClient client(sim, engine, topology, "dst", "2.2.2.2",
                       /*local_storage=*/nullptr);
  std::optional<TransferOutcome> outcome;
  client.get(server, "/v/f", {}, [&](const TransferOutcome& o) { outcome = o; });
  sim.run();
  ASSERT_TRUE(outcome && outcome->ok);
}

}  // namespace
}  // namespace wadp::gridftp
