#include "gridftp/fs.hpp"

#include <gtest/gtest.h>

namespace wadp::gridftp {
namespace {

TEST(VirtualFsTest, AddFileRequiresVolume) {
  VirtualFs fs;
  EXPECT_FALSE(fs.add_file("/home/ftp/x", 100));
  fs.add_volume("/home/ftp");
  EXPECT_TRUE(fs.add_file("/home/ftp/x", 100));
  EXPECT_TRUE(fs.exists("/home/ftp/x"));
  EXPECT_EQ(*fs.file_size("/home/ftp/x"), 100u);
}

TEST(VirtualFsTest, RelativePathsRejected) {
  VirtualFs fs;
  fs.add_volume("/data");
  EXPECT_FALSE(fs.add_file("data/x", 1));
  EXPECT_FALSE(fs.add_file("", 1));
}

TEST(VirtualFsTest, PrefixIsNotContainment) {
  VirtualFs fs;
  fs.add_volume("/data");
  EXPECT_FALSE(fs.add_file("/data2/x", 1));  // shares prefix, not a child
  EXPECT_TRUE(fs.add_file("/data/x", 1));
}

TEST(VirtualFsTest, VolumeOfPicksLongestMatch) {
  VirtualFs fs;
  fs.add_volume("/home");
  fs.add_volume("/home/ftp");
  fs.add_file("/home/ftp/file", 1);
  EXPECT_EQ(*fs.volume_of("/home/ftp/file"), "/home/ftp");
  EXPECT_EQ(*fs.volume_of("/home/other"), "/home");
  EXPECT_FALSE(fs.volume_of("/tmp/file").has_value());
}

TEST(VirtualFsTest, VolumeItselfIsNotAFilePath) {
  VirtualFs fs;
  fs.add_volume("/home/ftp");
  EXPECT_FALSE(fs.volume_of("/home/ftp").has_value());
}

TEST(VirtualFsTest, TrailingSlashVolumeNormalized) {
  VirtualFs fs;
  fs.add_volume("/data/");
  EXPECT_TRUE(fs.add_file("/data/x", 1));
  EXPECT_EQ(fs.volumes().front(), "/data");
}

TEST(VirtualFsTest, DuplicateVolumeIsNoOp) {
  VirtualFs fs;
  fs.add_volume("/data");
  fs.add_volume("/data");
  EXPECT_EQ(fs.volumes().size(), 1u);
}

TEST(VirtualFsTest, OverwriteUpdatesSize) {
  VirtualFs fs;
  fs.add_volume("/d");
  fs.add_file("/d/x", 10);
  fs.add_file("/d/x", 20);
  EXPECT_EQ(*fs.file_size("/d/x"), 20u);
  EXPECT_EQ(fs.file_count(), 1u);
}

TEST(VirtualFsTest, RemoveFile) {
  VirtualFs fs;
  fs.add_volume("/d");
  fs.add_file("/d/x", 10);
  EXPECT_TRUE(fs.remove_file("/d/x"));
  EXPECT_FALSE(fs.remove_file("/d/x"));
  EXPECT_FALSE(fs.exists("/d/x"));
}

TEST(VirtualFsTest, ListVolumeSortedAndScoped) {
  VirtualFs fs;
  fs.add_volume("/a");
  fs.add_volume("/b");
  fs.add_file("/a/z", 1);
  fs.add_file("/a/m", 1);
  fs.add_file("/b/q", 1);
  const auto listing = fs.list_volume("/a");
  ASSERT_EQ(listing.size(), 2u);
  EXPECT_EQ(listing[0], "/a/m");
  EXPECT_EQ(listing[1], "/a/z");
}

TEST(VirtualFsTest, MissingFileSizeIsNullopt) {
  VirtualFs fs;
  EXPECT_FALSE(fs.file_size("/nope").has_value());
}

}  // namespace
}  // namespace wadp::gridftp
