#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wadp::sim {
namespace {

TEST(SimulatorTest, StartsAtGivenTime) {
  Simulator sim(100.0);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(SimulatorTest, RunExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_at(5.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 5.5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.5);
}

TEST(SimulatorTest, SameTimeEventsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, ScheduleAfterUsesRelativeDelay) {
  Simulator sim(10.0);
  double seen = 0.0;
  sim.schedule_after(2.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 12.5);
}

TEST(SimulatorTest, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    ++fired;
    sim.schedule_after(1.0, [&] { ++fired; });
  });
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelTwiceReturnsFalse) {
  Simulator sim;
  const auto id = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(SimulatorTest, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const auto id = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<double> fired;
  sim.schedule_at(1.0, [&] { fired.push_back(1.0); });
  sim.schedule_at(5.0, [&] { fired.push_back(5.0); });
  EXPECT_EQ(sim.run_until(3.0), 1u);
  EXPECT_EQ(fired.size(), 1u);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);  // idles forward to the deadline
  EXPECT_EQ(sim.run_until(10.0), 1u);
  EXPECT_EQ(fired.size(), 2u);
}

TEST(SimulatorTest, RunUntilIncludesDeadlineEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(3.0, [&] { fired = true; });
  sim.run_until(3.0);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, PendingEventsExcludesCancelled) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  const auto id = sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(PeriodicTaskTest, FiresEveryPeriod) {
  Simulator sim;
  std::vector<double> fire_times;
  PeriodicTask task(sim, 10.0, [&] { fire_times.push_back(sim.now()); });
  sim.run_until(35.0);
  EXPECT_EQ(fire_times, (std::vector<double>{10.0, 20.0, 30.0}));
}

TEST(PeriodicTaskTest, ImmediateFiresAtStart) {
  Simulator sim(5.0);
  std::vector<double> fire_times;
  PeriodicTask task(sim, 10.0, [&] { fire_times.push_back(sim.now()); },
                    /*immediate=*/true);
  sim.run_until(25.0);
  EXPECT_EQ(fire_times, (std::vector<double>{5.0, 15.0, 25.0}));
}

TEST(PeriodicTaskTest, StopHaltsFiring) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, 10.0, [&] { ++count; });
  sim.run_until(15.0);
  task.stop();
  EXPECT_FALSE(task.running());
  sim.run_until(100.0);
  EXPECT_EQ(count, 1);
}

TEST(PeriodicTaskTest, DestructorCancelsCleanly) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTask task(sim, 10.0, [&] { ++count; });
    sim.run_until(10.0);
  }
  sim.run_until(100.0);
  EXPECT_EQ(count, 1);
}

TEST(PeriodicTaskTest, BodyCanStopItself) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, 1.0, [&] {
    if (++count == 3) task.stop();
  });
  sim.run_until(100.0);
  EXPECT_EQ(count, 3);
}

}  // namespace
}  // namespace wadp::sim
