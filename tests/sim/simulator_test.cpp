#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace wadp::sim {
namespace {

TEST(SimulatorTest, StartsAtGivenTime) {
  Simulator sim(100.0);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(SimulatorTest, RunExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_at(5.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 5.5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.5);
}

TEST(SimulatorTest, SameTimeEventsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, ScheduleAfterUsesRelativeDelay) {
  Simulator sim(10.0);
  double seen = 0.0;
  sim.schedule_after(2.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 12.5);
}

TEST(SimulatorTest, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    ++fired;
    sim.schedule_after(1.0, [&] { ++fired; });
  });
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelTwiceReturnsFalse) {
  Simulator sim;
  const auto id = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(SimulatorTest, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const auto id = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<double> fired;
  sim.schedule_at(1.0, [&] { fired.push_back(1.0); });
  sim.schedule_at(5.0, [&] { fired.push_back(5.0); });
  EXPECT_EQ(sim.run_until(3.0), 1u);
  EXPECT_EQ(fired.size(), 1u);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);  // idles forward to the deadline
  EXPECT_EQ(sim.run_until(10.0), 1u);
  EXPECT_EQ(fired.size(), 2u);
}

TEST(SimulatorTest, RunUntilIncludesDeadlineEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(3.0, [&] { fired = true; });
  sim.run_until(3.0);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, PendingEventsExcludesCancelled) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  const auto id = sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, RejectsNonFiniteTimes) {
  Simulator sim(10.0);
  // A NaN `when` would poison the heap ordering silently; it must trap.
  EXPECT_DEATH(sim.schedule_at(std::nan(""), [] {}), "non-finite");
  EXPECT_DEATH(sim.schedule_at(std::numeric_limits<double>::infinity(), [] {}),
               "non-finite");
  EXPECT_DEATH(sim.schedule_after(std::nan(""), [] {}), "delay");
  EXPECT_DEATH(sim.schedule_after(std::numeric_limits<double>::infinity(),
                                  [] {}),
               "non-finite");
}

TEST(SimulatorTest, CrossTierOrderingIsGlobal) {
  // One event per tier, interleaved times: heap (far), near (sub-second),
  // immediate (now) — they must fire in global (when, seq) order.
  Simulator sim(100.0);
  std::vector<int> order;
  sim.schedule_at(102.0, [&] { order.push_back(3); });   // heap
  sim.schedule_at(100.25, [&] { order.push_back(2); });  // near bucket
  sim.schedule_at(100.0, [&] { order.push_back(1); });   // immediate
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, SameTimeAcrossTiersFiresInScheduleOrder) {
  Simulator sim(0.0);
  std::vector<int> order;
  // Scheduled from afar (heap tier), then reached: an immediate event
  // scheduled at that instant must fire after it (larger seq).
  sim.schedule_at(5.0, [&] {
    order.push_back(1);
    sim.schedule_after(0.0, [&] { order.push_back(3); });
    sim.schedule_at(5.0, [&] { order.push_back(4); });  // after 3: later seq
    order.push_back(2);
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(SimulatorTest, NearBucketHandlesOutOfOrderAppends) {
  Simulator sim(0.0);
  std::vector<double> fired;
  sim.schedule_at(0.9, [&] { fired.push_back(0.9); });
  sim.schedule_at(0.1, [&] { fired.push_back(0.1); });
  sim.schedule_at(0.5, [&] { fired.push_back(0.5); });
  sim.schedule_at(0.2, [&] { fired.push_back(0.2); });
  sim.run();
  EXPECT_EQ(fired, (std::vector<double>{0.1, 0.2, 0.5, 0.9}));
}

TEST(SimulatorTest, RunBatchDrainsLookaheadWindow) {
  Simulator sim(0.0);
  std::vector<double> fired;
  sim.schedule_at(1.0, [&] {
    fired.push_back(1.0);
    // Spawned inside the window: still part of this batch.
    sim.schedule_at(2.5, [&] { fired.push_back(2.5); });
  });
  sim.schedule_at(7.0, [&] { fired.push_back(7.0); });
  EXPECT_EQ(sim.run_batch(3.0), 2u);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.5}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);  // batch boundary, even though idle
  EXPECT_EQ(sim.run_batch(4.0), 1u);
  EXPECT_DOUBLE_EQ(sim.now(), 7.0);
  EXPECT_EQ(fired.size(), 3u);
}

TEST(SimulatorTest, RunBatchIncludesBoundaryEvents) {
  Simulator sim(10.0);
  bool fired = false;
  sim.schedule_at(13.0, [&] { fired = true; });
  EXPECT_EQ(sim.run_batch(3.0), 1u);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, CancelChurnKeepsQueueBounded) {
  // Regression: cancel() used to leave dead entries in the queue
  // indefinitely, so a long-armed schedule/cancel pattern (the
  // PeriodicTask::stop shape, per-flow completion reschedules) grew the
  // heap without bound.  Compaction must keep total entries within a
  // constant factor of the live count.
  Simulator sim(0.0);
  std::vector<EventId> live;
  for (int i = 0; i < 10; ++i) {
    live.push_back(sim.schedule_at(1e6 + i, [] {}));
  }
  for (int i = 0; i < 100'000; ++i) {
    const EventId id =
        sim.schedule_at(10.0 + 1e-3 * i, [] {});  // arm a timeout...
    ASSERT_TRUE(sim.cancel(id));                  // ...that never fires
    ASSERT_LE(sim.queued_entries(), 2 * sim.pending_events() + 64);
  }
  EXPECT_GT(sim.compactions(), 0u);
  EXPECT_EQ(sim.pending_events(), live.size());
  EXPECT_EQ(sim.run(), live.size());  // survivors still fire
}

TEST(SimulatorTest, CompactionPreservesOrderAndSurvivors) {
  Simulator sim(0.0);
  std::vector<int> order;
  std::vector<EventId> doomed;
  for (int i = 0; i < 300; ++i) {
    const double t = 1.0 + i;
    sim.schedule_at(t, [&order, i] { order.push_back(i); });
    // Three tombstones per survivor so compaction actually triggers
    // (tombstones must *outnumber* live events).
    doomed.push_back(sim.schedule_at(t + 0.25, [] {}));
    doomed.push_back(sim.schedule_at(t + 0.5, [] {}));
    doomed.push_back(sim.schedule_at(t + 0.75, [] {}));
  }
  for (const EventId id : doomed) sim.cancel(id);
  EXPECT_GT(sim.compactions(), 0u);
  EXPECT_EQ(sim.run(), 300u);
  for (int i = 0; i < 300; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, NextEventTimePeeksPastTombstones) {
  Simulator sim(0.0);
  const auto a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.next_event_time(), 1.0);
  sim.cancel(a);
  EXPECT_EQ(sim.next_event_time(), 2.0);
  sim.run();
  EXPECT_EQ(sim.next_event_time(), std::nullopt);
}

TEST(PeriodicTaskTest, FiresEveryPeriod) {
  Simulator sim;
  std::vector<double> fire_times;
  PeriodicTask task(sim, 10.0, [&] { fire_times.push_back(sim.now()); });
  sim.run_until(35.0);
  EXPECT_EQ(fire_times, (std::vector<double>{10.0, 20.0, 30.0}));
}

TEST(PeriodicTaskTest, ImmediateFiresAtStart) {
  Simulator sim(5.0);
  std::vector<double> fire_times;
  PeriodicTask task(sim, 10.0, [&] { fire_times.push_back(sim.now()); },
                    /*immediate=*/true);
  sim.run_until(25.0);
  EXPECT_EQ(fire_times, (std::vector<double>{5.0, 15.0, 25.0}));
}

TEST(PeriodicTaskTest, StopHaltsFiring) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, 10.0, [&] { ++count; });
  sim.run_until(15.0);
  task.stop();
  EXPECT_FALSE(task.running());
  sim.run_until(100.0);
  EXPECT_EQ(count, 1);
}

TEST(PeriodicTaskTest, DestructorCancelsCleanly) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTask task(sim, 10.0, [&] { ++count; });
    sim.run_until(10.0);
  }
  sim.run_until(100.0);
  EXPECT_EQ(count, 1);
}

TEST(PeriodicTaskTest, BodyCanStopItself) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, 1.0, [&] {
    if (++count == 3) task.stop();
  });
  sim.run_until(100.0);
  EXPECT_EQ(count, 3);
}

}  // namespace
}  // namespace wadp::sim
