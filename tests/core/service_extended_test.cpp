#include <gtest/gtest.h>

#include "core/prediction_service.hpp"

namespace wadp::core {
namespace {

using gridftp::Operation;
using gridftp::TransferRecord;

TransferRecord record(double end, double bw_mb, Bytes size) {
  TransferRecord r;
  r.host = "h.example.org";
  r.source_ip = "1.2.3.4";
  r.file_name = "/v/f";
  r.file_size = size;
  r.volume = "/v";
  const double duration = static_cast<double>(size) / (bw_mb * 1e6);
  r.start_time = end - duration;
  r.end_time = end;
  r.op = Operation::kRead;
  r.streams = 8;
  r.tcp_buffer = 1'000'000;
  return r;
}

SeriesKey key() {
  return {.host = "h.example.org", .remote_ip = "1.2.3.4",
          .op = Operation::kRead};
}

TEST(ServiceExtendedBatteryTest, ExtendedPredictorsAvailable) {
  ServiceConfig config;
  config.use_extended_battery = true;
  PredictionService service(config);
  EXPECT_GE(service.suite().size(), 38u);
  EXPECT_NE(service.suite().find("SREG"), nullptr);
  EXPECT_NE(service.suite().find("EWMA0.2/fs"), nullptr);

  for (int i = 0; i < 30; ++i) {
    service.ingest(record(100.0 + i * 100, 5.0, 100 * kMB));
  }
  const auto sreg = service.predict(key(), 100 * kMB, 5000.0, "SREG");
  ASSERT_TRUE(sreg.has_value());
  EXPECT_NEAR(*sreg, 5e6, 1e4);
}

TEST(ServiceExtendedBatteryTest, PaperBatteryLacksExtensions) {
  PredictionService service;  // default: paper battery
  EXPECT_EQ(service.suite().size(), 30u);
  EXPECT_EQ(service.suite().find("SREG"), nullptr);
  for (int i = 0; i < 30; ++i) {
    service.ingest(record(100.0 + i * 100, 5.0, 100 * kMB));
  }
  EXPECT_FALSE(service.predict(key(), 100 * kMB, 5000.0, "SREG").has_value());
}

TEST(ServiceExtendedBatteryTest, ExtendedDefaultPredictorWorks) {
  ServiceConfig config;
  config.use_extended_battery = true;
  config.default_predictor = "SREG";
  PredictionService service(config);
  for (int i = 0; i < 30; ++i) {
    service.ingest(record(100.0 + i * 100, 4.0, 100 * kMB));
  }
  const auto prediction = service.predict(key(), 100 * kMB, 5000.0);
  ASSERT_TRUE(prediction.has_value());
  EXPECT_NEAR(*prediction, 4e6, 1e4);
}

TEST(ServiceExtendedBatteryTest, EvaluateCoversExtendedBattery) {
  ServiceConfig config;
  config.use_extended_battery = true;
  PredictionService service(config);
  for (int i = 0; i < 50; ++i) {
    service.ingest(record(100.0 + i * 100, 4.0 + (i % 3) * 0.5, 100 * kMB));
  }
  const auto evaluation = service.evaluate(key());
  ASSERT_TRUE(evaluation.has_value());
  EXPECT_TRUE(evaluation->index_of("SREG").has_value());
  EXPECT_TRUE(evaluation->index_of("ADAPT/fs").has_value());
}

}  // namespace
}  // namespace wadp::core
