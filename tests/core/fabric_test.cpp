#include "core/information_fabric.hpp"

#include <gtest/gtest.h>

#include "replica/broker.hpp"
#include "workload/campaign.hpp"

namespace wadp::core {
namespace {

TEST(InformationFabricTest, BuildsOneGrisPerSite) {
  workload::Testbed testbed(workload::Campaign::kAugust2001, 1);
  InformationFabric fabric(testbed);
  EXPECT_EQ(fabric.giis().live_registrations(testbed.sim().now()), 3u);
  for (const auto& site : testbed.sites()) {
    EXPECT_EQ(fabric.gris(site).provider_count(), 1u);
    EXPECT_EQ(fabric.gris(site).suffix(), fabric.site_suffix(site));
  }
}

TEST(InformationFabricTest, SiteSuffixUsesOrganization) {
  workload::Testbed testbed(workload::Campaign::kAugust2001, 1);
  FabricConfig config;
  config.organization = "dc=doe, o=science";
  InformationFabric fabric(testbed, config);
  EXPECT_EQ(fabric.site_suffix("lbl").to_string(), "dc=lbl, dc=doe, o=science");
}

TEST(InformationFabricTest, ServesCampaignStatistics) {
  workload::CampaignConfig config;
  config.days = 3;
  auto campaign = workload::run_paper_campaign(
      workload::Campaign::kAugust2001, 3, config);
  InformationFabric fabric(*campaign.testbed);
  const auto now = campaign.testbed->sim().now();
  fabric.renew(now);
  const auto entries = fabric.giis().search(
      now, *mds::Filter::parse("(objectclass=GridFTPPerfInfo)"));
  // LBL and ISI logged transfers toward ANL; ANL logged none.
  EXPECT_EQ(entries.size(), 2u);
  for (const auto& entry : entries) {
    EXPECT_TRUE(entry.has("avgrdbandwidth"));
  }
}

TEST(InformationFabricTest, RegistrationsLapseAndRenew) {
  workload::Testbed testbed(workload::Campaign::kAugust2001, 2);
  FabricConfig config;
  config.registration_ttl = 600.0;
  InformationFabric fabric(testbed, config);
  const auto start = testbed.sim().now();
  EXPECT_EQ(fabric.giis().live_registrations(start + 599.0), 3u);
  EXPECT_EQ(fabric.giis().live_registrations(start + 601.0), 0u);
  fabric.renew(start + 601.0);
  EXPECT_EQ(fabric.giis().live_registrations(start + 602.0), 3u);
}

TEST(InformationFabricTest, DrivesABrokerEndToEnd) {
  workload::CampaignConfig campaign_config;
  campaign_config.days = 3;
  auto campaign = workload::run_paper_campaign(
      workload::Campaign::kAugust2001, 7, campaign_config);
  auto& testbed = *campaign.testbed;
  InformationFabric fabric(testbed);
  const auto now = testbed.sim().now();
  fabric.renew(now);

  replica::ReplicaCatalog catalog;
  const auto path = workload::paper_file_path(500 * kMB);
  for (const auto& site : {"lbl", "isi"}) {
    catalog.add_replica("lfn://f", {.site = site,
                                    .server_host =
                                        testbed.server(site).config().host,
                                    .path = path});
  }
  replica::ReplicaBroker broker(catalog, fabric.giis(),
                                replica::SelectionPolicy::kPredictedBest);
  const auto selection =
      broker.select("lfn://f", testbed.client("anl").ip(), 500 * kMB, now);
  ASSERT_TRUE(selection.has_value());
  EXPECT_TRUE(selection->informed);
  EXPECT_TRUE(selection->predicted_bandwidth.has_value());
}

TEST(InformationFabricTest, UnknownSiteAborts) {
  workload::Testbed testbed(workload::Campaign::kAugust2001, 1);
  InformationFabric fabric(testbed);
  EXPECT_DEATH(fabric.gris("cern"), "unknown site");
}

}  // namespace
}  // namespace wadp::core
