// predict_many: the batch entry point must be bit-identical to the
// per-query path — one snapshot and one battery catch-up per batch is
// an amortization, never a semantic change.
#include <gtest/gtest.h>

#include <vector>

#include "core/prediction_service.hpp"
#include "history/store.hpp"

namespace wadp::core {
namespace {

SeriesKey demo_key() {
  return {.host = "dpsslx04.lbl.gov", .remote_ip = "140.221.65.69",
          .op = gridftp::Operation::kRead};
}

class ServiceBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service_ = std::make_unique<PredictionService>();
    for (int i = 0; i < 40; ++i) {
      // Mixed sizes so file-size-classified predictors discriminate.
      const Bytes size = (i % 3 == 0) ? 1 * kMB : 100 * kMB;
      service_->history().append(
          demo_key(), predict::Observation{.time = 60.0 * i,
                                           .value = 1e6 + 1e4 * i,
                                           .file_size = size});
    }
    for (int i = 0; i < 12; ++i) {
      queries_.push_back(predict::Query{
          .time = 3000.0 + 10.0 * i,
          .file_size = (i % 2 == 0) ? Bytes{100 * kMB} : Bytes{1 * kMB}});
    }
  }

  std::unique_ptr<PredictionService> service_;
  std::vector<predict::Query> queries_;
};

TEST_F(ServiceBatchTest, BatchAnswersBitIdenticalToPerQuery) {
  for (const char* predictor : {"", "AVG15/fs", "AVG", "LV"}) {
    const auto batch = service_->predict_many(demo_key(), queries_, predictor);
    ASSERT_EQ(batch.size(), queries_.size());
    for (std::size_t i = 0; i < queries_.size(); ++i) {
      const auto single =
          service_->predict(demo_key(), queries_[i].file_size,
                            queries_[i].time, predictor);
      // optional<double> equality is exact — bit-identical, not "near".
      EXPECT_EQ(batch[i], single) << "predictor '" << predictor
                                  << "' query " << i;
    }
  }
}

TEST_F(ServiceBatchTest, BatchStaysIdenticalAcrossIngest) {
  const auto before = service_->predict_many(demo_key(), queries_);
  service_->history().append(
      demo_key(), predict::Observation{.time = 2900.0,
                                       .value = 9e6,
                                       .file_size = 100 * kMB});
  const auto after = service_->predict_many(demo_key(), queries_);
  ASSERT_EQ(after.size(), queries_.size());
  // The new observation changes answers (sanity that the batch path
  // sees fresh snapshots)...
  EXPECT_NE(before, after);
  // ...and the batch still matches the per-query path exactly.
  for (std::size_t i = 0; i < queries_.size(); ++i) {
    EXPECT_EQ(after[i], service_->predict(demo_key(), queries_[i].file_size,
                                          queries_[i].time));
  }
}

TEST_F(ServiceBatchTest, ShortSeriesAndUnknownsAnswerNullopt) {
  const SeriesKey unknown{.host = "nowhere", .remote_ip = "0.0.0.0",
                          .op = gridftp::Operation::kRead};
  const auto empty = service_->predict_many(unknown, queries_);
  ASSERT_EQ(empty.size(), queries_.size());
  for (const auto& answer : empty) EXPECT_EQ(answer, std::nullopt);

  const auto bogus =
      service_->predict_many(demo_key(), queries_, "NOPE99");
  for (const auto& answer : bogus) EXPECT_EQ(answer, std::nullopt);

  EXPECT_TRUE(service_->predict_many(demo_key(), {}).empty());
}

}  // namespace
}  // namespace wadp::core
