// The combined GridFTP + NWS information plane (Section 7's proposal),
// as deployed by InformationFabric with deploy_nws on.
#include <gtest/gtest.h>

#include "core/information_fabric.hpp"
#include "workload/campaign.hpp"

namespace wadp::core {
namespace {

FabricConfig nws_config() {
  FabricConfig config;
  config.deploy_nws = true;
  return config;
}

TEST(FabricNwsTest, SensorsProbeEveryDirectedPath) {
  workload::Testbed testbed(workload::Campaign::kAugust2001, 1);
  InformationFabric fabric(testbed, nws_config());
  testbed.sim().run_until(testbed.start_time() + 3600.0);
  fabric.absorb_probes();
  // Six directed paths; every source site's memory holds its outgoing
  // experiments with ~12 probes each (every 5 minutes for an hour).
  std::size_t experiments = 0;
  for (const auto& site : testbed.sites()) {
    for (const auto& name : fabric.probe_memory(site).experiments()) {
      ++experiments;
      EXPECT_GE(fabric.probe_memory(site).series(name).size(), 10u) << name;
    }
  }
  EXPECT_EQ(experiments, 6u);
}

TEST(FabricNwsTest, NwsEntriesQueryableThroughGiis) {
  workload::Testbed testbed(workload::Campaign::kAugust2001, 2);
  InformationFabric fabric(testbed, nws_config());
  testbed.sim().run_until(testbed.start_time() + 7200.0);
  const auto now = testbed.sim().now();
  fabric.renew(now);

  const auto probes = fabric.giis().search(
      now, *mds::Filter::parse("(objectclass=nwsNetwork)"));
  EXPECT_EQ(probes.size(), 6u);
  for (const auto& entry : probes) {
    EXPECT_TRUE(entry.has("forecastbandwidth")) << entry.to_ldif();
    // Probe forecasts sit far below GridFTP levels: < 300 KB/s.
    EXPECT_LT(*entry.get_double("forecastbandwidth"), 300.0);
  }
}

TEST(FabricNwsTest, BothPlanesCoexistInOneDirectory) {
  workload::Testbed testbed(workload::Campaign::kAugust2001, 3);
  workload::CampaignConfig campaign;
  campaign.days = 2;
  workload::CampaignDriver driver(testbed, "anl", "lbl", campaign, 5);
  driver.start();
  InformationFabric fabric(testbed, nws_config());
  testbed.sim().run_until(driver.end_time() + 3600.0);
  const auto now = testbed.sim().now();
  fabric.renew(now);

  const auto gridftp = fabric.giis().search(
      now, *mds::Filter::parse("(objectclass=GridFTPPerfInfo)"));
  const auto probes = fabric.giis().search(
      now, *mds::Filter::parse("(objectclass=nwsNetwork)"));
  EXPECT_GE(gridftp.size(), 1u);   // LBL served the campaign
  EXPECT_EQ(probes.size(), 6u);

  // The Figs. 1-2 gap, straight out of the directory: LBL's GridFTP
  // average vs the lbl->anl probe forecast.
  const auto lbl_gridftp = fabric.giis().search(
      now, *mds::Filter::parse("(&(objectclass=GridFTPPerfInfo)"
                               "(avgrdbandwidth=*))"));
  ASSERT_FALSE(lbl_gridftp.empty());
  const auto lbl_probe = fabric.giis().search(
      now, *mds::Filter::parse("(&(objectclass=nwsNetwork)"
                               "(experiment=bandwidth.lbl.anl))"));
  ASSERT_EQ(lbl_probe.size(), 1u);
  EXPECT_GT(*lbl_gridftp[0].get_double("avgrdbandwidth"),
            10.0 * *lbl_probe[0].get_double("latestbandwidth"));
}

TEST(FabricNwsTest, OffByDefault) {
  workload::Testbed testbed(workload::Campaign::kAugust2001, 4);
  InformationFabric fabric(testbed);
  EXPECT_DEATH(fabric.probe_memory("lbl"), "deploy_nws");
  testbed.sim().run_until(testbed.start_time() + 3600.0);
  const auto entries = fabric.giis().search(
      testbed.sim().now(), *mds::Filter::parse("(objectclass=nwsNetwork)"));
  EXPECT_TRUE(entries.empty());
}

}  // namespace
}  // namespace wadp::core
