#include "core/prediction_service.hpp"

#include <gtest/gtest.h>

namespace wadp::core {
namespace {

using gridftp::Operation;
using gridftp::TransferRecord;

TransferRecord record(double end, double bw_mb, Bytes size,
                      const std::string& remote = "140.221.65.69",
                      Operation op = Operation::kRead) {
  TransferRecord r;
  r.host = "dpsslx04.lbl.gov";
  r.source_ip = remote;
  r.file_name = "/v/f";
  r.file_size = size;
  r.volume = "/v";
  const double duration = static_cast<double>(size) / (bw_mb * 1e6);
  r.start_time = end - duration;
  r.end_time = end;
  r.op = op;
  r.streams = 8;
  r.tcp_buffer = 1'000'000;
  return r;
}

SeriesKey lbl_to_anl() {
  return {.host = "dpsslx04.lbl.gov",
          .remote_ip = "140.221.65.69",
          .op = Operation::kRead};
}

TEST(PredictionServiceTest, IngestGroupsBySeries) {
  PredictionService service;
  service.ingest(record(100.0, 5.0, 10 * kMB));
  service.ingest(record(200.0, 5.0, 10 * kMB, "1.2.3.4"));
  service.ingest(record(300.0, 5.0, 10 * kMB, "140.221.65.69",
                        Operation::kWrite));
  EXPECT_EQ(service.series_keys().size(), 3u);
  EXPECT_EQ(service.total_observations(), 3u);
  ASSERT_TRUE(service.series(lbl_to_anl()).valid());
  EXPECT_EQ(service.series(lbl_to_anl()).size(), 1u);
}

TEST(PredictionServiceTest, NoPredictionBeforeTraining) {
  PredictionService service;  // training_count defaults to 15
  for (int i = 0; i < 14; ++i) {
    service.ingest(record(100.0 + i * 50, 5.0, 10 * kMB));
  }
  EXPECT_FALSE(service.predict(lbl_to_anl(), 10 * kMB, 2000.0).has_value());
  service.ingest(record(900.0, 5.0, 10 * kMB));
  EXPECT_TRUE(service.predict(lbl_to_anl(), 10 * kMB, 2000.0).has_value());
}

TEST(PredictionServiceTest, DefaultPredictorIsClassified) {
  PredictionService service;
  // 20 small transfers at 2 MB/s, 20 large at 8 MB/s.
  for (int i = 0; i < 20; ++i) {
    service.ingest(record(100.0 + i * 100, 2.0, 10 * kMB));
    service.ingest(record(150.0 + i * 100, 8.0, 900 * kMB));
  }
  const auto small = service.predict(lbl_to_anl(), 10 * kMB, 5000.0);
  const auto large = service.predict(lbl_to_anl(), 900 * kMB, 5000.0);
  ASSERT_TRUE(small && large);
  EXPECT_NEAR(*small, 2e6, 1e4);
  EXPECT_NEAR(*large, 8e6, 1e4);
}

TEST(PredictionServiceTest, NamedPredictorSelection) {
  PredictionService service;
  for (int i = 0; i < 20; ++i) {
    service.ingest(record(100.0 + i * 100, i < 19 ? 4.0 : 6.0, 10 * kMB));
  }
  const auto lv = service.predict(lbl_to_anl(), 10 * kMB, 5000.0, "LV");
  ASSERT_TRUE(lv.has_value());
  EXPECT_NEAR(*lv, 6e6, 1e4);
  EXPECT_FALSE(
      service.predict(lbl_to_anl(), 10 * kMB, 5000.0, "NOPE").has_value());
}

TEST(PredictionServiceTest, UnknownSeriesHasNoPrediction) {
  PredictionService service;
  EXPECT_FALSE(service
                   .predict({.host = "x", .remote_ip = "y",
                             .op = Operation::kRead},
                            kMB, 0.0)
                   .has_value());
  EXPECT_FALSE(service.series({.host = "x", .remote_ip = "y",
                               .op = Operation::kRead})
                   .valid());
}

TEST(PredictionServiceTest, PredictAllCoversBattery) {
  PredictionService service;
  for (int i = 0; i < 30; ++i) {
    service.ingest(record(100.0 + i * 100, 5.0, 10 * kMB));
  }
  const auto all = service.predict_all(lbl_to_anl(), 10 * kMB, 5000.0);
  EXPECT_EQ(all.size(), 30u);
  std::size_t answered = 0;
  for (const auto& [name, value] : all) {
    if (value) {
      ++answered;
      EXPECT_NEAR(*value, 5e6, 1e4) << name;
    }
  }
  EXPECT_GT(answered, 20u);
}

TEST(PredictionServiceTest, OutOfOrderIngestKeepsSeriesSorted) {
  PredictionService service;
  service.ingest(record(300.0, 5.0, kMB));
  service.ingest(record(100.0, 4.0, kMB));
  service.ingest(record(200.0, 3.0, kMB));
  const auto series = service.series(lbl_to_anl());
  ASSERT_TRUE(series.valid());
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series.observations()[0].time, 100.0);
  EXPECT_DOUBLE_EQ(series.observations()[1].time, 200.0);
  EXPECT_DOUBLE_EQ(series.observations()[2].time, 300.0);
  // Both out-of-order inserts invalidated the streaming prefix.
  EXPECT_EQ(series.generation(), 2u);
}

TEST(PredictionServiceTest, IngestLogPullsEveryRecord) {
  gridftp::TransferLog log;
  for (int i = 0; i < 5; ++i) log.append(record(100.0 + i * 10, 5.0, kMB));
  PredictionService service;
  service.ingest_log(log);
  EXPECT_EQ(service.total_observations(), 5u);
}

TEST(PredictionServiceTest, EvaluateRunsPaperBattery) {
  PredictionService service;
  for (int i = 0; i < 60; ++i) {
    service.ingest(record(100.0 + i * 100, 4.0 + (i % 5) * 0.5, 10 * kMB));
  }
  const auto evaluation = service.evaluate(lbl_to_anl());
  ASSERT_TRUE(evaluation.has_value());
  EXPECT_EQ(evaluation->predictor_names().size(), 30u);
  EXPECT_EQ(evaluation->evaluated_transfers(), 45u);
  // Errors are bounded on this tame series.
  EXPECT_LT(evaluation->errors(*evaluation->index_of("AVG15")).mean(), 25.0);
}

TEST(PredictionServiceTest, EvaluateTooShortSeriesIsNullopt) {
  PredictionService service;
  for (int i = 0; i < 15; ++i) service.ingest(record(100.0 + i, 5.0, kMB));
  EXPECT_FALSE(service.evaluate(lbl_to_anl()).has_value());
}

TEST(PredictionServiceTest, SeriesKeyToString) {
  EXPECT_EQ(lbl_to_anl().to_string(), "dpsslx04.lbl.gov/140.221.65.69/read");
}

TEST(PredictionServiceDeathTest, BadDefaultPredictorAborts) {
  ServiceConfig config;
  config.default_predictor = "NOPE";
  EXPECT_DEATH(PredictionService{config}, "default predictor");
}

}  // namespace
}  // namespace wadp::core
