// End-to-end recovery: snapshot + WAL tail back to *bit-identical*
// predictor state.  "Bit-identical" is asserted the strong way — the
// recovered store's observation vectors compare equal as doubles, the
// full predictor battery answers EXPECT_DOUBLE_EQ the same, and the
// offline predict::Evaluator computes the exact same error statistics
// over the recovered series as over the originals.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>

#include "core/prediction_service.hpp"
#include "durability/manager.hpp"
#include "history/adapter.hpp"

namespace wadp::durability {
namespace {

namespace fs = std::filesystem;

history::StoreConfig dedup_config() {
  return history::StoreConfig{.shard_count = 4,
                              .instrumented = false,
                              .dedupe_records = true};
}

gridftp::TransferRecord record(double end, const std::string& remote,
                               std::uint64_t trace, Bytes size = 10 * kMB,
                               bool ok = true) {
  gridftp::TransferRecord r;
  r.host = "dpsslx04.lbl.gov";
  r.source_ip = remote;
  r.file_name = "/v/f";
  r.file_size = size;
  r.volume = "/v";
  r.start_time = end - 10.0;
  r.end_time = end;
  r.op = gridftp::Operation::kRead;
  r.streams = 8;
  r.tcp_buffer = 1'000'000;
  r.ok = ok;
  r.trace_id = trace;
  return r;
}

std::string scratch(const std::string& name) {
  const auto dir = fs::path(::testing::TempDir()) / ("wadp_recover_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

DurabilityConfig durability_config(std::string dir) {
  DurabilityConfig config;
  config.dir = std::move(dir);
  config.fsync = FsyncPolicy::kNone;
  config.group_commit_records = 8;
  config.instrumented = false;
  return config;
}

/// Ingests a two-series campaign with size variety, an out-of-order
/// arrival, and a failed attempt — everything that exercises epochs,
/// generations, and the ok flag.
void ingest_campaign(history::HistoryStore& store) {
  for (int i = 0; i < 40; ++i) {
    store.append(record(1000.0 + 25.0 * i, "140.221.65.69", 10'000 + i,
                        (i % 3 + 1) * 10 * kMB));
    store.append(record(1003.0 + 25.0 * i, "131.243.2.91", 20'000 + i,
                        5 * kMB + i * kKB));
  }
  store.append(record(1010.0, "140.221.65.69", 30'000));      // out of order
  store.append(record(2100.0, "131.243.2.91", 30'001, 10 * kMB,
                      /*ok=*/false));                          // failed attempt
}

void expect_stores_bit_identical(const history::HistoryStore& want,
                                 history::HistoryStore& got) {
  ASSERT_EQ(got.keys(), want.keys());
  EXPECT_EQ(got.total_observations(), want.total_observations());
  for (const auto& key : want.keys()) {
    const auto before = want.snapshot(key);
    const auto after = got.snapshot(key);
    // Observation operator== compares the raw doubles: one ULP of
    // drift anywhere fails this.
    EXPECT_EQ(after.observations(), before.observations()) << key.to_string();
    EXPECT_EQ(after.epoch(), before.epoch()) << key.to_string();
    EXPECT_EQ(after.generation(), before.generation()) << key.to_string();
    EXPECT_EQ(after.evicted(), before.evicted()) << key.to_string();
    // The serving plane's invalidation watermark published the same
    // epoch, so epoch-stamped cache entries validate after a restart.
    EXPECT_EQ(got.watermark(key)->load(), before.epoch()) << key.to_string();
  }
}

void expect_battery_bit_identical(const core::PredictionService& want,
                                  const core::PredictionService& got,
                                  const history::SeriesKey& key) {
  const auto before = want.predict_all(key, 10 * kMB, 5000.0);
  const auto after = got.predict_all(key, 10 * kMB, 5000.0);
  ASSERT_EQ(after.size(), before.size());
  ASSERT_FALSE(before.empty());
  std::size_t answered = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].first, before[i].first);
    ASSERT_EQ(after[i].second.has_value(), before[i].second.has_value())
        << before[i].first;
    if (before[i].second) {
      EXPECT_DOUBLE_EQ(*after[i].second, *before[i].second)
          << before[i].first;
      ++answered;
    }
  }
  EXPECT_GT(answered, 0u) << "battery answered nothing for " << key.to_string();

  // Offline ground truth: the Evaluator re-derives every predictor's
  // error statistics from the stored series alone.
  const auto eval_before = want.evaluate(key);
  const auto eval_after = got.evaluate(key);
  ASSERT_EQ(eval_after.has_value(), eval_before.has_value());
  if (!eval_before) return;
  const auto& names = eval_before->predictor_names();
  ASSERT_EQ(eval_after->predictor_names(), names);
  for (std::size_t p = 0; p < names.size(); ++p) {
    const auto& want_err = eval_before->errors(p);
    const auto& got_err = eval_after->errors(p);
    EXPECT_EQ(got_err.count(), want_err.count()) << names[p];
    EXPECT_DOUBLE_EQ(got_err.mean(), want_err.mean()) << names[p];
    EXPECT_DOUBLE_EQ(got_err.stddev(), want_err.stddev()) << names[p];
  }
}

TEST(RecoveryTest, SnapshotPlusWalTailRebuildsBitIdenticalState) {
  const auto root = scratch("full");
  auto store = std::make_shared<history::HistoryStore>(dedup_config());
  DurabilityManager manager(store, durability_config(root));
  manager.attach();

  // Phase 1, then a snapshot (which truncates sealed WAL segments),
  // then a tail of further ingest that only the WAL holds.
  ingest_campaign(*store);
  const auto meta = manager.snapshot_now();
  ASSERT_TRUE(meta.ok()) << meta.error();
  ASSERT_GT(meta.value().sealed_lsn, 0u);
  for (int i = 0; i < 10; ++i) {
    store->append(record(3000.0 + 25.0 * i, "140.221.65.69", 40'000 + i));
  }
  manager.flush();  // the crash loses nothing past this point

  core::PredictionService service(store);

  // "Crash": a fresh process recovers into an empty store.
  auto recovered = std::make_shared<history::HistoryStore>(dedup_config());
  const auto stats = DurabilityManager::recover(root, *recovered);
  ASSERT_TRUE(stats.ok()) << stats.error();
  EXPECT_TRUE(stats.value().snapshot_loaded);
  EXPECT_EQ(stats.value().snapshot_seq, 1u);
  EXPECT_EQ(stats.value().sealed_lsn, meta.value().sealed_lsn);
  EXPECT_EQ(stats.value().records_applied, 10u);
  EXPECT_EQ(stats.value().torn_frames, 0u);

  expect_stores_bit_identical(*store, *recovered);

  core::PredictionService recovered_service(recovered);
  EXPECT_GT(recovered_service.warm_up(), 0u);
  for (const auto& key : store->keys()) {
    expect_battery_bit_identical(service, recovered_service, key);
  }
}

TEST(RecoveryTest, WalOnlyRecoveryWithoutAnySnapshot) {
  const auto root = scratch("wal_only");
  auto store = std::make_shared<history::HistoryStore>(dedup_config());
  DurabilityManager manager(store, durability_config(root));
  manager.attach();
  ingest_campaign(*store);
  manager.flush();

  auto recovered = std::make_shared<history::HistoryStore>(dedup_config());
  const auto stats = DurabilityManager::recover(root, *recovered);
  ASSERT_TRUE(stats.ok()) << stats.error();
  EXPECT_FALSE(stats.value().snapshot_loaded);
  EXPECT_EQ(stats.value().records_applied, store->total_observations());
  expect_stores_bit_identical(*store, *recovered);
}

TEST(RecoveryTest, TornWalTailRecoversThePrefixCleanly) {
  const auto root = scratch("torn");
  auto store = std::make_shared<history::HistoryStore>(dedup_config());
  DurabilityManager manager(store, durability_config(root));
  manager.attach();
  for (int i = 0; i < 12; ++i) {
    store->append(record(1000.0 + 25.0 * i, "140.221.65.69", 50'000 + i));
  }
  manager.flush();

  // Tear the active segment mid-frame, as a crash during a write would.
  const auto segments = WriteAheadLog::list_segments(wal_dir(root));
  ASSERT_FALSE(segments.empty());
  const auto& tail_path = segments.back();
  std::ifstream in(tail_path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(data.size(), 5u);
  std::ofstream out(tail_path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size() - 5));
  out.close();

  auto recovered = std::make_shared<history::HistoryStore>(dedup_config());
  const auto stats = DurabilityManager::recover(root, *recovered);
  ASSERT_TRUE(stats.ok()) << stats.error();
  EXPECT_EQ(stats.value().torn_frames, 1u);
  EXPECT_EQ(stats.value().records_applied, 11u);  // all but the torn one
  const auto key = history::series_key_for(record(0.0, "140.221.65.69", 0));
  EXPECT_EQ(recovered->snapshot(key).size(), 11u);
}

TEST(RecoveryTest, AttachBackfillAfterRecoveryIsIdempotent) {
  const auto root = scratch("attach");
  auto store = std::make_shared<history::HistoryStore>(dedup_config());
  DurabilityManager manager(store, durability_config(root));
  manager.attach();

  // The server's own bounded log holds the same records the WAL does.
  gridftp::TransferLog log;
  for (int i = 0; i < 20; ++i) {
    auto r = record(1000.0 + 25.0 * i, "140.221.65.69", 60'000 + i);
    log.append(r);
    store->append(r);
  }
  manager.flush();

  auto recovered = std::make_shared<history::HistoryStore>(dedup_config());
  ASSERT_TRUE(DurabilityManager::recover(root, *recovered).ok());
  const auto observations = recovered->total_observations();
  ASSERT_EQ(observations, 20u);

  // Re-attaching the server log backfills the same 20 records; the
  // dedupe index absorbs every one.  Then a fresh record flows through
  // the attached log normally.
  recovered->attach(log);
  EXPECT_EQ(recovered->total_observations(), observations);
  EXPECT_EQ(recovered->dedup_skipped(), 20u);
  log.append(record(9000.0, "140.221.65.69", 70'000));
  EXPECT_EQ(recovered->total_observations(), observations + 1);
}

TEST(RecoveryTest, FirstBootWithNoDurabilityDirIsEmptyNotAnError) {
  const auto root =
      (fs::path(::testing::TempDir()) / "wadp_recover_never_existed").string();
  history::HistoryStore store(dedup_config());
  const auto stats = DurabilityManager::recover(root, store);
  ASSERT_TRUE(stats.ok()) << stats.error();
  EXPECT_FALSE(stats.value().snapshot_loaded);
  EXPECT_EQ(stats.value().records_applied, 0u);
  EXPECT_EQ(store.total_observations(), 0u);
}

TEST(RecoveryTest, RecoveryDemandsDedupeAndAnEmptyStore) {
  const auto root = scratch("preconditions");
  {
    history::HistoryStore no_dedupe(
        history::StoreConfig{.instrumented = false});
    EXPECT_FALSE(DurabilityManager::recover(root, no_dedupe).ok());
  }
  {
    history::HistoryStore occupied(dedup_config());
    occupied.append(record(100.0, "140.221.65.69", 1));
    EXPECT_FALSE(DurabilityManager::recover(root, occupied).ok());
  }
}

TEST(RecoveryTest, SecondRecoveryAfterMoreIngestAlsoMatches) {
  // Recover, serve, ingest more, snapshot, crash again: the durable
  // state composes across process generations.
  const auto root = scratch("generations");
  auto gen1 = std::make_shared<history::HistoryStore>(dedup_config());
  {
    DurabilityManager manager(gen1, durability_config(root));
    manager.attach();
    ingest_campaign(*gen1);
    ASSERT_TRUE(manager.snapshot_now().ok());
  }

  auto gen2 = std::make_shared<history::HistoryStore>(dedup_config());
  ASSERT_TRUE(DurabilityManager::recover(root, *gen2).ok());
  {
    DurabilityManager manager(gen2, durability_config(root));
    manager.attach();
    for (int i = 0; i < 5; ++i) {
      gen2->append(record(5000.0 + 25.0 * i, "131.243.2.91", 80'000 + i));
    }
    ASSERT_TRUE(manager.snapshot_now().ok());
  }

  auto gen3 = std::make_shared<history::HistoryStore>(dedup_config());
  const auto stats = DurabilityManager::recover(root, *gen3);
  ASSERT_TRUE(stats.ok()) << stats.error();
  EXPECT_EQ(stats.value().snapshot_seq, 2u);
  expect_stores_bit_identical(*gen2, *gen3);
}

}  // namespace
}  // namespace wadp::durability
