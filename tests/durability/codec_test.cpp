#include "durability/codec.hpp"

#include <gtest/gtest.h>

#include <string>
#include <string_view>

namespace wadp::durability {
namespace {

gridftp::TransferRecord full_record() {
  gridftp::TransferRecord r;
  r.host = "dpsslx04.lbl.gov";
  r.source_ip = "140.221.65.69";
  r.file_name = "/home/ftp/vazhkuda/10 MB";
  r.file_size = 10 * kMB;
  r.volume = "/home/ftp";
  r.start_time = 997587000.25;
  r.end_time = 997587010.75;
  r.op = gridftp::Operation::kWrite;
  r.streams = 8;
  r.tcp_buffer = 1'000'000;
  r.ok = false;
  r.trace_id = 0xDEADBEEFCAFEF00Dull;
  return r;
}

TEST(DurabilityCodecTest, Crc32cMatchesReferenceCheckValue) {
  // The standard CRC-32C check value for "123456789".
  EXPECT_EQ(crc32c(std::string_view("123456789")), 0xE3069283u);
  EXPECT_EQ(crc32c(std::string_view("")), 0x00000000u);
}

TEST(DurabilityCodecTest, GoldenRoundTripPreservesEveryField) {
  const WalEntry entry{.lsn = 42, .record = full_record()};
  const auto decoded = decode_entry(encode_entry(entry));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, entry);
  // The fields the durability plane exists for, spelled out:
  EXPECT_EQ(decoded->record.trace_id, 0xDEADBEEFCAFEF00Dull);
  EXPECT_FALSE(decoded->record.ok);
  EXPECT_EQ(decoded->record.op, gridftp::Operation::kWrite);
  // Doubles survive as exact bit patterns, not formatted text.
  EXPECT_EQ(decoded->record.start_time, 997587000.25);
  EXPECT_EQ(decoded->record.end_time, 997587010.75);
}

TEST(DurabilityCodecTest, HotPathFramingIsByteIdenticalToTheSlowPath) {
  // The WAL append hot path (append_framed_entry) must never drift
  // from the spec'd encoding (frame + encode_entry).
  const WalEntry entry{.lsn = 42, .record = full_record()};
  std::string hot = "prefix";  // appends after existing bytes
  append_framed_entry(hot, entry.lsn, entry.record);
  EXPECT_EQ(hot.substr(6), frame(encode_entry(entry)));

  // Also for a minimal record (empty strings, defaults).
  std::string hot2;
  append_framed_entry(hot2, 1, gridftp::TransferRecord{});
  EXPECT_EQ(hot2,
            frame(encode_entry(WalEntry{.lsn = 1, .record = {}})));

  // CRC over long inputs exercises the slicing-by-8 fold across both
  // aligned and tail bytes.
  std::string long_payload;
  for (int i = 0; i < 300; ++i) long_payload.push_back(static_cast<char>(i));
  for (std::size_t cut = 0; cut <= long_payload.size(); ++cut) {
    const std::string_view slice(long_payload.data(), cut);
    std::uint32_t reference = 0xFFFFFFFFu;
    for (const char c : slice) {
      reference ^= static_cast<std::uint8_t>(c);
      for (int bit = 0; bit < 8; ++bit) {
        reference = (reference >> 1) ^ ((reference & 1u) ? 0x82F63B78u : 0u);
      }
    }
    ASSERT_EQ(crc32c(slice), reference ^ 0xFFFFFFFFu) << "cut=" << cut;
  }
}

TEST(DurabilityCodecTest, GoldenBytes) {
  // A minimal entry whose encoding is spelled out byte for byte.  If
  // this test breaks, the on-disk format changed: bump kRecordVersion
  // and update docs/DURABILITY.md instead of editing the bytes.
  gridftp::TransferRecord r;
  r.host = "h";
  r.source_ip = "i";
  r.file_name = "f";
  r.volume = "v";
  r.file_size = 3;
  r.start_time = 0.0;
  r.end_time = 1.5;
  r.op = gridftp::Operation::kRead;
  r.streams = 4;
  r.tcp_buffer = 5;
  r.ok = true;
  r.trace_id = 6;
  r.disk_throughput = 2.5;
  r.net_probe = 0.75;
  const std::string encoded = encode_entry(WalEntry{.lsn = 2, .record = r});

  const unsigned char expected[] = {
      0x02,                                            // record version
      0x02, 0, 0, 0, 0, 0, 0, 0,                       // lsn = 2
      0x01, 0x00, 'h',                                 // host
      0x01, 0x00, 'i',                                 // source_ip
      0x01, 0x00, 'f',                                 // file_name
      0x01, 0x00, 'v',                                 // volume
      0x03, 0, 0, 0, 0, 0, 0, 0,                       // file_size = 3
      0, 0, 0, 0, 0, 0, 0, 0,                          // start_time = 0.0
      0, 0, 0, 0, 0, 0, 0xF8, 0x3F,                    // end_time = 1.5
      0x00,                                            // op = kRead
      0x04, 0, 0, 0,                                   // streams = 4
      0x05, 0, 0, 0, 0, 0, 0, 0,                       // tcp_buffer = 5
      0x01,                                            // ok
      0x06, 0, 0, 0, 0, 0, 0, 0,                       // trace_id = 6
      0, 0, 0, 0, 0, 0, 0x04, 0x40,                    // disk_throughput = 2.5
      0, 0, 0, 0, 0, 0, 0xE8, 0x3F,                    // net_probe = 0.75
  };
  ASSERT_EQ(encoded.size(), sizeof(expected));
  for (std::size_t i = 0; i < sizeof(expected); ++i) {
    EXPECT_EQ(static_cast<unsigned char>(encoded[i]), expected[i])
        << "byte " << i;
  }
}

TEST(DurabilityCodecTest, DecodesVersion1PayloadsWithDefaultedFields) {
  // A v1 WAL written before the regression fields existed: the exact
  // golden bytes of the previous format.  It must keep decoding, with
  // the v2 fields defaulting to zero — crash recovery across the
  // version bump depends on it.
  const unsigned char v1[] = {
      0x01,                                            // record version 1
      0x02, 0, 0, 0, 0, 0, 0, 0,                       // lsn = 2
      0x01, 0x00, 'h',                                 // host
      0x01, 0x00, 'i',                                 // source_ip
      0x01, 0x00, 'f',                                 // file_name
      0x01, 0x00, 'v',                                 // volume
      0x03, 0, 0, 0, 0, 0, 0, 0,                       // file_size = 3
      0, 0, 0, 0, 0, 0, 0, 0,                          // start_time = 0.0
      0, 0, 0, 0, 0, 0, 0xF8, 0x3F,                    // end_time = 1.5
      0x00,                                            // op = kRead
      0x04, 0, 0, 0,                                   // streams = 4
      0x05, 0, 0, 0, 0, 0, 0, 0,                       // tcp_buffer = 5
      0x01,                                            // ok
      0x06, 0, 0, 0, 0, 0, 0, 0,                       // trace_id = 6
  };
  const auto decoded = decode_entry(
      std::string_view(reinterpret_cast<const char*>(v1), sizeof(v1)));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->lsn, 2u);
  EXPECT_EQ(decoded->record.host, "h");
  EXPECT_EQ(decoded->record.file_size, 3u);
  EXPECT_EQ(decoded->record.end_time, 1.5);
  EXPECT_EQ(decoded->record.trace_id, 6u);
  EXPECT_EQ(decoded->record.disk_throughput, 0.0);
  EXPECT_EQ(decoded->record.net_probe, 0.0);
}

TEST(DurabilityCodecTest, OutOfOrderTimestampsRoundTripVerbatim) {
  // The codec is an encoding, not a sort: entries whose end times go
  // backwards (merged logs interleave) come back in write order with
  // the exact timestamps.
  auto first = full_record();
  first.end_time = 2000.0;
  auto second = full_record();
  second.end_time = 1000.0;  // earlier than its predecessor
  const auto a = decode_entry(encode_entry(WalEntry{.lsn = 1, .record = first}));
  const auto b =
      decode_entry(encode_entry(WalEntry{.lsn = 2, .record = second}));
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->record.end_time, 2000.0);
  EXPECT_EQ(b->record.end_time, 1000.0);
  EXPECT_LT(a->lsn, b->lsn);
}

TEST(DurabilityCodecTest, TrailingBytesAreIgnoredForForwardCompat) {
  // A same-version writer that *appended* a field produces payloads an
  // old reader must still decode (ignoring the tail).
  const WalEntry entry{.lsn = 7, .record = full_record()};
  std::string payload = encode_entry(entry);
  payload += "\x01\x02\x03future-field";
  const auto decoded = decode_entry(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, entry);
}

TEST(DurabilityCodecTest, UnknownVersionsAreRejected) {
  std::string payload = encode_entry(WalEntry{.lsn = 1, .record = full_record()});
  payload[0] = 0;  // version 0 never existed
  EXPECT_FALSE(decode_entry(payload).has_value());
  payload[0] = static_cast<char>(kRecordVersion + 1);  // from the future
  EXPECT_FALSE(decode_entry(payload).has_value());
}

TEST(DurabilityCodecTest, TruncatedPayloadsAreRejectedAtEveryCut) {
  const std::string payload =
      encode_entry(WalEntry{.lsn = 9, .record = full_record()});
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(decode_entry(payload.substr(0, cut)).has_value())
        << "cut at " << cut;
  }
  EXPECT_TRUE(decode_entry(payload).has_value());
}

TEST(DurabilityCodecTest, FrameRoundTripAndStatuses) {
  const std::string payload = "hello, frames";
  const std::string framed = frame(payload);
  ASSERT_EQ(framed.size(), 8 + payload.size());

  std::size_t offset = 0;
  std::string_view out;
  EXPECT_EQ(next_frame(framed, offset, out), FrameStatus::kOk);
  EXPECT_EQ(out, payload);
  EXPECT_EQ(offset, framed.size());
  EXPECT_EQ(next_frame(framed, offset, out), FrameStatus::kEnd);
}

TEST(DurabilityCodecTest, FlippedBitFailsTheChecksum) {
  std::string framed = frame("payload-under-test");
  framed[12] = static_cast<char>(framed[12] ^ 0x40);  // inside the payload
  std::size_t offset = 0;
  std::string_view out;
  EXPECT_EQ(next_frame(framed, offset, out), FrameStatus::kCorrupt);
  EXPECT_EQ(offset, 0u);  // a refused frame never advances
}

TEST(DurabilityCodecTest, ShortHeaderAndShortPayloadAreTorn) {
  const std::string framed = frame("abc");
  std::string_view out;
  for (std::size_t cut = 1; cut < framed.size(); ++cut) {
    std::size_t offset = 0;
    EXPECT_EQ(next_frame(framed.substr(0, cut), offset, out),
              FrameStatus::kTorn)
        << "cut at " << cut;
    EXPECT_EQ(offset, 0u);
  }
}

TEST(DurabilityCodecTest, InsaneLengthIsCorruptNotAllocated) {
  ByteWriter w;
  w.u32(kMaxFrameBytes + 1);
  w.u32(0);
  const std::string framed = w.take();
  std::size_t offset = 0;
  std::string_view out;
  EXPECT_EQ(next_frame(framed, offset, out), FrameStatus::kCorrupt);
}

}  // namespace
}  // namespace wadp::durability
