#include "durability/snapshot.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "history/adapter.hpp"

namespace wadp::durability {
namespace {

namespace fs = std::filesystem;

history::StoreConfig dedup_config(std::size_t retention = 0) {
  return history::StoreConfig{.shard_count = 4,
                              .max_observations_per_series = retention,
                              .instrumented = false,
                              .dedupe_records = true};
}

gridftp::TransferRecord record(double end, const std::string& remote,
                               std::uint64_t trace = 0, bool ok = true) {
  gridftp::TransferRecord r;
  r.host = "dpsslx04.lbl.gov";
  r.source_ip = remote;
  r.file_name = "/v/f";
  r.file_size = 10 * kMB;
  r.volume = "/v";
  r.start_time = end - 10.0;
  r.end_time = end;
  r.op = gridftp::Operation::kRead;
  r.streams = 8;
  r.tcp_buffer = 1'000'000;
  r.ok = ok;
  r.trace_id = trace;
  return r;
}

std::string scratch(const std::string& name) {
  const auto dir = fs::path(::testing::TempDir()) / ("wadp_snap_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

TEST(SnapshotTest, RoundTripRestoresExactSeriesState) {
  history::HistoryStore store(dedup_config());
  // Two series, an out-of-order insert (bumps generation), a failed
  // transfer, and distinct trace ids.
  for (int i = 0; i < 5; ++i) {
    store.append(record(100.0 + 10 * i, "140.221.65.69", 100 + i));
  }
  store.append(record(105.0, "140.221.65.69", 999));  // out of order
  store.append(record(50.0, "131.243.2.91", 200, /*ok=*/false));
  store.append(record(60.0, "131.243.2.91", 201));

  const auto dir = scratch("roundtrip");
  const auto meta = write_snapshot(store, dir, 1, 77);
  ASSERT_TRUE(meta.ok()) << meta.error();
  EXPECT_EQ(meta.value().seq, 1u);
  EXPECT_EQ(meta.value().sealed_lsn, 77u);
  EXPECT_EQ(meta.value().series, 2u);
  EXPECT_EQ(meta.value().observations, store.total_observations());

  history::HistoryStore restored(dedup_config());
  const auto loaded = load_snapshot(dir, 1, restored);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_EQ(loaded.value().sealed_lsn, 77u);

  ASSERT_EQ(restored.keys(), store.keys());
  for (const auto& key : store.keys()) {
    const auto before = store.snapshot(key);
    const auto after = restored.snapshot(key);
    // Observation == compares doubles exactly: bit-identical restore.
    EXPECT_EQ(after.observations(), before.observations())
        << key.to_string();
    EXPECT_EQ(after.epoch(), before.epoch());
    EXPECT_EQ(after.generation(), before.generation());
    EXPECT_EQ(after.evicted(), before.evicted());
  }

  // The dedupe index came along: replaying an already-captured record
  // into the restored store is a no-op.
  const auto obs_before = restored.total_observations();
  restored.append(record(105.0, "140.221.65.69", 999));
  EXPECT_EQ(restored.total_observations(), obs_before);
  EXPECT_EQ(restored.dedup_skipped(), 1u);
  // A genuinely new record still applies.
  restored.append(record(400.0, "140.221.65.69", 7777));
  EXPECT_EQ(restored.total_observations(), obs_before + 1);
}

TEST(SnapshotTest, EvictionCountersSurviveTheRoundTrip) {
  history::HistoryStore store(dedup_config(/*retention=*/3));
  for (int i = 0; i < 8; ++i) {
    store.append(record(100.0 + i, "140.221.65.69", 100 + i));
  }
  const auto key = history::series_key_for(record(0.0, "140.221.65.69"));
  ASSERT_EQ(store.snapshot(key).size(), 3u);
  ASSERT_EQ(store.snapshot(key).evicted(), 5u);

  const auto dir = scratch("evict");
  ASSERT_TRUE(write_snapshot(store, dir, 1, 0).ok());
  history::HistoryStore restored(dedup_config(/*retention=*/3));
  ASSERT_TRUE(load_snapshot(dir, 1, restored).ok());
  EXPECT_EQ(restored.snapshot(key).evicted(), 5u);
  EXPECT_EQ(restored.snapshot(key).epoch(), store.snapshot(key).epoch());
}

TEST(SnapshotTest, ManifestIsTheCommitPoint) {
  history::HistoryStore store(dedup_config());
  store.append(record(100.0, "140.221.65.69", 1));
  const auto dir = scratch("commit");
  ASSERT_TRUE(write_snapshot(store, dir, 1, 0).ok());
  ASSERT_TRUE(write_snapshot(store, dir, 2, 0).ok());
  EXPECT_EQ(latest_snapshot(dir).value_or(0), 2u);

  // Deleting snapshot 2's manifest (a crash before the rename) makes
  // snapshot 1 the newest committed one — shard files alone count for
  // nothing.
  fs::remove(fs::path(dir) / "snap-00000002.manifest");
  EXPECT_EQ(latest_snapshot(dir).value_or(0), 1u);

  // A manifest cut before its end line is equally uncommitted.
  const auto manifest1 = (fs::path(dir) / "snap-00000001.manifest").string();
  std::ifstream in(manifest1);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(manifest1, std::ios::trunc);
  out << text.substr(0, text.size() / 2);
  out.close();
  EXPECT_FALSE(latest_snapshot(dir).has_value());
}

TEST(SnapshotTest, DamagedShardFileFailsTheLoad) {
  history::HistoryStore store(dedup_config());
  for (int i = 0; i < 4; ++i) {
    store.append(record(100.0 + i, "140.221.65.69", 100 + i));
  }
  const auto dir = scratch("damage");
  ASSERT_TRUE(write_snapshot(store, dir, 1, 0).ok());

  // Flip one byte in the (only) shard file body.
  for (const auto& entry : fs::directory_iterator(dir)) {
    const auto name = entry.path().filename().string();
    if (!name.ends_with(".shard")) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    data[data.size() / 2] =
        static_cast<char>(data[data.size() / 2] ^ 0x10);
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }

  history::HistoryStore restored(dedup_config());
  const auto loaded = load_snapshot(dir, 1, restored);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(restored.total_observations(), 0u);
}

TEST(SnapshotTest, RemoveSnapshotsBeforeKeepsTheRetainedTail) {
  history::HistoryStore store(dedup_config());
  store.append(record(100.0, "140.221.65.69", 1));
  const auto dir = scratch("retain");
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    ASSERT_TRUE(write_snapshot(store, dir, seq, 0).ok());
  }
  const auto removed = remove_snapshots_before(dir, 3);
  EXPECT_GT(removed, 0u);
  EXPECT_EQ(latest_snapshot(dir).value_or(0), 3u);
  // Only sequence 3's files remain.
  for (const auto& entry : fs::directory_iterator(dir)) {
    const auto name = entry.path().filename().string();
    EXPECT_TRUE(name.starts_with("snap-00000003")) << name;
  }
  history::HistoryStore restored(dedup_config());
  EXPECT_TRUE(load_snapshot(dir, 3, restored).ok());
}

TEST(SnapshotTest, MissingDirectoryHasNoSnapshots) {
  EXPECT_FALSE(latest_snapshot((fs::path(::testing::TempDir()) /
                                "wadp_snap_never_existed")
                                   .string())
                   .has_value());
}

}  // namespace
}  // namespace wadp::durability
