// Concurrency: snapshots capture while producers ingest (the capture
// leases epochs; ingest copy-on-writes around them and never stalls),
// and the WAL observer group-commits under multi-threaded append.
// Named *Thread* so the CI TSan job picks it up.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "durability/manager.hpp"

namespace wadp::durability {
namespace {

namespace fs = std::filesystem;

gridftp::TransferRecord record(double end, const std::string& remote,
                               std::uint64_t trace) {
  gridftp::TransferRecord r;
  r.host = "dpsslx04.lbl.gov";
  r.source_ip = remote;
  r.file_name = "/v/f";
  r.file_size = 10 * kMB;
  r.volume = "/v";
  r.start_time = end - 10.0;
  r.end_time = end;
  r.op = gridftp::Operation::kRead;
  r.streams = 8;
  r.tcp_buffer = 1'000'000;
  r.trace_id = trace;
  return r;
}

TEST(DurabilityThreadTest, SnapshotsWhileFourProducersIngest) {
  const auto root =
      (fs::path(::testing::TempDir()) / "wadp_durability_thread").string();
  fs::remove_all(root);

  auto store = std::make_shared<history::HistoryStore>(
      history::StoreConfig{.shard_count = 4,
                           .instrumented = false,
                           .dedupe_records = true});
  DurabilityConfig config;
  config.dir = root;
  config.fsync = FsyncPolicy::kNone;
  config.group_commit_records = 16;
  config.keep_snapshots = 2;
  config.instrumented = false;
  DurabilityManager manager(store, config);
  manager.attach();

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::atomic<bool> done{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const std::string remote = "140.221.65." + std::to_string(60 + p);
      for (int i = 0; i < kPerProducer; ++i) {
        store->append(record(1000.0 + i, remote,
                             static_cast<std::uint64_t>(p) * 1'000'000 + i));
      }
    });
  }
  std::thread snapshotter([&] {
    while (!done.load(std::memory_order_acquire)) {
      const auto meta = manager.snapshot_now();
      ASSERT_TRUE(meta.ok()) << meta.error();
      (void)manager.status();
      std::this_thread::yield();
    }
  });

  for (auto& producer : producers) producer.join();
  done.store(true, std::memory_order_release);
  snapshotter.join();
  manager.flush();

  EXPECT_EQ(store->total_observations(),
            static_cast<std::size_t>(kProducers) * kPerProducer);

  // Whatever interleaving of snapshots and ingest happened, recovery
  // reproduces the final store exactly.
  auto recovered = std::make_shared<history::HistoryStore>(
      history::StoreConfig{.shard_count = 4,
                           .instrumented = false,
                           .dedupe_records = true});
  const auto stats = DurabilityManager::recover(root, *recovered);
  ASSERT_TRUE(stats.ok()) << stats.error();
  EXPECT_EQ(stats.value().torn_frames, 0u);
  ASSERT_EQ(recovered->keys(), store->keys());
  for (const auto& key : store->keys()) {
    EXPECT_EQ(recovered->snapshot(key).observations(),
              store->snapshot(key).observations())
        << key.to_string();
    EXPECT_EQ(recovered->snapshot(key).epoch(), store->snapshot(key).epoch());
  }
}

TEST(DurabilityThreadTest, ConcurrentWalAppendsKeepLsnsUnique) {
  const auto root =
      (fs::path(::testing::TempDir()) / "wadp_wal_thread").string();
  fs::remove_all(root);
  WalConfig config;
  config.dir = root;
  config.fsync = FsyncPolicy::kNone;
  config.group_commit_records = 32;
  config.instrumented = false;
  WriteAheadLog wal(config);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        wal.append(record(100.0 + i, "140.221.65.69",
                          static_cast<std::uint64_t>(t) * 10'000 + i));
      }
    });
  }
  for (auto& writer : writers) writer.join();
  wal.flush();

  std::vector<bool> seen(kThreads * kPerThread + 1, false);
  const auto stats = WriteAheadLog::replay(root, [&](const WalEntry& e) {
    ASSERT_LT(e.lsn, seen.size());
    ASSERT_FALSE(seen[e.lsn]) << "duplicate LSN " << e.lsn;
    seen[e.lsn] = true;
  });
  EXPECT_EQ(stats.entries, static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.torn_frames, 0u);
}

}  // namespace
}  // namespace wadp::durability
