#include "durability/wal.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace wadp::durability {
namespace {

namespace fs = std::filesystem;

gridftp::TransferRecord record(double end, std::uint64_t trace = 0) {
  gridftp::TransferRecord r;
  r.host = "dpsslx04.lbl.gov";
  r.source_ip = "140.221.65.69";
  r.file_name = "/v/f";
  r.file_size = 10 * kMB;
  r.volume = "/v";
  r.start_time = end - 10.0;
  r.end_time = end;
  r.op = gridftp::Operation::kRead;
  r.streams = 8;
  r.tcp_buffer = 1'000'000;
  r.trace_id = trace;
  return r;
}

/// Fresh scratch directory per test case.
std::string scratch(const std::string& name) {
  const auto dir = fs::path(::testing::TempDir()) / ("wadp_wal_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

WalConfig quiet(std::string dir) {
  WalConfig config;
  config.dir = std::move(dir);
  config.fsync = FsyncPolicy::kNone;  // tests crash the process, not the box
  config.instrumented = false;
  return config;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

void spit(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

TEST(WriteAheadLogTest, AppendsAssignMonotoneLsnsFromOne) {
  const auto dir = scratch("lsn");
  WriteAheadLog wal(quiet(dir));
  EXPECT_EQ(wal.append(record(100.0)), 1u);
  EXPECT_EQ(wal.append(record(200.0)), 2u);
  EXPECT_EQ(wal.append(record(300.0)), 3u);
  const auto stats = wal.stats();
  EXPECT_EQ(stats.appended, 3u);
  EXPECT_EQ(stats.last_lsn, 3u);
}

TEST(WriteAheadLogTest, GroupCommitBatchesReachDiskOnFlush) {
  const auto dir = scratch("batch");
  auto config = quiet(dir);
  config.group_commit_records = 4;
  WriteAheadLog wal(config);
  for (int i = 0; i < 6; ++i) wal.append(record(100.0 + i));
  // One full batch of 4 flushed itself; 2 entries are still pending.
  EXPECT_EQ(wal.stats().batches, 1u);
  EXPECT_EQ(wal.stats().durable_lsn, 4u);
  wal.flush();
  EXPECT_EQ(wal.stats().batches, 2u);
  EXPECT_EQ(wal.stats().durable_lsn, 6u);
}

TEST(WriteAheadLogTest, ReplayReturnsEveryEntryInOrder) {
  const auto dir = scratch("replay");
  {
    WriteAheadLog wal(quiet(dir));
    for (int i = 0; i < 10; ++i) {
      wal.append(record(100.0 * (i + 1), 1000 + i));
    }
  }  // destructor flushes
  std::vector<WalEntry> seen;
  const auto stats =
      WriteAheadLog::replay(dir, [&](const WalEntry& e) { seen.push_back(e); });
  EXPECT_EQ(stats.entries, 10u);
  EXPECT_EQ(stats.torn_frames, 0u);
  EXPECT_FALSE(stats.stopped_early);
  ASSERT_EQ(seen.size(), 10u);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].lsn, i + 1);
    EXPECT_EQ(seen[i].record.trace_id, 1000 + i);
    EXPECT_EQ(seen[i].record.end_time, 100.0 * (i + 1));
  }
}

TEST(WriteAheadLogTest, SegmentsRotateAndTruncateBySealedLsn) {
  const auto dir = scratch("rotate");
  auto config = quiet(dir);
  config.segment_bytes = 256;  // a few records per segment
  config.group_commit_records = 1;
  WriteAheadLog wal(config);
  for (int i = 0; i < 20; ++i) wal.append(record(100.0 + i));
  wal.flush();
  const auto before = wal.segments();
  ASSERT_GT(before.size(), 2u);

  // Seal at LSN 20: every closed segment is covered; only the active
  // one must survive.
  const auto removed = wal.truncate_through(20);
  EXPECT_GT(removed, 0u);
  EXPECT_EQ(wal.segments().size(), before.size() - removed);
  // Replay after truncation only sees what segments remain — and still
  // never errors.
  const auto stats = WriteAheadLog::replay(dir, [](const WalEntry&) {});
  EXPECT_FALSE(stats.stopped_early);

  // A seal below every remaining base removes nothing.
  EXPECT_EQ(wal.truncate_through(0), 0u);
}

TEST(WriteAheadLogTest, ReopenContinuesTheLsnSequence) {
  const auto dir = scratch("reopen");
  {
    WriteAheadLog wal(quiet(dir));
    for (int i = 0; i < 5; ++i) wal.append(record(100.0 + i));
  }
  {
    WriteAheadLog wal(quiet(dir));
    EXPECT_EQ(wal.append(record(500.0)), 6u);  // continues past 5
  }
  std::size_t entries = 0;
  std::uint64_t max_lsn = 0;
  WriteAheadLog::replay(dir, [&](const WalEntry& e) {
    ++entries;
    max_lsn = std::max(max_lsn, e.lsn);
  });
  EXPECT_EQ(entries, 6u);
  EXPECT_EQ(max_lsn, 6u);
}

// The crash-point matrix: cut the segment file at EVERY byte offset
// and replay.  The contract under test: recovery stops cleanly at the
// last valid frame, reports the torn tail, and never aborts.
TEST(WriteAheadLogTest, CrashPointMatrixTruncateAtEveryByte) {
  const auto dir = scratch("matrix_src");
  constexpr int kRecords = 8;
  {
    WriteAheadLog wal(quiet(dir));
    for (int i = 0; i < kRecords; ++i) wal.append(record(100.0 + i, 7000 + i));
  }
  const auto segments = WriteAheadLog::list_segments(dir);
  ASSERT_EQ(segments.size(), 1u);
  const std::string data = slurp(segments[0]);

  // Frame boundaries: header end, then the end of each framed entry.
  constexpr std::size_t kHeaderBytes = 24;
  std::vector<std::size_t> boundaries{kHeaderBytes};
  {
    std::size_t offset = kHeaderBytes;
    std::string_view payload;
    while (next_frame(data, offset, payload) == FrameStatus::kOk) {
      boundaries.push_back(offset);
    }
  }
  ASSERT_EQ(boundaries.size(), kRecords + 1u);

  const auto cut_dir = scratch("matrix_cut");
  const std::string cut_path =
      (fs::path(cut_dir) / fs::path(segments[0]).filename()).string();
  for (std::size_t cut = 0; cut <= data.size(); ++cut) {
    spit(cut_path, data.substr(0, cut));
    std::vector<std::uint64_t> lsns;
    const auto stats = WriteAheadLog::replay(
        cut_dir, [&](const WalEntry& e) { lsns.push_back(e.lsn); });

    // Expected survivors: complete frames fully below the cut.
    std::size_t expect_entries = 0;
    while (expect_entries + 1 < boundaries.size() &&
           boundaries[expect_entries + 1] <= cut) {
      ++expect_entries;
    }
    if (cut < kHeaderBytes) {
      EXPECT_EQ(stats.entries, 0u) << "cut at " << cut;
      EXPECT_EQ(stats.torn_frames, 1u) << "cut at " << cut;
      EXPECT_TRUE(stats.stopped_early) << "cut at " << cut;
      continue;
    }
    EXPECT_EQ(stats.entries, expect_entries) << "cut at " << cut;
    ASSERT_EQ(lsns.size(), expect_entries) << "cut at " << cut;
    for (std::size_t i = 0; i < lsns.size(); ++i) EXPECT_EQ(lsns[i], i + 1);
    // A cut exactly on a frame boundary is a clean end, not a tear.
    const bool on_boundary =
        boundaries[expect_entries] == cut;
    EXPECT_EQ(stats.stopped_early, !on_boundary) << "cut at " << cut;
    EXPECT_EQ(stats.torn_frames, on_boundary ? 0u : 1u) << "cut at " << cut;
  }
}

TEST(WriteAheadLogTest, CorruptCrcMidFileStopsAtLastValidFrame) {
  const auto dir = scratch("corrupt");
  constexpr int kRecords = 6;
  {
    WriteAheadLog wal(quiet(dir));
    for (int i = 0; i < kRecords; ++i) wal.append(record(100.0 + i));
  }
  const auto segments = WriteAheadLog::list_segments(dir);
  ASSERT_EQ(segments.size(), 1u);
  std::string data = slurp(segments[0]);

  // Find the start of frame #4 (index 3) and flip a payload bit there.
  constexpr std::size_t kHeaderBytes = 24;
  std::size_t offset = kHeaderBytes;
  std::string_view payload;
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(next_frame(data, offset, payload), FrameStatus::kOk);
  }
  data[offset + 8 + 4] = static_cast<char>(data[offset + 8 + 4] ^ 0x01);
  spit(segments[0], data);

  std::size_t entries = 0;
  const auto stats =
      WriteAheadLog::replay(dir, [&](const WalEntry&) { ++entries; });
  EXPECT_EQ(entries, 3u);  // everything before the damage
  EXPECT_EQ(stats.torn_frames, 1u);
  EXPECT_TRUE(stats.stopped_early);
}

TEST(WriteAheadLogTest, DamageInAnEarlySegmentDropsLaterSegmentsToo) {
  const auto dir = scratch("early_damage");
  auto config = quiet(dir);
  config.segment_bytes = 256;
  config.group_commit_records = 1;
  {
    WriteAheadLog wal(config);
    for (int i = 0; i < 20; ++i) wal.append(record(100.0 + i));
  }
  auto segments = WriteAheadLog::list_segments(dir);
  ASSERT_GT(segments.size(), 2u);
  // Tear the tail off the FIRST segment: replay must not leap over the
  // gap into later segments (that would reorder history).
  std::string data = slurp(segments[0]);
  spit(segments[0], data.substr(0, data.size() - 3));

  std::uint64_t max_lsn = 0;
  const auto stats = WriteAheadLog::replay(
      dir, [&](const WalEntry& e) { max_lsn = std::max(max_lsn, e.lsn); });
  EXPECT_TRUE(stats.stopped_early);
  // Nothing delivered may come from past the damaged segment.
  std::string second_data = slurp(segments[1]);
  std::size_t offset = 24;
  std::string_view payload;
  ASSERT_EQ(next_frame(second_data, offset, payload), FrameStatus::kOk);
  const auto first_later = decode_entry(payload);
  ASSERT_TRUE(first_later.has_value());
  EXPECT_LT(max_lsn, first_later->lsn);
}

// Crash -> restart -> fsync-acked appends -> second crash.  The first
// crash leaves a torn tail in the old segment; the restarted writer
// resumes the LSN sequence in a fresh segment whose base LSN is the
// last valid LSN + 1.  Replay must recognize that as a clean writer
// restart and continue into the new segment — otherwise records that
// were acknowledged durable after the restart silently vanish.
TEST(WriteAheadLogTest, ReplayContinuesPastTornTailIntoRestartSegment) {
  const auto dir = scratch("restart_tail");
  {
    WriteAheadLog wal(quiet(dir));
    for (int i = 0; i < 5; ++i) wal.append(record(100.0 + i, 5000 + i));
  }
  auto segments = WriteAheadLog::list_segments(dir);
  ASSERT_EQ(segments.size(), 1u);
  // First crash: tear the last frame (LSN 5) off the segment tail.
  const std::string data = slurp(segments[0]);
  spit(segments[0], data.substr(0, data.size() - 3));

  {
    // Restart: the writer sees valid frames 1..4 and resumes at 5.
    WriteAheadLog wal(quiet(dir));
    EXPECT_EQ(wal.append(record(500.0, 6000)), 5u);
    EXPECT_EQ(wal.append(record(501.0, 6001)), 6u);
  }  // second crash (destructor flushed: these were acknowledged)

  std::vector<std::uint64_t> lsns;
  const auto stats = WriteAheadLog::replay(
      dir, [&](const WalEntry& e) { lsns.push_back(e.lsn); });
  EXPECT_EQ(stats.torn_frames, 1u);       // the old tail, still counted
  EXPECT_FALSE(stats.stopped_early);      // but the pass did not end there
  ASSERT_EQ(lsns.size(), 6u);
  for (std::size_t i = 0; i < lsns.size(); ++i) EXPECT_EQ(lsns[i], i + 1);
  EXPECT_EQ(stats.max_lsn, 6u);
}

TEST(WriteAheadLogTest, EmptyAndMissingDirectoriesReplayToNothing) {
  const auto stats = WriteAheadLog::replay(
      (fs::path(::testing::TempDir()) / "wadp_wal_never_existed").string(),
      [](const WalEntry&) { FAIL() << "no entries expected"; });
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.torn_frames, 0u);
  EXPECT_FALSE(stats.stopped_early);
}

}  // namespace
}  // namespace wadp::durability
