#include "predict/classifier.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace wadp::predict {
namespace {

TEST(SizeClassifierTest, PaperClassBoundaries) {
  const auto c = SizeClassifier::paper_classes();
  EXPECT_EQ(c.num_classes(), 4);
  EXPECT_EQ(c.classify(1 * kMB), 0);
  EXPECT_EQ(c.classify(50 * kMB), 0);   // inclusive upper bound
  EXPECT_EQ(c.classify(50 * kMB + 1), 1);
  EXPECT_EQ(c.classify(250 * kMB), 1);
  EXPECT_EQ(c.classify(500 * kMB), 2);
  EXPECT_EQ(c.classify(750 * kMB), 2);
  EXPECT_EQ(c.classify(1000 * kMB), 3);
}

TEST(SizeClassifierTest, PaperThirteenSizesSplitAsExpected) {
  // {1,2,5,10,25,50} | {100,150,250} | {400,500,750} | {1000} — the
  // partition implied by Fig. 7's equal 100MB/500MB class counts.
  const auto c = SizeClassifier::paper_classes();
  int counts[4] = {0, 0, 0, 0};
  for (const Bytes mb : {1, 2, 5, 10, 25, 50, 100, 150, 250, 400, 500, 750, 1000}) {
    ++counts[c.classify(static_cast<Bytes>(mb) * kMB)];
  }
  EXPECT_EQ(counts[0], 6);
  EXPECT_EQ(counts[1], 3);
  EXPECT_EQ(counts[2], 3);
  EXPECT_EQ(counts[3], 1);
}

TEST(SizeClassifierTest, ZeroByteFileIsSmallest) {
  EXPECT_EQ(SizeClassifier::paper_classes().classify(0), 0);
}

TEST(SizeClassifierTest, ClassNames) {
  const auto c = SizeClassifier::paper_classes();
  EXPECT_EQ(c.class_name(0), "0-50MB");
  EXPECT_EQ(c.class_name(1), "50-250MB");
  EXPECT_EQ(c.class_name(2), "250-750MB");
  EXPECT_EQ(c.class_name(3), ">750MB");
}

TEST(SizeClassifierTest, PaperFigureLabels) {
  const auto c = SizeClassifier::paper_classes();
  EXPECT_EQ(c.class_label(0), "10MB");
  EXPECT_EQ(c.class_label(1), "100MB");
  EXPECT_EQ(c.class_label(2), "500MB");
  EXPECT_EQ(c.class_label(3), "1GB");
}

TEST(SizeClassifierTest, CustomBoundaries) {
  const SizeClassifier c({10 * kMB});
  EXPECT_EQ(c.num_classes(), 2);
  EXPECT_EQ(c.classify(10 * kMB), 0);
  EXPECT_EQ(c.classify(11 * kMB), 1);
  EXPECT_EQ(c.class_name(0), "0-10MB");
  EXPECT_EQ(c.class_name(1), ">10MB");
  // Non-paper boundaries fall back to range names for labels.
  EXPECT_EQ(c.class_label(0), "0-10MB");
}

TEST(SizeClassifierTest, SameClassHelper) {
  const auto c = SizeClassifier::paper_classes();
  EXPECT_TRUE(c.same_class(1 * kMB, 50 * kMB));
  EXPECT_FALSE(c.same_class(50 * kMB, 51 * kMB));
}

TEST(SizeClassifierTest, RepresentativeSizeClassifiesIntoItsClass) {
  const auto c = SizeClassifier::paper_classes();
  for (int cls = 0; cls < c.num_classes(); ++cls) {
    EXPECT_EQ(c.classify(c.representative_size(cls)), cls) << "cls=" << cls;
  }
}

TEST(SizeClassifierTest, ClassifyExactlyAtEachBoundary) {
  // Upper bounds are inclusive: a file exactly at a boundary belongs to
  // the class below it; one byte more crosses over.
  const auto c = SizeClassifier::paper_classes();
  EXPECT_EQ(c.classify(0), 0);
  EXPECT_EQ(c.classify(50 * kMB), 0);
  EXPECT_EQ(c.classify(50 * kMB + 1), 1);
  EXPECT_EQ(c.classify(250 * kMB), 1);
  EXPECT_EQ(c.classify(250 * kMB + 1), 2);
  EXPECT_EQ(c.classify(750 * kMB), 2);
  EXPECT_EQ(c.classify(750 * kMB + 1), 3);
  EXPECT_EQ(c.classify(std::numeric_limits<Bytes>::max()), 3);
}

TEST(SizeClassifierTest, RepresentativeSizeSaturatesNearTypeMax) {
  // The open class used to compute 4/3 of its boundary in Bytes
  // arithmetic, which wrapped for boundaries in the top quarter of the
  // range and produced a "representative" size in the smallest class.
  constexpr Bytes kMax = std::numeric_limits<Bytes>::max();
  const SizeClassifier at_max({kMax - 1});
  EXPECT_EQ(at_max.representative_size(1), kMax);  // saturated, not wrapped
  EXPECT_EQ(at_max.classify(at_max.representative_size(1)), 1);

  const SizeClassifier top_quarter({kMax / 4 * 3 + 42});
  const Bytes rep = top_quarter.representative_size(1);
  EXPECT_GT(rep, kMax / 4 * 3 + 42);  // still above its boundary
  EXPECT_EQ(top_quarter.classify(rep), 1);

  // Far from the edge the 4/3 rule is unchanged.
  const auto paper = SizeClassifier::paper_classes();
  EXPECT_EQ(paper.representative_size(3), 750 * kMB + 750 * kMB / 3);
}

TEST(SizeClassifierTest, RepresentativeSizeMidpointDoesNotWrap) {
  // A bounded class spanning most of the Bytes range: the upward
  // midpoint must stay inside [lo, hi] instead of overflowing through
  // `hi - lo + 1`.
  constexpr Bytes kMax = std::numeric_limits<Bytes>::max();
  const SizeClassifier wide({kMax});  // class 0 = [0, max]
  const Bytes rep = wide.representative_size(0);
  EXPECT_EQ(rep, kMax / 2 + 1);
  EXPECT_EQ(wide.classify(rep), 0);
}

TEST(SizeClassifierDeathTest, UnsortedBoundariesAbort) {
  EXPECT_DEATH(SizeClassifier({250 * kMB, 50 * kMB}), "ascend");
}

TEST(SizeClassifierDeathTest, DuplicateBoundariesAbort) {
  EXPECT_DEATH(SizeClassifier({50 * kMB, 50 * kMB}), "distinct");
}

}  // namespace
}  // namespace wadp::predict
