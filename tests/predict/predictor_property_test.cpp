// Property tests over the whole predictor battery: invariants every
// member must satisfy, parameterized by predictor name.
#include <gtest/gtest.h>

#include <cmath>

#include "predict/extended.hpp"
#include "predict/suite.hpp"
#include "util/rng.hpp"

namespace wadp::predict {
namespace {

std::vector<Observation> random_series(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  const std::vector<Bytes> sizes = {1 * kMB,   10 * kMB,  100 * kMB,
                                    500 * kMB, 1000 * kMB};
  std::vector<Observation> out;
  double t = 1'000'000.0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({.time = t,
                   .value = rng.uniform(1e6, 1e7),
                   .file_size = sizes[static_cast<std::size_t>(rng.uniform_int(
                       0, static_cast<std::int64_t>(sizes.size()) - 1))]});
    t += rng.uniform(60.0, 3600.0);
  }
  return out;
}

class BatteryPropertyTest : public ::testing::TestWithParam<std::string> {
 protected:
  static const PredictorSuite& suite() {
    static const PredictorSuite kSuite = extended_suite();
    return kSuite;
  }
  const Predictor& predictor() const {
    const auto* p = suite().find(GetParam());
    EXPECT_NE(p, nullptr);
    return *p;
  }
};

TEST_P(BatteryPropertyTest, PredictionWithinHistoryRange) {
  // Every battery member interpolates: predictions never leave the
  // [min, max] of the values it can see.  (AR and SREG extrapolate, but
  // remain bounded by construction on bounded inputs; we allow them a
  // wide margin instead of the exact hull.)
  const auto series = random_series(7, 80);
  const Query query{.time = series.back().time + 600.0,
                    .file_size = 100 * kMB};
  const auto prediction = predictor().predict(series, query);
  if (!prediction) return;  // insufficient usable history is acceptable
  EXPECT_GE(*prediction, 0.0);
  EXPECT_LE(*prediction, 1e8);  // an order above the series maximum
}

TEST_P(BatteryPropertyTest, ScaleEquivariance) {
  // Doubling every measured bandwidth doubles the prediction (all
  // battery members are positively homogeneous of degree one).
  const auto series = random_series(11, 60);
  std::vector<Observation> doubled = series;
  for (auto& o : doubled) o.value *= 2.0;
  const Query query{.time = series.back().time + 600.0,
                    .file_size = 500 * kMB};
  const auto base = predictor().predict(series, query);
  const auto scaled = predictor().predict(doubled, query);
  ASSERT_EQ(base.has_value(), scaled.has_value());
  if (base && *base > 0.0) {
    EXPECT_NEAR(*scaled / *base, 2.0, 1e-9);
  }
}

TEST_P(BatteryPropertyTest, TimeShiftInvariance) {
  // Shifting the whole series and the query by a constant offset must
  // not change the prediction (no predictor depends on absolute time).
  const auto series = random_series(13, 60);
  constexpr double kShift = 9.5 * 86400.0;
  std::vector<Observation> shifted = series;
  for (auto& o : shifted) o.time += kShift;
  const Query query{.time = series.back().time + 600.0,
                    .file_size = 10 * kMB};
  const Query shifted_query{.time = query.time + kShift,
                            .file_size = query.file_size};
  const auto base = predictor().predict(series, query);
  const auto moved = predictor().predict(shifted, shifted_query);
  ASSERT_EQ(base.has_value(), moved.has_value());
  if (base) {
    EXPECT_NEAR(*moved, *base, std::abs(*base) * 1e-9);
  }
}

TEST_P(BatteryPropertyTest, DeterministicAcrossCalls) {
  const auto series = random_series(17, 70);
  const Query query{.time = series.back().time + 60.0,
                    .file_size = 1000 * kMB};
  const auto first = predictor().predict(series, query);
  const auto second = predictor().predict(series, query);
  ASSERT_EQ(first.has_value(), second.has_value());
  if (first) {
    EXPECT_DOUBLE_EQ(*first, *second);
  }
}

TEST_P(BatteryPropertyTest, ConstantHistoryPredictsTheConstant) {
  // Feed a constant 5 MB/s series (mixed sizes): every technique must
  // answer exactly 5 MB/s.  (SREG included: its regression degenerates
  // to the mean of a constant response.)
  std::vector<Observation> series;
  util::Rng rng(19);
  const std::vector<Bytes> sizes = {1 * kMB, 10 * kMB, 100 * kMB,
                                    500 * kMB, 1000 * kMB};
  double t = 0.0;
  for (int i = 0; i < 60; ++i) {
    series.push_back({.time = t,
                      .value = 5e6,
                      .file_size = sizes[static_cast<std::size_t>(
                          rng.uniform_int(0, 4))]});
    t += 600.0;
  }
  const Query query{.time = t, .file_size = 100 * kMB};
  const auto prediction = predictor().predict(series, query);
  ASSERT_TRUE(prediction.has_value()) << GetParam();
  EXPECT_NEAR(*prediction, 5e6, 1.0) << GetParam();
}

TEST_P(BatteryPropertyTest, EmptyHistoryNeverAnswers) {
  const Query query{.time = 1000.0, .file_size = kMB};
  EXPECT_FALSE(predictor().predict({}, query).has_value());
}

std::vector<std::string> all_battery_names() {
  const PredictorSuite suite = extended_suite();
  std::vector<std::string> names;
  for (const auto& p : suite.predictors()) {
    names.push_back(p->name());
  }
  return names;
}

std::string sanitize(const ::testing::TestParamInfo<std::string>& info) {
  std::string out = info.param;
  for (char& c : out) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllPredictors, BatteryPropertyTest,
                         ::testing::ValuesIn(all_battery_names()), sanitize);

}  // namespace
}  // namespace wadp::predict
