#include "predict/window.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wadp::predict {
namespace {

std::vector<Observation> series_at_times(std::initializer_list<double> times) {
  std::vector<Observation> out;
  for (double t : times) {
    out.push_back({.time = t, .value = t * 10.0, .file_size = 1000});
  }
  return out;
}

TEST(WindowSpecTest, AllReturnsWholeHistory) {
  const auto history = series_at_times({1, 2, 3});
  const auto window = WindowSpec::all().apply(history, 100.0);
  EXPECT_EQ(window.size(), 3u);
}

TEST(WindowSpecTest, LastNTakesSuffix) {
  const auto history = series_at_times({1, 2, 3, 4, 5});
  const auto window = WindowSpec::last_n(2).apply(history, 100.0);
  ASSERT_EQ(window.size(), 2u);
  EXPECT_DOUBLE_EQ(window[0].time, 4.0);
  EXPECT_DOUBLE_EQ(window[1].time, 5.0);
}

TEST(WindowSpecTest, LastNLargerThanHistoryTakesAll) {
  const auto history = series_at_times({1, 2});
  EXPECT_EQ(WindowSpec::last_n(25).apply(history, 100.0).size(), 2u);
}

TEST(WindowSpecTest, LastNOnEmptyHistory) {
  EXPECT_TRUE(WindowSpec::last_n(5).apply({}, 100.0).empty());
}

TEST(WindowSpecTest, TemporalWindowUsesQueryTime) {
  const auto history = series_at_times({10, 20, 30, 40});
  // At t=45 with a 20s window: cutoff 25 -> keeps 30, 40.
  const auto window = WindowSpec::last_duration(20.0).apply(history, 45.0);
  ASSERT_EQ(window.size(), 2u);
  EXPECT_DOUBLE_EQ(window[0].time, 30.0);
}

TEST(WindowSpecTest, TemporalWindowBoundaryInclusive) {
  const auto history = series_at_times({10, 20, 30});
  // Cutoff exactly 20: observation at 20 is kept (>= cutoff).
  const auto window = WindowSpec::last_duration(10.0).apply(history, 30.0);
  EXPECT_EQ(window.size(), 2u);
}

TEST(WindowSpecTest, TemporalWindowMayBeEmpty) {
  const auto history = series_at_times({10, 20});
  EXPECT_TRUE(WindowSpec::last_duration(5.0).apply(history, 100.0).empty());
}

TEST(WindowSpecTest, TemporalWindowIrregularSamples) {
  // The paper's motivation: irregular spacing means a count window and
  // a temporal window select different data.
  const auto history = series_at_times({0, 1, 2, 3600, 3601});
  const auto by_count = WindowSpec::last_n(4).apply(history, 3602.0);
  const auto by_time = WindowSpec::last_duration(60.0).apply(history, 3602.0);
  EXPECT_EQ(by_count.size(), 4u);
  EXPECT_EQ(by_time.size(), 2u);
}

TEST(WindowSpecTest, AllOnEmptyHistory) {
  EXPECT_TRUE(WindowSpec::all().apply({}, 100.0).empty());
}

TEST(WindowSpecTest, TemporalWindowOnEmptyHistory) {
  EXPECT_TRUE(WindowSpec::last_duration(60.0).apply({}, 100.0).empty());
}

TEST(WindowSpecTest, LastNExactlyHistorySize) {
  const auto history = series_at_times({1, 2, 3});
  const auto window = WindowSpec::last_n(3).apply(history, 100.0);
  ASSERT_EQ(window.size(), 3u);
  EXPECT_DOUBLE_EQ(window[0].time, 1.0);
}

TEST(WindowSpecTest, CutoffExactlyAtObservationTimeKeepsIt) {
  const auto history = series_at_times({10, 20, 30});
  // now - duration lands exactly on the oldest observation: kept.
  const auto window = WindowSpec::last_duration(20.0).apply(history, 30.0);
  ASSERT_EQ(window.size(), 3u);
  EXPECT_DOUBLE_EQ(window[0].time, 10.0);
}

TEST(WindowSpecTest, CutoffBeyondNewestIsEmpty) {
  const auto history = series_at_times({10, 20, 30});
  // Cutoff just past the newest observation excludes everything.
  EXPECT_TRUE(WindowSpec::last_duration(5.0).apply(history, 35.1).empty());
}

TEST(WindowSpecTest, QueryBeforeAllObservationsKeepsEverything) {
  // A query earlier than the history start: cutoff is negative, so the
  // whole (future, from the query's view) history stays in the window.
  const auto history = series_at_times({10, 20, 30});
  EXPECT_EQ(WindowSpec::last_duration(60.0).apply(history, 5.0).size(), 3u);
}

TEST(WindowSpecTest, DescribeNames) {
  EXPECT_EQ(WindowSpec::all().describe(), "all");
  EXPECT_EQ(WindowSpec::last_n(15).describe(), "last 15");
  EXPECT_EQ(WindowSpec::last_duration(5 * 3600.0).describe(), "last 5hr");
  EXPECT_EQ(WindowSpec::last_duration(10 * 86400.0).describe(), "last 10d");
  EXPECT_EQ(WindowSpec::last_duration(90.0).describe(), "last 90s");
}

TEST(WindowSpecTest, EqualityComparable) {
  EXPECT_EQ(WindowSpec::last_n(5), WindowSpec::last_n(5));
  EXPECT_NE(WindowSpec::last_n(5), WindowSpec::last_n(6));
  EXPECT_NE(WindowSpec::all(), WindowSpec::last_n(5));
}

}  // namespace
}  // namespace wadp::predict
