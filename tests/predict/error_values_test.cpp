#include <gtest/gtest.h>

#include "predict/evaluator.hpp"
#include "util/stats.hpp"

namespace wadp::predict {
namespace {

TEST(ErrorValuesTest, MatchesAggregatedStats) {
  // Rising series: LV's per-transfer errors are recomputable by hand.
  std::vector<Observation> series;
  for (int i = 0; i < 25; ++i) {
    series.push_back({.time = i * 100.0,
                      .value = 10.0 + i,
                      .file_size = i % 2 == 0 ? 10 * kMB : 900 * kMB});
  }
  LastValuePredictor lv;
  const auto result = Evaluator().run(series, {&lv});

  const auto values = error_values(result, 0);
  ASSERT_EQ(values.size(), result.errors(0).count());
  EXPECT_NEAR(*util::mean(values), result.errors(0).mean(), 1e-12);
  EXPECT_DOUBLE_EQ(*util::max_value(values), result.errors(0).max());
  EXPECT_DOUBLE_EQ(*util::min_value(values), result.errors(0).min());
}

TEST(ErrorValuesTest, ClassFilterMatchesPerClassStats) {
  std::vector<Observation> series;
  for (int i = 0; i < 30; ++i) {
    series.push_back({.time = i * 100.0,
                      .value = 5.0 + (i % 3),
                      .file_size = i % 2 == 0 ? 10 * kMB : 900 * kMB});
  }
  MeanPredictor avg("AVG", WindowSpec::all());
  const auto result = Evaluator().run(series, {&avg});
  for (int cls = 0; cls < 4; ++cls) {
    const auto values = error_values(result, 0, cls);
    EXPECT_EQ(values.size(), result.errors(0, cls).count()) << cls;
    if (!values.empty()) {
      EXPECT_NEAR(*util::mean(values), result.errors(0, cls).mean(), 1e-12);
    }
  }
}

TEST(ErrorValuesTest, QuantilesExposeTheTail) {
  // One huge outlier: the mean moves, the median barely does — the
  // reason the paper pairs means with best/worst tallies.
  std::vector<Observation> series;
  for (int i = 0; i < 40; ++i) {
    series.push_back({.time = i * 100.0,
                      .value = i == 30 ? 100.0 : 10.0,
                      .file_size = kMB});
  }
  LastValuePredictor lv;
  const auto result = Evaluator().run(series, {&lv});
  const auto values = error_values(result, 0);
  const auto p50 = *util::quantile(values, 0.5);
  const auto p95 = *util::quantile(values, 0.95);
  EXPECT_LT(p50, 1.0);  // almost always exact
  // The outlier contributes two errors (900% predicting after it, 90%
  // predicting it); interpolated p95 lands between the bulk and them.
  EXPECT_GT(p95, 50.0);
  EXPECT_GT(*util::max_value(values), 800.0);
}

TEST(ErrorValuesTest, EmptyWithoutSamples) {
  std::vector<Observation> series;
  for (int i = 0; i < 20; ++i) {
    series.push_back({.time = i * 100.0, .value = 5.0, .file_size = kMB});
  }
  MeanPredictor avg("AVG", WindowSpec::all());
  EvalConfig config;
  config.keep_samples = false;
  const auto result = Evaluator(config).run(series, {&avg});
  EXPECT_TRUE(error_values(result, 0).empty());
}

}  // namespace
}  // namespace wadp::predict
