#include "predict/crosssite.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "gridftp/record.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace wadp::predict {
namespace {

TEST(CrossSiteTest, EmptyEstimatorKnowsNothing) {
  CrossSiteEstimator estimator;
  EXPECT_FALSE(estimator.estimate("a", "b").has_value());
  EXPECT_EQ(estimator.observed_pairs(), 0u);
}

TEST(CrossSiteTest, SinglePairReproducesItsMean) {
  CrossSiteEstimator estimator;
  estimator.observe("lbl", "anl", 4e6);
  estimator.observe("lbl", "anl", 9e6);
  const auto estimate = estimator.estimate("lbl", "anl");
  ASSERT_TRUE(estimate.has_value());
  // Geometric mean of 4e6 and 9e6 = 6e6.
  EXPECT_NEAR(*estimate, 6e6, 1.0);
  EXPECT_NEAR(*estimator.observed_mean("lbl", "anl"), 6e6, 1.0);
}

TEST(CrossSiteTest, RecoversExactMultiplicativeModel) {
  // bw(s->d) = G * src(s) * dst(d) with known factors; observe three of
  // the four pairs, predict the held-out one exactly.
  const double G = 5e6;
  const std::map<std::string, double> src = {{"lbl", 2.0}, {"isi", 0.5}};
  const std::map<std::string, double> dst = {{"anl", 1.0}, {"ucsd", 0.25}};
  CrossSiteEstimator estimator;
  estimator.observe("lbl", "anl", G * src.at("lbl") * dst.at("anl"));
  estimator.observe("isi", "anl", G * src.at("isi") * dst.at("anl"));
  estimator.observe("lbl", "ucsd", G * src.at("lbl") * dst.at("ucsd"));
  // isi->ucsd never observed.
  const auto estimate = estimator.estimate("isi", "ucsd");
  ASSERT_TRUE(estimate.has_value());
  const double truth = G * src.at("isi") * dst.at("ucsd");
  EXPECT_NEAR(*estimate, truth, truth * 1e-9);
}

TEST(CrossSiteTest, UnknownEndpointsAreNullopt) {
  CrossSiteEstimator estimator;
  estimator.observe("lbl", "anl", 5e6);
  EXPECT_FALSE(estimator.estimate("mars", "anl").has_value());
  EXPECT_FALSE(estimator.estimate("lbl", "mars").has_value());
  // A site seen only as a sink is not a known source.
  EXPECT_FALSE(estimator.estimate("anl", "lbl").has_value());
}

TEST(CrossSiteTest, EstimateAgreesWithObservedMeanOnConsistentData) {
  // When the data is exactly multiplicative, fitted estimates reproduce
  // every observed pair's geometric mean.
  CrossSiteEstimator estimator;
  const double G = 1e6;
  for (const auto& [s, fs] :
       std::map<std::string, double>{{"a", 1.0}, {"b", 3.0}, {"c", 0.5}}) {
    for (const auto& [d, fd] :
         std::map<std::string, double>{{"x", 2.0}, {"y", 0.8}}) {
      estimator.observe(s, d, G * fs * fd);
    }
  }
  for (const std::string s : {"a", "b", "c"}) {
    for (const std::string d : {"x", "y"}) {
      EXPECT_NEAR(*estimator.estimate(s, d), *estimator.observed_mean(s, d),
                  1.0)
          << s << "->" << d;
    }
  }
}

TEST(CrossSiteTest, FactorsReflectRelativeCapability) {
  CrossSiteEstimator estimator;
  // lbl consistently 4x faster as a source than isi, to two sinks.
  estimator.observe("lbl", "anl", 8e6);
  estimator.observe("isi", "anl", 2e6);
  estimator.observe("lbl", "ucsd", 4e6);
  estimator.observe("isi", "ucsd", 1e6);
  const auto lbl = estimator.source_factor("lbl");
  const auto isi = estimator.source_factor("isi");
  ASSERT_TRUE(lbl && isi);
  EXPECT_NEAR(*lbl / *isi, 4.0, 1e-6);
  EXPECT_FALSE(estimator.source_factor("nowhere").has_value());
}

TEST(CrossSiteTest, RobustToNoisyObservations) {
  // Multiplicative truth + lognormal noise: held-out estimate lands
  // within ~15% of truth given enough samples.
  util::Rng rng(11);
  const double G = 5e6;
  const std::map<std::string, double> src = {
      {"s1", 1.5}, {"s2", 0.7}, {"s3", 1.0}};
  const std::map<std::string, double> dst = {
      {"d1", 1.2}, {"d2", 0.6}, {"d3", 1.0}};
  CrossSiteEstimator estimator;
  for (const auto& [s, fs] : src) {
    for (const auto& [d, fd] : dst) {
      if (s == "s2" && d == "d3") continue;  // held out
      for (int i = 0; i < 40; ++i) {
        const double noise = std::exp(rng.normal(0.0, 0.2));
        estimator.observe(s, d, G * fs * fd * noise);
      }
    }
  }
  const auto estimate = estimator.estimate("s2", "d3");
  ASSERT_TRUE(estimate.has_value());
  const double truth = G * src.at("s2") * dst.at("d3");
  EXPECT_NEAR(*estimate, truth, 0.15 * truth);
}

TEST(CrossSiteTest, NewObservationsRefreshTheFit) {
  CrossSiteEstimator estimator;
  estimator.observe("a", "b", 1e6);
  EXPECT_NEAR(*estimator.estimate("a", "b"), 1e6, 1.0);
  for (int i = 0; i < 99; ++i) estimator.observe("a", "b", 1e6);
  estimator.observe("a", "b", 2e6);
  // 100 obs at 1e6, one at 2e6: geometric mean shifts slightly up.
  EXPECT_GT(*estimator.estimate("a", "b"), 1e6);
  EXPECT_EQ(estimator.observations(), 101u);
}

TEST(CrossSiteTest, UnusableObservationsAreSkippedAndCounted) {
  // A failed transfer reaches the estimator with a zero rate (and a
  // corrupt log can deliver worse); these used to abort the process.
  // Now they are skipped and surface as a rejection counter.
  auto& rejected = obs::Registry::global().counter(
      "wadp_predict_rejected_observations_total",
      {{"reason", "nonpositive_bandwidth"}});
  const auto before = rejected.value();

  CrossSiteEstimator estimator;
  estimator.observe("lbl", "anl", 5e6);  // one good observation

  // An ok=false record: the attempt moved nothing, bandwidth() is 0.
  gridftp::TransferRecord failed;
  failed.host = "dpsslx04.lbl.gov";
  failed.file_size = 0;
  failed.start_time = 10.0;
  failed.end_time = 12.0;
  failed.ok = false;
  estimator.observe("lbl", "anl", failed.bandwidth());

  estimator.observe("lbl", "anl", 0.0);
  estimator.observe("lbl", "anl", -3e6);
  estimator.observe("lbl", "anl", std::numeric_limits<double>::quiet_NaN());
  estimator.observe("lbl", "anl", std::numeric_limits<double>::infinity());

  EXPECT_EQ(estimator.observations(), 1u);
  EXPECT_EQ(rejected.value(), before + 5);
  // The surviving observation still answers.
  const auto estimate = estimator.estimate("lbl", "anl");
  ASSERT_TRUE(estimate.has_value());
  EXPECT_NEAR(*estimate, 5e6, 1.0);
}

}  // namespace
}  // namespace wadp::predict
