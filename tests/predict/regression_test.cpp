// Regression & hybrid predictor battery tests.
//
// The load-bearing property is the identity contract: the streaming
// engine's answers are EXPECT_DOUBLE_EQ-identical to the stateless
// batch fit at every prefix (mirroring StreamingAr vs util::ar1_fit).
// The rest pins the arithmetic (exact model recovery), the degenerate
// fallbacks (constant regressors, collinear columns), and the input
// hygiene (NaN/inf/zero regressors skipped, disk-field-free logs
// answer nullopt so the univariate battery's behavior is untouched).
#include "predict/regression.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "predict/extended.hpp"
#include "predict/incremental.hpp"

namespace wadp::predict {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

Observation obs(SimTime t, Bandwidth bw, Bandwidth disk, Bandwidth probe,
                Bytes size = 10 * kMB) {
  Observation o;
  o.time = t;
  o.value = bw;
  o.file_size = size;
  o.disk = disk;
  o.probe = probe;
  return o;
}

/// A deterministic wiggly series where bandwidth genuinely depends on
/// both regressors (plus a nonlinearity so no model fits exactly).
std::vector<Observation> noisy_series(std::size_t n) {
  std::vector<Observation> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * 60.0;
    const double disk = 40e6 + 15e6 * std::sin(0.37 * static_cast<double>(i));
    const double probe = 6e6 + 2e6 * std::cos(0.23 * static_cast<double>(i));
    const double bw = 0.05 * disk + 0.6 * probe +
                      1e-9 * disk * probe * 0.1 +
                      4e5 * std::sin(1.1 * static_cast<double>(i));
    out.push_back(obs(t, bw, disk, probe));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Exact model recovery

TEST(RegressionCoreTest, DiskModelRecoversExactLine) {
  // bw = 2e6 + 0.125*disk, noiselessly: the fit must nowcast the last
  // point exactly.
  RegressionPredictor predictor("DREG", RegressionModel::kDisk);
  std::vector<Observation> history;
  for (int i = 0; i < 8; ++i) {
    const double disk = 10e6 + 3e6 * i;
    history.push_back(obs(60.0 * i, 2e6 + 0.125 * disk, disk, 0.0));
  }
  const auto answer =
      predictor.predict(history, Query{.time = 500.0, .file_size = 10 * kMB});
  ASSERT_TRUE(answer.has_value());
  EXPECT_NEAR(*answer, 2e6 + 0.125 * (10e6 + 3e6 * 7), 1e-3);
}

TEST(RegressionCoreTest, ProbeDiskModelRecoversExactPlane) {
  // bw = 1e6 + 0.4*probe + 0.06*disk with independent regressors.
  RegressionPredictor predictor("MREG", RegressionModel::kProbeDisk);
  std::vector<Observation> history;
  for (int i = 0; i < 10; ++i) {
    const double disk = 20e6 + 5e6 * (i % 4);
    const double probe = 4e6 + 1e6 * (i % 3);
    history.push_back(
        obs(60.0 * i, 1e6 + 0.4 * probe + 0.06 * disk, disk, probe));
  }
  const auto answer =
      predictor.predict(history, Query{.time = 700.0, .file_size = 10 * kMB});
  ASSERT_TRUE(answer.has_value());
  const double disk9 = 20e6 + 5e6 * (9 % 4);
  const double probe9 = 4e6 + 1e6 * (9 % 3);
  EXPECT_NEAR(*answer, 1e6 + 0.4 * probe9 + 0.06 * disk9, 1e-2);
}

TEST(RegressionCoreTest, DiskQuadModelRecoversExactParabola) {
  RegressionPredictor predictor("PREG", RegressionModel::kDiskQuad);
  std::vector<Observation> history;
  for (int i = 0; i < 9; ++i) {
    const double disk = 1e6 * (1 + i);
    const double bw = 5e5 + 0.3 * disk + 2e-8 * disk * disk;
    history.push_back(obs(60.0 * i, bw, disk, 0.0));
  }
  const auto answer =
      predictor.predict(history, Query{.time = 600.0, .file_size = 10 * kMB});
  ASSERT_TRUE(answer.has_value());
  const double disk8 = 1e6 * 9;
  EXPECT_NEAR(*answer, 5e5 + 0.3 * disk8 + 2e-8 * disk8 * disk8,
              std::abs(*answer) * 1e-9 + 1e-2);
}

TEST(RegressionCoreTest, HybridRatioIsMeanRatioTimesLatestProbe) {
  RegressionPredictor predictor("HYB", RegressionModel::kHybridRatio,
                                WindowSpec::all(), 3);
  std::vector<Observation> history = {
      obs(0.0, 4e6, 0.0, 8e6),    // ratio 0.5
      obs(60.0, 9e6, 0.0, 6e6),   // ratio 1.5
      obs(120.0, 5e6, 0.0, 5e6),  // ratio 1.0
  };
  const auto answer =
      predictor.predict(history, Query{.time = 200.0, .file_size = kMB});
  ASSERT_TRUE(answer.has_value());
  EXPECT_DOUBLE_EQ(*answer, (0.5 + 1.5 + 1.0) / 3.0 * 5e6);
}

// ---------------------------------------------------------------------------
// Streaming/batch identity: the PR's EXPECT_DOUBLE_EQ contract

TEST(StreamingRegressionTest, IdenticalToBatchAtEveryPrefix) {
  const auto series = noisy_series(120);
  const SizeClassifier classifier = SizeClassifier::paper_classes();
  const PredictorSuite suite = regression_suite(classifier);
  for (const char* name : {"DREG", "DREG25", "MREG", "MREG25", "PREG",
                           "PREG25", "HYB", "HYB25"}) {
    const Predictor* predictor = suite.find(name);
    ASSERT_NE(predictor, nullptr) << name;
    auto stream = make_streaming(*predictor);
    ASSERT_NE(stream, nullptr) << name;
    std::vector<Observation> history;
    for (const auto& o : series) {
      stream->observe(o);
      history.push_back(o);
      const Query query{.time = o.time + 30.0, .file_size = 10 * kMB};
      const auto batch = predictor->predict(history, query);
      const auto streamed = stream->predict(query);
      ASSERT_EQ(batch.has_value(), streamed.has_value())
          << name << " at n=" << history.size();
      if (batch) {
        EXPECT_DOUBLE_EQ(*batch, *streamed)
            << name << " at n=" << history.size();
      }
    }
  }
}

TEST(StreamingRegressionTest, IdentityHoldsThroughDegenerateStretches) {
  // Constant-disk prefix, then varying data, then a constant tail:
  // the streaming state must track the batch fit through every
  // fallback transition, not just on clean data.
  std::vector<Observation> series;
  for (int i = 0; i < 10; ++i) series.push_back(obs(60.0 * i, 5e6, 30e6, 7e6));
  for (int i = 10; i < 30; ++i) {
    series.push_back(
        obs(60.0 * i, 4e6 + 1e5 * i, 30e6 + 1e6 * (i % 5), 7e6 + 2e5 * (i % 3)));
  }
  for (int i = 30; i < 40; ++i) series.push_back(obs(60.0 * i, 6e6, 42e6, 8e6));

  for (const auto model :
       {RegressionModel::kDisk, RegressionModel::kProbeDisk,
        RegressionModel::kDiskQuad, RegressionModel::kHybridRatio}) {
    const RegressionPredictor predictor("R", model, WindowSpec::all(), 3);
    StreamingRegression stream("R", model, WindowSpec::all(), 3);
    std::vector<Observation> history;
    for (const auto& o : series) {
      stream.observe(o);
      history.push_back(o);
      const Query query{.time = o.time, .file_size = 10 * kMB};
      const auto batch = predictor.predict(history, query);
      const auto streamed = stream.predict(query);
      ASSERT_EQ(batch.has_value(), streamed.has_value());
      if (batch) {
        EXPECT_DOUBLE_EQ(*batch, *streamed);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Degenerate inputs

TEST(RegressionDegenerateTest, ConstantDiskFallsBackToWindowMean) {
  // sxx == 0 exactly (the shift makes every centered u zero): the fit
  // must degrade to the plain mean, deterministically.
  RegressionPredictor predictor("DREG", RegressionModel::kDisk);
  std::vector<Observation> history;
  double sum = 0.0;
  for (int i = 0; i < 6; ++i) {
    const double bw = 3e6 + 2e5 * i;
    sum += bw;
    history.push_back(obs(60.0 * i, bw, 25e6, 0.0));  // identical disk
  }
  const auto answer =
      predictor.predict(history, Query{.time = 400.0, .file_size = kMB});
  ASSERT_TRUE(answer.has_value());
  EXPECT_DOUBLE_EQ(*answer, sum / 6.0);
}

TEST(RegressionDegenerateTest, ConstantDiskVaryingProbeDropsDeadRegressor) {
  // MREG with a frozen disk column must fall back to the probe-only
  // fit — recovering an exact bw = a + b*probe relationship.
  RegressionPredictor predictor("MREG", RegressionModel::kProbeDisk);
  std::vector<Observation> history;
  for (int i = 0; i < 8; ++i) {
    const double probe = 2e6 + 5e5 * i;
    history.push_back(obs(60.0 * i, 1e6 + 0.8 * probe, 30e6, probe));
  }
  const auto answer =
      predictor.predict(history, Query{.time = 500.0, .file_size = kMB});
  ASSERT_TRUE(answer.has_value());
  EXPECT_NEAR(*answer, 1e6 + 0.8 * (2e6 + 5e5 * 7), 1e-3);
}

TEST(RegressionDegenerateTest, AllIdenticalSamplesYieldTheirValue) {
  for (const auto model :
       {RegressionModel::kDisk, RegressionModel::kProbeDisk,
        RegressionModel::kDiskQuad}) {
    const RegressionPredictor predictor("R", model, WindowSpec::all(), 3);
    const std::vector<Observation> history(6, obs(0.0, 4.5e6, 20e6, 5e6));
    const auto answer =
        predictor.predict(history, Query{.time = 100.0, .file_size = kMB});
    ASSERT_TRUE(answer.has_value());
    EXPECT_DOUBLE_EQ(*answer, 4.5e6);
  }
}

TEST(RegressionDegenerateTest, CollinearRegressorsStillAnswer) {
  // probe exactly proportional to disk: det == 0 but each single
  // regressor carries the full signal.
  RegressionPredictor predictor("MREG", RegressionModel::kProbeDisk);
  std::vector<Observation> history;
  for (int i = 0; i < 8; ++i) {
    const double disk = 10e6 + 4e6 * i;
    history.push_back(obs(60.0 * i, 0.1 * disk, disk, 0.2 * disk));
  }
  const auto answer =
      predictor.predict(history, Query{.time = 500.0, .file_size = kMB});
  ASSERT_TRUE(answer.has_value());
  EXPECT_NEAR(*answer, 0.1 * (10e6 + 4e6 * 7), 1.0);
}

TEST(RegressionDegenerateTest, NonFiniteAndNonPositiveRegressorsSkipped) {
  // Hostile samples (NaN/inf/zero/negative regressors, NaN bandwidth)
  // must neither poison the fit nor count toward the sample floor.
  RegressionPredictor predictor("DREG", RegressionModel::kDisk,
                                WindowSpec::all(), 5);
  std::vector<Observation> history;
  for (int i = 0; i < 5; ++i) {
    const double disk = 10e6 + 2e6 * i;
    history.push_back(obs(60.0 * i, 1e6 + 0.2 * disk, disk, 0.0));
  }
  history.push_back(obs(300.0, kNan, 12e6, 0.0));   // NaN bandwidth
  history.push_back(obs(360.0, 5e6, kNan, 0.0));    // NaN disk
  history.push_back(obs(420.0, 5e6, kInf, 0.0));    // inf disk
  history.push_back(obs(480.0, 5e6, 0.0, 0.0));     // absent disk
  history.push_back(obs(540.0, 5e6, -3e6, 0.0));    // corrupt disk
  history.push_back(obs(600.0, kInf, 14e6, 0.0));   // inf bandwidth

  const auto answer =
      predictor.predict(history, Query{.time = 700.0, .file_size = kMB});
  ASSERT_TRUE(answer.has_value());
  // Only the 5 clean samples fit; the nowcast is at the last *clean*
  // disk value, on the exact line.
  EXPECT_NEAR(*answer, 1e6 + 0.2 * (10e6 + 2e6 * 4), 1e-3);

  // Same hygiene on the hybrid's probe.
  RegressionPredictor hybrid("HYB", RegressionModel::kHybridRatio,
                             WindowSpec::all(), 3);
  std::vector<Observation> probes = {
      obs(0.0, 4e6, 0.0, 8e6),  obs(60.0, 4e6, 0.0, kNan),
      obs(120.0, 4e6, 0.0, 0.0), obs(180.0, 4e6, 0.0, -1.0),
  };
  EXPECT_FALSE(
      hybrid.predict(probes, Query{.time = 300.0, .file_size = kMB})
          .has_value());  // one qualifying sample < floor of 3
}

TEST(RegressionDegenerateTest, DiskFreeHistoryAnswersNullopt) {
  // A pre-instrumentation log (every disk/probe 0) must leave the
  // whole regression battery silent — the bit-identical-old-battery
  // guarantee depends on these predictors not inventing answers.
  std::vector<Observation> history;
  for (int i = 0; i < 50; ++i) {
    history.push_back(obs(60.0 * i, 4e6 + 1e5 * (i % 7), 0.0, 0.0));
  }
  const PredictorSuite suite = regression_suite();
  const Query query{.time = 4000.0, .file_size = 10 * kMB};
  for (const char* name : {"DREG", "DREG25", "MREG", "MREG25", "PREG",
                           "PREG25", "HYB", "HYB25"}) {
    const Predictor* predictor = suite.find(name);
    ASSERT_NE(predictor, nullptr) << name;
    EXPECT_FALSE(predictor->predict(history, query).has_value()) << name;
    auto stream = make_streaming(*predictor);
    for (const auto& o : history) stream->observe(o);
    EXPECT_FALSE(stream->predict(query).has_value()) << name;
  }
}

TEST(RegressionDegenerateTest, MinSampleFloorEnforced) {
  RegressionPredictor predictor("DREG", RegressionModel::kDisk,
                                WindowSpec::all(), 5);
  std::vector<Observation> history;
  for (int i = 0; i < 4; ++i) {
    history.push_back(obs(60.0 * i, 5e6, 20e6 + 1e6 * i, 0.0));
  }
  EXPECT_FALSE(
      predictor.predict(history, Query{.time = 300.0, .file_size = kMB})
          .has_value());
  history.push_back(obs(240.0, 5e6, 26e6, 0.0));
  EXPECT_TRUE(
      predictor.predict(history, Query{.time = 300.0, .file_size = kMB})
          .has_value());
}

// ---------------------------------------------------------------------------
// Battery composition

TEST(RegressionSuiteTest, ContainsExtendedAndRegressionMembers) {
  const PredictorSuite suite = regression_suite();
  for (const char* name :
       {"AVG15/fs", "EWMA0.2", "SREG", "DREG", "DREG25", "MREG", "MREG25",
        "PREG", "PREG25", "HYB", "HYB25"}) {
    EXPECT_NE(suite.find(name), nullptr) << name;
  }
}

TEST(RegressionSuiteTest, LastNWindowSeesOnlyTheTail) {
  // DREG25 over 40 observations must fit only the last 25: give the
  // head a wild slope and the tail an exact one.
  RegressionPredictor predictor("DREG25", RegressionModel::kDisk,
                                WindowSpec::last_n(25), 5);
  std::vector<Observation> history;
  for (int i = 0; i < 15; ++i) {
    history.push_back(obs(60.0 * i, 50e6, 5e6 + 1e6 * i, 0.0));  // head
  }
  for (int i = 15; i < 40; ++i) {
    const double disk = 10e6 + 2e6 * (i - 15);
    history.push_back(obs(60.0 * i, 2e6 + 0.25 * disk, disk, 0.0));  // tail
  }
  const auto answer =
      predictor.predict(history, Query{.time = 3000.0, .file_size = kMB});
  ASSERT_TRUE(answer.has_value());
  EXPECT_NEAR(*answer, 2e6 + 0.25 * (10e6 + 2e6 * 24), 1e-2);
}

// ---------------------------------------------------------------------------
// SizeRegressionPredictor input hygiene (satellite)

TEST(SizeRegressionTest, ZeroSizedObservationsAreFiltered) {
  // log10(0) is -inf; zero-sized records (failed attempts) must be
  // dropped before the fit, and the floor applies to what's left.
  SizeRegressionPredictor predictor("SREG", WindowSpec::all(), 5);
  std::vector<Observation> history;
  for (int i = 0; i < 5; ++i) {
    Observation o;
    o.time = 60.0 * i;
    o.file_size = 0;  // failed attempt
    o.value = 1e3;
    history.push_back(o);
  }
  // Only 5 zero-sized: floor unmet after filtering.
  EXPECT_FALSE(
      predictor.predict(history, Query{.time = 400.0, .file_size = 10 * kMB})
          .has_value());

  // Add 5 clean samples on an exact log10(size) line.
  for (int i = 0; i < 5; ++i) {
    Observation o;
    o.time = 300.0 + 60.0 * i;
    o.file_size = static_cast<Bytes>(1) << (20 + 2 * i);
    o.value = 1e6 + 5e5 * std::log10(static_cast<double>(o.file_size));
    history.push_back(o);
  }
  const auto answer = predictor.predict(
      history, Query{.time = 700.0, .file_size = 1 << 24});
  ASSERT_TRUE(answer.has_value());
  const double expected =
      1e6 + 5e5 * std::log10(static_cast<double>(1 << 24));
  EXPECT_NEAR(*answer, expected, std::abs(expected) * 1e-9);
}

}  // namespace
}  // namespace wadp::predict
