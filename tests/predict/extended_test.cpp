#include "predict/extended.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wadp::predict {
namespace {

std::vector<Observation> make_series(std::initializer_list<double> values,
                                     Bytes size = kMB) {
  std::vector<Observation> out;
  double t = 1000.0;
  for (double v : values) {
    out.push_back({.time = t, .value = v, .file_size = size});
    t += 100.0;
  }
  return out;
}

Query query_at(double t, Bytes size = kMB) {
  return {.time = t, .file_size = size};
}

TEST(EwmaPredictorTest, AlphaOneIsLastValue) {
  EwmaPredictor p("EWMA1", 1.0);
  const auto series = make_series({2.0, 4.0, 9.0});
  EXPECT_DOUBLE_EQ(*p.predict(series, query_at(2000.0)), 9.0);
}

TEST(EwmaPredictorTest, KnownRecurrence) {
  // s = ((2*0.5 + 0.5*2) ... explicit: s0=2, s1=.5*4+.5*2=3, s2=.5*8+.5*3=5.5
  EwmaPredictor p("EWMA0.5", 0.5);
  const auto series = make_series({2.0, 4.0, 8.0});
  EXPECT_DOUBLE_EQ(*p.predict(series, query_at(2000.0)), 5.5);
}

TEST(EwmaPredictorTest, ConstantSeriesIsExact) {
  EwmaPredictor p("EWMA0.2", 0.2);
  const auto series = make_series({5.0, 5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(*p.predict(series, query_at(2000.0)), 5.0);
}

TEST(EwmaPredictorTest, EmptyHistoryIsNullopt) {
  EwmaPredictor p("EWMA0.2", 0.2);
  EXPECT_FALSE(p.predict({}, query_at(0.0)).has_value());
}

TEST(EwmaPredictorTest, WeightsRecentMoreThanMean) {
  // After a level shift the EWMA sits closer to the new level than the
  // all-history mean does.
  EwmaPredictor ewma("EWMA0.5", 0.5);
  MeanPredictor avg("AVG", WindowSpec::all());
  std::vector<double> values(20, 2.0);
  values.insert(values.end(), 5, 10.0);
  std::vector<Observation> series;
  double t = 0.0;
  for (double v : values) {
    series.push_back({.time = t, .value = v, .file_size = kMB});
    t += 100.0;
  }
  EXPECT_GT(*ewma.predict(series, query_at(t)),
            *avg.predict(series, query_at(t)));
}

TEST(EwmaPredictorDeathTest, InvalidAlphaAborts) {
  EXPECT_DEATH(EwmaPredictor("E", 0.0), "alpha");
  EXPECT_DEATH(EwmaPredictor("E", 1.5), "alpha");
}

TEST(SizeRegressionPredictorTest, LearnsLogSizeLine) {
  // bandwidth = 1e6 * log10(size/1MB) + 2e6 exactly.
  std::vector<Observation> series;
  double t = 0.0;
  for (const Bytes size : {1 * kMB, 10 * kMB, 100 * kMB, 1000 * kMB,
                           10 * kMB, 100 * kMB}) {
    const double bw =
        1e6 * std::log10(static_cast<double>(size) / 1e6) + 2e6;
    series.push_back({.time = t, .value = bw, .file_size = size});
    t += 100.0;
  }
  SizeRegressionPredictor p("SREG");
  // Interpolation at an unseen size inside the range.
  const auto mid = p.predict(series, query_at(t, 50 * kMB));
  ASSERT_TRUE(mid.has_value());
  EXPECT_NEAR(*mid, 1e6 * std::log10(50.0) + 2e6, 1e3);
}

TEST(SizeRegressionPredictorTest, PredictsUnseenClass) {
  // Only small files in history, query for 1 GB: classification would
  // return nullopt; regression extrapolates.
  std::vector<Observation> series;
  double t = 0.0;
  for (const Bytes size : {1 * kMB, 2 * kMB, 5 * kMB, 10 * kMB, 25 * kMB}) {
    const double bw = 1e6 + 0.5e6 * std::log10(static_cast<double>(size) / 1e6);
    series.push_back({.time = t, .value = bw, .file_size = size});
    t += 100.0;
  }
  SizeRegressionPredictor reg("SREG");
  auto base = std::make_shared<MeanPredictor>("AVG", WindowSpec::all());
  ClassifiedPredictor classified(base, SizeClassifier::paper_classes());
  EXPECT_FALSE(
      classified.predict(series, query_at(t, 1000 * kMB)).has_value());
  const auto extrapolated = reg.predict(series, query_at(t, 1000 * kMB));
  ASSERT_TRUE(extrapolated.has_value());
  EXPECT_NEAR(*extrapolated, 1e6 + 0.5e6 * 3.0, 1e4);
}

TEST(SizeRegressionPredictorTest, ConstantSizesFallBackToMean) {
  SizeRegressionPredictor p("SREG");
  const auto series = make_series({2.0, 4.0, 6.0, 8.0, 10.0}, 10 * kMB);
  EXPECT_DOUBLE_EQ(*p.predict(series, query_at(2000.0, 10 * kMB)), 6.0);
}

TEST(SizeRegressionPredictorTest, NeedsMinimumSamples) {
  SizeRegressionPredictor p("SREG", WindowSpec::all(), 5);
  const auto series = make_series({1.0, 2.0, 3.0, 4.0});
  EXPECT_FALSE(p.predict(series, query_at(2000.0)).has_value());
}

TEST(SizeRegressionPredictorTest, NeverNegative) {
  // Steeply decreasing line extrapolated far out stays clamped at 0.
  std::vector<Observation> series;
  double t = 0.0;
  for (const Bytes size : {1 * kMB, 10 * kMB, 100 * kMB}) {
    for (int rep = 0; rep < 3; ++rep) {
      const double bw =
          5e6 - 2.4e6 * std::log10(static_cast<double>(size) / 1e6);
      series.push_back({.time = t, .value = bw, .file_size = size});
      t += 100.0;
    }
  }
  SizeRegressionPredictor p("SREG");
  const auto far = p.predict(series, query_at(t, 1000 * kGB));
  ASSERT_TRUE(far.has_value());
  EXPECT_GE(*far, 0.0);
}

TEST(AdaptiveWindowPredictorTest, PicksShortWindowAfterLevelShift) {
  // 30 samples at 2.0 then 15 at 8.0: a short window predicts the tail
  // far better than a long one.
  std::vector<Observation> series;
  double t = 0.0;
  for (int i = 0; i < 30; ++i) {
    series.push_back({.time = t, .value = 2.0, .file_size = kMB});
    t += 100.0;
  }
  for (int i = 0; i < 15; ++i) {
    series.push_back({.time = t, .value = 8.0, .file_size = kMB});
    t += 100.0;
  }
  AdaptiveWindowPredictor p("ADAPT", {1, 5, 40});
  const auto window = p.chosen_window(series);
  ASSERT_TRUE(window.has_value());
  EXPECT_LE(*window, 5u);
  EXPECT_NEAR(*p.predict(series, query_at(t)), 8.0, 1e-9);
}

TEST(AdaptiveWindowPredictorTest, PicksLongWindowOnNoisyStationarySeries) {
  // Alternating 4/6 around a stable mean of 5: wider windows average
  // the noise out, last-value is maximally wrong.
  std::vector<Observation> series;
  double t = 0.0;
  for (int i = 0; i < 60; ++i) {
    series.push_back({.time = t, .value = i % 2 ? 6.0 : 4.0,
                      .file_size = kMB});
    t += 100.0;
  }
  AdaptiveWindowPredictor p("ADAPT", {1, 2, 20});
  const auto window = p.chosen_window(series);
  ASSERT_TRUE(window.has_value());
  // Any even window averages the alternation out exactly; last-value is
  // always maximally wrong and must lose.
  EXPECT_GT(*window, 1u);
  EXPECT_NEAR(*p.predict(series, query_at(6000.0)), 5.0, 1e-9);
}

TEST(AdaptiveWindowPredictorTest, TinyHistoryStillAnswers) {
  AdaptiveWindowPredictor p("ADAPT");
  const auto series = make_series({3.0});
  EXPECT_TRUE(p.predict(series, query_at(2000.0)).has_value());
  EXPECT_FALSE(p.predict({}, query_at(0.0)).has_value());
}

TEST(ExtendedSuiteTest, ContainsPaperAndExtensions) {
  const auto suite = extended_suite();
  EXPECT_GE(suite.size(), 38u);  // 30 paper + >= 8 extensions
  EXPECT_NE(suite.find("AVG15"), nullptr);
  EXPECT_NE(suite.find("EWMA0.2"), nullptr);
  EXPECT_NE(suite.find("EWMA0.2/fs"), nullptr);
  EXPECT_NE(suite.find("SREG"), nullptr);
  EXPECT_NE(suite.find("ADAPT"), nullptr);
  EXPECT_NE(suite.find("ADAPT/fs"), nullptr);
}

}  // namespace
}  // namespace wadp::predict
