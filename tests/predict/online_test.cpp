#include "predict/online.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "predict/suite.hpp"

namespace wadp::predict {
namespace {

Observation obs(double t, double value, Bytes size = kMB) {
  return {.time = t, .value = value, .file_size = size};
}

TEST(HistoryPredictorTest, AccumulatesAndDelegates) {
  HistoryPredictor hp(std::make_shared<MeanPredictor>("AVG", WindowSpec::all()));
  EXPECT_FALSE(hp.predict({.time = 0.0, .file_size = kMB}).has_value());
  hp.observe(obs(1.0, 2.0));
  hp.observe(obs(2.0, 4.0));
  EXPECT_DOUBLE_EQ(*hp.predict({.time = 3.0, .file_size = kMB}), 3.0);
  EXPECT_EQ(hp.name(), "AVG");
  EXPECT_EQ(hp.history().size(), 2u);
}

TEST(HistoryPredictorTest, RejectsOutOfOrderObservations) {
  HistoryPredictor hp(std::make_shared<LastValuePredictor>());
  hp.observe(obs(10.0, 1.0));
  EXPECT_DEATH(hp.observe(obs(5.0, 1.0)), "time order");
}

TEST(DynamicSelectorTest, PicksTheAccuratePredictor) {
  // Series alternates 2, 8, 2, 8 ... LV is always maximally wrong;
  // the full-history median settles near 5.  MED beats LV, and the
  // selector must converge on it.
  std::vector<std::shared_ptr<const Predictor>> candidates = {
      std::make_shared<LastValuePredictor>(),
      std::make_shared<MedianPredictor>("MED", WindowSpec::all()),
  };
  DynamicSelector selector("DYN", candidates);
  for (int i = 0; i < 40; ++i) {
    selector.observe(obs(i * 10.0, i % 2 == 0 ? 2.0 : 8.0));
  }
  EXPECT_EQ(selector.current_choice(), "MED");
}

TEST(DynamicSelectorTest, PicksLastValueOnSmoothSeries) {
  // Slow drift: LV tracks it closely; the all-history mean lags.
  std::vector<std::shared_ptr<const Predictor>> candidates = {
      std::make_shared<MeanPredictor>("AVG", WindowSpec::all()),
      std::make_shared<LastValuePredictor>(),
  };
  DynamicSelector selector("DYN", candidates);
  for (int i = 0; i < 60; ++i) {
    selector.observe(obs(i * 10.0, 100.0 + 5.0 * i));
  }
  EXPECT_EQ(selector.current_choice(), "LV");
}

TEST(DynamicSelectorTest, DefaultsToFirstCandidateWithoutHistory) {
  std::vector<std::shared_ptr<const Predictor>> candidates = {
      std::make_shared<MeanPredictor>("AVG", WindowSpec::all()),
      std::make_shared<LastValuePredictor>(),
  };
  DynamicSelector selector("DYN", candidates);
  EXPECT_EQ(selector.current_choice(), "AVG");
  EXPECT_FALSE(selector.predict({.time = 0.0, .file_size = kMB}).has_value());
}

TEST(DynamicSelectorTest, PredictsWithChosenCandidate) {
  std::vector<std::shared_ptr<const Predictor>> candidates = {
      std::make_shared<LastValuePredictor>(),
  };
  DynamicSelector selector("DYN", candidates);
  selector.observe(obs(1.0, 3.0));
  selector.observe(obs(2.0, 7.0));
  EXPECT_DOUBLE_EQ(*selector.predict({.time = 3.0, .file_size = kMB}), 7.0);
}

TEST(DynamicSelectorTest, ScoresExposeTrackRecord) {
  std::vector<std::shared_ptr<const Predictor>> candidates = {
      std::make_shared<LastValuePredictor>(),
      std::make_shared<MeanPredictor>("AVG", WindowSpec::all()),
  };
  DynamicSelector selector("DYN", candidates);
  for (int i = 0; i < 10; ++i) selector.observe(obs(i * 10.0, 5.0));
  const auto scores = selector.scores();
  ASSERT_EQ(scores.size(), 2u);
  // Constant series: both are exact once they have history.
  EXPECT_DOUBLE_EQ(scores[0].second, 0.0);
  EXPECT_DOUBLE_EQ(scores[1].second, 0.0);
}

TEST(DynamicSelectorTest, SelectorOverPaperBatteryRuns) {
  const auto battery = PredictorSuite::context_insensitive();
  DynamicSelector selector("DYN", battery.predictors());
  for (int i = 0; i < 50; ++i) {
    selector.observe(obs(i * 100.0, 5e6 + (i % 7) * 1e5, 100 * kMB));
  }
  const auto prediction =
      selector.predict({.time = 5000.0, .file_size = 100 * kMB});
  ASSERT_TRUE(prediction.has_value());
  EXPECT_GT(*prediction, 4e6);
  EXPECT_LT(*prediction, 7e6);
}

}  // namespace
}  // namespace wadp::predict
