#include "predict/evaluator.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "predict/suite.hpp"
#include "util/rng.hpp"

namespace wadp::predict {
namespace {

std::vector<Observation> constant_series(std::size_t n, double value,
                                         Bytes size = kMB) {
  std::vector<Observation> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({.time = static_cast<double>(i) * 100.0,
                   .value = value,
                   .file_size = size});
  }
  return out;
}

TEST(ErrorStatsTest, Accumulates) {
  ErrorStats s;
  s.add(10.0);
  s.add(30.0);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 20.0);
  EXPECT_DOUBLE_EQ(s.min(), 10.0);
  EXPECT_DOUBLE_EQ(s.max(), 30.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 10.0);
}

TEST(ErrorStatsTest, EmptyMeanIsZero) {
  ErrorStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RelativeStatsTest, Percentages) {
  RelativeStats r{.best = 3, .worst = 1, .opportunities = 10};
  EXPECT_DOUBLE_EQ(r.best_pct(), 30.0);
  EXPECT_DOUBLE_EQ(r.worst_pct(), 10.0);
  EXPECT_DOUBLE_EQ(RelativeStats{}.best_pct(), 0.0);
}

TEST(EvaluatorTest, PerfectPredictorOnConstantSeries) {
  const auto series = constant_series(30, 5.0);
  MeanPredictor avg("AVG", WindowSpec::all());
  const Evaluator evaluator;
  const auto result = evaluator.run(series, {&avg});
  EXPECT_EQ(result.evaluated_transfers(), 15u);  // 30 - 15 training
  EXPECT_DOUBLE_EQ(result.errors(0).mean(), 0.0);
}

TEST(EvaluatorTest, TrainingPrefixExcluded) {
  const auto series = constant_series(20, 5.0);
  MeanPredictor avg("AVG", WindowSpec::all());
  EvalConfig config;
  config.training_count = 10;
  const auto result = Evaluator(config).run(series, {&avg});
  EXPECT_EQ(result.evaluated_transfers(), 10u);
}

TEST(EvaluatorTest, SeriesShorterThanTrainingEvaluatesNothing) {
  const auto series = constant_series(10, 5.0);
  MeanPredictor avg("AVG", WindowSpec::all());
  const auto result = Evaluator().run(series, {&avg});
  EXPECT_EQ(result.evaluated_transfers(), 0u);
  EXPECT_EQ(result.errors(0).count(), 0u);
}

TEST(EvaluatorTest, KnownErrorValue) {
  // History all 4.0, each new observation 5.0: AVG predicts 4.0 at the
  // first evaluated point -> |5-4|/5 = 20%.
  auto series = constant_series(15, 4.0);
  series.push_back({.time = 1600.0, .value = 5.0, .file_size = kMB});
  MeanPredictor avg("AVG", WindowSpec::all());
  const auto result = Evaluator().run(series, {&avg});
  ASSERT_EQ(result.errors(0).count(), 1u);
  EXPECT_DOUBLE_EQ(result.errors(0).mean(), 20.0);
}

TEST(EvaluatorTest, PerClassAggregation) {
  // Small-class measurements at 2.0, large-class at 8.0, alternating.
  std::vector<Observation> series;
  for (int i = 0; i < 40; ++i) {
    const bool small = i % 2 == 0;
    series.push_back({.time = i * 100.0,
                      .value = small ? 2.0 : 8.0,
                      .file_size = small ? 10 * kMB : 900 * kMB});
  }
  auto base = std::make_shared<MeanPredictor>("AVG", WindowSpec::all());
  const ClassifiedPredictor classified(base, SizeClassifier::paper_classes());
  const auto result = Evaluator().run(series, {&classified});
  // Classified predictor is exact in both classes.
  EXPECT_DOUBLE_EQ(result.errors(0, 0).mean(), 0.0);
  EXPECT_DOUBLE_EQ(result.errors(0, 3).mean(), 0.0);
  EXPECT_GT(result.errors(0, 0).count(), 0u);
  EXPECT_GT(result.errors(0, 3).count(), 0u);
  EXPECT_EQ(result.errors(0, 1).count(), 0u);  // no 100MB-class transfers
  // Class counts add up.
  EXPECT_EQ(result.evaluated_transfers(0) + result.evaluated_transfers(3),
            result.evaluated_transfers());
}

TEST(EvaluatorTest, BestWorstCredit) {
  // Two predictors: LV is exact on a two-valued alternating series from
  // one step ago?  Use a simpler construction: series rises linearly,
  // LV lags by one step, AVG lags more -> LV always best, AVG always worst.
  std::vector<Observation> series;
  for (int i = 0; i < 30; ++i) {
    series.push_back(
        {.time = i * 100.0, .value = 10.0 + i, .file_size = kMB});
  }
  LastValuePredictor lv;
  MeanPredictor avg("AVG", WindowSpec::all());
  const auto result = Evaluator().run(series, {&lv, &avg});
  EXPECT_DOUBLE_EQ(result.relative(0).best_pct(), 100.0);
  EXPECT_DOUBLE_EQ(result.relative(0).worst_pct(), 0.0);
  EXPECT_DOUBLE_EQ(result.relative(1).best_pct(), 0.0);
  EXPECT_DOUBLE_EQ(result.relative(1).worst_pct(), 100.0);
}

TEST(EvaluatorTest, TiesShareCredit) {
  const auto series = constant_series(20, 5.0);
  MeanPredictor a("A", WindowSpec::all());
  MeanPredictor b("B", WindowSpec::all());
  const auto result = Evaluator().run(series, {&a, &b});
  // Identical predictors: both are simultaneously best and worst.
  EXPECT_DOUBLE_EQ(result.relative(0).best_pct(), 100.0);
  EXPECT_DOUBLE_EQ(result.relative(1).best_pct(), 100.0);
  EXPECT_DOUBLE_EQ(result.relative(0).worst_pct(), 100.0);
}

TEST(EvaluatorTest, PredictorWithNoAnswerGetsNoOpportunities) {
  const auto series = constant_series(20, 5.0, 10 * kMB);
  // Classified predictor queried for a class with no history never
  // answers -> zero opportunities, while AVG answers everything.
  auto base = std::make_shared<MeanPredictor>("AVG", WindowSpec::all());
  const ClassifiedPredictor classified(base, SizeClassifier::paper_classes());
  MeanPredictor avg("AVGx", WindowSpec::all());
  // Query sizes are the series sizes (10 MB), so classified *does*
  // answer here; construct the no-answer case with an AR needing more
  // data than exists.
  ArPredictor ar("AR", WindowSpec::last_duration(1.0));  // empty window
  const auto result = Evaluator().run(series, {&avg, &ar});
  EXPECT_EQ(result.relative(1).opportunities, 0u);
  EXPECT_EQ(result.errors(1).count(), 0u);
  EXPECT_GT(result.relative(0).opportunities, 0u);
  (void)classified;
}

TEST(EvaluatorTest, SamplesRecordPredictionMatrix) {
  const auto series = constant_series(18, 5.0);
  MeanPredictor avg("AVG", WindowSpec::all());
  LastValuePredictor lv;
  EvalConfig config;
  config.keep_samples = true;
  const auto result = Evaluator(config).run(series, {&avg, &lv});
  ASSERT_EQ(result.samples().size(), 3u);
  const auto& sample = result.samples().front();
  EXPECT_DOUBLE_EQ(sample.measured, 5.0);
  ASSERT_EQ(sample.predictions.size(), 2u);
  EXPECT_DOUBLE_EQ(*sample.predictions[0], 5.0);
  EXPECT_DOUBLE_EQ(*sample.predictions[1], 5.0);
}

TEST(EvaluatorTest, KeepSamplesOffLeavesEmpty) {
  const auto series = constant_series(18, 5.0);
  MeanPredictor avg("AVG", WindowSpec::all());
  EvalConfig config;
  config.keep_samples = false;
  const auto result = Evaluator(config).run(series, {&avg});
  EXPECT_TRUE(result.samples().empty());
  EXPECT_GT(result.errors(0).count(), 0u);  // aggregation still happens
}

TEST(EvaluatorTest, IndexOfFindsNames) {
  MeanPredictor avg("AVG", WindowSpec::all());
  LastValuePredictor lv;
  const auto result = Evaluator().run(constant_series(16, 1.0), {&avg, &lv});
  EXPECT_EQ(*result.index_of("AVG"), 0u);
  EXPECT_EQ(*result.index_of("LV"), 1u);
  EXPECT_FALSE(result.index_of("NOPE").has_value());
}

TEST(EvaluatorTest, FullPaperSuiteRunsOnSyntheticSeries) {
  util::Rng rng(99);
  std::vector<Observation> series;
  const std::vector<Bytes> sizes = {1 * kMB,  10 * kMB,  100 * kMB,
                                    500 * kMB, 1000 * kMB};
  double t = 0.0;
  for (int i = 0; i < 120; ++i) {
    const Bytes size = sizes[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(sizes.size()) - 1))];
    series.push_back({.time = t,
                      .value = rng.uniform(2e6, 9e6),
                      .file_size = size});
    t += rng.uniform(60.0, 3600.0);
  }
  const auto suite = PredictorSuite::paper_suite();
  const auto result = Evaluator().run(series, suite.pointers());
  EXPECT_EQ(result.predictor_names().size(), 30u);
  EXPECT_EQ(result.evaluated_transfers(), 105u);
  // Every context-insensitive predictor must answer everything after
  // training (the big windows are never empty).
  const auto avg_index = *result.index_of("AVG");
  EXPECT_EQ(result.relative(avg_index).opportunities, 105u);
}

}  // namespace
}  // namespace wadp::predict
