#include "predict/predictors.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace wadp::predict {
namespace {

std::vector<Observation> make_series(std::initializer_list<double> values,
                                     double dt = 100.0, Bytes size = kMB) {
  std::vector<Observation> out;
  double t = 1000.0;
  for (double v : values) {
    out.push_back({.time = t, .value = v, .file_size = size});
    t += dt;
  }
  return out;
}

Query query_at(double t, Bytes size = kMB) {
  return {.time = t, .file_size = size};
}

TEST(MeanPredictorTest, AveragesWholeHistory) {
  MeanPredictor p("AVG", WindowSpec::all());
  const auto series = make_series({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(*p.predict(series, query_at(2000.0)), 4.0);
}

TEST(MeanPredictorTest, EmptyHistoryIsNullopt) {
  MeanPredictor p("AVG", WindowSpec::all());
  EXPECT_FALSE(p.predict({}, query_at(0.0)).has_value());
}

TEST(MeanPredictorTest, SlidingWindowUsesRecentOnly) {
  MeanPredictor p("AVG2", WindowSpec::last_n(2));
  const auto series = make_series({100.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(*p.predict(series, query_at(2000.0)), 3.0);
}

TEST(MeanPredictorTest, TemporalWindowExcludesOldData) {
  MeanPredictor p("AVG5hr", WindowSpec::last_duration(150.0));
  const auto series = make_series({100.0, 2.0, 4.0});  // at 1000,1100,1200
  EXPECT_DOUBLE_EQ(*p.predict(series, query_at(1250.0)), 3.0);
}

TEST(MeanPredictorTest, TemporalWindowEmptyIsNullopt) {
  MeanPredictor p("AVG5hr", WindowSpec::last_duration(10.0));
  const auto series = make_series({1.0, 2.0});
  EXPECT_FALSE(p.predict(series, query_at(9999.0)).has_value());
}

TEST(MeanPredictorTest, ConstantSeriesPredictsConstant) {
  MeanPredictor p("AVG", WindowSpec::all());
  const auto series = make_series({5.0, 5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(*p.predict(series, query_at(9999.0)), 5.0);
}

TEST(MedianPredictorTest, RejectsOutliers) {
  MedianPredictor p("MED", WindowSpec::all());
  const auto series = make_series({5.0, 5.2, 4.8, 1000.0, 5.1});
  EXPECT_DOUBLE_EQ(*p.predict(series, query_at(9999.0)), 5.1);
}

TEST(MedianPredictorTest, EvenCountAveragesMiddle) {
  MedianPredictor p("MED", WindowSpec::all());
  const auto series = make_series({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(*p.predict(series, query_at(9999.0)), 2.5);
}

TEST(MedianPredictorTest, WindowApplies) {
  MedianPredictor p("MED5", WindowSpec::last_n(5));
  std::initializer_list<double> values = {100.0, 100.0, 100.0, 1.0, 2.0,
                                          3.0,   4.0,   5.0};
  const auto series = make_series(values);
  EXPECT_DOUBLE_EQ(*p.predict(series, query_at(9999.0)), 3.0);
}

TEST(LastValuePredictorTest, ReturnsNewest) {
  LastValuePredictor p;
  const auto series = make_series({1.0, 2.0, 7.0});
  EXPECT_DOUBLE_EQ(*p.predict(series, query_at(9999.0)), 7.0);
  EXPECT_FALSE(p.predict({}, query_at(0.0)).has_value());
  EXPECT_EQ(p.name(), "LV");
}

TEST(ArPredictorTest, LearnsLinearRecurrence) {
  // Y_t = 1 + 0.5 Y_{t-1}: from last value 2.0 -> predicts 2.0.
  std::vector<double> values = {10.0};
  for (int i = 0; i < 12; ++i) values.push_back(1.0 + 0.5 * values.back());
  std::vector<Observation> series;
  double t = 0.0;
  for (double v : values) {
    series.push_back({.time = t, .value = v, .file_size = kMB});
    t += 60.0;
  }
  ArPredictor p("AR", WindowSpec::all());
  const auto predicted = p.predict(series, query_at(t));
  ASSERT_TRUE(predicted.has_value());
  EXPECT_NEAR(*predicted, 1.0 + 0.5 * values.back(), 1e-9);
}

TEST(ArPredictorTest, ConstantSeriesPredictsConstant) {
  ArPredictor p("AR", WindowSpec::all());
  const auto series = make_series({5.0, 5.0, 5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(*p.predict(series, query_at(9999.0)), 5.0);
}

TEST(ArPredictorTest, NeedsMinimumSamples) {
  ArPredictor p("AR", WindowSpec::all());
  EXPECT_FALSE(p.predict(make_series({1.0, 2.0}), query_at(9999.0)).has_value());
  EXPECT_TRUE(
      p.predict(make_series({1.0, 2.0, 3.0}), query_at(9999.0)).has_value());
}

TEST(ArPredictorTest, CustomMinimumSamplesEnforced) {
  ArPredictor p("AR", WindowSpec::all(), 10);
  std::initializer_list<double> nine = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_FALSE(p.predict(make_series(nine), query_at(9999.0)).has_value());
}

TEST(ArPredictorTest, NegativeExtrapolationClampedToZero) {
  // Strongly decreasing series: raw extrapolation can go negative.
  ArPredictor p("AR", WindowSpec::all());
  const auto series = make_series({100.0, 50.0, 10.0, 1.0});
  const auto predicted = p.predict(series, query_at(9999.0));
  ASSERT_TRUE(predicted.has_value());
  EXPECT_GE(*predicted, 0.0);
}

TEST(ArPredictorTest, TemporalWindowLimitsFitData) {
  ArPredictor p("AR5d", WindowSpec::last_duration(250.0));
  // Series at t=1000..1400; cutoff 1450-250=1200 keeps the last three
  // (constant 2.0) points, so the fit collapses to 2.0.
  const auto series = make_series({9.0, 9.0, 2.0, 2.0, 2.0});  // dt=100
  const auto predicted = p.predict(series, query_at(1450.0));
  ASSERT_TRUE(predicted.has_value());
  EXPECT_NEAR(*predicted, 2.0, 1e-9);
}

TEST(ClassifiedPredictorTest, FiltersHistoryByQueryClass) {
  auto base = std::make_shared<MeanPredictor>("AVG", WindowSpec::all());
  ClassifiedPredictor p(base, SizeClassifier::paper_classes());
  std::vector<Observation> series = {
      {.time = 0, .value = 2.0, .file_size = 10 * kMB},     // class 0
      {.time = 1, .value = 8.0, .file_size = 1000 * kMB},   // class 3
      {.time = 2, .value = 4.0, .file_size = 25 * kMB},     // class 0
  };
  EXPECT_DOUBLE_EQ(*p.predict(series, query_at(10.0, 5 * kMB)), 3.0);
  EXPECT_DOUBLE_EQ(*p.predict(series, query_at(10.0, 900 * kMB)), 8.0);
}

TEST(ClassifiedPredictorTest, EmptyClassIsNullopt) {
  auto base = std::make_shared<MeanPredictor>("AVG", WindowSpec::all());
  ClassifiedPredictor p(base, SizeClassifier::paper_classes());
  std::vector<Observation> series = {
      {.time = 0, .value = 2.0, .file_size = 10 * kMB}};
  EXPECT_FALSE(p.predict(series, query_at(10.0, 500 * kMB)).has_value());
}

TEST(ClassifiedPredictorTest, NameGetsFsSuffix) {
  auto base = std::make_shared<MedianPredictor>("MED5", WindowSpec::last_n(5));
  ClassifiedPredictor p(base, SizeClassifier::paper_classes());
  EXPECT_EQ(p.name(), "MED5/fs");
  EXPECT_EQ(p.base().name(), "MED5");
}

TEST(ClassifiedPredictorTest, WindowAppliesAfterClassFilter) {
  // The window must select the last N *same-class* observations, not
  // the last N overall — that is the point of partitioning first.
  auto base = std::make_shared<MeanPredictor>("AVG2", WindowSpec::last_n(2));
  ClassifiedPredictor p(base, SizeClassifier::paper_classes());
  std::vector<Observation> series = {
      {.time = 0, .value = 2.0, .file_size = 10 * kMB},
      {.time = 1, .value = 4.0, .file_size = 10 * kMB},
      {.time = 2, .value = 999.0, .file_size = 900 * kMB},
      {.time = 3, .value = 999.0, .file_size = 900 * kMB},
  };
  EXPECT_DOUBLE_EQ(*p.predict(series, query_at(10.0, 20 * kMB)), 3.0);
}

}  // namespace
}  // namespace wadp::predict
