#include "predict/recommend.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace wadp::predict {
namespace {

std::vector<Observation> series_of(std::size_t n,
                                   double (*value_at)(std::size_t)) {
  std::vector<Observation> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({.time = static_cast<double>(i) * 100.0,
                   .value = value_at(i),
                   .file_size = 100 * kMB});
  }
  return out;
}

TEST(RecommendTest, TooShortSeriesIsNullopt) {
  const auto series =
      series_of(10, [](std::size_t) { return 5.0; });
  EXPECT_FALSE(
      recommend(series, PredictorSuite::context_insensitive()).has_value());
}

TEST(RecommendTest, RankingCoversAnsweringPredictors) {
  const auto series = series_of(60, [](std::size_t i) {
    return 5.0 + 0.5 * static_cast<double>(i % 4);
  });
  const auto suite = PredictorSuite::context_insensitive();
  const auto rec = recommend(series, suite);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->ranking.size(), suite.size());
  // Ascending order; winner first.
  for (std::size_t i = 1; i < rec->ranking.size(); ++i) {
    EXPECT_LE(rec->ranking[i - 1].second, rec->ranking[i].second);
  }
  EXPECT_EQ(rec->predictor, rec->ranking.front().first);
  EXPECT_DOUBLE_EQ(rec->mean_error, rec->ranking.front().second);
}

TEST(RecommendTest, PicksLastValueOnDriftingSeries) {
  // Strong monotone drift: LV dominates any long average.
  const auto series = series_of(80, [](std::size_t i) {
    return 1.0 + 0.5 * static_cast<double>(i);
  });
  const auto rec = recommend(series, PredictorSuite::context_insensitive());
  ASSERT_TRUE(rec.has_value());
  // LV or the tightest windows win; an all-history predictor ranks last
  // (on a linear drift AVG and MED predict identically, so either may
  // occupy the bottom slot).
  const auto& worst = rec->ranking.back().first;
  EXPECT_TRUE(worst == "AVG" || worst == "MED") << worst;
  const auto lv_rank =
      std::find_if(rec->ranking.begin(), rec->ranking.end(),
                   [](const auto& e) { return e.first == "LV"; });
  ASSERT_NE(lv_rank, rec->ranking.end());
  EXPECT_LT(lv_rank - rec->ranking.begin(), 4);
}

TEST(RecommendTest, RespectsTrainingConfig) {
  const auto series = series_of(30, [](std::size_t) { return 5.0; });
  EvalConfig config;
  config.training_count = 29;
  const auto rec =
      recommend(series, PredictorSuite::context_insensitive(), config);
  ASSERT_TRUE(rec.has_value());  // exactly one evaluated transfer
  EXPECT_DOUBLE_EQ(rec->mean_error, 0.0);
}

}  // namespace
}  // namespace wadp::predict
