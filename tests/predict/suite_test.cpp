#include "predict/suite.hpp"

#include <gtest/gtest.h>

#include <set>

namespace wadp::predict {
namespace {

TEST(SuiteTest, ContextInsensitiveHasFifteen) {
  const auto suite = PredictorSuite::context_insensitive();
  EXPECT_EQ(suite.size(), 15u);
}

TEST(SuiteTest, PaperSuiteHasThirty) {
  // Section 4.4: "a set of 30 predictors ... 15 predictors each over the
  // entire data set ... and the same 15 using previous data partitioned
  // by file size".
  const auto suite = PredictorSuite::paper_suite();
  EXPECT_EQ(suite.size(), 30u);
}

TEST(SuiteTest, AllFigure4NamesPresent) {
  const auto suite = PredictorSuite::paper_suite();
  for (const auto& name : PredictorSuite::figure4_names()) {
    EXPECT_NE(suite.find(name), nullptr) << name;
    EXPECT_NE(suite.find(name + "/fs"), nullptr) << name << "/fs";
  }
}

TEST(SuiteTest, Figure4NamesMatchFigureOrder) {
  const auto& names = PredictorSuite::figure4_names();
  ASSERT_EQ(names.size(), 15u);
  EXPECT_EQ(names.front(), "AVG");
  EXPECT_EQ(names[1], "LV");
  EXPECT_EQ(names.back(), "AR10d");
}

TEST(SuiteTest, NamesAreUnique) {
  const auto suite = PredictorSuite::paper_suite();
  std::set<std::string> names;
  for (const auto& p : suite.predictors()) names.insert(p->name());
  EXPECT_EQ(names.size(), suite.size());
}

TEST(SuiteTest, FindUnknownReturnsNull) {
  const auto suite = PredictorSuite::paper_suite();
  EXPECT_EQ(suite.find("BOGUS"), nullptr);
}

TEST(SuiteTest, PointersMatchSuiteOrder) {
  const auto suite = PredictorSuite::paper_suite();
  const auto ptrs = suite.pointers();
  ASSERT_EQ(ptrs.size(), suite.size());
  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    EXPECT_EQ(ptrs[i], suite.predictors()[i].get());
  }
}

TEST(SuiteTest, ContextSensitiveNamesCarrySuffix) {
  const auto suite = PredictorSuite::context_sensitive();
  EXPECT_EQ(suite.size(), 15u);
  for (const auto& p : suite.predictors()) {
    EXPECT_NE(p->name().find("/fs"), std::string::npos) << p->name();
  }
}

TEST(SuiteTest, CustomSuiteRejectsDuplicates) {
  PredictorSuite suite;
  suite.add(std::make_shared<LastValuePredictor>("LV"));
  EXPECT_DEATH(suite.add(std::make_shared<LastValuePredictor>("LV")),
               "duplicate predictor");
}

TEST(SuiteTest, WindowParametersMatchFigure4) {
  const auto suite = PredictorSuite::context_insensitive();
  const auto* avg5 = dynamic_cast<const MeanPredictor*>(suite.find("AVG5"));
  ASSERT_NE(avg5, nullptr);
  EXPECT_EQ(avg5->window(), WindowSpec::last_n(5));
  const auto* avg25hr =
      dynamic_cast<const MeanPredictor*>(suite.find("AVG25hr"));
  ASSERT_NE(avg25hr, nullptr);
  EXPECT_EQ(avg25hr->window(), WindowSpec::last_duration(25 * 3600.0));
  const auto* ar10d = dynamic_cast<const ArPredictor*>(suite.find("AR10d"));
  ASSERT_NE(ar10d, nullptr);
  EXPECT_EQ(ar10d->window(), WindowSpec::last_duration(10 * 86400.0));
  const auto* med15 = dynamic_cast<const MedianPredictor*>(suite.find("MED15"));
  ASSERT_NE(med15, nullptr);
  EXPECT_EQ(med15->window(), WindowSpec::last_n(15));
}

}  // namespace
}  // namespace wadp::predict
