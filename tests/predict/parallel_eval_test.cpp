// Parallel evaluation: the threaded prediction phase must be
// bit-identical to the serial run (the battery is pure; aggregation is
// serial in both paths).
#include <gtest/gtest.h>

#include "predict/evaluator.hpp"
#include "predict/extended.hpp"
#include "util/rng.hpp"

namespace wadp::predict {
namespace {

std::vector<Observation> random_series(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  const std::vector<Bytes> sizes = {1 * kMB,   10 * kMB,  100 * kMB,
                                    500 * kMB, 1000 * kMB};
  std::vector<Observation> out;
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({.time = t,
                   .value = rng.uniform(1e6, 1e7),
                   .file_size = sizes[static_cast<std::size_t>(
                       rng.uniform_int(0, 4))]});
    t += rng.uniform(60.0, 3600.0);
  }
  return out;
}

class ParallelEvalTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelEvalTest, BitIdenticalToSerial) {
  const auto series = random_series(3, 300);
  const auto suite = extended_suite();

  EvalConfig serial_config;
  serial_config.threads = 1;
  EvalConfig parallel_config;
  parallel_config.threads = GetParam();

  const auto serial = Evaluator(serial_config).run(series, suite.pointers());
  const auto parallel =
      Evaluator(parallel_config).run(series, suite.pointers());

  ASSERT_EQ(serial.predictor_names(), parallel.predictor_names());
  ASSERT_EQ(serial.evaluated_transfers(), parallel.evaluated_transfers());
  for (std::size_t p = 0; p < suite.size(); ++p) {
    for (int cls = EvaluationResult::kAllClasses; cls < 4; ++cls) {
      const auto& a = serial.errors(p, cls);
      const auto& b = parallel.errors(p, cls);
      EXPECT_EQ(a.count(), b.count());
      EXPECT_DOUBLE_EQ(a.sum(), b.sum());
      EXPECT_DOUBLE_EQ(a.min(), b.min());
      EXPECT_DOUBLE_EQ(a.max(), b.max());
      const auto& ra = serial.relative(p, cls);
      const auto& rb = parallel.relative(p, cls);
      EXPECT_EQ(ra.best, rb.best);
      EXPECT_EQ(ra.worst, rb.worst);
      EXPECT_EQ(ra.opportunities, rb.opportunities);
    }
  }
  // The sample matrix matches too.
  ASSERT_EQ(serial.samples().size(), parallel.samples().size());
  for (std::size_t i = 0; i < serial.samples().size(); ++i) {
    EXPECT_EQ(serial.samples()[i].predictions,
              parallel.samples()[i].predictions);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelEvalTest,
                         ::testing::Values(2u, 4u, 8u, 64u));

TEST(ParallelEvalTest, MoreThreadsThanPredictorsIsSafe) {
  const auto series = random_series(5, 60);
  MeanPredictor avg("AVG", WindowSpec::all());
  EvalConfig config;
  config.threads = 16;
  const auto result = Evaluator(config).run(series, {&avg});
  EXPECT_GT(result.errors(0).count(), 0u);
}

}  // namespace
}  // namespace wadp::predict
