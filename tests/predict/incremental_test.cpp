// Streaming/batch equivalence: every incremental state must answer
// exactly what its stateless counterpart computes over the accumulated
// history prefix — on every prefix, for all thirty paper predictors.
#include "predict/incremental.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "core/prediction_service.hpp"
#include "predict/evaluator.hpp"
#include "predict/online.hpp"
#include "predict/suite.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace wadp::predict {
namespace {

std::vector<Observation> irregular_series(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  const std::vector<Bytes> sizes = {1 * kMB,   10 * kMB,  100 * kMB,
                                    500 * kMB, 1000 * kMB};
  std::vector<Observation> out;
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({.time = t,
                   .value = rng.uniform(2e6, 9e6),
                   .file_size = sizes[static_cast<std::size_t>(
                       rng.uniform_int(0, 4))]});
    // Mix short gaps with multi-hour ones so the temporal windows
    // (5hr..25hr, 5d/10d) actually evict during the walk.
    t += rng.uniform(60.0, 4.0 * util::kSecondsPerHour);
  }
  return out;
}

std::vector<Observation> constant_series(std::size_t n, double value) {
  std::vector<Observation> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({.time = static_cast<double>(i) * 1800.0,
                   .value = value,
                   .file_size = (i % 2 == 0) ? 10 * kMB : 900 * kMB});
  }
  return out;
}

// Families whose streaming form is bit-identical to the batch path
// (running/re-summed means, dual-multiset medians, last value); the
// temporal means and AR fits are exact to a relative ~1e-12 instead.
bool bit_identical_family(const std::string& name) {
  return name.find("hr") == std::string::npos &&
         name.find("AR") == std::string::npos;
}

TEST(StreamingSuiteTest, MirrorsPaperSuiteNameForName) {
  const auto batch = PredictorSuite::paper_suite();
  const auto streaming = StreamingSuite::paper_suite();
  ASSERT_EQ(streaming.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_NE(streaming.predictor(i), nullptr) << i;
    EXPECT_EQ(streaming.predictor(i)->name(), batch.predictors()[i]->name());
    EXPECT_EQ(streaming.names()[i], batch.predictors()[i]->name());
  }
  EXPECT_NE(streaming.find("AVG15/fs"), nullptr);
  EXPECT_EQ(streaming.find("NOPE"), nullptr);
}

TEST(StreamingSuiteTest, FromAdaptsEveryPaperMember) {
  const auto batch = PredictorSuite::paper_suite();
  const auto streaming = StreamingSuite::from(batch);
  ASSERT_EQ(streaming.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_NE(streaming.predictor(i), nullptr)
        << batch.predictors()[i]->name();
  }
}

TEST(StreamingEquivalenceTest, EveryPrefixAllThirtyPredictors) {
  const auto series = irregular_series(7, 150);
  const auto suite = PredictorSuite::paper_suite();
  for (const auto& predictor : suite.predictors()) {
    auto state = make_streaming(*predictor);
    ASSERT_NE(state, nullptr) << predictor->name();
    for (std::size_t i = 0; i < series.size(); ++i) {
      const Query query{.time = series[i].time,
                        .file_size = series[i].file_size};
      const auto batch = predictor->predict(
          std::span<const Observation>(series).first(i), query);
      const auto streamed = state->predict(query);
      ASSERT_EQ(batch.has_value(), streamed.has_value())
          << predictor->name() << " at prefix " << i;
      if (batch) {
        if (bit_identical_family(predictor->name())) {
          EXPECT_DOUBLE_EQ(*batch, *streamed)
              << predictor->name() << " at prefix " << i;
        } else {
          EXPECT_NEAR(*batch, *streamed,
                      std::max(1e-9, 1e-9 * std::abs(*batch)))
              << predictor->name() << " at prefix " << i;
        }
      }
      state->observe(series[i]);
    }
  }
}

TEST(StreamingEquivalenceTest, ConstantSeriesIsExactForAllThirty) {
  const auto series = constant_series(60, 5.0);
  auto streaming = StreamingSuite::paper_suite();
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i >= 3) {
      const auto all = streaming.predict_all(
          Query{.time = series[i].time, .file_size = series[i].file_size});
      for (const auto& [name, value] : all) {
        if (value) {
          EXPECT_DOUBLE_EQ(*value, 5.0) << name;
        }
      }
    }
    streaming.observe(series[i]);
  }
}

TEST(StreamingEquivalenceTest, UnsupportedPredictorIsNotAdapted) {
  // A family make_streaming has no case for must yield nullptr, and a
  // classified wrapper around it must not be half-adapted either.
  class OpaquePredictor final : public Predictor {
   public:
    OpaquePredictor() : Predictor("OPAQUE") {}
    std::optional<Bandwidth> predict(std::span<const Observation>,
                                     const Query&) const override {
      return std::nullopt;
    }
  };
  const OpaquePredictor opaque;
  EXPECT_EQ(make_streaming(opaque), nullptr);
  const ClassifiedPredictor classified(std::make_shared<OpaquePredictor>(),
                                       SizeClassifier::paper_classes());
  EXPECT_EQ(make_streaming(classified), nullptr);
}

TEST(EvaluatorEngineTest, StreamingMatchesLegacyAggregates) {
  const auto series = irregular_series(11, 140);
  const auto suite = PredictorSuite::paper_suite();

  EvalConfig legacy_config;
  legacy_config.engine = EvalConfig::Engine::kLegacy;
  EvalConfig streaming_config;
  streaming_config.engine = EvalConfig::Engine::kStreaming;

  const auto legacy = Evaluator(legacy_config).run(series, suite.pointers());
  const auto streaming =
      Evaluator(streaming_config).run(series, suite.pointers());

  ASSERT_EQ(legacy.predictor_names(), streaming.predictor_names());
  ASSERT_EQ(legacy.evaluated_transfers(), streaming.evaluated_transfers());
  for (std::size_t p = 0; p < suite.size(); ++p) {
    for (int cls = EvaluationResult::kAllClasses; cls < 4; ++cls) {
      const auto& a = legacy.errors(p, cls);
      const auto& b = streaming.errors(p, cls);
      ASSERT_EQ(a.count(), b.count()) << p << "/" << cls;
      EXPECT_NEAR(a.sum(), b.sum(), 1e-6);
      EXPECT_NEAR(a.min(), b.min(), 1e-9);
      EXPECT_NEAR(a.max(), b.max(), 1e-9);
      EXPECT_NEAR(a.stddev(), b.stddev(), 1e-6);
      const auto& ra = legacy.relative(p, cls);
      const auto& rb = streaming.relative(p, cls);
      EXPECT_EQ(ra.opportunities, rb.opportunities) << p << "/" << cls;
      EXPECT_EQ(ra.best, rb.best) << p << "/" << cls;
      EXPECT_EQ(ra.worst, rb.worst) << p << "/" << cls;
    }
  }
}

TEST(EvaluatorEngineTest, StreamingThreadedMatchesSinglePass) {
  const auto series = irregular_series(13, 120);
  const auto suite = PredictorSuite::paper_suite();

  EvalConfig serial_config;
  serial_config.threads = 1;
  serial_config.keep_samples = true;
  EvalConfig threaded_config;
  threaded_config.threads = 4;
  threaded_config.keep_samples = true;

  const auto serial = Evaluator(serial_config).run(series, suite.pointers());
  const auto threaded =
      Evaluator(threaded_config).run(series, suite.pointers());

  // Identical streaming replays -> bit-identical everything.
  ASSERT_EQ(serial.samples().size(), threaded.samples().size());
  for (std::size_t i = 0; i < serial.samples().size(); ++i) {
    EXPECT_EQ(serial.samples()[i].predictions,
              threaded.samples()[i].predictions);
  }
  for (std::size_t p = 0; p < suite.size(); ++p) {
    EXPECT_EQ(serial.errors(p).count(), threaded.errors(p).count());
    EXPECT_DOUBLE_EQ(serial.errors(p).sum(), threaded.errors(p).sum());
  }
}

TEST(OnlineStreamingTest, HistoryPredictorMatchesStatelessReplay) {
  const auto series = irregular_series(17, 80);
  const auto suite = PredictorSuite::paper_suite();
  for (const auto& base : suite.predictors()) {
    HistoryPredictor online(base);
    for (std::size_t i = 0; i < series.size(); ++i) {
      const Query query{.time = series[i].time,
                        .file_size = series[i].file_size};
      const auto batch = base->predict(
          std::span<const Observation>(series).first(i), query);
      const auto streamed = online.predict(query);
      ASSERT_EQ(batch.has_value(), streamed.has_value()) << base->name();
      if (batch) {
        EXPECT_NEAR(*batch, *streamed, std::max(1e-9, 1e-9 * std::abs(*batch)))
            << base->name();
      }
      online.observe(series[i]);
    }
  }
}

TEST(OnlineStreamingTest, TimeTravellingQueryFallsBackToHistory) {
  // A temporal window queried far in the future evicts old history; a
  // later query *before* the eviction frontier must still be exact.
  const auto series = irregular_series(19, 40);
  const auto base = std::make_shared<MeanPredictor>(
      "AVG5hr", WindowSpec::last_duration(5 * util::kSecondsPerHour));
  HistoryPredictor online(base);
  for (const auto& obs : series) online.observe(obs);

  const double late = series.back().time + 30 * util::kSecondsPerHour;
  (void)online.predict(Query{.time = late, .file_size = 10 * kMB});

  const double early = series[series.size() / 2].time;
  const Query back_query{.time = early, .file_size = 10 * kMB};
  const auto expected = base->predict(series, back_query);
  const auto actual = online.predict(back_query);
  ASSERT_EQ(expected.has_value(), actual.has_value());
  if (expected) {
    EXPECT_DOUBLE_EQ(*expected, *actual);
  }
}

TEST(OnlineStreamingTest, DynamicSelectorScoresViaStreams) {
  const auto series = irregular_series(23, 60);
  std::vector<std::shared_ptr<const Predictor>> candidates = {
      std::make_shared<MeanPredictor>("AVG", WindowSpec::all()),
      std::make_shared<LastValuePredictor>(),
      std::make_shared<MedianPredictor>("MED15", WindowSpec::last_n(15)),
  };
  DynamicSelector streamed("sel", candidates);
  // Reference selector: same candidates scored the stateless way.
  std::vector<Observation> history;
  std::vector<double> error_sum(candidates.size(), 0.0);
  std::vector<std::size_t> error_count(candidates.size(), 0);
  for (const auto& obs : series) {
    const Query query{.time = obs.time, .file_size = obs.file_size};
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (const auto p = candidates[i]->predict(history, query)) {
        error_sum[i] += util::percent_error(obs.value, *p);
        ++error_count[i];
      }
    }
    history.push_back(obs);
    streamed.observe(obs);
  }
  const auto scores = streamed.scores();
  ASSERT_EQ(scores.size(), candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    ASSERT_GT(error_count[i], 0u);
    const double expected =
        error_sum[i] / static_cast<double>(error_count[i]);
    EXPECT_DOUBLE_EQ(scores[i].second, expected) << scores[i].first;
  }
}

}  // namespace
}  // namespace wadp::predict

namespace wadp::core {
namespace {

gridftp::TransferRecord service_record(double end, double bw_mb, Bytes size) {
  gridftp::TransferRecord r;
  r.host = "dpsslx04.lbl.gov";
  r.source_ip = "140.221.65.69";
  r.file_name = "/v/f";
  r.file_size = size;
  r.volume = "/v";
  const double duration = static_cast<double>(size) / (bw_mb * 1e6);
  r.start_time = end - duration;
  r.end_time = end;
  r.op = gridftp::Operation::kRead;
  r.streams = 8;
  r.tcp_buffer = 1'000'000;
  return r;
}

TEST(PredictionServiceStreamingTest, OutOfOrderIngestStaysConsistent) {
  // The streaming battery is invalidated and replayed when a record
  // lands mid-series, so answers always match the sorted history.
  const SeriesKey key{.host = "dpsslx04.lbl.gov",
                      .remote_ip = "140.221.65.69",
                      .op = gridftp::Operation::kRead};
  PredictionService ordered;
  PredictionService interleaved;
  std::vector<gridftp::TransferRecord> records;
  for (int i = 0; i < 40; ++i) {
    records.push_back(
        service_record(100.0 + i * 500.0, 2.0 + (i % 7), 10 * kMB));
  }
  for (const auto& r : records) ordered.ingest(r);
  // Query the interleaved service mid-stream so its battery is built,
  // then force the out-of-order replay path.
  for (int i = 0; i < 30; ++i) interleaved.ingest(records[static_cast<std::size_t>(i)]);
  (void)interleaved.predict(key, 10 * kMB, 1e9);
  for (int i = 39; i >= 30; --i) interleaved.ingest(records[static_cast<std::size_t>(i)]);

  const double now = records.back().end_time + 60.0;
  for (const auto& name : {"AVG15/fs", "AVG", "MED15", "AR"}) {
    const auto a = ordered.predict(key, 10 * kMB, now, name);
    const auto b = interleaved.predict(key, 10 * kMB, now, name);
    ASSERT_EQ(a.has_value(), b.has_value()) << name;
    if (a) {
      EXPECT_DOUBLE_EQ(*a, *b) << name;
    }
  }
  const auto all_a = ordered.predict_all(key, 10 * kMB, now);
  const auto all_b = interleaved.predict_all(key, 10 * kMB, now);
  ASSERT_EQ(all_a.size(), all_b.size());
  for (std::size_t i = 0; i < all_a.size(); ++i) {
    EXPECT_EQ(all_a[i].first, all_b[i].first);
    ASSERT_EQ(all_a[i].second.has_value(), all_b[i].second.has_value())
        << all_a[i].first;
  }
}

}  // namespace
}  // namespace wadp::core
