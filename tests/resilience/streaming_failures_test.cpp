// The resilience plane tags failed attempts and appends them to the
// same history series as successes.  The streaming prediction engine
// must stay prefix-equivalent to the stateless battery when those
// outcome-tagged records are interleaved into the series.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "predict/incremental.hpp"
#include "predict/suite.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace wadp::predict {
namespace {

/// An irregular series where roughly a quarter of the entries are
/// failed attempts: partial transfers with low (but positive) observed
/// rates, exactly what the client's failure sink produces for a
/// truncated or timed-out attempt.
std::vector<Observation> series_with_failures(std::uint64_t seed,
                                              std::size_t n) {
  util::Rng rng(seed);
  const std::vector<Bytes> sizes = {1 * kMB,   10 * kMB,  100 * kMB,
                                    500 * kMB, 1000 * kMB};
  std::vector<Observation> out;
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool failed = rng.uniform() < 0.25;
    out.push_back(
        {.time = t,
         // Failures observe the partial-progress rate, well below the
         // healthy band but positive (a failed attempt still has a
         // well-defined duration).
         .value = failed ? rng.uniform(1e4, 1e6) : rng.uniform(2e6, 9e6),
         .file_size = sizes[static_cast<std::size_t>(rng.uniform_int(0, 4))],
         .ok = !failed});
    t += rng.uniform(60.0, 4.0 * util::kSecondsPerHour);
  }
  return out;
}

bool bit_identical_family(const std::string& name) {
  return name.find("hr") == std::string::npos &&
         name.find("AR") == std::string::npos;
}

TEST(StreamingFailureEquivalenceTest, EveryPrefixAllThirtyPredictors) {
  const auto series = series_with_failures(23, 150);
  std::size_t failures = 0;
  for (const auto& obs : series) failures += obs.ok ? 0 : 1;
  ASSERT_GT(failures, 20u);  // the mix actually contains failures

  const auto suite = PredictorSuite::paper_suite();
  for (const auto& predictor : suite.predictors()) {
    auto state = make_streaming(*predictor);
    ASSERT_NE(state, nullptr) << predictor->name();
    for (std::size_t i = 0; i < series.size(); ++i) {
      const Query query{.time = series[i].time,
                        .file_size = series[i].file_size};
      const auto batch = predictor->predict(
          std::span<const Observation>(series).first(i), query);
      const auto streamed = state->predict(query);
      ASSERT_EQ(batch.has_value(), streamed.has_value())
          << predictor->name() << " at prefix " << i;
      if (batch) {
        if (bit_identical_family(predictor->name())) {
          EXPECT_DOUBLE_EQ(*batch, *streamed)
              << predictor->name() << " at prefix " << i;
        } else {
          EXPECT_NEAR(*batch, *streamed,
                      std::max(1e-9, 1e-9 * std::abs(*batch)))
              << predictor->name() << " at prefix " << i;
        }
      }
      state->observe(series[i]);
    }
  }
}

}  // namespace
}  // namespace wadp::predict
