// Retry/backoff, per-attempt timeout, fault realization, and the
// failure-path audit: every failed attempt bumps exactly one outcome
// counter, closes its data channel, and produces one outcome-tagged
// record for the history plane.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "gridftp/client.hpp"
#include "gridftp/server.hpp"
#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "resilience/fault.hpp"
#include "resilience/retry.hpp"
#include "sim/simulator.hpp"
#include "storage/storage.hpp"

namespace wadp::gridftp {
namespace {

std::uint64_t outcome_count(const char* result) {
  return obs::Registry::global()
      .counter("wadp_client_transfers_total", {{"result", result}},
               "Client-driven transfer operations by outcome")
      .value();
}

/// Two-site world with quiet, deterministic paths (the
/// client_server_test fixture, plus resilience hooks).
struct World {
  sim::Simulator sim{0.0};
  net::FluidEngine engine{sim};
  net::Topology topology;
  storage::StorageSystem src_storage{"src", dedicated(), 1, 0.0};
  storage::StorageSystem dst_storage{"dst", dedicated(), 2, 0.0};
  GridFtpServer server;
  GridFtpClient client;
  std::vector<TransferRecord> failures;  // what the sink received

  static storage::StorageParams dedicated() {
    storage::StorageParams p;
    p.local_load.reset();
    return p;
  }

  static net::PathParams quiet() {
    net::PathParams p;
    p.bottleneck = 10'000'000.0;
    p.rtt = 0.05;
    p.load.base = 0.0;
    p.load.diurnal_amplitude = 0.0;
    p.load.ar_sigma = 0.0;
    p.load.episode_rate_per_hour = 0.0;
    return p;
  }

  World()
      : server({.site = "src", .host = "ftp.src.org", .ip = "10.0.0.1"},
               src_storage),
        client(sim, engine, topology, "dst", "10.0.0.2", &dst_storage) {
    topology.add_path("src", "dst", quiet(), 1, sim.now());
    topology.add_path("dst", "src", quiet(), 2, sim.now());
    server.fs().add_volume("/home/ftp");
    server.fs().add_file("/home/ftp/data/10 MB", 10'000'000);
    client.set_failure_sink(
        [this](const TransferRecord& r) { failures.push_back(r); });
  }

  std::optional<TransferOutcome> get() {
    std::optional<TransferOutcome> outcome;
    client.get(server, "/home/ftp/data/10 MB", {},
               [&](const TransferOutcome& o) { outcome = o; });
    sim.run();
    return outcome;
  }
};

resilience::RetryPolicy quick_retries(int attempts) {
  resilience::RetryPolicy policy;
  policy.max_attempts = attempts;
  policy.base_backoff = 5.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = 60.0;
  policy.jitter = 0.0;
  return policy;
}

TEST(ClientRetryTest, SuccessIsOneAttempt) {
  World w;
  w.client.set_retry_policy(quick_retries(4));
  const auto outcome = w.get();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->ok) << outcome->error;
  EXPECT_EQ(outcome->attempts, 1);
  EXPECT_TRUE(w.failures.empty());
}

TEST(ClientRetryTest, RetriesRideOutAServerOutage) {
  World w;
  w.client.set_retry_policy(quick_retries(4));
  w.server.set_accepting(false);
  w.sim.schedule_at(4.0, [&] { w.server.set_accepting(true); });

  const auto outcome = w.get();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->ok) << outcome->error;
  // Attempt 1 hits the 421 at control setup (~0.55 s); the 5 s backoff
  // lands attempt 2 after the outage ends at t=4.
  EXPECT_EQ(outcome->attempts, 2);
  EXPECT_EQ(w.server.log().size(), 1u);  // only the success is logged
  // The failed attempt reached the sink, outcome-tagged.
  ASSERT_EQ(w.failures.size(), 1u);
  EXPECT_FALSE(w.failures[0].ok);
  EXPECT_EQ(w.failures[0].host, "ftp.src.org");
  EXPECT_EQ(w.failures[0].source_ip, "10.0.0.2");
  EXPECT_EQ(w.failures[0].file_size, 0u);
  EXPECT_GT(w.failures[0].total_time(), 0.0);
}

TEST(ClientRetryTest, SingleShotKeepsPreResilienceBehaviour) {
  World w;  // default policy: max_attempts = 1
  w.server.set_accepting(false);
  const std::uint64_t fails_before = outcome_count("fail");
  const auto outcome = w.get();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
  EXPECT_EQ(outcome->attempts, 1);
  EXPECT_EQ(outcome_count("fail"), fails_before + 1);
}

TEST(ClientRetryTest, ExhaustionReportsEveryAttempt) {
  World w;
  w.client.set_retry_policy(quick_retries(3));
  w.server.set_accepting(false);  // permanently down
  const std::uint64_t fails_before = outcome_count("fail");

  const auto outcome = w.get();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
  EXPECT_EQ(outcome->attempts, 3);
  // Exactly one fail counter bump and one sink record per attempt.
  EXPECT_EQ(outcome_count("fail"), fails_before + 3);
  EXPECT_EQ(w.failures.size(), 3u);
  for (const auto& record : w.failures) {
    EXPECT_FALSE(record.ok);
    EXPECT_GT(record.total_time(), 0.0);  // bandwidth() stays callable
  }
}

TEST(ClientRetryTest, RetryBudgetStopsEarly) {
  World w;
  auto policy = quick_retries(10);  // backoffs 5, 10, 20, 40...
  policy.retry_budget = 12.0;       // allows 5 + 10? no: 5, then 10 > 7 left
  w.client.set_retry_policy(policy);
  w.server.set_accepting(false);

  const auto outcome = w.get();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
  // Attempt 1 fails, 5 s backoff (budget 5/12), attempt 2 fails, next
  // backoff 10 s would take the total to 15 > 12: stop at 2 attempts.
  EXPECT_EQ(outcome->attempts, 2);
}

TEST(ClientRetryTest, BackoffSpacingFollowsThePolicy) {
  World w;
  w.client.set_retry_policy(quick_retries(3));
  w.server.set_accepting(false);
  const auto outcome = w.get();
  ASSERT_TRUE(outcome.has_value());
  ASSERT_EQ(w.failures.size(), 3u);
  // Jitter is 0: each retry starts exactly one backoff (5 s then 10 s)
  // after the previous attempt resolved.
  EXPECT_NEAR(w.failures[1].start_time, w.failures[0].end_time + 5.0, 1e-6);
  EXPECT_NEAR(w.failures[2].start_time, w.failures[1].end_time + 10.0, 1e-6);
}

TEST(ClientRetryTest, InjectedConnectFaultsAreRetried) {
  World w;
  resilience::FaultSpec spec;
  spec.connect_failure_rate = 1.0;  // every attempt refused
  resilience::FaultInjector injector(w.sim, spec, 5);
  w.client.set_fault_injector(&injector);
  w.client.set_retry_policy(quick_retries(2));

  const auto outcome = w.get();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
  EXPECT_EQ(outcome->attempts, 2);
  EXPECT_NE(outcome->error.find("injected"), std::string::npos);
  EXPECT_EQ(injector.faults_injected(), 2u);
}

TEST(ClientRetryTest, TruncationKeepsPartialBytesInTheFailureRecord) {
  World w;
  resilience::FaultSpec spec;
  spec.truncation_rate = 1.0;
  spec.mean_fault_delay = 2.0;  // a couple of seconds into the data phase
  resilience::FaultInjector injector(w.sim, spec, 9);
  w.client.set_fault_injector(&injector);

  const std::uint64_t fails_before = outcome_count("fail");
  const auto outcome = w.get();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
  EXPECT_NE(outcome->error.find("truncated"), std::string::npos);
  EXPECT_EQ(outcome_count("fail"), fails_before + 1);
  ASSERT_EQ(w.failures.size(), 1u);
  const auto& record = w.failures[0];
  EXPECT_FALSE(record.ok);
  // The channel was up for part of the transfer: some bytes moved, but
  // not all 10 MB.
  EXPECT_GT(record.file_size, 0u);
  EXPECT_LT(record.file_size, 10'000'000u);
  // Partial records stay serializable and re-parseable (times round to
  // the log's millisecond precision).
  const auto round_trip = TransferRecord::from_ulm(record.to_ulm());
  ASSERT_TRUE(round_trip.has_value());
  EXPECT_FALSE(round_trip->ok);
  EXPECT_EQ(round_trip->host, record.host);
  EXPECT_EQ(round_trip->file_size, record.file_size);
  EXPECT_EQ(round_trip->op, record.op);
  EXPECT_NEAR(round_trip->start_time, record.start_time, 1e-3);
  EXPECT_NEAR(round_trip->end_time, record.end_time, 1e-3);
  EXPECT_EQ(w.server.log().size(), 0u);  // the server never logged it
}

TEST(ClientRetryTest, StallIsOnlyResolvedByTheAttemptTimeout) {
  World w;
  resilience::FaultSpec spec;
  spec.stall_rate = 1.0;
  spec.mean_fault_delay = 0.3;
  resilience::FaultInjector injector(w.sim, spec, 13);
  w.client.set_fault_injector(&injector);
  auto policy = quick_retries(1);  // single attempt, but with a timeout
  policy.max_attempts = 1;
  policy.attempt_timeout = 30.0;
  w.client.set_retry_policy(policy);

  const auto outcome = w.get();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
  EXPECT_NE(outcome->error.find("timed out"), std::string::npos);
  // Resolved at exactly the timeout, not at natural completion.
  EXPECT_NEAR(w.sim.now(), 30.0, 1e-6);
  ASSERT_EQ(w.failures.size(), 1u);
  EXPECT_LT(w.failures[0].file_size, 10'000'000u);
}

TEST(ClientRetryTest, RepeatedStallsTimeOutEveryAttempt) {
  World w;
  // Rate 1 with 2 attempts and a timeout: both attempts stall, proving
  // the per-attempt timeout re-arms across retries.
  resilience::FaultSpec always;
  always.stall_rate = 1.0;
  always.mean_fault_delay = 0.3;
  resilience::FaultInjector stall_injector(w.sim, always, 21);
  w.client.set_fault_injector(&stall_injector);
  auto policy = quick_retries(2);
  policy.attempt_timeout = 20.0;
  w.client.set_retry_policy(policy);

  const auto outcome = w.get();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
  EXPECT_EQ(outcome->attempts, 2);
  EXPECT_EQ(w.failures.size(), 2u);
  // Two timeouts plus one backoff: 20 + 5 + 20.
  EXPECT_NEAR(w.sim.now(), 45.0, 1e-6);
}

TEST(ClientRetryTest, TopologyMissIsACountedFailure) {
  // A missing path used to bypass the outcome counter entirely.
  sim::Simulator sim{0.0};
  net::FluidEngine engine{sim};
  net::Topology empty;
  storage::StorageSystem store{"src", World::dedicated(), 1, 0.0};
  GridFtpServer server({.site = "src", .host = "ftp.src.org",
                        .ip = "10.0.0.1"},
                       store);
  server.fs().add_volume("/home/ftp");
  server.fs().add_file("/home/ftp/x", 1'000'000);
  GridFtpClient client(sim, engine, empty, "dst", "10.0.0.2");

  const std::uint64_t fails_before = outcome_count("fail");
  std::optional<TransferOutcome> outcome;
  client.get(server, "/home/ftp/x", {},
             [&](const TransferOutcome& o) { outcome = o; });
  sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
  EXPECT_NE(outcome->error.find("no path"), std::string::npos);
  EXPECT_EQ(outcome_count("fail"), fails_before + 1);
}

TEST(ClientRetryTest, PutFailuresAreTaggedAsWrites) {
  World w;
  w.client.set_retry_policy(quick_retries(2));
  w.server.set_accepting(false);
  std::optional<TransferOutcome> outcome;
  w.client.put(w.server, "/home/ftp/out.dat", 5'000'000, {},
               [&](const TransferOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
  EXPECT_EQ(outcome->attempts, 2);
  ASSERT_EQ(w.failures.size(), 2u);
  EXPECT_EQ(w.failures[0].op, Operation::kWrite);
  EXPECT_EQ(w.failures[0].file_name, "/home/ftp/out.dat");
}

}  // namespace
}  // namespace wadp::gridftp
