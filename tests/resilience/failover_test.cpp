#include "resilience/failover.hpp"

#include <gtest/gtest.h>

namespace wadp::resilience {
namespace {

TEST(CooldownTrackerTest, UnseenKeyIsAvailable) {
  CooldownTracker tracker;
  EXPECT_TRUE(tracker.available("ftp.src.org", 0.0));
  EXPECT_DOUBLE_EQ(tracker.available_at("ftp.src.org"), 0.0);
  EXPECT_EQ(tracker.consecutive_failures("ftp.src.org"), 0);
}

TEST(CooldownTrackerTest, FailureOpensAWindowThatExpires) {
  CooldownTracker tracker({.base = 30.0, .multiplier = 2.0, .max = 900.0});
  tracker.record_failure("ftp.src.org", 100.0);
  EXPECT_FALSE(tracker.available("ftp.src.org", 100.0));
  EXPECT_FALSE(tracker.available("ftp.src.org", 129.9));
  EXPECT_TRUE(tracker.available("ftp.src.org", 130.0));
  EXPECT_DOUBLE_EQ(tracker.available_at("ftp.src.org"), 130.0);
}

TEST(CooldownTrackerTest, ConsecutiveFailuresGrowExponentially) {
  CooldownTracker tracker({.base = 10.0, .multiplier = 2.0, .max = 900.0});
  tracker.record_failure("h", 0.0);    // 10 s -> until 10
  tracker.record_failure("h", 10.0);   // 20 s -> until 30
  tracker.record_failure("h", 30.0);   // 40 s -> until 70
  EXPECT_EQ(tracker.consecutive_failures("h"), 3);
  EXPECT_DOUBLE_EQ(tracker.available_at("h"), 70.0);
}

TEST(CooldownTrackerTest, CooldownIsCappedAtMax) {
  CooldownTracker tracker({.base = 10.0, .multiplier = 10.0, .max = 60.0});
  SimTime now = 0.0;
  for (int i = 0; i < 5; ++i) {
    tracker.record_failure("h", now);
    now = tracker.available_at("h");
  }
  // The last window is at most `max` long.
  tracker.record_failure("h", now);
  EXPECT_LE(tracker.available_at("h") - now, 60.0);
}

TEST(CooldownTrackerTest, WindowNeverShrinks) {
  // A failure recorded while a longer window is already open must not
  // pull the expiry earlier.
  CooldownTracker tracker({.base = 100.0, .multiplier = 1.0, .max = 900.0});
  tracker.record_failure("h", 0.0);  // until 100
  tracker.record_failure("h", 1.0);  // 100 more from t=1 -> until 101
  EXPECT_DOUBLE_EQ(tracker.available_at("h"), 101.0);
}

TEST(CooldownTrackerTest, SuccessClearsTheStreak) {
  CooldownTracker tracker({.base = 10.0, .multiplier = 2.0, .max = 900.0});
  tracker.record_failure("h", 0.0);
  tracker.record_failure("h", 5.0);
  tracker.record_success("h");
  EXPECT_EQ(tracker.consecutive_failures("h"), 0);
  EXPECT_TRUE(tracker.available("h", 6.0));
  // The next failure starts from the base again.
  tracker.record_failure("h", 100.0);
  EXPECT_DOUBLE_EQ(tracker.available_at("h"), 110.0);
}

TEST(CooldownTrackerTest, KeysAreIndependent) {
  CooldownTracker tracker;
  tracker.record_failure("a", 0.0);
  EXPECT_FALSE(tracker.available("a", 0.0));
  EXPECT_TRUE(tracker.available("b", 0.0));
}

}  // namespace
}  // namespace wadp::resilience
