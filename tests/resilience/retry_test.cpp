#include "resilience/retry.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace wadp::resilience {
namespace {

TEST(RetryPolicyTest, DefaultIsSingleShot) {
  const RetryPolicy policy;
  EXPECT_EQ(policy.max_attempts, 1);
  EXPECT_FALSE(policy.enabled());
  EXPECT_FALSE(policy.allows_retry(1, 0.0, 1.0));
}

TEST(RetryPolicyTest, BackoffGrowsGeometricallyWithoutJitter) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_backoff = 2.0;
  policy.backoff_multiplier = 3.0;
  policy.max_backoff = 1000.0;
  policy.jitter = 0.0;
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(policy.backoff_for(1, rng), 2.0);
  EXPECT_DOUBLE_EQ(policy.backoff_for(2, rng), 6.0);
  EXPECT_DOUBLE_EQ(policy.backoff_for(3, rng), 18.0);
}

TEST(RetryPolicyTest, BackoffClampsAtMax) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.base_backoff = 1.0;
  policy.backoff_multiplier = 10.0;
  policy.max_backoff = 30.0;
  policy.jitter = 0.0;
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(policy.backoff_for(5, rng), 30.0);
}

TEST(RetryPolicyTest, JitterStaysWithinFraction) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_backoff = 10.0;
  policy.backoff_multiplier = 1.0;
  policy.max_backoff = 100.0;
  policy.jitter = 0.25;
  util::Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    const Duration b = policy.backoff_for(1, rng);
    EXPECT_GE(b, 7.5);
    EXPECT_LT(b, 12.5);
  }
}

TEST(RetryPolicyTest, JitterIsDeterministicPerSeed) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.jitter = 0.5;
  util::Rng a(7);
  util::Rng b(7);
  for (int i = 1; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(policy.backoff_for(i, a), policy.backoff_for(i, b));
  }
}

TEST(RetryPolicyTest, AttemptCapStopsRetries) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  EXPECT_TRUE(policy.allows_retry(1, 0.0, 1.0));
  EXPECT_TRUE(policy.allows_retry(2, 0.0, 1.0));
  EXPECT_FALSE(policy.allows_retry(3, 0.0, 1.0));
}

TEST(RetryPolicyTest, BudgetStopsRetriesBeforeAttemptCap) {
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.retry_budget = 10.0;
  EXPECT_TRUE(policy.allows_retry(1, 0.0, 10.0));   // exactly on budget
  EXPECT_FALSE(policy.allows_retry(1, 0.0, 10.5));  // would exceed
  EXPECT_FALSE(policy.allows_retry(1, 8.0, 3.0));
  EXPECT_TRUE(policy.allows_retry(1, 8.0, 2.0));
}

TEST(RetryPolicyTest, ZeroBudgetMeansUnbounded) {
  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.retry_budget = 0.0;
  EXPECT_TRUE(policy.allows_retry(999, 1e9, 1e9));
}

TEST(RetryPolicyTest, WanDefaultsAreMultiAttempt) {
  const RetryPolicy policy = default_wan_policy();
  EXPECT_TRUE(policy.enabled());
  EXPECT_GT(policy.max_attempts, 1);
  EXPECT_GT(policy.attempt_timeout, 0.0);
  EXPECT_GT(policy.retry_budget, 0.0);
}

}  // namespace
}  // namespace wadp::resilience
