#include "resilience/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace wadp::resilience {
namespace {

TEST(FaultInjectorTest, ZeroRatesNeverInject) {
  sim::Simulator sim;
  FaultInjector injector(sim, {}, 1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(injector.sample_attempt().kind, FaultKind::kNone);
  }
  EXPECT_EQ(injector.faults_injected(), 0u);
}

TEST(FaultInjectorTest, SampleSequenceIsDeterministicPerSeed) {
  FaultSpec spec;
  spec.connect_failure_rate = 0.2;
  spec.truncation_rate = 0.1;
  spec.stall_rate = 0.1;
  sim::Simulator sim_a;
  sim::Simulator sim_b;
  FaultInjector a(sim_a, spec, 99);
  FaultInjector b(sim_b, spec, 99);
  for (int i = 0; i < 500; ++i) {
    const AttemptFault fa = a.sample_attempt();
    const AttemptFault fb = b.sample_attempt();
    EXPECT_EQ(fa.kind, fb.kind);
    EXPECT_DOUBLE_EQ(fa.delay, fb.delay);
  }
}

TEST(FaultInjectorTest, RatesApproximatelyHonoured) {
  FaultSpec spec;
  spec.connect_failure_rate = 0.3;
  spec.truncation_rate = 0.15;
  spec.stall_rate = 0.05;
  sim::Simulator sim;
  FaultInjector injector(sim, spec, 7);
  int connect = 0, truncate = 0, stall = 0, none = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    switch (injector.sample_attempt().kind) {
      case FaultKind::kConnectFail: ++connect; break;
      case FaultKind::kTruncate: ++truncate; break;
      case FaultKind::kStall: ++stall; break;
      case FaultKind::kNone: ++none; break;
    }
  }
  EXPECT_NEAR(connect / double(n), 0.30, 0.02);
  EXPECT_NEAR(truncate / double(n), 0.15, 0.02);
  EXPECT_NEAR(stall / double(n), 0.05, 0.01);
  EXPECT_NEAR(none / double(n), 0.50, 0.02);
  EXPECT_EQ(injector.faults_injected(),
            static_cast<std::uint64_t>(connect + truncate + stall));
}

TEST(FaultInjectorTest, TimedFaultsCarryPositiveDelay) {
  FaultSpec spec;
  spec.truncation_rate = 0.5;
  spec.stall_rate = 0.5;
  spec.mean_fault_delay = 3.0;
  sim::Simulator sim;
  FaultInjector injector(sim, spec, 11);
  for (int i = 0; i < 200; ++i) {
    const AttemptFault fault = injector.sample_attempt();
    ASSERT_NE(fault.kind, FaultKind::kNone);
    EXPECT_GE(fault.delay, 0.0);
  }
}

TEST(FaultInjectorTest, OutageProcessAlternatesAndStopsAtHorizon) {
  FaultSpec spec;
  spec.mean_uptime = 100.0;
  spec.mean_outage = 50.0;
  spec.outage_horizon = 5000.0;
  sim::Simulator sim;
  FaultInjector injector(sim, spec, 3);

  std::vector<bool> states;
  injector.watch_outages("ftp.src.org",
                         [&](bool up) { states.push_back(up); });
  sim.run();

  ASSERT_FALSE(states.empty());
  // The chain is bounded: no transition is scheduled past the horizon.
  EXPECT_LE(sim.now(), spec.outage_horizon);
  // Strict alternation starting with an outage (watch begins up).
  for (std::size_t i = 0; i < states.size(); ++i) {
    EXPECT_EQ(states[i], i % 2 == 1);
  }
  EXPECT_GT(injector.outages_started(), 0u);
}

TEST(FaultInjectorTest, ZeroMeanOutageDisablesTheProcess) {
  FaultSpec spec;
  spec.mean_outage = 0.0;
  spec.outage_horizon = 1000.0;
  sim::Simulator sim;
  FaultInjector injector(sim, spec, 3);
  int calls = 0;
  injector.watch_outages("ftp.src.org", [&](bool) { ++calls; });
  sim.run();
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(injector.outages_started(), 0u);
}

TEST(FaultInjectorTest, WatchedServersAreDecorrelated) {
  // Adding a second watch must not perturb the first one's schedule.
  FaultSpec spec;
  spec.mean_uptime = 200.0;
  spec.mean_outage = 100.0;
  spec.outage_horizon = 4000.0;

  const auto run_one = [&](bool with_second) {
    sim::Simulator sim;
    FaultInjector injector(sim, spec, 17);
    std::vector<SimTime> transitions;
    injector.watch_outages("a.example",
                           [&](bool) { transitions.push_back(sim.now()); });
    if (with_second) {
      injector.watch_outages("b.example", [](bool) {});
    }
    sim.run();
    return transitions;
  };

  EXPECT_EQ(run_one(false), run_one(true));
}

}  // namespace
}  // namespace wadp::resilience
