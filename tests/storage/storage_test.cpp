#include "storage/storage.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wadp::storage {
namespace {

TEST(StorageTest, DedicatedStorageHasConstantCapacity) {
  StorageParams params;
  params.read_rate = 60'000'000.0;
  params.write_rate = 45'000'000.0;
  params.local_load.reset();
  StorageSystem storage("anl", params, 1, 0.0);
  EXPECT_DOUBLE_EQ(storage.read_port().capacity_at(0.0), 60'000'000.0);
  EXPECT_DOUBLE_EQ(storage.read_port().capacity_at(1e6), 60'000'000.0);
  EXPECT_DOUBLE_EQ(storage.write_port().capacity_at(0.0), 45'000'000.0);
  EXPECT_EQ(storage.read_port().next_change_after(0.0), kNeverTime);
}

TEST(StorageTest, PortNamesIncludeSiteAndDirection) {
  StorageSystem storage("lbl", {}, 1, 0.0);
  EXPECT_EQ(storage.read_port().resource_name(), "storage:lbl/read");
  EXPECT_EQ(storage.write_port().resource_name(), "storage:lbl/write");
  EXPECT_EQ(storage.site(), "lbl");
}

TEST(StorageTest, LocalLoadReducesCapacity) {
  StorageParams params;
  params.read_rate = 50'000'000.0;
  net::LoadParams load;
  load.base = 0.5;
  load.diurnal_amplitude = 0.0;
  load.ar_sigma = 0.0;
  load.episode_rate_per_hour = 0.0;
  params.local_load = load;
  StorageSystem storage("isi", params, 2, 0.0);
  EXPECT_NEAR(storage.read_port().capacity_at(0.0), 25'000'000.0, 1.0);
  // Loaded ports change on the grid.
  EXPECT_DOUBLE_EQ(storage.read_port().next_change_after(0.0), 60.0);
}

TEST(StorageTest, ReadAndWritePortsHaveIndependentLoads) {
  StorageParams params;
  net::LoadParams load;
  load.base = 0.3;
  load.ar_sigma = 0.1;
  params.local_load = load;
  StorageSystem storage("x", params, 3, 0.0);
  // Same parameters but different seeds: series should diverge somewhere.
  bool diverged = false;
  for (double t = 0.0; t < 86400.0 && !diverged; t += 60.0) {
    const double r = storage.read_port().capacity_at(t) / params.read_rate;
    const double w = storage.write_port().capacity_at(t) / params.write_rate;
    if (std::abs(r - w) > 1e-9) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(StorageTest, CapacityStaysPositive) {
  StorageParams params;
  net::LoadParams load;
  load.base = 0.9;
  load.ar_sigma = 0.3;
  load.max_utilization = 0.95;
  params.local_load = load;
  StorageSystem storage("y", params, 4, 0.0);
  for (double t = 0.0; t < 86400.0; t += 600.0) {
    EXPECT_GT(storage.read_port().capacity_at(t), 0.0);
    EXPECT_GT(storage.write_port().capacity_at(t), 0.0);
  }
}

}  // namespace
}  // namespace wadp::storage
