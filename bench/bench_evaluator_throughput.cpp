// Evaluator throughput: single-pass streaming engine vs the legacy
// recompute-per-prefix engine, full 30-predictor paper battery.
//
// Legacy is O(N^2 * P) over an N-transfer log; the streaming engine is
// O(N * P).  The gap is the whole point of the incremental prediction
// engine, so legacy only runs at the two smaller sizes (one iteration —
// at 100k it would take hours).
#include <benchmark/benchmark.h>

#include "predict/evaluator.hpp"
#include "predict/suite.hpp"
#include "util/rng.hpp"

namespace wadp::predict {
namespace {

std::vector<Observation> synthetic_series(std::size_t n) {
  util::Rng rng(5);
  const std::vector<Bytes> sizes = {1 * kMB,   10 * kMB,  100 * kMB,
                                    500 * kMB, 1000 * kMB};
  std::vector<Observation> out;
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({.time = t,
                   .value = rng.uniform(2e6, 9e6),
                   .file_size = sizes[static_cast<std::size_t>(rng.uniform_int(
                       0, static_cast<std::int64_t>(sizes.size()) - 1))]});
    t += rng.uniform(60.0, 1800.0);
  }
  return out;
}

void run_evaluator(benchmark::State& state, EvalConfig::Engine engine) {
  const auto series =
      synthetic_series(static_cast<std::size_t>(state.range(0)));
  const auto suite = PredictorSuite::paper_suite();
  EvalConfig config;
  config.engine = engine;
  config.keep_samples = false;
  const Evaluator evaluator(config);
  for (auto _ : state) {
    auto result = evaluator.run(series, suite.pointers());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["transfers"] = static_cast<double>(state.range(0));
}

void BM_EvaluatorStreaming(benchmark::State& s) {
  run_evaluator(s, EvalConfig::Engine::kStreaming);
}
void BM_EvaluatorLegacy(benchmark::State& s) {
  run_evaluator(s, EvalConfig::Engine::kLegacy);
}

BENCHMARK(BM_EvaluatorStreaming)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000);
BENCHMARK(BM_EvaluatorLegacy)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(1000)
    ->Arg(10000);

}  // namespace
}  // namespace wadp::predict

BENCHMARK_MAIN();
