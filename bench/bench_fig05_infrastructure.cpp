// Figure 5: the information-service architecture — index servers (GIIS)
// with registered resources (GRIS), each GRIS hosting information
// providers, and user inquiries flowing to the GIIS.
//
// The paper's exhibit is a diagram; this bench regenerates it as a live
// trace: it deploys the Fig. 5 arrangement over the testbed (with the
// NWS plane enabled), prints the registration tree, exercises the two
// protocols (soft-state registration incl. lapse/renewal, inquiry), and
// shows a user query resolving through the hierarchy.
#include "common.hpp"

#include "core/information_fabric.hpp"

namespace wadp::bench {
namespace {

void run() {
  // Measurements to publish.
  workload::Testbed testbed(workload::Campaign::kAugust2001, kSeed);
  workload::CampaignDriver driver(testbed, "anl", "lbl", {}, kSeed ^ 3);
  driver.start();
  core::FabricConfig config;
  config.deploy_nws = true;
  core::InformationFabric fabric(testbed, config);
  testbed.sim().run_until(testbed.start_time() + 3 * 86400.0);
  const SimTime now = testbed.sim().now();
  fabric.renew(now);

  // Warm the provider caches so the tree shows real entry counts.
  (void)fabric.giis().search(now, mds::Filter::match_all());

  // The registration tree.
  std::printf("registration tree (Fig. 5 structure):\n\n");
  std::printf("  GIIS %-12s  %zu live soft-state registrations\n",
              fabric.giis().name().c_str(),
              fabric.giis().live_registrations(now));
  for (const auto& site : testbed.sites()) {
    auto& gris = fabric.gris(site);
    std::printf("   |- GRIS %-10s suffix \"%s\"  providers=%zu entries=%zu\n",
                gris.name().c_str(), gris.suffix().to_string().c_str(),
                gris.provider_count(), gris.entry_count());
  }

  // Protocol 1: soft-state registration (lapse and renewal).
  std::printf("\nsoft-state registration protocol:\n");
  std::printf("  live at now        : %zu\n",
              fabric.giis().live_registrations(now));
  std::printf("  live at now + 2 ttl: %zu (lapsed without renewal)\n",
              fabric.giis().live_registrations(now + 2 * 3600.0 + 1));
  fabric.renew(now + 2 * 3600.0 + 1);
  std::printf("  after renew()      : %zu\n",
              fabric.giis().live_registrations(now + 2 * 3600.0 + 2));

  // Protocol 2: inquiry, as a user would pose it.
  const SimTime later = now + 2 * 3600.0 + 2;
  std::printf("\ninquiry protocol (user -> GIIS):\n");
  struct Inquiry {
    const char* description;
    const char* filter;
  } inquiries[] = {
      {"all GridFTP servers", "(objectclass=GridFTPServerInfo)"},
      {"per-destination transfer stats", "(objectclass=GridFTPPerfInfo)"},
      {"NWS probe forecasts", "(objectclass=nwsNetwork)"},
      {"fast sources (avg read >= 5 MB/s)",
       "(&(objectclass=GridFTPPerfInfo)(avgrdbandwidth>=5000))"},
  };
  util::TextTable table({"inquiry", "filter", "entries"});
  table.set_align(0, util::TextTable::Align::Left);
  table.set_align(1, util::TextTable::Align::Left);
  for (const auto& inquiry : inquiries) {
    const auto filter = mds::Filter::parse(inquiry.filter);
    const auto results = fabric.giis().search(later, *filter);
    table.add_row({inquiry.description, inquiry.filter,
                   std::to_string(results.size())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper shape check: one GRIS per replica site, providers\n"
              "registered at the GRIS, GRIS registered (soft state) at the\n"
              "GIIS, inquiries answered from the aggregate view.\n");
}

}  // namespace
}  // namespace wadp::bench

int main() {
  wadp::bench::banner(
      "Figure 5: GRIS/GIIS architecture and protocols",
      "soft-state registration + inquiry over the aggregate directory");
  wadp::bench::run();
  return 0;
}
