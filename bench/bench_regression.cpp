// Regression/hybrid battery cost and accuracy.
//
// Panel 1 — REPLAY COST (ENFORCED).  A stateless RegressionPredictor
// recomputes its fit from the full history prefix on every query, so
// replaying an N-observation log costs O(N^2); the streaming engine
// absorbs one observation at a time and answers in O(1) for all-data
// windows.  Both paths replay the same 10k-observation synthetic
// series; the gate is (a) every prediction pair is bit-identical
// (the RegressionCore identity contract) and (b) the streaming replay
// is at least 10x faster end-to-end.
//
// Panel 2 — ACCURACY (ENFORCED).  The August campaign with disk/probe
// sampling on, both links, full regression_suite().  The regression
// sequel's claim: fits on end-system disk throughput (and disk+probe)
// beat univariate history-only prediction.  The regression members are
// size-blind nowcasts, so the enforced comparison is like-for-like: on
// each link the best regression/hybrid member's mean percentage error
// must be no worse than the best *size-blind* univariate member's
// (plain AVG/MED/LV/AR/EWMA windows).  Size-aware members (the /fs
// classified battery and SREG) exploit the testbed's dominant
// file-size signal and are reported in the leaderboard but not gated —
// the source paper already establishes that classification wins.
//
// Emits BENCH_regression.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "predict/evaluator.hpp"
#include "predict/incremental.hpp"
#include "predict/regression.hpp"

namespace {

using namespace wadp;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kReplayObservations = 10'000;
constexpr double kMinSpeedup = 10.0;

const std::set<std::string> kRegressionNames = {
    "DREG", "DREG25", "MREG", "MREG25", "PREG", "PREG25", "HYB", "HYB25"};

/// Deterministic synthetic series with genuinely correlated regressors:
/// bandwidth follows a plane in (probe, disk) plus bounded oscillation.
std::vector<predict::Observation> make_series(std::size_t n) {
  std::vector<predict::Observation> series;
  series.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    predict::Observation o;
    o.time = 10.0 * t;
    o.disk = 30e6 + 20e6 * std::sin(t / 13.0);
    o.probe = 12e6 + 7e6 * std::cos(t / 29.0);
    o.value = 1e6 + 0.35 * o.disk + 0.2 * o.probe + 5e5 * std::sin(t / 7.0);
    o.file_size = (i % 4 + 1) * 10 * kMB;
    series.push_back(o);
  }
  return series;
}

struct ReplayResult {
  double batch_seconds = 0.0;
  double streaming_seconds = 0.0;
  std::size_t mismatches = 0;
  std::size_t answered = 0;
};

/// Replays `series` through one battery member both ways: the stateless
/// predictor over every history prefix vs the streaming engine.
ReplayResult replay(const predict::PredictorSuite& suite,
                    const std::string& name,
                    const std::vector<predict::Observation>& series) {
  ReplayResult r;
  const predict::Predictor* batch = suite.find(name);
  auto streaming = predict::make_streaming(*batch);

  std::vector<std::optional<Bandwidth>> batch_answers(series.size());
  auto begin = Clock::now();
  for (std::size_t i = 0; i < series.size(); ++i) {
    const predict::Query q{series[i].time, series[i].file_size};
    batch_answers[i] =
        batch->predict({series.data(), i}, q);
  }
  r.batch_seconds =
      std::chrono::duration<double>(Clock::now() - begin).count();

  begin = Clock::now();
  for (std::size_t i = 0; i < series.size(); ++i) {
    const predict::Query q{series[i].time, series[i].file_size};
    const auto answer = streaming->predict(q);
    if (answer.has_value() != batch_answers[i].has_value() ||
        (answer && *answer != *batch_answers[i])) {
      ++r.mismatches;
    }
    if (answer) ++r.answered;
    streaming->observe(series[i]);
  }
  r.streaming_seconds =
      std::chrono::duration<double>(Clock::now() - begin).count();
  return r;
}

struct LinkAccuracy {
  double best_regression = 0.0;
  double best_size_blind = 0.0;
  std::string best_regression_name;
  std::string best_size_blind_name;
};

/// regression/hybrid, size-aware (classified or size-regressing), or
/// size-blind univariate — the gated comparison pool.
const char* kind_of(const std::string& name) {
  if (kRegressionNames.count(name)) return "regression/hybrid";
  if (name.find("/fs") != std::string::npos ||
      name.rfind("SREG", 0) == 0) {
    return "size-aware";
  }
  return "size-blind";
}

LinkAccuracy evaluate_link(const char* link,
                           const std::vector<predict::Observation>& series) {
  const auto suite = predict::regression_suite();
  const predict::Evaluator evaluator;
  const auto result = evaluator.run(series, suite.pointers());

  std::vector<std::pair<double, std::string>> ranking;
  for (std::size_t p = 0; p < suite.size(); ++p) {
    if (result.errors(p).count() == 0) continue;
    ranking.emplace_back(result.errors(p).mean(), result.predictor_names()[p]);
  }
  std::sort(ranking.begin(), ranking.end());

  std::printf("\n%s-ANL (n=%zu): top 12 of %zu answering predictors\n", link,
              series.size(), ranking.size());
  util::TextTable table({"rank", "predictor", "mean %err", "kind"});
  table.set_align(1, util::TextTable::Align::Left);
  table.set_align(3, util::TextTable::Align::Left);
  for (std::size_t i = 0; i < ranking.size() && i < 12; ++i) {
    table.add_row({std::to_string(i + 1), ranking[i].second,
                   bench::fmt(ranking[i].first), kind_of(ranking[i].second)});
  }
  std::printf("%s", table.render().c_str());

  LinkAccuracy acc;
  bool have_reg = false, have_uni = false;
  for (const auto& [err, name] : ranking) {
    const std::string kind = kind_of(name);
    if (kind == "regression/hybrid" && !have_reg) {
      acc.best_regression = err;
      acc.best_regression_name = name;
      have_reg = true;
    } else if (kind == "size-blind" && !have_uni) {
      acc.best_size_blind = err;
      acc.best_size_blind_name = name;
      have_uni = true;
    }
    if (have_reg && have_uni) break;
  }
  std::printf(
      "best regression/hybrid: %s %.1f%%; best size-blind univariate: "
      "%s %.1f%%\n",
      acc.best_regression_name.c_str(), acc.best_regression,
      acc.best_size_blind_name.c_str(), acc.best_size_blind);
  return acc;
}

}  // namespace

int main() {
  bench::banner(
      "BENCH regression: streaming replay cost + regression-era accuracy",
      "disk/probe regression beats the univariate battery (regression "
      "sequel); streaming fits must match offline batch fits exactly");

  int failures = 0;

  // Panel 1: streaming vs batch replay over a 10k-observation series.
  const auto series = make_series(kReplayObservations);
  const auto suite = predict::regression_suite();
  util::TextTable replay_table(
      {"replay (10k obs)", "batch s", "streaming s", "speedup", "mismatches"});
  replay_table.set_align(0, util::TextTable::Align::Left);
  double worst_speedup = 1e300;
  std::size_t total_mismatches = 0;
  for (const char* name : {"DREG", "MREG", "PREG", "HYB"}) {
    const auto r = replay(suite, name, series);
    const double speedup = r.batch_seconds / r.streaming_seconds;
    worst_speedup = std::min(worst_speedup, speedup);
    total_mismatches += r.mismatches;
    replay_table.add_row({name, bench::fmt(r.batch_seconds, 3),
                          bench::fmt(r.streaming_seconds, 3),
                          bench::fmt(speedup, 1) + "x",
                          std::to_string(r.mismatches)});
    if (r.answered == 0) {
      std::fprintf(stderr, "FAIL: %s never answered during replay\n", name);
      ++failures;
    }
  }
  std::printf("%s\n", replay_table.render().c_str());
  if (total_mismatches != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu streaming/batch prediction mismatches (identity "
                 "contract broken)\n",
                 total_mismatches);
    ++failures;
  }
  if (worst_speedup < kMinSpeedup) {
    std::fprintf(stderr,
                 "FAIL: worst streaming speedup %.1fx below the %.0fx bound\n",
                 worst_speedup, kMinSpeedup);
    ++failures;
  } else {
    std::printf("worst streaming speedup %.1fx (bound %.0fx)\n\n",
                worst_speedup, kMinSpeedup);
  }

  // Panel 2: August campaign accuracy, both links.
  auto data = bench::run_campaign(workload::Campaign::kAugust2001);
  const auto lbl = evaluate_link("LBL", data.lbl);
  const auto isi = evaluate_link("ISI", data.isi);
  for (const auto& [link, acc] :
       {std::pair{"LBL", lbl}, std::pair{"ISI", isi}}) {
    if (acc.best_regression_name.empty()) {
      std::fprintf(stderr, "FAIL: no regression member answered on %s\n",
                   link);
      ++failures;
    } else if (acc.best_regression > acc.best_size_blind) {
      std::fprintf(stderr,
                   "FAIL: %s best regression %.1f%% worse than best "
                   "size-blind univariate %.1f%%\n",
                   link, acc.best_regression, acc.best_size_blind);
      ++failures;
    }
  }
  std::printf("\n");

  auto& registry = obs::Registry::global();
  registry.gauge("wadp_bench_regression_replay_speedup", {},
                 "Worst streaming-over-batch replay speedup across the "
                 "regression members (enforced >= 10x)")
      .set(worst_speedup);
  registry.gauge("wadp_bench_regression_replay_mismatches", {},
                 "Streaming/batch prediction mismatches (enforced 0)")
      .set(static_cast<double>(total_mismatches));
  registry.gauge("wadp_bench_regression_best_error_lbl_pct", {},
                 "Best regression/hybrid mean %error, LBL-ANL August")
      .set(lbl.best_regression);
  registry.gauge("wadp_bench_regression_best_univariate_lbl_pct", {},
                 "Best size-blind univariate mean %error, LBL-ANL August")
      .set(lbl.best_size_blind);
  registry.gauge("wadp_bench_regression_best_error_isi_pct", {},
                 "Best regression/hybrid mean %error, ISI-ANL August")
      .set(isi.best_regression);
  registry.gauge("wadp_bench_regression_best_univariate_isi_pct", {},
                 "Best size-blind univariate mean %error, ISI-ANL August")
      .set(isi.best_size_blind);
  const auto written =
      obs::write_bench_json("BENCH_regression.json", "regression", registry);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.error().c_str());
    return 1;
  }
  std::printf("wrote BENCH_regression.json\n");
  return failures == 0 ? 0 : 1;
}
