// Figure 4: the context-insensitive predictor taxonomy.
//
// Regenerated from the live registry (not hard-coded): each battery
// member is placed in the (window, technique) cell its type and window
// describe, which doubles as a check that the suite actually contains
// the paper's fifteen predictors.
#include "common.hpp"

namespace wadp::bench {
namespace {

std::string technique_of(const predict::Predictor* p, std::string* window) {
  if (const auto* mean = dynamic_cast<const predict::MeanPredictor*>(p)) {
    *window = mean->window().describe();
    return "Average based";
  }
  if (const auto* med = dynamic_cast<const predict::MedianPredictor*>(p)) {
    *window = med->window().describe();
    return "Median based";
  }
  if (const auto* ar = dynamic_cast<const predict::ArPredictor*>(p)) {
    *window = ar->window().describe();
    return "ARIMA model";
  }
  if (dynamic_cast<const predict::LastValuePredictor*>(p) != nullptr) {
    *window = "last 1";
    return "Average based";  // Fig. 4 places LV in the averaging column
  }
  *window = "?";
  return "?";
}

void run() {
  const auto suite = predict::PredictorSuite::context_insensitive();

  util::TextTable table({"Window", "Average based", "Median based",
                         "ARIMA model"});
  table.set_align(1, util::TextTable::Align::Left);
  table.set_align(2, util::TextTable::Align::Left);
  table.set_align(3, util::TextTable::Align::Left);

  // Fig. 4 row order.
  const std::vector<std::string> rows = {
      "all",      "last 1",   "last 5",  "last 15", "last 25",
      "last 5hr", "last 15hr", "last 25hr", "last 5d", "last 10d"};
  for (const auto& row : rows) {
    std::string avg, med, ar;
    for (const auto& p : suite.predictors()) {
      std::string window;
      const auto technique = technique_of(p.get(), &window);
      if (window != row) continue;
      if (technique == "Average based") avg = p->name();
      if (technique == "Median based") med = p->name();
      if (technique == "ARIMA model") ar = p->name();
    }
    table.add_row({row, avg, med, ar});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("total context-insensitive predictors: %zu (paper: 15)\n",
              suite.size());
  std::printf("with file-size classification (Section 4.4): %zu (paper: 30)\n",
              predict::PredictorSuite::paper_suite().size());
}

}  // namespace
}  // namespace wadp::bench

int main() {
  wadp::bench::banner("Figure 4: context-insensitive predictors used",
                      "15 predictors: mean/median/AR x count & temporal "
                      "windows; 30 with classification");
  wadp::bench::run();
  return 0;
}
