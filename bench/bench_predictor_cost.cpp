// Section 4.1 cost claim: the ARIMA technique "can have a much greater
// computational cost" than mean/median predictors.
//
// Google-benchmark comparison of one prediction over histories of
// 100-3200 observations for each technique, plain and classified —
// first the stateless battery (cost grows with the history), then the
// streaming counterparts (observe-then-predict per step, flat cost
// regardless of how much history the state has absorbed).
#include <benchmark/benchmark.h>

#include "predict/incremental.hpp"
#include "predict/suite.hpp"
#include "util/rng.hpp"

namespace wadp::predict {
namespace {

std::vector<Observation> synthetic_history(std::size_t n) {
  util::Rng rng(5);
  const std::vector<Bytes> sizes = {1 * kMB,   10 * kMB,  100 * kMB,
                                    500 * kMB, 1000 * kMB};
  std::vector<Observation> out;
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({.time = t,
                   .value = rng.uniform(2e6, 9e6),
                   .file_size = sizes[static_cast<std::size_t>(rng.uniform_int(
                       0, static_cast<std::int64_t>(sizes.size()) - 1))]});
    t += rng.uniform(60.0, 1800.0);
  }
  return out;
}

void run_predictor(benchmark::State& state, const std::string& name) {
  static const auto suite = PredictorSuite::paper_suite();
  const auto* predictor = suite.find(name);
  const auto history = synthetic_history(static_cast<std::size_t>(state.range(0)));
  const Query query{.time = history.back().time + 60.0,
                    .file_size = 500 * kMB};
  for (auto _ : state) {
    auto prediction = predictor->predict(history, query);
    benchmark::DoNotOptimize(prediction);
  }
  state.counters["history"] = static_cast<double>(state.range(0));
}

// One step of live operation: absorb a fresh measurement, answer one
// query.  The state is pre-fed with range(0) observations, so any
// history-size dependence would show up across the Arg sweep.
void run_streaming(benchmark::State& state, const std::string& name) {
  static const auto suite = PredictorSuite::paper_suite();
  const auto* predictor = suite.find(name);
  const auto history =
      synthetic_history(static_cast<std::size_t>(state.range(0)));
  auto stream = make_streaming(*predictor);
  for (const auto& o : history) stream->observe(o);
  double t = history.back().time;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& recycled = history[i % history.size()];
    t += 600.0;
    stream->observe({.time = t,
                     .value = recycled.value,
                     .file_size = recycled.file_size});
    auto prediction = stream->predict({.time = t, .file_size = 500 * kMB});
    benchmark::DoNotOptimize(prediction);
    ++i;
  }
  state.counters["history"] = static_cast<double>(state.range(0));
}

void BM_Avg(benchmark::State& s) { run_predictor(s, "AVG"); }
void BM_Avg25(benchmark::State& s) { run_predictor(s, "AVG25"); }
void BM_Med(benchmark::State& s) { run_predictor(s, "MED"); }
void BM_Med25(benchmark::State& s) { run_predictor(s, "MED25"); }
void BM_Lv(benchmark::State& s) { run_predictor(s, "LV"); }
void BM_Ar(benchmark::State& s) { run_predictor(s, "AR"); }
void BM_AvgClassified(benchmark::State& s) { run_predictor(s, "AVG/fs"); }
void BM_ArClassified(benchmark::State& s) { run_predictor(s, "AR/fs"); }

void BM_AvgStream(benchmark::State& s) { run_streaming(s, "AVG"); }
void BM_Avg25Stream(benchmark::State& s) { run_streaming(s, "AVG25"); }
void BM_MedStream(benchmark::State& s) { run_streaming(s, "MED"); }
void BM_Med25Stream(benchmark::State& s) { run_streaming(s, "MED25"); }
void BM_LvStream(benchmark::State& s) { run_streaming(s, "LV"); }
void BM_ArStream(benchmark::State& s) { run_streaming(s, "AR"); }
void BM_AvgClassifiedStream(benchmark::State& s) {
  run_streaming(s, "AVG/fs");
}
void BM_ArClassifiedStream(benchmark::State& s) { run_streaming(s, "AR/fs"); }

BENCHMARK(BM_Avg)->Arg(100)->Arg(400)->Arg(3200);
BENCHMARK(BM_Avg25)->Arg(100)->Arg(400)->Arg(3200);
BENCHMARK(BM_Med)->Arg(100)->Arg(400)->Arg(3200);
BENCHMARK(BM_Med25)->Arg(100)->Arg(400)->Arg(3200);
BENCHMARK(BM_Lv)->Arg(100)->Arg(400)->Arg(3200);
BENCHMARK(BM_Ar)->Arg(100)->Arg(400)->Arg(3200);
BENCHMARK(BM_AvgClassified)->Arg(100)->Arg(400)->Arg(3200);
BENCHMARK(BM_ArClassified)->Arg(100)->Arg(400)->Arg(3200);

BENCHMARK(BM_AvgStream)->Arg(100)->Arg(400)->Arg(3200);
BENCHMARK(BM_Avg25Stream)->Arg(100)->Arg(400)->Arg(3200);
BENCHMARK(BM_MedStream)->Arg(100)->Arg(400)->Arg(3200);
BENCHMARK(BM_Med25Stream)->Arg(100)->Arg(400)->Arg(3200);
BENCHMARK(BM_LvStream)->Arg(100)->Arg(400)->Arg(3200);
BENCHMARK(BM_ArStream)->Arg(100)->Arg(400)->Arg(3200);
BENCHMARK(BM_AvgClassifiedStream)->Arg(100)->Arg(400)->Arg(3200);
BENCHMARK(BM_ArClassifiedStream)->Arg(100)->Arg(400)->Arg(3200);

}  // namespace
}  // namespace wadp::predict

BENCHMARK_MAIN();
