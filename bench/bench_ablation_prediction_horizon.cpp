// Ablation: prediction horizon — does history go stale?
//
// For every evaluated transfer we measure the *gap* since the previous
// same-class observation and relate it to prediction error, **within
// each size class** (across classes the comparison is confounded:
// rare classes have long gaps AND low error).  Two views per link:
// gap-bucket means for the populous 10 MB class, and the per-class
// Pearson correlation between gap and error.
//
// Expected shape given the load model (MODEL.md §3, correlation time
// ~30-60 min): recency-based predictors (LV) show a positive gap-error
// relationship over sub-hour gaps and flatten beyond, while wide-window
// means barely care — they never tracked the instantaneous load.  This
// staleness cliff is what limited cross-site replica selection on
// symmetric links and what active probing attacks.
#include "common.hpp"

#include <cmath>

namespace wadp::bench {
namespace {

struct GapSample {
  double gap = 0.0;
  double avg15_error = 0.0;
  double lv_error = 0.0;
  bool avg15_valid = false;
  bool lv_valid = false;
};

std::vector<GapSample> collect(const std::vector<predict::Observation>& series,
                               int wanted_class) {
  const auto classifier = predict::SizeClassifier::paper_classes();
  const predict::ClassifiedPredictor avg15(
      std::make_shared<predict::MeanPredictor>(
          "AVG15", predict::WindowSpec::last_n(15)),
      classifier);
  const predict::ClassifiedPredictor lv(
      std::make_shared<predict::LastValuePredictor>(), classifier);

  std::vector<GapSample> out;
  for (std::size_t i = 15; i < series.size(); ++i) {
    const auto& target = series[i];
    const int cls = classifier.classify(target.file_size);
    if (cls != wanted_class) continue;
    double gap = -1.0;
    for (std::size_t j = i; j-- > 0;) {
      if (classifier.classify(series[j].file_size) == cls) {
        gap = target.time - series[j].time;
        break;
      }
    }
    if (gap < 0.0) continue;

    const auto history = std::span<const predict::Observation>(series).first(i);
    const predict::Query query{.time = target.time,
                               .file_size = target.file_size};
    GapSample sample;
    sample.gap = gap;
    if (const auto p = avg15.predict(history, query)) {
      sample.avg15_error = util::percent_error(target.value, *p);
      sample.avg15_valid = true;
    }
    if (const auto p = lv.predict(history, query)) {
      sample.lv_error = util::percent_error(target.value, *p);
      sample.lv_valid = true;
    }
    out.push_back(sample);
  }
  return out;
}

/// Pearson r between gap and error over the valid samples.
std::optional<double> gap_error_correlation(
    const std::vector<GapSample>& samples, bool use_lv) {
  std::vector<double> gaps, errors;
  for (const auto& s : samples) {
    if (use_lv ? s.lv_valid : s.avg15_valid) {
      gaps.push_back(std::log10(std::max(s.gap, 60.0)));
      errors.push_back(use_lv ? s.lv_error : s.avg15_error);
    }
  }
  const auto fit = util::linear_fit(gaps, errors);
  if (!fit) return std::nullopt;
  const double r = std::sqrt(fit->r2);
  return fit->slope < 0 ? -r : r;
}

void run_link(const char* link,
              const std::vector<predict::Observation>& series) {
  const auto classifier = predict::SizeClassifier::paper_classes();
  std::printf("\n%s-ANL\n", link);

  // View 1: gap buckets within the populous 10 MB class.
  {
    const auto samples = collect(series, 0);
    struct Bucket {
      const char* label;
      double max_gap;
      util::RunningStats avg15, lv;
    } buckets[] = {
        {"< 30 min", 1800.0, {}, {}},
        {"30 min - 2 h", 7200.0, {}, {}},
        {"2-12 h", 12 * 3600.0, {}, {}},
        {"> 12 h", 1e18, {}, {}},
    };
    for (const auto& s : samples) {
      for (auto& b : buckets) {
        if (s.gap <= b.max_gap) {
          if (s.avg15_valid) b.avg15.add(s.avg15_error);
          if (s.lv_valid) b.lv.add(s.lv_error);
          break;
        }
      }
    }
    util::TextTable table({"gap (10MB class only)", "n", "AVG15/fs %err",
                           "LV/fs %err"});
    table.set_align(0, util::TextTable::Align::Left);
    for (const auto& b : buckets) {
      table.add_row({b.label, std::to_string(b.lv.count()),
                     fmt(b.avg15.mean()), fmt(b.lv.mean())});
    }
    std::printf("%s", table.render().c_str());
  }

  // View 2: per-class gap/error correlation.
  {
    util::TextTable table({"class", "n", "r(gap, AVG15 err)",
                           "r(gap, LV err)"});
    table.set_align(0, util::TextTable::Align::Left);
    for (int cls = 0; cls < classifier.num_classes(); ++cls) {
      const auto samples = collect(series, cls);
      const auto r_avg = gap_error_correlation(samples, false);
      const auto r_lv = gap_error_correlation(samples, true);
      table.add_row({classifier.class_label(cls),
                     std::to_string(samples.size()),
                     r_avg ? fmt(*r_avg, 2) : "n/a",
                     r_lv ? fmt(*r_lv, 2) : "n/a"});
    }
    std::printf("%s", table.render().c_str());
  }
}

}  // namespace
}  // namespace wadp::bench

int main() {
  using namespace wadp::bench;
  banner("Ablation: prediction horizon (staleness of history)",
         "within a class, does error grow with the gap since the last "
         "observation?");
  auto data = run_campaign(wadp::workload::Campaign::kAugust2001);
  run_link("LBL", data.lbl);
  run_link("ISI", data.isi);
  std::printf(
      "\nreading: in the >=100MB classes LV's error correlates positively\n"
      "with gap (r ~ 0.33-0.37) — its only asset, recency, decays with\n"
      "the load's correlation time — while the 15-sample mean barely\n"
      "cares (|r| <= ~0.3, mostly ~0).  In the 10MB class slow-start\n"
      "noise swamps the staleness signal entirely.  This is why the\n"
      "paper saw no benefit from window tuning on its controlled\n"
      "workload, and why active probing must sample faster than the\n"
      "correlation time to add value.\n");
  return 0;
}
