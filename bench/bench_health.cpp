// Health-plane budgets: scrape overhead and alert latency.
//
// Two panels back the observability plane's claims:
//
//  * SCRAPE OVERHEAD — the `wadp serve` fleet (admission disabled, the
//    cached read path) runs paced batches while a MetricsRecorder
//    scrapes the global registry at a 10 Hz wall cadence — ten times
//    the default one-second cadence, so the gate holds margin.  The
//    enforced bound: total time inside scrape+evaluate <= 1% of the
//    loop's wall time.  A scrape that locked writers or walked
//    histogram buckets per-quantile would blow this immediately.
//
//  * ALERT LATENCY — a staged incident on the two-replica delivery
//    stack: transfers flow cleanly until the fault injector (every
//    attempt refused) is attached mid-run, retry exhaustion starts
//    climbing, and the resilience.retry_exhaustion burn-rate rule must
//    fire within two scrape intervals of the fault.  Virtual time, so
//    the measured lag is exact and enforced.
//
// The alert also triggers a flight-recorder capture; the bundle's ULM
// twin must round-trip through util::parse_ulm_log with zero skipped
// lines (CI additionally parses the JSON twin with Python).  Emits
// BENCH_health.json.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "history/store.hpp"
#include "mds/giis.hpp"
#include "mds/gridftp_provider.hpp"
#include "obs/events.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "replica/broker.hpp"
#include "replica/catalog.hpp"
#include "replica/fetcher.hpp"
#include "resilience/fault.hpp"
#include "resilience/retry.hpp"
#include "serving/frontend.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/ulm.hpp"

namespace wadp::bench {
namespace {

// --- Panel 1: scrape overhead over the paced serving loop. ---

constexpr std::size_t kBatch = 256;
constexpr double kServeSeconds = 1.0;     ///< minimum timed loop span
constexpr double kScrapeCadence = 0.1;    ///< 10 Hz wall-clock scrapes
constexpr double kOverheadGate = 0.01;    ///< scrape share of wall time

const std::vector<std::string> kSites = {"lbl", "isi", "anl"};
const std::vector<std::string> kHosts = {"dpsslx04.lbl.gov", "jet.isi.edu",
                                         "pitcairn.mcs.anl.gov"};
const std::string kClient = "140.221.65.69";
const std::vector<Bytes> kSizeMix = {1 * kMB, 10 * kMB, 100 * kMB, 1000 * kMB};

struct OverheadResult {
  std::size_t queries = 0;
  double serve_wall = 0.0;   ///< whole loop, scrapes included
  double scrape_wall = 0.0;  ///< time inside scrape+evaluate
  std::uint64_t scrapes = 0;
  std::size_t series = 0;
  double ratio() const {
    return serve_wall > 0.0 ? scrape_wall / serve_wall : 0.0;
  }
};

OverheadResult run_overhead_panel() {
  // The `wadp serve` fleet: three paper hosts, 64 files on rotating
  // pairs, empty GIIS so fills flow through the history fallback.
  auto store = std::make_shared<history::HistoryStore>();
  util::Rng rng(kSeed);
  for (std::size_t h = 0; h < kHosts.size(); ++h) {
    const history::SeriesKey key{.host = kHosts[h], .remote_ip = kClient,
                                 .op = gridftp::Operation::kRead};
    const double base = 2e6 * static_cast<double>(h + 1);
    for (int i = 0; i < 40; ++i) {
      store->append(key, predict::Observation{
                             .time = 60.0 * i,
                             .value = base * rng.uniform(0.5, 1.5),
                             .file_size = kSizeMix[static_cast<std::size_t>(
                                 rng.uniform_int(0, 3))],
                             .ok = true});
    }
  }
  replica::ReplicaCatalog catalog;
  std::vector<std::string> lfns;
  for (int f = 0; f < 64; ++f) {
    std::string lfn = "lfn://data/" + std::to_string(f);
    for (int r = 0; r < 2; ++r) {
      const std::size_t h = static_cast<std::size_t>(f + r) % kHosts.size();
      catalog.add_replica(lfn, {.site = kSites[h],
                                .server_host = kHosts[h],
                                .path = "/data/" + std::to_string(f)});
    }
    lfns.push_back(std::move(lfn));
  }
  mds::Giis giis("top");
  replica::ReplicaBroker broker(catalog, giis,
                                replica::SelectionPolicy::kPredictedBest,
                                kSeed);
  broker.bind_history(store.get());
  serving::ServingConfig config;
  config.admission.admit_rate = 0.0;  // disabled: pure cached read path
  serving::ServingFrontend frontend(broker, catalog, store, config);

  obs::MetricsRecorder recorder;
  obs::HealthMonitor monitor(recorder);
  monitor.add_rules(obs::HealthMonitor::builtin_rules(kScrapeCadence));

  using clock = std::chrono::steady_clock;
  std::vector<serving::Query> queries(kBatch);
  OverheadResult result;
  double now = 3600.0;
  const auto start = clock::now();
  auto next_scrape = start + std::chrono::duration_cast<clock::duration>(
                                 std::chrono::duration<double>(kScrapeCadence));
  const auto deadline = start + std::chrono::duration_cast<clock::duration>(
                                    std::chrono::duration<double>(kServeSeconds));
  while (clock::now() < deadline) {
    for (std::size_t i = 0; i < kBatch; ++i) {
      queries[i] = serving::Query{
          .logical_name = lfns[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(lfns.size()) - 1))],
          .client_ip = kClient,
          .size = kSizeMix[static_cast<std::size_t>(rng.uniform_int(0, 3))]};
    }
    frontend.select_many(std::span(queries.data(), kBatch), now);
    result.queries += kBatch;
    now += static_cast<double>(kBatch) / 200'000.0;
    if (clock::now() >= next_scrape) {
      const auto scrape_start = clock::now();
      recorder.scrape(now);
      monitor.evaluate(now);
      result.scrape_wall +=
          std::chrono::duration<double>(clock::now() - scrape_start).count();
      ++result.scrapes;
      next_scrape += std::chrono::duration_cast<clock::duration>(
          std::chrono::duration<double>(kScrapeCadence));
    }
  }
  result.serve_wall = std::chrono::duration<double>(clock::now() - start).count();
  result.series = recorder.series_count();
  return result;
}

// --- Panel 2: staged incident, alert latency, flight capture. ---

constexpr double kInterval = 60.0;       ///< scrape interval, sim seconds
constexpr SimTime kFaultTime = 1205.0;   ///< injector attached here
constexpr SimTime kIncidentEnd = 1800.0;
constexpr Duration kIssueSpacing = 2.0;  ///< one fetch every two seconds
constexpr Bytes kFileSize = 10 * kMB;

net::PathParams quiet_path(Bandwidth bottleneck) {
  net::PathParams p;
  p.bottleneck = bottleneck;
  p.rtt = 0.05;
  p.load.base = 0.0;
  p.load.diurnal_amplitude = 0.0;
  p.load.ar_sigma = 0.0;
  p.load.episode_rate_per_hour = 0.0;
  return p;
}

struct IncidentResult {
  double alert_time = -1.0;   ///< first retry-exhaustion fire, sim time
  std::uint64_t scrapes = 0;
  int ok = 0;
  std::optional<obs::BundleInfo> bundle;
  double lag() const { return alert_time < 0.0 ? -1.0 : alert_time - kFaultTime; }
};

IncidentResult run_incident_panel() {
  sim::Simulator sim(0.0);
  net::FluidEngine engine(sim);
  net::Topology topology;
  topology.add_path("lbl", "anl", quiet_path(10'000'000.0), 1, 0.0);
  topology.add_path("anl", "lbl", quiet_path(10'000'000.0), 2, 0.0);
  topology.add_path("isi", "anl", quiet_path(5'000'000.0), 3, 0.0);
  topology.add_path("anl", "isi", quiet_path(5'000'000.0), 4, 0.0);

  storage::StorageParams quiet_storage;
  quiet_storage.local_load.reset();
  storage::StorageSystem anl_store("anl", quiet_storage, 1, 0.0);
  storage::StorageSystem lbl_store("lbl", quiet_storage, 2, 0.0);
  storage::StorageSystem isi_store("isi", quiet_storage, 3, 0.0);
  gridftp::GridFtpServer lbl(
      {.site = "lbl", .host = "dpsslx04.lbl.gov", .ip = "131.243.2.91"},
      lbl_store);
  gridftp::GridFtpServer isi(
      {.site = "isi", .host = "jet.isi.edu", .ip = "128.9.160.100"},
      isi_store);
  for (gridftp::GridFtpServer* s : {&lbl, &isi}) {
    s->fs().add_volume("/data");
    s->fs().add_file("/data/demo", kFileSize);
  }
  for (int i = 0; i < 5; ++i) {
    const double t = 100.0 * i;
    lbl.record_transfer(kClient, "/data/demo", kFileSize, t, t + 1.25,
                        gridftp::Operation::kRead, 8, 1'000'000);
    isi.record_transfer(kClient, "/data/demo", kFileSize, t, t + 5.0,
                        gridftp::Operation::kRead, 8, 1'000'000);
  }
  mds::GridFtpInfoProvider lbl_provider(
      lbl,
      {.base = *mds::Dn::parse("hostname=dpsslx04.lbl.gov, dc=lbl, o=grid")});
  mds::GridFtpInfoProvider isi_provider(
      isi, {.base = *mds::Dn::parse("hostname=jet.isi.edu, dc=isi, o=grid")});
  mds::Gris lbl_gris("lbl-gris", *mds::Dn::parse("dc=lbl, o=grid"));
  mds::Gris isi_gris("isi-gris", *mds::Dn::parse("dc=isi, o=grid"));
  lbl_gris.register_provider(&lbl_provider, 300.0);
  isi_gris.register_provider(&isi_provider, 300.0);
  mds::Giis giis("top");
  giis.register_gris(lbl_gris, 0.0, 1e9);
  giis.register_gris(isi_gris, 0.0, 1e9);
  replica::ReplicaCatalog catalog;
  catalog.add_replica("lfn://demo", {.site = "lbl",
                                     .server_host = "dpsslx04.lbl.gov",
                                     .path = "/data/demo"});
  catalog.add_replica("lfn://demo", {.site = "isi",
                                     .server_host = "jet.isi.edu",
                                     .path = "/data/demo"});

  gridftp::GridFtpClient client(sim, engine, topology, "anl", kClient,
                                &anl_store);
  replica::ReplicaBroker broker(catalog, giis,
                                replica::SelectionPolicy::kPredictedBest,
                                kSeed);
  replica::FailoverFetcher fetcher(
      sim, broker, client, [&](const replica::PhysicalReplica& replica) {
        return replica.site == "lbl" ? &lbl : &isi;
      });

  // Every attempt refused once the injector is attached; no outage
  // process (the fault edge must be the attach instant, nothing else).
  resilience::FaultSpec spec;
  spec.connect_failure_rate = 1.0;
  spec.mean_fault_delay = 0.1;
  spec.mean_outage = 0.0;
  resilience::FaultInjector injector(sim, spec, kSeed ^ 0x4e5);
  sim.schedule_at(kFaultTime, [&] { client.set_fault_injector(&injector); });

  // Two quick attempts, then exhaustion — keeps the signal's onset
  // within seconds of the fault so the measured lag is the monitor's.
  resilience::RetryPolicy policy;
  policy.max_attempts = 2;
  policy.base_backoff = 1.0;
  policy.jitter = 0.0;
  client.set_retry_policy(policy, kSeed);

  obs::MetricsRecorder recorder;
  obs::HealthMonitor monitor(recorder);
  monitor.add_rules(obs::HealthMonitor::builtin_rules(kInterval));

  obs::FlightConfig flight_config;
  flight_config.dir = "bench_flight";
  obs::FlightRecorder flight(&recorder, &obs::Tracer::global(),
                             &obs::EventSink::global(), flight_config);

  IncidentResult result;
  monitor.set_on_alert([&](const obs::SloStatus& status, double now) {
    if (status.rule.name == "resilience.retry_exhaustion" &&
        result.alert_time < 0.0) {
      result.alert_time = now;
      auto bundle = flight.capture(status.rule.name, now);
      if (bundle.ok()) result.bundle = std::move(bundle.value());
    }
  });

  for (SimTime t = kInterval; t <= kIncidentEnd; t += kInterval) {
    sim.schedule_at(t, [&, t] {
      recorder.scrape(t);
      monitor.evaluate(t);
    });
  }
  for (SimTime issue = 100.0; issue < kIncidentEnd; issue += kIssueSpacing) {
    sim.schedule_at(issue, [&] {
      fetcher.fetch("lfn://demo", kFileSize, {},
                    [&](const replica::FetchOutcome& outcome) {
                      if (outcome.ok) ++result.ok;
                    });
    });
  }
  sim.run();
  result.scrapes = recorder.scrapes();
  return result;
}

/// Round-trips the bundle's ULM twin; returns parsed records, or -1 on
/// any skipped line / read failure.
long ulm_round_trip(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return -1;
  std::ostringstream body;
  body << in.rdbuf();
  const util::UlmParseResult parsed = util::parse_ulm_log(body.str());
  if (parsed.skipped_lines != 0) return -1;
  return static_cast<long>(parsed.records.size());
}

int run() {
  banner("Health plane: scrape overhead and alert latency",
         "a 10 Hz registry scrape must cost <= 1% of serving wall time; "
         "a staged fault must alert within two scrape intervals and "
         "leave a parseable flight bundle");

  const OverheadResult overhead = run_overhead_panel();
  const IncidentResult incident = run_incident_panel();
  const long ulm_records =
      incident.bundle ? ulm_round_trip(incident.bundle->ulm_path) : -1;

  util::TextTable table({"measurement", "value", "target"});
  table.set_align(0, util::TextTable::Align::Left);
  table.add_row({"serving throughput",
                 fmt(overhead.queries / overhead.serve_wall / 1e6, 2) +
                     " Mq/s",
                 "-"});
  table.add_row({"scrapes taken", std::to_string(overhead.scrapes),
                 fmt(kServeSeconds / kScrapeCadence, 0)});
  table.add_row({"series recorded", std::to_string(overhead.series), "-"});
  table.add_row({"scrape overhead",
                 fmt(100.0 * overhead.ratio(), 3) + " %", "<= 1 %"});
  table.add_row({"incident transfers ok", std::to_string(incident.ok), "-"});
  table.add_row({"alert lag",
                 incident.alert_time < 0.0 ? std::string("NO ALERT")
                                           : fmt(incident.lag(), 0) + " s",
                 "<= " + fmt(2.0 * kInterval, 0) + " s"});
  table.add_row({"flight bundle",
                 incident.bundle ? incident.bundle->json_path : "MISSING",
                 "written"});
  table.add_row({"bundle ULM records",
                 ulm_records < 0 ? std::string("PARSE FAIL")
                                 : std::to_string(ulm_records),
                 "> 0, 0 skipped"});
  std::printf("%s\n", table.render().c_str());

  auto& registry = obs::Registry::global();
  registry.gauge("wadp_bench_health_scrape_overhead_ratio", {},
                 "Scrape+evaluate wall time / serving loop wall time at 10 Hz")
      .set(overhead.ratio());
  registry.gauge("wadp_bench_health_scrape_mean_seconds", {},
                 "Mean wall time of one scrape+evaluate round")
      .set(overhead.scrapes > 0
               ? overhead.scrape_wall / static_cast<double>(overhead.scrapes)
               : 0.0);
  registry.gauge("wadp_bench_health_serving_qps", {},
                 "Serving throughput with the 10 Hz scrape cadence attached")
      .set(overhead.queries / overhead.serve_wall);
  registry.gauge("wadp_bench_health_alert_lag_seconds", {},
                 "Sim seconds from fault injection to the burn-rate alert")
      .set(incident.lag());
  registry.gauge("wadp_bench_health_alert_lag_intervals", {},
                 "Alert lag in scrape intervals")
      .set(incident.lag() / kInterval);
  registry.gauge("wadp_bench_health_bundle_ulm_records", {},
                 "Records round-tripped from the flight bundle's ULM twin")
      .set(static_cast<double>(ulm_records));
  const auto written =
      obs::write_bench_json("BENCH_health.json", "health", registry);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.error().c_str());
    return 1;
  }
  std::printf("wrote BENCH_health.json\n");

  bool ok = true;
  if (overhead.ratio() > kOverheadGate) {
    std::fprintf(stderr, "FAIL: scrape overhead %.4f > %.2f\n",
                 overhead.ratio(), kOverheadGate);
    ok = false;
  }
  if (incident.alert_time < 0.0 || incident.lag() > 2.0 * kInterval) {
    std::fprintf(stderr, "FAIL: alert lag %.1f s (limit %.1f s)\n",
                 incident.lag(), 2.0 * kInterval);
    ok = false;
  }
  if (!incident.bundle.has_value() || ulm_records <= 0) {
    std::fprintf(stderr, "FAIL: flight bundle missing or ULM did not "
                         "round-trip cleanly\n");
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace wadp::bench

int main() { return wadp::bench::run(); }
