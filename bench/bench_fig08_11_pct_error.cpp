// Figures 8-11: percent absolute error of the fifteen predictors for
// LBL-ANL and ISI-ANL, one figure per file-size class (10 MB, 100 MB,
// 500 MB, 1 GB).
//
// Predictions are scored with the paper's metric
// |measured - predicted| / measured * 100 after a 15-value training
// prefix.  Each class table reports the context-sensitive battery
// (history partitioned by size class) and, for reference, the plain
// battery's error on the same transfers.
#include "common.hpp"

namespace wadp::bench {
namespace {

void run() {
  auto data = run_campaign(workload::Campaign::kAugust2001);
  const auto suite = predict::PredictorSuite::paper_suite();
  const predict::Evaluator evaluator;
  const auto lbl = evaluator.run(data.lbl, suite.pointers());
  const auto isi = evaluator.run(data.isi, suite.pointers());
  const auto classifier = predict::SizeClassifier::paper_classes();

  for (int cls = 0; cls < classifier.num_classes(); ++cls) {
    std::printf("\nFigure %d: %% error, %s class (%s)\n", 8 + cls,
                classifier.class_label(cls).c_str(),
                classifier.class_name(cls).c_str());
    util::TextTable table({"Predictor", "LBL %err (fs)", "ISI %err (fs)",
                           "LBL %err (plain)", "ISI %err (plain)"});
    double worst_fs = 0.0;
    for (const auto& name : predict::PredictorSuite::figure4_names()) {
      const auto fs_index = *lbl.index_of(name + "/fs");
      const auto plain_index = *lbl.index_of(name);
      const auto& lbl_fs = lbl.errors(fs_index, cls);
      const auto& isi_fs = isi.errors(fs_index, cls);
      worst_fs = std::max({worst_fs, lbl_fs.mean(), isi_fs.mean()});
      table.add_row({name, fmt(lbl_fs.mean()), fmt(isi_fs.mean()),
                     fmt(lbl.errors(plain_index, cls).mean()),
                     fmt(isi.errors(plain_index, cls).mean())});
    }
    std::printf("%s", table.render().c_str());
    std::printf("transfers evaluated: LBL %zu, ISI %zu; worst classified "
                "error in class: %.1f%%\n",
                lbl.evaluated_transfers(cls), isi.evaluated_transfers(cls),
                worst_fs);
  }
  std::printf(
      "\npaper shape check: 'even simple techniques are at worst off by\n"
      "about 25%%' for >=100MB classes; small (10MB) class least\n"
      "predictable; ARIMA no better than mean/median on irregular data.\n");
}

}  // namespace
}  // namespace wadp::bench

int main() {
  wadp::bench::banner(
      "Figures 8-11: predictor % error by file-size class (Aug 2001)",
      "worst ~25% for large classes; small transfers less predictable");
  wadp::bench::run();
  return 0;
}
