// Ablation: why 8 parallel streams and 1 MB buffers (Section 6.1).
//
// The paper tuned transfers with buffer = RTT x bottleneck and eight
// flows.  Sweeps streams x buffer on the LBL->ANL link under a fixed
// mid-campaign load and reports the achieved bandwidth of a 100 MB
// transfer for each combination.
#include "common.hpp"

namespace wadp::bench {
namespace {

double measure(int streams, Bytes buffer) {
  workload::Testbed testbed(workload::Campaign::kAugust2001, kSeed);
  auto& client = testbed.client("anl");
  auto& server = testbed.server("lbl");
  // Jump to the first evening so load conditions match the campaign's.
  testbed.sim().run_until(testbed.start_time() + 20 * 3600.0);
  double bandwidth = 0.0;
  client.get(server, workload::paper_file_path(100 * kMB),
             {.streams = streams, .buffer = buffer},
             [&](const gridftp::TransferOutcome& outcome) {
               if (outcome.ok) bandwidth = outcome.record.bandwidth();
             });
  testbed.sim().run_until(testbed.sim().now() + 7200.0);
  return bandwidth;
}

void run() {
  const std::vector<int> streams = {1, 2, 4, 8, 16};
  const std::vector<std::pair<std::string, Bytes>> buffers = {
      {"32KB", 32 * kKiB},
      {"64KB", 64 * kKiB},
      {"256KB", 256 * kKiB},
      {"1MB", 1'000'000},
      {"4MB", 4'000'000}};

  std::vector<std::string> headers = {"streams \\ buffer"};
  for (const auto& [label, bytes] : buffers) headers.push_back(label);
  util::TextTable table(headers);
  for (const int n : streams) {
    std::vector<std::string> row = {std::to_string(n)};
    for (const auto& [label, bytes] : buffers) {
      row.push_back(fmt(to_mb_per_sec(measure(n, bytes)), 2));
    }
    table.add_row(std::move(row));
  }
  std::printf("achieved bandwidth (MB/s) for a 100 MB transfer, LBL->ANL\n\n");
  std::printf("%s\n", table.render().c_str());
  const double rtt_bw_product = 0.055 * 12.5e6;
  std::printf(
      "reading: throughput saturates once streams x buffer covers the\n"
      "bandwidth-delay product (~%.0f KB here) AND enough of the ramp is\n"
      "amortized; the paper's 8 x 1MB sits comfortably past the knee.\n",
      rtt_bw_product / 1000.0);
}

}  // namespace
}  // namespace wadp::bench

int main() {
  wadp::bench::banner(
      "Ablation: parallel streams x TCP buffer sweep (Section 6.1 tuning)",
      "the paper used 8 streams and 1 MB buffers from RTT x bottleneck");
  wadp::bench::run();
  return 0;
}
