// Ablation / future work (Section 7): NWS-style dynamic predictor
// selection over the paper's battery.
//
// Replays each link's series through a DynamicSelector that always
// answers with the historically most accurate battery member, and
// compares its online error against every fixed predictor's.
#include "common.hpp"

namespace wadp::bench {
namespace {

struct OnlineScore {
  double error_sum = 0.0;
  std::size_t count = 0;
  double mean() const {
    return count ? error_sum / static_cast<double>(count) : 0.0;
  }
};

OnlineScore replay_selector(const std::vector<predict::Observation>& series,
                            predict::DynamicSelector& selector,
                            std::size_t training) {
  OnlineScore score;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i >= training) {
      const auto p = selector.predict(
          {.time = series[i].time, .file_size = series[i].file_size});
      if (p) {
        score.error_sum += util::percent_error(series[i].value, *p);
        ++score.count;
      }
    }
    selector.observe(series[i]);
  }
  return score;
}

void run_link(const char* link,
              const std::vector<predict::Observation>& series) {
  const auto battery = predict::PredictorSuite::context_sensitive();
  const predict::Evaluator evaluator;
  const auto fixed = evaluator.run(series, battery.pointers());

  std::printf("\n%s-ANL (n=%zu)\n", link, series.size());
  util::TextTable table({"Predictor", "mean %err"});
  double best_fixed = 1e18;
  std::string best_name;
  for (std::size_t p = 0; p < battery.size(); ++p) {
    const double err = fixed.errors(p).mean();
    if (err < best_fixed) {
      best_fixed = err;
      best_name = fixed.predictor_names()[p];
    }
    table.add_row({fixed.predictor_names()[p], fmt(err)});
  }

  predict::DynamicSelector selector("DYN", battery.predictors());
  const auto dyn = replay_selector(series, selector, 15);
  table.add_row({"DYN (dynamic selection)", fmt(dyn.mean())});
  std::printf("%s", table.render().c_str());
  std::printf("best fixed: %s at %.1f%%; DYN %.1f%% (final choice: %s)\n",
              best_name.c_str(), best_fixed, dyn.mean(),
              selector.current_choice().c_str());
}

}  // namespace
}  // namespace wadp::bench

int main() {
  using namespace wadp::bench;
  banner("Ablation: NWS-style dynamic predictor selection (Section 7)",
         "dynamic selection should track the best fixed predictor without "
         "knowing it in advance");
  auto data = run_campaign(wadp::workload::Campaign::kAugust2001);
  run_link("LBL", data.lbl);
  run_link("ISI", data.isi);
  return 0;
}
