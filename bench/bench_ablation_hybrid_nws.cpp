// Ablation / future work (Section 7): combining sporadic GridFTP
// measurements with regular NWS probes "to overcome the drawbacks of
// each approach in isolation".
//
// Runs a campaign with an NWS sensor alive on the same link, then
// compares the hybrid ratio predictor against the pure-GridFTP battery
// on the same transfers.  The hybrid should shine exactly where sparse
// history hurts: long gaps since the last same-class transfer.
#include "common.hpp"

#include "nws/forecaster.hpp"
#include "nws/sensor.hpp"

namespace wadp::bench {
namespace {

void run_link(const char* src) {
  workload::Testbed testbed(workload::Campaign::kAugust2001, kSeed);
  auto* path = testbed.topology().find(src, "anl");
  nws::NwsSensor sensor(testbed.sim(), testbed.engine(), *path, {});
  workload::CampaignDriver driver(testbed, "anl", src, {}, kSeed ^ 0x31);
  driver.start();
  testbed.sim().run_until(driver.end_time() + 3600.0);
  sensor.stop();

  const auto series = history::observations_from_records(
      testbed.server(src).log().records(),
      {.remote_ip = testbed.client("anl").ip()});

  // Candidate set: hybrid + representative fixed predictors.
  nws::HybridNwsPredictor hybrid("HYBRID", &sensor.series());
  auto classified_avg15 = std::make_shared<predict::ClassifiedPredictor>(
      std::make_shared<predict::MeanPredictor>("AVG15",
                                               predict::WindowSpec::last_n(15)),
      predict::SizeClassifier::paper_classes());
  predict::LastValuePredictor lv;
  predict::MeanPredictor avg("AVG", predict::WindowSpec::all());

  const std::vector<const predict::Predictor*> predictors = {
      &hybrid, classified_avg15.get(), &lv, &avg};
  const predict::Evaluator evaluator;
  const auto result = evaluator.run(series, predictors);

  std::printf("\n%s-ANL: %zu transfers, %zu probes\n", src, series.size(),
              sensor.series().size());
  util::TextTable table({"Predictor", "mean %err", "answered"});
  for (std::size_t p = 0; p < predictors.size(); ++p) {
    table.add_row({result.predictor_names()[p],
                   fmt(result.errors(p).mean()),
                   std::to_string(result.relative(p).opportunities)});
  }
  std::printf("%s", table.render().c_str());
}

}  // namespace
}  // namespace wadp::bench

int main() {
  using namespace wadp::bench;
  banner("Ablation: hybrid GridFTP+NWS predictor (Section 7 future work)",
         "regular probes supply the timing signal, sporadic transfers the "
         "level; the hybrid competes with the fixed battery");
  run_link("lbl");
  run_link("isi");
  return 0;
}
