// Section 5.1 claim: "a log of approximately 100 KB, around 700 log
// entries, took the information provider approximately 1 to 2 seconds
// to filter, classify the entries into object classes, and compute
// predictions."
//
// Measures our provider on logs of 175-2800 entries (the paper's 700 in
// the middle).  The paper's figure reflects LDAP shell-backend scripts
// forking per query; an in-process provider should be orders of
// magnitude faster while doing the same filtering/classification work.
#include <benchmark/benchmark.h>

#include "mds/gridftp_provider.hpp"
#include "util/rng.hpp"

namespace wadp::mds {
namespace {

storage::StorageParams dedicated() {
  storage::StorageParams p;
  p.local_load.reset();
  return p;
}

void fill_log(gridftp::GridFtpServer& server, int entries) {
  util::Rng rng(7);
  const std::vector<Bytes> sizes = {1 * kMB,   10 * kMB,  100 * kMB,
                                    500 * kMB, 1000 * kMB};
  const std::vector<std::string> remotes = {"140.221.65.69", "128.9.160.100",
                                            "131.243.2.91"};
  double t = 1000.0;
  for (int i = 0; i < entries; ++i) {
    const Bytes size = sizes[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(sizes.size()) - 1))];
    const auto& remote = remotes[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(remotes.size()) - 1))];
    const double duration =
        static_cast<double>(size) / rng.uniform(2e6, 9e6);
    server.record_transfer(remote, "/home/ftp/f", size, t, t + duration,
                           rng.uniform() < 0.8 ? gridftp::Operation::kRead
                                               : gridftp::Operation::kWrite,
                           8, 1'000'000);
    t += rng.uniform(60.0, 1800.0);
  }
}

void BM_ProviderProvide(benchmark::State& state) {
  storage::StorageSystem storage("lbl", dedicated(), 1, 0.0);
  gridftp::GridFtpServer server(
      {.site = "lbl", .host = "dpsslx04.lbl.gov", .ip = "131.243.2.91"},
      storage);
  server.fs().add_volume("/home/ftp");
  fill_log(server, static_cast<int>(state.range(0)));
  GridFtpInfoProvider provider(
      server,
      {.base = *Dn::parse("hostname=dpsslx04.lbl.gov, dc=lbl, o=grid")});
  for (auto _ : state) {
    auto entries = provider.provide(1e9);
    benchmark::DoNotOptimize(entries);
  }
  state.counters["log_entries"] = static_cast<double>(state.range(0));
  state.SetLabel("paper: ~700 entries in 1-2 s via LDAP shell scripts");
}
BENCHMARK(BM_ProviderProvide)->Arg(175)->Arg(350)->Arg(700)->Arg(1400)->Arg(2800);

void BM_GrisSearchWithCache(benchmark::State& state) {
  storage::StorageSystem storage("lbl", dedicated(), 1, 0.0);
  gridftp::GridFtpServer server(
      {.site = "lbl", .host = "dpsslx04.lbl.gov", .ip = "131.243.2.91"},
      storage);
  server.fs().add_volume("/home/ftp");
  fill_log(server, 700);
  GridFtpInfoProvider provider(
      server,
      {.base = *Dn::parse("hostname=dpsslx04.lbl.gov, dc=lbl, o=grid")});
  Gris gris("lbl-gris", *Dn::parse("dc=lbl, o=grid"));
  gris.register_provider(&provider, 1e12);  // cache never expires
  const auto filter =
      Filter::parse("(&(objectclass=GridFTPPerfInfo)(avgrdbandwidth>=3000))");
  gris.search(0.0, *filter);  // warm the cache
  for (auto _ : state) {
    auto results = gris.search(1.0, *filter);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_GrisSearchWithCache);

void BM_FilterParse(benchmark::State& state) {
  const std::string text =
      "(&(objectclass=GridFTPPerfInfo)(|(hostname=*.lbl.gov)"
      "(hostname=*.anl.gov))(!(avgrdbandwidth<=1000)))";
  for (auto _ : state) {
    auto filter = Filter::parse(text);
    benchmark::DoNotOptimize(filter);
  }
}
BENCHMARK(BM_FilterParse);

}  // namespace
}  // namespace wadp::mds

BENCHMARK_MAIN();
