// Ablation: active file-transfer probing (Section 3's extension).
//
// A *sparse* client fetches only a handful of large files per night —
// so the instrumented log goes hours-stale between transfers.  We run
// the same sparse workload with and without an ActiveProber (10 MB
// tuned probes whenever the series is >2 h stale) and score predictions
// of the real transfers in both worlds.  Probes are identified in the
// log by their fixed 10 MB size; the sparse workload uses larger files
// only, so the separation is exact.
#include "common.hpp"

#include "predict/extended.hpp"
#include "workload/prober.hpp"

namespace wadp::bench {
namespace {

workload::CampaignConfig sparse_config() {
  workload::CampaignConfig config;
  config.file_sizes = {100 * kMB, 250 * kMB, 500 * kMB, 1000 * kMB};
  config.sleeps.min_sleep = 3600.0;      // >= 1 h between transfers
  config.sleeps.short_cap = 7200.0;
  config.sleeps.max_sleep = 36'000.0;
  config.sleeps.short_bias = 0.3;
  return config;
}

struct WorldResult {
  std::vector<predict::Observation> all;       // transfers + probes
  std::vector<predict::Observation> transfers; // the real (large) ones
  std::size_t probes = 0;
};

WorldResult run_world(bool with_prober) {
  workload::Testbed testbed(workload::Campaign::kAugust2001, kSeed);
  workload::CampaignDriver driver(testbed, "anl", "lbl", sparse_config(),
                                  kSeed ^ 0x5);
  driver.start();
  std::unique_ptr<workload::ActiveProber> prober;
  if (with_prober) {
    workload::ActiveProbeConfig probe_config;
    probe_config.probe_size = 10 * kMB;
    probe_config.check_period = 1800.0;
    probe_config.staleness = 7200.0;
    prober = std::make_unique<workload::ActiveProber>(testbed, "anl", "lbl",
                                                      probe_config);
  }
  testbed.sim().run_until(driver.end_time() + 86400.0);
  if (prober) prober->stop();

  WorldResult result;
  result.all = history::observations_from_records(
      testbed.server("lbl").log().records(),
      {.remote_ip = testbed.client("anl").ip()});
  for (const auto& o : result.all) {
    if (o.file_size != 10 * kMB) result.transfers.push_back(o);
  }
  result.probes = result.all.size() - result.transfers.size();
  return result;
}

/// Mean % error predicting the real transfers from the full visible
/// history (probes included when present).
double score(const WorldResult& world, const predict::Predictor& predictor) {
  double error_sum = 0.0;
  std::size_t count = 0;
  for (const auto& target : world.transfers) {
    // Visible history: everything logged strictly before this transfer.
    std::vector<predict::Observation> visible;
    for (const auto& o : world.all) {
      if (o.time < target.time) visible.push_back(o);
    }
    if (visible.size() < 15) continue;  // paper training prefix
    const auto p = predictor.predict(
        visible, {.time = target.time, .file_size = target.file_size});
    if (p) {
      error_sum += util::percent_error(target.value, *p);
      ++count;
    }
  }
  return count ? error_sum / static_cast<double>(count) : -1.0;
}

void run() {
  const auto without = run_world(false);
  const auto with = run_world(true);
  std::printf("sparse workload: %zu real transfers; prober added %zu probe "
              "transfers\n\n",
              with.transfers.size(), with.probes);

  // Predictors that can exploit fresh cross-size samples vs one that
  // cannot (classified mean ignores the 10 MB probes entirely for large
  // queries).
  const predict::MeanPredictor avg5hr(
      "AVG5hr", predict::WindowSpec::last_duration(5 * 3600.0));
  const predict::LastValuePredictor lv;
  const predict::SizeRegressionPredictor sreg("SREG",
                                              predict::WindowSpec::last_n(25));
  const predict::ClassifiedPredictor avg15_fs(
      std::make_shared<predict::MeanPredictor>(
          "AVG15", predict::WindowSpec::last_n(15)),
      predict::SizeClassifier::paper_classes());

  util::TextTable table({"predictor", "%err without probes",
                         "%err with probes"});
  table.set_align(0, util::TextTable::Align::Left);
  const auto row = [&](const predict::Predictor& p) {
    table.add_row({p.name(), fmt(score(without, p)), fmt(score(with, p))});
  };
  row(lv);
  row(avg5hr);
  row(sreg);
  row(avg15_fs);
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: probes keep recency-based predictors (LV, AVG5hr) and the\n"
      "size regression supplied with fresh samples; the class-filtered\n"
      "mean ignores 10MB probes when predicting large transfers, so it\n"
      "gains nothing — quantifying what the paper's proposed extension\n"
      "buys and for whom.\n");
}

}  // namespace
}  // namespace wadp::bench

int main() {
  wadp::bench::banner(
      "Ablation: active file-transfer probing on a sparse workload "
      "(Section 3 extension)",
      "regular probes keep the log fresh between rare real transfers");
  wadp::bench::run();
  return 0;
}
