// Observability overhead: the instruments wired through every hot path
// must be cheap enough to leave on.  The contract documented in
// obs/metrics.hpp is a <50 ns counter increment (one relaxed atomic
// add); histogram records are lock-free too (per-bucket relaxed
// atomics plus CAS aggregates — the contended case is measured here);
// RAII spans are allowed a clock pair but should stay well under a
// microsecond.
//
// Emits the registry snapshot through the JSON exporter afterwards, so
// the CI bench-smoke job uploads a BENCH_obs_overhead.json built by the
// same code path every other exporter consumer uses.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wadp::obs {
namespace {

void BM_CounterInc(benchmark::State& state) {
  Registry registry;
  Counter& counter = registry.counter("bench_ops_total");
  for (auto _ : state) {
    counter.inc();
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterInc);

void BM_CounterIncContended(benchmark::State& state) {
  static Registry registry;
  Counter& counter = registry.counter("bench_contended_total");
  for (auto _ : state) {
    counter.inc();
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterIncContended)->Threads(4);

void BM_GaugeSet(benchmark::State& state) {
  Registry registry;
  Gauge& gauge = registry.gauge("bench_depth");
  double v = 0.0;
  for (auto _ : state) {
    gauge.set(v);
    v += 1.0;
  }
  benchmark::DoNotOptimize(gauge.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramRecord(benchmark::State& state) {
  Registry registry;
  Histogram& histogram = registry.histogram("bench_latency_seconds");
  double v = 1.0;
  for (auto _ : state) {
    histogram.record(v);
    v = v < 1e6 ? v * 1.001 : 1.0;
  }
  benchmark::DoNotOptimize(histogram.count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramRecordContended(benchmark::State& state) {
  // Four writers on one histogram: with the per-bucket relaxed-atomic
  // design this scales like the contended counter, where the previous
  // mutex section would have serialized every record.
  static Registry registry;
  Histogram& histogram =
      registry.histogram("bench_contended_latency_seconds");
  double v = 1.0 + static_cast<double>(state.thread_index());
  for (auto _ : state) {
    histogram.record(v);
    v = v < 1e6 ? v * 1.001 : 1.0;
  }
  benchmark::DoNotOptimize(histogram.count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecordContended)->Threads(4);

void BM_RegistryResolve(benchmark::State& state) {
  // The once-per-call-site cost call sites avoid by caching the ref.
  Registry registry;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        &registry.counter("bench_resolve_total", {{"op", "read"}}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryResolve);

void BM_SpanStartEnd(benchmark::State& state) {
  Tracer tracer(64);
  for (auto _ : state) {
    auto span = tracer.start("bench");
    span.end();
  }
  benchmark::DoNotOptimize(tracer.recorded_total());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanStartEnd);

void BM_SpanWithAttrsAndChild(benchmark::State& state) {
  Tracer tracer(64);
  for (auto _ : state) {
    auto span = tracer.start("transfer");
    span.set_attr("OP", "read");
    auto child = span.child("stream");
    child.end();
    span.end();
  }
  benchmark::DoNotOptimize(tracer.recorded_total());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanWithAttrsAndChild);

void BM_ExplicitRecord(benchmark::State& state) {
  // The simulated-lifecycle path: caller-supplied instants, no clock.
  Tracer tracer(64);
  std::uint64_t t = 0;
  for (auto _ : state) {
    tracer.record("transfer", 0, t, t + 1000);
    t += 2000;
  }
  benchmark::DoNotOptimize(tracer.recorded_total());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExplicitRecord);

}  // namespace
}  // namespace wadp::obs

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Snapshot whatever the bench itself registered globally (plus any
  // library-side instruments linked in) as the uniform JSON artifact.
  const auto written = wadp::obs::write_bench_json(
      "BENCH_obs_overhead.json", "obs_overhead",
      wadp::obs::Registry::global());
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.error().c_str());
    return 1;
  }
  return 0;
}
