// Figure 7: total GridFTP transfers and per-size-class counts for the
// August and December 2001 datasets, per link.
#include "common.hpp"

namespace wadp::bench {
namespace {

void run() {
  const auto classifier = predict::SizeClassifier::paper_classes();
  auto aug = run_campaign(workload::Campaign::kAugust2001);
  auto dec = run_campaign(workload::Campaign::kDecember2001);

  util::TextTable table({"Class", "Link", "August", "December"});
  table.set_align(1, util::TextTable::Align::Left);
  const auto counts = [&](const CampaignData& d, const std::string& site) {
    return workload::count_by_class(d.link(site), classifier);
  };
  const auto add_rows = [&](const std::string& label, int cls) {
    for (const std::string site : {"lbl", "isi"}) {
      const auto a = counts(aug, site);
      const auto d = counts(dec, site);
      const auto value = [&](const workload::ClassCounts& c) {
        return cls < 0 ? c.total : c.per_class[static_cast<std::size_t>(cls)];
      };
      table.add_row({label, site == "lbl" ? "LBL" : "ISI",
                     std::to_string(value(a)), std::to_string(value(d))});
    }
  };
  add_rows("All", -1);
  for (int cls = 0; cls < classifier.num_classes(); ++cls) {
    add_rows(classifier.class_label(cls), cls);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "paper (Fig. 7): All LBL 450/365, ISI 432/334; class populations\n"
      "follow the {6,3,3,1}/13 size-draw partition; each log ~350-450\n"
      "transfers over two weeks.\n");
}

}  // namespace
}  // namespace wadp::bench

int main() {
  wadp::bench::banner(
      "Figure 7: transfer counts by file-size class, Aug & Dec 2001",
      "~350-450 transfers per link per campaign; 10MB class largest");
  wadp::bench::run();
  return 0;
}
