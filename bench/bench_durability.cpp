// Durability-plane cost: what the WAL charges ingest, and how fast
// recovery replays.
//
// Panel 1 — MARGINAL COST (reported, not enforced).  The same
// synthetic record stream is ingested into (a) a plain HistoryStore,
// (b) a store with the durability plane attached (dedupe index on,
// WAL observer appending, fsync=none) and (c) the same with
// fsync=batch.  This is a naked hot loop: the baseline append is
// ~200ns of hash-and-push, so *any* durability mechanism — encode,
// checksum, group-commit handoff — multiplies it.  The panel prices
// the mechanism honestly (ns/record) but a ratio over a naked loop is
// not the steady-state question, so it carries no gate.
//
// Panel 2 — STEADY-STATE OVERHEAD (ENFORCED).  Following the
// bench_history_ingest methodology: 4 producer threads paced at an
// aggregate 20k records/s — about 4 orders of magnitude above the
// paper's real ingest (GridFTP logs grow at well under one transfer
// per second) — ingest for a fixed window with the WAL off, on with
// fsync=none, and on with fsync=batch.  The statistic is the achieved
// steady-state rate; the gate is that attaching the WAL costs <= 10%
// of it (exit code enforced, both fsync rows).  This is the number
// the serving story depends on: durability must not throttle the
// ingest it protects.  A lock convoy, an fsync stall, or a segment
// rotation pause would all surface here; pure per-record arithmetic
// that still keeps pace — the intended design point of group commit —
// does not.
//
// Panel 3 — RECOVERY.  A 100k-record WAL (snapshot-free worst case)
// is replayed into a fresh store; wall time and replay rate are
// reported, and the pass must reconstruct every record.
//
// Emits BENCH_durability.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "durability/manager.hpp"
#include "history/store.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/table.hpp"

namespace {

using namespace wadp;
using Clock = std::chrono::steady_clock;

constexpr int kTrials = 5;
constexpr std::size_t kRecordsPerTrial = 20'000;
constexpr std::size_t kRecoveryRecords = 100'000;
constexpr double kMaxOverhead = 0.10;  // enforced: steady-state, WAL on vs off

// Panel 2 pacing (the bench_history_ingest cadence).
constexpr int kProducers = 4;
constexpr int kRecordsPerSecondPerThread = 5'000;
constexpr int kBurst = 64;  // log tailing delivers records in bursts
constexpr double kMeasureSeconds = 1.2;
constexpr int kWarmupTicks = 12;  // per-thread ticks before measuring

const std::vector<std::string> kHosts = {"dpsslx04.lbl.gov", "jet.isi.edu",
                                         "pitcairn.mcs.anl.gov"};

std::string scratch(const std::string& name) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / ("wadp_bench_dur_" + name);
  fs::remove_all(dir);
  return dir.string();
}

gridftp::TransferRecord record_for(std::size_t i, std::uint64_t trace_base) {
  gridftp::TransferRecord r;
  r.host = kHosts[i % kHosts.size()];
  r.source_ip = "140.221.65.69";
  r.file_name = "/home/ftp/vazhkuda/10 MB";
  r.file_size = (i % 4 + 1) * 10 * kMB;
  r.volume = "/home/ftp";
  r.start_time = 1000.0 + 2.0 * static_cast<double>(i);
  r.end_time = r.start_time + 10.0;
  r.op = gridftp::Operation::kRead;
  r.streams = 8;
  r.tcp_buffer = 1'000'000;
  r.trace_id = trace_base + i;
  return r;
}

/// Deterministic synthetic stream: `count` records round-robined over
/// the three testbed series with a small size mix.  trace ids are
/// unique so the dedupe index never collapses the stream.
std::vector<gridftp::TransferRecord> make_stream(std::size_t count,
                                                 std::uint64_t trace_base) {
  std::vector<gridftp::TransferRecord> stream;
  stream.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    stream.push_back(record_for(i, trace_base));
  }
  return stream;
}

history::StoreConfig store_config(bool dedupe) {
  history::StoreConfig config;
  config.shard_count = 16;
  config.instrumented = false;
  config.dedupe_records = dedupe;
  // Bound the steady state so Panel 2's paced minutes-worth of ingest
  // cannot grow reader-side structures without limit.
  config.max_observations_per_series = 8192;
  return config;
}

/// Builds a fresh scenario: plain store, or store + durability plane.
struct Scenario {
  std::shared_ptr<history::HistoryStore> store;
  std::unique_ptr<durability::DurabilityManager> manager;
};

Scenario make_scenario(std::optional<durability::FsyncPolicy> wal,
                       const std::string& tag) {
  Scenario s;
  s.store = std::make_shared<history::HistoryStore>(
      store_config(/*dedupe=*/wal.has_value()));
  if (wal) {
    durability::DurabilityConfig config;
    config.dir = scratch(tag);
    config.fsync = *wal;
    config.group_commit_records = 256;
    config.instrumented = false;
    s.manager =
        std::make_unique<durability::DurabilityManager>(s.store, config);
    s.manager->attach();
  }
  return s;
}

/// Panel 1: median per-record cost (ns) of a naked ingest loop over
/// the stream, `kTrials` fresh scenarios.
double median_ingest_ns(const std::vector<gridftp::TransferRecord>& stream,
                        std::optional<durability::FsyncPolicy> wal,
                        const std::string& tag) {
  std::vector<double> per_record_ns;
  per_record_ns.reserve(kTrials);
  for (int trial = 0; trial < kTrials; ++trial) {
    auto scenario = make_scenario(wal, tag + "_" + std::to_string(trial));
    const auto begin = Clock::now();
    for (const auto& record : stream) scenario.store->append(record);
    if (scenario.manager) scenario.manager->flush();
    const auto end = Clock::now();
    per_record_ns.push_back(
        std::chrono::duration<double, std::nano>(end - begin).count() /
        static_cast<double>(stream.size()));
  }
  std::sort(per_record_ns.begin(), per_record_ns.end());
  return per_record_ns[kTrials / 2];
}

/// Panel 2: paced steady-state ingest.  kProducers threads each append
/// kBurst records then sleep to hold the per-thread rate; after a
/// warm-up the achieved aggregate rate over a fixed window is the
/// scenario's statistic.
double paced_rate(std::optional<durability::FsyncPolicy> wal,
                  const std::string& tag) {
  auto scenario = make_scenario(wal, tag);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> appended{0};
  std::atomic<int> warm_threads{0};
  const auto tick = std::chrono::duration<double>(
      static_cast<double>(kBurst) / kRecordsPerSecondPerThread);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int w = 0; w < kProducers; ++w) {
    producers.emplace_back([&, w] {
      // Per-thread template record, patched per append: the copy cost
      // is part of the harness and identical in every scenario.
      auto r = record_for(static_cast<std::size_t>(w),
                          1'000'000'000ull * (w + 1));
      std::size_t i = 0;
      int ticks = 0;
      while (!stop.load(std::memory_order_acquire)) {
        for (int b = 0; b < kBurst; ++b, ++i) {
          r.host = kHosts[i % kHosts.size()];
          r.start_time = 1000.0 + 2.0 * static_cast<double>(i);
          r.end_time = r.start_time + 10.0;
          r.trace_id = 1'000'000'000ull * (w + 1) + i;
          scenario.store->append(r);
        }
        appended.fetch_add(kBurst, std::memory_order_relaxed);
        if (++ticks == kWarmupTicks) {
          warm_threads.fetch_add(1, std::memory_order_release);
        }
        std::this_thread::sleep_for(
            std::chrono::duration_cast<std::chrono::nanoseconds>(tick));
      }
    });
  }
  while (warm_threads.load(std::memory_order_acquire) < kProducers) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto begin = Clock::now();
  const std::uint64_t base = appended.load(std::memory_order_relaxed);
  std::this_thread::sleep_for(std::chrono::duration<double>(kMeasureSeconds));
  const std::uint64_t delta =
      appended.load(std::memory_order_relaxed) - base;
  const double window =
      std::chrono::duration<double>(Clock::now() - begin).count();
  stop.store(true, std::memory_order_release);
  for (auto& t : producers) t.join();
  if (scenario.manager) scenario.manager->flush();
  return static_cast<double>(delta) / window;
}

}  // namespace

int main() {
  bench::banner("BENCH durability: WAL ingest overhead + recovery replay",
                "instrumentation must not throttle the transfers it measures "
                "(Section 3); history must survive a server restart");

  int failures = 0;

  // Panel 1: marginal per-record cost, naked loop (reported only).
  const auto stream = make_stream(kRecordsPerTrial, 1'000'000);
  const double baseline_ns =
      median_ingest_ns(stream, std::nullopt, "baseline");
  const double wal_none_ns =
      median_ingest_ns(stream, durability::FsyncPolicy::kNone, "walnone");
  const double wal_batch_ns =
      median_ingest_ns(stream, durability::FsyncPolicy::kBatch, "walbatch");

  util::TextTable marginal_table(
      {"marginal cost (naked loop)", "ns/record", "records/s"});
  marginal_table.set_align(0, util::TextTable::Align::Left);
  const auto marginal_row = [&](const char* name, double ns) {
    marginal_table.add_row(
        {name, bench::fmt(ns, 0), bench::fmt(1e9 / ns, 0)});
  };
  marginal_row("store only", baseline_ns);
  marginal_row("store + WAL (fsync=none)", wal_none_ns);
  marginal_row("store + WAL (fsync=batch)", wal_batch_ns);
  std::printf("%s\n", marginal_table.render().c_str());

  // Panel 2: paced steady state (ENFORCED, <=10% regression).
  const double rate_base = paced_rate(std::nullopt, "paced_base");
  const double rate_none =
      paced_rate(durability::FsyncPolicy::kNone, "paced_none");
  const double rate_batch =
      paced_rate(durability::FsyncPolicy::kBatch, "paced_batch");
  const double target_rate =
      static_cast<double>(kProducers) * kRecordsPerSecondPerThread;

  util::TextTable steady_table(
      {"steady state (4 paced producers)", "records/s", "vs WAL off"});
  steady_table.set_align(0, util::TextTable::Align::Left);
  const auto steady_row = [&](const char* name, double rate) {
    steady_table.add_row({name, bench::fmt(rate, 0),
                          bench::fmt(rate / rate_base * 100.0, 1) + "%"});
  };
  steady_row("WAL off", rate_base);
  steady_row("WAL on (fsync=none)", rate_none);
  steady_row("WAL on (fsync=batch)", rate_batch);
  std::printf("%s", steady_table.render().c_str());
  std::printf("paced target: %.0f records/s aggregate (~4 orders above the "
              "paper's real ingest)\n\n",
              target_rate);

  const double overhead_none = 1.0 - rate_none / rate_base;
  const double overhead_batch = 1.0 - rate_batch / rate_base;
  const auto enforce = [&](const char* name, double overhead) {
    if (overhead > kMaxOverhead) {
      std::fprintf(stderr,
                   "FAIL: steady-state ingest with %s regressed %.1f%% > "
                   "%.0f%%\n",
                   name, overhead * 100.0, kMaxOverhead * 100.0);
      ++failures;
    } else {
      std::printf("steady-state ingest with %s: %.1f%% overhead "
                  "(bound %.0f%%)\n",
                  name, std::max(0.0, overhead) * 100.0,
                  kMaxOverhead * 100.0);
    }
  };
  enforce("WAL(fsync=none)", overhead_none);
  enforce("WAL(fsync=batch)", overhead_batch);
  std::printf("\n");

  // Panel 3: recovery replay of a 100k-record log, no snapshot.
  const auto recovery_root = scratch("recovery");
  {
    auto store = std::make_shared<history::HistoryStore>(
        store_config(/*dedupe=*/true));
    durability::DurabilityConfig config;
    config.dir = recovery_root;
    config.fsync = durability::FsyncPolicy::kNone;
    config.group_commit_records = 1024;
    config.instrumented = false;
    durability::DurabilityManager manager(store, config);
    manager.attach();
    for (const auto& record : make_stream(kRecoveryRecords, 5'000'000)) {
      store->append(record);
    }
    manager.flush();
  }
  history::HistoryStore recovered(store_config(/*dedupe=*/true));
  const auto recovery =
      durability::DurabilityManager::recover(recovery_root, recovered);
  double recovery_seconds = 0.0;
  if (!recovery.ok()) {
    std::fprintf(stderr, "FAIL: recovery error: %s\n",
                 recovery.error().c_str());
    ++failures;
  } else {
    recovery_seconds = recovery.value().seconds;
    util::TextTable recovery_table({"recovery (100k records)", "value"});
    recovery_table.set_align(0, util::TextTable::Align::Left);
    recovery_table.add_row(
        {"wall time", bench::fmt(recovery_seconds * 1e3, 1) + " ms"});
    recovery_table.add_row(
        {"replay rate",
         bench::fmt(static_cast<double>(kRecoveryRecords) /
                        recovery_seconds / 1e3,
                    0) +
             "k records/s"});
    recovery_table.add_row(
        {"records applied",
         std::to_string(recovery.value().records_applied)});
    recovery_table.add_row(
        {"torn frames", std::to_string(recovery.value().torn_frames)});
    std::printf("%s\n", recovery_table.render().c_str());
    if (recovery.value().records_applied != kRecoveryRecords) {
      std::fprintf(stderr, "FAIL: replay applied %zu of %zu records\n",
                   recovery.value().records_applied, kRecoveryRecords);
      ++failures;
    }
  }

  auto& registry = obs::Registry::global();
  registry.gauge("wadp_bench_durability_ingest_baseline_ns", {},
                 "Per-record ingest cost, plain store, naked loop (ns)")
      .set(baseline_ns);
  registry.gauge("wadp_bench_durability_ingest_wal_none_ns", {},
                 "Per-record ingest cost with WAL, fsync=none, naked loop (ns)")
      .set(wal_none_ns);
  registry.gauge("wadp_bench_durability_ingest_wal_batch_ns", {},
                 "Per-record ingest cost with WAL, fsync=batch, naked loop (ns)")
      .set(wal_batch_ns);
  registry.gauge("wadp_bench_durability_steady_rate_base", {},
                 "Paced steady-state ingest rate, WAL off (records/s)")
      .set(rate_base);
  registry.gauge("wadp_bench_durability_steady_rate_wal_none", {},
                 "Paced steady-state ingest rate, WAL fsync=none (records/s)")
      .set(rate_none);
  registry.gauge("wadp_bench_durability_steady_rate_wal_batch", {},
                 "Paced steady-state ingest rate, WAL fsync=batch (records/s)")
      .set(rate_batch);
  registry.gauge("wadp_bench_durability_steady_overhead_pct", {},
                 "Steady-state ingest overhead, WAL(fsync=batch) vs off "
                 "(percent; the enforced number)")
      .set(std::max(overhead_none, overhead_batch) * 100.0);
  registry.gauge("wadp_bench_durability_recovery_seconds", {},
                 "Wall time to replay the 100k-record WAL")
      .set(recovery_seconds);
  const auto written = obs::write_bench_json("BENCH_durability.json",
                                             "durability", registry);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.error().c_str());
    return 1;
  }
  std::printf("wrote BENCH_durability.json\n");
  return failures == 0 ? 0 : 1;
}
