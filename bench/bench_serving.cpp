// Serving-plane throughput and overload degradation.
//
// Two panels over the same synthetic fleet as `wadp serve` (three
// paper-testbed GridFTP hosts, 64 logical files on rotating host
// pairs, empty GIIS so fills flow through the broker's history
// fallback):
//
//  * STEADY STATE — admission disabled, periodic ingest ticks bumping
//    one series' watermark every 64 batches.  Measures the cached
//    read path: queries/s, per-query p50/p99 (derived from per-batch
//    wall times), and the cache hit rate among admitted queries.
//  * OVERLOAD — admission at 200k queries/s on *virtual* time, with
//    the offered rate 1x/4x/16x that.  The split of every batch into
//    cached/filled/shed/rejected is fully deterministic (token
//    buckets refill from virtual time, the query schedule is
//    seeded); only the wall-clock timings vary run to run.
//
// Enforced by exit code (deterministic invariants):
//  * steady-state hit rate >= 95% among admitted queries;
//  * at 16x overload, >= 90% of the excess over the admitted tier is
//    shed (answered stale) rather than rejected.
//
// Printed and recorded, but not enforced (timing-dependent; CI boxes
// are small): cached throughput (target: >= 1M queries/s) and the
// 16x-vs-1x p99 per-query latency ratio (target: <= 5x — overload
// must not collapse the latency of the work still being done).
//
// The pass statistic is per-batch: a scheduler preemption inflates
// one batch in thousands and shows up past p99, while a systematic
// cost on the hot path (a lock on the read side, probe-chain growth)
// shifts the whole distribution.  Emits BENCH_serving.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common.hpp"
#include "history/store.hpp"
#include "mds/giis.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "replica/broker.hpp"
#include "replica/catalog.hpp"
#include "serving/frontend.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace wadp;

constexpr int kFiles = 64;
constexpr std::size_t kBatch = 256;
constexpr std::size_t kSteadyBatches = 1500;
constexpr std::size_t kOverloadBatches = 600;
constexpr std::size_t kIngestEvery = 64;  // batches between watermark bumps
constexpr double kAdmitRate = 200'000.0;  // full-path capacity, queries/s
constexpr SimTime kStart = 3600.0;        // after the seeded history

const std::vector<std::string> kSites = {"lbl", "isi", "anl"};
const std::vector<std::string> kHosts = {"dpsslx04.lbl.gov", "jet.isi.edu",
                                         "pitcairn.mcs.anl.gov"};
const std::string kClient = "140.221.65.69";
const std::vector<Bytes> kSizeMix = {1 * kMB, 10 * kMB, 100 * kMB, 1000 * kMB};

history::SeriesKey series_for(std::size_t host) {
  return {.host = kHosts[host], .remote_ip = kClient,
          .op = gridftp::Operation::kRead};
}

/// The `wadp serve` fleet, rebuilt fresh per scenario so cache and
/// bucket state never leak between panels.
struct Fleet {
  explicit Fleet(serving::AdmissionConfig admission, std::uint64_t seed) {
    store = std::make_shared<history::HistoryStore>();
    util::Rng seeder(seed);
    for (std::size_t h = 0; h < kHosts.size(); ++h) {
      const double base = 2e6 * static_cast<double>(h + 1);
      for (int i = 0; i < 40; ++i) {
        store->append(series_for(h),
                      predict::Observation{
                          .time = 60.0 * i,
                          .value = base * seeder.uniform(0.5, 1.5),
                          .file_size = kSizeMix[static_cast<std::size_t>(
                              seeder.uniform_int(0, 3))],
                          .ok = true});
      }
    }
    for (int f = 0; f < kFiles; ++f) {
      std::string lfn = "lfn://data/" + std::to_string(f);
      for (int r = 0; r < 2; ++r) {
        const std::size_t h = static_cast<std::size_t>(f + r) % kHosts.size();
        catalog.add_replica(lfn, {.site = kSites[h],
                                  .server_host = kHosts[h],
                                  .path = "/data/" + std::to_string(f)});
      }
      lfns.push_back(std::move(lfn));
    }
    giis = std::make_unique<mds::Giis>("top");
    broker = std::make_unique<replica::ReplicaBroker>(
        catalog, *giis, replica::SelectionPolicy::kPredictedBest, seed);
    broker->bind_history(store.get());
    serving::ServingConfig config;
    config.admission = admission;
    frontend = std::make_unique<serving::ServingFrontend>(*broker, catalog,
                                                          store, config);
  }

  std::shared_ptr<history::HistoryStore> store;
  replica::ReplicaCatalog catalog;
  std::vector<std::string> lfns;
  std::unique_ptr<mds::Giis> giis;
  std::unique_ptr<replica::ReplicaBroker> broker;
  std::unique_ptr<serving::ServingFrontend> frontend;
};

struct ScenarioResult {
  std::size_t tallies[4] = {0, 0, 0, 0};  // cached/filled/shed/rejected
  std::size_t total = 0;
  double qps = 0.0;    // wall-clock queries/s across the measured batches
  double p50_us = 0.0; // per-query latency percentiles, per-batch derived
  double p99_us = 0.0;

  std::size_t admitted() const { return tallies[0] + tallies[1]; }
  double hit_rate() const {
    return admitted() == 0
               ? 0.0
               : static_cast<double>(tallies[0]) /
                     static_cast<double>(admitted());
  }
};

/// Drives `batches` seeded batches through the fleet, advancing
/// virtual time at `offered_rate` and bumping one watermark every
/// kIngestEvery batches.  Wall-clock timing wraps each select_many.
ScenarioResult drive(Fleet& fleet, std::size_t batches, double offered_rate,
                     std::uint64_t seed) {
  using Clock = std::chrono::steady_clock;
  util::Rng rng(seed);
  ScenarioResult result;
  std::vector<serving::Query> queries(kBatch);
  std::vector<double> batch_ns;
  batch_ns.reserve(batches);
  double now = kStart;
  for (std::size_t b = 0; b < batches; ++b) {
    for (std::size_t i = 0; i < kBatch; ++i) {
      queries[i] = serving::Query{
          .logical_name = fleet.lfns[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(fleet.lfns.size()) - 1))],
          .client_ip = kClient,
          .size = kSizeMix[static_cast<std::size_t>(rng.uniform_int(0, 3))]};
    }
    const auto begin = Clock::now();
    const auto answers = fleet.frontend->select_many(queries, now);
    const auto end = Clock::now();
    batch_ns.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
            .count()));
    for (const auto& answer : answers) {
      ++result.tallies[static_cast<std::size_t>(answer.path)];
    }
    result.total += kBatch;
    now += static_cast<double>(kBatch) / offered_rate;
    if ((b + 1) % kIngestEvery == 0) {
      const std::size_t h = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(kHosts.size()) - 1));
      fleet.store->append(
          series_for(h),
          predict::Observation{
              .time = now,
              .value = 2e6 * static_cast<double>(h + 1) * rng.uniform(0.5, 1.5),
              .file_size = kSizeMix[static_cast<std::size_t>(
                  rng.uniform_int(0, 3))],
              .ok = true});
    }
  }
  double total_ns = 0.0;
  for (const double ns : batch_ns) total_ns += ns;
  result.qps = static_cast<double>(result.total) / (total_ns * 1e-9);
  std::sort(batch_ns.begin(), batch_ns.end());
  const auto at = [&](double q) {
    const auto index = static_cast<std::size_t>(
        q * static_cast<double>(batch_ns.size() - 1));
    return batch_ns[index] / static_cast<double>(kBatch) / 1e3;  // us/query
  };
  result.p50_us = at(0.50);
  result.p99_us = at(0.99);
  return result;
}

void add_row(util::TextTable& table, const char* name,
             const ScenarioResult& result) {
  const auto pct = [&](std::size_t n) {
    return wadp::bench::fmt(
        100.0 * static_cast<double>(n) / static_cast<double>(result.total), 2);
  };
  table.add_row({name, wadp::bench::fmt(result.qps, 0),
                 wadp::bench::fmt(result.p50_us, 3),
                 wadp::bench::fmt(result.p99_us, 3), pct(result.tallies[0]),
                 pct(result.tallies[1]), pct(result.tallies[2]),
                 pct(result.tallies[3])});
}

}  // namespace

int main() {
  using wadp::bench::fmt;
  wadp::bench::banner(
      "Serving plane: cached replica selection under load",
      "prediction serving must scale to the fleet: cache hits at memory "
      "speed, overload degraded to stale answers before rejections");

  // --- Panel 1: steady state, admission disabled ---------------------
  Fleet steady_fleet(serving::AdmissionConfig{}, wadp::bench::kSeed);
  {  // warm outside the measured window: first touch fills every plan
    Fleet& fleet = steady_fleet;
    (void)drive(fleet, 8, kAdmitRate, wadp::bench::kSeed ^ 0x5757);
  }
  const ScenarioResult steady =
      drive(steady_fleet, kSteadyBatches, kAdmitRate, wadp::bench::kSeed);

  // --- Panel 2: overload ladder on virtual time ----------------------
  serving::AdmissionConfig admission;
  admission.admit_rate = kAdmitRate;
  admission.admit_burst = static_cast<double>(kBatch);
  std::vector<std::pair<double, ScenarioResult>> ladder;
  for (const double overload : {1.0, 4.0, 16.0}) {
    Fleet fleet(admission, wadp::bench::kSeed);
    ladder.emplace_back(overload,
                        drive(fleet, kOverloadBatches, kAdmitRate * overload,
                              wadp::bench::kSeed));
  }

  util::TextTable table({"scenario", "queries/s", "p50 us", "p99 us",
                         "cached %", "filled %", "shed %", "rejected %"});
  table.set_align(0, util::TextTable::Align::Left);
  add_row(table, "steady state (no admission)", steady);
  for (const auto& [overload, result] : ladder) {
    const std::string name = "overload " + fmt(overload, 0) + "x @ 200k/s";
    add_row(table, name.c_str(), result);
  }
  std::printf("%s\n", table.render().c_str());

  const ScenarioResult& base = ladder[0].second;
  const ScenarioResult& worst = ladder[2].second;
  const std::size_t excess = worst.total - worst.admitted();
  const double shed_share =
      excess == 0 ? 1.0
                  : static_cast<double>(worst.tallies[2]) /
                        static_cast<double>(excess);
  const double p99_ratio = worst.p99_us / base.p99_us;

  std::printf("steady-state hit rate: %.2f%% (floor: 95%%)\n",
              steady.hit_rate() * 100.0);
  std::printf("steady-state throughput: %.0f queries/s "
              "(target: >= 1,000,000; informational)\n",
              steady.qps);
  std::printf("16x overload: %.2f%% of excess shed, %.2f%% rejected "
              "(floor: 90%% shed)\n",
              shed_share * 100.0,
              100.0 * static_cast<double>(worst.tallies[3]) /
                  static_cast<double>(worst.total));
  std::printf("p99 per-query, 16x vs 1x: %.2fx "
              "(target: <= 5x; informational)\n\n",
              p99_ratio);

  auto& registry = wadp::obs::Registry::global();
  registry.gauge("wadp_bench_serving_steady_qps", {},
                 "Cached-path throughput, admission disabled")
      .set(steady.qps);
  registry.gauge("wadp_bench_serving_steady_hit_rate", {},
                 "Cache hits / admitted queries in steady state")
      .set(steady.hit_rate());
  registry.gauge("wadp_bench_serving_steady_p50_us", {},
                 "Median per-query latency, steady state (us)")
      .set(steady.p50_us);
  registry.gauge("wadp_bench_serving_steady_p99_us", {},
                 "p99 per-query latency, steady state (us)")
      .set(steady.p99_us);
  for (const auto& [overload, result] : ladder) {
    const std::string suffix = "_" + fmt(overload, 0) + "x";
    registry.gauge("wadp_bench_serving_qps" + suffix, {},
                   "Throughput at this overload factor")
        .set(result.qps);
    registry.gauge("wadp_bench_serving_p99_us" + suffix, {},
                   "p99 per-query latency at this overload factor (us)")
        .set(result.p99_us);
    registry.gauge("wadp_bench_serving_shed_share" + suffix, {},
                   "Shed fraction of all queries at this overload factor")
        .set(static_cast<double>(result.tallies[2]) /
             static_cast<double>(result.total));
  }
  registry.gauge("wadp_bench_serving_shed_excess_share_16x", {},
                 "Shed fraction of the over-admission excess at 16x")
      .set(shed_share);
  registry.gauge("wadp_bench_serving_p99_ratio_16x", {},
                 "p99 per-query at 16x / p99 at 1x")
      .set(p99_ratio);
  const auto written = wadp::obs::write_bench_json("BENCH_serving.json",
                                                   "serving", registry);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.error().c_str());
    return 1;
  }
  std::printf("wrote BENCH_serving.json\n");

  // Deterministic invariants only: the throughput and latency-ratio
  // targets above are informational (CI hardware varies), but the
  // admission split and hit rate are seeded + virtual-time exact.
  int failures = 0;
  if (steady.hit_rate() < 0.95) {
    std::fprintf(stderr, "FAIL: steady-state hit rate %.2f%% < 95%%\n",
                 steady.hit_rate() * 100.0);
    ++failures;
  }
  if (shed_share < 0.90) {
    std::fprintf(stderr, "FAIL: 16x overload shed only %.2f%% of excess\n",
                 shed_share * 100.0);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
