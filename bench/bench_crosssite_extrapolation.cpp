// Future work (Section 7, citing Faerman et al. [13]): extrapolating to
// site pairs with no transfer history.
//
// A heterogeneous three-site grid runs campaigns on three of its
// directed links; the LBL->ISI link is *held out*.  The site-factor
// model (predict/crosssite.hpp) is fit on the observed pairs and asked
// to estimate the held-out pair, which we then verify against actual
// measured transfers on that link.
#include "common.hpp"

#include "predict/crosssite.hpp"

namespace wadp::bench {
namespace {

void run() {
  // Heterogeneous connectivity so site factors mean something.
  workload::TestbedConfig config;
  config.bottleneck_overrides["isi->anl"] = 7'000'000.0;
  config.bottleneck_overrides["lbl->isi"] = 9'000'000.0;
  workload::Testbed testbed(workload::Campaign::kAugust2001, kSeed, config);

  // Campaigns on three directed links; lbl->isi runs too (to produce
  // ground truth) but is hidden from the estimator.
  workload::CampaignDriver lbl_anl(testbed, "anl", "lbl", {}, kSeed ^ 1);
  workload::CampaignDriver isi_anl(testbed, "anl", "isi", {}, kSeed ^ 2);
  workload::CampaignDriver anl_isi(testbed, "isi", "anl", {}, kSeed ^ 3);
  workload::CampaignDriver lbl_isi(testbed, "isi", "lbl", {}, kSeed ^ 4);
  for (auto* driver : {&lbl_anl, &isi_anl, &anl_isi, &lbl_isi}) {
    driver->start();
  }
  testbed.sim().run_until(lbl_anl.end_time() + 86400.0);

  predict::CrossSiteEstimator estimator;
  util::RunningStats truth;
  const auto feed = [&](const char* server_site, const char* client_site,
                        bool hold_out) {
    const auto series = history::observations_from_records(
        testbed.server(server_site).log().records(),
        {.remote_ip = testbed.client(client_site).ip()});
    util::RunningStats stats;
    for (const auto& o : series) {
      stats.add(o.value);
      if (hold_out) {
        truth.add(o.value);
      } else {
        estimator.observe(server_site, client_site, o.value);
      }
    }
    std::printf("  %s->%s: %zu transfers, mean %.2f MB/s%s\n", server_site,
                client_site, stats.count(), to_mb_per_sec(stats.mean()),
                hold_out ? "  [HELD OUT]" : "");
  };
  std::printf("observed series:\n");
  feed("lbl", "anl", false);
  feed("isi", "anl", false);
  feed("anl", "isi", false);
  feed("lbl", "isi", true);

  std::printf("\nfitted site factors (relative to grid mean; n/a = site "
              "never seen in that role):\n");
  const auto factor_str = [](std::optional<double> f) {
    return f ? util::format("%.3gx", *f) : std::string("n/a");
  };
  for (const char* site : {"anl", "isi", "lbl"}) {
    std::printf("  %-4s source %-6s  sink %s\n", site,
                factor_str(estimator.source_factor(site)).c_str(),
                factor_str(estimator.sink_factor(site)).c_str());
  }

  const auto estimate = estimator.estimate("lbl", "isi");
  std::printf("\nheld-out pair lbl->isi:\n");
  if (estimate) {
    const double measured = truth.mean();
    std::printf("  extrapolated: %.2f MB/s   measured mean: %.2f MB/s   "
                "error: %.1f%%\n",
                to_mb_per_sec(*estimate), to_mb_per_sec(measured),
                util::percent_error(measured, *estimate));
    std::printf("\nreading: with zero transfers ever observed on the pair,\n"
                "the site-factor model lands within ordinary predictor error\n"
                "— the paper's proposed extrapolation is workable.\n");
  } else {
    std::printf("  (estimator could not produce a value)\n");
  }
}

}  // namespace
}  // namespace wadp::bench

int main() {
  wadp::bench::banner(
      "Future work: cross-site extrapolation (Section 7, ref [13])",
      "predict a pair with no history from per-site factors");
  wadp::bench::run();
  return 0;
}
