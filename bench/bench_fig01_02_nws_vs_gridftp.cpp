// Figures 1 & 2: GridFTP end-to-end bandwidth vs NWS probe bandwidth,
// ISI-ANL and LBL-ANL, two weeks, log scale.
//
// The paper's observation: ~1500 five-minute NWS probes read below
// 0.3 MB/s while ~400 tuned GridFTP transfers on the same links range
// 1.5-10.2 MB/s with *greater* variability — so small probes are the
// wrong tool for predicting large transfers, quantitatively and
// qualitatively.
#include "common.hpp"

#include "nws/sensor.hpp"

namespace wadp::bench {
namespace {

void run_link(const char* figure, const char* src) {
  // Fresh testbed per link so the probe series sees the same load the
  // transfers saw.
  workload::Testbed testbed(workload::Campaign::kAugust2001, kSeed);
  auto* path = testbed.topology().find(src, "anl");
  nws::NwsSensor sensor(testbed.sim(), testbed.engine(), *path, {});
  workload::CampaignDriver driver(testbed, "anl", src, {}, kSeed ^ 0x77);
  driver.start();
  testbed.sim().run_until(driver.end_time() + 3600.0);
  sensor.stop();

  util::RunningStats probe_bw, gridftp_bw;
  std::vector<util::SeriesPoint> probe_pts, gridftp_pts;
  const SimTime t0 = testbed.start_time();
  for (const auto& m : sensor.series()) {
    probe_bw.add(to_mb_per_sec(m.value));
    probe_pts.push_back({(m.time - t0) / 86400.0, to_mb_per_sec(m.value)});
  }
  for (const auto& o : driver.outcomes()) {
    const double bw = to_mb_per_sec(o.record.bandwidth());
    gridftp_bw.add(bw);
    gridftp_pts.push_back({(o.record.end_time - t0) / 86400.0, bw});
  }

  std::printf("\n%s: %s-ANL — %zu NWS probes, %zu GridFTP transfers\n",
              figure, src, sensor.series().size(), driver.outcomes().size());
  std::printf("  NWS probe bandwidth   : %6.3f .. %6.3f MB/s (mean %6.3f)\n",
              probe_bw.min(), probe_bw.max(), probe_bw.mean());
  std::printf("  GridFTP bandwidth     : %6.3f .. %6.3f MB/s (mean %6.3f)\n",
              gridftp_bw.min(), gridftp_bw.max(), gridftp_bw.mean());
  std::printf("  coefficient of variation: NWS %.3f vs GridFTP %.3f\n",
              probe_bw.stddev() / probe_bw.mean(),
              gridftp_bw.stddev() / gridftp_bw.mean());
  const auto idle_theory = to_mb_per_sec(
      nws::NwsSensor::theoretical_idle_probe_bandwidth(*path, {}));
  std::printf("  closed-form idle probe bandwidth: %.3f MB/s "
              "(slow-start-bound)\n\n", idle_theory);
  std::printf("%s\n",
              util::render_log_strip_chart(gridftp_pts, "GridFTP", probe_pts,
                                           "NWS probe")
                  .c_str());
  std::printf("  paper shape check: probes < 0.3 MB/s: %s; "
              "GridFTP spans ~1.5-10.2 MB/s: %s\n",
              probe_bw.max() < 0.3 ? "YES" : "NO",
              (gridftp_bw.min() > 1.0 && gridftp_bw.max() < 12.0) ? "YES"
                                                                  : "NO");
}

}  // namespace
}  // namespace wadp::bench

int main() {
  using namespace wadp::bench;
  banner("Figures 1-2: NWS probe vs GridFTP end-to-end bandwidth",
         "NWS < 0.3 MB/s; GridFTP 1.5-10.2 MB/s with higher variability");
  run_link("Figure 1", "isi");
  run_link("Figure 2", "lbl");
  return 0;
}
