// Ablation: log-growth strategies (Section 3).
//
// The paper discusses trimming logs "based on a running window, as is
// done in the NWS" versus NetLogger-style flush-and-restart.  Replays
// the campaign log under each policy and measures (a) how much history
// a predictor sees and (b) what that does to accuracy.
#include "common.hpp"

namespace wadp::bench {
namespace {

void run_policy(const char* name, gridftp::TrimConfig trim,
                const std::vector<predict::Observation>& full_series,
                util::TextTable& table) {
  // Rebuild a log under the policy from the full series.
  gridftp::TransferLog log(trim);
  for (const auto& o : full_series) {
    gridftp::TransferRecord r;
    r.host = "dpsslx04.lbl.gov";
    r.source_ip = "140.221.65.69";
    r.file_name = "/home/ftp/f";
    r.file_size = o.file_size;
    r.volume = "/home/ftp";
    r.end_time = o.time;
    r.start_time = o.time - static_cast<double>(o.file_size) / o.value;
    r.op = gridftp::Operation::kRead;
    r.streams = 8;
    r.tcp_buffer = 1'000'000;
    log.append(r);
  }
  const auto series = history::observations_from_records(log.records(), {});

  // Accuracy over the *last* 100 transfers of the campaign (so every
  // policy is scored on the same tail, with whatever history it kept).
  const predict::ClassifiedPredictor predictor(
      std::make_shared<predict::MeanPredictor>("AVG15",
                                               predict::WindowSpec::last_n(15)),
      predict::SizeClassifier::paper_classes());
  double error_sum = 0.0;
  std::size_t count = 0;
  const std::size_t tail =
      full_series.size() > 100 ? full_series.size() - 100 : 15;
  for (std::size_t i = tail; i < full_series.size(); ++i) {
    // The visible history under this policy at the time of transfer i.
    std::vector<predict::Observation> visible;
    for (const auto& o : series) {
      if (o.time < full_series[i].time) visible.push_back(o);
    }
    const auto p = predictor.predict(
        visible,
        {.time = full_series[i].time, .file_size = full_series[i].file_size});
    if (p) {
      error_sum += util::percent_error(full_series[i].value, *p);
      ++count;
    }
  }
  table.add_row({name, std::to_string(log.size()),
                 std::to_string(log.archived().size()),
                 count ? fmt(error_sum / static_cast<double>(count)) : "n/a",
                 std::to_string(count)});
}

void run() {
  auto data = run_campaign(workload::Campaign::kAugust2001);
  util::TextTable table({"policy", "live entries", "archived",
                         "tail %err (AVG15/fs)", "answered"});
  table.set_align(0, util::TextTable::Align::Left);
  run_policy("unbounded", {}, data.lbl, table);
  run_policy("running window (200 entries)",
             {.policy = gridftp::TrimPolicy::kRunningWindow,
              .max_entries = 200},
             data.lbl, table);
  run_policy("running window (50 entries)",
             {.policy = gridftp::TrimPolicy::kRunningWindow,
              .max_entries = 50},
             data.lbl, table);
  run_policy("running window (48h age)",
             {.policy = gridftp::TrimPolicy::kRunningWindow,
              .max_entries = 100000, .max_age = 48 * 3600.0},
             data.lbl, table);
  run_policy("flush-restart (200 entries)",
             {.policy = gridftp::TrimPolicy::kFlushRestart,
              .max_entries = 200},
             data.lbl, table);
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: windowed predictors only need recent same-class history,\n"
      "so aggressive trimming costs little accuracy ('old data has less\n"
      "relevance to predictions', Section 3) — but flush-restart can leave\n"
      "the live log empty right after a flush.\n");
}

}  // namespace
}  // namespace wadp::bench

int main() {
  wadp::bench::banner("Ablation: log-growth strategies (Section 3)",
                      "running-window trim vs NetLogger flush-restart vs "
                      "unbounded");
  wadp::bench::run();
  return 0;
}
