// Figure 3: a sample set from a log of transfers between ANL and LBL.
//
// Reproduces the exhibit by running the same fixed sequence the paper
// shows (10 MB through 1 GB, 8 streams, 1 MB buffers, back-to-back) on
// the simulated LBL server, then printing the log in the figure's
// column layout plus the raw ULM lines underneath.
#include "common.hpp"

namespace wadp::bench {
namespace {

void run() {
  workload::Testbed testbed(workload::Campaign::kAugust2001, kSeed);
  auto& server = testbed.server("lbl");
  auto& client = testbed.client("anl");

  const std::vector<Bytes> sizes = {10 * kMB,  25 * kMB,  50 * kMB,
                                    100 * kMB, 250 * kMB, 500 * kMB,
                                    750 * kMB, 1000 * kMB};
  // Issue the sequence back-to-back, like the paper's sample session.
  std::size_t next = 0;
  std::function<void()> issue = [&] {
    if (next >= sizes.size()) return;
    const Bytes size = sizes[next++];
    client.get(server, workload::paper_file_path(size), {},
               [&](const gridftp::TransferOutcome& outcome) {
                 if (!outcome.ok) {
                   std::printf("transfer failed: %s\n", outcome.error.c_str());
                 }
                 issue();
               });
  };
  issue();
  testbed.sim().run();

  util::TextTable table({"Source IP", "File Name", "File Size", "Volume",
                         "StartTime", "EndTime", "TotalTime", "Bandwidth",
                         "R/W", "Streams", "TCP-Buffer"});
  table.set_align(1, util::TextTable::Align::Left);
  for (const auto& r : server.log().records()) {
    table.add_row({r.source_ip, r.file_name, std::to_string(r.file_size),
                   r.volume, fmt(r.start_time, 0), fmt(r.end_time, 0),
                   fmt(r.total_time(), 0), fmt(r.bandwidth_kb_per_sec(), 0),
                   r.op == gridftp::Operation::kRead ? "Read" : "Write",
                   std::to_string(r.streams), std::to_string(r.tcp_buffer)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("raw ULM log body (Keyword=Value format, Section 3):\n\n%s\n",
              server.log().to_ulm_text().c_str());

  std::printf("paper shape check: bandwidth grows with file size "
              "(TCP startup cost), largest entry < 512 bytes\n");
  const auto records = server.log().records();
  std::size_t max_line = 0;
  for (const auto& r : records) {
    max_line = std::max(max_line, r.to_ulm().to_line().size());
  }
  std::printf("  10 MB: %.0f KB/s   1 GB: %.0f KB/s   max ULM line: %zu B\n",
              records.front().bandwidth_kb_per_sec(),
              records.back().bandwidth_kb_per_sec(), max_line);
}

}  // namespace
}  // namespace wadp::bench

int main() {
  wadp::bench::banner(
      "Figure 3: sample instrumented GridFTP transfer log (ANL <-> LBL)",
      "per-transfer records: source, file, size, volume, times, bandwidth, "
      "op, streams, buffer");
  wadp::bench::run();
  return 0;
}
