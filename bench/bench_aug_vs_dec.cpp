// Section 6.2 claim: "there was no statistical significance between the
// two data sets" (August vs December 2001) — the paper therefore shows
// only August results.
//
// Regenerates both campaigns and compares bandwidth distributions and
// predictor error profiles across them.
#include "common.hpp"

#include <cmath>

namespace wadp::bench {
namespace {

util::RunningStats bandwidth_stats(
    const std::vector<predict::Observation>& series) {
  util::RunningStats stats;
  for (const auto& o : series) stats.add(to_mb_per_sec(o.value));
  return stats;
}

void run() {
  auto aug = run_campaign(workload::Campaign::kAugust2001);
  auto dec = run_campaign(workload::Campaign::kDecember2001);

  util::TextTable dist({"Link/Campaign", "n", "mean MB/s", "stddev",
                        "min", "max"});
  for (const auto& [label, series] :
       std::vector<std::pair<std::string, const std::vector<predict::Observation>*>>{
           {"LBL Aug", &aug.lbl},
           {"LBL Dec", &dec.lbl},
           {"ISI Aug", &aug.isi},
           {"ISI Dec", &dec.isi}}) {
    const auto s = bandwidth_stats(*series);
    dist.add_row({label, std::to_string(s.count()), fmt(s.mean(), 2),
                  fmt(s.stddev(), 2), fmt(s.min(), 2), fmt(s.max(), 2)});
  }
  std::printf("%s\n", dist.render().c_str());

  std::printf("mean-difference z: LBL %.2f, ISI %.2f "
              "(|z| < ~2 => not significant at 5%%)\n\n",
              util::two_sample_z(bandwidth_stats(aug.lbl),
                                 bandwidth_stats(dec.lbl)),
              util::two_sample_z(bandwidth_stats(aug.isi),
                                 bandwidth_stats(dec.isi)));

  // Predictor error profiles across campaigns.
  const auto suite = predict::PredictorSuite::context_sensitive();
  const predict::Evaluator evaluator;
  const auto aug_eval = evaluator.run(aug.lbl, suite.pointers());
  const auto dec_eval = evaluator.run(dec.lbl, suite.pointers());
  util::TextTable errs({"Predictor", "LBL Aug %err", "LBL Dec %err"});
  for (std::size_t p = 0; p < suite.size(); ++p) {
    errs.add_row({aug_eval.predictor_names()[p],
                  fmt(aug_eval.errors(p).mean()),
                  fmt(dec_eval.errors(p).mean())});
  }
  std::printf("%s\n", errs.render().c_str());
}

}  // namespace
}  // namespace wadp::bench

int main() {
  wadp::bench::banner(
      "Aug vs Dec 2001 datasets (Section 6.2 equivalence claim)",
      "no statistically significant difference between campaigns");
  wadp::bench::run();
  return 0;
}
