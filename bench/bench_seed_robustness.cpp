// Robustness: the paper-shape results across independent simulated
// worlds.
//
// Every exhibit bench runs at one seed; this bench re-runs the headline
// evaluation (classified AVG15 error per size class, classification
// gain) across ten seeds and reports mean +/- stddev, showing the
// claims are properties of the system, not of one random draw.
#include "common.hpp"

namespace wadp::bench {
namespace {

struct SeedResult {
  double class_error[4] = {0, 0, 0, 0};  // classified AVG15, LBL link
  double classification_gain = 0.0;      // mean plain - classified, LBL
  double bw_min = 0.0, bw_max = 0.0;
};

SeedResult run_seed(std::uint64_t seed) {
  auto data = run_campaign(workload::Campaign::kAugust2001, seed);
  const auto suite = predict::PredictorSuite::paper_suite();
  const predict::Evaluator evaluator;
  const auto result = evaluator.run(data.lbl, suite.pointers());

  SeedResult out;
  const auto avg15_fs = *result.index_of("AVG15/fs");
  for (int cls = 0; cls < 4; ++cls) {
    out.class_error[cls] = result.errors(avg15_fs, cls).mean();
  }
  double plain = 0.0, classified = 0.0;
  for (const auto& name : predict::PredictorSuite::figure4_names()) {
    plain += result.errors(*result.index_of(name)).mean();
    classified += result.errors(*result.index_of(name + "/fs")).mean();
  }
  const auto n =
      static_cast<double>(predict::PredictorSuite::figure4_names().size());
  out.classification_gain = (plain - classified) / n;

  util::RunningStats bw;
  for (const auto& o : data.lbl) bw.add(to_mb_per_sec(o.value));
  out.bw_min = bw.min();
  out.bw_max = bw.max();
  return out;
}

void run() {
  constexpr int kSeeds = 10;
  std::vector<SeedResult> results;
  for (int s = 0; s < kSeeds; ++s) {
    results.push_back(run_seed(100 + static_cast<std::uint64_t>(s)));
  }

  const auto summarize = [&](auto&& extract) {
    util::RunningStats stats;
    for (const auto& r : results) stats.add(extract(r));
    return stats;
  };

  util::TextTable table({"quantity", "mean", "stddev", "min", "max"});
  table.set_align(0, util::TextTable::Align::Left);
  const auto row = [&](const std::string& label, auto&& extract) {
    const auto s = summarize(extract);
    table.add_row({label, fmt(s.mean(), 2), fmt(s.stddev(), 2),
                   fmt(s.min(), 2), fmt(s.max(), 2)});
  };
  const auto classifier = predict::SizeClassifier::paper_classes();
  for (int cls = 0; cls < 4; ++cls) {
    row("AVG15/fs %err, " + classifier.class_label(cls) + " class",
        [cls](const SeedResult& r) { return r.class_error[cls]; });
  }
  row("classification gain (points)",
      [](const SeedResult& r) { return r.classification_gain; });
  row("bandwidth floor (MB/s)", [](const SeedResult& r) { return r.bw_min; });
  row("bandwidth ceiling (MB/s)", [](const SeedResult& r) { return r.bw_max; });
  std::printf("LBL->ANL, %d independent seeds\n\n%s\n", kSeeds,
              table.render().c_str());
  std::printf(
      "shape checks that must hold at every seed:\n"
      "  10MB class worst, >=100MB classes in the ~15-35%% band,\n"
      "  classification gain positive, bandwidths within ~1.4-11 MB/s.\n");
}

}  // namespace
}  // namespace wadp::bench

int main() {
  wadp::bench::banner("Robustness: headline results across 10 seeds",
                      "paper-shape claims hold for every independent world");
  wadp::bench::run();
  return 0;
}
