// Shared plumbing for the paper-reproduction benches.
//
// Every bench binary regenerates one exhibit (table or figure) of the
// paper.  The helpers here run the standard campaigns, extract per-link
// observation series, and print consistent headers so outputs are easy
// to diff against EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/wadp.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace wadp::bench {

/// Deterministic seed used by every exhibit unless a sweep varies it.
inline constexpr std::uint64_t kSeed = 42;

/// Prints the exhibit banner.
inline void banner(const std::string& exhibit, const std::string& paper_claim) {
  std::printf("=============================================================\n");
  std::printf("%s\n", exhibit.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("=============================================================\n");
}

/// One campaign's observation series for both links, plus the campaign
/// handle (kept alive for log/provider access).
struct CampaignData {
  workload::CampaignResult result;
  std::vector<predict::Observation> lbl;  ///< LBL->ANL reads
  std::vector<predict::Observation> isi;  ///< ISI->ANL reads

  const std::vector<predict::Observation>& link(const std::string& site) const {
    return site == "lbl" ? lbl : isi;
  }
};

/// Runs the standard two-week campaign and extracts both link series.
inline CampaignData run_campaign(workload::Campaign campaign,
                                 std::uint64_t seed = kSeed,
                                 workload::CampaignConfig config = {}) {
  CampaignData data{
      .result = workload::run_paper_campaign(campaign, seed, config)};
  const auto anl_ip = data.result.testbed->client("anl").ip();
  data.lbl = history::observations_from_records(
      data.result.testbed->server("lbl").log().records(),
      {.remote_ip = anl_ip});
  data.isi = history::observations_from_records(
      data.result.testbed->server("isi").log().records(),
      {.remote_ip = anl_ip});
  return data;
}

/// The figure-order names of the 15 predictors, optionally suffixed for
/// the context-sensitive variants.
inline std::vector<std::string> predictor_names(bool classified) {
  std::vector<std::string> names;
  for (const auto& name : predict::PredictorSuite::figure4_names()) {
    names.push_back(classified ? name + "/fs" : name);
  }
  return names;
}

inline std::string fmt(double v, int precision = 1) {
  return util::format("%.*f", precision, v);
}

}  // namespace wadp::bench
