// Ablation: how the background-load model drives predictability.
//
// The whole prediction problem exists because shared-path load varies;
// this sweep re-runs the campaign with different competing-traffic
// parameterizations and reports (a) the bandwidth spread and lag-1
// autocorrelation of the measurement series and (b) classified-AVG15
// error per class — showing which simulator knobs the headline numbers
// are (and are not) sensitive to.
#include "common.hpp"

namespace wadp::bench {
namespace {

net::LoadParams calibrated() {
  // Mirror workload/testbed.cpp's wan_load, the DESIGN.md §5 baseline.
  net::LoadParams load;
  load.base = 0.38;
  load.diurnal_amplitude = 0.25;
  load.diurnal_peak_hour = 14.0;
  load.zone = util::kCdt;
  load.ar_phi = 0.97;
  load.ar_sigma = 0.035;
  load.episode_rate_per_hour = 0.12;
  load.episode_mean_minutes = 25.0;
  load.episode_utilization = 0.25;
  load.min_utilization = 0.14;
  load.max_utilization = 0.82;
  return load;
}

void run_variant(const std::string& label, const net::LoadParams& load,
                 util::TextTable& table) {
  workload::TestbedConfig config;
  config.wan_load_override = load;
  workload::Testbed testbed(workload::Campaign::kAugust2001, kSeed, config);
  workload::CampaignDriver driver(testbed, "anl", "lbl", {}, kSeed ^ 0x9);
  driver.start();
  testbed.sim().run_until(driver.end_time() + 86400.0);

  const auto series = history::observations_from_records(
      testbed.server("lbl").log().records(),
      {.remote_ip = testbed.client("anl").ip()});
  std::vector<double> values;
  util::RunningStats bw;
  for (const auto& o : series) {
    values.push_back(o.value);
    bw.add(to_mb_per_sec(o.value));
  }
  const auto lag1 = util::autocorrelation(values, 1);

  const auto suite = predict::PredictorSuite::paper_suite();
  const predict::Evaluator evaluator;
  const auto result = evaluator.run(series, suite.pointers());
  const auto avg15 = *result.index_of("AVG15/fs");

  table.add_row({label, std::to_string(series.size()),
                 fmt(bw.min(), 1) + "-" + fmt(bw.max(), 1),
                 lag1 ? fmt(*lag1, 2) : "n/a",
                 fmt(result.errors(avg15, 0).mean()),
                 fmt(result.errors(avg15, 2).mean())});
}

void run() {
  util::TextTable table({"load variant", "n", "bw MB/s", "lag-1 ac",
                         "10MB %err", "500MB %err"});
  table.set_align(0, util::TextTable::Align::Left);

  run_variant("calibrated (DESIGN.md §5)", calibrated(), table);

  auto quiet = calibrated();
  quiet.ar_sigma = 0.005;
  quiet.episode_rate_per_hour = 0.0;
  run_variant("placid: tiny AR noise, no episodes", quiet, table);

  auto noisy = calibrated();
  noisy.ar_sigma = 0.08;
  run_variant("noisy: ar_sigma 0.035 -> 0.08", noisy, table);

  auto bursty = calibrated();
  bursty.episode_rate_per_hour = 0.5;
  bursty.episode_utilization = 0.35;
  run_variant("bursty: 4x more congestion episodes", bursty, table);

  auto sticky = calibrated();
  sticky.ar_phi = 0.995;
  run_variant("sticky: ar_phi 0.97 -> 0.995 (slow drift)", sticky, table);

  auto flat = calibrated();
  flat.diurnal_amplitude = 0.0;
  run_variant("no diurnal cycle", flat, table);

  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: predictor error tracks the load's unpredictability —\n"
      "placid worlds are easy, bursty/noisy ones hard.  Persistence\n"
      "(sticky) raises lag-1 autocorrelation, which favours last-value\n"
      "over the 15-sample mean whose window straddles the slow drift.\n"
      "The headline shape (small class worst) survives every variant;\n"
      "only magnitudes move.\n");
}

}  // namespace
}  // namespace wadp::bench

int main() {
  wadp::bench::banner(
      "Ablation: background-load sensitivity (competing-traffic model)",
      "which simulator knobs the reproduced numbers depend on");
  wadp::bench::run();
  return 0;
}
