// Ablation: is the paper's accuracy metric driving its conclusions?
//
// Section 6.2 scores with |measured - predicted| / measured * 100,
// which is asymmetric: over-predicting a slow transfer can cost
// hundreds of percent while under-predicting a fast one is capped at
// 100.  We re-score the classified battery under the symmetric
// log-accuracy ratio  |ln(predicted / measured)|  and compare the
// rankings — if the orderings agree, the paper's findings are not an
// artifact of its metric.
#include "common.hpp"

#include <algorithm>
#include <cmath>

namespace wadp::bench {
namespace {

/// Spearman rank correlation between two orderings of the same names.
double spearman(const std::vector<std::string>& a,
                const std::vector<std::string>& b) {
  const auto rank_of = [](const std::vector<std::string>& order) {
    std::map<std::string, double> ranks;
    for (std::size_t i = 0; i < order.size(); ++i) {
      ranks[order[i]] = static_cast<double>(i);
    }
    return ranks;
  };
  const auto ra = rank_of(a);
  const auto rb = rank_of(b);
  const auto n = static_cast<double>(a.size());
  double d2 = 0.0;
  for (const auto& [name, rank] : ra) {
    const double d = rank - rb.at(name);
    d2 += d * d;
  }
  return 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
}

void run_link(const char* link,
              const std::vector<predict::Observation>& series) {
  const auto suite = predict::PredictorSuite::context_sensitive();
  const predict::Evaluator evaluator;
  const auto result = evaluator.run(series, suite.pointers());

  struct Row {
    std::string name;
    double pct = 0.0;      // the paper's metric
    double log_err = 0.0;  // |ln(pred/meas)|, mean
  };
  std::vector<Row> rows;
  for (std::size_t p = 0; p < suite.size(); ++p) {
    Row row;
    row.name = result.predictor_names()[p];
    row.pct = result.errors(p).mean();
    double sum = 0.0;
    std::size_t count = 0;
    for (const auto& sample : result.samples()) {
      const auto& prediction = sample.predictions[p];
      if (!prediction || *prediction <= 0.0) continue;
      sum += std::abs(std::log(*prediction / sample.measured));
      ++count;
    }
    if (count == 0) continue;
    row.log_err = sum / static_cast<double>(count);
    rows.push_back(std::move(row));
  }

  auto by_pct = rows;
  std::sort(by_pct.begin(), by_pct.end(),
            [](const Row& a, const Row& b) { return a.pct < b.pct; });
  auto by_log = rows;
  std::sort(by_log.begin(), by_log.end(),
            [](const Row& a, const Row& b) { return a.log_err < b.log_err; });

  std::printf("\n%s-ANL (n=%zu)\n", link, series.size());
  util::TextTable table({"predictor", "paper %err (rank)",
                         "|ln ratio| (rank)"});
  table.set_align(0, util::TextTable::Align::Left);
  for (const auto& row : by_pct) {
    const auto rank_in = [&](const std::vector<Row>& order) {
      for (std::size_t i = 0; i < order.size(); ++i) {
        if (order[i].name == row.name) return i + 1;
      }
      return std::size_t{0};
    };
    table.add_row({row.name,
                   fmt(row.pct) + " (" + std::to_string(rank_in(by_pct)) + ")",
                   fmt(row.log_err, 3) + " (" +
                       std::to_string(rank_in(by_log)) + ")"});
  }
  std::printf("%s", table.render().c_str());

  std::vector<std::string> pct_names, log_names;
  for (const auto& row : by_pct) pct_names.push_back(row.name);
  for (const auto& row : by_log) log_names.push_back(row.name);
  std::printf("Spearman rank correlation between the metrics: %.2f\n",
              spearman(pct_names, log_names));
}

}  // namespace
}  // namespace wadp::bench

int main() {
  using namespace wadp::bench;
  banner("Ablation: accuracy-metric sensitivity",
         "do the paper's rankings survive a symmetric error metric?");
  auto data = run_campaign(wadp::workload::Campaign::kAugust2001);
  run_link("LBL", data.lbl);
  run_link("ISI", data.isi);
  std::printf(
      "\nreading: a high rank correlation means the paper's conclusions\n"
      "(which techniques win, roughly by how much) are not artifacts of\n"
      "its asymmetric percentage metric.\n");
  return 0;
}
