// Figures 12-13: impact of file-size classification on percent error,
// LBL-ANL (Fig. 12) and ISI-ANL (Fig. 13).
//
// For each of the fifteen techniques, compares the mean error of the
// context-insensitive predictor against the same technique applied to
// size-partitioned history.  Section 4.3 reports a 5-10% average
// improvement from classification.
#include "common.hpp"

namespace wadp::bench {
namespace {

void run_link(const char* figure, const char* link,
              const std::vector<predict::Observation>& series) {
  const auto suite = predict::PredictorSuite::paper_suite();
  const predict::Evaluator evaluator;
  const auto result = evaluator.run(series, suite.pointers());

  std::printf("\n%s: %s-ANL\n", figure, link);
  util::TextTable table(
      {"Predictor", "plain %err", "classified %err", "reduction"});
  double total_plain = 0.0, total_classified = 0.0;
  for (const auto& name : predict::PredictorSuite::figure4_names()) {
    const double plain = result.errors(*result.index_of(name)).mean();
    const double classified =
        result.errors(*result.index_of(name + "/fs")).mean();
    total_plain += plain;
    total_classified += classified;
    table.add_row({name, fmt(plain), fmt(classified),
                   fmt(plain - classified)});
  }
  std::printf("%s", table.render().c_str());
  const auto n = static_cast<double>(
      predict::PredictorSuite::figure4_names().size());
  std::printf("mean across predictors: plain %.1f%%, classified %.1f%%, "
              "average reduction %.1f points\n",
              total_plain / n, total_classified / n,
              (total_plain - total_classified) / n);
}

}  // namespace
}  // namespace wadp::bench

int main() {
  using namespace wadp::bench;
  banner("Figures 12-13: impact of file-size classification (Aug 2001)",
         "classification reduces error ~5-10% on average");
  auto data = run_campaign(wadp::workload::Campaign::kAugust2001);
  run_link("Figure 12", "LBL", data.lbl);
  run_link("Figure 13", "ISI", data.isi);
  return 0;
}
