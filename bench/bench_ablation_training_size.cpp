// Ablation: sensitivity to the training-set size.
//
// Section 6.1 fixes a 15-value training prefix.  Sweeps the prefix from
// 5 to 50 and reports the mean classified-AVG15 error on the remaining
// transfers, showing how quickly the predictors become usable.
#include "common.hpp"

namespace wadp::bench {
namespace {

void run() {
  auto data = run_campaign(workload::Campaign::kAugust2001);
  const auto suite = predict::PredictorSuite::paper_suite();

  util::TextTable table({"training", "LBL AVG15/fs %err", "LBL MED/fs %err",
                         "ISI AVG15/fs %err", "ISI MED/fs %err",
                         "LBL evaluated"});
  for (const std::size_t training : {5u, 10u, 15u, 25u, 35u, 50u}) {
    predict::EvalConfig config;
    config.training_count = training;
    config.keep_samples = false;
    const predict::Evaluator evaluator(config);
    const auto lbl = evaluator.run(data.lbl, suite.pointers());
    const auto isi = evaluator.run(data.isi, suite.pointers());
    table.add_row({std::to_string(training),
                   fmt(lbl.errors(*lbl.index_of("AVG15/fs")).mean()),
                   fmt(lbl.errors(*lbl.index_of("MED/fs")).mean()),
                   fmt(isi.errors(*isi.index_of("AVG15/fs")).mean()),
                   fmt(isi.errors(*isi.index_of("MED/fs")).mean()),
                   std::to_string(lbl.evaluated_transfers())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("reading: the paper's 15-value prefix is enough — accuracy is\n"
              "flat past ~15 because the windowed predictors only ever use\n"
              "recent data anyway.\n");
}

}  // namespace
}  // namespace wadp::bench

int main() {
  wadp::bench::banner("Ablation: training-set size sweep (Section 6.1)",
                      "the paper uses a 15-value training set");
  wadp::bench::run();
  return 0;
}
