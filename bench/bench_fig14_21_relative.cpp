// Figures 14-21: relative performance of the fifteen predictors —
// per transfer, which predictor was best and which was worst — for
// ISI-ANL (Figs. 14-17) and LBL-ANL (Figs. 18-21), one figure per
// file-size class.
//
// The paper's reading: predictors that win often also lose often
// (nullifying the gain), median-based predictors vary more, and ARIMA
// does not earn its extra cost on irregular data.
#include "common.hpp"

namespace wadp::bench {
namespace {

void run_link(const char* link, int first_figure,
              const std::vector<predict::Observation>& series) {
  // The relative contest is run within the context-sensitive battery,
  // one class at a time (the figures are per size class).
  const auto suite = predict::PredictorSuite::context_sensitive();
  const predict::Evaluator evaluator;
  const auto result = evaluator.run(series, suite.pointers());
  const auto classifier = predict::SizeClassifier::paper_classes();

  for (int cls = 0; cls < classifier.num_classes(); ++cls) {
    std::printf("\nFigure %d: relative performance, %s-ANL, %s class\n",
                first_figure + cls, link,
                classifier.class_label(cls).c_str());
    util::TextTable table({"Predictor", "best %", "worst %", "n"});
    for (std::size_t p = 0; p < suite.size(); ++p) {
      const auto& rel = result.relative(p, cls);
      table.add_row({result.predictor_names()[p], fmt(rel.best_pct()),
                     fmt(rel.worst_pct()),
                     std::to_string(rel.opportunities)});
    }
    std::printf("%s", table.render().c_str());
  }
}

void summarize(const std::vector<predict::Observation>& lbl,
               const std::vector<predict::Observation>& isi) {
  // The paper's correlation claim: high best% tends to come with high
  // worst% (LV being the archetype).
  const auto suite = predict::PredictorSuite::context_sensitive();
  const predict::Evaluator evaluator;
  double lv_best = 0.0, lv_worst = 0.0, avg_best = 0.0, avg_worst = 0.0;
  for (const auto* series : {&lbl, &isi}) {
    const auto result = evaluator.run(*series, suite.pointers());
    const auto lv = *result.index_of("LV/fs");
    const auto avg = *result.index_of("AVG15/fs");
    lv_best += result.relative(lv).best_pct() / 2;
    lv_worst += result.relative(lv).worst_pct() / 2;
    avg_best += result.relative(avg).best_pct() / 2;
    avg_worst += result.relative(avg).worst_pct() / 2;
  }
  std::printf(
      "\npaper shape check (both links averaged):\n"
      "  LV     best %.1f%%, worst %.1f%%  (wins often, loses often)\n"
      "  AVG15  best %.1f%%, worst %.1f%%  (rarely extreme)\n",
      lv_best, lv_worst, avg_best, avg_worst);
}

}  // namespace
}  // namespace wadp::bench

int main() {
  using namespace wadp::bench;
  banner("Figures 14-21: relative best/worst performance of predictors",
         "high best%% correlates with high worst%%; medians vary more; "
         "ARIMA not better");
  auto data = run_campaign(wadp::workload::Campaign::kAugust2001);
  run_link("ISI", 14, data.isi);
  run_link("LBL", 18, data.lbl);
  summarize(data.lbl, data.isi);
  return 0;
}
