// Ablation: the extended battery (Section 4 variants the paper names
// but does not evaluate) against the paper's thirty.
//
//  * EWMA — "the amount of weight put on each value" (Section 4.1)
//  * ADAPT — dynamically chosen window size (Section 4.2)
//  * SREG — continuous size regression instead of discrete classes
//           (Section 4.3's correlation used directly)
#include "common.hpp"

#include "predict/extended.hpp"

namespace wadp::bench {
namespace {

void run_link(const char* link,
              const std::vector<predict::Observation>& series) {
  const auto suite = predict::extended_suite();
  const predict::Evaluator evaluator;
  const auto result = evaluator.run(series, suite.pointers());

  // Rank everything; mark extensions.
  std::vector<std::pair<double, std::string>> ranking;
  for (std::size_t p = 0; p < suite.size(); ++p) {
    if (result.errors(p).count() == 0) continue;
    ranking.emplace_back(result.errors(p).mean(),
                         result.predictor_names()[p]);
  }
  std::sort(ranking.begin(), ranking.end());

  std::printf("\n%s-ANL (n=%zu): top 12 of %zu predictors\n", link,
              series.size(), ranking.size());
  util::TextTable table({"rank", "predictor", "mean %err", "kind"});
  table.set_align(1, util::TextTable::Align::Left);
  table.set_align(3, util::TextTable::Align::Left);
  const auto kind_of = [](const std::string& name) {
    if (name.find("EWMA") != std::string::npos ||
        name.find("SREG") != std::string::npos ||
        name.find("ADAPT") != std::string::npos) {
      return "extension";
    }
    return "paper";
  };
  for (std::size_t i = 0; i < ranking.size() && i < 12; ++i) {
    table.add_row({std::to_string(i + 1), ranking[i].second,
                   fmt(ranking[i].first), kind_of(ranking[i].second)});
  }
  std::printf("%s", table.render().c_str());

  // Direct comparisons the taxonomy suggests.
  const auto err = [&](const char* name) {
    return result.errors(*result.index_of(name)).mean();
  };
  std::printf(
      "head-to-head: AVG15/fs %.1f vs EWMA0.2/fs %.1f vs ADAPT/fs %.1f; "
      "classification (AVG/fs %.1f) vs size regression (SREG %.1f)\n",
      err("AVG15/fs"), err("EWMA0.2/fs"), err("ADAPT/fs"), err("AVG/fs"),
      err("SREG"));
}

}  // namespace
}  // namespace wadp::bench

int main() {
  using namespace wadp::bench;
  banner("Ablation: extended predictor battery (EWMA / ADAPT / SREG)",
         "the paper's named-but-unevaluated variants vs its battery");
  auto data = run_campaign(wadp::workload::Campaign::kAugust2001);
  run_link("LBL", data.lbl);
  run_link("ISI", data.isi);
  return 0;
}
