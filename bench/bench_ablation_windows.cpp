// Ablation: window-size sweep for mean and median predictors.
//
// Section 6.2 notes the paper saw "no noticeable advantage in limiting
// either average or median techniques by sliding window or time frames"
// on its controlled data.  Sweeps count windows (1..100) and temporal
// windows (1h..10d) and prints the error surface so the flatness (or
// not) is visible.
#include "common.hpp"

namespace wadp::bench {
namespace {

void run_link(const char* link,
              const std::vector<predict::Observation>& series) {
  std::printf("\n%s-ANL (classified variants, n=%zu)\n", link, series.size());

  // Count windows.
  {
    util::TextTable table({"last N", "AVG %err", "MED %err"});
    for (const std::size_t n : {1u, 2u, 5u, 10u, 15u, 25u, 50u, 100u}) {
      const auto window = predict::WindowSpec::last_n(n);
      const predict::ClassifiedPredictor avg(
          std::make_shared<predict::MeanPredictor>("AVG", window),
          predict::SizeClassifier::paper_classes());
      const predict::ClassifiedPredictor med(
          std::make_shared<predict::MedianPredictor>("MED", window),
          predict::SizeClassifier::paper_classes());
      const predict::Evaluator evaluator;
      const auto result = evaluator.run(series, {&avg, &med});
      table.add_row({std::to_string(n), fmt(result.errors(0).mean()),
                     fmt(result.errors(1).mean())});
    }
    std::printf("%s", table.render().c_str());
  }

  // Temporal windows.
  {
    util::TextTable table({"window", "AVG %err", "MED %err"});
    const std::vector<std::pair<std::string, double>> windows = {
        {"1hr", 3600.0},     {"5hr", 5 * 3600.0},   {"15hr", 15 * 3600.0},
        {"25hr", 25 * 3600.0}, {"3d", 3 * 86400.0}, {"5d", 5 * 86400.0},
        {"10d", 10 * 86400.0}, {"all", 0.0}};
    for (const auto& [label, seconds] : windows) {
      const auto window = seconds > 0.0
                              ? predict::WindowSpec::last_duration(seconds)
                              : predict::WindowSpec::all();
      const predict::ClassifiedPredictor avg(
          std::make_shared<predict::MeanPredictor>("AVG", window),
          predict::SizeClassifier::paper_classes());
      const predict::ClassifiedPredictor med(
          std::make_shared<predict::MedianPredictor>("MED", window),
          predict::SizeClassifier::paper_classes());
      const predict::Evaluator evaluator;
      const auto result = evaluator.run(series, {&avg, &med});
      table.add_row({label, fmt(result.errors(0).mean()),
                     fmt(result.errors(1).mean())});
    }
    std::printf("%s", table.render().c_str());
  }
}

}  // namespace
}  // namespace wadp::bench

int main() {
  using namespace wadp::bench;
  banner("Ablation: window-size sweep (Section 6.2 observation)",
         "controlled nightly data shows little advantage to window tuning");
  auto data = run_campaign(wadp::workload::Campaign::kAugust2001);
  run_link("LBL", data.lbl);
  run_link("ISI", data.isi);
  return 0;
}
