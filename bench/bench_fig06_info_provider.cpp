// Figure 6: output fragment of the GridFTP performance information
// provider registered with the GRIS at LBL.
//
// Runs the standard campaign, points the provider at the LBL server's
// log, publishes through a GRIS, and prints the resulting LDIF (values
// rendered with the figure's "K" suffix for KB/s attributes).
#include "common.hpp"

#include "mds/gridftp_provider.hpp"

namespace wadp::bench {
namespace {

std::string with_k_suffix(const mds::Entry& entry) {
  std::string out = "dn: \"" + entry.dn().to_string() + "\"\n";
  for (const auto& attr : entry.attributes()) {
    for (const auto& value : attr.values) {
      out += attr.name + ": ";
      // Bandwidth attributes are KB/s; Fig. 6 prints them as "6062K".
      if (attr.name.find("bandwidth") != std::string::npos) {
        out += value + "K";
      } else {
        out += value;
      }
      out += '\n';
    }
  }
  return out;
}

void run() {
  auto data = run_campaign(workload::Campaign::kAugust2001);
  auto& server = data.result.testbed->server("lbl");

  mds::GridFtpInfoProvider provider(
      server, {.base = *mds::Dn::parse(
                   "hostname=dpsslx04.lbl.gov, dc=lbl, dc=gov, o=grid")});
  mds::Gris gris("lbl-gris", *mds::Dn::parse("dc=lbl, dc=gov, o=grid"));
  gris.register_provider(&provider, 300.0);

  const SimTime now = data.result.testbed->sim().now();
  const auto entries = gris.search(now, mds::Filter::match_all());
  std::printf("GRIS %s serves %zu entries from %zu providers\n\n",
              gris.name().c_str(), entries.size(), gris.provider_count());
  for (const auto& entry : entries) {
    std::printf("%s\n", with_k_suffix(entry).c_str());
  }

  // Schema validation, as the paper published schemas for this data [16].
  const auto schema = mds::GridFtpInfoProvider::schema();
  std::size_t valid = 0;
  for (const auto& entry : entries) {
    if (schema.validate(entry).empty()) ++valid;
  }
  std::printf("schema check: %zu/%zu entries valid against "
              "GridFTPPerfInfo/GridFTPServerInfo\n",
              valid, entries.size());
}

}  // namespace
}  // namespace wadp::bench

int main() {
  wadp::bench::banner(
      "Figure 6: GridFTP information-provider output at LBL",
      "per-destination min/max/avg read bandwidth, per-size-class averages "
      "and predictions, gsiftp URL");
  wadp::bench::run();
  return 0;
}
