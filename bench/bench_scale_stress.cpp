// Scalability stress: how far past the paper's 3-site testbed the
// simulator carries.
//
// Builds an N-site grid with a full directed mesh of loaded paths, runs
// a week of Poisson transfer traffic between random pairs, and reports
// wall-clock time, transfers completed, and throughput of the
// simulation itself.  This is the substrate headroom for Data-Grid-
// scale studies (the intro's tiered architecture has dozens of sites).
#include "common.hpp"

#include <chrono>

namespace wadp::bench {
namespace {

struct StressResult {
  std::size_t sites = 0;
  std::size_t transfers = 0;
  double sim_days = 0.0;
  double wall_seconds = 0.0;
};

StressResult run_scale(int site_count, int transfers_per_site_day) {
  const SimTime origin = 1'000'000'000.0;
  sim::Simulator sim(origin);
  net::FluidEngine engine(sim);
  net::Topology topology;
  util::Rng rng(kSeed);

  // Sites, storage, servers, clients.
  std::vector<std::string> sites;
  std::vector<std::unique_ptr<storage::StorageSystem>> stores;
  std::vector<std::unique_ptr<gridftp::GridFtpServer>> servers;
  std::vector<std::unique_ptr<gridftp::GridFtpClient>> clients;
  for (int i = 0; i < site_count; ++i) {
    sites.push_back("site" + std::to_string(i));
    storage::StorageParams storage_params;
    storage_params.local_load.reset();
    stores.push_back(std::make_unique<storage::StorageSystem>(
        sites.back(), storage_params, rng.next_u64(), origin));
    gridftp::ServerConfig config;
    config.site = sites.back();
    config.host = sites.back() + ".example.org";
    config.ip = "10.1." + std::to_string(i / 250) + "." +
                std::to_string(i % 250 + 1);
    servers.push_back(
        std::make_unique<gridftp::GridFtpServer>(config, *stores.back()));
    servers.back()->fs().add_volume("/data");
    servers.back()->fs().add_file("/data/file", 100 * kMB);
    clients.push_back(std::make_unique<gridftp::GridFtpClient>(
        sim, engine, topology, sites.back(), config.ip, stores.back().get()));
  }

  // Full directed mesh with loaded paths.
  for (int a = 0; a < site_count; ++a) {
    for (int b = 0; b < site_count; ++b) {
      if (a == b) continue;
      net::PathParams params;
      params.bottleneck = rng.uniform(8e6, 20e6);
      params.rtt = rng.uniform(0.02, 0.12);
      params.load.base = 0.3;
      params.load.ar_sigma = 0.03;
      topology.add_path(sites[static_cast<std::size_t>(a)],
                        sites[static_cast<std::size_t>(b)], params,
                        rng.next_u64(), origin);
    }
  }

  // Poisson traffic: each site issues gets from random peers.
  const double sim_days = 7.0;
  const double rate_per_second =
      transfers_per_site_day * site_count / util::kSecondsPerDay;
  std::size_t completed = 0;
  SimTime t = origin;
  std::size_t scheduled = 0;
  while (true) {
    t += rng.exponential(1.0 / rate_per_second);
    if (t >= origin + sim_days * util::kSecondsPerDay) break;
    const auto src = static_cast<std::size_t>(
        rng.uniform_int(0, site_count - 1));
    auto dst = static_cast<std::size_t>(rng.uniform_int(0, site_count - 1));
    if (dst == src) dst = (dst + 1) % static_cast<std::size_t>(site_count);
    ++scheduled;
    sim.schedule_at(t, [&, src, dst] {
      clients[dst]->get(*servers[src], "/data/file", {},
                        [&](const gridftp::TransferOutcome& outcome) {
                          if (outcome.ok) ++completed;
                        });
    });
  }

  const auto wall_start = std::chrono::steady_clock::now();
  sim.run();
  const auto wall_end = std::chrono::steady_clock::now();

  StressResult result;
  result.sites = static_cast<std::size_t>(site_count);
  result.transfers = completed;
  result.sim_days = sim_days;
  result.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  return result;
}

void run() {
  util::TextTable table({"sites", "paths", "transfers done",
                         "sim-days", "wall s", "transfers/s (wall)"});
  for (const int sites : {3, 10, 20, 40}) {
    const auto r = run_scale(sites, /*transfers_per_site_day=*/40);
    table.add_row({std::to_string(r.sites),
                   std::to_string(r.sites * (r.sites - 1)),
                   std::to_string(r.transfers), fmt(r.sim_days, 0),
                   fmt(r.wall_seconds, 2),
                   fmt(static_cast<double>(r.transfers) /
                       std::max(r.wall_seconds, 1e-9), 0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("reading: event count scales with transfers x (ramp events +\n"
              "load-grid wakes during each transfer), so cost grows with\n"
              "traffic and concurrency, not with idle topology size.\n");
}

}  // namespace
}  // namespace wadp::bench

int main() {
  wadp::bench::banner("Scalability stress: beyond the 3-site testbed",
                      "Data-Grid-scale meshes on the fluid simulator");
  wadp::bench::run();
  return 0;
}
