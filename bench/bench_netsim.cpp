// Grid-scale network fabric bench: event core + incremental max-min
// allocation at 100 sites / 1000 links / >= 10k concurrent flows.
//
// Runs one localized-traffic scenario on a seeded random grid with the
// lazy fluid engine.  Every allocator pass waterfills only the dirty
// connected component; every Nth pass additionally times (but does not
// apply) the reference global recompute at the same instant — the
// pre-refactor cost.  The speedup gate compares the two on a per-pass
// basis, so the claim is measured in-bench, not assumed.
//
// Enforced by exit code:
//   * scale: >= 100 sites, >= 1000 links, >= 10k peak concurrent flows;
//   * incremental reallocation >= 10x faster per pass than the
//     reference global recompute;
//   * conservation: flows started == completed + still active + shed.
//
// Emits BENCH_netsim.json (uploaded as a CI artifact).
#include "common.hpp"

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "workload/gridworld.hpp"

int main() {
  using namespace wadp;
  bench::banner("bench_netsim: grid-scale fabric",
                "scales the paper's 3-site fluid model to a data grid "
                "(incremental max-min over dirty components)");

  workload::GridSpec spec;
  spec.sites = 100;
  spec.links = 1000;

  net::EngineConfig engine_config = workload::GridWorld::default_engine_config();
  // Sparse sampling: one reference recompute is O(active flows x
  // waterfill rounds) — at 10k+ flows it costs ~4-5 orders of magnitude
  // more than the incremental pass it shadows, which is the point.
  engine_config.reference_sample_every = 4096;
  workload::GridWorld world(spec, bench::kSeed, engine_config);

  workload::ScenarioConfig scenario;
  scenario.duration = 60.0;
  scenario.arrivals_per_second = 300.0;
  scenario.locality = 1.0;  // single-link flows: components stay small
  scenario.min_size = 100 * kMB;
  scenario.max_size = 1000 * kMB;
  scenario.max_concurrent = 12'000;

  const auto summary = world.run(scenario, bench::kSeed);
  const auto& alloc = summary.alloc;

  const double inc_ns_per_pass =
      alloc.reallocs > 0
          ? static_cast<double>(alloc.alloc_ns) /
                static_cast<double>(alloc.reallocs)
          : 0.0;
  const double ref_ns_per_pass =
      alloc.reference_samples > 0
          ? static_cast<double>(alloc.reference_ns) /
                static_cast<double>(alloc.reference_samples)
          : 0.0;
  const double speedup =
      inc_ns_per_pass > 0.0 ? ref_ns_per_pass / inc_ns_per_pass : 0.0;
  const double mean_component_flows =
      alloc.reallocs > 0 ? static_cast<double>(alloc.flows_touched) /
                               static_cast<double>(alloc.reallocs)
                         : 0.0;
  const double ref_mean_flows =
      alloc.reference_samples > 0
          ? static_cast<double>(alloc.reference_flows) /
                static_cast<double>(alloc.reference_samples)
          : 0.0;

  std::printf("sites %zu  links %zu  sim %.0f s  wall %llu ms\n",
              world.topology().site_count(), world.topology().link_count(),
              summary.sim_elapsed,
              static_cast<unsigned long long>(summary.wall_ms));
  std::printf("flows: started %llu  completed %llu  shed %llu  peak %zu  "
              "at-end %zu\n",
              static_cast<unsigned long long>(summary.flows_started),
              static_cast<unsigned long long>(summary.flows_completed),
              static_cast<unsigned long long>(summary.flows_shed),
              summary.peak_concurrent, summary.active_at_end);
  std::printf("allocator: %llu passes, mean component %.1f flows "
              "(reference recomputes %.0f)\n",
              static_cast<unsigned long long>(alloc.reallocs),
              mean_component_flows, ref_mean_flows);
  std::printf("cost: incremental %.0f ns/pass, reference %.0f ns/pass "
              "=> speedup %.1fx\n",
              inc_ns_per_pass, ref_ns_per_pass, speedup);
  std::printf("link utilization: max %.1f%%  mean %.1f%%\n",
              summary.utilization.max * 100.0,
              summary.utilization.mean * 100.0);

  auto& registry = obs::Registry::global();
  registry.gauge("wadp_bench_netsim_sites", {}, "Grid sites simulated")
      .set(static_cast<double>(world.topology().site_count()));
  registry.gauge("wadp_bench_netsim_links", {}, "Grid links simulated")
      .set(static_cast<double>(world.topology().link_count()));
  registry
      .gauge("wadp_bench_netsim_peak_flows", {}, "Peak concurrent flows")
      .set(static_cast<double>(summary.peak_concurrent));
  registry
      .gauge("wadp_bench_netsim_incremental_ns_per_pass", {},
             "Mean applied waterfill cost per allocator pass (ns)")
      .set(inc_ns_per_pass);
  registry
      .gauge("wadp_bench_netsim_reference_ns_per_pass", {},
             "Mean reference global-recompute cost per sample (ns)")
      .set(ref_ns_per_pass);
  registry
      .gauge("wadp_bench_netsim_speedup", {},
             "Reference / incremental per-pass cost ratio")
      .set(speedup);
  registry
      .gauge("wadp_bench_netsim_wall_ms", {}, "Scenario wall time (ms)")
      .set(static_cast<double>(summary.wall_ms));
  const auto written =
      obs::write_bench_json("BENCH_netsim.json", "netsim", registry);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.error().c_str());
    return 1;
  }
  std::printf("wrote BENCH_netsim.json\n");

  int failures = 0;
  if (world.topology().site_count() < 100 ||
      world.topology().link_count() < 1000) {
    std::fprintf(stderr, "FAIL: scale gate (%zu sites, %zu links)\n",
                 world.topology().site_count(),
                 world.topology().link_count());
    ++failures;
  }
  if (summary.peak_concurrent < 10'000) {
    std::fprintf(stderr, "FAIL: peak concurrency %zu < 10000\n",
                 summary.peak_concurrent);
    ++failures;
  }
  if (alloc.reference_samples == 0) {
    std::fprintf(stderr, "FAIL: no reference samples taken\n");
    ++failures;
  }
  if (speedup < 10.0) {
    std::fprintf(stderr,
                 "FAIL: incremental allocation only %.1fx faster than the "
                 "reference global recompute (need >= 10x)\n",
                 speedup);
    ++failures;
  }
  if (summary.flows_started !=
      summary.flows_completed + summary.active_at_end) {
    std::fprintf(stderr, "FAIL: flow conservation violated\n");
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
