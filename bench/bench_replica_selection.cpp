// End-to-end replica selection study (Section 1 motivation, [41]).
//
// Two panels:
//  * SYMMETRIC — the paper's calibrated testbed, where LBL and ISI are
//    statistically identical.  Cross-site selection then has little
//    signal (history is hours stale relative to the load's correlation
//    time), mirroring the paper's own "inconclusive" tone.
//  * HETEROGENEOUS — ISI's connectivity to ANL degraded to 7 MB/s
//    (the paper's premise: sites differ in storage architecture and
//    connectivity).  Here published predictions identify the better
//    site decisively.
//
// Ground truth is counterfactual: per decision instant, twin testbeds
// (identical seeds, hence identical background load) actually run the
// transfer from each site.
#include "common.hpp"

#include <algorithm>
#include <chrono>
#include <functional>

#include "mds/gridftp_provider.hpp"

namespace wadp::bench {
namespace {

constexpr Bytes kFileSize = 500 * kMB;

// --- Broker inquiry-filter construction micro-panel -----------------
//
// The broker used to rebuild its GIIS inquiry per candidate by
// formatting an escaped filter string and re-parsing it — pure
// allocation churn on the selection hot path.  Filter::equals/all_of
// now build the same AST directly (and the broker memoizes the result
// per (client, host) on top).  This panel prices the replaced work.

double median_ns_per_op(std::size_t iters, std::size_t blocks,
                        const std::function<void()>& op) {
  std::vector<double> per_block;
  per_block.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const auto begin = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) op();
    const auto end = std::chrono::steady_clock::now();
    per_block.push_back(
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
                .count()) /
        static_cast<double>(iters));
  }
  std::sort(per_block.begin(), per_block.end());
  return per_block[per_block.size() / 2];
}

void run_filter_panel() {
  const std::string client = "140.221.65.69";
  const std::string host = "dpsslx04.lbl.gov";
  mds::Entry entry;
  entry.add("objectclass", "GridFTPPerfInfo");
  entry.add("cn", client);
  entry.add("hostname", host);
  std::size_t sink = 0;  // defeats dead-code elimination

  constexpr std::size_t kIters = 2000;
  constexpr std::size_t kBlocks = 41;
  const double parse_ns = median_ns_per_op(kIters, kBlocks, [&] {
    const auto filter = mds::Filter::parse(util::format(
        "(&(objectclass=GridFTPPerfInfo)(cn=%s)(hostname=%s))",
        mds::Filter::escape(client).c_str(),
        mds::Filter::escape(host).c_str()));
    sink += filter->matches(entry);
  });
  const double build_ns = median_ns_per_op(kIters, kBlocks, [&] {
    std::vector<mds::Filter> terms;
    terms.reserve(3);
    terms.push_back(mds::Filter::equals("objectclass", "GridFTPPerfInfo"));
    terms.push_back(mds::Filter::equals("cn", client));
    terms.push_back(mds::Filter::equals("hostname", host));
    sink += mds::Filter::all_of(std::move(terms)).matches(entry);
  });

  std::printf("\n--- Inquiry filter construction (broker hot path) ---\n");
  util::TextTable table({"path", "ns/op", "speedup"});
  table.set_align(0, util::TextTable::Align::Left);
  table.add_row({"format + escape + parse (old)", fmt(parse_ns, 0), "1.00"});
  table.add_row({"Filter::equals/all_of (new)", fmt(build_ns, 0),
                 fmt(parse_ns / build_ns, 2)});
  std::printf("%s", table.render().c_str());
  std::printf("(the broker additionally memoizes the built filter per\n"
              " (client, host), so steady-state selections build nothing;\n"
              " checksum %zu)\n", sink);
}

double counterfactual_bandwidth(const workload::TestbedConfig& config,
                                const char* src, SimTime t) {
  workload::Testbed twin(workload::Campaign::kAugust2001, kSeed, config);
  twin.sim().run_until(t);
  double bandwidth = 0.0;
  twin.client("anl").get(twin.server(src), workload::paper_file_path(kFileSize),
                         {},
                         [&](const gridftp::TransferOutcome& outcome) {
                           if (outcome.ok) {
                             bandwidth = outcome.record.bandwidth();
                           }
                         });
  twin.sim().run_until(t + 4 * 3600.0);
  return bandwidth;
}

void run_panel(const char* title, const workload::TestbedConfig& config) {
  // Campaign on the configured testbed.
  workload::Testbed testbed(workload::Campaign::kAugust2001, kSeed, config);
  workload::CampaignDriver lbl_driver(testbed, "anl", "lbl", {}, kSeed ^ 1);
  workload::CampaignDriver isi_driver(testbed, "anl", "isi", {}, kSeed ^ 2);
  lbl_driver.start();
  isi_driver.start();
  testbed.sim().run_until(lbl_driver.end_time() + 86400.0);
  const auto client_ip = testbed.client("anl").ip();

  // Delivery stack over the logs.
  mds::GridFtpInfoProvider lbl_provider(
      testbed.server("lbl"),
      {.base = *mds::Dn::parse("hostname=dpsslx04.lbl.gov, dc=lbl, o=grid")});
  mds::GridFtpInfoProvider isi_provider(
      testbed.server("isi"),
      {.base = *mds::Dn::parse("hostname=jet.isi.edu, dc=isi, o=grid")});
  mds::Gris lbl_gris("lbl-gris", *mds::Dn::parse("dc=lbl, o=grid"));
  mds::Gris isi_gris("isi-gris", *mds::Dn::parse("dc=isi, o=grid"));
  lbl_gris.register_provider(&lbl_provider, 300.0);
  isi_gris.register_provider(&isi_provider, 300.0);
  mds::Giis giis("top");

  replica::ReplicaCatalog catalog;
  const auto path = workload::paper_file_path(kFileSize);
  // ISI first so the "first" baseline is an arbitrary-order policy.
  catalog.add_replica("lfn://data", {.site = "isi",
                                     .server_host = "jet.isi.edu",
                                     .path = path});
  catalog.add_replica("lfn://data", {.site = "lbl",
                                     .server_host = "dpsslx04.lbl.gov",
                                     .path = path});

  struct Tally {
    double reward_sum = 0.0;
    std::size_t decisions = 0;
    std::size_t optimal = 0;
  };
  std::map<std::string, Tally> tallies;
  std::vector<std::unique_ptr<replica::ReplicaBroker>> brokers;
  for (const auto policy :
       {replica::SelectionPolicy::kPredictedBest,
        replica::SelectionPolicy::kRandom,
        replica::SelectionPolicy::kRoundRobin,
        replica::SelectionPolicy::kFirst}) {
    brokers.push_back(std::make_unique<replica::ReplicaBroker>(
        catalog, giis, policy, kSeed));
  }

  // Decisions every 90 minutes inside the nightly windows, after two
  // days of history accumulation.
  const SimTime start = testbed.start_time() + 2 * 86400.0;
  const SimTime end = testbed.sim().now() - 86400.0;
  std::size_t points = 0;
  for (SimTime t = start; t < end; t += 90 * 60.0) {
    if (!util::in_daily_window(t, testbed.zone(), 19, 7)) continue;
    ++points;
    giis.register_gris(lbl_gris, t, 2 * 3600.0);  // soft-state renewal
    giis.register_gris(isi_gris, t, 2 * 3600.0);

    const double lbl_truth = counterfactual_bandwidth(config, "lbl", t);
    const double isi_truth = counterfactual_bandwidth(config, "isi", t);
    const double best_truth = std::max(lbl_truth, isi_truth);
    if (best_truth <= 0.0) continue;

    for (auto& broker : brokers) {
      const auto selection = broker->select("lfn://data", client_ip,
                                            kFileSize, t);
      if (!selection) continue;
      const double reward =
          selection->replica.site == "lbl" ? lbl_truth : isi_truth;
      auto& tally = tallies[to_string(broker->policy())];
      tally.reward_sum += reward;
      ++tally.decisions;
      if (reward >= best_truth * 0.999) ++tally.optimal;
    }
    auto& oracle = tallies["oracle"];
    oracle.reward_sum += best_truth;
    ++oracle.decisions;
    ++oracle.optimal;
  }

  std::printf("\n--- %s (%zu decision points) ---\n", title, points);
  util::TextTable table({"policy", "decisions", "mean delivered MB/s",
                         "optimal choices %"});
  table.set_align(0, util::TextTable::Align::Left);
  for (const auto& name :
       {"oracle", "predicted-best", "round-robin", "random", "first"}) {
    const auto it = tallies.find(name);
    if (it == tallies.end()) continue;
    const auto& tally = it->second;
    table.add_row(
        {name, std::to_string(tally.decisions),
         fmt(to_mb_per_sec(tally.reward_sum /
                           static_cast<double>(tally.decisions)), 2),
         fmt(100.0 * static_cast<double>(tally.optimal) /
             static_cast<double>(tally.decisions))});
  }
  std::printf("%s", table.render().c_str());
}

}  // namespace
}  // namespace wadp::bench

int main() {
  using namespace wadp::bench;
  banner("Replica selection end-to-end (Section 1 motivation)",
         "predicted-best vs random/round-robin/first vs oracle, 500 MB "
         "class, symmetric and heterogeneous sites");

  run_filter_panel();

  run_panel("SYMMETRIC sites (paper-calibrated testbed)", {});

  wadp::workload::TestbedConfig heterogeneous;
  heterogeneous.bottleneck_overrides["isi->anl"] = 7'000'000.0;
  run_panel("HETEROGENEOUS sites (ISI->ANL degraded to 7 MB/s)",
            heterogeneous);

  std::printf(
      "\nreading: with symmetric sites, stale history cannot separate the\n"
      "links and every policy is near-oracle; once sites actually differ\n"
      "(the paper's premise), published predictions find the better site\n"
      "almost every time while order/chance baselines pay the full cost.\n");
  return 0;
}
