// Resilience plane under injected faults (retry/backoff + broker
// failover vs the paper's single-shot client).
//
// A two-replica delivery stack (predicted-best broker over published
// GridFTPPerfInfo) fetches a 10 MB file repeatedly while a seeded
// fault injector breaks attempts — refused connections, truncated data
// channels, mid-transfer stalls — and drives whole-server outage
// windows on both replicas.  The sweep raises the per-attempt fault
// rate and compares two client configurations on identical fault
// schedules:
//
//   * DISABLED — max_attempts=1, no failover (one replica budget): the
//     pre-resilience behaviour, plus a per-attempt timeout so stalled
//     channels still resolve.
//   * ENABLED — default_wan_policy() retries plus broker failover
//     across both replicas with cooldown feedback.
//
// The headline claim: at a 30% attempt-fault rate the resilient stack
// still completes >= 95% of transfers while single-shot drops to the
// raw survival rate (<= 70%).  "start delay" is the time from issuing
// the fetch to the start of the attempt that finally succeeded — the
// latency price paid for backoff and failover (first byte follows a
// constant control/data-setup overhead later).
#include "common.hpp"

#include "mds/gridftp_provider.hpp"
#include "obs/export.hpp"
#include "replica/fetcher.hpp"
#include "resilience/fault.hpp"
#include "resilience/retry.hpp"

namespace wadp::bench {
namespace {

constexpr Bytes kFileSize = 10 * kMB;
constexpr int kTransfers = 250;
constexpr Duration kSpacing = 400.0;
constexpr SimTime kFirstIssue = 600.0;

struct RunStats {
  int ok = 0;
  int failed = 0;
  util::RunningStats start_delay;  ///< issue -> successful attempt start
  std::uint64_t retries = 0;
  std::uint64_t failovers = 0;
  std::uint64_t timeouts = 0;
};

std::uint64_t retries_counter() {
  return obs::Registry::global()
      .counter("wadp_resilience_retries_total", {{"op", "get"}},
               "Attempt retries by operation")
      .value();
}

std::uint64_t failovers_counter() {
  return obs::Registry::global()
      .counter("wadp_resilience_failovers_total", {},
               "Replicas abandoned in favour of the next-best candidate")
      .value();
}

std::uint64_t timeouts_counter() {
  return obs::Registry::global()
      .counter("wadp_resilience_attempt_timeouts_total", {},
               "Attempts abandoned by the per-attempt timeout")
      .value();
}

net::PathParams quiet_path(Bandwidth bottleneck) {
  net::PathParams p;
  p.bottleneck = bottleneck;
  p.rtt = 0.05;
  p.load.base = 0.0;
  p.load.diurnal_amplitude = 0.0;
  p.load.ar_sigma = 0.0;
  p.load.episode_rate_per_hour = 0.0;
  return p;
}

storage::StorageParams dedicated_storage() {
  storage::StorageParams p;
  p.local_load.reset();
  return p;
}

/// One full sweep cell: a fresh world, `kTransfers` fetches, identical
/// fault seed for every configuration at this rate.
RunStats run_cell(double fault_rate, bool resilient) {
  sim::Simulator sim(0.0);
  net::FluidEngine engine(sim);
  net::Topology topology;
  topology.add_path("lbl", "anl", quiet_path(10'000'000.0), 1, 0.0);
  topology.add_path("anl", "lbl", quiet_path(10'000'000.0), 2, 0.0);
  topology.add_path("isi", "anl", quiet_path(5'000'000.0), 3, 0.0);
  topology.add_path("anl", "isi", quiet_path(5'000'000.0), 4, 0.0);

  storage::StorageSystem anl_store("anl", dedicated_storage(), 1, 0.0);
  storage::StorageSystem lbl_store("lbl", dedicated_storage(), 2, 0.0);
  storage::StorageSystem isi_store("isi", dedicated_storage(), 3, 0.0);
  gridftp::GridFtpServer lbl(
      {.site = "lbl", .host = "dpsslx04.lbl.gov", .ip = "131.243.2.91"},
      lbl_store);
  gridftp::GridFtpServer isi(
      {.site = "isi", .host = "jet.isi.edu", .ip = "128.9.160.100"},
      isi_store);
  const std::string client_ip = "140.221.65.69";
  for (gridftp::GridFtpServer* s : {&lbl, &isi}) {
    s->fs().add_volume("/data");
    s->fs().add_file("/data/run42", kFileSize);
  }
  // Published history ranks LBL (8 MB/s) over ISI (2 MB/s).
  for (int i = 0; i < 5; ++i) {
    const double t = 100.0 * i;
    lbl.record_transfer(client_ip, "/data/run42", kFileSize, t, t + 1.25,
                        gridftp::Operation::kRead, 8, 1'000'000);
    isi.record_transfer(client_ip, "/data/run42", kFileSize, t, t + 5.0,
                        gridftp::Operation::kRead, 8, 1'000'000);
  }
  mds::GridFtpInfoProvider lbl_provider(
      lbl,
      {.base = *mds::Dn::parse("hostname=dpsslx04.lbl.gov, dc=lbl, o=grid")});
  mds::GridFtpInfoProvider isi_provider(
      isi, {.base = *mds::Dn::parse("hostname=jet.isi.edu, dc=isi, o=grid")});
  mds::Gris lbl_gris("lbl-gris", *mds::Dn::parse("dc=lbl, o=grid"));
  mds::Gris isi_gris("isi-gris", *mds::Dn::parse("dc=isi, o=grid"));
  lbl_gris.register_provider(&lbl_provider, 300.0);
  isi_gris.register_provider(&isi_provider, 300.0);
  mds::Giis giis("top");
  giis.register_gris(lbl_gris, 0.0, 1e9);
  giis.register_gris(isi_gris, 0.0, 1e9);
  replica::ReplicaCatalog catalog;
  catalog.add_replica("lfn://run42", {.site = "lbl",
                                      .server_host = "dpsslx04.lbl.gov",
                                      .path = "/data/run42"});
  catalog.add_replica("lfn://run42", {.site = "isi",
                                      .server_host = "jet.isi.edu",
                                      .path = "/data/run42"});

  gridftp::GridFtpClient client(sim, engine, topology, "anl", client_ip,
                                &anl_store);
  replica::ReplicaBroker broker(catalog, giis,
                                replica::SelectionPolicy::kPredictedBest,
                                kSeed);
  replica::FailoverFetcher fetcher(
      sim, broker, client, [&](const replica::PhysicalReplica& replica) {
        return replica.site == "lbl" ? &lbl : &isi;
      });

  // Fault schedule: split the attempt rate across refused connections,
  // truncations, and stalls, and run decorrelated outage processes on
  // both servers.  Same seed for every configuration at this rate.
  resilience::FaultSpec spec;
  spec.connect_failure_rate = 0.5 * fault_rate;
  spec.truncation_rate = 0.3 * fault_rate;
  spec.stall_rate = 0.2 * fault_rate;
  spec.mean_fault_delay = 1.0;
  spec.mean_uptime = 2400.0;
  spec.mean_outage = 90.0;
  spec.outage_horizon = kFirstIssue + kTransfers * kSpacing + 4000.0;
  resilience::FaultInjector injector(
      sim, spec, kSeed ^ static_cast<std::uint64_t>(fault_rate * 1000.0));
  client.set_fault_injector(&injector);
  injector.watch_outages("dpsslx04.lbl.gov",
                         [&](bool up) { lbl.set_accepting(up); });
  injector.watch_outages("jet.isi.edu",
                         [&](bool up) { isi.set_accepting(up); });

  resilience::RetryPolicy policy = resilience::default_wan_policy();
  replica::FetchOptions options;
  if (!resilient) {
    // Pre-resilience single shot: one attempt, one replica.  The
    // timeout stays so stalled channels resolve at all.
    policy.max_attempts = 1;
    options.max_replicas = 1;
  }
  client.set_retry_policy(policy, kSeed);

  RunStats stats;
  const std::uint64_t retries_before = retries_counter();
  const std::uint64_t failovers_before = failovers_counter();
  const std::uint64_t timeouts_before = timeouts_counter();
  for (int i = 0; i < kTransfers; ++i) {
    const SimTime issue = kFirstIssue + i * kSpacing;
    sim.schedule_at(issue, [&, issue] {
      fetcher.fetch("lfn://run42", kFileSize, options,
                    [&stats, issue](const replica::FetchOutcome& outcome) {
                      if (outcome.ok) {
                        ++stats.ok;
                        stats.start_delay.add(
                            outcome.transfer.record.start_time - issue);
                      } else {
                        ++stats.failed;
                      }
                    });
    });
  }
  sim.run();
  stats.retries = retries_counter() - retries_before;
  stats.failovers = failovers_counter() - failovers_before;
  stats.timeouts = timeouts_counter() - timeouts_before;
  return stats;
}

int run() {
  banner("Resilience plane: retry/backoff + broker failover under faults",
         "single-shot clients surrender one transfer per fault; bounded "
         "retries plus next-best failover recover nearly all of them");

  util::TextTable table({"fault rate", "single-shot ok %", "resilient ok %",
                         "1shot delay s", "resil delay s", "retries",
                         "failovers", "timeouts"});
  table.set_align(0, util::TextTable::Align::Left);

  bool headline_ok = true;
  for (const double rate : {0.0, 0.1, 0.3, 0.5}) {
    const RunStats single = run_cell(rate, /*resilient=*/false);
    const RunStats resil = run_cell(rate, /*resilient=*/true);
    const double single_pct = 100.0 * single.ok / double(kTransfers);
    const double resil_pct = 100.0 * resil.ok / double(kTransfers);
    if (rate == 0.3 && (resil_pct < 95.0 || single_pct > 70.0)) {
      headline_ok = false;
    }
    table.add_row({fmt(100.0 * rate, 0) + "%", fmt(single_pct),
                   fmt(resil_pct),
                   fmt(single.start_delay.count() > 0
                           ? single.start_delay.mean()
                           : 0.0, 2),
                   fmt(resil.start_delay.count() > 0
                           ? resil.start_delay.mean()
                           : 0.0, 2),
                   std::to_string(resil.retries),
                   std::to_string(resil.failovers),
                   std::to_string(single.timeouts + resil.timeouts)});

    auto& registry = obs::Registry::global();
    const obs::Labels labels{{"rate", fmt(100.0 * rate, 0)}};
    registry
        .counter("wadp_bench_resilience_singleshot_ok_total", labels,
                 "Successful single-shot fetches per fault rate")
        .inc(static_cast<std::uint64_t>(single.ok));
    registry
        .counter("wadp_bench_resilience_resilient_ok_total", labels,
                 "Successful resilient fetches per fault rate")
        .inc(static_cast<std::uint64_t>(resil.ok));
    registry
        .gauge("wadp_bench_resilience_resilient_success_pct", labels,
               "Resilient success rate per fault rate")
        .set(resil_pct);
    registry
        .gauge("wadp_bench_resilience_singleshot_success_pct", labels,
               "Single-shot success rate per fault rate")
        .set(single_pct);
  }
  std::printf("%s", table.render().c_str());

  std::printf(
      "\nreading: every fault costs the single-shot client a transfer, so\n"
      "its success rate tracks the raw per-attempt survival probability;\n"
      "bounded retries absorb transient faults and failover routes around\n"
      "outage windows, holding delivery near 100%% at the price of a\n"
      "backoff-shaped start delay.  headline (30%% rate): %s\n",
      headline_ok ? "resilient >= 95%, single-shot <= 70% -- PASS"
                  : "outside expected bounds -- CHECK");

  const auto written = obs::write_bench_json(
      "BENCH_resilience.json", "resilience", obs::Registry::global());
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.error().c_str());
    return 1;
  }
  return headline_ok ? 0 : 1;
}

}  // namespace
}  // namespace wadp::bench

int main() { return wadp::bench::run(); }
