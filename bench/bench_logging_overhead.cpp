// Section 3 claim: "The entire logging process consumes on average
// approximately 25 milliseconds per transfer, which is insignificant
// compared with the total transfer time", and "each log entry is well
// under 512 bytes".
//
// Measures our instrumentation path with google-benchmark: building the
// record, resolving the volume, ULM-encoding, and appending under each
// trim policy.  (The paper's 25 ms was dominated by 2001-era timing
// syscalls and disk writes; the claim to preserve is *insignificant
// relative to transfer time*, which a fortiori holds.)
#include <benchmark/benchmark.h>

#include "gridftp/server.hpp"

namespace wadp::gridftp {
namespace {

storage::StorageParams dedicated() {
  storage::StorageParams p;
  p.local_load.reset();
  return p;
}

GridFtpServer make_server(TrimConfig trim = {}) {
  ServerConfig config;
  config.site = "lbl";
  config.host = "dpsslx04.lbl.gov";
  config.ip = "131.243.2.91";
  config.trim = trim;
  static storage::StorageSystem storage("lbl", dedicated(), 1, 0.0);
  GridFtpServer server(config, storage);
  server.fs().add_volume("/home/ftp");
  server.fs().add_file("/home/ftp/vazhkuda/100 MB", 100'000'000);
  return server;
}

void BM_RecordTransfer(benchmark::State& state) {
  auto server = make_server();
  double t = 1000.0;
  for (auto _ : state) {
    const auto record = server.record_transfer(
        "140.221.65.69", "/home/ftp/vazhkuda/100 MB", 100'000'000, t,
        t + 20.0, Operation::kRead, 8, 1'000'000);
    benchmark::DoNotOptimize(record);
    t += 30.0;
  }
  state.SetLabel("paper: ~25 ms/transfer on 2001 hardware");
}
BENCHMARK(BM_RecordTransfer);

void BM_RecordTransferWithRunningWindowTrim(benchmark::State& state) {
  auto server = make_server({.policy = TrimPolicy::kRunningWindow,
                             .max_entries = 1000});
  double t = 1000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.record_transfer(
        "140.221.65.69", "/home/ftp/vazhkuda/100 MB", 100'000'000, t,
        t + 20.0, Operation::kRead, 8, 1'000'000));
    t += 30.0;
  }
}
BENCHMARK(BM_RecordTransferWithRunningWindowTrim);

void BM_UlmEncodeRecord(benchmark::State& state) {
  auto server = make_server();
  const auto record = server.record_transfer(
      "140.221.65.69", "/home/ftp/vazhkuda/100 MB", 100'000'000, 1000.0,
      1020.0, Operation::kRead, 8, 1'000'000);
  std::size_t line_bytes = 0;
  for (auto _ : state) {
    const auto line = record.to_ulm().to_line();
    line_bytes = line.size();
    benchmark::DoNotOptimize(line);
  }
  state.counters["entry_bytes"] = static_cast<double>(line_bytes);
  state.SetLabel(line_bytes < 512 ? "entry < 512 B (paper claim holds)"
                                  : "ENTRY EXCEEDS 512 B");
}
BENCHMARK(BM_UlmEncodeRecord);

void BM_UlmParseRecord(benchmark::State& state) {
  auto server = make_server();
  const auto line = server
                        .record_transfer("140.221.65.69",
                                         "/home/ftp/vazhkuda/100 MB",
                                         100'000'000, 1000.0, 1020.0,
                                         Operation::kRead, 8, 1'000'000)
                        .to_ulm()
                        .to_line();
  for (auto _ : state) {
    auto parsed = util::UlmRecord::parse(line);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_UlmParseRecord);

}  // namespace
}  // namespace wadp::gridftp

BENCHMARK_MAIN();
