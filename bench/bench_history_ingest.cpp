// History-plane throughput: snapshot-query rate alone vs. under
// concurrent multi-threaded ingest.
//
// Acceptance target (ISSUE): with 4 ingest threads appending
// continuously, snapshot-query throughput stays within 10% of
// baseline — the point of sharding + copy-on-write snapshots is that
// readers never wait on writers.  The writers are paced at an
// aggregate rate ~4 orders of magnitude above the paper's real ingest
// (GridFTP logs grow at well under one transfer per second), so the
// measurement isolates locking behaviour rather than raw CPU
// oversubscription on small machines.  The store runs with its own
// retention cap so the steady state is bounded, the writers are
// warmed up before the measured passes, and every query scans a
// fixed-size window so reader work is identical in all scenarios.
//
// Two measurement choices keep the comparison about the *store*
// rather than the host's scheduler:
//
//  * The baseline is a control round with the same four threads
//    waking at the same cadence but appending nothing.  Merely having
//    sleeping threads wake on a single-vCPU guest costs the reader a
//    fixed share (context switches, vmexits) that is identical
//    whether the writers append 125/s or 20 000/s — measured here and
//    priced separately as the solo-vs-idle row.
//  * The pass statistic is the median timed block of kBlock queries,
//    not wall time: a preemption inflates one block in thousands and
//    the median ignores it, while a systematic cost on the reader's
//    fast path — a lock wait, a stall behind a copy-on-write clone,
//    cache interference from in-place appends — shifts the whole
//    block distribution and is fully visible.
//
// Emits BENCH_history.json for the CI artifact trail.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common.hpp"
#include "history/store.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/table.hpp"

namespace {

using namespace wadp;
using history::HistoryStore;
using history::SeriesKey;
using predict::Observation;

constexpr int kSeries = 16;
constexpr int kPrefill = 2000;         // observations per series up front
constexpr std::size_t kRetention = 4096;  // bounds the steady state
constexpr int kIngestThreads = 4;
constexpr int kAppendsPerSecondPerThread = 5000;  // paced "continuous" ingest
constexpr int kIngestBurst = 64;       // appends per pacing tick (log tailing
                                       // delivers records in bursts)
constexpr int kQueryRounds = 250000;   // snapshot+scan per measured pass
constexpr int kPasses = 5;             // median-of-5 per scenario
constexpr int kBlock = 64;             // queries per timed block
constexpr std::size_t kScanWindow = 256;  // fixed reader work per query —
                                          // generous vs. the battery's real
                                          // classified windows (tens of obs)

SeriesKey key_for(int i) {
  return {.host = "server" + std::to_string(i), .remote_ip = "140.221.65.69",
          .op = gridftp::Operation::kRead};
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void prefill(HistoryStore& store) {
  for (int s = 0; s < kSeries; ++s) {
    for (int i = 0; i < kPrefill; ++i) {
      store.append(key_for(s), Observation{.time = 1000.0 + i * 10.0,
                                           .value = 5e6 + s * 1e5,
                                           .file_size = 100 * kMB});
    }
  }
}

/// Keeps the scan observable so the optimizer cannot drop it.
std::atomic<double> g_checksum{0.0};
/// Block-time spread of the most recent pass (diagnostics).
std::atomic<double> g_last_p10{0.0};
std::atomic<double> g_last_p90{0.0};

/// One measured pass: snapshot every series round-robin and scan a
/// fixed trailing window (the provider/broker read pattern).  Queries
/// are timed in blocks of kBlock; the pass statistic is the *median*
/// block converted to queries per second (robust to the scheduler
/// preempting the reader, exposed to any per-query cost — see the
/// header comment).
double query_pass(const HistoryStore& store) {
  double checksum = 0.0;
  std::vector<double> blocks;
  blocks.reserve(kQueryRounds / kBlock);
  int i = 0;
  for (int b = 0; b < kQueryRounds / kBlock; ++b) {
    const double started = now_seconds();
    for (int k = 0; k < kBlock; ++k, ++i) {
      const auto snap = store.snapshot(key_for(i % kSeries));
      if (!snap.empty()) {
        checksum += snap.back().value;
        // Touch a spread of the most recent window, as a classified
        // window scan would; fixed size so reader work never depends
        // on how much the writers have appended.
        const auto& series = snap.observations();
        const std::size_t window = std::min(series.size(), kScanWindow);
        for (std::size_t j = series.size() - window; j < series.size();
             j += 17) {
          checksum += series[j].value;
        }
      }
    }
    blocks.push_back(now_seconds() - started);
  }
  g_checksum.store(checksum, std::memory_order_relaxed);
  std::sort(blocks.begin(), blocks.end());
  g_last_p10.store(blocks[blocks.size() / 10], std::memory_order_relaxed);
  g_last_p90.store(blocks[blocks.size() * 9 / 10], std::memory_order_relaxed);
  return static_cast<double>(kBlock) / blocks[blocks.size() / 2];
}

}  // namespace

int main() {
  bench::banner("history ingest/query throughput",
                "snapshot-isolated reads should not block on ingest "
                "(sharded store, copy-on-write epochs)");

  HistoryStore store(history::StoreConfig{
      .shard_count = 16, .max_observations_per_series = kRetention});
  prefill(store);

  // Warm-up + solo baseline (median of kPasses).
  query_pass(store);
  std::vector<double> solo;
  for (int p = 0; p < kPasses; ++p) solo.push_back(query_pass(store));
  std::sort(solo.begin(), solo.end());
  const double solo_qps = solo[kPasses / 2];
  std::printf("solo block time: p10 %.2fus p90 %.2fus\n",
              g_last_p10.load() * 1e6, g_last_p90.load() * 1e6);

  // One background-thread round: spawn kIngestThreads waking at the
  // ingest cadence, run kPasses measured passes, tear down.  With
  // do_appends=false the threads only sleep and wake — the control
  // that prices the harness (context switches, scheduler share,
  // vmexits on virtualized CPUs) without touching the store.
  std::atomic<std::uint64_t> appended{0};
  double ingest_rate = 0.0;
  const auto tick = std::chrono::duration<double>(
      static_cast<double>(kIngestBurst) / kAppendsPerSecondPerThread);
  const auto threaded_round = [&](bool do_appends) {
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> woke{0};
    std::vector<std::thread> writers;
    for (int w = 0; w < kIngestThreads; ++w) {
      writers.emplace_back([&, w] {
        int i = 0;
        while (!stop.load(std::memory_order_acquire)) {
          if (do_appends) {
            for (int b = 0; b < kIngestBurst; ++b, ++i) {
              store.append(key_for((w + i) % kSeries),
                           Observation{.time = 1000.0 + kPrefill * 10.0 + i + w,
                                       .value = 5e6,
                                       .file_size = 100 * kMB});
            }
            appended.fetch_add(kIngestBurst, std::memory_order_relaxed);
          }
          woke.fetch_add(kIngestBurst, std::memory_order_relaxed);
          std::this_thread::sleep_for(
              std::chrono::duration_cast<std::chrono::nanoseconds>(tick));
        }
      });
    }
    // Let the writers reach steady state (threads started and pacing)
    // before measuring.
    while (woke.load(std::memory_order_relaxed) < 2000) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const double started = now_seconds();
    const std::uint64_t base = appended.load(std::memory_order_relaxed);
    std::vector<double> passes;
    for (int p = 0; p < kPasses; ++p) passes.push_back(query_pass(store));
    if (do_appends) {
      ingest_rate = static_cast<double>(
                        appended.load(std::memory_order_relaxed) - base) /
                    (now_seconds() - started);
    }
    stop.store(true, std::memory_order_release);
    for (auto& t : writers) t.join();
    std::sort(passes.begin(), passes.end());
    return passes[kPasses / 2];
  };

  // Control: same thread topology and wakeup cadence, no store work.
  const double idle_qps = threaded_round(/*do_appends=*/false);
  std::printf("idle block time: p10 %.2fus p90 %.2fus\n",
              g_last_p10.load() * 1e6, g_last_p90.load() * 1e6);
  // Measurement: the same threads actually ingesting.
  const double busy_qps = threaded_round(/*do_appends=*/true);
  std::printf("busy block time: p10 %.2fus p90 %.2fus\n",
              g_last_p10.load() * 1e6, g_last_p90.load() * 1e6);

  // idle/solo prices the harness; busy/idle isolates what ingest
  // itself costs a concurrent reader — the store's accountability.
  const double ratio = busy_qps / idle_qps;

  util::TextTable table({"scenario", "query/s", "vs idle"});
  table.set_align(0, util::TextTable::Align::Left);
  table.add_row({"solo queries (no threads)", bench::fmt(solo_qps, 0),
                 bench::fmt(solo_qps / idle_qps, 2)});
  table.add_row({"queries + 4 idle threads", bench::fmt(idle_qps, 0), "1.00"});
  table.add_row({"queries + 4 ingest threads", bench::fmt(busy_qps, 0),
                 bench::fmt(ratio, 2)});
  std::printf("%s\n", table.render().c_str());
  std::printf("concurrent ingest rate: %.0f appends/s\n", ingest_rate);
  std::printf("query throughput under ingest: %.0f%% of the idle-thread "
              "baseline (target: >= 90%%)\n",
              ratio * 100.0);

  auto& registry = obs::Registry::global();
  registry.gauge("wadp_bench_history_query_qps_solo", {},
                 "Snapshot-query throughput, no background threads")
      .set(solo_qps);
  registry.gauge("wadp_bench_history_query_qps_idle_threads", {},
                 "Snapshot-query throughput with 4 idle (non-ingesting) "
                 "threads at the ingest wakeup cadence")
      .set(idle_qps);
  registry.gauge("wadp_bench_history_query_qps_under_ingest", {},
                 "Snapshot-query throughput with 4 ingest threads")
      .set(busy_qps);
  registry.gauge("wadp_bench_history_query_ratio", {},
                 "under-ingest / idle-thread query throughput")
      .set(ratio);
  registry.gauge("wadp_bench_history_ingest_rate", {},
                 "Appends per second sustained by 4 ingest threads")
      .set(ingest_rate);
  const auto written = obs::write_bench_json("BENCH_history.json",
                                             "history_ingest", registry);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.error().c_str());
    return 1;
  }
  std::printf("wrote BENCH_history.json\n");
  return 0;
}
