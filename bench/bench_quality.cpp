// Quality-plane accountability: join hit-rate and tracker overhead.
//
// Two measurements back the prediction-quality plane's budget claims:
//
//  * Join hit-rate under paced ingest.  A synthetic serving loop mimics
//    the deployed shape — per transfer, a battery of predictions is
//    recorded under the fetch's trace id, then the completed record
//    lands — with a small fraction of records arriving trace-less
//    (replayed legacy logs) to exercise the temporal fallback.  The
//    causal join must claim >= 99% of scoreable transfers; this is
//    deterministic, so the bound is enforced, not just reported.
//
//  * Tracker overhead per observed record.  observe_transfer sits on
//    the history-ingest path (a record observer), so it must stay well
//    under the ingest budget: target < 1 us/record, median of five
//    timed passes.  The headline figure measures the deployed broker
//    shape — one prediction joined per record (kPredictedBest serves
//    one AVG15/fs estimate per candidate transfer); the worst case,
//    the paper's full 30-predictor battery joined per record, is
//    reported alongside.
//
// The closed-loop demo itself runs once at the end so the JSON also
// carries the end-to-end numbers the e2e test asserts (drift alarm
// within 25 observations of the bandwidth shift, demotions observed).
//
// Emits BENCH_quality.json for the CI artifact trail.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/quality_demo.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/quality.hpp"
#include "util/table.hpp"

namespace {

using namespace wadp;

constexpr int kTransfers = 20000;      // synthetic joined transfers
constexpr int kUntracedEvery = 200;    // 0.5% exercise the fallback join
constexpr int kBatterySize = 30;       // predictions joined per transfer
constexpr int kOverheadPasses = 5;     // median-of-5 timing
constexpr int kSites = 4;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

gridftp::TransferRecord record_for(int i, std::uint64_t trace) {
  gridftp::TransferRecord record;
  record.host = "server" + std::to_string(i % kSites);
  record.source_ip = "140.221.65.69";
  record.file_name = "/data/demo";
  record.file_size = 10 * kMB;
  record.start_time = 1000.0 + i * 10.0;
  record.end_time = record.start_time + 2.0 + 0.1 * (i % 7);
  record.streams = 8;
  record.tcp_buffer = 1'000'000;
  record.trace_id = trace;
  return record;
}

/// One serving round: `battery` predictions under `trace`, then the
/// transfer record.  Returns seconds spent inside observe_transfer.
double serve_one(obs::QualityTracker& tracker, int i, std::uint64_t trace,
                 int battery) {
  const auto record = record_for(i, trace);
  for (int p = 0; p < battery; ++p) {
    tracker.record_prediction(obs::ServedPrediction{
        .trace_id = trace,
        .site = record.host,
        .file_size = record.file_size,
        .time = record.start_time - 1.0,
        .predictor = "P" + std::to_string(p),
        .value = 4.5e6 + 1e5 * (i % 5),
    });
  }
  const double started = now_seconds();
  tracker.observe_transfer(record);
  return now_seconds() - started;
}

/// Median-of-N observe_transfer cost (ns/record) at a given battery size.
double measure_overhead(std::uint64_t& next_trace, int battery) {
  std::vector<double> passes;
  for (int pass = 0; pass < kOverheadPasses; ++pass) {
    obs::QualityTracker tracker;
    double spent = 0.0;
    for (int i = 0; i < kTransfers; ++i) {
      spent += serve_one(tracker, i, next_trace++, battery);
    }
    passes.push_back(spent / kTransfers * 1e9);
  }
  std::sort(passes.begin(), passes.end());
  return passes[kOverheadPasses / 2];
}

}  // namespace

int main() {
  bench::banner("quality-plane join rate and tracker overhead",
                "causal join >= 99% with paced trace-less records; "
                "observe_transfer < 1 us/record (broker shape)");

  // --- Join hit-rate: deterministic serving loop, 0.5% untraced. ---
  obs::QualityTracker join_tracker;
  std::uint64_t next_trace = 1'000'000;  // clear of demo/CLI trace ids
  for (int i = 0; i < kTransfers; ++i) {
    const bool untraced = (i % kUntracedEvery) == kUntracedEvery - 1;
    serve_one(join_tracker, i, untraced ? 0 : next_trace++, kBatterySize);
  }
  const auto join_report = join_tracker.report();
  const double join_rate = join_report.join_rate();

  // --- Overhead: median-of-5 passes over fresh trackers. ---
  const double ns_per_record = measure_overhead(next_trace, 1);
  const double ns_per_record_battery =
      measure_overhead(next_trace, kBatterySize);

  // --- Closed loop end to end (drift alarm, demotion). ---
  const auto demo = core::run_quality_demo({});
  const auto demo_report = demo.tracker->report();

  util::TextTable table({"measurement", "value", "target"});
  table.set_align(0, util::TextTable::Align::Left);
  table.add_row({"synthetic join rate",
                 bench::fmt(100.0 * join_rate, 2) + " %", ">= 99 %"});
  table.add_row({"  trace joins", bench::fmt(double(join_report.joins_trace), 0),
                 "-"});
  table.add_row({"  fallback joins",
                 bench::fmt(double(join_report.joins_fallback), 0), "-"});
  table.add_row({"observe_transfer (1 pred)",
                 bench::fmt(ns_per_record, 0) + " ns", "< 1000 ns"});
  table.add_row({"observe_transfer (30 preds)",
                 bench::fmt(ns_per_record_battery, 0) + " ns", "-"});
  table.add_row({"demo join rate",
                 bench::fmt(100.0 * demo_report.join_rate(), 2) + " %",
                 ">= 99 %"});
  table.add_row({"demo drift lag",
                 bench::fmt(double(demo.completions_to_drift), 0) +
                     " transfers",
                 "<= 25"});
  table.add_row({"demo demotions", bench::fmt(double(demo.drift_demotions), 0),
                 ">= 1"});
  std::printf("%s\n", table.render().c_str());

  auto& registry = obs::Registry::global();
  registry.gauge("wadp_bench_quality_join_ratio", {},
                 "Joined / scoreable transfers in the synthetic serving loop")
      .set(join_rate);
  registry.gauge("wadp_bench_quality_observe_ns_per_record", {},
                 "Median observe_transfer cost, broker shape (1 prediction)")
      .set(ns_per_record);
  registry
      .gauge("wadp_bench_quality_observe_battery_ns_per_record", {},
             "Median observe_transfer cost, full 30-predictor battery join")
      .set(ns_per_record_battery);
  registry.gauge("wadp_bench_quality_demo_join_ratio", {},
                 "Joined / scoreable transfers in the closed-loop demo")
      .set(demo_report.join_rate());
  registry.gauge("wadp_bench_quality_demo_drift_lag", {},
                 "Completed transfers between bandwidth shift and first "
                 "drift alarm")
      .set(static_cast<double>(demo.completions_to_drift));
  registry.gauge("wadp_bench_quality_demo_demotions", {},
                 "Broker selections that passed over a drifting candidate")
      .set(static_cast<double>(demo.drift_demotions));
  const auto written =
      obs::write_bench_json("BENCH_quality.json", "quality", registry);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.error().c_str());
    return 1;
  }
  std::printf("wrote BENCH_quality.json\n");

  bool ok = true;
  if (join_rate < 0.99) {
    std::fprintf(stderr, "FAIL: synthetic join rate %.4f < 0.99\n", join_rate);
    ok = false;
  }
  if (demo_report.join_rate() < 0.99) {
    std::fprintf(stderr, "FAIL: demo join rate %.4f < 0.99\n",
                 demo_report.join_rate());
    ok = false;
  }
  if (demo.completions_to_drift < 0 || demo.completions_to_drift > 25) {
    std::fprintf(stderr, "FAIL: drift lag %d not in [0, 25]\n",
                 demo.completions_to_drift);
    ok = false;
  }
  // The overhead bound is generous here (shared CI runners jitter); the
  // < 1 us target is what the JSON trail tracks.
  if (ns_per_record > 10'000.0) {
    std::fprintf(stderr, "FAIL: observe_transfer %.0f ns/record > 10 us\n",
                 ns_per_record);
    ok = false;
  }
  return ok ? 0 : 1;
}
