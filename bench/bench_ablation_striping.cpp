// Ablation: striped transfers (the GridFTP extension described in the
// paper's companion reference [2]).
//
// Striping aggregates *host/storage* bandwidth by serving slices of one
// file from several data movers.  On the paper's testbed the 12.5 MB/s
// wide-area links bind first, so striping buys nothing — which is why
// the paper's experiments used a single server with parallel streams.
// On a fat (OC-12-class) path with 2001-era disks, the disks bind and
// striping scales until the network takes over.  Both regimes below.
#include "common.hpp"

#include "gridftp/client.hpp"

namespace wadp::bench {
namespace {

storage::StorageParams disk(Bandwidth rate) {
  storage::StorageParams p;
  p.read_rate = rate;
  p.write_rate = rate;
  p.local_load.reset();
  return p;
}

net::PathParams quiet_path(Bandwidth bottleneck) {
  net::PathParams p;
  p.bottleneck = bottleneck;
  p.rtt = 0.055;
  p.load.base = 0.0;
  p.load.diurnal_amplitude = 0.0;
  p.load.ar_sigma = 0.0;
  p.load.episode_rate_per_hour = 0.0;
  return p;
}

double measure(int stripe_count, Bandwidth path_bw, Bandwidth disk_bw) {
  sim::Simulator sim(998'000'000.0);
  net::FluidEngine engine(sim);
  net::Topology topology;
  topology.add_path("src", "dst", quiet_path(path_bw), 1, sim.now());
  topology.add_path("dst", "src", quiet_path(path_bw), 2, sim.now());

  storage::StorageSystem client_store("dst", disk(500e6), 99, sim.now());
  gridftp::GridFtpClient client(sim, engine, topology, "dst", "10.0.0.9",
                                &client_store);
  std::vector<std::unique_ptr<storage::StorageSystem>> stores;
  std::vector<std::unique_ptr<gridftp::GridFtpServer>> movers;
  std::vector<gridftp::GridFtpServer*> stripes;
  for (int i = 0; i < stripe_count; ++i) {
    stores.push_back(std::make_unique<storage::StorageSystem>(
        "src", disk(disk_bw), static_cast<std::uint64_t>(i) + 1, sim.now()));
    gridftp::ServerConfig config;
    config.site = "src";
    config.host = "mover" + std::to_string(i) + ".src.org";
    config.ip = "10.0.1." + std::to_string(i + 1);
    movers.push_back(
        std::make_unique<gridftp::GridFtpServer>(config, *stores.back()));
    movers.back()->fs().add_volume("/data");
    movers.back()->fs().add_file("/data/big", 500'000'000);
    stripes.push_back(movers.back().get());
  }

  double bandwidth = 0.0;
  client.striped_get(stripes, "/data/big", {},
                     [&](const gridftp::TransferOutcome& outcome) {
                       if (outcome.ok) bandwidth = outcome.record.bandwidth();
                     });
  sim.run();
  return bandwidth;
}

void run() {
  util::TextTable table({"stripes", "paper link (12.5 MB/s, 60 MB/s disks)",
                         "fat link (80 MB/s, 10 MB/s disks)"});
  for (const int stripes : {1, 2, 4, 8}) {
    table.add_row({std::to_string(stripes),
                   fmt(to_mb_per_sec(measure(stripes, 12.5e6, 60e6)), 2),
                   fmt(to_mb_per_sec(measure(stripes, 80e6, 10e6)), 2)});
  }
  std::printf("achieved bandwidth (MB/s) for a striped 500 MB retrieval\n\n%s\n",
              table.render().c_str());
  std::printf(
      "reading: on the paper's links the WAN binds and stripes are moot\n"
      "(single-server parallel streams suffice, as the paper configured);\n"
      "once the network outruns a single mover's storage, striping scales\n"
      "until it saturates the path — the regime striped GridFTP targets.\n");
}

}  // namespace
}  // namespace wadp::bench

int main() {
  wadp::bench::banner("Ablation: striped transfers (GridFTP striping, ref [2])",
                      "striping aggregates storage bandwidth; irrelevant when "
                      "the WAN binds");
  wadp::bench::run();
  return 0;
}
