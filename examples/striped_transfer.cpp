// Striped retrieval: aggregate several data movers' storage bandwidth
// (the GridFTP striping extension described in the paper's companion
// reference [2], Allcock et al.).
//
// A site exposes one logical file through four movers with 2001-era
// 10 MB/s disks behind a fat (OC-12-class) wide-area path; the client
// fetches it once from a single mover, then striped across all four,
// and prints both logs — per-stripe entries land in each mover's
// instrumented log exactly like ordinary transfers.
//
// Run:  ./build/examples/striped_transfer
#include <cstdio>

#include "core/wadp.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace wadp;

storage::StorageParams disk(Bandwidth rate) {
  storage::StorageParams p;
  p.read_rate = rate;
  p.write_rate = rate;
  p.local_load.reset();
  return p;
}

net::PathParams fat_path() {
  net::PathParams p;
  p.bottleneck = 80'000'000.0;
  p.rtt = 0.055;
  p.load.base = 0.1;
  p.load.diurnal_amplitude = 0.0;
  p.load.ar_sigma = 0.0;
  p.load.episode_rate_per_hour = 0.0;
  return p;
}

}  // namespace

int main() {
  sim::Simulator sim(998'000'000.0);
  net::FluidEngine engine(sim);
  net::Topology topology;
  topology.add_path("src", "dst", fat_path(), 1, sim.now());
  topology.add_path("dst", "src", fat_path(), 2, sim.now());

  storage::StorageSystem client_store("dst", disk(500e6), 99, sim.now());
  gridftp::GridFtpClient client(sim, engine, topology, "dst", "10.0.0.9",
                                &client_store);

  std::vector<std::unique_ptr<storage::StorageSystem>> stores;
  std::vector<std::unique_ptr<gridftp::GridFtpServer>> movers;
  std::vector<gridftp::GridFtpServer*> stripes;
  for (int i = 0; i < 4; ++i) {
    stores.push_back(std::make_unique<storage::StorageSystem>(
        "src", disk(10e6), static_cast<std::uint64_t>(i) + 1, sim.now()));
    gridftp::ServerConfig config;
    config.site = "src";
    config.host = "mover" + std::to_string(i) + ".src.org";
    config.ip = "10.0.1." + std::to_string(i + 1);
    movers.push_back(
        std::make_unique<gridftp::GridFtpServer>(config, *stores.back()));
    movers.back()->fs().add_volume("/data");
    movers.back()->fs().add_file("/data/big", 500'000'000);
    stripes.push_back(movers.back().get());
  }

  // --- single mover ---------------------------------------------------------
  double single_bw = 0.0;
  client.get(*stripes.front(), "/data/big", {},
             [&](const gridftp::TransferOutcome& o) {
               if (o.ok) single_bw = o.record.bandwidth();
             });
  sim.run();
  std::printf("single mover : %.2f MB/s (disk-bound at ~10 MB/s)\n",
              to_mb_per_sec(single_bw));

  // --- striped across four --------------------------------------------------
  double striped_bw = 0.0;
  client.striped_get(stripes, "/data/big", {},
                     [&](const gridftp::TransferOutcome& o) {
                       if (o.ok) striped_bw = o.record.bandwidth();
                     });
  sim.run();
  std::printf("4-way striped: %.2f MB/s (%.1fx)\n\n",
              to_mb_per_sec(striped_bw), striped_bw / single_bw);

  // --- the movers' instrumented logs ---------------------------------------
  util::TextTable table({"mover", "entries", "last slice", "slice MB/s"});
  table.set_align(0, util::TextTable::Align::Left);
  for (const auto* mover : stripes) {
    const auto& record = mover->log().records().back();
    table.add_row({std::string(mover->config().host),
                   std::to_string(mover->log().size()),
                   util::format_bytes(record.file_size),
                   util::format("%.2f", to_mb_per_sec(record.bandwidth()))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("each mover logged its slice exactly like an ordinary\n"
              "transfer, so the prediction pipeline sees striped traffic\n"
              "with no special cases.\n");
  return 0;
}
