// Quickstart: the whole framework in one page.
//
// 1. Build the paper's three-site testbed and run a short measurement
//    campaign over the LBL->ANL link (controlled nightly GridFTP
//    transfers, 8 streams, 1 MB buffers).
// 2. Feed the instrumented server's log into a PredictionService.
// 3. Ask for a prediction and compare predictors on the collected data.
//
// Run:  ./build/examples/quickstart
#include <cstdio>

#include "core/wadp.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace wadp;

  // --- 1. Collect measurements on the simulated testbed ------------------
  workload::CampaignConfig config;
  config.days = 7;  // one week is plenty for a demo
  auto campaign = workload::run_paper_campaign(
      workload::Campaign::kAugust2001, /*seed=*/42, config);

  auto& lbl_server = campaign.testbed->server("lbl");
  std::printf("campaign finished: %zu transfers logged at %s (%zu failed)\n",
              static_cast<std::size_t>(lbl_server.transfers_logged()),
              lbl_server.config().host.c_str(),
              campaign.lbl_to_anl->failed());

  // --- 2. Ingest the log ---------------------------------------------------
  core::PredictionService service;
  service.ingest_log(lbl_server.log());

  const core::SeriesKey key{
      .host = lbl_server.config().host,
      .remote_ip = campaign.testbed->client("anl").ip(),
      .op = gridftp::Operation::kRead,
  };
  const auto series = service.series(key);
  if (!series) {
    std::printf("no series collected — nothing to predict\n");
    return 1;
  }

  util::RunningStats bw;
  for (const auto& o : series.observations()) bw.add(to_mb_per_sec(o.value));
  std::printf("series %s: %zu observations, bandwidth %.2f..%.2f MB/s "
              "(mean %.2f)\n\n",
              key.to_string().c_str(), series.size(), bw.min(), bw.max(),
              bw.mean());

  // --- 3. Predict and evaluate ---------------------------------------------
  const SimTime now = campaign.testbed->sim().now();
  const Bytes upcoming = 500 * kMB;
  if (const auto predicted = service.predict(key, upcoming, now)) {
    std::printf("predicted bandwidth for a 500 MB transfer now: %.2f MB/s "
                "(predictor %s)\n\n",
                to_mb_per_sec(*predicted),
                service.config().default_predictor.c_str());
  }

  if (const auto evaluation = service.evaluate(key)) {
    util::TextTable table({"predictor", "mean % error", "best %", "worst %"});
    for (const auto& name : predict::PredictorSuite::figure4_names()) {
      const auto index = evaluation->index_of(name);
      if (!index) continue;
      const auto& errors = evaluation->errors(*index);
      const auto& relative = evaluation->relative(*index);
      table.add_row({name, util::format("%.1f", errors.mean()),
                     util::format("%.1f", relative.best_pct()),
                     util::format("%.1f", relative.worst_pct())});
    }
    std::printf("%s\n", table.render().c_str());
  }
  return 0;
}
