// The delivery infrastructure on its own (Section 5 / Fig. 5): three
// site GRIS servers with GridFTP performance providers register into a
// GIIS via the soft-state protocol; a user issues LDAP-style inquiries.
//
// Run:  ./build/examples/information_service
#include <cstdio>

#include "core/wadp.hpp"
#include "util/strings.hpp"

int main() {
  using namespace wadp;

  workload::CampaignConfig config;
  config.days = 5;
  auto campaign = workload::run_paper_campaign(
      workload::Campaign::kAugust2001, /*seed=*/3, config);
  auto& testbed = *campaign.testbed;
  const SimTime now = testbed.sim().now();

  // One GRIS + provider per site, all registered into one GIIS.
  struct Site {
    std::string name;
    std::string host;
    std::string suffix;
  };
  const std::vector<Site> sites = {
      {"anl", "mirage.anl.gov", "dc=anl, dc=gov, o=grid"},
      {"isi", "jet.isi.edu", "dc=isi, dc=edu, o=grid"},
      {"lbl", "dpsslx04.lbl.gov", "dc=lbl, dc=gov, o=grid"},
  };
  std::vector<std::unique_ptr<mds::GridFtpInfoProvider>> providers;
  std::vector<std::unique_ptr<mds::Gris>> gris_servers;
  mds::Giis giis("grid-giis");
  for (const auto& site : sites) {
    providers.push_back(std::make_unique<mds::GridFtpInfoProvider>(
        testbed.server(site.name),
        mds::GridFtpProviderConfig{
            .base = *mds::Dn::parse("hostname=" + site.host + ", " +
                                    site.suffix)}));
    gris_servers.push_back(std::make_unique<mds::Gris>(
        site.name + "-gris", *mds::Dn::parse(site.suffix)));
    gris_servers.back()->register_provider(providers.back().get(), 300.0);
    giis.register_gris(*gris_servers.back(), now, 1800.0);
  }
  std::printf("GIIS '%s': %zu live GRIS registrations (soft state, 1800 s "
              "TTL)\n\n",
              giis.name().c_str(), giis.live_registrations(now));

  // Inquiry 1: every GridFTP server on the grid.
  const auto servers = giis.search(
      now, *mds::Filter::parse("(objectclass=GridFTPServerInfo)"));
  std::printf("inquiry (objectclass=GridFTPServerInfo): %zu servers\n",
              servers.size());
  for (const auto& entry : servers) {
    std::printf("  %-20s %s  transfers=%s\n",
                std::string(*entry.get("hostname")).c_str(),
                std::string(*entry.get("gridftpurl")).c_str(),
                std::string(*entry.get("numtransfers")).c_str());
  }

  // Inquiry 2: who has fast recent reads toward the ANL client?
  const auto anl_ip = testbed.client("anl").ip();
  const auto fast = giis.search(
      now, *mds::Filter::parse(util::format(
               "(&(objectclass=GridFTPPerfInfo)(cn=%s)"
               "(predictedrdbandwidthfivehundredmbrange>=5000))",
               mds::Filter::escape(anl_ip).c_str())));
  std::printf("\ninquiry: predicted 500MB-class read bandwidth to %s >= "
              "5000 KB/s:\n", anl_ip.c_str());
  for (const auto& entry : fast) {
    std::printf("  %-20s predicted=%sK avg=%sK over %s transfers\n",
                std::string(*entry.get("hostname")).c_str(),
                std::string(*entry.get("predictedrdbandwidthfivehundredmbrange"))
                    .c_str(),
                std::string(*entry.get("avgrdbandwidth")).c_str(),
                std::string(*entry.get("numrdtransfers")).c_str());
  }

  // Inquiry 3: full LDIF for one entry (the Fig. 6 fragment).
  const auto lbl_entry = giis.search(
      now, *mds::Filter::parse(util::format(
               "(&(objectclass=GridFTPPerfInfo)(hostname=dpsslx04.lbl.gov)"
               "(cn=%s))", mds::Filter::escape(anl_ip).c_str())));
  if (!lbl_entry.empty()) {
    std::printf("\nLDIF of the LBL entry (cf. paper Fig. 6):\n%s",
                lbl_entry.front().to_ldif().c_str());
  }

  // Soft state: let the registrations lapse and show the GIIS empties.
  const SimTime later = now + 7200.0;
  std::printf("\nafter 2 h without renewal: %zu live registrations, "
              "inquiry returns %zu entries\n",
              giis.live_registrations(later),
              giis.search(later, mds::Filter::match_all()).size());
  return 0;
}
