// Offline trace analysis: the "bring your own log" workflow.
//
// A site operator has a ULM transfer log on disk (here we generate one
// by campaign and save it, standing in for a real instrumented server's
// file).  The tool loads it, summarizes the series per remote endpoint,
// evaluates the full predictor battery, and prints which predictor to
// deploy — exactly the postmortem the paper runs in Section 6.
//
// Run:  ./build/examples/trace_analysis [log.ulm]
#include <cstdio>

#include "core/wadp.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

std::string generate_sample_log(const std::string& path) {
  wadp::workload::CampaignConfig config;
  config.days = 10;
  auto campaign = wadp::workload::run_paper_campaign(
      wadp::workload::Campaign::kAugust2001, /*seed=*/21, config);
  const auto saved = campaign.testbed->server("lbl").log().save(path);
  if (!saved.ok()) {
    std::fprintf(stderr, "cannot write sample log: %s\n",
                 saved.error().c_str());
    std::exit(1);
  }
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wadp;

  const std::string path =
      argc > 1 ? argv[1] : generate_sample_log("/tmp/wadp_sample_log.ulm");
  auto loaded = gridftp::TransferLog::load(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                 loaded.error().c_str());
    return 1;
  }
  const auto& log = loaded.value();
  std::printf("loaded %s: %zu transfer records\n\n", path.c_str(), log.size());

  core::PredictionService service;
  service.ingest_log(log);

  for (const auto& key : service.series_keys()) {
    const auto series = service.series(key);
    util::RunningStats bw;
    for (const auto& o : series.observations()) bw.add(to_mb_per_sec(o.value));
    std::printf("series %s: %zu observations, %.2f..%.2f MB/s (mean %.2f)\n",
                key.to_string().c_str(), series.size(), bw.min(), bw.max(),
                bw.mean());

    const auto evaluation = service.evaluate(key);
    if (!evaluation) {
      std::printf("  (too short to evaluate)\n\n");
      continue;
    }

    // Rank the battery by overall error; print the leaders.
    std::vector<std::pair<double, std::string>> ranking;
    for (std::size_t p = 0; p < evaluation->predictor_names().size(); ++p) {
      const auto& errors = evaluation->errors(p);
      if (errors.count() == 0) continue;
      ranking.emplace_back(errors.mean(), evaluation->predictor_names()[p]);
    }
    std::sort(ranking.begin(), ranking.end());
    util::TextTable table({"rank", "predictor", "mean % error"});
    table.set_align(1, util::TextTable::Align::Left);
    for (std::size_t i = 0; i < ranking.size() && i < 5; ++i) {
      table.add_row({std::to_string(i + 1), ranking[i].second,
                     util::format("%.1f", ranking[i].first)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("  recommendation: deploy %s for this series\n\n",
                ranking.front().second.c_str());
  }
  return 0;
}
