// The tiered Data Grid of the paper's introduction.
//
// "Several high-energy physics experiments have agreed on a tiered Data
// Grid architecture in which all data is located at a single Tier 0
// site; various subsets ... at national Tier 1 sites; smaller subsets
// are cached at smaller regional Tier 2 sites."  This example stages a
// data set at a Tier-0 site (LBL), replicates subsets down the tiers
// with *third-party* GridFTP transfers, registers every copy in the
// replica catalog, stacks the information service hierarchically
// (site GRIS -> tier GIIS -> top GIIS), and lets a Tier-2 client's
// broker pick the best source per file.
//
// Run:  ./build/examples/data_grid_tiers
#include <cstdio>

#include "core/wadp.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace wadp;

  // anl: Tier 1, isi: Tier 2 client site, lbl: Tier 0 archive.
  workload::Testbed testbed(workload::Campaign::kAugust2001, /*seed=*/13);
  auto& tier0 = testbed.server("lbl");
  auto& tier1 = testbed.server("anl");
  auto& isi_client = testbed.client("isi");

  // --- Stage the experiment's runs at Tier 0 -----------------------------
  replica::ReplicaCatalog catalog;
  const std::vector<Bytes> runs = {100 * kMB, 250 * kMB, 500 * kMB,
                                   1000 * kMB};
  tier0.fs().add_volume("/archive");
  for (const Bytes size : runs) {
    const auto path = "/archive/run-" + util::format_bytes(size);
    tier0.fs().add_file(path, size);
    catalog.add_replica("lfn://higgs/" + util::format_bytes(size),
                        {.site = "lbl", .server_host = tier0.config().host,
                         .path = path});
  }

  // --- Replicate a subset to Tier 1 via third-party transfers ------------
  tier1.fs().add_volume("/cache");
  auto& operations_client = testbed.client("anl");  // drives the copies
  std::size_t replicated = 0;
  for (const Bytes size : {100 * kMB, 500 * kMB}) {
    const auto src = "/archive/run-" + util::format_bytes(size);
    const auto dst = "/cache/run-" + util::format_bytes(size);
    operations_client.third_party(
        tier0, tier1, src, dst, {},
        [&, size, dst](const gridftp::TransferOutcome& outcome) {
          if (!outcome.ok) return;
          ++replicated;
          catalog.add_replica("lfn://higgs/" + util::format_bytes(size),
                              {.site = "anl",
                               .server_host = tier1.config().host,
                               .path = dst});
        });
  }
  testbed.sim().run_until(testbed.sim().now() + 3600.0);
  std::printf("Tier 0 -> Tier 1 replication: %zu third-party copies done; "
              "Tier 0 logged %zu reads, Tier 1 logged %zu writes\n\n",
              replicated, tier0.log().size(), tier1.log().size());

  // --- Build selection history: the ISI client fetches for a while -------
  for (int i = 0; i < 24; ++i) {
    const Bytes size = runs[static_cast<std::size_t>(i) % runs.size()];
    const auto logical = "lfn://higgs/" + util::format_bytes(size);
    for (const auto& replica : catalog.replicas(logical)) {
      (void)replica;  // fetch from each replica alternately via catalog order
    }
    const auto& replica =
        catalog.replicas(logical)[static_cast<std::size_t>(i) % 2 == 0 ? 0 :
                                  catalog.replicas(logical).size() - 1];
    isi_client.get(testbed.server(replica.site), replica.path, {},
                   [](const gridftp::TransferOutcome&) {});
    testbed.sim().run_until(testbed.sim().now() + 1800.0);
  }

  // --- Hierarchical information service -----------------------------------
  mds::GridFtpInfoProvider tier0_provider(
      tier0, {.base = *mds::Dn::parse("hostname=" + tier0.config().host +
                                      ", dc=lbl, dc=gov, o=grid")});
  mds::GridFtpInfoProvider tier1_provider(
      tier1, {.base = *mds::Dn::parse("hostname=" + tier1.config().host +
                                      ", dc=anl, dc=gov, o=grid")});
  mds::Gris tier0_gris("lbl-gris", *mds::Dn::parse("dc=lbl, dc=gov, o=grid"));
  mds::Gris tier1_gris("anl-gris", *mds::Dn::parse("dc=anl, dc=gov, o=grid"));
  tier0_gris.register_provider(&tier0_provider, 300.0);
  tier1_gris.register_provider(&tier1_provider, 300.0);
  const SimTime now = testbed.sim().now();
  mds::Giis tier_giis("tier01-giis");
  tier_giis.register_gris(tier0_gris, now, 7200.0);
  tier_giis.register_gris(tier1_gris, now, 7200.0);
  mds::Giis top_giis("vo-giis");
  top_giis.register_giis(tier_giis, now, 7200.0);
  std::printf("information hierarchy: %s -> %s -> {%s, %s}; top-level view "
              "holds %zu entries\n\n",
              top_giis.name().c_str(), tier_giis.name().c_str(),
              tier0_gris.name().c_str(), tier1_gris.name().c_str(),
              top_giis.search(now, mds::Filter::match_all()).size());

  // --- Broker decisions for the Tier-2 client ------------------------------
  replica::ReplicaBroker broker(catalog, top_giis,
                                replica::SelectionPolicy::kPredictedBest);
  util::TextTable table({"logical file", "replicas", "chosen", "predicted MB/s"});
  table.set_align(2, util::TextTable::Align::Left);
  for (const Bytes size : runs) {
    const auto logical = "lfn://higgs/" + util::format_bytes(size);
    const auto selection =
        broker.select(logical, isi_client.ip(), size, testbed.sim().now());
    if (!selection) continue;
    table.add_row(
        {logical, std::to_string(catalog.replicas(logical).size()),
         selection->replica.site + " (" + selection->replica.path + ")",
         selection->predicted_bandwidth
             ? util::format("%.2f", to_mb_per_sec(*selection->predicted_bandwidth))
             : std::string("n/a")});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("note: files replicated to Tier 1 offer two sources; the\n"
              "broker ranks them by the hierarchy-published predictions.\n");
  return 0;
}
