// Regenerate the paper's trace archive (its reference [15], long dead):
// both two-week campaigns' instrumented logs as ULM files on disk, one
// per (campaign, serving site), plus a manifest summarizing each.
//
// Run:  ./build/examples/generate_traces [output-dir]
#include <cstdio>
#include <filesystem>

#include "core/wadp.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace wadp;

  const std::string out_dir = argc > 1 ? argv[1] : "traces";
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  util::TextTable manifest({"file", "records", "bytes", "bw MB/s (min/mean/max)"});
  manifest.set_align(0, util::TextTable::Align::Left);

  for (const auto campaign :
       {workload::Campaign::kAugust2001, workload::Campaign::kDecember2001}) {
    auto result = workload::run_paper_campaign(campaign, /*seed=*/42, {});
    const char* tag =
        campaign == workload::Campaign::kAugust2001 ? "aug2001" : "dec2001";
    for (const char* site : {"lbl", "isi"}) {
      const auto& log = result.testbed->server(site).log();
      const auto path =
          out_dir + "/gridftp-" + site + "-anl-" + tag + ".ulm";
      const auto saved = log.save(path);
      if (!saved.ok()) {
        std::fprintf(stderr, "write failed: %s\n", saved.error().c_str());
        return 1;
      }
      util::RunningStats bw;
      for (const auto& r : log.records()) bw.add(to_mb_per_sec(r.bandwidth()));
      manifest.add_row(
          {path, std::to_string(log.size()),
           std::to_string(std::filesystem::file_size(path)),
           util::format("%.2f / %.2f / %.2f", bw.min(), bw.mean(), bw.max())});
    }
  }

  std::printf("%s\n", manifest.render().c_str());
  std::printf("Analyze any of these with:  ./build/examples/trace_analysis "
              "%s/<file>\n", out_dir.c_str());
  return 0;
}
