// Replica selection: the paper's motivating scenario end to end.
//
// A physics data set is replicated at LBL and ISI; a client at ANL must
// decide where to fetch each file from.  Both sites run instrumented
// GridFTP servers whose information providers publish statistics and
// predictions into the MDS; a broker queries the GIIS and picks the
// replica with the highest predicted bandwidth — then we actually run
// the chosen transfer and report what it delivered.
//
// Run:  ./build/examples/replica_selection
#include <cstdio>

#include "core/wadp.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace wadp;

  // --- History: a week of measured transfers on both links ---------------
  workload::CampaignConfig config;
  config.days = 7;
  auto campaign = workload::run_paper_campaign(
      workload::Campaign::kAugust2001, /*seed=*/7, config);
  auto& testbed = *campaign.testbed;
  std::printf("history collected: LBL %zu transfers, ISI %zu transfers\n\n",
              testbed.server("lbl").log().size(),
              testbed.server("isi").log().size());

  // --- Delivery infrastructure (Section 5) --------------------------------
  // InformationFabric stands up a provider + GRIS per site and registers
  // them with one GIIS (see examples/information_service.cpp for the
  // same arrangement wired by hand).
  core::InformationFabric fabric(testbed);

  // --- Replica catalog -----------------------------------------------------
  replica::ReplicaCatalog catalog;
  for (const Bytes size : {100 * kMB, 500 * kMB, 1000 * kMB}) {
    const auto logical = "lfn://cms/run/" + util::format_bytes(size);
    for (const auto& [site, host] :
         std::vector<std::pair<std::string, std::string>>{
             {"lbl", "dpsslx04.lbl.gov"}, {"isi", "jet.isi.edu"}}) {
      catalog.add_replica(logical, {.site = site,
                                    .server_host = host,
                                    .path = workload::paper_file_path(size)});
    }
  }

  // --- Select and fetch ----------------------------------------------------
  replica::ReplicaBroker broker(catalog, fabric.giis(),
                                replica::SelectionPolicy::kPredictedBest);
  auto& client = testbed.client("anl");

  util::TextTable table({"logical file", "chosen site", "predicted MB/s",
                         "delivered MB/s"});
  table.set_align(1, util::TextTable::Align::Left);
  for (const Bytes size : {100 * kMB, 500 * kMB, 1000 * kMB}) {
    const auto logical = "lfn://cms/run/" + util::format_bytes(size);
    // Real GRIS daemons renew their soft-state registration on a timer;
    // our selections span simulated hours, so renew before each inquiry.
    fabric.renew(testbed.sim().now());
    const auto selection = broker.select(logical, client.ip(), size,
                                         testbed.sim().now());
    if (!selection) {
      std::printf("no replicas for %s\n", logical.c_str());
      continue;
    }
    double delivered = 0.0;
    client.get(testbed.server(selection->replica.site),
               selection->replica.path, {},
               [&](const gridftp::TransferOutcome& outcome) {
                 if (outcome.ok) delivered = outcome.record.bandwidth();
               });
    testbed.sim().run_until(testbed.sim().now() + 3600.0);
    table.add_row(
        {logical, selection->replica.site,
         selection->predicted_bandwidth
             ? util::format("%.2f", to_mb_per_sec(*selection->predicted_bandwidth))
             : std::string("n/a"),
         util::format("%.2f", to_mb_per_sec(delivered))});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
