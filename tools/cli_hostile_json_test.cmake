# Hostile-name JSON smoke test: a log whose host name carries a quote
# and a backslash must come out of `wadp history --json` escaped, not
# spliced raw into the document (the bug every hand-rolled emitter in
# wadp.cpp had before util::json_escape).
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(LOG "${WORK_DIR}/hostile.ulm")
# ULM-quoted HOST value: evil"host\grid.example.org
file(WRITE "${LOG}"
  "HOST=\"evil\\\"host\\\\grid.example.org\" SOURCE=10.0.0.1 FILE=/data/f SIZE=1000000 VOLUME=/data START=100.000 END=104.000 OP=read STREAMS=4 BUFFER=1000000\n")

execute_process(COMMAND "${WADP_CLI}" history "${LOG}" --json
                RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "wadp history --json failed (${code}):\n${out}\n${err}")
endif()

# The escaped form evil\"host\\grid must appear...
string(FIND "${out}" "evil\\\"host\\\\grid.example.org" escaped_at)
if(escaped_at EQUAL -1)
  message(FATAL_ERROR "JSON output missing escaped host name:\n${out}")
endif()
# ...and the raw unescaped quote (l directly followed by ") must not.
string(FIND "${out}" "evil\"host" raw_at)
if(NOT raw_at EQUAL -1)
  message(FATAL_ERROR "JSON output contains unescaped host name:\n${out}")
endif()

# When an interpreter is around, prove the whole document parses.
if(PYTHON AND EXISTS "${PYTHON}")
  file(WRITE "${WORK_DIR}/out.json" "${out}")
  execute_process(
    COMMAND "${PYTHON}" -c "import json,sys; json.load(open(sys.argv[1]))"
            "${WORK_DIR}/out.json"
    RESULT_VARIABLE pycode OUTPUT_VARIABLE pyout ERROR_VARIABLE pyerr)
  if(NOT pycode EQUAL 0)
    message(FATAL_ERROR "JSON output does not parse:\n${pyerr}\n${out}")
  endif()
endif()

# Health plane: `wadp health --json` and the flight bundle it captures
# are both hand-rolled emitters — prove each parses, and that the
# bundle's ULM twin exists alongside the JSON.
execute_process(COMMAND "${WADP_CLI}" health --transfers 10 --interval 60
                        --capture "${WORK_DIR}/flight" --json
                RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "wadp health --json failed (${code}):\n${out}\n${err}")
endif()
file(GLOB bundle_json "${WORK_DIR}/flight/flight-*.json")
file(GLOB bundle_ulm "${WORK_DIR}/flight/flight-*.ulm")
if(NOT bundle_json OR NOT bundle_ulm)
  message(FATAL_ERROR "health --capture left no flight bundle in ${WORK_DIR}/flight")
endif()
if(PYTHON AND EXISTS "${PYTHON}")
  file(WRITE "${WORK_DIR}/health.json" "${out}")
  list(GET bundle_json 0 first_bundle)
  execute_process(
    COMMAND "${PYTHON}" -c "import json,sys; json.load(open(sys.argv[1])); json.load(open(sys.argv[2]))"
            "${WORK_DIR}/health.json" "${first_bundle}"
    RESULT_VARIABLE pycode OUTPUT_VARIABLE pyout ERROR_VARIABLE pyerr)
  if(NOT pycode EQUAL 0)
    message(FATAL_ERROR "health/bundle JSON does not parse:\n${pyerr}")
  endif()
endif()
