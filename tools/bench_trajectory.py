#!/usr/bin/env python3
"""Merge every BENCH_*.json artifact into one BENCH_trajectory.json.

CI emits one JSON file per bench, in two shapes:

  * the obs exporter's ``write_bench_json`` form —
    ``{"bench": name, "metrics": {counters, gauges, histograms}}``;
  * google-benchmark's ``--benchmark_out`` form —
    ``{"context": {...}, "benchmarks": [{"name", "cpu_time", ...}]}``.

This script flattens both into one document keyed by bench name, so a
single artifact carries the whole performance trajectory of a commit
and downstream tooling can diff two commits' trajectories without
knowing which harness produced which number.

Scalar extraction:

  * obs form: counters and gauges pass through as ``metric -> value``;
    histograms contribute ``metric:count`` and ``metric:sum``.
  * google-benchmark form: each benchmark contributes
    ``name:cpu_ns`` and ``name:real_ns`` (times normalized to ns) plus
    any user counters.

Usage: ``bench_trajectory.py [--out FILE] [BENCH_*.json ...]``
With no file arguments, globs ``BENCH_*.json`` in the working
directory (skipping the output file itself).  Exits non-zero when no
input parses — an empty trajectory upload would silently hide a broken
bench step.
"""

import argparse
import json
import pathlib
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# google-benchmark per-run bookkeeping fields that are not measurements.
GBENCH_META = {
    "name", "family_index", "per_family_instance_index", "run_name",
    "run_type", "repetitions", "repetition_index", "threads", "iterations",
    "real_time", "cpu_time", "time_unit", "aggregate_name", "aggregate_unit",
    "label", "error_occurred", "error_message",
}


def flatten_obs(doc: dict) -> tuple[str, dict[str, float]]:
    """Flattens a write_bench_json document to (bench, scalars)."""
    scalars: dict[str, float] = {}
    metrics = doc.get("metrics", {})
    for section in ("counters", "gauges"):
        for name, value in metrics.get(section, {}).items():
            scalars[name] = float(value)
    for name, hist in metrics.get("histograms", {}).items():
        scalars[f"{name}:count"] = float(hist.get("count", 0))
        scalars[f"{name}:sum"] = float(hist.get("sum", 0.0))
    return str(doc["bench"]), scalars


def flatten_gbench(doc: dict, stem: str) -> tuple[str, dict[str, float]]:
    """Flattens a --benchmark_out document to (bench, scalars)."""
    scalars: dict[str, float] = {}
    for run in doc.get("benchmarks", []):
        name = run.get("name", "?")
        unit = TIME_UNIT_NS.get(run.get("time_unit", "ns"), 1.0)
        if "cpu_time" in run:
            scalars[f"{name}:cpu_ns"] = float(run["cpu_time"]) * unit
        if "real_time" in run:
            scalars[f"{name}:real_ns"] = float(run["real_time"]) * unit
        for key, value in run.items():
            if key not in GBENCH_META and isinstance(value, (int, float)):
                scalars[f"{name}:{key}"] = float(value)
    # The gbench document does not name the suite; use the file stem
    # (BENCH_predictor.json -> predictor).
    bench = stem.removeprefix("BENCH_").lower()
    return bench, scalars


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_trajectory.json")
    parser.add_argument("inputs", nargs="*")
    args = parser.parse_args(argv[1:])

    out_path = pathlib.Path(args.out)
    paths = [pathlib.Path(p) for p in args.inputs]
    if not paths:
        paths = sorted(pathlib.Path(".").glob("BENCH_*.json"))
    paths = [p for p in paths if p.resolve() != out_path.resolve()]

    benches: dict[str, dict[str, float]] = {}
    skipped: list[str] = []
    for path in paths:
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as err:
            skipped.append(f"{path}: {err}")
            continue
        if "metrics" in doc and "bench" in doc:
            bench, scalars = flatten_obs(doc)
        elif "benchmarks" in doc:
            bench, scalars = flatten_gbench(doc, path.stem)
        else:
            skipped.append(f"{path}: unrecognized schema")
            continue
        # Same bench emitted twice (e.g. re-runs): later files win per
        # key, which matches "the freshest number is the trajectory".
        benches.setdefault(bench, {}).update(scalars)

    for message in skipped:
        print(f"bench_trajectory: skipped {message}", file=sys.stderr)
    if not benches:
        print("bench_trajectory: no inputs parsed", file=sys.stderr)
        return 1

    doc = {
        "benches": {name: dict(sorted(scalars.items()))
                    for name, scalars in sorted(benches.items())},
        "bench_count": len(benches),
        "scalar_count": sum(len(s) for s in benches.values()),
        "skipped": len(skipped),
    }
    out_path.write_text(json.dumps(doc, indent=1, sort_keys=False) + "\n",
                        encoding="utf-8")
    print(f"bench_trajectory: merged {len(benches)} bench(es), "
          f"{doc['scalar_count']} scalars -> {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
