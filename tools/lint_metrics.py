#!/usr/bin/env python3
"""Metric-name lint for the wadp observability taxonomy.

Scans C++ sources for obs::Registry registrations --
``.counter("name")``, ``.gauge("name")``, ``.histogram("name")`` -- and
enforces the naming contract documented in docs/OBSERVABILITY.md:

  * every instrument is namespaced with the ``wadp_`` prefix;
  * counters are monotonic and end in ``_total``;
  * gauges and histograms never end in ``_total`` (they are not
    monotonic);
  * histograms carry an explicit unit suffix (``_seconds``, ``_bytes``,
    ``_mbps``, ``_pct``, ``_ratio``, ``_ns``);
  * gauges carry a unit suffix too, except the documented
    dimensionless ones (``wadp_build_info``, the info-metric idiom, and
    ``wadp_resilience_servers_down``, a live count);
  * health-plane self-metrics (``wadp_ts_*``, ``wadp_health_*``,
    ``wadp_flight_*``) are registered only from ``src/obs/`` — other
    layers consume the plane, they do not mint its names.

Exits non-zero listing every violation, so CI fails when a new metric
breaks the taxonomy.  Usage: ``lint_metrics.py [src-dir ...]``.
"""

import pathlib
import re
import sys

REGISTRATION = re.compile(
    r'\.(counter|gauge|histogram)\(\s*"([a-zA-Z0-9_]+)"')

UNIT_SUFFIXES = ("_seconds", "_bytes", "_mbps", "_pct", "_ratio", "_ns")

# Dimensionless gauges the taxonomy explicitly documents.
GAUGE_ALLOWLIST = {
    "wadp_build_info",
    "wadp_health_rules_firing",
    "wadp_net_active_flows",
    "wadp_resilience_servers_down",
    "wadp_serving_inflight_queries",
    "wadp_ts_series",
    "wadp_wal_segments",
}

# Health-plane self-metric prefixes: owned by src/obs/ (timeseries,
# health, flight).  Benches may report on the plane via wadp_bench_*,
# but nothing outside obs/ registers these names.
HEALTH_PLANE_PREFIXES = ("wadp_ts_", "wadp_health_", "wadp_flight_")


def check(kind: str, name: str, path: pathlib.Path) -> str | None:
    """Returns the violation message for one registration, or None."""
    if not name.startswith("wadp_"):
        return f"{kind} '{name}' is missing the 'wadp_' prefix"
    if name.startswith(HEALTH_PLANE_PREFIXES) and "obs" not in path.parts:
        return (f"{kind} '{name}' uses a health-plane prefix but is "
                f"registered outside src/obs/")
    if kind == "counter":
        if not name.endswith("_total"):
            return f"counter '{name}' must end in '_total'"
        return None
    if name.endswith("_total"):
        return f"{kind} '{name}' must not end in '_total' (counters only)"
    if kind == "histogram":
        if not name.endswith(UNIT_SUFFIXES):
            return (f"histogram '{name}' needs a unit suffix "
                    f"({', '.join(UNIT_SUFFIXES)})")
        return None
    # gauge
    if name in GAUGE_ALLOWLIST or name.endswith(UNIT_SUFFIXES):
        return None
    return (f"gauge '{name}' needs a unit suffix "
            f"({', '.join(UNIT_SUFFIXES)}) or an allowlist entry")


def main(argv: list[str]) -> int:
    roots = [pathlib.Path(arg) for arg in argv[1:]] or [pathlib.Path("src")]
    violations = []
    seen = 0
    for root in roots:
        if not root.exists():
            print(f"lint_metrics: no such directory: {root}", file=sys.stderr)
            return 2
        for path in sorted(root.rglob("*.cpp")) + sorted(root.rglob("*.hpp")):
            text = path.read_text(encoding="utf-8")
            for match in REGISTRATION.finditer(text):
                kind, name = match.group(1), match.group(2)
                seen += 1
                message = check(kind, name, path)
                if message:
                    line = text.count("\n", 0, match.start()) + 1
                    violations.append(f"{path}:{line}: {message}")
    for violation in violations:
        print(violation, file=sys.stderr)
    print(f"lint_metrics: {seen} registrations checked, "
          f"{len(violations)} violation(s)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
