# End-to-end CLI pipeline: campaign -> classes -> predict -> provider.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_checked)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE code OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "command failed (${code}): ${ARGN}\n${out}\n${err}")
  endif()
  set(LAST_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

run_checked("${WADP_CLI}" campaign --days 3 --seed 11 --out "${WORK_DIR}")
set(LOG "${WORK_DIR}/gridftp-lbl-anl.ulm")
if(NOT EXISTS "${LOG}")
  message(FATAL_ERROR "campaign did not write ${LOG}")
endif()

run_checked("${WADP_CLI}" classes "${LOG}")
if(NOT LAST_OUTPUT MATCHES "10MB")
  message(FATAL_ERROR "classes output missing class table:\n${LAST_OUTPUT}")
endif()

run_checked("${WADP_CLI}" predict "${LOG}" --size 500000000)
if(NOT LAST_OUTPUT MATCHES "MB/s")
  message(FATAL_ERROR "predict output missing bandwidth:\n${LAST_OUTPUT}")
endif()

run_checked("${WADP_CLI}" provider "${LOG}")
if(NOT LAST_OUTPUT MATCHES "GridFTPPerfInfo")
  message(FATAL_ERROR "provider output missing LDIF:\n${LAST_OUTPUT}")
endif()

run_checked("${WADP_CLI}" analyze "${LOG}" --extended)
if(NOT LAST_OUTPUT MATCHES "predictor")
  message(FATAL_ERROR "analyze output missing ranking:\n${LAST_OUTPUT}")
endif()
