// wadp — command-line front end to the prediction framework.
//
//   wadp campaign  --campaign aug|dec --seed N --days D --out DIR
//       run a controlled measurement campaign, write ULM logs per link
//   wadp simgrid   --sites N --links M --scenario NAME --duration S
//       grid-scale fabric demo: random topology, synthetic traffic
//   wadp analyze   LOG [--training N] [--extended]
//       evaluate the predictor battery over a log, rank the leaders
//   wadp predict   LOG --size BYTES [--predictor NAME] [--extended]
//       one prediction from a log, the way a broker would ask
//   wadp provider  LOG [--host HOST]
//       print the MDS information-provider LDIF for a log
//   wadp classes   LOG
//       per-size-class measurement summary (Fig. 7 style)
//   wadp metrics   [LOG] [--json|--ulm]
//       drive the instrumented stack, dump the metrics registry
//   wadp trace     [LOG] [--ulm] [--limit N]
//       same drive, print the recorded span trees
//   wadp history   [LOG] [--json]
//       history-store statistics: series, per-shard sizes, epochs
//   wadp durability [--campaign aug|dec] [--seed N] [--days D]
//                   [--out DIR] [--json]
//       WAL + snapshot + crash recovery demo: ingest through the
//       durability plane, recover, verify bit-identical state
//   wadp resilience [--rate PCT] [--transfers N] [--seed N]
//       single-shot vs retry+failover under injected faults
//   wadp quality   [--transfers N] [--shift N] [--seed N] [--json]
//       closed-loop demo: online accuracy join, drift alarm, demotion
//   wadp trace --quality [--tree ID]
//       span tree of one traced fetch from the quality demo
//   wadp health    [--rate PCT] [--transfers N] [--interval S] [--json]
//       SLO rule table over a recorded incident drive; --capture DIR
//       also dumps a flight-recorder bundle
//   wadp top       [--limit N] [--interval S] [--json]
//       one-shot ranked view: hottest series and worst SLOs
//
// Every subcommand is deterministic given its inputs; simulated
// campaigns never touch the network.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/quality_demo.hpp"
#include "core/wadp.hpp"
#include "durability/manager.hpp"
#include "obs/events.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "serving/frontend.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/gridworld.hpp"

namespace {

using namespace wadp;

int usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage:\n"
               "  wadp campaign  [--campaign aug|dec] [--seed N] [--days D] "
               "[--out DIR]\n"
               "  wadp simgrid   [--sites N] [--links M] [--flows CAP] "
               "[--duration S]\n"
               "                 [--scenario uniform|flash-crowd|diurnal] "
               "[--rate R] [--seed N] [--json]\n"
               "  wadp analyze   LOG [--training N] [--extended]\n"
               "  wadp predict   LOG --size BYTES [--predictor NAME] "
               "[--extended]\n"
               "  wadp provider  LOG [--host HOST]\n"
               "  wadp classes   LOG\n"
               "  wadp probe     [--seed N] [--days D] [--out FILE]\n"
               "  wadp metrics   [LOG] [--campaign aug|dec] [--seed N] "
               "[--days D] [--json|--ulm]\n"
               "  wadp trace     [LOG] [--campaign aug|dec] [--seed N] "
               "[--days D] [--ulm] [--limit N]\n"
               "  wadp history   [LOG] [--campaign aug|dec] [--seed N] "
               "[--days D] [--json]\n"
               "  wadp durability [--campaign aug|dec] [--seed N] [--days D] "
               "[--out DIR] [--json]\n"
               "  wadp resilience [--rate PCT] [--transfers N] [--seed N]\n"
               "  wadp quality   [--transfers N] [--shift N] [--seed N] "
               "[--limit N] [--json]\n"
               "  wadp trace     --quality [--tree ID] [--limit N]\n"
               "  wadp serve     [--queries N] [--batch N] [--files N] "
               "[--overload X] [--seed N]\n"
               "  wadp health    [--rate PCT] [--transfers N] [--interval S] "
               "[--seed N] [--capture DIR] [--json]\n"
               "  wadp top       [--limit N] [--rate PCT] [--transfers N] "
               "[--interval S] [--seed N] [--json]\n");
  return error != nullptr ? 2 : 0;
}

Expected<gridftp::TransferLog> load_log(const util::ArgParser& args) {
  if (args.positionals().size() < 2) {
    return Expected<gridftp::TransferLog>::failure("missing LOG argument");
  }
  return gridftp::TransferLog::load(args.positionals()[1]);
}

// unique_ptr: the service owns a mutex now, so it no longer moves.
std::unique_ptr<core::PredictionService> make_service(
    const util::ArgParser& args, const gridftp::TransferLog& log) {
  core::ServiceConfig config;
  config.use_extended_battery = args.has("extended");
  if (const auto training = args.get_int("training")) {
    config.training_count = static_cast<std::size_t>(*training);
  }
  auto service = std::make_unique<core::PredictionService>(config);
  service->ingest_log(log);
  return service;
}

int cmd_campaign(const util::ArgParser& args) {
  const auto campaign = args.get_or("campaign", "aug") == "dec"
                            ? workload::Campaign::kDecember2001
                            : workload::Campaign::kAugust2001;
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed").value_or(42));
  workload::CampaignConfig config;
  config.days = static_cast<int>(args.get_int("days").value_or(14));
  const std::string out_dir = args.get_or("out", "traces");

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  // Health plane over the campaign: hourly sim-time scrapes keep a
  // trail of the gridftp client/server counters the run produces.
  obs::MetricsRecorder recorder;
  obs::HealthMonitor monitor(recorder);
  config.health_interval = 3600.0;
  monitor.add_rules(obs::HealthMonitor::builtin_rules(config.health_interval));
  config.health_tick = [&recorder, &monitor](SimTime now) {
    recorder.scrape(now);
    monitor.evaluate(now);
  };

  auto result = workload::run_paper_campaign(campaign, seed, config);
  for (const char* site : {"lbl", "isi"}) {
    const auto& log = result.testbed->server(site).log();
    const auto path = out_dir + "/gridftp-" + site + "-anl.ulm";
    const auto saved = log.save(path);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.error().c_str());
      return 1;
    }
    std::printf("%s: %zu transfers\n", path.c_str(), log.size());
  }
  std::printf("health: %llu scrapes, %zu series, %zu rule(s) firing\n",
              static_cast<unsigned long long>(recorder.scrapes()),
              recorder.series_count(), monitor.firing_count());
  return 0;
}

/// Grid-scale fabric demo: seeded random topology, synthetic scenario,
/// event core + incremental allocator in their lazy grid configuration.
int cmd_simgrid(const util::ArgParser& args) {
  workload::GridSpec spec;
  spec.sites =
      static_cast<std::size_t>(args.get_int("sites").value_or(24));
  spec.links =
      static_cast<std::size_t>(args.get_int("links").value_or(60));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed").value_or(42));

  workload::ScenarioConfig scenario;
  const auto parsed_scenario =
      workload::parse_scenario(args.get_or("scenario", "uniform"));
  if (!parsed_scenario.has_value()) {
    return usage("unknown scenario (uniform|flash-crowd|diurnal)");
  }
  scenario.scenario = *parsed_scenario;
  scenario.duration =
      static_cast<Duration>(args.get_int("duration").value_or(120));
  if (const auto rate = args.get_int("rate")) {
    scenario.arrivals_per_second = static_cast<double>(*rate);
  }
  if (const auto flows = args.get_int("flows")) {
    scenario.max_concurrent = static_cast<std::size_t>(*flows);
  }

  // Health plane riding along: scrape + evaluate on a sim-time cadence
  // scaled to the scenario (~60 ticks over the run).
  obs::MetricsRecorder recorder;
  obs::HealthMonitor monitor(recorder);
  scenario.health_interval = std::max(1.0, scenario.duration / 60.0);
  monitor.add_rules(
      obs::HealthMonitor::builtin_rules(scenario.health_interval));
  scenario.health_tick = [&recorder, &monitor](SimTime now) {
    recorder.scrape(now);
    monitor.evaluate(now);
  };

  workload::GridWorld world(spec, seed);
  const auto summary = world.run(scenario, seed ^ 0x5ce0ULL);
  const auto& alloc = summary.alloc;

  if (args.has("json")) {
    std::printf(
        "{\n"
        "  \"sites\": %zu,\n"
        "  \"links\": %zu,\n"
        "  \"scenario\": \"%s\",\n"
        "  \"sim_seconds\": %.1f,\n"
        "  \"flows_started\": %llu,\n"
        "  \"flows_completed\": %llu,\n"
        "  \"flows_shed\": %llu,\n"
        "  \"peak_concurrent\": %zu,\n"
        "  \"active_at_end\": %zu,\n"
        "  \"bytes_moved\": %.0f,\n"
        "  \"utilization_max\": %.4f,\n"
        "  \"utilization_mean\": %.4f,\n"
        "  \"reallocs\": %llu,\n"
        "  \"realloc_components\": %llu,\n"
        "  \"realloc_flow_entries\": %llu,\n"
        "  \"sweeps\": %llu,\n"
        "  \"alloc_ms\": %.3f,\n"
        "  \"wall_ms\": %llu,\n"
        "  \"health_scrapes\": %llu,\n"
        "  \"ts_series\": %zu,\n"
        "  \"rules_firing\": %zu\n"
        "}\n",
        world.topology().site_count(), world.topology().link_count(),
        util::json_escape(workload::scenario_name(scenario.scenario)).c_str(),
        summary.sim_elapsed,
        static_cast<unsigned long long>(summary.flows_started),
        static_cast<unsigned long long>(summary.flows_completed),
        static_cast<unsigned long long>(summary.flows_shed),
        summary.peak_concurrent, summary.active_at_end, summary.bytes_moved,
        summary.utilization.max, summary.utilization.mean,
        static_cast<unsigned long long>(alloc.reallocs),
        static_cast<unsigned long long>(alloc.components),
        static_cast<unsigned long long>(alloc.flows_touched),
        static_cast<unsigned long long>(alloc.sweeps),
        static_cast<double>(alloc.alloc_ns) / 1e6,
        static_cast<unsigned long long>(summary.wall_ms),
        static_cast<unsigned long long>(recorder.scrapes()),
        recorder.series_count(), monitor.firing_count());
    return 0;
  }

  std::printf("grid scenario: %zu sites, %zu links, %s, %.0f sim-seconds\n",
              world.topology().site_count(), world.topology().link_count(),
              workload::scenario_name(scenario.scenario),
              summary.sim_elapsed);
  util::TextTable table({"metric", "value"});
  table.add_row({"flows started", std::to_string(summary.flows_started)});
  table.add_row({"flows completed", std::to_string(summary.flows_completed)});
  table.add_row({"flows shed", std::to_string(summary.flows_shed)});
  table.add_row({"peak concurrent", std::to_string(summary.peak_concurrent)});
  table.add_row({"active at end", std::to_string(summary.active_at_end)});
  table.add_row({"bytes moved", util::format_bytes(static_cast<std::uint64_t>(
                                    summary.bytes_moved))});
  table.add_row({"link util max",
                 util::format("%.1f%%", summary.utilization.max * 100.0)});
  table.add_row({"link util mean",
                 util::format("%.1f%%", summary.utilization.mean * 100.0)});
  table.add_row({"reallocations", std::to_string(alloc.reallocs)});
  table.add_row({"dirty components", std::to_string(alloc.components)});
  table.add_row({"flow entries", std::to_string(alloc.flows_touched)});
  table.add_row({"coalescing sweeps", std::to_string(alloc.sweeps)});
  table.add_row({"allocator time",
                 util::format("%.3f ms",
                              static_cast<double>(alloc.alloc_ns) / 1e6)});
  table.add_row({"wall time",
                 util::format("%llu ms", static_cast<unsigned long long>(
                                             summary.wall_ms))});
  table.add_row({"health scrapes", std::to_string(recorder.scrapes())});
  table.add_row({"series recorded", std::to_string(recorder.series_count())});
  table.add_row({"SLO rules firing", std::to_string(monitor.firing_count())});
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_analyze(const util::ArgParser& args) {
  auto log = load_log(args);
  if (!log.ok()) return usage(log.error().c_str());
  const auto service = make_service(args, log.value());

  for (const auto& key : service->series_keys()) {
    const auto evaluation = service->evaluate(key);
    std::printf("series %s: %zu observations\n", key.to_string().c_str(),
                service->series(key).size());
    if (!evaluation) {
      std::printf("  (too short to evaluate)\n");
      continue;
    }
    std::vector<std::pair<double, std::string>> ranking;
    for (std::size_t p = 0; p < evaluation->predictor_names().size(); ++p) {
      if (evaluation->errors(p).count() == 0) continue;
      ranking.emplace_back(evaluation->errors(p).mean(),
                           evaluation->predictor_names()[p]);
    }
    std::sort(ranking.begin(), ranking.end());
    util::TextTable table({"rank", "predictor", "mean % error", "p50", "p90",
                           "best %", "worst %"});
    table.set_align(1, util::TextTable::Align::Left);
    for (std::size_t i = 0; i < ranking.size() && i < 10; ++i) {
      const auto index = *evaluation->index_of(ranking[i].second);
      const auto errors = predict::error_values(*evaluation, index);
      table.add_row({std::to_string(i + 1), ranking[i].second,
                     util::format("%.1f", ranking[i].first),
                     util::format("%.1f", util::quantile(errors, 0.5).value_or(0)),
                     util::format("%.1f", util::quantile(errors, 0.9).value_or(0)),
                     util::format("%.1f", evaluation->relative(index).best_pct()),
                     util::format("%.1f",
                                  evaluation->relative(index).worst_pct())});
    }
    std::printf("%s\n", table.render().c_str());
  }
  return 0;
}

int cmd_predict(const util::ArgParser& args) {
  auto log = load_log(args);
  if (!log.ok()) return usage(log.error().c_str());
  const auto size = args.get_int("size");
  if (!size || *size <= 0) return usage("--size BYTES required");
  const auto service = make_service(args, log.value());

  const std::string predictor = args.get_or("predictor", "");
  bool answered = false;
  for (const auto& key : service->series_keys()) {
    const auto series = service->series(key);
    if (series.empty()) continue;
    const SimTime now = series.back().time + 1.0;
    const auto prediction =
        service->predict(key, static_cast<Bytes>(*size), now, predictor);
    if (!prediction) continue;
    answered = true;
    std::printf("%s: %.2f MB/s (%s, %zu observations)\n",
                key.to_string().c_str(), to_mb_per_sec(*prediction),
                predictor.empty() ? service->config().default_predictor.c_str()
                                  : predictor.c_str(),
                series.size());
  }
  if (!answered) {
    std::fprintf(stderr, "no series could answer (too little history, or "
                         "unknown predictor)\n");
    return 1;
  }
  return 0;
}

int cmd_provider(const util::ArgParser& args) {
  auto log = load_log(args);
  if (!log.ok()) return usage(log.error().c_str());
  if (log.value().empty()) return usage("log is empty");
  const std::string host = args.get_or(
      "host", std::string(log.value().records().front().host));

  // Rebuild a server around the log so the provider can publish it.
  storage::StorageParams storage_params;
  storage_params.local_load.reset();
  storage::StorageSystem store("site", storage_params, 1, 0.0);
  gridftp::GridFtpServer server({.site = "site", .host = host, .ip = "0.0.0.0"},
                                store);
  server.fs().add_volume("/");
  SimTime latest = 0.0;
  for (const auto& record : log.value().records()) {
    server.record_transfer(record.source_ip, record.file_name,
                           record.file_size, record.start_time,
                           record.end_time, record.op, record.streams,
                           record.tcp_buffer);
    latest = std::max(latest, record.end_time);
  }
  mds::GridFtpInfoProvider provider(
      server,
      {.base = *mds::Dn::parse("hostname=" + host + ", o=grid")});
  for (const auto& entry : provider.provide(latest + 1.0)) {
    std::printf("%s\n", entry.to_ldif().c_str());
  }
  return 0;
}

int cmd_classes(const util::ArgParser& args) {
  auto log = load_log(args);
  if (!log.ok()) return usage(log.error().c_str());
  const auto series =
      history::observations_from_records(log.value().records(), {});
  const auto classifier = predict::SizeClassifier::paper_classes();
  const auto counts = workload::count_by_class(series, classifier);

  util::TextTable table({"class", "n", "bw MB/s (min/mean/max)"});
  table.set_align(0, util::TextTable::Align::Left);
  for (int cls = 0; cls < classifier.num_classes(); ++cls) {
    util::RunningStats bw;
    for (const auto& o : series) {
      if (classifier.classify(o.file_size) == cls) {
        bw.add(to_mb_per_sec(o.value));
      }
    }
    table.add_row(
        {classifier.class_label(cls) + " (" + classifier.class_name(cls) + ")",
         std::to_string(counts.per_class[static_cast<std::size_t>(cls)]),
         bw.count() ? util::format("%.2f / %.2f / %.2f", bw.min(), bw.mean(),
                                   bw.max())
                    : std::string("-")});
  }
  std::printf("total read transfers: %zu\n\n%s", counts.total,
              table.render().c_str());
  return 0;
}

int cmd_probe(const util::ArgParser& args) {
  // NWS sensors over every testbed path; dump the memory as trace text.
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed").value_or(42));
  const int days = static_cast<int>(args.get_int("days").value_or(1));
  workload::Testbed testbed(workload::Campaign::kAugust2001, seed);
  core::FabricConfig config;
  config.deploy_nws = true;
  core::InformationFabric fabric(testbed, config);
  testbed.sim().run_until(testbed.start_time() + days * 86400.0);
  fabric.absorb_probes();

  // Merge per-site memories for output.
  nws::NwsMemory merged(0);
  for (const auto& site : testbed.sites()) {
    auto& memory = fabric.probe_memory(site);
    for (const auto& experiment : memory.experiments()) {
      for (const auto& m : memory.series(experiment)) {
        merged.store(experiment, m);
      }
    }
  }
  if (const auto out = args.get("out")) {
    const auto saved = merged.save(*out);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.error().c_str());
      return 1;
    }
    std::printf("wrote %zu measurements across %zu experiments to %s\n",
                merged.total_measurements(), merged.experiments().size(),
                out->c_str());
    return 0;
  }
  util::TextTable table({"experiment", "probes", "latest KB/s"});
  table.set_align(0, util::TextTable::Align::Left);
  for (const auto& experiment : merged.experiments()) {
    const auto series = merged.series(experiment);
    table.add_row({experiment, std::to_string(series.size()),
                   util::format("%.1f", to_kb_per_sec(series.back().value))});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

/// Drives the instrumented stack so `metrics`/`trace` have live signal:
/// with a LOG, ingest it; otherwise run a short simulated campaign
/// (servers log transfers and the client records lifecycle spans), then
/// ask every battery member one question per series so the predict path
/// (ingest -> classify -> battery update -> query) fires too.
int drive_instrumented(const util::ArgParser& args) {
  core::PredictionService service;
  if (args.positionals().size() > 1) {
    auto log = load_log(args);
    if (!log.ok()) {
      std::fprintf(stderr, "%s\n", log.error().c_str());
      return 1;
    }
    service.ingest_log(log.value());
  } else {
    const auto campaign = args.get_or("campaign", "aug") == "dec"
                              ? workload::Campaign::kDecember2001
                              : workload::Campaign::kAugust2001;
    const auto seed =
        static_cast<std::uint64_t>(args.get_int("seed").value_or(42));
    workload::CampaignConfig config;
    config.days = static_cast<int>(args.get_int("days").value_or(2));
    const auto result = workload::run_paper_campaign(campaign, seed, config);
    for (const char* site : {"lbl", "isi"}) {
      service.ingest_log(result.testbed->server(site).log());
    }
  }
  for (const auto& key : service.series_keys()) {
    const auto series = service.series(key);
    if (series.empty()) continue;
    service.predict_all(key, 100 * 1000 * 1000, series.back().time + 1.0);
  }
  return 0;
}

int cmd_metrics(const util::ArgParser& args) {
  if (const int rc = drive_instrumented(args); rc != 0) return rc;
  const auto& registry = obs::Registry::global();
  if (args.has("json")) {
    std::printf("%s\n", obs::to_json(registry).c_str());
  } else if (args.has("ulm")) {
    std::printf("%s", obs::metrics_to_ulm(registry).c_str());
  } else {
    std::printf("%s", obs::to_prometheus(registry).c_str());
  }
  return 0;
}

int cmd_trace(const util::ArgParser& args) {
  std::uint64_t want_trace = 0;
  if (args.has("quality")) {
    // Drive the closed-loop demo instead of a campaign; default to the
    // last fetch's trace so `wadp trace --quality` renders one request
    // end to end (select -> predict -> attempts -> ingest).
    core::QualityDemoConfig config;
    config.seed =
        static_cast<std::uint64_t>(args.get_int("seed").value_or(42));
    const auto result = core::run_quality_demo(config);
    if (!result.trace_ids.empty()) want_trace = result.trace_ids.back();
  } else if (const int rc = drive_instrumented(args); rc != 0) {
    return rc;
  }
  if (const auto tree = args.get_int("tree"); tree && *tree > 0) {
    want_trace = static_cast<std::uint64_t>(*tree);
  }
  const auto& tracer = obs::Tracer::global();
  if (args.has("ulm")) {
    std::printf("%s", obs::spans_to_ulm(tracer).c_str());
    return 0;
  }

  auto spans = tracer.finished();
  if (want_trace != 0) {
    std::erase_if(spans, [want_trace](const obs::SpanRecord& span) {
      return span.trace_id != want_trace;
    });
    std::printf("trace %llu: %zu spans\n",
                static_cast<unsigned long long>(want_trace), spans.size());
  }
  std::map<obs::SpanId, std::vector<std::size_t>> children;
  std::map<obs::SpanId, std::size_t> by_id;
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < spans.size(); ++i) by_id[spans[i].id] = i;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    // A parent evicted from the ring orphans its children; show them as
    // roots rather than dropping them.
    if (spans[i].parent != 0 && by_id.count(spans[i].parent)) {
      children[spans[i].parent].push_back(i);
    } else {
      roots.push_back(i);
    }
  }

  const auto limit =
      static_cast<std::size_t>(args.get_int("limit").value_or(10));
  const std::size_t first = roots.size() > limit ? roots.size() - limit : 0;
  const std::function<void(std::size_t, int)> print_tree =
      [&](std::size_t index, int depth) {
        const auto& span = spans[index];
        std::string attrs;
        for (const auto& [key, value] : span.attrs) {
          attrs += util::format(" %s=%s", key.c_str(), value.c_str());
        }
        std::printf("%*s%s  %.3f ms%s\n", depth * 2, "", span.name.c_str(),
                    static_cast<double>(span.duration_ns()) * 1e-6,
                    attrs.c_str());
        for (const std::size_t child : children[span.id]) {
          print_tree(child, depth + 1);
        }
      };
  std::printf("%zu spans recorded (%llu total); showing last %zu trees\n",
              spans.size(),
              static_cast<unsigned long long>(tracer.recorded_total()),
              roots.size() - first);
  for (std::size_t r = first; r < roots.size(); ++r) print_tree(roots[r], 0);
  return 0;
}

int cmd_history(const util::ArgParser& args) {
  // Same drive as metrics/trace: ingest a LOG when given, otherwise a
  // short simulated campaign — then dump the store itself.
  core::PredictionService service;
  if (args.positionals().size() > 1) {
    auto log = load_log(args);
    if (!log.ok()) {
      std::fprintf(stderr, "%s\n", log.error().c_str());
      return 1;
    }
    service.ingest_log(log.value());
  } else {
    const auto campaign = args.get_or("campaign", "aug") == "dec"
                              ? workload::Campaign::kDecember2001
                              : workload::Campaign::kAugust2001;
    const auto seed =
        static_cast<std::uint64_t>(args.get_int("seed").value_or(42));
    workload::CampaignConfig config;
    config.days = static_cast<int>(args.get_int("days").value_or(2));
    const auto result = workload::run_paper_campaign(campaign, seed, config);
    for (const char* site : {"lbl", "isi"}) {
      service.ingest_log(result.testbed->server(site).log());
    }
  }

  const auto& store = service.history();
  const auto shards = store.shard_stats();
  const auto series = store.series_info();

  if (args.has("json")) {
    std::string json = util::format(
        "{\"shard_count\": %zu, \"series_count\": %zu, "
        "\"total_observations\": %zu, \"shards\": [",
        store.shard_count(), store.series_count(),
        store.total_observations());
    for (std::size_t i = 0; i < shards.size(); ++i) {
      if (i > 0) json += ", ";
      json += util::format(
          "{\"index\": %zu, \"series\": %zu, \"observations\": %zu, "
          "\"appends\": %llu}",
          shards[i].index, shards[i].series_count,
          shards[i].observation_count,
          static_cast<unsigned long long>(shards[i].appends));
    }
    json += "], \"series\": [";
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (i > 0) json += ", ";
      json += util::format(
          "{\"key\": \"%s\", \"shard\": %zu, \"observations\": %zu, "
          "\"epoch\": %llu, \"generation\": %llu, \"evicted\": %llu}",
          util::json_escape(series[i].key.to_string()).c_str(), series[i].shard,
          series[i].observations,
          static_cast<unsigned long long>(series[i].epoch),
          static_cast<unsigned long long>(series[i].generation),
          static_cast<unsigned long long>(series[i].evicted));
    }
    json += "]}";
    std::printf("%s\n", json.c_str());
    return 0;
  }

  std::printf("%zu series, %zu observations, %zu shards\n\n",
              store.series_count(), store.total_observations(),
              store.shard_count());
  util::TextTable shard_table({"shard", "series", "observations", "appends"});
  for (const auto& s : shards) {
    if (s.series_count == 0 && s.appends == 0) continue;  // skip idle shards
    shard_table.add_row({std::to_string(s.index),
                         std::to_string(s.series_count),
                         std::to_string(s.observation_count),
                         std::to_string(s.appends)});
  }
  std::printf("%s\n", shard_table.render().c_str());

  util::TextTable series_table(
      {"series", "shard", "observations", "epoch", "generation", "evicted"});
  series_table.set_align(0, util::TextTable::Align::Left);
  for (const auto& info : series) {
    series_table.add_row(
        {info.key.to_string(), std::to_string(info.shard),
         std::to_string(info.observations), std::to_string(info.epoch),
         std::to_string(info.generation), std::to_string(info.evicted)});
  }
  std::printf("%s", series_table.render().c_str());
  return 0;
}

/// Demonstrates the durability plane end to end: a campaign ingests
/// through a WAL-attached store with a snapshot midway, the process
/// "crashes", recovery rebuilds a fresh store from snapshot + WAL
/// tail, and the result is verified bit-identical to the original.
int cmd_durability(const util::ArgParser& args) {
  const auto campaign = args.get_or("campaign", "aug") == "dec"
                            ? workload::Campaign::kDecember2001
                            : workload::Campaign::kAugust2001;
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed").value_or(42));
  workload::CampaignConfig campaign_config;
  campaign_config.days = static_cast<int>(args.get_int("days").value_or(2));
  const auto result =
      workload::run_paper_campaign(campaign, seed, campaign_config);

  namespace fs = std::filesystem;
  const std::string root = args.get_or(
      "out", (fs::temp_directory_path() / "wadp_durability_demo").string());
  std::error_code ec;
  fs::remove_all(root, ec);  // each run demonstrates from scratch

  history::StoreConfig store_config;
  store_config.dedupe_records = true;
  auto store = std::make_shared<history::HistoryStore>(store_config);
  durability::DurabilityConfig dconfig;
  dconfig.dir = root;
  dconfig.fsync = durability::FsyncPolicy::kBatch;
  durability::DurabilityManager manager(store, dconfig);
  manager.attach();

  // Phase 1 ingests one site's log, a snapshot seals it; phase 2 is
  // the tail only the WAL holds when the "crash" happens.
  store->ingest_log(result.testbed->server("lbl").log());
  const auto snapshot = manager.snapshot_now();
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot failed: %s\n", snapshot.error().c_str());
    return 1;
  }
  store->ingest_log(result.testbed->server("isi").log());
  manager.flush();

  auto recovered = std::make_shared<history::HistoryStore>(store_config);
  const auto recovery = durability::DurabilityManager::recover(root, *recovered);
  if (!recovery.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n", recovery.error().c_str());
    return 1;
  }
  const auto& rec = recovery.value();

  bool identical = recovered->keys() == store->keys() &&
                   recovered->total_observations() == store->total_observations();
  if (identical) {
    for (const auto& key : store->keys()) {
      const auto before = store->snapshot(key);
      const auto after = recovered->snapshot(key);
      if (after.observations() != before.observations() ||
          after.epoch() != before.epoch() ||
          after.generation() != before.generation()) {
        identical = false;
        break;
      }
    }
  }

  core::PredictionService service(recovered);
  const std::size_t warmed = service.warm_up();
  const auto status = manager.status();

  if (args.has("json")) {
    std::printf(
        "{\"dir\": \"%s\", "
        "\"wal\": {\"bytes\": %llu, \"segments\": %zu, \"appends\": %llu, "
        "\"batches\": %llu, \"fsyncs\": %llu, \"last_lsn\": %llu, "
        "\"fsync_policy\": \"%s\"}, "
        "\"snapshot\": {\"seq\": %llu, \"sealed_lsn\": %llu, \"series\": %zu, "
        "\"observations\": %zu, \"bytes\": %llu, \"age_seconds\": %.3f}, "
        "\"recovery\": {\"snapshot_loaded\": %s, \"frames_replayed\": %zu, "
        "\"records_applied\": %zu, \"records_deduped\": %zu, "
        "\"torn_frames\": %zu, \"seconds\": %.6f}, "
        "\"recovered_identical\": %s, \"batteries_warmed\": %zu}\n",
        util::json_escape(root).c_str(),
        static_cast<unsigned long long>(status.wal_bytes),
        status.wal.segments,
        static_cast<unsigned long long>(status.wal.appended),
        static_cast<unsigned long long>(status.wal.batches),
        static_cast<unsigned long long>(status.wal.fsyncs),
        static_cast<unsigned long long>(status.wal.last_lsn),
        util::json_escape(durability::to_string(dconfig.fsync)).c_str(),
        static_cast<unsigned long long>(snapshot.value().seq),
        static_cast<unsigned long long>(snapshot.value().sealed_lsn),
        snapshot.value().series, snapshot.value().observations,
        static_cast<unsigned long long>(snapshot.value().bytes),
        status.snapshot_age_seconds, rec.snapshot_loaded ? "true" : "false",
        rec.frames_replayed, rec.records_applied, rec.records_deduped,
        rec.torn_frames, rec.seconds, identical ? "true" : "false", warmed);
    return identical ? 0 : 1;
  }

  std::printf("durability plane @ %s\n\n", root.c_str());
  util::TextTable wal_table({"write-ahead log", "value"});
  wal_table.set_align(0, util::TextTable::Align::Left);
  wal_table.add_row({"records appended", std::to_string(status.wal.appended)});
  wal_table.add_row({"commit batches", std::to_string(status.wal.batches)});
  wal_table.add_row({"fsyncs", std::to_string(status.wal.fsyncs)});
  wal_table.add_row({"fsync policy", durability::to_string(dconfig.fsync)});
  wal_table.add_row({"segments on disk", std::to_string(status.wal.segments)});
  wal_table.add_row({"bytes on disk", util::format_bytes(status.wal_bytes)});
  std::printf("%s\n", wal_table.render().c_str());

  util::TextTable snap_table({"snapshot", "value"});
  snap_table.set_align(0, util::TextTable::Align::Left);
  snap_table.add_row({"sequence", std::to_string(snapshot.value().seq)});
  snap_table.add_row(
      {"sealed lsn", std::to_string(snapshot.value().sealed_lsn)});
  snap_table.add_row({"series", std::to_string(snapshot.value().series)});
  snap_table.add_row(
      {"observations", std::to_string(snapshot.value().observations)});
  snap_table.add_row({"bytes", util::format_bytes(snapshot.value().bytes)});
  snap_table.add_row(
      {"age", util::format("%.3f s", status.snapshot_age_seconds)});
  std::printf("%s\n", snap_table.render().c_str());

  util::TextTable rec_table({"recovery", "value"});
  rec_table.set_align(0, util::TextTable::Align::Left);
  rec_table.add_row(
      {"snapshot loaded", rec.snapshot_loaded ? "yes" : "no"});
  rec_table.add_row({"frames replayed", std::to_string(rec.frames_replayed)});
  rec_table.add_row({"records applied", std::to_string(rec.records_applied)});
  rec_table.add_row({"records deduped", std::to_string(rec.records_deduped)});
  rec_table.add_row({"torn frames", std::to_string(rec.torn_frames)});
  rec_table.add_row({"wall time", util::format("%.3f ms", rec.seconds * 1e3)});
  rec_table.add_row({"batteries warmed", std::to_string(warmed)});
  std::printf("%s\n", rec_table.render().c_str());

  std::printf("recovered state bit-identical: %s\n",
              identical ? "yes" : "NO — durability contract violated");
  return identical ? 0 : 1;
}

/// Outcome tallies of one fault drive (see run_fault_drive).
struct FaultDriveStats {
  int ok = 0;
  util::RunningStats start_delay;
  SimTime end = 0.0;  ///< issue horizon the drive ran to
};

/// Drives the two-replica delivery stack (the resilience-plane world:
/// gridftp client + servers, MDS, broker, failover fetcher) under a
/// seeded fault injector for `transfers` fetches.  `attach`, when
/// non-null, runs after the world is built and before the simulation
/// drains — health drives hang their scrape/evaluate PeriodicTask
/// there, bounded by the passed issue horizon so sim.run() still
/// terminates.
FaultDriveStats run_fault_drive(
    double rate, int transfers, std::uint64_t seed, bool resilient,
    const std::function<void(sim::Simulator&, SimTime end)>& attach =
        nullptr) {
  sim::Simulator sim(0.0);
  net::FluidEngine engine(sim);
  net::Topology topology;
  net::PathParams fast, slow;
  fast.bottleneck = 10'000'000.0;
  slow.bottleneck = 5'000'000.0;
  for (net::PathParams* p : {&fast, &slow}) {
    p->rtt = 0.05;
    p->load.base = 0.0;
    p->load.diurnal_amplitude = 0.0;
    p->load.ar_sigma = 0.0;
    p->load.episode_rate_per_hour = 0.0;
  }
  topology.add_path("lbl", "anl", fast, 1, 0.0);
  topology.add_path("anl", "lbl", fast, 2, 0.0);
  topology.add_path("isi", "anl", slow, 3, 0.0);
  topology.add_path("anl", "isi", slow, 4, 0.0);

  storage::StorageParams quiet_storage;
  quiet_storage.local_load.reset();
  storage::StorageSystem anl_store("anl", quiet_storage, 1, 0.0);
  storage::StorageSystem lbl_store("lbl", quiet_storage, 2, 0.0);
  storage::StorageSystem isi_store("isi", quiet_storage, 3, 0.0);
  gridftp::GridFtpServer lbl(
      {.site = "lbl", .host = "dpsslx04.lbl.gov", .ip = "131.243.2.91"},
      lbl_store);
  gridftp::GridFtpServer isi(
      {.site = "isi", .host = "jet.isi.edu", .ip = "128.9.160.100"},
      isi_store);
  const std::string client_ip = "140.221.65.69";
  constexpr Bytes kFileSize = 10 * kMB;
  for (gridftp::GridFtpServer* s : {&lbl, &isi}) {
    s->fs().add_volume("/data");
    s->fs().add_file("/data/demo", kFileSize);
  }
  for (int i = 0; i < 5; ++i) {
    const double t = 100.0 * i;
    lbl.record_transfer(client_ip, "/data/demo", kFileSize, t, t + 1.25,
                        gridftp::Operation::kRead, 8, 1'000'000);
    isi.record_transfer(client_ip, "/data/demo", kFileSize, t, t + 5.0,
                        gridftp::Operation::kRead, 8, 1'000'000);
  }
  mds::GridFtpInfoProvider lbl_provider(
      lbl,
      {.base = *mds::Dn::parse("hostname=dpsslx04.lbl.gov, dc=lbl, o=grid")});
  mds::GridFtpInfoProvider isi_provider(
      isi,
      {.base = *mds::Dn::parse("hostname=jet.isi.edu, dc=isi, o=grid")});
  mds::Gris lbl_gris("lbl-gris", *mds::Dn::parse("dc=lbl, o=grid"));
  mds::Gris isi_gris("isi-gris", *mds::Dn::parse("dc=isi, o=grid"));
  lbl_gris.register_provider(&lbl_provider, 300.0);
  isi_gris.register_provider(&isi_provider, 300.0);
  mds::Giis giis("top");
  giis.register_gris(lbl_gris, 0.0, 1e9);
  giis.register_gris(isi_gris, 0.0, 1e9);
  replica::ReplicaCatalog catalog;
  catalog.add_replica("lfn://demo", {.site = "lbl",
                                     .server_host = "dpsslx04.lbl.gov",
                                     .path = "/data/demo"});
  catalog.add_replica("lfn://demo", {.site = "isi",
                                     .server_host = "jet.isi.edu",
                                     .path = "/data/demo"});

  gridftp::GridFtpClient client(sim, engine, topology, "anl", client_ip,
                                &anl_store);
  replica::ReplicaBroker broker(catalog, giis,
                                replica::SelectionPolicy::kPredictedBest,
                                seed);
  replica::FailoverFetcher fetcher(
      sim, broker, client, [&](const replica::PhysicalReplica& replica) {
        return replica.site == "lbl" ? &lbl : &isi;
      });

  resilience::FaultSpec spec;
  spec.connect_failure_rate = 0.5 * rate;
  spec.truncation_rate = 0.3 * rate;
  spec.stall_rate = 0.2 * rate;
  spec.mean_fault_delay = 1.0;
  spec.mean_uptime = 2400.0;
  spec.mean_outage = 90.0;
  spec.outage_horizon = 600.0 + transfers * 400.0 + 4000.0;
  resilience::FaultInjector injector(sim, spec, seed ^ 0x4e5);
  client.set_fault_injector(&injector);
  injector.watch_outages("dpsslx04.lbl.gov",
                         [&](bool up) { lbl.set_accepting(up); });
  injector.watch_outages("jet.isi.edu",
                         [&](bool up) { isi.set_accepting(up); });

  resilience::RetryPolicy policy = resilience::default_wan_policy();
  replica::FetchOptions options;
  if (!resilient) {
    policy.max_attempts = 1;
    options.max_replicas = 1;
  }
  client.set_retry_policy(policy, seed);

  FaultDriveStats stats;
  stats.end = 600.0 + transfers * 400.0 + 4000.0;
  for (int i = 0; i < transfers; ++i) {
    const SimTime issue = 600.0 + i * 400.0;
    sim.schedule_at(issue, [&, issue] {
      fetcher.fetch("lfn://demo", kFileSize, options,
                    [&stats, issue](const replica::FetchOutcome& outcome) {
                      if (outcome.ok) {
                        ++stats.ok;
                        stats.start_delay.add(
                            outcome.transfer.record.start_time - issue);
                      }
                    });
    });
  }
  if (attach) attach(sim, stats.end);
  sim.run();
  return stats;
}

/// Demonstrates the resilience plane: a two-replica delivery stack
/// under a seeded fault injector, single-shot vs retry+failover on the
/// same fault schedule.
int cmd_resilience(const util::ArgParser& args) {
  const double rate =
      static_cast<double>(args.get_int("rate").value_or(30)) / 100.0;
  const int transfers =
      static_cast<int>(args.get_int("transfers").value_or(100));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed").value_or(42));
  if (rate < 0.0 || rate > 1.0) return usage("--rate must be 0..100");
  if (transfers <= 0) return usage("--transfers must be positive");

  const FaultDriveStats single =
      run_fault_drive(rate, transfers, seed, /*resilient=*/false);
  const FaultDriveStats resil =
      run_fault_drive(rate, transfers, seed, /*resilient=*/true);

  std::printf("fault rate %.0f%%, %d transfers, seed %llu\n\n", 100.0 * rate,
              transfers, static_cast<unsigned long long>(seed));
  util::TextTable table({"configuration", "ok", "success %", "start delay s"});
  table.set_align(0, util::TextTable::Align::Left);
  const auto row = [&](const char* label, const FaultDriveStats& stats) {
    table.add_row(
        {label, std::to_string(stats.ok),
         util::format("%.1f", 100.0 * stats.ok / double(transfers)),
         util::format("%.2f", stats.start_delay.count() > 0
                                  ? stats.start_delay.mean()
                                  : 0.0)});
  };
  row("single-shot (pre-resilience)", single);
  row("retry + failover", resil);
  std::printf("%s", table.render().c_str());
  return 0;
}

/// Runs the resilient fault drive with a health tick armed: every
/// `interval` simulated seconds the recorder scrapes the registry and
/// the monitor evaluates its rules.  The tick optional is destroyed
/// only after run_fault_drive returns; by then the drive has run past
/// the tick's deadline, so arm() already cleared its running flag and
/// the destructor never touches the dead simulator.
FaultDriveStats run_monitored_drive(obs::MetricsRecorder& recorder,
                                    obs::HealthMonitor& monitor, double rate,
                                    int transfers, double interval,
                                    std::uint64_t seed) {
  std::optional<sim::PeriodicTask> tick;
  return run_fault_drive(
      rate, transfers, seed, /*resilient=*/true,
      [&](sim::Simulator& sim, SimTime end) {
        tick.emplace(
            sim, interval,
            [&recorder, &monitor, &sim] {
              recorder.scrape(sim.now());
              monitor.evaluate(sim.now());
            },
            /*immediate=*/false, /*until=*/end);
      });
}

const char* slo_state(const obs::SloStatus& status) {
  if (status.firing) return "FIRING";
  return status.alerts > 0 ? "cleared" : "ok";
}

std::string slo_status_json(const obs::SloStatus& status) {
  return util::format(
      "{\"rule\": \"%s\", \"description\": \"%s\", \"series\": \"%s\", "
      "\"denominator\": \"%s\", \"direction\": \"%s\", \"threshold\": %g, "
      "\"firing\": %s, \"fast_value\": %g, \"slow_value\": %g, "
      "\"fast_samples\": %zu, \"slow_samples\": %zu, \"alerts\": %llu}",
      util::json_escape(status.rule.name).c_str(),
      util::json_escape(status.rule.description).c_str(),
      util::json_escape(status.rule.series).c_str(),
      util::json_escape(status.rule.denominator).c_str(),
      status.rule.direction == obs::SloDirection::kAbove ? "above" : "below",
      status.rule.threshold, status.firing ? "true" : "false",
      status.fast_value, status.slow_value, status.fast_samples,
      status.slow_samples, static_cast<unsigned long long>(status.alerts));
}

/// SLO rule table over a recorded incident: the quality demo (drift
/// and join signal, spans for the bundle) followed by the resilient
/// fault drive, scraped and evaluated every --interval sim-seconds.
/// --capture DIR dumps a flight bundle per fire transition plus one
/// "manual" bundle at the end of the drive.
int cmd_health(const util::ArgParser& args) {
  const double rate =
      static_cast<double>(args.get_int("rate").value_or(30)) / 100.0;
  const int transfers =
      static_cast<int>(args.get_int("transfers").value_or(40));
  const double interval = args.get_double("interval").value_or(30.0);
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed").value_or(42));
  if (rate < 0.0 || rate > 1.0) return usage("--rate must be 0..100");
  if (transfers <= 0) return usage("--transfers must be positive");
  if (interval <= 0.0) return usage("--interval must be > 0");

  // Quality plane first: its drift alarms, accuracy joins, and spans
  // are the signal the quality.* rules and the flight bundle read.
  core::QualityDemoConfig quality_config;
  quality_config.seed = seed;
  const auto quality = core::run_quality_demo(quality_config);

  obs::MetricsRecorder recorder;
  obs::HealthMonitor monitor(recorder);
  monitor.add_rules(obs::HealthMonitor::builtin_rules(interval));

  std::optional<obs::FlightRecorder> flight;
  std::vector<obs::BundleInfo> bundles;
  if (const auto dir = args.get("capture")) {
    obs::FlightConfig flight_config;
    flight_config.dir = *dir;
    flight.emplace(&recorder, &obs::Tracer::global(),
                   &obs::EventSink::global(), flight_config);
    flight->set_quality(quality.tracker.get());
    monitor.set_on_alert([&](const obs::SloStatus& status, double now) {
      auto bundle = flight->capture(status.rule.name, now);
      if (bundle.ok()) bundles.push_back(std::move(bundle.value()));
    });
  }

  run_monitored_drive(recorder, monitor, rate, transfers, interval, seed);
  if (flight.has_value()) {
    // Deterministic end-of-drive bundle: present even when no rule
    // fired, so tooling always has an artifact to parse.
    auto bundle = flight->capture("manual", recorder.last_scrape_time());
    if (!bundle.ok()) {
      std::fprintf(stderr, "%s\n", bundle.error().c_str());
      return 1;
    }
    bundles.push_back(std::move(bundle.value()));
  }

  const auto status = monitor.status();
  if (args.has("json")) {
    std::string json = util::format(
        "{\"interval\": %g, \"scrapes\": %llu, \"series\": %zu, "
        "\"firing\": %zu, \"rules\": [",
        interval, static_cast<unsigned long long>(recorder.scrapes()),
        recorder.series_count(), monitor.firing_count());
    for (std::size_t i = 0; i < status.size(); ++i) {
      if (i > 0) json += ", ";
      json += slo_status_json(status[i]);
    }
    json += "], \"bundles\": [";
    for (std::size_t i = 0; i < bundles.size(); ++i) {
      const auto& bundle = bundles[i];
      if (i > 0) json += ", ";
      json += util::format(
          "{\"json_path\": \"%s\", \"ulm_path\": \"%s\", \"series\": %zu, "
          "\"points\": %zu, \"spans\": %zu, \"events\": %zu, "
          "\"quality_cells\": %zu}",
          util::json_escape(bundle.json_path).c_str(),
          util::json_escape(bundle.ulm_path).c_str(), bundle.series,
          bundle.points, bundle.spans, bundle.events, bundle.quality_cells);
    }
    json += "]}";
    std::printf("%s\n", json.c_str());
    return 0;
  }

  std::printf(
      "health drive: fault rate %.0f%%, %d transfers, scrape every %.0fs, "
      "seed %llu\n%llu scrapes, %zu series, %llu evaluation rounds, "
      "%zu rule(s) firing\n\n",
      100.0 * rate, transfers, interval,
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(recorder.scrapes()),
      recorder.series_count(),
      static_cast<unsigned long long>(monitor.evaluations()),
      monitor.firing_count());
  util::TextTable table(
      {"rule", "state", "fast", "slow", "threshold", "alerts"});
  table.set_align(0, util::TextTable::Align::Left);
  table.set_align(1, util::TextTable::Align::Left);
  for (const auto& row : status) {
    table.add_row({row.rule.name, slo_state(row),
                   row.fast_samples > 0 ? util::format("%.3f", row.fast_value)
                                        : std::string("-"),
                   row.slow_samples > 0 ? util::format("%.3f", row.slow_value)
                                        : std::string("-"),
                   util::format("%s%g",
                                row.rule.direction == obs::SloDirection::kAbove
                                    ? ">"
                                    : "<",
                                row.rule.threshold),
                   std::to_string(row.alerts)});
  }
  std::printf("%s", table.render().c_str());
  for (const auto& bundle : bundles) {
    std::printf("flight bundle: %s (%zu series, %zu spans, %zu events)\n",
                bundle.json_path.c_str(), bundle.series, bundle.spans,
                bundle.events);
  }
  return 0;
}

/// One-shot ranked view over the same recorded drive: the hottest rate
/// series by windowed mean, then the worst SLO rules (firing first).
int cmd_top(const util::ArgParser& args) {
  const auto limit =
      static_cast<std::size_t>(args.get_int("limit").value_or(10));
  const double interval = args.get_double("interval").value_or(30.0);
  const double rate =
      static_cast<double>(args.get_int("rate").value_or(30)) / 100.0;
  const int transfers =
      static_cast<int>(args.get_int("transfers").value_or(40));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed").value_or(42));
  if (limit == 0) return usage("--limit must be positive");
  if (interval <= 0.0) return usage("--interval must be > 0");
  if (rate < 0.0 || rate > 1.0) return usage("--rate must be 0..100");
  if (transfers <= 0) return usage("--transfers must be positive");

  core::QualityDemoConfig quality_config;
  quality_config.seed = seed;
  core::run_quality_demo(quality_config);

  obs::MetricsRecorder recorder;
  obs::HealthMonitor monitor(recorder);
  monitor.add_rules(obs::HealthMonitor::builtin_rules(interval));
  run_monitored_drive(recorder, monitor, rate, transfers, interval, seed);

  // Rank over the slow-rule window so `top` and `health` agree on what
  // "recent" means.
  const double window = 10.0 * interval;
  const double now = recorder.last_scrape_time();
  const auto hot = recorder.hottest(limit, window, now);
  auto status = monitor.status();
  std::stable_sort(status.begin(), status.end(),
                   [](const obs::SloStatus& a, const obs::SloStatus& b) {
                     if (a.firing != b.firing) return a.firing;
                     return a.alerts > b.alerts;
                   });
  if (status.size() > limit) status.resize(limit);

  if (args.has("json")) {
    std::string json = util::format(
        "{\"window\": %g, \"scrapes\": %llu, \"series\": %zu, \"hottest\": [",
        window, static_cast<unsigned long long>(recorder.scrapes()),
        recorder.series_count());
    for (std::size_t i = 0; i < hot.size(); ++i) {
      if (i > 0) json += ", ";
      json += util::format(
          "{\"series\": \"%s\", \"mean\": %g, \"last\": %g, "
          "\"samples\": %zu}",
          util::json_escape(hot[i].name).c_str(), hot[i].mean, hot[i].last,
          hot[i].samples);
    }
    json += "], \"slos\": [";
    for (std::size_t i = 0; i < status.size(); ++i) {
      if (i > 0) json += ", ";
      json += slo_status_json(status[i]);
    }
    json += "]}";
    std::printf("%s\n", json.c_str());
    return 0;
  }

  std::printf("hottest series (windowed mean over %.0fs, %zu recorded)\n",
              window, recorder.series_count());
  util::TextTable hot_table({"series", "mean/s", "last/s", "samples"});
  hot_table.set_align(0, util::TextTable::Align::Left);
  for (const auto& row : hot) {
    hot_table.add_row({row.name, util::format("%.3f", row.mean),
                       util::format("%.3f", row.last),
                       std::to_string(row.samples)});
  }
  std::printf("%s\n", hot_table.render().c_str());

  std::printf("worst SLOs\n");
  util::TextTable slo_table({"rule", "state", "fast", "slow", "alerts"});
  slo_table.set_align(0, util::TextTable::Align::Left);
  slo_table.set_align(1, util::TextTable::Align::Left);
  for (const auto& row : status) {
    slo_table.add_row(
        {row.rule.name, slo_state(row),
         row.fast_samples > 0 ? util::format("%.3f", row.fast_value)
                              : std::string("-"),
         row.slow_samples > 0 ? util::format("%.3f", row.slow_value)
                              : std::string("-"),
         std::to_string(row.alerts)});
  }
  std::printf("%s", slo_table.render().c_str());
  return 0;
}

/// Synthetic closed-loop load driver for the serving plane: a seeded
/// query mix over a small replica fleet, periodic ingest ticks bumping
/// the HistoryStore watermarks, and the frontend's cache / coalescing /
/// admission stack in between.  Deterministic for a given seed — the
/// same flags always produce the same admitted/shed/rejected split.
int cmd_serve(const util::ArgParser& args) {
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed").value_or(42));
  const auto total =
      static_cast<std::size_t>(args.get_int("queries").value_or(200'000));
  const auto batch =
      static_cast<std::size_t>(args.get_int("batch").value_or(256));
  const auto files = static_cast<int>(args.get_int("files").value_or(64));
  const double overload = args.get_double("overload").value_or(1.0);
  if (total == 0 || batch == 0) return usage("--queries/--batch must be > 0");
  if (files <= 0) return usage("--files must be positive");
  if (overload <= 0.0) return usage("--overload must be > 0");

  // Fleet: three GridFTP hosts (the paper's testbed sites), one client.
  const std::vector<std::string> sites = {"lbl", "isi", "anl"};
  const std::vector<std::string> hosts = {
      "dpsslx04.lbl.gov", "jet.isi.edu", "pitcairn.mcs.anl.gov"};
  const std::string client_ip = "140.221.65.69";
  const std::vector<Bytes> size_mix = {1 * kMB, 10 * kMB, 100 * kMB,
                                       1000 * kMB};

  auto store = std::make_shared<history::HistoryStore>();
  util::Rng rng(seed);
  for (std::size_t h = 0; h < hosts.size(); ++h) {
    const history::SeriesKey key{.host = hosts[h],
                                 .remote_ip = client_ip,
                                 .op = gridftp::Operation::kRead};
    const double base = 2e6 * static_cast<double>(h + 1);
    for (int i = 0; i < 40; ++i) {
      store->append(key, predict::Observation{
                             .time = 60.0 * i,
                             .value = base * rng.uniform(0.5, 1.5),
                             .file_size = size_mix[static_cast<std::size_t>(
                                 rng.uniform_int(0, 3))],
                             .ok = true});
    }
  }

  replica::ReplicaCatalog catalog;
  std::vector<std::string> lfns;
  for (int f = 0; f < files; ++f) {
    std::string lfn = "lfn://data/" + std::to_string(f);
    // Every file on two hosts, rotating so rankings differ across files.
    for (int r = 0; r < 2; ++r) {
      const std::size_t h =
          static_cast<std::size_t>(f + r) % hosts.size();
      catalog.add_replica(lfn, {.site = sites[h],
                                .server_host = hosts[h],
                                .path = "/data/" + std::to_string(f)});
    }
    lfns.push_back(std::move(lfn));
  }

  // Empty GIIS: fills flow through the broker's history fallback, the
  // same estimate the provider would publish.
  mds::Giis giis("top");
  replica::ReplicaBroker broker(
      catalog, giis, replica::SelectionPolicy::kPredictedBest, seed);
  broker.bind_history(store.get());

  serving::ServingConfig config;
  // Nominal full-path capacity; the offered rate is `overload` times
  // this, so --overload 1 admits everything and 16 sheds most of it.
  const double admit_rate = 100'000.0;
  config.admission.admit_rate = admit_rate;
  config.admission.admit_burst = static_cast<double>(batch);
  serving::ServingFrontend frontend(broker, catalog, store, config);

  const double offered_rate = admit_rate * overload;
  std::size_t tallies[4] = {0, 0, 0, 0};  // cached/filled/shed/rejected
  std::size_t informed = 0;
  std::vector<serving::Query> queries(batch);
  double now = 3600.0;  // after the seeded history
  std::size_t issued = 0;
  std::size_t ingest_tick = 0;

  // Health plane, both cadences: a wall-clock recorder samples the
  // registry from its background thread while the loop runs (the live
  // process path), and a query-time recorder driven from the loop
  // feeds the SLO monitor so the health footer is deterministic.
  obs::MetricsRecorder wall_recorder;
  wall_recorder.start_wall_clock(0.05);
  obs::MetricsRecorder recorder;
  obs::HealthMonitor monitor(recorder);
  const double scrape_interval =
      static_cast<double>(total) / offered_rate / 40.0;
  monitor.add_rules(obs::HealthMonitor::builtin_rules(scrape_interval));
  double next_scrape = now + scrape_interval;

  while (issued < total) {
    const std::size_t n = std::min(batch, total - issued);
    for (std::size_t i = 0; i < n; ++i) {
      queries[i] = serving::Query{
          .logical_name = lfns[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(lfns.size()) - 1))],
          .client_ip = client_ip,
          .size =
              size_mix[static_cast<std::size_t>(rng.uniform_int(0, 3))]};
    }
    const auto answers =
        frontend.select_many(std::span(queries.data(), n), now);
    for (const auto& answer : answers) {
      ++tallies[static_cast<std::size_t>(answer.path)];
      if (answer.informed) ++informed;
    }
    issued += n;
    now += static_cast<double>(n) / offered_rate;
    while (now >= next_scrape) {
      recorder.scrape(next_scrape);
      monitor.evaluate(next_scrape);
      next_scrape += scrape_interval;
    }
    // Closed loop: every ~50 batches one series takes a fresh
    // observation, bumping its watermark and invalidating its entries.
    if (++ingest_tick % 50 == 0) {
      const std::size_t h = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1));
      store->append(
          history::SeriesKey{.host = hosts[h],
                             .remote_ip = client_ip,
                             .op = gridftp::Operation::kRead},
          predict::Observation{.time = now,
                               .value = 2e6 * double(h + 1) * rng.uniform(0.5, 1.5),
                               .file_size = size_mix[static_cast<std::size_t>(
                                   rng.uniform_int(0, 3))],
                               .ok = true});
    }
  }

  std::printf("serving demo: %zu queries, overload %.1fx, seed %llu\n\n",
              total, overload, static_cast<unsigned long long>(seed));
  util::TextTable table({"path", "queries", "%"});
  table.set_align(0, util::TextTable::Align::Left);
  const char* labels[4] = {"cached", "filled", "shed", "rejected"};
  for (std::size_t i = 0; i < 4; ++i) {
    table.add_row({labels[i], std::to_string(tallies[i]),
                   util::format("%.2f", 100.0 * static_cast<double>(tallies[i]) /
                                            static_cast<double>(total))});
  }
  std::printf("%s\n", table.render().c_str());
  const std::size_t worked = tallies[0] + tallies[1];
  std::printf("informed %.2f%%, cache entries %zu, hit rate %.2f%%\n",
              100.0 * static_cast<double>(informed) /
                  static_cast<double>(total),
              frontend.cache().entries(),
              worked == 0 ? 0.0
                          : 100.0 * static_cast<double>(tallies[0]) /
                                static_cast<double>(worked));
  wall_recorder.stop_wall_clock();
  std::printf(
      "health: %llu scrapes (%zu series), %llu wall-clock scrapes, "
      "%zu rule(s) firing",
      static_cast<unsigned long long>(recorder.scrapes()),
      recorder.series_count(),
      static_cast<unsigned long long>(wall_recorder.scrapes()),
      monitor.firing_count());
  for (const auto& slo : monitor.status()) {
    if (slo.firing) std::printf(" [%s]", slo.rule.name.c_str());
  }
  std::printf("\n");
  return 0;
}

/// Runs the closed-loop quality demo and reports the online accuracy
/// join: rolling per-(site, predictor, class) error, drift alarms, and
/// the broker demotions they caused.
int cmd_quality(const util::ArgParser& args) {
  core::QualityDemoConfig config;
  config.transfers = static_cast<int>(args.get_int("transfers").value_or(40));
  config.shift_after = static_cast<int>(args.get_int("shift").value_or(15));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed").value_or(42));
  if (config.transfers <= 0) return usage("--transfers must be positive");
  if (config.shift_after < 0 || config.shift_after >= config.transfers) {
    return usage("--shift must be in [0, transfers)");
  }
  const auto result = core::run_quality_demo(config);
  const auto report = result.tracker->report();

  // Head-to-head aggregate: one row per predictor, count-weighted mean
  // percent error across every site and size class — the arbitration
  // view (which battery member is winning overall, old or new).
  struct HeadToHead {
    std::string predictor;
    std::size_t count = 0;
    double mean_error_pct = 0.0;
    bool drifting = false;
  };
  std::vector<HeadToHead> head_to_head;
  {
    std::map<std::string, HeadToHead> by_predictor;
    for (const auto& cell : report.cells) {
      auto& agg = by_predictor[cell.predictor];
      agg.predictor = cell.predictor;
      agg.mean_error_pct +=
          cell.mean_error_pct * static_cast<double>(cell.count);
      agg.count += cell.count;
      agg.drifting = agg.drifting || cell.drifting;
    }
    for (auto& [name, agg] : by_predictor) {
      if (agg.count > 0) agg.mean_error_pct /= static_cast<double>(agg.count);
      head_to_head.push_back(std::move(agg));
    }
    std::stable_sort(head_to_head.begin(), head_to_head.end(),
                     [](const HeadToHead& a, const HeadToHead& b) {
                       return a.mean_error_pct < b.mean_error_pct;
                     });
  }

  if (args.has("json")) {
    std::string json = util::format(
        "{\"transfers_ok\": %d, \"transfers_failed\": %d, "
        "\"predictions\": %llu, \"joins_trace\": %llu, "
        "\"joins_fallback\": %llu, \"join_misses\": %llu, "
        "\"join_rate\": %.4f, \"skipped\": %llu, \"drift_events\": %llu, "
        "\"drift_demotions\": %d, \"completions_to_drift\": %d, "
        "\"cells\": [",
        result.ok, result.failed,
        static_cast<unsigned long long>(report.predictions),
        static_cast<unsigned long long>(report.joins_trace),
        static_cast<unsigned long long>(report.joins_fallback),
        static_cast<unsigned long long>(report.join_misses),
        report.join_rate(), static_cast<unsigned long long>(report.skipped),
        static_cast<unsigned long long>(report.drift_events),
        result.drift_demotions, result.completions_to_drift);
    for (std::size_t i = 0; i < report.cells.size(); ++i) {
      const auto& cell = report.cells[i];
      if (i > 0) json += ", ";
      json += util::format(
          "{\"site\": \"%s\", \"predictor\": \"%s\", \"class\": \"%s\", "
          "\"count\": %zu, \"mean_error_pct\": %.2f, "
          "\"stddev_error_pct\": %.2f, \"drifting\": %s}",
          util::json_escape(cell.site).c_str(),
          util::json_escape(cell.predictor).c_str(),
          util::json_escape(cell.class_label).c_str(),
          cell.count, cell.mean_error_pct, cell.stddev_error_pct,
          cell.drifting ? "true" : "false");
    }
    json += "], \"head_to_head\": [";
    for (std::size_t i = 0; i < head_to_head.size(); ++i) {
      const auto& row = head_to_head[i];
      if (i > 0) json += ", ";
      json += util::format(
          "{\"predictor\": \"%s\", \"count\": %zu, "
          "\"mean_error_pct\": %.2f, \"drifting\": %s}",
          util::json_escape(row.predictor).c_str(), row.count,
          row.mean_error_pct, row.drifting ? "true" : "false");
    }
    json += "]}";
    std::printf("%s\n", json.c_str());
    return 0;
  }

  std::printf(
      "%d transfers (%d ok), bandwidth shift at t=%.0fs (after %d fetches)\n"
      "predictions served %llu, joins %llu (trace %llu / fallback %llu), "
      "misses %llu, join rate %.1f%%\n"
      "drift events %llu (first alarm %d transfers after the shift), "
      "broker demotions %d\n\n",
      config.transfers, result.ok, result.shift_time, config.shift_after,
      static_cast<unsigned long long>(report.predictions),
      static_cast<unsigned long long>(report.joins()),
      static_cast<unsigned long long>(report.joins_trace),
      static_cast<unsigned long long>(report.joins_fallback),
      static_cast<unsigned long long>(report.join_misses),
      100.0 * report.join_rate(),
      static_cast<unsigned long long>(report.drift_events),
      result.completions_to_drift, result.drift_demotions);

  // Rolling error table, largest cells first (site/predictor/class
  // triples grow fast: 30 predictors per served site).
  auto cells = report.cells;
  std::stable_sort(cells.begin(), cells.end(),
                   [](const obs::QualityCell& a, const obs::QualityCell& b) {
                     return a.count > b.count;
                   });
  const auto limit =
      static_cast<std::size_t>(args.get_int("limit").value_or(12));
  util::TextTable table(
      {"site", "predictor", "class", "n", "mean % err", "stddev", "drift"});
  table.set_align(0, util::TextTable::Align::Left);
  table.set_align(1, util::TextTable::Align::Left);
  for (std::size_t i = 0; i < cells.size() && i < limit; ++i) {
    const auto& cell = cells[i];
    table.add_row({cell.site, cell.predictor, cell.class_label,
                   std::to_string(cell.count),
                   util::format("%.1f", cell.mean_error_pct),
                   util::format("%.1f", cell.stddev_error_pct),
                   cell.drifting ? "DRIFT" : "-"});
  }
  std::printf("%s", table.render().c_str());
  if (cells.size() > limit) {
    std::printf("(%zu more cells; raise --limit)\n", cells.size() - limit);
  }

  // Head-to-head leaderboard: best battery members first.  This is
  // where a regression predictor beating the paper's univariate
  // battery becomes visible online, not just in an offline evaluator.
  std::printf("\npredictor head-to-head (count-weighted across all cells)\n");
  util::TextTable leaderboard({"predictor", "n", "mean % err", "drift"});
  leaderboard.set_align(0, util::TextTable::Align::Left);
  for (std::size_t i = 0; i < head_to_head.size() && i < limit; ++i) {
    const auto& row = head_to_head[i];
    leaderboard.add_row({row.predictor, std::to_string(row.count),
                         util::format("%.1f", row.mean_error_pct),
                         row.drifting ? "DRIFT" : "-"});
  }
  std::printf("%s", leaderboard.render().c_str());
  if (head_to_head.size() > limit) {
    std::printf("(%zu more predictors; raise --limit)\n",
                head_to_head.size() - limit);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> raw(argv + 1, argv + argc);
  if (raw.empty()) return usage("missing subcommand");

  util::ArgParser args;
  for (const char* name : {"campaign", "seed", "days", "out", "training",
                           "size", "predictor", "host", "limit", "rate",
                           "transfers", "shift", "tree", "queries", "batch",
                           "files", "overload", "sites", "links", "flows",
                           "duration", "scenario", "interval", "capture"}) {
    args.add_option(name);
  }
  args.add_option("extended", /*is_boolean=*/true);
  args.add_option("json", /*is_boolean=*/true);
  args.add_option("ulm", /*is_boolean=*/true);
  args.add_option("quality", /*is_boolean=*/true);
  const auto parsed = args.parse(raw);
  if (!parsed.ok()) return usage(parsed.error().c_str());
  if (args.positionals().empty()) return usage("missing subcommand");

  const auto& command = args.positionals().front();
  if (command == "campaign") return cmd_campaign(args);
  if (command == "simgrid") return cmd_simgrid(args);
  if (command == "analyze") return cmd_analyze(args);
  if (command == "predict") return cmd_predict(args);
  if (command == "provider") return cmd_provider(args);
  if (command == "classes") return cmd_classes(args);
  if (command == "probe") return cmd_probe(args);
  if (command == "metrics") return cmd_metrics(args);
  if (command == "trace") return cmd_trace(args);
  if (command == "history") return cmd_history(args);
  if (command == "durability") return cmd_durability(args);
  if (command == "resilience") return cmd_resilience(args);
  if (command == "quality") return cmd_quality(args);
  if (command == "serve") return cmd_serve(args);
  if (command == "health") return cmd_health(args);
  if (command == "top") return cmd_top(args);
  if (command == "help") return usage();
  return usage(("unknown subcommand: " + command).c_str());
}
