#include "serving/cache.hpp"

#include <bit>
#include <cmath>
#include <limits>

namespace wadp::serving {
namespace {

// Power-of-two ceiling with a floor of `minimum`.
std::size_t pow2_at_least(std::size_t value, std::size_t minimum) {
  if (value < minimum) value = minimum;
  return std::bit_ceil(value);
}

// splitmix64: packed keys are structured (dense series ids in the high
// word), so slots are picked through a full-avalanche mix.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// NaN is the sentinel for "cached answer is nullopt" (a predictor that
// declined).  Real predictions are throughputs/durations and never NaN.
double encode(std::optional<double> value) {
  return value ? *value : std::numeric_limits<double>::quiet_NaN();
}

std::optional<double> decode(double raw) {
  if (std::isnan(raw)) return std::nullopt;
  return raw;
}

}  // namespace

PredictionCache::PredictionCache(CacheConfig config) {
  const std::size_t shards = pow2_at_least(config.shard_count, 1);
  slots_per_shard_ = pow2_at_least(
      (config.capacity + shards - 1) / shards, /*minimum=*/8);
  shard_mask_ = shards - 1;
  slots_total_ = shards * slots_per_shard_;
  probe_limit_ = config.probe_limit == 0 ? 1 : config.probe_limit;
  if (probe_limit_ > slots_per_shard_) probe_limit_ = slots_per_shard_;
  slots_ = std::make_unique<Slot[]>(slots_total_);
}

const PredictionCache::Slot* PredictionCache::probe_origin(
    CacheKey key) const {
  const std::uint64_t h = mix(key);
  const std::size_t shard = (h >> 32) & shard_mask_;
  const std::size_t slot = h & (slots_per_shard_ - 1);
  return &slots_[shard * slots_per_shard_ + slot];
}

PredictionCache::Lookup PredictionCache::lookup(
    CacheKey key, std::uint64_t watermark) const {
  const Slot* origin = probe_origin(key);
  const Slot* base =
      origin - (origin - slots_.get()) % slots_per_shard_;
  const std::size_t start = static_cast<std::size_t>(origin - base);
  for (std::size_t i = 0; i < probe_limit_; ++i) {
    const Slot& slot = base[(start + i) & (slots_per_shard_ - 1)];
    const std::uint64_t slot_key = slot.key.load(std::memory_order_acquire);
    if (slot_key == 0) return {};  // never-claimed slot ends the chain
    if (slot_key != key) continue;
    // Seqlock read: version (acquire) → payload (acquire) → version
    // re-check.  The payload loads are acquire instead of the classic
    // relaxed-loads-plus-acquire-fence: a later load can never reorder
    // before an earlier acquire load, so the v2 re-check is pinned
    // after both payload reads without a standalone fence (which TSan
    // does not model — GCC's -Wtsan rejects it outright).  An odd or
    // changed version means a writer interleaved; one retry is enough
    // in practice, but a miss is always a correct answer, so bail
    // instead of spinning on the hot path.
    for (int attempt = 0; attempt < 2; ++attempt) {
      const std::uint64_t v1 = slot.version.load(std::memory_order_acquire);
      if (v1 & 1) continue;  // mid-publish
      const std::uint64_t state = slot.state.load(std::memory_order_acquire);
      const double raw = slot.value.load(std::memory_order_acquire);
      const std::uint64_t v2 = slot.version.load(std::memory_order_relaxed);
      if (v1 != v2) continue;  // torn: writer won the race, reread
      if (state == 0) return {};  // claimed, first publish still pending
      Lookup result;
      result.computed_at = (state >> 1) - 1;
      result.value = (state & 1) ? decode(raw) : std::nullopt;
      result.outcome = result.computed_at == watermark ? Outcome::kHit
                                                       : Outcome::kStale;
      return result;
    }
    return {};  // persistent tearing — treat as miss, never block
  }
  return {};  // probe window exhausted
}

bool PredictionCache::store(CacheKey key, std::uint64_t watermark,
                            std::optional<double> value) {
  const Slot* origin_c = probe_origin(key);
  Slot* base = slots_.get() +
               ((origin_c - slots_.get()) / slots_per_shard_) * slots_per_shard_;
  const std::size_t start =
      static_cast<std::size_t>(origin_c - base);
  for (std::size_t i = 0; i < probe_limit_; ++i) {
    Slot& slot = base[(start + i) & (slots_per_shard_ - 1)];
    std::uint64_t slot_key = slot.key.load(std::memory_order_acquire);
    if (slot_key == 0) {
      // Claim the empty slot; on CAS failure another writer claimed it
      // first — fall through and re-examine what they stored.
      std::uint64_t expected = 0;
      if (slot.key.compare_exchange_strong(expected, key,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        slot_key = key;
      } else {
        slot_key = expected;
      }
    }
    if (slot_key != key) continue;
    // Exclusive publish: flip the seqlock odd.  Losing the CAS means a
    // concurrent writer is publishing this same key right now; skipping
    // is safe (a reader that sees their older epoch reports kStale and
    // the single-flight layer refills).
    std::uint64_t ver = slot.version.load(std::memory_order_relaxed);
    if (ver & 1) return false;
    if (!slot.version.compare_exchange_strong(ver, ver + 1,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed)) {
      return false;
    }
    // Never publish backwards: a delayed fill for an older epoch must
    // not overwrite a fresher entry.  A suppressed publish reports
    // false so callers never count the fill as what the cache now
    // serves (coalesced_fill re-probes and hands followers the fresher
    // entry instead).
    const std::uint64_t state = slot.state.load(std::memory_order_relaxed);
    const std::uint64_t packed = ((watermark + 1) << 1) | (value ? 1u : 0u);
    const bool published = state == 0 || (state >> 1) - 1 <= watermark;
    if (published) {
      slot.value.store(encode(value), std::memory_order_relaxed);
      slot.state.store(packed, std::memory_order_relaxed);
    }
    slot.version.store(ver + 2, std::memory_order_release);
    return published;
  }
  return false;  // probe window full — caller serves uncached
}

std::size_t PredictionCache::entries() const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < slots_total_; ++i) {
    if (slots_[i].key.load(std::memory_order_relaxed) != 0 &&
        slots_[i].state.load(std::memory_order_relaxed) != 0) {
      ++count;
    }
  }
  return count;
}

}  // namespace wadp::serving
