// Single-flight request coalescing for cache miss fills.
//
// When the cache misses (or holds a stale entry) for a key, every
// concurrent query for that key wants the *same* computation: one walk
// of the series history through one predictor.  Running it N times is
// pure waste and — worse — N threads hammering the prediction service
// is exactly the stampede that follows every watermark bump.  The
// single-flight table collapses them: the first thread in becomes the
// *leader* and computes; the rest park on a condvar and receive the
// leader's answer.
//
// The in-flight table is bounded: when `max_in_flight` distinct keys
// are already being computed, a new key's caller is told kOverflow and
// computes for itself, uncoalesced (correct, just not deduplicated) —
// the table can never grow without bound under pathological key churn.
//
// Exactly-once contract (proved by SingleFlightThreadStressTest): for
// one (key, generation), at most one leader runs the fill as long as
// the leader publishes its answer to the cache *before* calling
// done() — a thread arriving after done() re-probes the cache, hits,
// and never enters the table.  coalesced_fill() packages that
// discipline.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "serving/cache.hpp"

namespace wadp::serving {

class SingleFlight {
 public:
  enum class Role {
    kLeader,    ///< caller must compute, then done()
    kFollower,  ///< join() returned the leader's answer
    kOverflow,  ///< table full — compute privately, no done()
  };

  struct Ticket {
    Role role = Role::kOverflow;
    /// kFollower only: the leader's answer (nullopt is a valid answer —
    /// the predictor declined; followers still must not recompute).
    std::optional<double> value;
  };

  explicit SingleFlight(std::size_t max_in_flight = 256)
      : max_in_flight_(max_in_flight) {}

  SingleFlight(const SingleFlight&) = delete;
  SingleFlight& operator=(const SingleFlight&) = delete;

  /// Enters the flight for `key`.  Leaders return immediately;
  /// followers block until the leader's done() and return its answer.
  Ticket join(CacheKey key);

  /// Leader hand-off: records the answer, wakes every follower, and
  /// retires the flight.  MUST be called exactly once per kLeader
  /// ticket, after the answer is visible in the cache.
  void done(CacheKey key, std::optional<double> value);

  /// Flights currently in the table (for gauges/tests).
  std::size_t in_flight() const;

 private:
  /// Followers hold the flight via shared_ptr: done() erases the map
  /// node immediately, so late arrivals never inherit a completed
  /// (possibly older-generation) flight.
  struct Flight {
    std::optional<double> value;
    bool completed = false;  // guarded by mu_
  };

  const std::size_t max_in_flight_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<CacheKey, std::shared_ptr<Flight>> flights_;
};

/// The miss path, packaged so every caller gets the exactly-once
/// discipline right: re-check the cache, join the flight, and as leader
/// publish-to-cache *before* retiring the flight.  `compute` runs at
/// most once per call site per (key, generation) — concurrent callers
/// coalesce onto one leader; only a table overflow or a cache-probe
/// overflow can add computations, and both are counted by the caller.
///
/// Returns the answer and whether *this* call ran `compute`.
template <typename ComputeFn>
std::pair<std::optional<double>, bool> coalesced_fill(
    PredictionCache& cache, SingleFlight& flight, CacheKey key,
    std::uint64_t watermark, ComputeFn&& compute) {
  SingleFlight::Ticket ticket = flight.join(key);
  if (ticket.role == SingleFlight::Role::kFollower) {
    // The leader published before done(); trust its answer even if our
    // own cache probe would race a newer fill.
    return {ticket.value, false};
  }
  if (ticket.role == SingleFlight::Role::kLeader) {
    // A prior leader may have filled the cache between our miss and our
    // join (miss → their publish → their done → our join).  Re-check
    // under leadership so that window never double-computes.
    PredictionCache::Lookup again = cache.lookup(key, watermark);
    if (again.outcome == PredictionCache::Outcome::kHit) {
      flight.done(key, again.value);
      return {again.value, false};
    }
    std::optional<double> value;
    try {
      value = compute();
    } catch (...) {
      // The leader must retire the flight even on unwind: a flight left
      // in the table parks every follower forever and leaks one slot of
      // the bounded table.  Followers receive nullopt — "predictor
      // declined" is a legal answer — and the next probe refills.
      flight.done(key, std::nullopt);
      throw;
    }
    if (!cache.store(key, watermark, value)) {  // publish BEFORE retiring
      // Suppressed publish (a fresher-epoch entry supersedes ours, or
      // probe-window bypass): hand followers what the cache actually
      // holds, not our older computation, whenever it holds anything.
      const PredictionCache::Lookup held = cache.lookup(key, watermark);
      if (held.outcome != PredictionCache::Outcome::kMiss) {
        value = held.value;
      }
    }
    flight.done(key, value);
    return {value, true};
  }
  // kOverflow: table full — compute privately, still publish.
  std::optional<double> value = compute();
  cache.store(key, watermark, value);
  return {value, true};
}

}  // namespace wadp::serving
