#include "serving/frontend.hpp"

#include <algorithm>
#include <chrono>

namespace wadp::serving {

namespace {

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Reusable "a \n b" key buffer: plan/intern lookups run per query and
/// must not allocate once the maps warm up.
std::string& joined_key(std::string_view a, std::string_view b) {
  static thread_local std::string key;
  key.clear();
  key.append(a);
  key.push_back('\n');
  key.append(b);
  return key;
}

/// The one predictor the serving plane currently caches: the broker's
/// classified last-15 mean (AVG15/fs semantics).  The id is part of the
/// cache key so further predictors can share the table later.
constexpr std::uint16_t kBrokerPredictorId = 0;

}  // namespace

ServingFrontend::ServingFrontend(replica::ReplicaBroker& broker,
                                 const replica::ReplicaCatalog& catalog,
                                 std::shared_ptr<history::HistoryStore> history,
                                 ServingConfig config)
    : broker_(broker),
      catalog_(catalog),
      history_(std::move(history)),
      config_(std::move(config)),
      cache_(config_.cache),
      flight_(config_.max_in_flight),
      admission_(config_.admission) {
  auto& registry = obs::Registry::global();
  metrics_.queries = &registry.counter("wadp_serving_queries_total", {},
                                       "Queries offered to the frontend");
  metrics_.hits = &registry.counter(
      "wadp_serving_cache_hits_total", {},
      "Candidate probes answered by a watermark-valid cache entry");
  metrics_.misses =
      &registry.counter("wadp_serving_cache_misses_total", {},
                        "Candidate probes that missed (absent or stale)");
  metrics_.fills = &registry.counter(
      "wadp_serving_fills_total", {},
      "Prediction computations run to fill the cache (single-flight leaders)");
  metrics_.coalesced = &registry.counter(
      "wadp_serving_coalesced_total", {},
      "Candidate probes that piggybacked on another thread's in-flight fill");
  metrics_.shed = &registry.counter(
      "wadp_serving_shed_total", {},
      "Queries degraded to the stale-tolerant fast path by admission");
  metrics_.rejected = &registry.counter(
      "wadp_serving_rejected_total", {},
      "Queries refused outright by admission");
  metrics_.shed_uninformed = &registry.counter(
      "wadp_serving_shed_uninformed_total", {},
      "Shed queries answered without any cached prediction");
  metrics_.inflight =
      &registry.gauge("wadp_serving_inflight_queries", {},
                      "Queries currently inside select_many");
  metrics_.batch_latency =
      &registry.histogram("wadp_serving_batch_seconds", {},
                          "Wall-clock latency of one select_many batch");
}

ServingFrontend::InternedSeries ServingFrontend::intern_series(
    const std::string& host, const std::string& client) {
  const std::string& key = joined_key(host, client);
  {
    std::shared_lock lock(intern_mu_);
    if (const auto it = series_ids_.find(key); it != series_ids_.end()) {
      return {it->second, series_cells_[it->second - 1].get()};
    }
  }
  // The watermark subscription creates the (possibly still empty)
  // series, so it binds to the cell every later append publishes to.
  auto cell = history_->watermark(history::SeriesKey{
      .host = host, .remote_ip = client, .op = gridftp::Operation::kRead});
  std::unique_lock lock(intern_mu_);
  if (const auto it = series_ids_.find(key); it != series_ids_.end()) {
    // Lost the insert race — first interner wins.
    return {it->second, series_cells_[it->second - 1].get()};
  }
  const auto* raw = cell.get();
  series_cells_.push_back(std::move(cell));
  // 1-based: pack_key must never produce the cache's 0 = empty sentinel
  // (series id 0 with predictor 0 and class 0 would).
  const auto id = static_cast<std::uint32_t>(series_cells_.size());
  series_ids_.emplace(key, id);
  return {id, raw};
}

const ServingFrontend::Plan& ServingFrontend::plan_for(const Query& query) {
  {
    const std::string& key =
        joined_key(query.logical_name, query.client_ip);
    std::shared_lock lock(plan_mu_);
    if (const auto it = plans_.find(key); it != plans_.end()) {
      return it->second;  // node-based map: stable across other inserts
    }
  }
  // Build off-lock: catalog reads and series interning take their own
  // locks.  The joined_key buffer is reused by intern_series below, so
  // materialize the map key first.
  std::string key(query.logical_name);
  key.push_back('\n');
  key.append(query.client_ip);
  const std::string client(query.client_ip);
  Plan plan;
  for (const auto& replica :
       catalog_.replicas(std::string(query.logical_name))) {
    Candidate candidate;
    candidate.replica = &replica;
    // The cell pointer comes back resolved under intern_mu_: indexing
    // series_cells_ here would race concurrent interns reallocating it.
    const InternedSeries interned =
        intern_series(replica.server_host, client);
    candidate.series_id = interned.id;
    candidate.watermark = interned.watermark;
    plan.candidates.push_back(candidate);
  }
  std::unique_lock lock(plan_mu_);
  return plans_.emplace(std::move(key), std::move(plan)).first->second;
}

Answer ServingFrontend::answer_admitted(const Query& query, SimTime now) {
  const Plan& plan = plan_for(query);
  Answer answer;
  answer.path = AnswerPath::kCached;
  if (plan.candidates.empty()) return answer;

  const auto size_class =
      static_cast<std::uint16_t>(config_.classifier.classify(query.size));
  const Candidate* best = nullptr;
  double best_value = 0.0;
  for (const Candidate& candidate : plan.candidates) {
    const std::uint64_t watermark =
        candidate.watermark->load(std::memory_order_acquire);
    const CacheKey key =
        pack_key(candidate.series_id, kBrokerPredictorId, size_class);
    std::optional<double> value;
    const PredictionCache::Lookup hit = cache_.lookup(key, watermark);
    if (hit.outcome == PredictionCache::Outcome::kHit) {
      metrics_.hits->inc();
      value = hit.value;
    } else {
      metrics_.misses->inc();
      answer.path = AnswerPath::kFilled;
      auto [filled, ran_compute] = coalesced_fill(
          cache_, flight_, key, watermark, [&]() -> std::optional<double> {
            // Serialized: the GIIS inquiry path underneath is not
            // thread-safe.  Rare by design — every steady-state probe
            // is a hit.
            std::lock_guard<std::mutex> fill_lock(fill_mu_);
            return broker_.predict_candidate(
                *candidate.replica, std::string(query.client_ip), query.size,
                now);
          });
      (ran_compute ? metrics_.fills : metrics_.coalesced)->inc();
      value = filled;
    }
    if (value && (best == nullptr || *value > best_value)) {
      best = &candidate;
      best_value = *value;
    }
  }
  if (best != nullptr) {
    answer.replica = best->replica;
    answer.predicted_bandwidth = best_value;
    answer.informed = true;
  } else {
    // No candidate had a usable prediction: same fallback as the
    // broker — first replica, flagged uninformed.
    answer.replica = plan.candidates.front().replica;
  }
  return answer;
}

Answer ServingFrontend::answer_shed(const Query& query, SimTime now) {
  (void)now;  // shed answers never compute, so "now" plays no part
  const Plan& plan = plan_for(query);
  Answer answer;
  answer.path = AnswerPath::kShed;
  if (plan.candidates.empty()) return answer;

  const auto size_class =
      static_cast<std::uint16_t>(config_.classifier.classify(query.size));
  const Candidate* best = nullptr;
  double best_value = 0.0;
  for (const Candidate& candidate : plan.candidates) {
    const std::uint64_t watermark =
        candidate.watermark->load(std::memory_order_acquire);
    const CacheKey key =
        pack_key(candidate.series_id, kBrokerPredictorId, size_class);
    // kLastValue semantics: any published entry answers, stale or not.
    const PredictionCache::Lookup hit = cache_.lookup(key, watermark);
    if (hit.outcome == PredictionCache::Outcome::kMiss) continue;
    if (!hit.value) continue;
    if (best == nullptr || *hit.value > best_value) {
      best = &candidate;
      best_value = *hit.value;
    }
  }
  if (best != nullptr) {
    answer.replica = best->replica;
    answer.predicted_bandwidth = best_value;
    answer.informed = true;
  } else {
    answer.replica = plan.candidates.front().replica;
    metrics_.shed_uninformed->inc();
  }
  return answer;
}

std::vector<Answer> ServingFrontend::select_many(std::span<const Query> queries,
                                                 SimTime now) {
  const double started = wall_seconds();
  metrics_.queries->inc(queries.size());
  const AdmissionController::Decision decision =
      admission_.decide(queries.size(), now);
  const std::size_t working = decision.admitted + decision.shed;
  admission_.enter(working);
  metrics_.inflight->set(static_cast<double>(admission_.queue_depth()));

  std::vector<Answer> answers;
  answers.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (i < decision.admitted) {
      answers.push_back(answer_admitted(queries[i], now));
    } else if (i < working) {
      metrics_.shed->inc();
      answers.push_back(answer_shed(queries[i], now));
    } else {
      metrics_.rejected->inc();
      answers.emplace_back();  // kRejected, no replica
    }
  }

  admission_.leave(working);
  metrics_.inflight->set(static_cast<double>(admission_.queue_depth()));
  metrics_.batch_latency->record(wall_seconds() - started);
  return answers;
}

Answer ServingFrontend::select_one(const Query& query, SimTime now) {
  return select_many(std::span<const Query>(&query, 1), now).front();
}

}  // namespace wadp::serving
