// Epoch-keyed prediction cache: the serving plane's hot path.
//
// Replica-selection answers are pure functions of (series history,
// predictor, size class) — immutable until the series' history
// advances.  The HistoryStore's per-series epoch watermarks
// (HistoryStore::watermark) make that advance observable with one
// atomic load, so the cache needs no TTLs and no eviction protocol:
// an entry simply carries the epoch it was computed at, and a read is
// valid iff that stamp equals the store's current watermark.
//
// Layout: a sharded, open-addressed table of fixed-size slots.  Keys
// are caller-packed 64-bit integers (see pack_key: interned series id,
// predictor id, size class), so probing compares one integer and a
// slot never stores a string.  Concurrency:
//
//   * readers are lock-free and wait-free: probe by relaxed/acquire
//     integer loads, validate the payload with a per-slot seqlock
//     (an even/odd version counter) — no mutex, no CAS, no retries
//     beyond a torn-write reread;
//   * writers (miss fills, staged off the read path by the
//     single-flight layer in coalesce.hpp) claim slots with one CAS
//     and publish payloads under the slot's version counter; a writer
//     that loses the version CAS *skips* its store (the competing
//     writer is publishing the same key; a stale entry is re-filled on
//     the next read) so writers never block each other;
//   * keys are immutable once claimed — a slot is never re-keyed, so a
//     probing reader can never observe another key's payload.  When a
//     probe window fills up, store() reports the bypass and the caller
//     serves uncached (counted, never wrong).
//
// All cross-thread state is std::atomic with explicit ordering:
// TSan-clean by construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

namespace wadp::serving {

/// Packed cache key.  0 is reserved for "empty slot" — pack_key never
/// produces it because the series id is offset by 1 at interning time
/// (serving/frontend.cpp).
using CacheKey = std::uint64_t;

/// (series, predictor, size-class) -> key.  The series id names one
/// interned (server host, client, op) history series; 16 bits each for
/// predictor and class leave room for the full extended battery.
constexpr CacheKey pack_key(std::uint32_t series_id, std::uint16_t predictor_id,
                            std::uint16_t size_class) {
  return (static_cast<CacheKey>(series_id) << 32) |
         (static_cast<CacheKey>(predictor_id) << 16) |
         static_cast<CacheKey>(size_class);
}

struct CacheConfig {
  /// Total slots, rounded up to a power of two and split across shards.
  /// Sized for the working set (series x predictors x classes), which
  /// is small compared to query volume; a full probe window degrades to
  /// an uncached (still correct) answer, never to eviction.
  std::size_t capacity = 1 << 16;
  /// Shard count (power of two).  Shards only localize writer traffic;
  /// readers never contend either way.
  std::size_t shard_count = 16;
  /// Linear-probe window before a store gives up (reported as bypass).
  std::size_t probe_limit = 16;
};

class PredictionCache {
 public:
  enum class Outcome {
    kHit,    ///< entry valid at the given watermark
    kStale,  ///< entry present but computed at an older epoch
    kMiss,   ///< no entry (absent, or a fill is mid-publish)
  };

  struct Lookup {
    Outcome outcome = Outcome::kMiss;
    /// kHit: the cached answer (nullopt answers are cached too).
    /// kStale: the last computed answer — the load shedder's kLastValue
    /// fast path serves exactly this.
    std::optional<double> value;
    /// Epoch the entry was computed at (kHit/kStale only).
    std::uint64_t computed_at = 0;
  };

  explicit PredictionCache(CacheConfig config = {});

  PredictionCache(const PredictionCache&) = delete;
  PredictionCache& operator=(const PredictionCache&) = delete;

  /// Lock-free read.  `watermark` is the series' current epoch (one
  /// acquire load of the HistoryStore cell, done by the caller so one
  /// load covers every per-predictor key of the series).
  Lookup lookup(CacheKey key, std::uint64_t watermark) const;

  /// Publishes `value` computed at epoch `watermark`.  Returns false
  /// when the payload was NOT written: the probe window held no slot
  /// for the key (bypass), a concurrent writer owned the slot (skip —
  /// its publish supersedes), or the slot already holds a fresher
  /// epoch (the monotonic guard suppressed this older fill).
  bool store(CacheKey key, std::uint64_t watermark,
             std::optional<double> value);

  std::size_t capacity() const { return slots_total_; }
  /// Occupied slots (full scan; for `wadp serve` stats, not hot paths).
  std::size_t entries() const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> key{0};      ///< 0 = empty, immutable once set
    std::atomic<std::uint64_t> version{0};  ///< seqlock: odd = mid-publish
    /// (epoch + 1) << 1 | has_value; 0 = claimed but never filled.
    std::atomic<std::uint64_t> state{0};
    std::atomic<double> value{0.0};
  };

  const Slot* probe_origin(CacheKey key) const;

  std::size_t slots_total_ = 0;
  std::size_t shard_mask_ = 0;       ///< shard index = hash >> 32 & mask
  std::size_t slots_per_shard_ = 0;  ///< power of two
  std::size_t probe_limit_ = 0;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace wadp::serving
