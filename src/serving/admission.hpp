// Admission control for the serving frontend: degrade, then refuse.
//
// Overload policy is two token buckets and a queue-depth guard, checked
// per batch before any prediction work:
//
//   1. *admit* bucket (rate = sustainable full-work qps): queries that
//      fit get the full path — cache, coalesced fill, broker ranking.
//   2. queries the admit bucket refuses are *shed* to the kLastValue
//      fast path: answer from the last cached entry regardless of
//      staleness, a lock-free O(1) read with no fill.  The shed bucket
//      (admit rate × shed_rate_multiple) bounds even that.
//   3. only past both buckets — or when the in-flight queue depth
//      exceeds max_queue_depth — are queries *rejected* outright.
//
// So load degrades in the order the paper's broker would want: fresh
// answers → slightly stale answers → refusal, and the refusal tier is
// ~an order of magnitude above the shed tier.
//
// Time is virtual: callers pass `now_seconds` (SimClock in tests and
// the bench, wall time in `wadp serve`), which makes every shed/reject
// decision deterministic under a seeded load trace — the shed-path
// determinism test replays a burst twice and asserts identical splits.
//
// Thread safety: decide() and queue-depth updates are mutex-guarded;
// admission runs once per *batch*, so the lock is far off the per-query
// path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>

namespace wadp::serving {

struct AdmissionConfig {
  /// Sustained full-work admission rate, queries/sec.  <= 0 disables
  /// admission control entirely (everything admitted).
  double admit_rate = 0.0;
  /// Burst capacity of the admit bucket, in queries.
  double admit_burst = 1024.0;
  /// Shed tier rate = admit_rate * shed_rate_multiple.  The wide gap is
  /// what makes 16x overload shed (cheap stale answers) instead of
  /// reject: the fast path costs ~1/30 of a fill, so the box can absorb
  /// roughly that multiple before refusing.
  double shed_rate_multiple = 32.0;
  /// Queries already in flight above which new work is rejected even if
  /// tokens remain (guards latency, not just throughput).
  std::size_t max_queue_depth = 1 << 16;
};

class AdmissionController {
 public:
  /// How a batch of `requested` queries splits across the tiers.
  struct Decision {
    std::size_t admitted = 0;  ///< full path
    std::size_t shed = 0;      ///< kLastValue fast path
    std::size_t rejected = 0;  ///< refused
  };

  explicit AdmissionController(AdmissionConfig config);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Splits a batch at virtual time `now_seconds`.  `now` may repeat
  /// but must never decrease.
  Decision decide(std::size_t requested, double now_seconds);

  /// In-flight accounting for the queue-depth guard (RAII'd by the
  /// frontend around each batch).
  void enter(std::size_t queries);
  void leave(std::size_t queries);
  std::size_t queue_depth() const;

  const AdmissionConfig& config() const { return config_; }

 private:
  const AdmissionConfig config_;
  mutable std::mutex mu_;
  double admit_tokens_ = 0.0;
  double shed_tokens_ = 0.0;
  double last_refill_ = 0.0;
  bool primed_ = false;  ///< first decide() anchors the refill clock
  std::size_t queue_depth_ = 0;
};

}  // namespace wadp::serving
