// ServingFrontend: the fleet-scale face of replica selection.
//
// ReplicaBroker::select answers one query with a GIIS search per
// candidate — correct, and hopeless at "millions of users".  The
// frontend turns the same decision into a cached, batched, admission-
// controlled read path:
//
//   query (lfn, client, size) ──► admission ──► per-candidate cache
//   probe (epoch-validated) ──► rank ──► Answer
//
// with misses filled through single-flight coalescing and the broker's
// predict_candidate, and overload degraded shed-first (stale cached
// answers) before anything is rejected.  See docs/SERVING.md for the
// full keying/validation contract and the coalescing and shedding
// state machines.
//
// Semantics: answers reproduce the broker's kPredictedBest ranking —
// highest predicted bandwidth among informed candidates, first replica
// when uninformed (tests/serving/frontend_test asserts agreement with
// ReplicaBroker::select).  The fast path intentionally skips the full
// path's per-selection side effects (cooldown bookkeeping, quality
// ServedPrediction records, drift demotion): those belong to the
// transfer feedback loop, which still runs through the broker.
//
// Deployment assumptions, enforced by construction order in `wadp
// serve`/the bench: the catalog is frozen while the frontend serves
// (Answer holds replica pointers into it; plans cache them), and the
// HistoryStore is shared via shared_ptr (watermark cells must outlive
// cached plans).  select_many is safe to call from many threads; fills
// are serialized internally (the GIIS is not thread-safe) which is
// invisible in steady state where fills are rare.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "history/store.hpp"
#include "obs/metrics.hpp"
#include "predict/classifier.hpp"
#include "replica/broker.hpp"
#include "replica/catalog.hpp"
#include "serving/admission.hpp"
#include "serving/cache.hpp"
#include "serving/coalesce.hpp"
#include "util/types.hpp"

namespace wadp::serving {

struct ServingConfig {
  CacheConfig cache;
  AdmissionConfig admission;
  /// Bound on the single-flight table (distinct keys mid-fill).
  std::size_t max_in_flight = 256;
  /// Size classes shared with the broker/provider publications.
  predict::SizeClassifier classifier = predict::SizeClassifier::paper_classes();
};

/// One replica-selection request.  Strings are views into caller-owned
/// storage (the batch driver reuses its buffers across batches).
struct Query {
  std::string_view logical_name;
  std::string_view client_ip;
  Bytes size = 0;
};

/// How a query left the frontend — the serving-plane state the bench
/// and the shed tests assert on.
enum class AnswerPath {
  kCached,    ///< admitted, every ranked candidate came from a valid hit
  kFilled,    ///< admitted, at least one candidate needed a fill
  kShed,      ///< degraded: ranked over cached entries, staleness allowed
  kRejected,  ///< refused by admission control
};

struct Answer {
  /// Chosen replica (pointer into the catalog; null when rejected or
  /// the logical name has no replicas).
  const replica::PhysicalReplica* replica = nullptr;
  std::optional<double> predicted_bandwidth;  ///< bytes/s
  bool informed = false;
  AnswerPath path = AnswerPath::kRejected;
};

class ServingFrontend {
 public:
  ServingFrontend(replica::ReplicaBroker& broker,
                  const replica::ReplicaCatalog& catalog,
                  std::shared_ptr<history::HistoryStore> history,
                  ServingConfig config = {});

  ServingFrontend(const ServingFrontend&) = delete;
  ServingFrontend& operator=(const ServingFrontend&) = delete;

  /// Answers a batch.  Admission splits the batch *in order*: the
  /// leading `admitted` queries get the full path, the next `shed` the
  /// stale-tolerant fast path, the rest kRejected — deterministic for a
  /// given (config, call sequence, now sequence), which the shed tests
  /// replay.  `now` is virtual time (SimClock in tests/bench).
  std::vector<Answer> select_many(std::span<const Query> queries, SimTime now);

  /// Single-query convenience (same path as a batch of one).
  Answer select_one(const Query& query, SimTime now);

  const PredictionCache& cache() const { return cache_; }
  const AdmissionController& admission() const { return admission_; }
  std::size_t in_flight_fills() const { return flight_.in_flight(); }
  const ServingConfig& config() const { return config_; }

 private:
  /// One candidate of a memoized plan: everything the hot path needs,
  /// pre-resolved — no strings, no store locks.
  struct Candidate {
    const replica::PhysicalReplica* replica = nullptr;
    std::uint32_t series_id = 0;  ///< interned, 1-based (0 never issued)
    /// The series' HistoryStore watermark cell; the shared_ptr in
    /// series_cells_ keeps it alive.
    const std::atomic<std::uint64_t>* watermark = nullptr;
  };
  struct Plan {
    std::vector<Candidate> candidates;
  };

  /// intern_series resolves the watermark cell pointer while holding
  /// intern_mu_ — series_cells_ may reallocate under a concurrent
  /// insert, so callers must never index it themselves.
  struct InternedSeries {
    std::uint32_t id = 0;
    const std::atomic<std::uint64_t>* watermark = nullptr;
  };

  const Plan& plan_for(const Query& query);
  InternedSeries intern_series(const std::string& host,
                               const std::string& client);
  Answer answer_admitted(const Query& query, SimTime now);
  Answer answer_shed(const Query& query, SimTime now);

  replica::ReplicaBroker& broker_;
  const replica::ReplicaCatalog& catalog_;
  std::shared_ptr<history::HistoryStore> history_;
  ServingConfig config_;

  PredictionCache cache_;
  SingleFlight flight_;
  AdmissionController admission_;

  /// Serializes miss fills: the GIIS/broker compute path is not
  /// thread-safe.  Never taken on a cache hit.
  std::mutex fill_mu_;

  /// (host \n client) -> series id, plus the watermark cell per id.
  /// Reads take the shared lock; inserts (first sighting of a pair)
  /// the exclusive one.
  mutable std::shared_mutex intern_mu_;
  std::unordered_map<std::string, std::uint32_t> series_ids_;
  std::vector<std::shared_ptr<const std::atomic<std::uint64_t>>> series_cells_;

  /// (lfn \n client) -> Plan.  Same locking discipline.
  mutable std::shared_mutex plan_mu_;
  std::unordered_map<std::string, Plan> plans_;

  struct Metrics {
    obs::Counter* queries = nullptr;
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* fills = nullptr;
    obs::Counter* coalesced = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* shed_uninformed = nullptr;
    obs::Gauge* inflight = nullptr;
    obs::Histogram* batch_latency = nullptr;
  };
  Metrics metrics_;
};

}  // namespace wadp::serving
