#include "serving/admission.hpp"

#include <algorithm>

namespace wadp::serving {

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config),
      // Start full so a cold frontend doesn't shed its first burst.
      admit_tokens_(config.admit_burst),
      shed_tokens_(config.admit_burst * config.shed_rate_multiple) {}

AdmissionController::Decision AdmissionController::decide(
    std::size_t requested, double now_seconds) {
  Decision decision;
  if (requested == 0) return decision;
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.admit_rate <= 0.0) {
    decision.admitted = requested;
    return decision;
  }
  if (!primed_) {
    last_refill_ = now_seconds;
    primed_ = true;
  }
  const double elapsed = std::max(0.0, now_seconds - last_refill_);
  last_refill_ = now_seconds;
  const double shed_rate = config_.admit_rate * config_.shed_rate_multiple;
  admit_tokens_ = std::min(config_.admit_burst,
                           admit_tokens_ + elapsed * config_.admit_rate);
  shed_tokens_ = std::min(config_.admit_burst * config_.shed_rate_multiple,
                          shed_tokens_ + elapsed * shed_rate);

  // Queue-depth guard first: a deep queue means admitted work is backed
  // up, so even token-funded queries are refused until it drains.
  if (queue_depth_ > config_.max_queue_depth) {
    decision.rejected = requested;
    return decision;
  }

  const auto admit = std::min(requested,
                              static_cast<std::size_t>(admit_tokens_));
  admit_tokens_ -= static_cast<double>(admit);
  decision.admitted = admit;

  const std::size_t excess = requested - admit;
  const auto shed = std::min(excess, static_cast<std::size_t>(shed_tokens_));
  shed_tokens_ -= static_cast<double>(shed);
  decision.shed = shed;
  decision.rejected = excess - shed;
  return decision;
}

void AdmissionController::enter(std::size_t queries) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_depth_ += queries;
}

void AdmissionController::leave(std::size_t queries) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_depth_ -= std::min(queries, queue_depth_);
}

std::size_t AdmissionController::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_depth_;
}

}  // namespace wadp::serving
