#include "serving/coalesce.hpp"

namespace wadp::serving {

SingleFlight::Ticket SingleFlight::join(CacheKey key) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = flights_.find(key);
  if (it == flights_.end()) {
    if (flights_.size() >= max_in_flight_) {
      return {Role::kOverflow, std::nullopt};
    }
    flights_.emplace(key, std::make_shared<Flight>());
    return {Role::kLeader, std::nullopt};
  }
  // Follower: hold the flight alive independently of the map — done()
  // erases the node immediately, so a caller arriving after completion
  // starts a *fresh* flight instead of inheriting a possibly
  // older-generation answer.
  std::shared_ptr<Flight> flight = it->second;
  cv_.wait(lock, [&flight] { return flight->completed; });
  return {Role::kFollower, flight->value};
}

void SingleFlight::done(CacheKey key, std::optional<double> value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = flights_.find(key);
  if (it == flights_.end()) return;  // defensive: double-done
  it->second->value = value;
  it->second->completed = true;
  flights_.erase(it);
  // notify_all, not _one: every follower of this flight must wake, and
  // flights for all keys share one condvar (keeps the table small;
  // wakeups are rare next to the hit path).
  cv_.notify_all();
}

std::size_t SingleFlight::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flights_.size();
}

}  // namespace wadp::serving
