// InformationFabric: the paper's Fig. 5 deployment, pre-wired.
//
// Every replica site runs a GridFTP information provider registered
// with its local GRIS, and every GRIS registers (soft state) with a
// GIIS.  Assembling that by hand is ~40 lines per program; this helper
// owns the whole arrangement for a Testbed so examples, benches, and
// applications can go straight to inquiries and broker decisions.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mds/giis.hpp"
#include "mds/gridftp_provider.hpp"
#include "nws/mds_provider.hpp"
#include "nws/memory.hpp"
#include "nws/sensor.hpp"
#include "workload/testbed.hpp"

namespace wadp::core {

struct FabricConfig {
  Duration provider_cache_ttl = 300.0;    ///< GRIS cache of provider output
  Duration registration_ttl = 3600.0;     ///< GRIS -> GIIS soft-state TTL
  std::string organization = "o=grid";    ///< directory root
  predict::SizeClassifier classifier = predict::SizeClassifier::paper_classes();
  /// Also run an NWS sensor on every directed inter-site path and
  /// publish probe statistics/forecasts (nwsNetwork entries) from each
  /// source site's GRIS — the combined GridFTP+NWS information plane
  /// Section 7 proposes.
  bool deploy_nws = false;
  nws::ProbeConfig probe_config;
};

class InformationFabric {
 public:
  /// Builds a provider + GRIS per testbed site and registers all of
  /// them with the fabric's GIIS at the testbed's current time.  The
  /// testbed must outlive the fabric.
  explicit InformationFabric(workload::Testbed& testbed,
                             FabricConfig config = {});

  /// The top-level index to point brokers and inquiries at.
  mds::Giis& giis() { return *giis_; }

  /// Site-level components, for tests and finer-grained wiring.
  mds::Gris& gris(const std::string& site);
  mds::GridFtpInfoProvider& provider(const std::string& site);

  /// Renews every GRIS registration (call periodically, or before
  /// inquiries that happen long after construction — registrations are
  /// soft state and lapse otherwise).  Also drains NWS sensors into the
  /// site memories when deploy_nws is on.
  void renew(SimTime now);

  /// Directory suffix used for a site's subtree.
  mds::Dn site_suffix(const std::string& site) const;

  /// Probe memory of a site (deploy_nws only); experiments are named
  /// "bandwidth.<src>.<dst>".
  nws::NwsMemory& probe_memory(const std::string& site);

  /// Pulls everything the sensors measured so far into the memories
  /// (renew() does this too).
  void absorb_probes();

 private:
  workload::Testbed& testbed_;
  FabricConfig config_;
  std::unique_ptr<mds::Giis> giis_;
  std::map<std::string, std::unique_ptr<mds::GridFtpInfoProvider>> providers_;
  std::map<std::string, std::unique_ptr<mds::Gris>> gris_;
  // NWS plane (deploy_nws): per-site memory + provider, one sensor per
  // directed path, each feeding experiment "bandwidth.<src>.<dst>" of
  // the source site's memory.
  std::map<std::string, std::unique_ptr<nws::NwsMemory>> memories_;
  std::map<std::string, std::unique_ptr<nws::NwsInfoProvider>> nws_providers_;
  struct SensorFeed {
    std::string site;
    std::string experiment;
    std::unique_ptr<nws::NwsSensor> sensor;
  };
  std::vector<SensorFeed> sensors_;
};

}  // namespace wadp::core
