#include "core/quality_demo.hpp"

#include <string>

#include "core/prediction_service.hpp"
#include "gridftp/client.hpp"
#include "gridftp/server.hpp"
#include "mds/giis.hpp"
#include "mds/gridftp_provider.hpp"
#include "mds/gris.hpp"
#include "net/fabric.hpp"
#include "net/path.hpp"
#include "obs/context.hpp"
#include "replica/broker.hpp"
#include "replica/catalog.hpp"
#include "replica/fetcher.hpp"
#include "sim/simulator.hpp"
#include "storage/storage.hpp"

namespace wadp::core {

QualityDemoResult run_quality_demo(const QualityDemoConfig& config) {
  QualityDemoResult result;

  sim::Simulator sim(0.0);
  net::FluidEngine engine(sim);
  net::Topology topology;
  net::PathParams fast, slow;
  fast.bottleneck = 10'000'000.0;
  slow.bottleneck = 5'000'000.0;
  for (net::PathParams* p : {&fast, &slow}) {
    p->rtt = 0.05;
    p->load.base = 0.0;
    p->load.diurnal_amplitude = 0.0;
    p->load.ar_sigma = 0.0;
    p->load.episode_rate_per_hour = 0.0;
  }
  topology.add_path("lbl", "anl", fast, 1, 0.0);
  topology.add_path("anl", "lbl", fast, 2, 0.0);
  topology.add_path("isi", "anl", slow, 3, 0.0);
  topology.add_path("anl", "isi", slow, 4, 0.0);

  storage::StorageParams quiet_storage;
  quiet_storage.local_load.reset();
  storage::StorageSystem anl_store("anl", quiet_storage, 1, 0.0);
  storage::StorageSystem lbl_store("lbl", quiet_storage, 2, 0.0);
  storage::StorageSystem isi_store("isi", quiet_storage, 3, 0.0);
  gridftp::GridFtpServer lbl({.site = "lbl",
                              .host = "dpsslx04.lbl.gov",
                              .ip = "131.243.2.91",
                              .sample_disk = true},
                             lbl_store);
  gridftp::GridFtpServer isi({.site = "isi",
                              .host = "jet.isi.edu",
                              .ip = "128.9.160.100",
                              .sample_disk = true},
                             isi_store);
  const std::string client_ip = "140.221.65.69";
  constexpr Bytes kFileSize = 10 * kMB;
  for (gridftp::GridFtpServer* s : {&lbl, &isi}) {
    s->fs().add_volume("/data");
    s->fs().add_file("/data/demo", kFileSize);
  }
  // Warmup history so the providers (and the battery) can answer from
  // the first fetch: LBL looks 4x faster, so predicted-best goes there.
  for (int i = 0; i < 5; ++i) {
    const double t = 100.0 * i;
    lbl.record_transfer(client_ip, "/data/demo", kFileSize, t, t + 1.25,
                        gridftp::Operation::kRead, 8, 1'000'000);
    isi.record_transfer(client_ip, "/data/demo", kFileSize, t, t + 5.0,
                        gridftp::Operation::kRead, 8, 1'000'000);
  }

  // History plane: backfill the warmup, then mirror every future server
  // append.  The tracker attaches *after* the backfill, so only traced,
  // in-run transfers reach the quality join (warmup would count as
  // misses — it predates any served prediction).
  result.store = std::make_shared<history::HistoryStore>();
  result.store->attach(lbl.log());
  result.store->attach(isi.log());
  result.tracker = std::make_shared<obs::QualityTracker>();
  result.store->add_record_observer(
      [tracker = result.tracker](const gridftp::TransferRecord& record) {
        tracker->observe_transfer(record);
      });

  // Full battery answers per fetch, filed under the fetch's trace so
  // every predictor — the paper's 30, the extended variants, and the
  // disk/probe regression battery — is scored against the transfer
  // that follows.  Short training prefix: the warmup is only 5 deep.
  ServiceConfig service_config;
  service_config.training_count = 5;
  service_config.use_regression_battery = true;
  PredictionService service(result.store, service_config);
  service.bind_quality(result.tracker.get());

  mds::GridFtpInfoProvider lbl_provider(
      lbl,
      {.base = *mds::Dn::parse("hostname=dpsslx04.lbl.gov, dc=lbl, o=grid")});
  mds::GridFtpInfoProvider isi_provider(
      isi, {.base = *mds::Dn::parse("hostname=jet.isi.edu, dc=isi, o=grid")});
  mds::Gris lbl_gris("lbl-gris", *mds::Dn::parse("dc=lbl, o=grid"));
  mds::Gris isi_gris("isi-gris", *mds::Dn::parse("dc=isi, o=grid"));
  lbl_gris.register_provider(&lbl_provider, 300.0);
  isi_gris.register_provider(&isi_provider, 300.0);
  mds::Giis giis("top");
  giis.register_gris(lbl_gris, 0.0, 1e9);
  giis.register_gris(isi_gris, 0.0, 1e9);
  replica::ReplicaCatalog catalog;
  catalog.add_replica("lfn://demo", {.site = "lbl",
                                     .server_host = "dpsslx04.lbl.gov",
                                     .path = "/data/demo"});
  catalog.add_replica("lfn://demo", {.site = "isi",
                                     .server_host = "jet.isi.edu",
                                     .path = "/data/demo"});

  gridftp::GridFtpClient client(sim, engine, topology, "anl", client_ip,
                                &anl_store);
  replica::ReplicaBroker broker(catalog, giis,
                                replica::SelectionPolicy::kPredictedBest,
                                config.seed);
  broker.bind_quality(result.tracker.get());
  replica::FailoverFetcher fetcher(
      sim, broker, client, [&](const replica::PhysicalReplica& replica) {
        return replica.site == "lbl" ? &lbl : &isi;
      });

  // The mid-run event: the fast link collapses between two fetches.
  net::PathModel* fast_path = topology.find("lbl", "anl");
  result.shift_time = 600.0 + config.shift_after * 400.0 - 200.0;
  sim.schedule_at(result.shift_time, [&, fast_path] {
    fast_path->set_bottleneck(config.degraded_bottleneck);
  });

  int completed_after_shift = 0;
  for (int i = 0; i < config.transfers; ++i) {
    const SimTime issue = 600.0 + i * 400.0;
    sim.schedule_at(issue, [&, issue] {
      const std::uint64_t trace = obs::TraceContext::mint();
      result.trace_ids.push_back(trace);
      const obs::ScopedTraceContext scope(trace, 0);
      // Battery answers first (the broker's own AVG15/fs rides along
      // inside select()); all land in the tracker under this trace.
      for (const auto& key : service.series_keys()) {
        service.predict_all(key, kFileSize, issue);
      }
      fetcher.fetch("lfn://demo", kFileSize, {},
                    [&, issue](const replica::FetchOutcome& outcome) {
                      if (outcome.ok) {
                        ++result.ok;
                      } else {
                        ++result.failed;
                      }
                      if (outcome.selection &&
                          outcome.selection->drift_demoted) {
                        ++result.drift_demotions;
                      }
                      if (issue >= result.shift_time) {
                        ++completed_after_shift;
                        if (result.completions_to_drift < 0 &&
                            result.tracker->report().drift_events > 0) {
                          result.completions_to_drift = completed_after_shift;
                        }
                      }
                    });
    });
  }
  sim.run();
  return result;
}

}  // namespace wadp::core
