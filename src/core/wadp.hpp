// Umbrella header: the public face of the wadp library.
//
// Include this to get the whole predictive framework — instrumented
// GridFTP simulation, the predictor battery and evaluation harness, the
// MDS-style delivery infrastructure, replica selection, and the paper's
// testbed/campaign reproductions.  Fine-grained headers remain available
// for targeted use.
#pragma once

#include "core/information_fabric.hpp"   // IWYU pragma: export
#include "core/prediction_service.hpp"   // IWYU pragma: export
#include "gridftp/client.hpp"            // IWYU pragma: export
#include "gridftp/log.hpp"               // IWYU pragma: export
#include "gridftp/protocol.hpp"          // IWYU pragma: export
#include "gridftp/record.hpp"            // IWYU pragma: export
#include "gridftp/server.hpp"            // IWYU pragma: export
#include "history/adapter.hpp"           // IWYU pragma: export
#include "history/store.hpp"             // IWYU pragma: export
#include "mds/giis.hpp"                  // IWYU pragma: export
#include "mds/gridftp_provider.hpp"      // IWYU pragma: export
#include "mds/gris.hpp"                  // IWYU pragma: export
#include "net/fabric.hpp"                // IWYU pragma: export
#include "net/path.hpp"                  // IWYU pragma: export
#include "nws/forecaster.hpp"            // IWYU pragma: export
#include "nws/sensor.hpp"                // IWYU pragma: export
#include "predict/crosssite.hpp"         // IWYU pragma: export
#include "predict/evaluator.hpp"         // IWYU pragma: export
#include "predict/extended.hpp"          // IWYU pragma: export
#include "predict/online.hpp"            // IWYU pragma: export
#include "predict/suite.hpp"             // IWYU pragma: export
#include "replica/broker.hpp"            // IWYU pragma: export
#include "replica/catalog.hpp"           // IWYU pragma: export
#include "replica/fetcher.hpp"           // IWYU pragma: export
#include "resilience/failover.hpp"       // IWYU pragma: export
#include "resilience/fault.hpp"          // IWYU pragma: export
#include "resilience/retry.hpp"          // IWYU pragma: export
#include "sim/simulator.hpp"             // IWYU pragma: export
#include "workload/campaign.hpp"         // IWYU pragma: export
#include "workload/prober.hpp"           // IWYU pragma: export
#include "workload/testbed.hpp"          // IWYU pragma: export
#include "workload/trace.hpp"            // IWYU pragma: export
