#include "core/information_fabric.hpp"

#include "util/error.hpp"

namespace wadp::core {

InformationFabric::InformationFabric(workload::Testbed& testbed,
                                     FabricConfig config)
    : testbed_(testbed), config_(std::move(config)) {
  giis_ = std::make_unique<mds::Giis>("giis", config_.registration_ttl);
  for (const auto& site : testbed_.sites()) {
    const auto& server = testbed_.server(site);
    mds::GridFtpProviderConfig provider_config;
    provider_config.base = site_suffix(site).child(
        mds::Rdn{"hostname", server.config().host});
    provider_config.classifier = config_.classifier;
    // Providers publish from the testbed's shared history plane:
    // snapshot-isolated reads instead of re-filtering the raw log on
    // every GRIS refresh.
    provider_config.history = &testbed_.history();
    providers_.emplace(site, std::make_unique<mds::GridFtpInfoProvider>(
                                 server, provider_config));
    gris_.emplace(site, std::make_unique<mds::Gris>(site + "-gris",
                                                    site_suffix(site)));
    gris_.at(site)->register_provider(providers_.at(site).get(),
                                      config_.provider_cache_ttl);
    giis_->register_gris(*gris_.at(site), testbed_.sim().now(),
                         config_.registration_ttl);
  }

  if (config_.deploy_nws) {
    // Per-site probe memory + provider...
    for (const auto& site : testbed_.sites()) {
      memories_.emplace(site, std::make_unique<nws::NwsMemory>());
      // Probe series live in the same store as transfer series, keyed
      // by the NWS host label (Section 7's combined information plane).
      memories_.at(site)->bind_history(
          &testbed_.history(),
          "nws." + testbed_.server(site).config().host);
      nws::NwsProviderConfig provider_config;
      provider_config.base = site_suffix(site).child(
          mds::Rdn{"hostname", "nws." + testbed_.server(site).config().host});
      nws_providers_.emplace(site, std::make_unique<nws::NwsInfoProvider>(
                                       *memories_.at(site), provider_config));
      gris_.at(site)->register_provider(nws_providers_.at(site).get(),
                                        config_.provider_cache_ttl);
    }
    // ...and one sensor per directed path, feeding the source's memory.
    for (const auto* path : testbed_.topology().paths()) {
      SensorFeed feed;
      feed.site = path->source_site();
      feed.experiment =
          "bandwidth." + path->source_site() + "." + path->sink_site();
      feed.sensor = std::make_unique<nws::NwsSensor>(
          testbed_.sim(), testbed_.engine(),
          *testbed_.topology().find(path->source_site(), path->sink_site()),
          config_.probe_config);
      sensors_.push_back(std::move(feed));
    }
  }
}

nws::NwsMemory& InformationFabric::probe_memory(const std::string& site) {
  const auto it = memories_.find(site);
  WADP_CHECK_MSG(it != memories_.end(),
                 "no probe memory (deploy_nws off or unknown site)");
  return *it->second;
}

void InformationFabric::absorb_probes() {
  for (auto& feed : sensors_) {
    memories_.at(feed.site)->absorb(feed.experiment, *feed.sensor);
  }
}

mds::Dn InformationFabric::site_suffix(const std::string& site) const {
  const auto dn = mds::Dn::parse("dc=" + site + ", " + config_.organization);
  WADP_CHECK_MSG(dn.has_value(), "bad organization suffix");
  return *dn;
}

mds::Gris& InformationFabric::gris(const std::string& site) {
  const auto it = gris_.find(site);
  WADP_CHECK_MSG(it != gris_.end(), "unknown site");
  return *it->second;
}

mds::GridFtpInfoProvider& InformationFabric::provider(
    const std::string& site) {
  const auto it = providers_.find(site);
  WADP_CHECK_MSG(it != providers_.end(), "unknown site");
  return *it->second;
}

void InformationFabric::renew(SimTime now) {
  absorb_probes();
  for (auto& [site, gris] : gris_) {
    giis_->register_gris(*gris, now, config_.registration_ttl);
  }
}

}  // namespace wadp::core
