// PredictionService: the predictive framework's front door.
//
// Ties the paper's three elements together behind one object: feed it
// instrumented transfer records (element 1), and it maintains per-
// (host, remote, direction) measurement series, answers prediction
// queries with any predictor from the Section 4 battery (element 2),
// and exposes everything the information provider / broker need to
// publish (element 3 lives in mds/ and replica/, both of which can be
// driven from the same service).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "gridftp/log.hpp"
#include "gridftp/record.hpp"
#include "obs/metrics.hpp"
#include "predict/evaluator.hpp"
#include "predict/incremental.hpp"
#include "predict/suite.hpp"

namespace wadp::core {

struct ServiceConfig {
  predict::SizeClassifier classifier = predict::SizeClassifier::paper_classes();
  std::size_t training_count = 15;  ///< Section 6.1 training prefix
  /// Predictor answering predict() when none is named.  AVG15 with
  /// file-size classification is one of the paper's stronger simple
  /// choices (Figs. 12-13).
  std::string default_predictor = "AVG15/fs";
  /// Use the extended battery (paper's 30 plus EWMA / SREG / ADAPT
  /// variants from predict/extended.hpp) instead of the paper's 30.
  bool use_extended_battery = false;
};

/// Identifies one measurement series: transfers served by `host` to/from
/// `remote_ip` in direction `op`.
struct SeriesKey {
  std::string host;
  std::string remote_ip;
  gridftp::Operation op = gridftp::Operation::kRead;

  std::string to_string() const;
  auto operator<=>(const SeriesKey&) const = default;
};

class PredictionService {
 public:
  explicit PredictionService(ServiceConfig config = {});

  /// Feeds one instrumented record.  Records may arrive from multiple
  /// logs; each series is kept time-ordered internally.
  void ingest(const gridftp::TransferRecord& record);

  /// Feeds every record of a server log.
  void ingest_log(const gridftp::TransferLog& log);

  /// Predicted bandwidth (bytes/s) for a `size`-byte transfer on the
  /// series at time `now`, using `predictor_name` (default predictor
  /// when empty).  nullopt when the series is shorter than the training
  /// count, the predictor is unknown, or it cannot produce a value.
  std::optional<Bandwidth> predict(const SeriesKey& key, Bytes size,
                                   SimTime now,
                                   std::string_view predictor_name = "") const;

  /// Every battery member's answer, in suite order (for comparison UIs
  /// and the information provider's extended attributes).
  std::vector<std::pair<std::string, std::optional<Bandwidth>>> predict_all(
      const SeriesKey& key, Bytes size, SimTime now) const;

  /// Runs the paper's evaluation (percentage error, relative
  /// performance) over a stored series with the full battery.  nullopt
  /// when the series is too short to evaluate anything.
  std::optional<predict::EvaluationResult> evaluate(const SeriesKey& key) const;

  const std::vector<predict::Observation>* series(const SeriesKey& key) const;
  std::vector<SeriesKey> series_keys() const;
  std::size_t total_observations() const;

  const predict::PredictorSuite& suite() const { return suite_; }
  const ServiceConfig& config() const { return config_; }

 private:
  /// One measurement series plus its lazily-maintained streaming
  /// battery (suite order).  Queries answer from the streams in
  /// O(1)/O(log W) per predictor; the members below are mutable so a
  /// const predict() can catch the battery up to the observations.
  struct SeriesState {
    std::vector<predict::Observation> observations;
    /// Null slot = predictor has no streaming form (stateless fallback).
    mutable std::vector<std::unique_ptr<predict::StreamingPredictor>> streams;
    mutable std::size_t fed = 0;  ///< observations already absorbed
    mutable bool dirty = false;   ///< out-of-order insert → replay needed
  };

  /// Builds/replays/extends `state`'s streaming battery so every stream
  /// has absorbed every stored observation.  Amortized O(1) per
  /// (observation, predictor) on the append-only path; an out-of-order
  /// ingest forces one full replay of that series.
  void catch_up(const SeriesState& state) const;

  std::optional<Bandwidth> predict_at(const SeriesKey& key,
                                      const SeriesState& state,
                                      std::size_t index,
                                      const predict::Query& query) const;

  /// Obs instruments, resolved once at construction; the ingest and
  /// query hot paths then cost relaxed atomic adds.
  struct Metrics {
    obs::Counter* ingested = nullptr;
    obs::Counter* out_of_order = nullptr;
    obs::Counter* queries = nullptr;
    obs::Counter* fallback_no_stream = nullptr;
    obs::Counter* fallback_time_travel = nullptr;
    obs::Counter* replays = nullptr;
    obs::Histogram* predict_latency = nullptr;
  };

  ServiceConfig config_;
  predict::PredictorSuite suite_;
  std::map<SeriesKey, SeriesState> series_;
  Metrics metrics_;
};

}  // namespace wadp::core
