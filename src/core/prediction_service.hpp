// PredictionService: the predictive framework's front door.
//
// Ties the paper's three elements together behind one object: feed it
// instrumented transfer records (element 1), and it answers prediction
// queries with any predictor from the Section 4 battery (element 2),
// and exposes everything the information provider / broker need to
// publish (element 3 lives in mds/ and replica/, both of which can be
// driven from the same service).
//
// The service no longer owns any history.  All observations live in a
// history::HistoryStore (owned by default, shareable with the rest of
// the deployment via the shared_ptr constructor); the service keeps
// only derived state — one lazily-maintained streaming battery per
// series, keyed off store snapshots and their generation watermarks.
// Ingest goes straight to the store and never takes the battery lock,
// so queries on other threads never block a producer.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "gridftp/log.hpp"
#include "gridftp/record.hpp"
#include "history/store.hpp"
#include "obs/metrics.hpp"
#include "obs/quality.hpp"
#include "predict/evaluator.hpp"
#include "predict/incremental.hpp"
#include "predict/suite.hpp"

namespace wadp::core {

struct ServiceConfig {
  predict::SizeClassifier classifier = predict::SizeClassifier::paper_classes();
  std::size_t training_count = 15;  ///< Section 6.1 training prefix
  /// Predictor answering predict() when none is named.  AVG15 with
  /// file-size classification is one of the paper's stronger simple
  /// choices (Figs. 12-13).
  std::string default_predictor = "AVG15/fs";
  /// Use the extended battery (paper's 30 plus EWMA / SREG / ADAPT
  /// variants from predict/extended.hpp) instead of the paper's 30.
  bool use_extended_battery = false;
  /// Use the regression battery (the extended battery plus the
  /// disk/probe regression and hybrid predictors from
  /// predict/regression.hpp).  Takes precedence over
  /// use_extended_battery (the regression suite contains it).
  bool use_regression_battery = false;
  /// Online champion/challenger arbitration: when non-empty (and a
  /// QualityTracker is bound via bind_quality), a predict() call that
  /// names no predictor is answered by whichever of
  /// {default_predictor, challenger_predictor} currently has the lower
  /// joined mean percent error for the series' site.  The challenger
  /// must exist in the battery and must not be drifting to win; with no
  /// quality data yet, the default answers.  Decisions are counted in
  /// wadp_predict_arbitrations_total{winner=...}.
  std::string challenger_predictor;
};

/// The series key now lives with the history plane; core re-exports it
/// for existing call sites.
using SeriesKey = history::SeriesKey;

class PredictionService {
 public:
  explicit PredictionService(ServiceConfig config = {});

  /// Runs against an existing store (the testbed's, a server fleet's)
  /// instead of a private one.  Records already in the store — and
  /// records other producers append later — are predictable without
  /// ever passing through ingest().
  explicit PredictionService(std::shared_ptr<history::HistoryStore> store,
                             ServiceConfig config = {});

  /// Feeds one instrumented record into the history store.  Records
  /// may arrive from multiple logs; each series is kept time-ordered
  /// by the store.
  void ingest(const gridftp::TransferRecord& record);

  /// Feeds every record of a server log.  (Don't call this for logs
  /// already attached to a shared store — they are ingested already.)
  void ingest_log(const gridftp::TransferLog& log);

  /// Predicted bandwidth (bytes/s) for a `size`-byte transfer on the
  /// series at time `now`, using `predictor_name` (default predictor
  /// when empty).  nullopt when the series is shorter than the training
  /// count, the predictor is unknown, or it cannot produce a value.
  /// Thread-safe; concurrent with ingest.
  std::optional<Bandwidth> predict(const SeriesKey& key, Bytes size,
                                   SimTime now,
                                   std::string_view predictor_name = "") const;

  /// Batch form of predict(): answers every query of one series with
  /// one store snapshot, one predictor resolution, and one battery
  /// catch-up for the whole batch, instead of repeating all three per
  /// query.  Answers are bit-identical to calling predict() per query
  /// (same snapshot → same streams → same arithmetic; asserted by
  /// tests/core/service_batch_test).  This is the serving plane's fill
  /// amortization for coalesced same-series misses.
  std::vector<std::optional<Bandwidth>> predict_many(
      const SeriesKey& key, std::span<const predict::Query> queries,
      std::string_view predictor_name = "") const;

  /// Every battery member's answer, in suite order (for comparison UIs
  /// and the information provider's extended attributes).
  std::vector<std::pair<std::string, std::optional<Bandwidth>>> predict_all(
      const SeriesKey& key, Bytes size, SimTime now) const;

  /// Runs the paper's evaluation (percentage error, relative
  /// performance) over a stored series with the full battery.  nullopt
  /// when the series is too short to evaluate anything.
  std::optional<predict::EvaluationResult> evaluate(const SeriesKey& key) const;

  /// Builds (or extends) the streaming battery for every series the
  /// store currently holds, so the first query after a restart pays
  /// no replay.  This is the durability plane's battery catch-up: run
  /// it after durability::recover() and the streaming state is
  /// bit-identical to the pre-crash process (same observations, same
  /// order, same arithmetic — tests/durability/recovery_test proves
  /// it against the offline Evaluator).  Returns series warmed.
  std::size_t warm_up();

  /// Snapshot of one series (valid()==false when unknown).
  history::SeriesSnapshot series(const SeriesKey& key) const;
  std::vector<SeriesKey> series_keys() const;
  std::size_t total_observations() const;

  history::HistoryStore& history() { return *store_; }
  const history::HistoryStore& history() const { return *store_; }
  const std::shared_ptr<history::HistoryStore>& history_ptr() const {
    return store_;
  }

  const predict::PredictorSuite& suite() const { return suite_; }
  const ServiceConfig& config() const { return config_; }

  /// Optional quality plane: every answered prediction is recorded as a
  /// ServedPrediction (under the ambient trace id) so the tracker can
  /// later join it against the completed transfer.  The tracker must
  /// outlive the service.
  void bind_quality(obs::QualityTracker* quality) { quality_ = quality; }

 private:
  /// One series' lazily-maintained streaming battery (suite order).
  /// Queries answer from the streams in O(1)/O(log W) per predictor.
  /// `generation` is the store generation the streams were built
  /// against: a mismatch (out-of-order insert or retention eviction
  /// changed the absorbed prefix) forces one full replay.
  struct BatteryState {
    std::vector<std::unique_ptr<predict::StreamingPredictor>> streams;
    std::size_t fed = 0;  ///< observations already absorbed
    std::uint64_t generation = 0;
  };

  /// Builds/replays/extends the battery for `key` so every stream has
  /// absorbed every observation of `snapshot`.  Caller holds mu_.
  BatteryState& catch_up(const SeriesKey& key,
                         const history::SeriesSnapshot& snapshot) const;

  std::optional<Bandwidth> predict_at(const SeriesKey& key,
                                      const BatteryState& state,
                                      const history::SeriesSnapshot& snapshot,
                                      std::size_t index,
                                      const predict::Query& query) const;

  /// Obs instruments, resolved once at construction; the ingest and
  /// query hot paths then cost relaxed atomic adds.
  struct Metrics {
    obs::Counter* ingested = nullptr;
    obs::Counter* queries = nullptr;
    obs::Counter* fallback_no_stream = nullptr;
    obs::Counter* fallback_time_travel = nullptr;
    obs::Counter* replays = nullptr;
    obs::Counter* arbitration_default = nullptr;
    obs::Counter* arbitration_challenger = nullptr;
    obs::Histogram* predict_latency = nullptr;
  };

  /// Resolves the predictor answering an unnamed query for `site`:
  /// the configured default, unless the challenger currently scores
  /// better (see ServiceConfig::challenger_predictor).
  std::string_view arbitrate(const std::string& site) const;

  ServiceConfig config_;
  predict::PredictorSuite suite_;
  std::shared_ptr<history::HistoryStore> store_;
  obs::QualityTracker* quality_ = nullptr;
  /// Guards battery_ only.  Ingest does not take it; predict() holds it
  /// while catching up and answering, so concurrent queries serialize
  /// on the streaming state but raw snapshot readers never wait.
  mutable std::mutex mu_;
  mutable std::map<SeriesKey, BatteryState> battery_;
  Metrics metrics_;
};

}  // namespace wadp::core
