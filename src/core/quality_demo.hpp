// Closed-loop quality-plane demo: a two-replica delivery stack whose
// fast link degrades mid-run.
//
// The scenario behind `wadp quality`, bench_quality, and the e2e test:
// a client at ANL fetches one logical file replicated at LBL (fast
// path) and ISI (slow path).  Every fetch runs under a minted trace:
// the broker's selection, the full predictor battery's answers, the
// transfer attempts, and the history ingest all share one trace id, so
// the QualityTracker joins each completed transfer against the
// predictions served for it causally.  Midway the LBL->ANL bottleneck
// collapses; predictions (built from pre-shift history) keep promising
// the old bandwidth, the per-(site, predictor) error stream shifts,
// Page-Hinkley alarms, and the broker — consulting the tracker —
// demotes the drifting predictor and routes to ISI.  That is the loop:
// served predictions scored online, scores steering selection.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "history/store.hpp"
#include "obs/quality.hpp"
#include "util/types.hpp"

namespace wadp::core {

struct QualityDemoConfig {
  int transfers = 40;     ///< total fetches issued
  int shift_after = 15;   ///< fetches completed before the link degrades
  std::uint64_t seed = 42;
  /// LBL->ANL bottleneck after the shift (bytes/s); the pre-shift value
  /// is 10 MB/s, so the default is an 8x collapse.
  double degraded_bottleneck = 1'250'000.0;
};

struct QualityDemoResult {
  /// Shared history plane; the tracker observes it as a record
  /// observer, so both stay alive together.
  std::shared_ptr<history::HistoryStore> store;
  std::shared_ptr<obs::QualityTracker> tracker;
  /// Trace id of every fetch, issue order; feed to `wadp trace --tree`.
  std::vector<std::uint64_t> trace_ids;
  int ok = 0;
  int failed = 0;
  /// Selections where the broker passed over a drifting top candidate.
  int drift_demotions = 0;
  SimTime shift_time = 0.0;
  /// Completed transfers after the shift before the first drift alarm;
  /// -1 when no alarm fired (the acceptance bound is <= 25).
  int completions_to_drift = -1;
};

/// Runs the scenario to completion (deterministic given the config).
/// Spans land in obs::Tracer::global(), metrics in
/// obs::Registry::global().
QualityDemoResult run_quality_demo(const QualityDemoConfig& config = {});

}  // namespace wadp::core
