#include "core/prediction_service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/events.hpp"
#include "obs/trace.hpp"
#include "predict/extended.hpp"
#include "util/error.hpp"

namespace wadp::core {
namespace {

std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Announces one stateless-fallback query as a structured ULM event, so
/// operators can see *which* predictor keeps missing its streaming
/// state and why (silent before this existed).
void emit_fallback_event(const SeriesKey& key, std::string_view predictor,
                         const char* reason) {
  util::UlmRecord record;
  record.set("PREDICTOR", std::string(predictor));
  record.set("SERIES", key.to_string());
  record.set("REASON", reason);
  obs::EventSink::global().emit("predict.fallback", "wadp.core",
                                std::move(record));
}

#ifndef NDEBUG
/// Debug-only invariant: the streaming battery answers exactly what the
/// stateless battery would (within float noise).  Catches streaming
/// states drifting out of sync with their reference predictors.
void assert_streaming_agreement(std::optional<Bandwidth> streamed,
                                std::optional<Bandwidth> stateless) {
  WADP_CHECK_MSG(streamed.has_value() == stateless.has_value(),
                 "streaming/stateless disagree on answerability");
  if (!streamed) return;
  const double tolerance =
      1e-6 * std::max({std::abs(*streamed), std::abs(*stateless), 1.0});
  WADP_CHECK_MSG(std::abs(*streamed - *stateless) <= tolerance,
                 "streaming/stateless prediction mismatch");
}
#endif

}  // namespace

std::string SeriesKey::to_string() const {
  return host + "/" + remote_ip + "/" + gridftp::to_string(op);
}

PredictionService::PredictionService(ServiceConfig config)
    : config_(std::move(config)),
      suite_(config_.use_extended_battery
                 ? predict::extended_suite(config_.classifier)
                 : predict::PredictorSuite::paper_suite(config_.classifier)) {
  WADP_CHECK_MSG(suite_.find(config_.default_predictor) != nullptr,
                 "default predictor not in the battery");
  auto& registry = obs::Registry::global();
  metrics_.ingested = &registry.counter(
      "wadp_ingest_records_total", {},
      "Transfer records ingested into the prediction service");
  metrics_.out_of_order = &registry.counter(
      "wadp_ingest_out_of_order_total", {},
      "Ingested records that arrived out of time order");
  metrics_.queries =
      &registry.counter("wadp_predict_queries_total", {},
                        "Prediction queries answered by the service");
  metrics_.fallback_no_stream = &registry.counter(
      "wadp_predict_fallback_total", {{"reason", "no_stream"}},
      "Queries answered by the stateless path instead of streaming state");
  metrics_.fallback_time_travel = &registry.counter(
      "wadp_predict_fallback_total", {{"reason", "time_travel"}},
      "Queries answered by the stateless path instead of streaming state");
  metrics_.replays = &registry.counter(
      "wadp_battery_replays_total", {},
      "Streaming-battery replays forced by out-of-order ingest");
  metrics_.predict_latency =
      &registry.histogram("wadp_predict_latency_seconds", {},
                          "Wall-clock latency of predict()");
}

void PredictionService::ingest(const gridftp::TransferRecord& record) {
  auto& state = series_[SeriesKey{
      .host = record.host, .remote_ip = record.source_ip, .op = record.op}];
  auto& series = state.observations;
  predict::Observation obs{.time = record.end_time,
                           .value = record.bandwidth(),
                           .file_size = record.file_size};
  // Logs from one server arrive ordered; merged logs may interleave, so
  // keep the series sorted by insertion at the right place.  Appends
  // leave the streaming battery valid (it catches up lazily); a
  // mid-series insert invalidates it, forcing a replay on next query.
  metrics_.ingested->inc();
  if (series.empty() || series.back().time <= obs.time) {
    series.push_back(obs);
    return;
  }
  metrics_.out_of_order->inc();
  const auto pos = std::upper_bound(
      series.begin(), series.end(), obs,
      [](const predict::Observation& a, const predict::Observation& b) {
        return a.time < b.time;
      });
  series.insert(pos, obs);
  state.dirty = true;
}

void PredictionService::ingest_log(const gridftp::TransferLog& log) {
  auto span = obs::Tracer::global().start("predict.ingest");
  span.set_attr("RECORDS",
                static_cast<std::int64_t>(log.records().size()));
  for (const auto& record : log.records()) ingest(record);
}

void PredictionService::catch_up(const SeriesState& state) const {
  if (state.dirty) {
    metrics_.replays->inc();
    state.streams.clear();
    state.fed = 0;
    state.dirty = false;
  }
  if (state.streams.empty()) {
    state.streams.reserve(suite_.size());
    for (const auto& predictor : suite_.predictors()) {
      state.streams.push_back(predict::make_streaming(*predictor));
    }
    state.fed = 0;
  }
  for (; state.fed < state.observations.size(); ++state.fed) {
    const auto& obs = state.observations[state.fed];
    for (const auto& stream : state.streams) {
      if (stream) stream->observe(obs);
    }
  }
}

std::optional<Bandwidth> PredictionService::predict_at(
    const SeriesKey& key, const SeriesState& state, std::size_t index,
    const predict::Query& query) const {
  const auto& stream = state.streams[index];
  if (stream && query.time >= stream->safe_query_time()) {
    auto answer = stream->predict(query);
#ifndef NDEBUG
    assert_streaming_agreement(
        answer, suite_.predictors()[index]->predict(state.observations, query));
#endif
    return answer;
  }
  // Stateless fallback (was silent): count it and log a ULM event so
  // the O(N) recomputations are visible in `wadp metrics`.
  const auto& predictor = *suite_.predictors()[index];
  const char* reason = stream ? "time_travel" : "no_stream";
  (stream ? metrics_.fallback_time_travel : metrics_.fallback_no_stream)
      ->inc();
  emit_fallback_event(key, predictor.name(), reason);
  return predictor.predict(state.observations, query);
}

std::optional<Bandwidth> PredictionService::predict(
    const SeriesKey& key, Bytes size, SimTime now,
    std::string_view predictor_name) const {
  const std::uint64_t started = wall_ns();
  metrics_.queries->inc();
  auto span = obs::Tracer::global().start("predict.query");
  span.set_attr("SERIES", key.to_string());

  const auto it = series_.find(key);
  if (it == series_.end() ||
      it->second.observations.size() < config_.training_count) {
    span.set_attr("RESULT", "too_short");
    return std::nullopt;
  }
  const auto index = suite_.index_of(
      predictor_name.empty() ? config_.default_predictor : predictor_name);
  if (!index) {
    span.set_attr("RESULT", "unknown_predictor");
    return std::nullopt;
  }
  span.set_attr("PREDICTOR", suite_.predictors()[*index]->name());
  {
    auto classify = span.child("predict.classify");
    classify.set_attr(
        "CLASS", static_cast<std::int64_t>(config_.classifier.classify(size)));
  }
  {
    auto update = span.child("predict.battery_update");
    update.set_attr("PENDING", static_cast<std::int64_t>(
                                   it->second.observations.size() -
                                   it->second.fed));
    catch_up(it->second);
  }
  auto answer_span = span.child("predict.answer");
  const auto answer = predict_at(
      key, it->second, *index, predict::Query{.time = now, .file_size = size});
  answer_span.end();
  metrics_.predict_latency->record(
      static_cast<double>(wall_ns() - started) * 1e-9);
  return answer;
}

std::vector<std::pair<std::string, std::optional<Bandwidth>>>
PredictionService::predict_all(const SeriesKey& key, Bytes size,
                               SimTime now) const {
  const std::uint64_t started = wall_ns();
  metrics_.queries->inc();
  auto span = obs::Tracer::global().start("predict.query");
  span.set_attr("SERIES", key.to_string());
  span.set_attr("PREDICTOR", "*");

  std::vector<std::pair<std::string, std::optional<Bandwidth>>> out;
  out.reserve(suite_.size());
  const auto it = series_.find(key);
  const bool ready = it != series_.end() &&
                     it->second.observations.size() >= config_.training_count;
  if (ready) {
    auto update = span.child("predict.battery_update");
    catch_up(it->second);
  }
  const predict::Query query{.time = now, .file_size = size};
  for (std::size_t i = 0; i < suite_.size(); ++i) {
    std::optional<Bandwidth> value;
    if (ready) value = predict_at(key, it->second, i, query);
    out.emplace_back(suite_.predictors()[i]->name(), value);
  }
  metrics_.predict_latency->record(
      static_cast<double>(wall_ns() - started) * 1e-9);
  return out;
}

std::optional<predict::EvaluationResult> PredictionService::evaluate(
    const SeriesKey& key) const {
  const auto* series = this->series(key);
  if (series == nullptr || series->size() <= config_.training_count) {
    return std::nullopt;
  }
  predict::EvalConfig eval_config;
  eval_config.training_count = config_.training_count;
  eval_config.classifier = config_.classifier;
  const predict::Evaluator evaluator(eval_config);
  return evaluator.run(*series, suite_.pointers());
}

const std::vector<predict::Observation>* PredictionService::series(
    const SeriesKey& key) const {
  const auto it = series_.find(key);
  return it == series_.end() ? nullptr : &it->second.observations;
}

std::vector<SeriesKey> PredictionService::series_keys() const {
  std::vector<SeriesKey> out;
  out.reserve(series_.size());
  for (const auto& [key, state] : series_) out.push_back(key);
  return out;
}

std::size_t PredictionService::total_observations() const {
  std::size_t total = 0;
  for (const auto& [key, state] : series_) total += state.observations.size();
  return total;
}

}  // namespace wadp::core
