#include "core/prediction_service.hpp"

#include <algorithm>

#include "predict/extended.hpp"
#include "util/error.hpp"

namespace wadp::core {

std::string SeriesKey::to_string() const {
  return host + "/" + remote_ip + "/" + gridftp::to_string(op);
}

PredictionService::PredictionService(ServiceConfig config)
    : config_(std::move(config)),
      suite_(config_.use_extended_battery
                 ? predict::extended_suite(config_.classifier)
                 : predict::PredictorSuite::paper_suite(config_.classifier)) {
  WADP_CHECK_MSG(suite_.find(config_.default_predictor) != nullptr,
                 "default predictor not in the battery");
}

void PredictionService::ingest(const gridftp::TransferRecord& record) {
  auto& series = series_[SeriesKey{
      .host = record.host, .remote_ip = record.source_ip, .op = record.op}];
  predict::Observation obs{.time = record.end_time,
                           .value = record.bandwidth(),
                           .file_size = record.file_size};
  // Logs from one server arrive ordered; merged logs may interleave, so
  // keep the series sorted by insertion at the right place.
  if (series.empty() || series.back().time <= obs.time) {
    series.push_back(obs);
    return;
  }
  const auto pos = std::upper_bound(
      series.begin(), series.end(), obs,
      [](const predict::Observation& a, const predict::Observation& b) {
        return a.time < b.time;
      });
  series.insert(pos, obs);
}

void PredictionService::ingest_log(const gridftp::TransferLog& log) {
  for (const auto& record : log.records()) ingest(record);
}

std::optional<Bandwidth> PredictionService::predict(
    const SeriesKey& key, Bytes size, SimTime now,
    std::string_view predictor_name) const {
  const auto* series = this->series(key);
  if (series == nullptr || series->size() < config_.training_count) {
    return std::nullopt;
  }
  const auto* predictor = suite_.find(
      predictor_name.empty() ? config_.default_predictor : predictor_name);
  if (predictor == nullptr) return std::nullopt;
  return predictor->predict(*series,
                            predict::Query{.time = now, .file_size = size});
}

std::vector<std::pair<std::string, std::optional<Bandwidth>>>
PredictionService::predict_all(const SeriesKey& key, Bytes size,
                               SimTime now) const {
  std::vector<std::pair<std::string, std::optional<Bandwidth>>> out;
  const auto* series = this->series(key);
  for (const auto& predictor : suite_.predictors()) {
    std::optional<Bandwidth> value;
    if (series != nullptr && series->size() >= config_.training_count) {
      value = predictor->predict(*series,
                                 predict::Query{.time = now, .file_size = size});
    }
    out.emplace_back(predictor->name(), value);
  }
  return out;
}

std::optional<predict::EvaluationResult> PredictionService::evaluate(
    const SeriesKey& key) const {
  const auto* series = this->series(key);
  if (series == nullptr || series->size() <= config_.training_count) {
    return std::nullopt;
  }
  predict::EvalConfig eval_config;
  eval_config.training_count = config_.training_count;
  eval_config.classifier = config_.classifier;
  const predict::Evaluator evaluator(eval_config);
  return evaluator.run(*series, suite_.pointers());
}

const std::vector<predict::Observation>* PredictionService::series(
    const SeriesKey& key) const {
  const auto it = series_.find(key);
  return it == series_.end() ? nullptr : &it->second;
}

std::vector<SeriesKey> PredictionService::series_keys() const {
  std::vector<SeriesKey> out;
  out.reserve(series_.size());
  for (const auto& [key, series] : series_) out.push_back(key);
  return out;
}

std::size_t PredictionService::total_observations() const {
  std::size_t total = 0;
  for (const auto& [key, series] : series_) total += series.size();
  return total;
}

}  // namespace wadp::core
