#include "core/prediction_service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "history/adapter.hpp"
#include "obs/context.hpp"
#include "obs/events.hpp"
#include "obs/trace.hpp"
#include "predict/extended.hpp"
#include "predict/regression.hpp"
#include "util/error.hpp"

namespace wadp::core {
namespace {

std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Announces one stateless-fallback query as a structured ULM event, so
/// operators can see *which* predictor keeps missing its streaming
/// state and why (silent before this existed).
void emit_fallback_event(const SeriesKey& key, std::string_view predictor,
                         const char* reason) {
  util::UlmRecord record;
  record.set("PREDICTOR", std::string(predictor));
  record.set("SERIES", key.to_string());
  record.set("REASON", reason);
  obs::EventSink::global().emit("predict.fallback", "wadp.core",
                                std::move(record));
}

#ifndef NDEBUG
/// Debug-only invariant: the streaming battery answers exactly what the
/// stateless battery would (within float noise).  Catches streaming
/// states drifting out of sync with their reference predictors.
void assert_streaming_agreement(std::optional<Bandwidth> streamed,
                                std::optional<Bandwidth> stateless) {
  WADP_CHECK_MSG(streamed.has_value() == stateless.has_value(),
                 "streaming/stateless disagree on answerability");
  if (!streamed) return;
  const double tolerance =
      1e-6 * std::max({std::abs(*streamed), std::abs(*stateless), 1.0});
  WADP_CHECK_MSG(std::abs(*streamed - *stateless) <= tolerance,
                 "streaming/stateless prediction mismatch");
}
#endif

}  // namespace

PredictionService::PredictionService(ServiceConfig config)
    : PredictionService(std::make_shared<history::HistoryStore>(),
                        std::move(config)) {}

PredictionService::PredictionService(
    std::shared_ptr<history::HistoryStore> store, ServiceConfig config)
    : config_(std::move(config)),
      suite_(config_.use_regression_battery
                 ? predict::regression_suite(config_.classifier)
             : config_.use_extended_battery
                 ? predict::extended_suite(config_.classifier)
                 : predict::PredictorSuite::paper_suite(config_.classifier)),
      store_(std::move(store)) {
  WADP_CHECK_MSG(store_ != nullptr, "prediction service needs a store");
  WADP_CHECK_MSG(suite_.find(config_.default_predictor) != nullptr,
                 "default predictor not in the battery");
  WADP_CHECK_MSG(config_.challenger_predictor.empty() ||
                     suite_.find(config_.challenger_predictor) != nullptr,
                 "challenger predictor not in the battery");
  auto& registry = obs::Registry::global();
  metrics_.ingested = &registry.counter(
      "wadp_ingest_records_total", {},
      "Transfer records ingested through the prediction service");
  metrics_.queries =
      &registry.counter("wadp_predict_queries_total", {},
                        "Prediction queries answered by the service");
  metrics_.fallback_no_stream = &registry.counter(
      "wadp_predict_fallback_total", {{"reason", "no_stream"}},
      "Queries answered by the stateless path instead of streaming state");
  metrics_.fallback_time_travel = &registry.counter(
      "wadp_predict_fallback_total", {{"reason", "time_travel"}},
      "Queries answered by the stateless path instead of streaming state");
  metrics_.replays = &registry.counter(
      "wadp_battery_replays_total", {},
      "Streaming-battery replays forced by prefix-invalidating ingest");
  metrics_.arbitration_default = &registry.counter(
      "wadp_predict_arbitrations_total", {{"winner", "default"}},
      "Champion/challenger arbitration decisions for unnamed queries");
  metrics_.arbitration_challenger = &registry.counter(
      "wadp_predict_arbitrations_total", {{"winner", "challenger"}},
      "Champion/challenger arbitration decisions for unnamed queries");
  metrics_.predict_latency =
      &registry.histogram("wadp_predict_latency_seconds", {},
                          "Wall-clock latency of predict()");
}

void PredictionService::ingest(const gridftp::TransferRecord& record) {
  // Ordering (including out-of-order inserts) is the store's job now;
  // the battery discovers prefix changes via the generation watermark.
  metrics_.ingested->inc();
  store_->append(record);
}

void PredictionService::ingest_log(const gridftp::TransferLog& log) {
  auto span = obs::Tracer::global().start("predict.ingest");
  span.set_attr("RECORDS",
                static_cast<std::int64_t>(log.records().size()));
  for (const auto& record : log.records()) ingest(record);
}

PredictionService::BatteryState& PredictionService::catch_up(
    const SeriesKey& key, const history::SeriesSnapshot& snapshot) const {
  BatteryState& state = battery_[key];
  if (state.generation != snapshot.generation() && !state.streams.empty()) {
    metrics_.replays->inc();
    state.streams.clear();
  }
  if (state.streams.empty()) {
    state.streams.reserve(suite_.size());
    for (const auto& predictor : suite_.predictors()) {
      state.streams.push_back(predict::make_streaming(*predictor));
    }
    state.fed = 0;
    state.generation = snapshot.generation();
  }
  const auto& series = snapshot.observations();
  for (; state.fed < series.size(); ++state.fed) {
    const auto& obs = series[state.fed];
    for (const auto& stream : state.streams) {
      if (stream) stream->observe(obs);
    }
  }
  return state;
}

std::optional<Bandwidth> PredictionService::predict_at(
    const SeriesKey& key, const BatteryState& state,
    const history::SeriesSnapshot& snapshot, std::size_t index,
    const predict::Query& query) const {
  const auto& stream = state.streams[index];
  if (stream && query.time >= stream->safe_query_time()) {
    auto answer = stream->predict(query);
#ifndef NDEBUG
    assert_streaming_agreement(
        answer, suite_.predictors()[index]->predict(snapshot.span(), query));
#endif
    return answer;
  }
  // Stateless fallback (was silent): count it and log a ULM event so
  // the O(N) recomputations are visible in `wadp metrics`.
  const auto& predictor = *suite_.predictors()[index];
  const char* reason = stream ? "time_travel" : "no_stream";
  (stream ? metrics_.fallback_time_travel : metrics_.fallback_no_stream)
      ->inc();
  emit_fallback_event(key, predictor.name(), reason);
  return predictor.predict(snapshot.span(), query);
}

std::string_view PredictionService::arbitrate(const std::string& site) const {
  if (quality_ == nullptr || config_.challenger_predictor.empty()) {
    return config_.default_predictor;
  }
  // The challenger takes the query only when it has joined quality data
  // that beats the incumbent's, and it isn't in a drift demotion window
  // — the same gate the broker applies to ranking candidates.
  const auto incumbent =
      quality_->mean_error(site, config_.default_predictor);
  const auto challenger =
      quality_->mean_error(site, config_.challenger_predictor);
  const bool challenger_wins =
      challenger.has_value() && (!incumbent || *challenger < *incumbent) &&
      !quality_->drifting(site, config_.challenger_predictor);
  (challenger_wins ? metrics_.arbitration_challenger
                   : metrics_.arbitration_default)
      ->inc();
  return challenger_wins ? config_.challenger_predictor
                         : config_.default_predictor;
}

std::optional<Bandwidth> PredictionService::predict(
    const SeriesKey& key, Bytes size, SimTime now,
    std::string_view predictor_name) const {
  const std::uint64_t started = wall_ns();
  metrics_.queries->inc();
  auto span = obs::Tracer::global().start("predict.query");
  span.set_attr("SERIES", key.to_string());

  const auto snapshot = store_->snapshot(key);
  if (snapshot.size() < config_.training_count) {
    span.set_attr("RESULT", "too_short");
    return std::nullopt;
  }
  const auto index = suite_.index_of(
      predictor_name.empty() ? arbitrate(key.host) : predictor_name);
  if (!index) {
    span.set_attr("RESULT", "unknown_predictor");
    return std::nullopt;
  }
  span.set_attr("PREDICTOR", suite_.predictors()[*index]->name());
  {
    auto classify = span.child("predict.classify");
    classify.set_attr(
        "CLASS", static_cast<std::int64_t>(config_.classifier.classify(size)));
  }
  std::optional<Bandwidth> answer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    {
      auto update = span.child("predict.battery_update");
      update.set_attr("EPOCH", static_cast<std::int64_t>(snapshot.epoch()));
    }
    const BatteryState& state = catch_up(key, snapshot);
    auto answer_span = span.child("predict.answer");
    answer = predict_at(key, state, snapshot, *index,
                        predict::Query{.time = now, .file_size = size});
    answer_span.end();
  }
  if (quality_ != nullptr && answer) {
    quality_->record_prediction(obs::ServedPrediction{
        .trace_id = obs::TraceContext::current().trace_id,
        .site = key.host,
        .file_size = size,
        .time = now,
        .predictor = suite_.predictors()[*index]->name(),
        .value = *answer,
    });
  }
  metrics_.predict_latency->record(
      static_cast<double>(wall_ns() - started) * 1e-9);
  return answer;
}

std::vector<std::optional<Bandwidth>> PredictionService::predict_many(
    const SeriesKey& key, std::span<const predict::Query> queries,
    std::string_view predictor_name) const {
  const std::uint64_t started = wall_ns();
  metrics_.queries->inc(queries.size());
  auto span = obs::Tracer::global().start("predict.query_many");
  span.set_attr("SERIES", key.to_string());
  span.set_attr("BATCH", static_cast<std::int64_t>(queries.size()));

  std::vector<std::optional<Bandwidth>> answers(queries.size());
  if (queries.empty()) return answers;

  // One snapshot covers the batch: every answer is computed against the
  // same epoch, which is what makes the batch bit-identical to a
  // per-query loop that ran before the next append.
  const auto snapshot = store_->snapshot(key);
  if (snapshot.size() < config_.training_count) {
    span.set_attr("RESULT", "too_short");
    return answers;
  }
  const auto index = suite_.index_of(
      predictor_name.empty() ? arbitrate(key.host) : predictor_name);
  if (!index) {
    span.set_attr("RESULT", "unknown_predictor");
    return answers;
  }
  span.set_attr("PREDICTOR", suite_.predictors()[*index]->name());
  {
    std::lock_guard<std::mutex> lock(mu_);
    const BatteryState& state = catch_up(key, snapshot);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      answers[i] = predict_at(key, state, snapshot, *index, queries[i]);
    }
  }
  if (quality_ != nullptr) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (!answers[i]) continue;
      quality_->record_prediction(obs::ServedPrediction{
          .trace_id = obs::TraceContext::current().trace_id,
          .site = key.host,
          .file_size = queries[i].file_size,
          .time = queries[i].time,
          .predictor = suite_.predictors()[*index]->name(),
          .value = *answers[i],
      });
    }
  }
  metrics_.predict_latency->record(
      static_cast<double>(wall_ns() - started) * 1e-9);
  return answers;
}

std::vector<std::pair<std::string, std::optional<Bandwidth>>>
PredictionService::predict_all(const SeriesKey& key, Bytes size,
                               SimTime now) const {
  const std::uint64_t started = wall_ns();
  metrics_.queries->inc();
  auto span = obs::Tracer::global().start("predict.query");
  span.set_attr("SERIES", key.to_string());
  span.set_attr("PREDICTOR", "*");

  std::vector<std::pair<std::string, std::optional<Bandwidth>>> out;
  out.reserve(suite_.size());
  const auto snapshot = store_->snapshot(key);
  const bool ready = snapshot.size() >= config_.training_count;
  const predict::Query query{.time = now, .file_size = size};
  if (ready) {
    std::lock_guard<std::mutex> lock(mu_);
    auto update = span.child("predict.battery_update");
    const BatteryState& state = catch_up(key, snapshot);
    update.end();
    for (std::size_t i = 0; i < suite_.size(); ++i) {
      out.emplace_back(suite_.predictors()[i]->name(),
                       predict_at(key, state, snapshot, i, query));
    }
    if (quality_ != nullptr) {
      for (const auto& [name, value] : out) {
        if (!value) continue;
        quality_->record_prediction(obs::ServedPrediction{
            .trace_id = obs::TraceContext::current().trace_id,
            .site = key.host,
            .file_size = size,
            .time = now,
            .predictor = name,
            .value = *value,
        });
      }
    }
  } else {
    for (std::size_t i = 0; i < suite_.size(); ++i) {
      out.emplace_back(suite_.predictors()[i]->name(), std::nullopt);
    }
  }
  metrics_.predict_latency->record(
      static_cast<double>(wall_ns() - started) * 1e-9);
  return out;
}

std::size_t PredictionService::warm_up() {
  auto span = obs::Tracer::global().start("predict.warm_up");
  std::size_t warmed = 0;
  for (const auto& key : store_->keys()) {
    const auto snapshot = store_->snapshot(key);
    if (!snapshot.valid()) continue;
    std::lock_guard<std::mutex> lock(mu_);
    catch_up(key, snapshot);
    ++warmed;
  }
  span.set_attr("SERIES", static_cast<std::int64_t>(warmed));
  return warmed;
}

std::optional<predict::EvaluationResult> PredictionService::evaluate(
    const SeriesKey& key) const {
  const auto snapshot = store_->snapshot(key);
  if (snapshot.size() <= config_.training_count) return std::nullopt;
  predict::EvalConfig eval_config;
  eval_config.training_count = config_.training_count;
  eval_config.classifier = config_.classifier;
  const predict::Evaluator evaluator(eval_config);
  return evaluator.run(snapshot.span(), suite_.pointers());
}

history::SeriesSnapshot PredictionService::series(const SeriesKey& key) const {
  return store_->snapshot(key);
}

std::vector<SeriesKey> PredictionService::series_keys() const {
  return store_->keys();
}

std::size_t PredictionService::total_observations() const {
  return store_->total_observations();
}

}  // namespace wadp::core
