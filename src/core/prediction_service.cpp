#include "core/prediction_service.hpp"

#include <algorithm>

#include "predict/extended.hpp"
#include "util/error.hpp"

namespace wadp::core {

std::string SeriesKey::to_string() const {
  return host + "/" + remote_ip + "/" + gridftp::to_string(op);
}

PredictionService::PredictionService(ServiceConfig config)
    : config_(std::move(config)),
      suite_(config_.use_extended_battery
                 ? predict::extended_suite(config_.classifier)
                 : predict::PredictorSuite::paper_suite(config_.classifier)) {
  WADP_CHECK_MSG(suite_.find(config_.default_predictor) != nullptr,
                 "default predictor not in the battery");
}

void PredictionService::ingest(const gridftp::TransferRecord& record) {
  auto& state = series_[SeriesKey{
      .host = record.host, .remote_ip = record.source_ip, .op = record.op}];
  auto& series = state.observations;
  predict::Observation obs{.time = record.end_time,
                           .value = record.bandwidth(),
                           .file_size = record.file_size};
  // Logs from one server arrive ordered; merged logs may interleave, so
  // keep the series sorted by insertion at the right place.  Appends
  // leave the streaming battery valid (it catches up lazily); a
  // mid-series insert invalidates it, forcing a replay on next query.
  if (series.empty() || series.back().time <= obs.time) {
    series.push_back(obs);
    return;
  }
  const auto pos = std::upper_bound(
      series.begin(), series.end(), obs,
      [](const predict::Observation& a, const predict::Observation& b) {
        return a.time < b.time;
      });
  series.insert(pos, obs);
  state.dirty = true;
}

void PredictionService::ingest_log(const gridftp::TransferLog& log) {
  for (const auto& record : log.records()) ingest(record);
}

void PredictionService::catch_up(const SeriesState& state) const {
  if (state.dirty) {
    state.streams.clear();
    state.fed = 0;
    state.dirty = false;
  }
  if (state.streams.empty()) {
    state.streams.reserve(suite_.size());
    for (const auto& predictor : suite_.predictors()) {
      state.streams.push_back(predict::make_streaming(*predictor));
    }
    state.fed = 0;
  }
  for (; state.fed < state.observations.size(); ++state.fed) {
    const auto& obs = state.observations[state.fed];
    for (const auto& stream : state.streams) {
      if (stream) stream->observe(obs);
    }
  }
}

std::optional<Bandwidth> PredictionService::predict_at(
    const SeriesState& state, std::size_t index,
    const predict::Query& query) const {
  const auto& stream = state.streams[index];
  if (stream && query.time >= stream->safe_query_time()) {
    return stream->predict(query);
  }
  return suite_.predictors()[index]->predict(state.observations, query);
}

std::optional<Bandwidth> PredictionService::predict(
    const SeriesKey& key, Bytes size, SimTime now,
    std::string_view predictor_name) const {
  const auto it = series_.find(key);
  if (it == series_.end() ||
      it->second.observations.size() < config_.training_count) {
    return std::nullopt;
  }
  const auto index = suite_.index_of(
      predictor_name.empty() ? config_.default_predictor : predictor_name);
  if (!index) return std::nullopt;
  catch_up(it->second);
  return predict_at(it->second, *index,
                    predict::Query{.time = now, .file_size = size});
}

std::vector<std::pair<std::string, std::optional<Bandwidth>>>
PredictionService::predict_all(const SeriesKey& key, Bytes size,
                               SimTime now) const {
  std::vector<std::pair<std::string, std::optional<Bandwidth>>> out;
  out.reserve(suite_.size());
  const auto it = series_.find(key);
  const bool ready = it != series_.end() &&
                     it->second.observations.size() >= config_.training_count;
  if (ready) catch_up(it->second);
  const predict::Query query{.time = now, .file_size = size};
  for (std::size_t i = 0; i < suite_.size(); ++i) {
    std::optional<Bandwidth> value;
    if (ready) value = predict_at(it->second, i, query);
    out.emplace_back(suite_.predictors()[i]->name(), value);
  }
  return out;
}

std::optional<predict::EvaluationResult> PredictionService::evaluate(
    const SeriesKey& key) const {
  const auto* series = this->series(key);
  if (series == nullptr || series->size() <= config_.training_count) {
    return std::nullopt;
  }
  predict::EvalConfig eval_config;
  eval_config.training_count = config_.training_count;
  eval_config.classifier = config_.classifier;
  const predict::Evaluator evaluator(eval_config);
  return evaluator.run(*series, suite_.pointers());
}

const std::vector<predict::Observation>* PredictionService::series(
    const SeriesKey& key) const {
  const auto it = series_.find(key);
  return it == series_.end() ? nullptr : &it->second.observations;
}

std::vector<SeriesKey> PredictionService::series_keys() const {
  std::vector<SeriesKey> out;
  out.reserve(series_.size());
  for (const auto& [key, state] : series_) out.push_back(key);
  return out;
}

std::size_t PredictionService::total_observations() const {
  std::size_t total = 0;
  for (const auto& [key, state] : series_) total += state.observations.size();
  return total;
}

}  // namespace wadp::core
