// GridFTP client module: get / put / partial / third-party transfers.
//
// The client orchestrates the protocol phases the paper's server
// implements — control-channel establishment with authentication,
// parallel data-channel setup, the data movement itself (run on the
// fluid engine), and the server's post-transfer logging — and reports
// an end-to-end outcome.  The *timed* window of the logged record spans
// the data transfer operation (data-channel setup through last byte),
// matching the paper's "we merely record the data and time the transfer
// operation"; authentication happens before the timed window, exactly
// as in the real server's transfer log.
//
// On top of the single-shot protocol drive sits the resilience layer:
// an optional retry policy (bounded exponential backoff with jitter, a
// per-attempt timeout, and a cumulative budget) re-runs failed
// attempts, and an optional fault injector perturbs individual attempts
// with refused connections, truncated data channels, and stalls.  Every
// failed attempt tears its data channel down, bumps exactly one outcome
// counter, emits one ULM event, and — when a failure sink is wired —
// produces an outcome-tagged TransferRecord so the history plane learns
// outage windows.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "gridftp/server.hpp"
#include "net/fabric.hpp"
#include "net/path.hpp"
#include "net/route.hpp"
#include "resilience/fault.hpp"
#include "resilience/retry.hpp"
#include "sim/simulator.hpp"
#include "storage/storage.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace wadp::gridftp {

/// GridFTP performance-marker callback (the protocol's 112 replies):
/// bytes moved so far, total bytes, and the simulated instant.
using ProgressCallback =
    std::function<void(Bytes moved, Bytes total, SimTime at)>;

struct TransferOptions {
  int streams = 8;                   ///< the paper's experiments used 8
  Bytes buffer = net::kTunedTcpBuffer;  ///< and 1 MB buffers (Section 6.1)
  /// > 0: emit performance markers every this many seconds during the
  /// data phase (plain get/put/partial/third-party operations).
  Duration marker_interval = 0.0;
  ProgressCallback on_marker;  ///< invoked from simulator context
};

struct TransferOutcome {
  bool ok = false;
  std::string error;                  ///< set when !ok
  TransferRecord record;              ///< as logged by the serving host
  Duration control_overhead = 0.0;    ///< auth + command time before data
  int attempts = 1;                   ///< attempts consumed (retries + 1 try)
};

using TransferCallback = std::function<void(const TransferOutcome&)>;

/// Protocol timing constants (round trips on the control path).
struct ProtocolCosts {
  int control_setup_rtts = 3;   ///< TCP + GSI handshake round trips
  Duration auth_cpu = 0.4;      ///< GSI public-key operations (seconds)
  int data_setup_rtts = 2;      ///< PASV/PORT exchange + channel connect
};

class GridFtpClient {
 public:
  /// `local_storage` may be null for a client whose disk never binds
  /// (e.g. a memory sink used for probe transfers).  `resolver` maps
  /// site pairs to routes: a paper-testbed net::Topology or a
  /// grid-scale net::GridTopology both work.
  GridFtpClient(sim::Simulator& sim, net::FluidEngine& engine,
                net::PathResolver& resolver, std::string site, std::string ip,
                storage::StorageSystem* local_storage = nullptr,
                ProtocolCosts costs = {});

  const std::string& site() const { return site_; }
  const std::string& ip() const { return ip_; }

  /// Installs a retry policy for get/get_partial/put/third_party.  The
  /// default policy is single-shot (max_attempts = 1), the
  /// pre-resilience behaviour.  `jitter_seed` seeds the backoff-jitter
  /// Rng, so two clients with the same policy but different seeds
  /// decorrelate their retries.  striped_get stays single-shot.
  void set_retry_policy(resilience::RetryPolicy policy,
                        std::uint64_t jitter_seed = 0x7ead5eedULL);
  const resilience::RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Points the client at a fault injector; each attempt then draws one
  /// AttemptFault.  Null (the default) disables injection.  Not owned.
  void set_fault_injector(resilience::FaultInjector* injector) {
    faults_ = injector;
  }

  /// Receives an outcome-tagged TransferRecord (ok = false, file_size =
  /// bytes actually moved) for every failed attempt against a known
  /// server.  Wire this to HistoryStore::append so predictors see
  /// outage windows.  The client cannot depend on the history module
  /// (history links gridftp), hence the callback.
  using FailureSink = std::function<void(const TransferRecord&)>;
  void set_failure_sink(FailureSink sink) { failure_sink_ = std::move(sink); }

  /// Retrieves `remote_path` from `server`.  The callback fires when the
  /// control channel closes (after server-side logging overhead).
  void get(GridFtpServer& server, std::string remote_path,
           const TransferOptions& options, TransferCallback callback);

  /// Partial retrieval: `length` bytes starting at `offset` (GridFTP's
  /// partial-file-transfer extension).  Logged with the bytes moved.
  void get_partial(GridFtpServer& server, std::string remote_path,
                   Bytes offset, Bytes length, const TransferOptions& options,
                   TransferCallback callback);

  /// Stores a new file of `size` bytes at `remote_path` on `server`.
  void put(GridFtpServer& server, std::string remote_path, Bytes size,
           const TransferOptions& options, TransferCallback callback);

  /// Third-party transfer: data flows source -> destination directly;
  /// this client only drives the two control channels.  Both servers
  /// log (read at the source, write at the destination); the outcome
  /// carries the source's record.
  void third_party(GridFtpServer& source, GridFtpServer& destination,
                   std::string source_path, std::string destination_path,
                   const TransferOptions& options, TransferCallback callback);

  /// Striped retrieval (the GridFTP SPAS/SPOR extension the paper's
  /// companion [2] describes): `stripes` are data movers at one site,
  /// each holding `remote_path`; every stripe serves an equal slice
  /// concurrently through its own storage, aggregating host bandwidth.
  /// Each stripe logs its slice; the outcome's record summarizes the
  /// whole file over the full timed window (host = first stripe's).
  /// All stripes must be at the same site and the file identical on
  /// each; violations fail the transfer.  Not covered by the retry
  /// policy or fault injector.
  void striped_get(std::vector<GridFtpServer*> stripes,
                   std::string remote_path, const TransferOptions& options,
                   TransferCallback callback);

 private:
  struct Attempt;      // live state of one attempt (client.cpp)
  struct DataPlan;     // data-phase description (client.cpp)
  struct RetryDriver;  // backoff loop around an attempt launcher

  /// Launches one attempt of an operation; the callback reports that
  /// attempt's outcome (the retry driver decides what happens next).
  using AttemptLauncher = std::function<void(TransferCallback)>;

  /// Wraps `launch` in the retry policy and delivers the final outcome
  /// (with `attempts` filled in) to `callback`.
  void run_with_retry(std::string op_name, AttemptLauncher launch,
                      TransferCallback callback);

  /// Creates the per-attempt state: samples a fault, arms the attempt
  /// timeout, captures what a failure record needs.
  std::shared_ptr<Attempt> begin_attempt(std::string op_name,
                                         GridFtpServer* record_server,
                                         std::string record_remote_ip,
                                         std::string path, Operation op,
                                         const TransferOptions& options,
                                         Duration overhead,
                                         TransferCallback callback);

  /// Resolves an attempt as failed: idempotent; cancels timers, tears
  /// down the data flow (keeping partial-byte counts), closes
  /// transferring control sessions with a 426, bumps the fail counter,
  /// emits one ULM event, pushes an outcome-tagged record to the
  /// failure sink, and invokes the per-attempt callback.
  void finish_attempt_failure(const std::shared_ptr<Attempt>& attempt,
                              std::string error);

  /// Cancels any pending timeout/fault events for the attempt.
  void cancel_attempt_timers(const std::shared_ptr<Attempt>& attempt);

  /// Realizes a timed injected fault (truncate or stall) against a
  /// running attempt.
  void realize_timed_fault(const std::shared_ptr<Attempt>& attempt);

  /// Runs the data phase of an attempt on the fluid engine and delivers
  /// the outcome; shared by every non-striped operation.
  void execute_plan(DataPlan plan, std::shared_ptr<Attempt> attempt);

  // Single-attempt bodies behind the public operations.
  void start_get(GridFtpServer& server, const std::string& remote_path,
                 const TransferOptions& options, TransferCallback callback);
  void start_get_partial(GridFtpServer& server, const std::string& remote_path,
                         Bytes offset, Bytes length,
                         const TransferOptions& options,
                         TransferCallback callback);
  void start_put(GridFtpServer& server, const std::string& remote_path,
                 Bytes size, const TransferOptions& options,
                 TransferCallback callback);
  void start_third_party(GridFtpServer& source, GridFtpServer& destination,
                         const std::string& source_path,
                         const std::string& destination_path,
                         const TransferOptions& options,
                         TransferCallback callback);

  /// Single-shot failure for operations outside the retry loop
  /// (striped_get): one outcome counter, one ULM event, callback.
  void fail(TransferCallback& callback, std::string error, Duration overhead);

  Duration control_rtt(const std::string& server_site) const;

  sim::Simulator& sim_;
  net::FluidEngine& engine_;
  net::PathResolver& resolver_;
  std::string site_;
  std::string ip_;
  storage::StorageSystem* local_storage_;
  ProtocolCosts costs_;

  resilience::RetryPolicy retry_policy_;  // default: single-shot
  util::Rng retry_rng_;
  resilience::FaultInjector* faults_ = nullptr;
  FailureSink failure_sink_;
};

}  // namespace wadp::gridftp
